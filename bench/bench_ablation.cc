// Ablation benches for the starred design choices in DESIGN.md §5
// (beyond the paper's own N-Kw / N-Str / N-Exp rows):
//
//   (a) wide-only vs deep-only vs full Wide-Deep cost model;
//   (b) RLView with vs without a meaningful replay memory — the paper's
//       stated reason RLView converges where IterView oscillates.

#include <cmath>

#include "bench_common.h"
#include "costmodel/wide_deep.h"
#include "select/rlview.h"

namespace {

using namespace autoview;
using namespace autoview::bench;

double TailStdDev(const std::vector<double>& trace) {
  const size_t start = trace.size() * 2 / 3;
  double mean = 0.0;
  for (size_t i = start; i < trace.size(); ++i) mean += trace[i];
  const double n = static_cast<double>(trace.size() - start);
  mean /= n;
  double var = 0.0;
  for (size_t i = start; i < trace.size(); ++i) {
    var += (trace[i] - mean) * (trace[i] - mean);
  }
  return std::sqrt(var / n);
}

}  // namespace

int main() {
  PrintHeader("Ablation (a): wide vs deep vs wide-deep cost model (WK1)");
  {
    BenchSetup setup = MakeBench("WK1");
    const auto& dataset = setup.system->cost_dataset();
    DatasetSplit split = SplitDataset(dataset.size(), 13);
    std::vector<CostSample> train, test;
    for (size_t i : split.train) train.push_back(dataset[i]);
    for (size_t i : split.test) test.push_back(dataset[i]);

    TablePrinter table({"variant", "test MAE x1e-6", "test MAPE %"});
    struct Variant {
      const char* name;
      WideDeepOptions opts;
    };
    // "wide-only" is approximated by stripping every non-numeric encoder
    // (N-Exp + frozen embeddings leaves only pooled static vectors);
    // "deep-only" keeps the full deep path (the wide affine remains but
    // carries the same numerics, so the contrast isolates the encoders).
    WideDeepOptions wide_only = WideDeepOptions::NExp();
    wide_only.learn_keyword_embedding = false;
    wide_only.use_string_cnn = false;
    Variant variants[] = {
        {"numeric-only (wide-ish)", wide_only},
        {"no plan sequence (N-Exp)", WideDeepOptions::NExp()},
        {"full W-D", WideDeepOptions::Full()},
    };
    for (auto& variant : variants) {
      variant.opts.epochs = 20;
      WideDeepEstimator model(&setup.workload.db->catalog(), variant.opts);
      AV_CHECK(model.Train(train).ok());
      EstimatorMetrics metrics = EvaluateEstimator(model, test);
      table.AddRow({variant.name, FormatDouble(metrics.mae * 1e6, 2),
                    FormatDouble(100.0 * metrics.mape, 2)});
    }
    table.Print();
    std::printf(
        "Expected: accuracy improves as encoders are added (numeric-only\n"
        "worst, full W-D best) — the deep non-numeric encoders carry the\n"
        "signal numeric statistics cannot (same-shaped plans, different\n"
        "literals).\n");
  }

  PrintHeader("Ablation (b): RLView replay memory (WK1)");
  {
    BenchSetup setup = MakeBench("WK1");
    const MvsProblem& problem = setup.system->problem();
    TablePrinter table({"memory", "best utility x1e-6", "tail stddev x1e-6"});
    struct Variant {
      const char* label;
      size_t capacity;
      size_t min_mem;
      size_t target_sync;
      bool dueling;
    };
    for (const Variant& v : {Variant{"none (size 1)", 1, 1, 0, false},
                             Variant{"small (32)", 32, 16, 0, false},
                             Variant{"full (512)", 512, 32, 0, false},
                             Variant{"full + target net", 512, 32, 64, false},
                             Variant{"full + dueling", 512, 32, 0, true}}) {
      RLViewSelector::Options opts;
      opts.init_iterations = 10;
      opts.episodes = 15;
      opts.memory_capacity = v.capacity;
      opts.min_memory = v.min_mem;
      opts.target_sync_every = v.target_sync;
      opts.dueling = v.dueling;
      opts.seed = 5;
      RLViewSelector rlview(opts);
      auto result = rlview.Select(problem);
      AV_CHECK(result.ok());
      table.AddRow({v.label, FormatDouble(result.value().utility * 1e6, 2),
                    FormatDouble(TailStdDev(rlview.utility_trace()) * 1e6,
                                 2)});
    }
    table.Print();
    std::printf(
        "Reading: best utilities land close together (the warm start and\n"
        "exact Y-Opt do much of the work on an instance this size); the\n"
        "interesting column is the tail stddev — variants whose bootstrap\n"
        "is stabler (dueling, larger memories) tend to hold a flatter\n"
        "plateau. On paper-scale instances the memory's effect grows with\n"
        "the state space, which is the paper's argument against the\n"
        "memory-less IterView.\n");
  }
  return 0;
}
