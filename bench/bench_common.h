#pragma once

// Shared setup for the paper-table/figure harness binaries.
//
// Every bench binary regenerates one table or figure of the paper at a
// reduced-but-faithful scale (see DESIGN.md §2 for the substitutions).
// Set AUTOVIEW_BENCH_SCALE (default 1.0) to grow/shrink the workloads.

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include "core/autoview.h"
#include "util/logging.h"
#include "util/strings.h"
#include "util/table_printer.h"
#include "workload/generator.h"

namespace autoview {
namespace bench {

inline double BenchScale() {
  const char* env = std::getenv("AUTOVIEW_BENCH_SCALE");
  return env ? std::atof(env) : 1.0;
}

/// A workload plus its fully-built AutoViewSystem (ground truth ready).
struct BenchSetup {
  GeneratedWorkload workload;
  std::unique_ptr<AutoViewSystem> system;
};

/// Builds one of the three paper workloads. JOB uses exact benefits (the
/// paper executes all rewritten JOB queries); WK1/WK2 use the RealOpt
/// approximation, as in §VI-B1.
inline BenchSetup MakeBench(const std::string& name) {
  BenchSetup setup;
  AutoViewOptions options;
  if (name == "JOB") {
    JobWorkloadSpec spec;
    spec.base_queries =
        static_cast<size_t>(113 * BenchScale());
    setup.workload = GenerateJobWorkload(spec);
    options.exact_benefits = true;
  } else if (name == "WK1") {
    setup.workload = GenerateCloudWorkload(Wk1Spec(BenchScale()));
    options.exact_benefits = false;
  } else if (name == "WK2") {
    setup.workload = GenerateCloudWorkload(Wk2Spec(BenchScale()));
    options.exact_benefits = false;
  } else {
    AV_CHECK(false);
  }
  setup.system = std::make_unique<AutoViewSystem>(setup.workload.db.get(),
                                                  options);
  AV_CHECK(setup.system->LoadWorkload(setup.workload.sql).ok());
  AV_CHECK(setup.system->BuildGroundTruth().ok());
  return setup;
}

inline void PrintHeader(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n");
}

}  // namespace bench
}  // namespace autoview
