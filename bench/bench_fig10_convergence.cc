// Reproduces Fig. 10: convergence of IterView vs RLView on WK1 / WK2.
//
// Both methods run n = n1 + n2-driven iterations; the per-iteration
// utility is printed as a text series (downsampled). Paper shape:
// IterView oscillates sharply forever (no memory across iterations);
// RLView rises and then holds a stable plateau; WK1's swings are wider
// than WK2's (more skewed benefit/overhead).

#include <cmath>

#include "bench_common.h"
#include "select/iterview.h"
#include "select/rlview.h"

namespace {

using namespace autoview;
using namespace autoview::bench;

double TailStdDev(const std::vector<double>& trace) {
  const size_t start = trace.size() * 2 / 3;
  double mean = 0.0;
  for (size_t i = start; i < trace.size(); ++i) mean += trace[i];
  const double n = static_cast<double>(trace.size() - start);
  mean /= n;
  double var = 0.0;
  for (size_t i = start; i < trace.size(); ++i) {
    var += (trace[i] - mean) * (trace[i] - mean);
  }
  return std::sqrt(var / n);
}

void PrintSeries(const std::string& label, const std::vector<double>& trace,
                 size_t points) {
  std::printf("%-9s", label.c_str());
  const size_t step = std::max<size_t>(1, trace.size() / points);
  for (size_t i = 0; i < trace.size(); i += step) {
    std::printf(" %7.1f", trace[i] * 1e6);
  }
  std::printf("\n");
}

}  // namespace

int main() {
  PrintHeader("Figure 10: IterView vs RLView convergence (utility $ x 1e-6)");
  for (const char* name : {"WK1", "WK2"}) {
    BenchSetup setup = MakeBench(name);
    const MvsProblem& problem = setup.system->problem();

    const size_t n1 = 10;
    const size_t episodes = 25;
    RLViewSelector::Options rl_opts;
    rl_opts.init_iterations = n1;
    rl_opts.episodes = episodes;
    // The paper's policy is pure argmax; keep exploration noise out of
    // the convergence trace.
    rl_opts.epsilon = 0.02;
    rl_opts.seed = 3;
    RLViewSelector rlview(rl_opts);
    AV_CHECK(rlview.Select(problem).ok());

    // Fair comparison (paper): IterView runs as many iterations as
    // RLView took steps in total.
    const size_t total_iters = rlview.utility_trace().size();
    IterViewSelector iterview =
        IterViewSelector::IterView(total_iters, /*seed=*/3);
    AV_CHECK(iterview.Select(problem).ok());

    std::printf("\n[%s] |Z| = %zu, %zu iterations\n", name,
                problem.num_views(), total_iters);
    PrintSeries("IterView", iterview.utility_trace(), 16);
    PrintSeries("RLView", rlview.utility_trace(), 16);
    std::printf(
        "  tail stddev (last third): IterView %.3e$, RLView %.3e$\n",
        TailStdDev(iterview.utility_trace()),
        TailStdDev(rlview.utility_trace()));
  }
  std::printf(
      "\nPaper shape: IterView keeps oscillating between local optima;\n"
      "RLView's replay memory damps the oscillation and holds a stable\n"
      "plateau (smaller tail stddev). WK1 fluctuates more widely than\n"
      "WK2 because its benefits/overheads are more skewed.\n");
  return 0;
}
