// Reproduces Fig. 1: redundant computation across projects.
//
// (a) total queries vs queries containing redundant computation, per
//     project (paper: six Alibaba Cloud projects);
// (b) cumulative percentage of redundant queries as projects are added
//     (paper: rises to ~25% at 20 projects).
//
// A query "contains redundant computation" when one of its subqueries
// is equivalent to a subquery of another query (cluster size >= 2).

#include <set>

#include "bench_common.h"
#include "plan/builder.h"
#include "subquery/clusterer.h"

int main() {
  using namespace autoview;
  using namespace autoview::bench;

  CloudWorkloadSpec spec = Wk1Spec(BenchScale());
  spec.name = "fig1";
  spec.projects = 20;
  spec.queries = static_cast<size_t>(600 * BenchScale());
  spec.shared_fraction = 0.15;  // production-like redundancy (~20-25%)
  spec.seed = 31;
  GeneratedWorkload wk = GenerateCloudWorkload(spec);

  PlanBuilder builder(&wk.db->catalog());
  std::vector<PlanNodePtr> plans;
  for (const auto& sql : wk.sql) {
    auto plan = builder.BuildFromSql(sql);
    AV_CHECK(plan.ok());
    plans.push_back(plan.value());
  }
  SubqueryClusterer clusterer;
  WorkloadAnalysis analysis = clusterer.Analyze(plans);

  // Queries containing a shared (cluster size >= 2) subquery.
  std::set<size_t> redundant;
  for (const auto& cluster : analysis.clusters) {
    if (cluster.query_indices.size() < 2) continue;
    for (size_t qi : cluster.query_indices) redundant.insert(qi);
  }

  std::vector<size_t> total_per_project(spec.projects, 0);
  std::vector<size_t> redundant_per_project(spec.projects, 0);
  for (size_t qi = 0; qi < plans.size(); ++qi) {
    const size_t p = wk.project_of[qi];
    ++total_per_project[p];
    if (redundant.count(qi)) ++redundant_per_project[p];
  }

  PrintHeader("Figure 1(a): total vs redundant queries per project");
  TablePrinter per_project({"project", "total", "redundant", "redundant %"});
  for (size_t p = 0; p < 6; ++p) {
    const double pct =
        total_per_project[p]
            ? 100.0 * static_cast<double>(redundant_per_project[p]) /
                  static_cast<double>(total_per_project[p])
            : 0.0;
    per_project.AddRow({StrFormat("P%zu", p + 1),
                        StrFormat("%zu", total_per_project[p]),
                        StrFormat("%zu", redundant_per_project[p]),
                        FormatDouble(pct, 1)});
  }
  per_project.Print();

  PrintHeader("Figure 1(b): cumulative redundancy percentage vs #projects");
  TablePrinter cumulative({"# projects", "total", "redundant",
                           "cumulative %"});
  size_t run_total = 0, run_redundant = 0;
  for (size_t p = 0; p < spec.projects; ++p) {
    run_total += total_per_project[p];
    run_redundant += redundant_per_project[p];
    if ((p + 1) % 4 == 0) {
      cumulative.AddRow(
          {StrFormat("%zu", p + 1), StrFormat("%zu", run_total),
           StrFormat("%zu", run_redundant),
           FormatDouble(100.0 * static_cast<double>(run_redundant) /
                            static_cast<double>(run_total),
                        1)});
    }
  }
  cumulative.Print();
  std::printf(
      "\nPaper shape: every project carries a substantial redundant\n"
      "fraction and the cumulative percentage stays roughly stable\n"
      "(~20-25%%) as projects accumulate.\n");
  return 0;
}
