// Reproduces Fig. 9: utility vs k for the four greedy Top-k methods
// (TopkFreq / TopkOver / TopkBen / TopkNorm) on JOB, WK1, WK2.
//
// Paper shape: almost every curve first rises to a maximum and then
// falls (benefit accumulates, then overhead dominates); peaks land at
// different k per strategy.

#include "bench_common.h"
#include "select/selector.h"

int main() {
  using namespace autoview;
  using namespace autoview::bench;

  PrintHeader("Figure 9: utility ($) of top-k greedy methods vs k");
  for (const char* name : {"JOB", "WK1", "WK2"}) {
    BenchSetup setup = MakeBench(name);
    const MvsProblem& problem = setup.system->problem();
    const size_t nz = problem.num_views();
    const size_t step = std::max<size_t>(1, nz / 12);
    std::printf("\n[%s] |Z| = %zu (k sweeps by %zu)\n", name, nz, step);

    std::vector<std::vector<double>> curves;
    for (TopkStrategy strategy :
         {TopkStrategy::kFrequency, TopkStrategy::kOverhead,
          TopkStrategy::kBenefit, TopkStrategy::kNormalized}) {
      curves.push_back(TopkUtilityCurve(problem, strategy, step));
    }

    TablePrinter table({"k", "TopkFreq", "TopkOver", "TopkBen", "TopkNorm"});
    for (size_t p = 0; p < curves[0].size(); ++p) {
      std::vector<std::string> row = {StrFormat("%zu", p * step)};
      for (const auto& curve : curves) {
        row.push_back(FormatDouble(curve[p] * 1e6, 1));
      }
      table.AddRow(std::move(row));
    }
    table.Print();
    std::printf("(utility in $ x 1e-6; rows are k values)\n");

    // Report each curve's peak.
    const char* names[] = {"TopkFreq", "TopkOver", "TopkBen", "TopkNorm"};
    for (size_t c = 0; c < curves.size(); ++c) {
      size_t best = 0;
      for (size_t p = 0; p < curves[c].size(); ++p) {
        if (curves[c][p] > curves[c][best]) best = p;
      }
      std::printf("  %s peak: utility %.3e$ at k = %zu\n", names[c],
                  curves[c][best], best * step);
    }
  }
  std::printf(
      "\nPaper shape: curves rise to a maximum and then fall as the\n"
      "materialization overhead starts to dominate the benefit.\n");
  return 0;
}
