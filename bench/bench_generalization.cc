// Generalization ablation: split the cost dataset by *query identity*
// (not by random sample), so every test query — and most of its literal
// constants — is unseen at training time. This isolates the paper's
// finding (4): the char-level String Encoding generalizes to literals
// never seen in training, while vocabulary-style encodings cannot.

#include <set>

#include "bench_common.h"
#include "costmodel/traditional.h"
#include "costmodel/wide_deep.h"

int main() {
  using namespace autoview;
  using namespace autoview::bench;

  PrintHeader(
      "Generalization: train/test split by query identity (unseen literals)");
  BenchSetup setup = MakeBench("WK1");
  const auto& dataset = setup.system->cost_dataset();
  const auto& pairs = setup.system->cost_dataset_pairs();

  // Hold out every 4th associated query entirely.
  std::vector<CostSample> train, test;
  for (size_t n = 0; n < dataset.size(); ++n) {
    (pairs[n].first % 4 == 0 ? test : train).push_back(dataset[n]);
  }
  std::printf("split: %zu train / %zu test samples (held-out queries)\n",
              train.size(), test.size());

  TablePrinter table({"model", "held-out MAE x1e-6", "held-out MAPE %"});
  TraditionalEstimator optimizer(&setup.workload.db->catalog(),
                                 setup.system->pricing());
  AV_CHECK(optimizer.Train(train).ok());
  EstimatorMetrics opt = EvaluateEstimator(optimizer, test);
  table.AddRow({"Optimizer", FormatDouble(opt.mae * 1e6, 2),
                FormatDouble(100.0 * opt.mape, 2)});

  for (WideDeepOptions opts :
       {WideDeepOptions::NStr(), WideDeepOptions::Full()}) {
    opts.epochs = 20;
    WideDeepEstimator model(&setup.workload.db->catalog(), opts);
    AV_CHECK(model.Train(train).ok());
    EstimatorMetrics metrics = EvaluateEstimator(model, test);
    table.AddRow({model.name(), FormatDouble(metrics.mae * 1e6, 2),
                  FormatDouble(100.0 * metrics.mape, 2)});
  }
  table.Print();
  std::printf(
      "\nExpected: the full W-D (char-level CNN over literal strings)\n"
      "degrades less than N-Str on queries whose literal constants were\n"
      "never seen during training — the paper's motivation for the\n"
      "String Encoding model (finding 4).\n");
  return 0;
}
