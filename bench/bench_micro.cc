// Component micro-benchmarks (google-benchmark): parser, plan hashing
// and canonicalization, engine operators, NN forward/backward, Y-Opt
// and Z-Opt steps. These gate performance regressions in the pieces the
// paper-scale harnesses depend on.

#include <benchmark/benchmark.h>

#include <cmath>

#include "core/autoview.h"
#include "costmodel/wide_deep.h"
#include "nn/modules.h"
#include "nn/optimizer.h"
#include "plan/builder.h"
#include "plan/canonical.h"
#include "select/iterview.h"
#include "sql/parser.h"
#include "util/thread_pool.h"
#include "workload/generator.h"

namespace autoview {
namespace {

constexpr const char* kFig2Sql =
    "select t1.user_id, count(*) as cnt from ("
    "select user_id, memo from user_memo "
    "where dt = '1010' and memo_type = 'pen') t1 "
    "inner join (select user_id, action from user_action "
    "where type = 1 and dt = '1010') t2 "
    "on t1.user_id = t2.user_id group by t1.user_id";

void FillFig2Catalog(Catalog* catalog) {
  AV_CHECK(catalog
               ->AddTable(TableSchema("user_memo",
                                     {{"user_id", ColumnType::kInt64},
                                      {"memo", ColumnType::kString},
                                      {"dt", ColumnType::kString},
                                      {"memo_type", ColumnType::kString}}))
               .ok());
  AV_CHECK(catalog
               ->AddTable(TableSchema("user_action",
                                     {{"user_id", ColumnType::kInt64},
                                      {"action", ColumnType::kString},
                                      {"type", ColumnType::kInt64},
                                      {"dt", ColumnType::kString}}))
               .ok());
}

void BM_ParseSql(benchmark::State& state) {
  for (auto _ : state) {
    auto r = ParseSelect(kFig2Sql);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_ParseSql);

void BM_BuildPlan(benchmark::State& state) {
  Catalog catalog;
  FillFig2Catalog(&catalog);
  PlanBuilder builder(&catalog);
  for (auto _ : state) {
    auto plan = builder.BuildFromSql(kFig2Sql);
    benchmark::DoNotOptimize(plan);
  }
}
BENCHMARK(BM_BuildPlan);

void BM_PlanHash(benchmark::State& state) {
  Catalog catalog;
  FillFig2Catalog(&catalog);
  PlanBuilder builder(&catalog);
  auto plan = builder.BuildFromSql(kFig2Sql).value();
  for (auto _ : state) {
    // Hash is cached per node; rebuilt trees in real use, so measure the
    // canonical key (uncached) instead for a stable signal.
    benchmark::DoNotOptimize(CanonicalKey(*plan));
  }
}
BENCHMARK(BM_PlanHash);

void BM_ExecuteQuery(benchmark::State& state) {
  CloudWorkloadSpec spec;
  spec.projects = 1;
  spec.queries = 1;
  spec.min_rows = static_cast<size_t>(state.range(0));
  spec.max_rows = static_cast<size_t>(state.range(0));
  spec.seed = 3;
  GeneratedWorkload wk = GenerateCloudWorkload(spec);
  PlanBuilder builder(&wk.db->catalog());
  auto plan = builder.BuildFromSql(wk.sql[0]).value();
  Executor exec(wk.db.get());
  for (auto _ : state) {
    auto result = exec.Execute(*plan);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(state.range(0)));
}
BENCHMARK(BM_ExecuteQuery)->Arg(1000)->Arg(4000);

void BM_LstmForward(benchmark::State& state) {
  Rng rng(1);
  nn::Lstm lstm(16, 32, &rng);
  nn::Tensor seq = nn::Tensor::Uniform(static_cast<size_t>(state.range(0)),
                                       16, 1.0, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(lstm.Forward(seq));
  }
}
BENCHMARK(BM_LstmForward)->Arg(8)->Arg(32);

void BM_MlpTrainStep(benchmark::State& state) {
  Rng rng(1);
  nn::Mlp mlp({8, 16, 64, 16, 1}, &rng);
  nn::Adam adam(mlp.Parameters());
  nn::Tensor x = nn::Tensor::Uniform(16, 8, 1.0, &rng);
  nn::Tensor y = nn::Tensor::Uniform(16, 1, 1.0, &rng);
  for (auto _ : state) {
    adam.ZeroGrad();
    nn::MseLoss(mlp.Forward(x), y).Backward();
    adam.Step();
  }
}
BENCHMARK(BM_MlpTrainStep);

MvsProblem MakeRandomProblem(size_t nq, size_t nz) {
  Rng rng(9);
  MvsProblem p;
  p.overhead.resize(nz);
  for (auto& o : p.overhead) o = rng.Uniform(0.5, 5.0);
  p.benefit.assign(nq, std::vector<double>(nz, 0.0));
  p.frequency.assign(nz, 0);
  for (auto& row : p.benefit) {
    for (auto& b : row) {
      if (rng.Bernoulli(0.3)) b = rng.Uniform(0.1, 3.0);
    }
  }
  p.overlap.assign(nz, std::vector<bool>(nz, false));
  for (size_t j = 0; j < nz; ++j) {
    for (size_t k = j + 1; k < nz; ++k) {
      if (rng.Bernoulli(0.1)) p.overlap[j][k] = p.overlap[k][j] = true;
    }
  }
  return p;
}

void BM_YOptSolveAll(benchmark::State& state) {
  MvsProblem p = MakeRandomProblem(static_cast<size_t>(state.range(0)), 24);
  YOptSolver yopt(&p);
  std::vector<bool> z(24, true);
  for (auto _ : state) {
    benchmark::DoNotOptimize(yopt.SolveAll(z));
  }
}
BENCHMARK(BM_YOptSolveAll)->Arg(50)->Arg(200);

void BM_IterViewIteration(benchmark::State& state) {
  MvsProblem p = MakeRandomProblem(100, 24);
  for (auto _ : state) {
    IterViewSelector iterview = IterViewSelector::IterView(1, 7);
    benchmark::DoNotOptimize(iterview.Select(p));
  }
}
BENCHMARK(BM_IterViewIteration);

/// Deterministic stand-in for one Estimate() call: enough transcendental
/// work per (query, view) cell that the fill is compute-bound, like the
/// Wide-Deep forward pass it models.
double BenefitCellKernel(size_t i, size_t j) {
  double acc = static_cast<double>(i * 131 + j * 17 + 1);
  for (int it = 0; it < 400; ++it) {
    acc = std::log(1.0 + std::fabs(std::sin(acc) * 1.7 + 0.3)) + acc * 1e-6 +
          1.0;
  }
  return acc;
}

/// Thread-scaling over the benefit-matrix fill B(q, v): rows are chunked
/// across a pool of state.range(0) workers, the reduction checksum stays
/// on the calling thread. Run with --benchmark_filter=BenefitMatrixFill
/// --benchmark_out=BENCH_scaling.json --benchmark_out_format=json to
/// emit JSON; speedup(T) = real_time(threads:1) / real_time(threads:T).
void BM_BenefitMatrixFill(benchmark::State& state) {
  const size_t threads = static_cast<size_t>(state.range(0));
  ThreadPool pool(threads);
  const size_t nq = 96;
  const size_t nz = 64;
  std::vector<double> benefit(nq * nz, 0.0);
  double checksum = 0.0;
  for (auto _ : state) {
    pool.ParallelFor(0, nq, [&](size_t i) {
      for (size_t j = 0; j < nz; ++j) {
        benefit[i * nz + j] = BenefitCellKernel(i, j);
      }
    });
    checksum = 0.0;
    for (double b : benefit) checksum += b;  // sequential reduction
    benchmark::DoNotOptimize(checksum);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(nq * nz));
  state.counters["threads"] = static_cast<double>(threads);
  state.counters["cells"] = static_cast<double>(nq * nz);
}
BENCHMARK(BM_BenefitMatrixFill)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace autoview

BENCHMARK_MAIN();
