// Selection-engine scaling micro-benchmark (google-benchmark): IterView
// and RLView wall time on synthetic sparse MVS instances at |Q| x |Z| in
// {50x200, 200x1000, 500x4000} with ~5% nonzero benefits, naive vs
// incremental engine. Both engines are bit-identical by contract
// (tests/problem_index_test.cc); the per-run "utility" counter makes the
// equality visible in the emitted JSON.
//
// Regenerate the checked-in numbers with:
//   ./bench/bench_selection_scale --benchmark_out=../BENCH_selection.json
//       --benchmark_out_format=json
// (single-threaded by construction: one restart, no pool fan-out, so
// the reported speedups are algorithmic, not parallelism.)

#include <benchmark/benchmark.h>

#include "select/iterview.h"
#include "select/rlview.h"
#include "util/logging.h"
#include "util/random.h"

namespace autoview {
namespace {

/// Local ~5% sparse instance generator (mirrors the shape of
/// tests/generators.h RandomSparseProblem; duplicated because the bench
/// tree does not include test headers).
MvsProblem SparseProblem(size_t nq, size_t nz, uint64_t seed,
                         double density = 0.05) {
  Rng rng(seed);
  MvsProblem p;
  p.overhead.resize(nz);
  p.frequency.assign(nz, 0);
  // Cheap views relative to benefits so the optimum is non-empty and the
  // reported "utility" counter carries real bit-identity signal (equal
  // positive utilities) instead of both engines trivially returning the
  // empty incumbent.
  for (auto& o : p.overhead) o = rng.Uniform(0.2, 1.0);
  p.benefit.assign(nq, std::vector<double>(nz, 0.0));
  for (auto& row : p.benefit) {
    for (size_t j = 0; j < nz; ++j) {
      if (!rng.Bernoulli(density)) continue;
      row[j] = rng.Uniform(0.1, 3.0);
      ++p.frequency[j];
    }
  }
  p.overlap.assign(nz, std::vector<bool>(nz, false));
  for (size_t j = 0; j < nz; ++j) {
    for (size_t k = j + 1; k < nz; ++k) {
      if (rng.Bernoulli(0.05)) p.overlap[j][k] = p.overlap[k][j] = true;
    }
  }
  return p;
}

SelectionEngine EngineArg(const benchmark::State& state) {
  return state.range(2) != 0 ? SelectionEngine::kIncremental
                             : SelectionEngine::kNaive;
}

IterViewSelector::Options IterOptions(const benchmark::State& state) {
  IterViewSelector::Options options;
  options.iterations = 12;
  options.seed = 42;
  options.restarts = 1;  // single trial => single thread
  options.engine = EngineArg(state);
  return options;
}

void BM_IterViewSelect(benchmark::State& state) {
  const size_t nq = static_cast<size_t>(state.range(0));
  const size_t nz = static_cast<size_t>(state.range(1));
  const MvsProblem problem = SparseProblem(nq, nz, /*seed=*/1234);
  for (auto _ : state) {
    IterViewSelector selector(IterOptions(state));
    auto result = selector.Select(problem);
    AV_CHECK(result.ok());
    benchmark::DoNotOptimize(result.value().utility);
  }
  // Bit-identical across engines for a given shape (compare in JSON).
  // Computed outside the timing loop: the harness re-invokes this
  // function with zero loop iterations when assembling results, so a
  // counter fed from a loop-local would report the stale initializer.
  auto check = IterViewSelector(IterOptions(state)).Select(problem);
  AV_CHECK(check.ok());
  state.counters["utility"] = check.value().utility;
}

RLViewSelector::Options RlOptions(const benchmark::State& state) {
  RLViewSelector::Options options;
  options.seed = 42;
  options.init_iterations = 3;
  options.episodes = 1;
  options.max_steps_per_episode = 8;
  options.engine = EngineArg(state);
  return options;
}

void BM_RLViewSelect(benchmark::State& state) {
  const size_t nq = static_cast<size_t>(state.range(0));
  const size_t nz = static_cast<size_t>(state.range(1));
  const MvsProblem problem = SparseProblem(nq, nz, /*seed=*/1234);
  for (auto _ : state) {
    RLViewSelector selector(RlOptions(state));
    auto result = selector.Select(problem);
    AV_CHECK(result.ok());
    benchmark::DoNotOptimize(result.value().utility);
  }
  // See BM_IterViewSelect for why this runs outside the timing loop.
  auto check = RLViewSelector(RlOptions(state)).Select(problem);
  AV_CHECK(check.ok());
  state.counters["utility"] = check.value().utility;
}

// Args: {num_queries, num_views, engine} with engine 0 = naive oracle,
// 1 = incremental.
#define SELECTION_SHAPES(bench)                                        \
  BENCHMARK(bench)                                                     \
      ->Unit(benchmark::kMillisecond)                                  \
      ->Args({50, 200, 0})                                             \
      ->Args({50, 200, 1})                                             \
      ->Args({200, 1000, 0})                                           \
      ->Args({200, 1000, 1})                                           \
      ->Args({500, 4000, 0})                                           \
      ->Args({500, 4000, 1})

SELECTION_SHAPES(BM_IterViewSelect);
SELECTION_SHAPES(BM_RLViewSelect);

}  // namespace
}  // namespace autoview

BENCHMARK_MAIN();
