// Reproduces Table I: workload dataset statistics for JOB, WK1, WK2.
//
// Paper-scale reference (Table I): JOB 1/21 projects/tables, 226/398
// queries/subqueries, 1312 equivalent pairs, |Z|=28, |Q|=220, 74
// overlapping pairs; WK1/WK2 are Ant-Financial workloads simulated here
// at bench scale (DESIGN.md §2). The *relationships* between the
// columns — |Z| << #subquery, |Q| close to #query, overlap pairs a
// modest fraction of |Z|^2 — are the properties the selection pipeline
// depends on.

#include "bench_common.h"

int main() {
  using namespace autoview;
  using namespace autoview::bench;

  PrintHeader("Table I: workload datasets");
  TablePrinter table({"workloads", "JOB", "WK1", "WK2"});
  std::vector<std::vector<std::string>> rows(7);
  rows[0] = {"# project / # table"};
  rows[1] = {"# query / # subquery"};
  rows[2] = {"# equivalent pairs"};
  rows[3] = {"# candidate subquery (|Z|)"};
  rows[4] = {"# associated query (|Q|)"};
  rows[5] = {"# overlapping pairs"};
  rows[6] = {"db bytes"};

  for (const char* name : {"JOB", "WK1", "WK2"}) {
    BenchSetup setup = MakeBench(name);
    const WorkloadAnalysis& a = setup.system->analysis();
    rows[0].push_back(StrFormat("%zu/%zu", setup.workload.num_projects,
                                setup.workload.db->TableNames().size()));
    rows[1].push_back(StrFormat("%zu/%zu", a.num_queries, a.num_subqueries));
    rows[2].push_back(StrFormat("%zu", a.num_equivalent_pairs));
    rows[3].push_back(StrFormat("%zu", a.candidates.size()));
    rows[4].push_back(StrFormat("%zu", a.associated_queries.size()));
    rows[5].push_back(StrFormat("%zu", a.num_overlapping_pairs()));
    uint64_t bytes = 0;
    for (const auto& t : setup.workload.db->TableNames()) {
      bytes += setup.workload.db->catalog().GetStats(t).byte_size;
    }
    rows[6].push_back(HumanCount(static_cast<double>(bytes)));
  }
  for (auto& row : rows) table.AddRow(std::move(row));
  table.Print();
  std::printf(
      "\nPaper reference: JOB 226/398 queries/subqueries, 1312 equiv pairs,\n"
      "|Z|=28, |Q|=220, 74 overlapping pairs. Shapes to check: |Z| much\n"
      "smaller than #subquery; |Q| close to #query; overlap pairs a small\n"
      "fraction of |Z|^2.\n");
  return 0;
}
