// Reproduces Table III: MAE / MAPE of the cost-estimation methods on
// JOB, WK1 and WK2.
//
// Methods (paper order): Optimizer, DeepLearn, LR, GBM, N-Exp, N-Str,
// N-Kw, W-D. Each workload's dataset is split 7:1:2 (train/val/test);
// metrics are reported on the test split.
//
// Paper reference (MAPE %): JOB 39.6 / 26.6 / 37.3 / 25.1 / 26.9 /
// 24.4 / 23.1 / 22.8; the shape to reproduce is the ordering
// Optimizer < learned baselines < ablations < W-D (lower = better,
// so Optimizer worst and W-D best), with the plan encoding (N-Exp)
// mattering most among ablations.

#include <memory>

#include "bench_common.h"
#include "costmodel/baselines.h"
#include "costmodel/gbm.h"
#include "costmodel/traditional.h"
#include "costmodel/wide_deep.h"

namespace {

using namespace autoview;
using namespace autoview::bench;

struct MethodResult {
  std::string name;
  EstimatorMetrics metrics;
};

std::vector<MethodResult> RunWorkload(const std::string& workload_name) {
  BenchSetup setup = MakeBench(workload_name);
  const auto& dataset = setup.system->cost_dataset();
  DatasetSplit split = SplitDataset(dataset.size(), /*seed=*/13);
  std::vector<CostSample> train, test;
  for (size_t i : split.train) train.push_back(dataset[i]);
  for (size_t i : split.test) test.push_back(dataset[i]);
  std::printf("  [%s] dataset: %zu samples (%zu train / %zu test)\n",
              workload_name.c_str(), dataset.size(), train.size(),
              test.size());

  const Catalog* catalog = &setup.workload.db->catalog();
  const Pricing pricing = setup.system->pricing();

  std::vector<std::unique_ptr<CostEstimator>> methods;
  methods.push_back(std::make_unique<TraditionalEstimator>(catalog, pricing));
  methods.push_back(std::make_unique<DeepLearnEstimator>(catalog, pricing));
  methods.push_back(std::make_unique<LinearRegressorEstimator>(catalog));
  methods.push_back(std::make_unique<GbmEstimator>(catalog));
  for (WideDeepOptions opts :
       {WideDeepOptions::NExp(), WideDeepOptions::NStr(),
        WideDeepOptions::NKw(), WideDeepOptions::Full()}) {
    opts.epochs = 20;
    opts.batch_size = 16;
    methods.push_back(std::make_unique<WideDeepEstimator>(catalog, opts));
  }

  std::vector<MethodResult> results;
  for (auto& method : methods) {
    AV_CHECK(method->Train(train).ok());
    results.push_back({method->name(), EvaluateEstimator(*method, test)});
    std::printf("    %-10s MAE %.3e  MAPE %.2f%%\n",
                results.back().name.c_str(), results.back().metrics.mae,
                100.0 * results.back().metrics.mape);
  }
  return results;
}

}  // namespace

int main() {
  PrintHeader("Table III: cost estimation (MAE / MAPE on the test split)");
  std::vector<std::string> workloads = {"JOB", "WK1", "WK2"};
  std::vector<std::vector<MethodResult>> all;
  for (const auto& name : workloads) {
    all.push_back(RunWorkload(name));
  }

  TablePrinter table({"Metric", "Optimizer", "DeepLearn", "LR", "GBM",
                      "N-Exp", "N-Str", "N-Kw", "W-D"});
  for (size_t w = 0; w < workloads.size(); ++w) {
    std::vector<std::string> mae_row = {
        StrFormat("MAE x1e-6 (%s)", workloads[w].c_str())};
    std::vector<std::string> mape_row = {
        StrFormat("MAPE%% (%s)", workloads[w].c_str())};
    for (const auto& result : all[w]) {
      mae_row.push_back(FormatDouble(result.metrics.mae * 1e6, 2));
      mape_row.push_back(FormatDouble(100.0 * result.metrics.mape, 2));
    }
    table.AddRow(std::move(mae_row));
    table.AddRow(std::move(mape_row));
  }
  table.Print();
  std::printf(
      "\nPaper shape: Optimizer worst (error accumulates across the three\n"
      "independent estimates), learned numeric baselines (LR/GBM) in the\n"
      "middle, plan-aware neural models best, with full W-D ahead of its\n"
      "N-Exp / N-Str / N-Kw ablations and N-Exp the weakest ablation.\n");
  return 0;
}
