// Reproduces Table IV: best utility and saving ratio of the view
// selection methods — four greedies (at their best k), BigSub, RLView,
// and OPT (exact ILP; solvable on JOB-scale only, as in the paper).
//
// Paper reference (ratio %): JOB 8.97/8.83/11.44/11.70/11.57/12.02 with
// OPT 12.86; WK1 4.44/5.11/4.99/5.08/5.50/5.76; WK2 9.15/10.19/10.18/
// 10.17/10.73/11.14. The shape: iteration-based methods beat greedies,
// RLView beats BigSub, OPT (when solvable) bounds them all.

#include "bench_common.h"
#include "ilp/branch_and_bound.h"
#include "select/iterview.h"
#include "select/rlview.h"
#include "select/selector.h"

namespace {

using namespace autoview;
using namespace autoview::bench;

struct MethodRow {
  std::string name;
  std::string k;
  double utility = 0.0;
};

}  // namespace

int main() {
  PrintHeader("Table IV: optimal results of the view selection methods");
  for (const char* name : {"JOB", "WK1", "WK2"}) {
    BenchSetup setup = MakeBench(name);
    const MvsProblem& problem = setup.system->problem();
    double total_query_cost = 0.0;
    for (double c : setup.system->query_costs()) total_query_cost += c;
    const size_t nz = problem.num_views();
    std::printf("\n[%s] |Z| = %zu, total workload cost %.3e$\n", name, nz,
                total_query_cost);

    std::vector<MethodRow> rows;

    // Greedy methods: sweep k, keep the best.
    for (TopkStrategy strategy :
         {TopkStrategy::kFrequency, TopkStrategy::kOverhead,
          TopkStrategy::kBenefit, TopkStrategy::kNormalized}) {
      TopkSelector selector(strategy, 0);
      double best = 0.0;
      size_t best_k = 0;
      for (size_t k = 0; k <= nz; ++k) {
        selector.set_k(k);
        auto result = selector.Select(problem);
        AV_CHECK(result.ok());
        if (result.value().utility > best) {
          best = result.value().utility;
          best_k = k;
        }
      }
      rows.push_back({TopkStrategyName(strategy), StrFormat("%zu", best_k),
                      best});
    }

    // Iteration-based methods; k = iteration of the best utility.
    const size_t iters = name == std::string("JOB") ? 100 : 160;
    IterViewSelector bigsub = IterViewSelector::BigSub(iters, 23);
    auto bigsub_result = bigsub.Select(problem);
    AV_CHECK(bigsub_result.ok());
    size_t bigsub_k = 0;
    for (size_t i = 0; i < bigsub.utility_trace().size(); ++i) {
      if (bigsub.utility_trace()[i] >= bigsub_result.value().utility) {
        bigsub_k = i;
        break;
      }
    }
    rows.push_back({"BigSub", StrFormat("%zu", bigsub_k),
                    bigsub_result.value().utility});

    RLViewSelector::Options rl_opts;
    rl_opts.init_iterations = 10;
    rl_opts.episodes = name == std::string("JOB") ? 30 : 20;
    rl_opts.seed = 23;
    RLViewSelector rlview(rl_opts);
    auto rl_result = rlview.Select(problem);
    AV_CHECK(rl_result.ok());
    size_t rl_k = 0;
    for (size_t i = 0; i < rlview.utility_trace().size(); ++i) {
      if (rlview.utility_trace()[i] >= rl_result.value().utility) {
        rl_k = i;
        break;
      }
    }
    rows.push_back(
        {"RLView", StrFormat("%zu", rl_k), rl_result.value().utility});

    // OPT: exact ILP. Succeeds on JOB scale; the paper's solvers fail on
    // WK1/WK2 and so (by design) may this budgeted search.
    BranchAndBoundSolver::Options bb_opts;
    bb_opts.max_nodes = 4'000'000;
    BranchAndBoundSolver solver(bb_opts);
    auto opt_result = solver.Solve(problem);
    if (opt_result.ok()) {
      rows.push_back({"OPT", "-", opt_result.value().utility});
    } else {
      std::printf("  OPT: %s\n", opt_result.status().ToString().c_str());
      rows.push_back({"OPT", "-", -1.0});
    }

    TablePrinter table({"method", "k", "utility($ x 1e-6)", "ratio(%)"});
    for (const auto& row : rows) {
      table.AddRow(
          {row.name, row.k,
           row.utility < 0 ? "fail" : FormatDouble(row.utility * 1e6, 2),
           row.utility < 0
               ? "-"
               : FormatDouble(100.0 * row.utility / total_query_cost, 2)});
    }
    table.Print();
  }
  std::printf(
      "\nPaper shape: iteration-based methods (BigSub, RLView) beat the\n"
      "greedies, RLView beats BigSub, and OPT (JOB only) upper-bounds\n"
      "everything.\n");
  return 0;
}
