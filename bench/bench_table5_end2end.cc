// Reproduces Table V: end-to-end results of the four estimator x
// selector combinations — O&B (Optimizer+BigSub), O&R (Optimizer+
// RLView), W&B (W-D+BigSub), W&R (W-D+RLView) — on JOB and on single
// projects P1 (from WK1) and P2 (from WK2).
//
// Paper reference (saving ratio r_c %): JOB 9.36/11.70/10.27/12.02;
// P1 8.45/8.98/8.73/9.19; P2 6.69/8.07/7.60/8.81. Headline: W&R beats
// O&B by 28.4% / 8.8% / 31.7% relative. Shapes: better cost model =>
// better selection (W&* >= O&*), RLView >= BigSub, and more views does
// not imply more saving.

#include <memory>

#include "bench_common.h"
#include "costmodel/fallback.h"
#include "costmodel/traditional.h"
#include "costmodel/wide_deep.h"
#include "select/iterview.h"
#include "select/rlview.h"
#include "util/metrics.h"

namespace {

using namespace autoview;
using namespace autoview::bench;

/// Builds one of the Table V datasets. P1/P2 take the busiest project
/// of WK1/WK2 and use exact benefits (small enough to execute fully, as
/// the paper does).
BenchSetup MakeTable5Dataset(const std::string& name) {
  if (name == "JOB") return MakeBench("JOB");
  CloudWorkloadSpec spec = name == "P1" ? Wk1Spec(BenchScale())
                                        : Wk2Spec(BenchScale());
  GeneratedWorkload full = GenerateCloudWorkload(spec);
  // Find the project with the most queries.
  std::vector<size_t> counts(full.num_projects, 0);
  for (size_t p : full.project_of) ++counts[p];
  size_t best = 0;
  for (size_t p = 0; p < counts.size(); ++p) {
    if (counts[p] > counts[best]) best = p;
  }
  BenchSetup setup;
  setup.workload.name = name;
  setup.workload.db = std::move(full.db);
  setup.workload.num_projects = 1;
  for (size_t qi = 0; qi < full.sql.size(); ++qi) {
    if (full.project_of[qi] == best) {
      setup.workload.sql.push_back(full.sql[qi]);
      setup.workload.project_of.push_back(0);
    }
  }
  AutoViewOptions options;
  options.exact_benefits = true;
  setup.system = std::make_unique<AutoViewSystem>(setup.workload.db.get(),
                                                  options);
  AV_CHECK(setup.system->LoadWorkload(setup.workload.sql).ok());
  AV_CHECK(setup.system->BuildGroundTruth().ok());
  return setup;
}

struct ComboResult {
  std::string name;
  EndToEndReport report;
};

}  // namespace

int main() {
  PrintHeader("Table V: end-to-end results (O&B, O&R, W&B, W&R)");
  std::vector<std::string> datasets = {"JOB", "P1", "P2"};
  std::vector<double> obr_ratio, wrr_ratio;

  for (const auto& dataset_name : datasets) {
    BenchSetup setup = MakeTable5Dataset(dataset_name);
    const Catalog* catalog = &setup.workload.db->catalog();
    const Pricing pricing = setup.system->pricing();

    // Raw workload header numbers.
    double raw_cost = 0.0;
    for (double c : setup.system->query_costs()) raw_cost += c;
    std::printf("\n[%s] #q = %zu, c_q = %.4e$\n", dataset_name.c_str(),
                setup.system->queries().size(), raw_cost);

    // The two estimators of the paper's comparison.
    TraditionalEstimator optimizer(catalog, pricing);
    WideDeepOptions wd_opts = WideDeepOptions::Full();
    wd_opts.epochs = 20;
    WideDeepEstimator wd(catalog, wd_opts);
    // The W-D combos go through the degradation wrapper: a NaN/Inf
    // prediction (or failed training) falls back to the Optimizer per
    // call instead of poisoning the benefit matrix. Pass-through when
    // healthy, so Table V numbers are unchanged.
    FallbackEstimator guarded(&wd, &optimizer);
    AV_CHECK(guarded.Train(setup.system->cost_dataset()).ok());

    std::vector<ComboResult> combos;
    for (const auto& [combo_name, estimator] :
         std::vector<std::pair<std::string, const CostEstimator*>>{
             {"O&B", &optimizer},
             {"O&R", &optimizer},
             {"W&B", &guarded},
             {"W&R", &guarded}}) {
      auto estimated = setup.system->EstimateProblem(*estimator);
      AV_CHECK(estimated.ok());
      Result<MvsSolution> solution = [&]() -> Result<MvsSolution> {
        if (combo_name == "O&B" || combo_name == "W&B") {
          IterViewSelector bigsub = IterViewSelector::BigSub(120, 11);
          return bigsub.Select(estimated.value());
        }
        RLViewSelector::Options opts;
        opts.init_iterations = 10;
        opts.episodes = 25;
        opts.seed = 11;
        RLViewSelector rlview(opts);
        return rlview.Select(estimated.value());
      }();
      AV_CHECK(solution.ok());
      auto report = setup.system->ExecuteSolution(solution.value());
      AV_CHECK(report.ok());
      combos.push_back({combo_name, report.value()});
    }

    TablePrinter table({"method", "#(q|v)", "#m", "o_m($ x1e-6)",
                        "b_(q|v)($ x1e-6)", "l_q(min)", "r_c(%)"});
    for (const auto& combo : combos) {
      const auto& r = combo.report;
      table.AddRow({combo.name, StrFormat("%zu", r.num_rewritten),
                    StrFormat("%zu", r.num_views),
                    FormatDouble(r.view_overhead * 1e6, 2),
                    FormatDouble(r.benefit * 1e6, 2),
                    FormatDouble(r.rewritten_latency_min, 4),
                    FormatDouble(100.0 * r.ratio(), 2)});
    }
    table.Print();
    if (guarded.fallback_calls() > 0) {
      std::printf("  [degraded] %llu W-D predictions served by %s\n",
                  static_cast<unsigned long long>(guarded.fallback_calls()),
                  optimizer.name().c_str());
    }
    obr_ratio.push_back(combos[0].report.ratio());
    wrr_ratio.push_back(combos[3].report.ratio());
  }

  std::printf("\nHeadline (W&R vs O&B relative improvement of r_c):\n");
  const char* paper[] = {"28.4", "8.8", "31.7"};
  for (size_t d = 0; d < datasets.size(); ++d) {
    const double rel = obr_ratio[d] > 0
                           ? 100.0 * (wrr_ratio[d] - obr_ratio[d]) /
                                 obr_ratio[d]
                           : 0.0;
    std::printf("  %s: measured %+.1f%%  (paper: +%s%%)\n",
                datasets[d].c_str(), rel, paper[d]);
  }
  return 0;
}
