// Throughput harness: runs the load generator over the WK1/WK2 presets
// (scaled and, with --full-too or AUTOVIEW_BENCH_FULL=1, the full paper
// counts of Table I) and writes BENCH_throughput.json. Each row reports
// QPS and p50/p95/p99 latency of the parse -> rewrite -> execute serving
// path after view selection, plus the compressed benefit-matrix
// footprint and peak RSS of the whole pipeline.
//
// Usage: bench_throughput [loadgen flags...] — flags are forwarded to
// ParseLoadGenArgs and applied on top of each preset row (e.g.
// --clients=16 --measure_s=10).

#include <cstdlib>
#include <cstring>

#include "bench/loadgen.h"
#include "bench_common.h"

namespace autoview {
namespace bench {
namespace {

int Run(int argc, char** argv) {
  bool full_too = std::getenv("AUTOVIEW_BENCH_FULL") != nullptr;
  std::vector<std::string> flags;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--full-too") == 0) {
      full_too = true;
    } else {
      flags.push_back(argv[i]);
    }
  }

  struct Row {
    const char* workload;
    bool full;
    uint64_t view_budget_bytes;  // 0 = unlimited store
    bool online = false;         // serve through the OnlineAdvisor
    const char* drift = "";      // request-mix drift (online rows)
    bool fast_path = true;       // RewriteServing vs sequential oracle
  };
  // The third row reruns WK1 under a deliberately tight view-store
  // budget — about half the ~110 KB the unlimited WK1-scaled store
  // occupies — showing the utility-per-byte eviction path end to end
  // (store bytes stay <= budget, evicted views degrade to base-table
  // serving, zero failed requests). The last two rows serve WK1 through
  // the online advisor — stationary and under churn drift — so the
  // streaming ingest -> incremental re-clustering/re-indexing ->
  // warm-started re-selection -> generation hot-swap loop runs end to
  // end (reselections/swaps_committed > 0, zero failed requests).
  std::vector<Row> rows = {{"WK1", false, 0},
                           {"WK2", false, 0},
                           {"WK1", false, 48 * 1024},
                           {"WK1", false, 0, true, ""},
                           {"WK1", false, 0, true, "churn"}};
  if (full_too) {
    rows.push_back({"WK1", true, 0});
    rows.push_back({"WK2", true, 0});
    // Oracle contrast row: WK2 at full scale with the fast path off, so
    // the JSON records the before/after of the serving fast path (the
    // sequential per-view rewrite scan dominates p50 at 157.6k queries /
    // full view counts; the indexed walk + rewrite cache removes it).
    rows.push_back({"WK2", true, 0, false, "", false});
  }

  std::vector<LoadGenResult> results;
  for (const Row& row : rows) {
    std::vector<std::string> args = flags;
    args.push_back(StrFormat("--workload=%s", row.workload));
    args.push_back(StrFormat("--full=%s", row.full ? "true" : "false"));
    if (row.view_budget_bytes > 0) {
      args.push_back(StrFormat(
          "--view_budget_bytes=%llu",
          static_cast<unsigned long long>(row.view_budget_bytes)));
    }
    if (row.online) {
      // Online rows run the deterministic scheduled mode (drift progress
      // is schedule position) with a short per-epoch re-selection.
      args.push_back("--online=true");
      args.push_back(StrFormat("--drift=%s", row.drift));
      args.push_back("--max_requests=100");
      args.push_back("--advisor_epoch=25");
    }
    if (!row.fast_path) {
      args.push_back("--fast_path=false");
    }
    Result<LoadGenConfig> config = ParseLoadGenArgs(args);
    if (!config.ok()) {
      std::fprintf(stderr, "bad flags: %s\n",
                   config.status().ToString().c_str());
      return 1;
    }
    // Full-scale rows keep the run bounded: a fixed request budget per
    // client instead of a timed window, and a short selection deadline.
    if (row.full && config.value().max_requests == 0) {
      config.value().max_requests = 25;
    }
    std::fprintf(stderr, "[bench_throughput] %s %s%s%s%s ...\n", row.workload,
                 row.full ? "full" : "scaled",
                 row.online ? " online" : "",
                 row.online && row.drift[0] != '\0' ? " drift" : "",
                 row.fast_path ? "" : " oracle");
    Result<LoadGenResult> result = RunLoadGen(config.value());
    if (!result.ok()) {
      std::fprintf(stderr, "loadgen failed: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    results.push_back(result.value());
    std::fprintf(stderr,
                 "[bench_throughput] %s %s: %zu req, %.1f qps, "
                 "p50 %.3f ms, p99 %.3f ms, rss %.1f MB\n",
                 row.workload, row.full ? "full" : "scaled",
                 results.back().requests, results.back().qps,
                 results.back().p50_ms, results.back().p99_ms,
                 results.back().peak_rss_mb);
  }

  const std::string json = ThroughputJson(results);
  std::fputs(json.c_str(), stdout);
  Status write = WriteTextFile("BENCH_throughput.json", json);
  if (!write.ok()) {
    std::fprintf(stderr, "write failed: %s\n", write.ToString().c_str());
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace autoview

int main(int argc, char** argv) { return autoview::bench::Run(argc, argv); }
