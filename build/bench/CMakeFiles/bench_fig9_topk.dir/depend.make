# Empty dependencies file for bench_fig9_topk.
# This may be replaced when dependencies are built.
