file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_cost_estimation.dir/bench_table3_cost_estimation.cc.o"
  "CMakeFiles/bench_table3_cost_estimation.dir/bench_table3_cost_estimation.cc.o.d"
  "bench_table3_cost_estimation"
  "bench_table3_cost_estimation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_cost_estimation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
