# Empty compiler generated dependencies file for bench_table5_end2end.
# This may be replaced when dependencies are built.
