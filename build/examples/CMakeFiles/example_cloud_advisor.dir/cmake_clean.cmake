file(REMOVE_RECURSE
  "CMakeFiles/example_cloud_advisor.dir/cloud_advisor.cpp.o"
  "CMakeFiles/example_cloud_advisor.dir/cloud_advisor.cpp.o.d"
  "example_cloud_advisor"
  "example_cloud_advisor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_cloud_advisor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
