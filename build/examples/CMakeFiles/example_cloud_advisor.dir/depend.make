# Empty dependencies file for example_cloud_advisor.
# This may be replaced when dependencies are built.
