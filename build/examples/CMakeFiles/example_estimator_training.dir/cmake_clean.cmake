file(REMOVE_RECURSE
  "CMakeFiles/example_estimator_training.dir/estimator_training.cpp.o"
  "CMakeFiles/example_estimator_training.dir/estimator_training.cpp.o.d"
  "example_estimator_training"
  "example_estimator_training.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_estimator_training.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
