# Empty compiler generated dependencies file for example_estimator_training.
# This may be replaced when dependencies are built.
