file(REMOVE_RECURSE
  "CMakeFiles/example_offline_online.dir/offline_online.cpp.o"
  "CMakeFiles/example_offline_online.dir/offline_online.cpp.o.d"
  "example_offline_online"
  "example_offline_online.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_offline_online.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
