# Empty dependencies file for example_offline_online.
# This may be replaced when dependencies are built.
