
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/rewrite_demo.cpp" "examples/CMakeFiles/example_rewrite_demo.dir/rewrite_demo.cpp.o" "gcc" "examples/CMakeFiles/example_rewrite_demo.dir/rewrite_demo.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/autoview_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/autoview_costmodel.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/autoview_select.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/autoview_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/autoview_ilp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/autoview_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/autoview_subquery.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/autoview_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/autoview_plan.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/autoview_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/autoview_catalog.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/autoview_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
