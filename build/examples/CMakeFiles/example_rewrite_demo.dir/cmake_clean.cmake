file(REMOVE_RECURSE
  "CMakeFiles/example_rewrite_demo.dir/rewrite_demo.cpp.o"
  "CMakeFiles/example_rewrite_demo.dir/rewrite_demo.cpp.o.d"
  "example_rewrite_demo"
  "example_rewrite_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_rewrite_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
