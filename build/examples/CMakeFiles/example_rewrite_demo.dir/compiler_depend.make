# Empty compiler generated dependencies file for example_rewrite_demo.
# This may be replaced when dependencies are built.
