file(REMOVE_RECURSE
  "CMakeFiles/autoview_catalog.dir/catalog/catalog.cc.o"
  "CMakeFiles/autoview_catalog.dir/catalog/catalog.cc.o.d"
  "CMakeFiles/autoview_catalog.dir/catalog/schema.cc.o"
  "CMakeFiles/autoview_catalog.dir/catalog/schema.cc.o.d"
  "CMakeFiles/autoview_catalog.dir/catalog/value.cc.o"
  "CMakeFiles/autoview_catalog.dir/catalog/value.cc.o.d"
  "libautoview_catalog.a"
  "libautoview_catalog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autoview_catalog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
