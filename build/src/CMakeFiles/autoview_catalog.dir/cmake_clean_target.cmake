file(REMOVE_RECURSE
  "libautoview_catalog.a"
)
