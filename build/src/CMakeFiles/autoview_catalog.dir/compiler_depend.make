# Empty compiler generated dependencies file for autoview_catalog.
# This may be replaced when dependencies are built.
