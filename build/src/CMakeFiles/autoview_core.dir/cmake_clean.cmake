file(REMOVE_RECURSE
  "CMakeFiles/autoview_core.dir/core/autoview.cc.o"
  "CMakeFiles/autoview_core.dir/core/autoview.cc.o.d"
  "CMakeFiles/autoview_core.dir/core/metadata.cc.o"
  "CMakeFiles/autoview_core.dir/core/metadata.cc.o.d"
  "libautoview_core.a"
  "libautoview_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autoview_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
