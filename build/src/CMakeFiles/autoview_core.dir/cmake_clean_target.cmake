file(REMOVE_RECURSE
  "libautoview_core.a"
)
