# Empty dependencies file for autoview_core.
# This may be replaced when dependencies are built.
