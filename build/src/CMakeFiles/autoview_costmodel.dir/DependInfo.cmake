
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/costmodel/baselines.cc" "src/CMakeFiles/autoview_costmodel.dir/costmodel/baselines.cc.o" "gcc" "src/CMakeFiles/autoview_costmodel.dir/costmodel/baselines.cc.o.d"
  "/root/repo/src/costmodel/encoders.cc" "src/CMakeFiles/autoview_costmodel.dir/costmodel/encoders.cc.o" "gcc" "src/CMakeFiles/autoview_costmodel.dir/costmodel/encoders.cc.o.d"
  "/root/repo/src/costmodel/estimator.cc" "src/CMakeFiles/autoview_costmodel.dir/costmodel/estimator.cc.o" "gcc" "src/CMakeFiles/autoview_costmodel.dir/costmodel/estimator.cc.o.d"
  "/root/repo/src/costmodel/features.cc" "src/CMakeFiles/autoview_costmodel.dir/costmodel/features.cc.o" "gcc" "src/CMakeFiles/autoview_costmodel.dir/costmodel/features.cc.o.d"
  "/root/repo/src/costmodel/gbm.cc" "src/CMakeFiles/autoview_costmodel.dir/costmodel/gbm.cc.o" "gcc" "src/CMakeFiles/autoview_costmodel.dir/costmodel/gbm.cc.o.d"
  "/root/repo/src/costmodel/traditional.cc" "src/CMakeFiles/autoview_costmodel.dir/costmodel/traditional.cc.o" "gcc" "src/CMakeFiles/autoview_costmodel.dir/costmodel/traditional.cc.o.d"
  "/root/repo/src/costmodel/wide_deep.cc" "src/CMakeFiles/autoview_costmodel.dir/costmodel/wide_deep.cc.o" "gcc" "src/CMakeFiles/autoview_costmodel.dir/costmodel/wide_deep.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/autoview_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/autoview_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/autoview_subquery.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/autoview_plan.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/autoview_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/autoview_catalog.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/autoview_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
