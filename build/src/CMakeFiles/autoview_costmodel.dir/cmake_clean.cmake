file(REMOVE_RECURSE
  "CMakeFiles/autoview_costmodel.dir/costmodel/baselines.cc.o"
  "CMakeFiles/autoview_costmodel.dir/costmodel/baselines.cc.o.d"
  "CMakeFiles/autoview_costmodel.dir/costmodel/encoders.cc.o"
  "CMakeFiles/autoview_costmodel.dir/costmodel/encoders.cc.o.d"
  "CMakeFiles/autoview_costmodel.dir/costmodel/estimator.cc.o"
  "CMakeFiles/autoview_costmodel.dir/costmodel/estimator.cc.o.d"
  "CMakeFiles/autoview_costmodel.dir/costmodel/features.cc.o"
  "CMakeFiles/autoview_costmodel.dir/costmodel/features.cc.o.d"
  "CMakeFiles/autoview_costmodel.dir/costmodel/gbm.cc.o"
  "CMakeFiles/autoview_costmodel.dir/costmodel/gbm.cc.o.d"
  "CMakeFiles/autoview_costmodel.dir/costmodel/traditional.cc.o"
  "CMakeFiles/autoview_costmodel.dir/costmodel/traditional.cc.o.d"
  "CMakeFiles/autoview_costmodel.dir/costmodel/wide_deep.cc.o"
  "CMakeFiles/autoview_costmodel.dir/costmodel/wide_deep.cc.o.d"
  "libautoview_costmodel.a"
  "libautoview_costmodel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autoview_costmodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
