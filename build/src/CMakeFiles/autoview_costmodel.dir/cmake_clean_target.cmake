file(REMOVE_RECURSE
  "libautoview_costmodel.a"
)
