# Empty dependencies file for autoview_costmodel.
# This may be replaced when dependencies are built.
