
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/engine/cost.cc" "src/CMakeFiles/autoview_engine.dir/engine/cost.cc.o" "gcc" "src/CMakeFiles/autoview_engine.dir/engine/cost.cc.o.d"
  "/root/repo/src/engine/database.cc" "src/CMakeFiles/autoview_engine.dir/engine/database.cc.o" "gcc" "src/CMakeFiles/autoview_engine.dir/engine/database.cc.o.d"
  "/root/repo/src/engine/executor.cc" "src/CMakeFiles/autoview_engine.dir/engine/executor.cc.o" "gcc" "src/CMakeFiles/autoview_engine.dir/engine/executor.cc.o.d"
  "/root/repo/src/engine/rewriter.cc" "src/CMakeFiles/autoview_engine.dir/engine/rewriter.cc.o" "gcc" "src/CMakeFiles/autoview_engine.dir/engine/rewriter.cc.o.d"
  "/root/repo/src/engine/table.cc" "src/CMakeFiles/autoview_engine.dir/engine/table.cc.o" "gcc" "src/CMakeFiles/autoview_engine.dir/engine/table.cc.o.d"
  "/root/repo/src/engine/view_store.cc" "src/CMakeFiles/autoview_engine.dir/engine/view_store.cc.o" "gcc" "src/CMakeFiles/autoview_engine.dir/engine/view_store.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/autoview_plan.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/autoview_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/autoview_catalog.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/autoview_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
