file(REMOVE_RECURSE
  "CMakeFiles/autoview_engine.dir/engine/cost.cc.o"
  "CMakeFiles/autoview_engine.dir/engine/cost.cc.o.d"
  "CMakeFiles/autoview_engine.dir/engine/database.cc.o"
  "CMakeFiles/autoview_engine.dir/engine/database.cc.o.d"
  "CMakeFiles/autoview_engine.dir/engine/executor.cc.o"
  "CMakeFiles/autoview_engine.dir/engine/executor.cc.o.d"
  "CMakeFiles/autoview_engine.dir/engine/rewriter.cc.o"
  "CMakeFiles/autoview_engine.dir/engine/rewriter.cc.o.d"
  "CMakeFiles/autoview_engine.dir/engine/table.cc.o"
  "CMakeFiles/autoview_engine.dir/engine/table.cc.o.d"
  "CMakeFiles/autoview_engine.dir/engine/view_store.cc.o"
  "CMakeFiles/autoview_engine.dir/engine/view_store.cc.o.d"
  "libautoview_engine.a"
  "libautoview_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autoview_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
