file(REMOVE_RECURSE
  "libautoview_engine.a"
)
