# Empty compiler generated dependencies file for autoview_engine.
# This may be replaced when dependencies are built.
