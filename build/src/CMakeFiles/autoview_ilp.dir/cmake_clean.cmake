file(REMOVE_RECURSE
  "CMakeFiles/autoview_ilp.dir/ilp/branch_and_bound.cc.o"
  "CMakeFiles/autoview_ilp.dir/ilp/branch_and_bound.cc.o.d"
  "CMakeFiles/autoview_ilp.dir/ilp/problem.cc.o"
  "CMakeFiles/autoview_ilp.dir/ilp/problem.cc.o.d"
  "libautoview_ilp.a"
  "libautoview_ilp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autoview_ilp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
