file(REMOVE_RECURSE
  "libautoview_ilp.a"
)
