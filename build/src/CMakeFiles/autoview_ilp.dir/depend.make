# Empty dependencies file for autoview_ilp.
# This may be replaced when dependencies are built.
