file(REMOVE_RECURSE
  "CMakeFiles/autoview_nn.dir/nn/modules.cc.o"
  "CMakeFiles/autoview_nn.dir/nn/modules.cc.o.d"
  "CMakeFiles/autoview_nn.dir/nn/optimizer.cc.o"
  "CMakeFiles/autoview_nn.dir/nn/optimizer.cc.o.d"
  "CMakeFiles/autoview_nn.dir/nn/serialize.cc.o"
  "CMakeFiles/autoview_nn.dir/nn/serialize.cc.o.d"
  "CMakeFiles/autoview_nn.dir/nn/tensor.cc.o"
  "CMakeFiles/autoview_nn.dir/nn/tensor.cc.o.d"
  "libautoview_nn.a"
  "libautoview_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autoview_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
