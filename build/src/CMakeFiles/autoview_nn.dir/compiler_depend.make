# Empty compiler generated dependencies file for autoview_nn.
# This may be replaced when dependencies are built.
