file(REMOVE_RECURSE
  "CMakeFiles/autoview_plan.dir/plan/builder.cc.o"
  "CMakeFiles/autoview_plan.dir/plan/builder.cc.o.d"
  "CMakeFiles/autoview_plan.dir/plan/canonical.cc.o"
  "CMakeFiles/autoview_plan.dir/plan/canonical.cc.o.d"
  "CMakeFiles/autoview_plan.dir/plan/expr.cc.o"
  "CMakeFiles/autoview_plan.dir/plan/expr.cc.o.d"
  "CMakeFiles/autoview_plan.dir/plan/plan.cc.o"
  "CMakeFiles/autoview_plan.dir/plan/plan.cc.o.d"
  "libautoview_plan.a"
  "libautoview_plan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autoview_plan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
