
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/select/iterview.cc" "src/CMakeFiles/autoview_select.dir/select/iterview.cc.o" "gcc" "src/CMakeFiles/autoview_select.dir/select/iterview.cc.o.d"
  "/root/repo/src/select/rlview.cc" "src/CMakeFiles/autoview_select.dir/select/rlview.cc.o" "gcc" "src/CMakeFiles/autoview_select.dir/select/rlview.cc.o.d"
  "/root/repo/src/select/topk.cc" "src/CMakeFiles/autoview_select.dir/select/topk.cc.o" "gcc" "src/CMakeFiles/autoview_select.dir/select/topk.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/autoview_ilp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/autoview_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/autoview_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
