file(REMOVE_RECURSE
  "CMakeFiles/autoview_select.dir/select/iterview.cc.o"
  "CMakeFiles/autoview_select.dir/select/iterview.cc.o.d"
  "CMakeFiles/autoview_select.dir/select/rlview.cc.o"
  "CMakeFiles/autoview_select.dir/select/rlview.cc.o.d"
  "CMakeFiles/autoview_select.dir/select/topk.cc.o"
  "CMakeFiles/autoview_select.dir/select/topk.cc.o.d"
  "libautoview_select.a"
  "libautoview_select.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autoview_select.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
