file(REMOVE_RECURSE
  "libautoview_select.a"
)
