# Empty dependencies file for autoview_select.
# This may be replaced when dependencies are built.
