file(REMOVE_RECURSE
  "CMakeFiles/autoview_sql.dir/sql/ast.cc.o"
  "CMakeFiles/autoview_sql.dir/sql/ast.cc.o.d"
  "CMakeFiles/autoview_sql.dir/sql/parser.cc.o"
  "CMakeFiles/autoview_sql.dir/sql/parser.cc.o.d"
  "CMakeFiles/autoview_sql.dir/sql/token.cc.o"
  "CMakeFiles/autoview_sql.dir/sql/token.cc.o.d"
  "libautoview_sql.a"
  "libautoview_sql.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autoview_sql.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
