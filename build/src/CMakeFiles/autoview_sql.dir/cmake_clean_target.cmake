file(REMOVE_RECURSE
  "libautoview_sql.a"
)
