file(REMOVE_RECURSE
  "CMakeFiles/autoview_subquery.dir/subquery/clusterer.cc.o"
  "CMakeFiles/autoview_subquery.dir/subquery/clusterer.cc.o.d"
  "CMakeFiles/autoview_subquery.dir/subquery/extractor.cc.o"
  "CMakeFiles/autoview_subquery.dir/subquery/extractor.cc.o.d"
  "CMakeFiles/autoview_subquery.dir/subquery/verify.cc.o"
  "CMakeFiles/autoview_subquery.dir/subquery/verify.cc.o.d"
  "libautoview_subquery.a"
  "libautoview_subquery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autoview_subquery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
