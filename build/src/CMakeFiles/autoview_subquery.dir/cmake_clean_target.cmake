file(REMOVE_RECURSE
  "libautoview_subquery.a"
)
