# Empty compiler generated dependencies file for autoview_subquery.
# This may be replaced when dependencies are built.
