# Empty dependencies file for autoview_subquery.
# This may be replaced when dependencies are built.
