file(REMOVE_RECURSE
  "CMakeFiles/autoview_util.dir/util/logging.cc.o"
  "CMakeFiles/autoview_util.dir/util/logging.cc.o.d"
  "CMakeFiles/autoview_util.dir/util/metrics.cc.o"
  "CMakeFiles/autoview_util.dir/util/metrics.cc.o.d"
  "CMakeFiles/autoview_util.dir/util/random.cc.o"
  "CMakeFiles/autoview_util.dir/util/random.cc.o.d"
  "CMakeFiles/autoview_util.dir/util/status.cc.o"
  "CMakeFiles/autoview_util.dir/util/status.cc.o.d"
  "CMakeFiles/autoview_util.dir/util/strings.cc.o"
  "CMakeFiles/autoview_util.dir/util/strings.cc.o.d"
  "CMakeFiles/autoview_util.dir/util/table_printer.cc.o"
  "CMakeFiles/autoview_util.dir/util/table_printer.cc.o.d"
  "libautoview_util.a"
  "libautoview_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autoview_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
