# Empty compiler generated dependencies file for autoview_util.
# This may be replaced when dependencies are built.
