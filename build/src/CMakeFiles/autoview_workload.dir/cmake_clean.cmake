file(REMOVE_RECURSE
  "CMakeFiles/autoview_workload.dir/workload/generator.cc.o"
  "CMakeFiles/autoview_workload.dir/workload/generator.cc.o.d"
  "libautoview_workload.a"
  "libautoview_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autoview_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
