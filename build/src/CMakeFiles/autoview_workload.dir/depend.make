# Empty dependencies file for autoview_workload.
# This may be replaced when dependencies are built.
