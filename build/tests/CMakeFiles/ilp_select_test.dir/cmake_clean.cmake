file(REMOVE_RECURSE
  "CMakeFiles/ilp_select_test.dir/ilp_select_test.cc.o"
  "CMakeFiles/ilp_select_test.dir/ilp_select_test.cc.o.d"
  "ilp_select_test"
  "ilp_select_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ilp_select_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
