# Empty compiler generated dependencies file for ilp_select_test.
# This may be replaced when dependencies are built.
