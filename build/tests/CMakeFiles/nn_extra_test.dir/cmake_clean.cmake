file(REMOVE_RECURSE
  "CMakeFiles/nn_extra_test.dir/nn_extra_test.cc.o"
  "CMakeFiles/nn_extra_test.dir/nn_extra_test.cc.o.d"
  "nn_extra_test"
  "nn_extra_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nn_extra_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
