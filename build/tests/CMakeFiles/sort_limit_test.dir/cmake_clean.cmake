file(REMOVE_RECURSE
  "CMakeFiles/sort_limit_test.dir/sort_limit_test.cc.o"
  "CMakeFiles/sort_limit_test.dir/sort_limit_test.cc.o.d"
  "sort_limit_test"
  "sort_limit_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sort_limit_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
