# Empty dependencies file for sort_limit_test.
# This may be replaced when dependencies are built.
