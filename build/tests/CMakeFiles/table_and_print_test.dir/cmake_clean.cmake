file(REMOVE_RECURSE
  "CMakeFiles/table_and_print_test.dir/table_and_print_test.cc.o"
  "CMakeFiles/table_and_print_test.dir/table_and_print_test.cc.o.d"
  "table_and_print_test"
  "table_and_print_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_and_print_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
