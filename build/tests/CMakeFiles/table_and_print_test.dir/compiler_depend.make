# Empty compiler generated dependencies file for table_and_print_test.
# This may be replaced when dependencies are built.
