file(REMOVE_RECURSE
  "CMakeFiles/traditional_test.dir/traditional_test.cc.o"
  "CMakeFiles/traditional_test.dir/traditional_test.cc.o.d"
  "traditional_test"
  "traditional_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/traditional_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
