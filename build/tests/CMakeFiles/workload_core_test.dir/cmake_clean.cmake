file(REMOVE_RECURSE
  "CMakeFiles/workload_core_test.dir/workload_core_test.cc.o"
  "CMakeFiles/workload_core_test.dir/workload_core_test.cc.o.d"
  "workload_core_test"
  "workload_core_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workload_core_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
