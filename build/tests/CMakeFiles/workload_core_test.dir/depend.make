# Empty dependencies file for workload_core_test.
# This may be replaced when dependencies are built.
