// Cloud view advisor: the end-to-end system (Fig. 3) on a synthetic
// multi-project cloud analytics workload — the scenario that motivates
// the paper (Alibaba Cloud projects full of redundant subqueries).
//
// Generates a workload, pre-processes it (extract / detect equivalent /
// cluster), measures ground truth, selects views with RLView, executes
// the rewritten workload, and prints the recommendation report.
//
//   ./example_cloud_advisor [num_queries]

#include <cstdio>
#include <cstdlib>

#include "core/autoview.h"
#include "plan/canonical.h"
#include "select/rlview.h"
#include "util/strings.h"
#include "util/table_printer.h"
#include "workload/generator.h"

using namespace autoview;

int main(int argc, char** argv) {
  CloudWorkloadSpec spec;
  spec.name = "advisor-demo";
  spec.projects = 4;
  spec.queries = argc > 1 ? static_cast<size_t>(std::atoi(argv[1])) : 120;
  spec.subquery_pool = 10;
  spec.seed = 77;
  GeneratedWorkload workload = GenerateCloudWorkload(spec);
  std::printf("Generated %zu queries over %zu projects (%zu tables)\n",
              workload.sql.size(), workload.num_projects,
              workload.db->TableNames().size());

  AutoViewOptions options;
  options.exact_benefits = true;
  AutoViewSystem system(workload.db.get(), options);
  AV_CHECK(system.LoadWorkload(workload.sql).ok());

  const WorkloadAnalysis& analysis = system.analysis();
  std::printf(
      "Pre-process: %zu subqueries -> %zu equivalence clusters, "
      "%zu candidates (|Z|), %zu associated queries (|Q|), "
      "%zu overlapping pairs\n",
      analysis.num_subqueries, analysis.clusters.size(),
      analysis.candidates.size(), analysis.associated_queries.size(),
      analysis.num_overlapping_pairs());

  std::printf("Measuring ground truth (executes the workload)...\n");
  AV_CHECK(system.BuildGroundTruth().ok());

  RLViewSelector::Options rl_opts;
  rl_opts.init_iterations = 10;
  rl_opts.episodes = 20;
  RLViewSelector rlview(rl_opts);
  auto solution = rlview.Select(system.problem());
  AV_CHECK(solution.ok());
  std::printf("RLView selected %zu views, predicted utility %.4e$\n",
              static_cast<size_t>(std::count(solution.value().z.begin(),
                                             solution.value().z.end(), true)),
              solution.value().utility);

  // Show the recommended views.
  TablePrinter views({"view", "used by #queries", "overhead($)", "plan"});
  for (size_t j = 0; j < solution.value().z.size(); ++j) {
    if (!solution.value().z[j]) continue;
    const auto& cand = system.candidates()[j];
    size_t users = 0;
    for (const auto& row : solution.value().y) users += row[j];
    std::string plan = cand.plan->OperatorString();
    if (plan.size() > 60) plan = plan.substr(0, 57) + "...";
    views.AddRow({StrFormat("v%zu", j), StrFormat("%zu", users),
                  StrFormat("%.3e", cand.overhead), plan});
  }
  views.Print();

  auto report = system.ExecuteSolution(solution.value());
  AV_CHECK(report.ok());
  std::printf(
      "\nEnd-to-end: %zu/%zu queries rewritten; benefit %.4e$, overhead "
      "%.4e$\nworkload cost %.4e$ -> saving ratio r_c = %.2f%%\n"
      "latency %.4f -> %.4f CPU-minutes\n",
      report.value().num_rewritten, report.value().num_queries,
      report.value().benefit, report.value().view_overhead,
      report.value().raw_cost, 100.0 * report.value().ratio(),
      report.value().raw_latency_min, report.value().rewritten_latency_min);
  return 0;
}
