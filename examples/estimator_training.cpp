// Offline training walkthrough (Fig. 3, offline-training part):
// builds the metadata (actual costs) for a workload, trains the
// Wide-Deep cost model, and compares its test-split accuracy against
// the traditional optimizer-style estimator and the simpler learned
// baselines.
//
//   ./example_estimator_training

#include <cstdio>
#include <memory>

#include "core/autoview.h"
#include "costmodel/baselines.h"
#include "costmodel/gbm.h"
#include "costmodel/traditional.h"
#include "costmodel/wide_deep.h"
#include "util/strings.h"
#include "util/table_printer.h"
#include "workload/generator.h"

using namespace autoview;

int main() {
  CloudWorkloadSpec spec;
  spec.name = "training-demo";
  spec.projects = 4;
  spec.queries = 120;
  spec.subquery_pool = 10;
  spec.seed = 55;
  GeneratedWorkload workload = GenerateCloudWorkload(spec);

  AutoViewOptions options;
  options.exact_benefits = true;
  AutoViewSystem system(workload.db.get(), options);
  AV_CHECK(system.LoadWorkload(workload.sql).ok());
  std::printf("Collecting training data (executing rewritten queries)...\n");
  AV_CHECK(system.BuildGroundTruth().ok());

  const auto& dataset = system.cost_dataset();
  DatasetSplit split = SplitDataset(dataset.size(), 3);
  std::vector<CostSample> train, test;
  for (size_t i : split.train) train.push_back(dataset[i]);
  for (size_t i : split.test) test.push_back(dataset[i]);
  std::printf("Dataset: %zu samples -> %zu train / %zu validation / %zu "
              "test (7:1:2)\n",
              dataset.size(), split.train.size(), split.validation.size(),
              split.test.size());

  const Catalog* catalog = &workload.db->catalog();
  std::vector<std::unique_ptr<CostEstimator>> methods;
  methods.push_back(
      std::make_unique<TraditionalEstimator>(catalog, system.pricing()));
  methods.push_back(std::make_unique<LinearRegressorEstimator>(catalog));
  methods.push_back(std::make_unique<GbmEstimator>(catalog));
  WideDeepOptions wd_opts = WideDeepOptions::Full();
  wd_opts.epochs = 25;
  wd_opts.verbose = true;
  methods.push_back(std::make_unique<WideDeepEstimator>(catalog, wd_opts));

  TablePrinter table({"model", "test MAE ($)", "test MAPE (%)"});
  for (auto& method : methods) {
    AV_CHECK(method->Train(train).ok());
    EstimatorMetrics metrics = EvaluateEstimator(*method, test);
    table.AddRow({method->name(), StrFormat("%.3e", metrics.mae),
                  FormatDouble(100.0 * metrics.mape, 2)});
  }
  table.Print();

  // Show a few individual predictions from the best model.
  std::printf("\nSample W-D predictions (test split):\n");
  const CostEstimator& wd = *methods.back();
  for (size_t i = 0; i < 5 && i < test.size(); ++i) {
    std::printf("  actual A(q|v) = %.3e$, predicted = %.3e$\n",
                test[i].target, wd.Estimate(test[i]));
  }
  return 0;
}
