// Offline/online split (Fig. 3): the online system exports its measured
// (query, view, cost) triples to the metadata database; a separate
// offline pass loads them, trains the Wide-Deep model, and the online
// recommendation path then selects views from the *estimated* problem.
//
//   ./example_offline_online

#include <cstdio>

#include "core/autoview.h"
#include "costmodel/fallback.h"
#include "costmodel/traditional.h"
#include "costmodel/wide_deep.h"
#include "select/rlview.h"
#include "util/strings.h"
#include "workload/generator.h"

using namespace autoview;

int main() {
  CloudWorkloadSpec spec;
  spec.name = "offline-online-demo";
  spec.projects = 3;
  spec.queries = 80;
  spec.subquery_pool = 8;
  spec.seed = 91;
  GeneratedWorkload workload = GenerateCloudWorkload(spec);

  AutoViewOptions options;
  options.exact_benefits = true;
  AutoViewSystem system(workload.db.get(), options);
  AV_CHECK(system.LoadWorkload(workload.sql).ok());
  AV_CHECK(system.BuildGroundTruth().ok());

  // --- "Online" side: persist measurements to the metadata database.
  const std::string meta_path = "/tmp/autoview_demo_metadata.tsv";
  MetadataStore store(meta_path);
  AV_CHECK(system.ExportMetadata(store).ok());
  std::printf("Exported %zu metadata records to %s\n",
              system.cost_dataset().size(), meta_path.c_str());

  // --- "Offline" side: load the metadata and train the cost model.
  auto samples = system.ImportCostSamples(store);
  AV_CHECK(samples.ok());
  std::printf("Imported %zu training samples from the metadata store\n",
              samples.value().size());
  WideDeepOptions wd_opts = WideDeepOptions::Full();
  wd_opts.epochs = 20;
  WideDeepEstimator wd(&workload.db->catalog(), wd_opts);
  AV_CHECK(wd.Train(samples.value()).ok());
  std::printf("Trained W-D (%zu parameters), final epoch loss %.4f\n",
              wd.NumParameters(), wd.training_losses().back());

  // --- Back online: recommend views from the *estimated* utilities.
  // The learned model runs behind the degradation wrapper: any NaN/Inf
  // prediction (try AUTOVIEW_FAILPOINTS="wide_deep.infer=nan:0.3") is
  // served by the traditional Optimizer instead, and counted.
  TraditionalEstimator optimizer(&workload.db->catalog(), system.pricing());
  FallbackEstimator guarded(&wd, &optimizer);
  auto estimated = system.EstimateProblem(guarded);
  AV_CHECK(estimated.ok());
  RLViewSelector::Options rl_opts;
  rl_opts.init_iterations = 10;
  rl_opts.episodes = 15;
  RLViewSelector rlview(rl_opts);
  auto solution = rlview.Select(estimated.value());
  AV_CHECK(solution.ok());

  auto report = system.ExecuteSolution(solution.value());
  AV_CHECK(report.ok());
  std::printf(
      "End-to-end with the offline-trained model: %zu views, "
      "benefit %.4e$, overhead %.4e$, saving ratio %.2f%%\n",
      report.value().num_views, report.value().benefit,
      report.value().view_overhead, 100.0 * report.value().ratio());
  if (guarded.fallback_calls() > 0) {
    std::printf("Degraded gracefully: %llu predictions served by %s\n",
                static_cast<unsigned long long>(guarded.fallback_calls()),
                optimizer.name().c_str());
  }
  std::remove(meta_path.c_str());
  return 0;
}
