// Quickstart: the paper's Fig. 2 example, end to end.
//
// Builds the user_memo/user_action schema, loads synthetic rows, parses
// the running-example query, extracts its subqueries, materializes the
// join subquery (s3) as a view, rewrites the query to use it, and shows
// the cost saving.
//
//   ./example_quickstart

#include <cstdio>

#include "engine/database.h"
#include "util/logging.h"
#include "engine/executor.h"
#include "engine/rewriter.h"
#include "engine/view_store.h"
#include "plan/builder.h"
#include "subquery/extractor.h"
#include "util/random.h"

using namespace autoview;

int main() {
  // 1. Schema + synthetic data.
  Database db;
  Rng rng(7);
  std::vector<Row> memo_rows, action_rows;
  for (int i = 0; i < 2000; ++i) {
    memo_rows.push_back({Value(int64_t{i % 150}),
                         Value("memo" + std::to_string(i % 9)),
                         Value(i % 3 == 0 ? "1010" : "1011"),
                         Value(i % 5 < 2 ? "pen" : "book")});
  }
  for (int i = 0; i < 3000; ++i) {
    action_rows.push_back({Value(int64_t{i % 170}),
                           Value("act" + std::to_string(i % 6)),
                           Value(int64_t{i % 4}),
                           Value(i % 3 == 0 ? "1010" : "1012")});
  }
  AV_CHECK(db.AddTable(TableSchema("user_memo",
                                   {{"user_id", ColumnType::kInt64},
                                    {"memo", ColumnType::kString},
                                    {"dt", ColumnType::kString},
                                    {"memo_type", ColumnType::kString}}),
                       std::move(memo_rows))
               .ok());
  AV_CHECK(db.AddTable(TableSchema("user_action",
                                   {{"user_id", ColumnType::kInt64},
                                    {"action", ColumnType::kString},
                                    {"type", ColumnType::kInt64},
                                    {"dt", ColumnType::kString}}),
                       std::move(action_rows))
               .ok());
  AV_CHECK(db.ComputeAllStats().ok());

  // 2. Parse + plan the Fig. 2 query.
  const std::string sql =
      "select t1.user_id, count(*) as cnt from ("
      "select user_id, memo from user_memo "
      "where dt = '1010' and memo_type = 'pen') t1 "
      "inner join (select user_id, action from user_action "
      "where type = 1 and dt = '1010') t2 "
      "on t1.user_id = t2.user_id group by t1.user_id";
  PlanBuilder builder(&db.catalog());
  auto plan = builder.BuildFromSql(sql);
  AV_CHECK(plan.ok());
  std::printf("Logical plan (Fig. 2 style):\n%s\n",
              plan.value()->ToString().c_str());

  // 3. Extract subqueries (s1, s2, s3 of the paper).
  SubqueryExtractor extractor;
  auto subqueries = extractor.Extract(plan.value());
  std::printf("Extracted %zu subqueries; s3 (the join):\n%s\n",
              subqueries.size(), subqueries[0]->ToString().c_str());

  // 4. Execute the raw query.
  Executor exec(&db);
  auto raw = exec.Execute(*plan.value());
  AV_CHECK(raw.ok());
  Pricing pricing;
  std::printf("Raw execution: %zu result rows, cost %.4e$\n",
              raw.value().table.num_rows(),
              pricing.QueryCost(raw.value().cost));

  // 5. Materialize s3 and rewrite.
  MaterializedViewStore store(&db);
  auto view = store.Materialize(subqueries[0], exec);
  AV_CHECK(view.ok());
  std::printf("Materialized view %s: %zu bytes, build cost %.4e$\n",
              view.value()->table_name.c_str(),
              static_cast<size_t>(view.value()->byte_size),
              pricing.QueryCost(view.value()->build_cost));

  Rewriter rewriter(&db.catalog());
  bool changed = false;
  auto rewritten = rewriter.Rewrite(plan.value(), *view.value(), &changed);
  AV_CHECK(rewritten.ok() && changed);
  std::printf("Rewritten plan:\n%s\n", rewritten.value()->ToString().c_str());

  // 6. Execute the rewritten query and compare.
  auto fast = exec.Execute(*rewritten.value());
  AV_CHECK(fast.ok());
  AV_CHECK(TablesEqualUnordered(raw.value().table, fast.value().table));
  const double before = pricing.QueryCost(raw.value().cost);
  const double after = pricing.QueryCost(fast.value().cost);
  std::printf(
      "Rewritten execution: cost %.4e$ (identical results verified)\n"
      "Benefit B(q,v) = %.4e$ (%.1f%% saved)\n",
      after, before - after, 100.0 * (before - after) / before);
  return 0;
}
