// Plan-machinery walkthrough: Fig. 2 plan rendering, the Fig. 4 feature
// token sequences, EQUITAS-style equivalence detection, and the
// overlapping-subquery relation (Definition 5).
//
//   ./example_rewrite_demo

#include <cstdio>

#include "catalog/catalog.h"
#include "plan/builder.h"
#include "plan/canonical.h"
#include "util/logging.h"
#include "subquery/clusterer.h"
#include "util/strings.h"

using namespace autoview;

int main() {
  Catalog catalog;
  AV_CHECK(catalog
               .AddTable(TableSchema("user_memo",
                                     {{"user_id", ColumnType::kInt64},
                                      {"memo", ColumnType::kString},
                                      {"dt", ColumnType::kString},
                                      {"memo_type", ColumnType::kString}}))
               .ok());
  AV_CHECK(catalog
               .AddTable(TableSchema("user_action",
                                     {{"user_id", ColumnType::kInt64},
                                      {"action", ColumnType::kString},
                                      {"type", ColumnType::kInt64},
                                      {"dt", ColumnType::kString}}))
               .ok());
  PlanBuilder builder(&catalog);

  const std::string sql =
      "select t1.user_id, count(*) as cnt from ("
      "select user_id, memo from user_memo "
      "where dt = '1010' and memo_type = 'pen') t1 "
      "inner join (select user_id, action from user_action "
      "where type = 1 and dt = '1010') t2 "
      "on t1.user_id = t2.user_id group by t1.user_id";
  auto q = builder.BuildFromSql(sql).value();

  std::printf("=== Fig. 2: logical plan ===\n%s\n", q->ToString().c_str());

  std::printf("=== Fig. 4: feature token sequences (pre-order) ===\n");
  const char labels[] = "ABCDEFGH";
  auto seq = q->FeatureSequence();
  for (size_t i = 0; i < seq.size(); ++i) {
    std::printf("%c. [%s]\n", labels[i % 8], Join(seq[i], ", ").c_str());
  }

  std::printf("\n=== Equivalence detection (EQUITAS substitution) ===\n");
  auto reordered = builder
                       .BuildFromSql(
                           "select * from user_memo where memo_type = 'pen' "
                           "and dt = '1010'")
                       .value();
  auto original = builder
                      .BuildFromSql(
                          "select * from user_memo where dt = '1010' and "
                          "memo_type = 'pen'")
                      .value();
  std::printf("conjunct order flipped  -> equivalent: %s\n",
              PlansEquivalent(*original, *reordered) ? "yes" : "no");
  std::printf("canonical key: %s\n", CanonicalKey(*original).c_str());
  auto different = builder
                       .BuildFromSql(
                           "select * from user_memo where dt = '1011' and "
                           "memo_type = 'pen'")
                       .value();
  std::printf("different literal       -> equivalent: %s\n",
              PlansEquivalent(*original, *different) ? "yes" : "no");

  std::printf("\n=== Overlap (Definition 5) ===\n");
  auto s3 = q->child(0);       // the join subquery
  auto s1 = s3->child(0);      // left Project subtree
  auto s2 = s3->child(1);      // right Project subtree
  std::printf("s3 vs s1: %s (s1 is a subtree of s3)\n",
              CanonicalPlansOverlap(*s3, *s1) ? "overlap" : "disjoint");
  std::printf("s1 vs s2: %s (different base tables)\n",
              CanonicalPlansOverlap(*s1, *s2) ? "overlap" : "disjoint");
  return 0;
}
