#!/bin/sh
# Repro-lint: keeps the library bit-deterministic and its concurrency
# discipline checkable. The paper's headline numbers (Eq. 3 flip
# probabilities, DQN reward = utility delta) are only reproducible when
# every stochastic draw goes through the seeded Rng and no hidden clock
# or allocator nondeterminism leaks into results, so this check fails
# the build — not a code review — when a violation appears.
#
# Thin wrapper: the rules now run inside the project-native analyzer
# `avcheck` (src/tools/), which lexes sources properly (comments and
# string literals stripped, line numbers preserved) instead of the old
# sed/awk pipeline. Rule semantics and path scoping are unchanged:
#
#   no-ambient-randomness   rand()/srand()/time()/clock()/random_device/
#                           mt19937 outside src/util/random.* — use the
#                           seeded autoview::Rng. The no-grad inference
#                           fast path is explicitly in scope.
#   no-naked-new            `new`/`delete` unless the allocation is
#                           owned on the same line (shared_ptr/
#                           unique_ptr/make_*)
#   no-cout                 std::cout in library code — use AV_LOG or
#                           return data; stdout belongs to the harnesses
#   no-raw-mutex            std::mutex / std::condition_variable outside
#                           util/annotations.h — use the annotated
#                           autoview::Mutex/CondVar
#   mutex-annotated         every Mutex member must sit within 8 lines
#                           of an AV_GUARDED_BY / AV_REQUIRES /
#                           AV_ACQUIRE user
#   engine-io-confined      raw FILE I/O inside src/engine/ is confined
#                           to view_store_log.cc — the WAL is the one
#                           place the engine touches disk
#   advisor-clock-seam      src/core/advisor.* must never read ambient
#                           time; deadlines flow exclusively through the
#                           injected autoview::Clock
#   loadgen-seed-flow       every Rng constructed in src/bench/ must be
#                           derived from a seed variable
#
# Exit: 0 clean, 1 violations, 77 avcheck binary not built yet.
set -u

. "$(dirname "$0")/lint_common.sh"

av_run_avcheck "determinism lint" \
  "no-ambient-randomness,no-cout,no-raw-mutex,no-naked-new,mutex-annotated,engine-io-confined,advisor-clock-seam,loadgen-seed-flow"
