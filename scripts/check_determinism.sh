#!/bin/sh
# Repro-lint: keeps the library bit-deterministic and its concurrency
# discipline greppable. The paper's headline numbers (Eq. 3 flip
# probabilities, DQN reward = utility delta) are only reproducible when
# every stochastic draw goes through the seeded Rng and no hidden clock
# or allocator nondeterminism leaks into results, so this check fails
# the build — not a code review — when a violation appears.
#
# Rules (library code under src/ only; tests/bench/examples are exempt):
#   no-ambient-randomness   rand()/srand()/time()/clock()/random_device/
#                           mt19937 outside src/util/random.* — use the
#                           seeded autoview::Rng (std::steady_clock is
#                           allowed: deadlines/counters only, never
#                           results). The no-grad inference fast path
#                           (nn::NoGradGuard, nn::MlpInference,
#                           nn::MatMulTB) is explicitly in scope: it must
#                           stay a pure function of the snapshotted
#                           weights, or its bit-identity contract with
#                           the autograd Forward path breaks silently.
#   no-naked-new            `new`/`delete` unless the allocation is
#                           owned on the same line (shared_ptr/
#                           unique_ptr/make_*); applies to src/nn/ too —
#                           tensor and inference buffers are
#                           std::vector-owned
#   no-cout                 std::cout in library code — use AV_LOG or
#                           return data; stdout belongs to the harnesses
#   no-raw-mutex            std::mutex / std::condition_variable outside
#                           util/annotations.h — use the annotated
#                           autoview::Mutex/CondVar so clang
#                           -Wthread-safety can see every lock
#   mutex-annotated         every Mutex member must sit within 8 lines
#                           of an AV_GUARDED_BY / AV_REQUIRES /
#                           AV_ACQUIRE user, so the guarded-state map
#                           stays readable at the declaration site
#   engine-io-confined      raw FILE I/O (fopen/fwrite/fread/rename/
#                           remove) inside src/engine/ is confined to
#                           view_store_log.cc — the WAL is the one
#                           place the engine touches disk, so crash
#                           injection (viewstore.wal_append/wal_replay)
#                           provably covers every engine write path
#   advisor-clock-seam      src/core/advisor.* must never read ambient
#                           time: no std::chrono / steady_clock /
#                           system_clock and no self-made Deadline —
#                           deadlines flow exclusively through the
#                           injected autoview::Clock (util/clock.h), so
#                           a ManualClock replay of an ingest/trigger/
#                           re-selection sequence stays bit-reproducible
#
# Exit: 0 clean, 1 violations (never skips — needs only POSIX sh).
set -u

. "$(dirname "$0")/lint_common.sh"

av_grep_rule \
  '(^|[^_[:alnum:]])(rand|srand|time|clock)[[:space:]]*\(|std::random_device|mt19937' \
  'no-ambient-randomness' \
  'draw from the seeded autoview::Rng (src/util/random.h) instead' \
  '^src/util/random\.(h|cc)$'

av_grep_rule \
  'std::cout' \
  'no-cout' \
  'library code must not write to stdout; use AV_LOG or return data'

av_grep_rule \
  'std::(mutex|shared_mutex|recursive_mutex|condition_variable)' \
  'no-raw-mutex' \
  'use the annotated autoview::Mutex / CondVar from util/annotations.h' \
  '^src/util/annotations\.h$'

# Naked new/delete: same-line smart-pointer ownership is fine. src/nn/
# is covered too: the tensor graph and the no-grad inference fast path
# both keep their buffers in std::vector, so any naked allocation there
# is a regression, not an idiom.
for f in $(av_src_files); do
  rel=${f#"$av_root"/}
  out=$(av_strip_comments "$f" |
        grep -nE '(^|[^_[:alnum:]])new[[:space:]]+[A-Za-z_]|(^|[^_[:alnum:]])delete([[:space:]]|\[)' |
        grep -vE 'shared_ptr<|unique_ptr<|make_shared|make_unique|=[[:space:]]*delete') || continue
  while IFS= read -r line; do
    av_fail "$rel" "${line%%:*}" "${line#*:}" 'no-naked-new'
  done <<EOF
$out
EOF
done

# Loadgen seed flow: every Rng the load generator constructs must be
# derived from a seed variable (ultimately LoadGenConfig::seed — the
# harness contract is that one --seed flag reproduces a whole run).
# A literal-seeded or default-constructed Rng in src/bench/ would make
# the "deterministic schedule" tests meaningless, so any `Rng x(...)`
# whose argument does not mention a seed fails the build.
for f in $(av_src_files); do
  rel=${f#"$av_root"/}
  case "$rel" in src/bench/*) ;; *) continue ;; esac
  out=$(av_strip_comments "$f" |
        grep -nE '(^|[^_[:alnum:]])Rng[[:space:]]+[A-Za-z_]+\(' |
        grep -vE 'Rng[[:space:]]+[A-Za-z_]+\([^)]*[Ss]eed') || continue
  while IFS= read -r line; do
    av_fail "$rel" "${line%%:*}" "${line#*:}" 'loadgen-seed-flow'
  done <<EOF
$out
EOF
done

# Advisor clock seam: the online advisor's trigger/re-selection path is
# replayable only because every deadline comes from the injected Clock.
# A direct chrono read or a Deadline constructed in place (AfterMillis/
# AfterSeconds/Infinite) would bypass the seam and make ManualClock
# replays diverge from production runs.
for f in $(av_src_files); do
  rel=${f#"$av_root"/}
  case "$rel" in src/core/advisor.h | src/core/advisor.cc) ;; *) continue ;; esac
  out=$(av_strip_comments "$f" |
        grep -nE 'std::chrono|steady_clock|system_clock|Deadline::(AfterMillis|AfterSeconds|Infinite)') || continue
  while IFS= read -r line; do
    av_fail "$rel" "${line%%:*}" "${line#*:}" 'advisor-clock-seam'
  done <<EOF
$out
EOF
done

# Engine disk I/O stays behind the WAL: any raw stdio call in
# src/engine/ outside view_store_log.cc would dodge the failpoint
# coverage the crash-recovery tests rely on.
for f in $(av_src_files); do
  rel=${f#"$av_root"/}
  case "$rel" in
    src/engine/view_store_log.cc) continue ;;
    src/engine/*) ;;
    *) continue ;;
  esac
  out=$(av_strip_comments "$f" |
        grep -nE '(^|[^_[:alnum:]])(std::)?(fopen|fwrite|fread|fprintf|rename|remove)[[:space:]]*\(') || continue
  while IFS= read -r line; do
    av_fail "$rel" "${line%%:*}" "${line#*:}" 'engine-io-confined'
  done <<EOF
$out
EOF
done

# Mutex members must be annotated nearby: a Mutex declaration with no
# AV_GUARDED_BY / AV_REQUIRES / AV_ACQUIRE user within +/-8 lines means
# nobody wrote down what it protects.
for f in $(av_src_files); do
  rel=${f#"$av_root"/}
  case "$rel" in src/util/annotations.h) continue ;; esac
  orphans=$(awk '
    /(^|[[:space:]])Mutex[[:space:]]+[A-Za-z_]+_[[:space:]]*;/ {
      decl[++n] = NR; text[n] = $0
    }
    /AV_GUARDED_BY|AV_PT_GUARDED_BY|AV_REQUIRES|AV_ACQUIRE/ { user[NR] = 1 }
    END {
      for (i = 1; i <= n; i++) {
        ok = 0
        for (l = decl[i] - 8; l <= decl[i] + 8; l++) if (l in user) ok = 1
        if (!ok) printf "%d:%s\n", decl[i], text[i]
      }
    }' "$f") || true
  [ -z "$orphans" ] && continue
  while IFS= read -r line; do
    av_fail "$rel" "${line%%:*}" "${line#*:}" 'mutex-annotated'
  done <<EOF
$orphans
EOF
done

av_report "determinism lint"
