#!/bin/sh
# Lints the library for naked process-killing calls. Library code must
# report failures through Status/Result so a malformed query, corrupt
# model file, or injected fault degrades one operation instead of taking
# the whole process down. std::terminate is in the banned set too: an
# escaped exception on a pool thread must surface as a Status, not kill
# the server mid-recovery. The single sanctioned abort lives in
# util/logging.h behind AV_CHECK (fatal invariant violations only).
#
# Thin wrapper over the project-native analyzer `avcheck` (src/tools/),
# which runs the same rule on properly lexed sources.
# Exit: 0 clean, 1 violations, 77 avcheck binary not built yet.
set -u

. "$(dirname "$0")/lint_common.sh"

av_run_avcheck "no-naked-abort lint" "no-naked-abort"
