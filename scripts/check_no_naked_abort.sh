#!/bin/sh
# Lints the library for naked process-killing calls. Library code must
# report failures through Status/Result so a malformed query, corrupt
# model file, or injected fault degrades one operation instead of taking
# the whole process down. std::terminate is in the banned set too: an
# escaped exception on a pool thread must surface as a Status, not kill
# the server mid-recovery. The single sanctioned abort lives in
# util/logging.h behind AV_CHECK (fatal invariant violations only).
#
# Built on scripts/lint_common.sh; exit 0 pass, 1 violations.
set -u

. "$(dirname "$0")/lint_common.sh"

av_grep_rule \
  '(^|[^_[:alnum:]])(std::)?(abort|exit|_Exit|quick_exit|terminate)[[:space:]]*\(' \
  'no-naked-abort' \
  'use Status/Result (util/status.h); AV_CHECK is reserved for unrecoverable invariant violations' \
  '^src/util/logging\.h$'

av_report "no-naked-abort lint"
