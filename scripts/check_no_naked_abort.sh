#!/bin/sh
# Lints the library for naked process-killing calls. Library code must
# report failures through Status/Result so a malformed query, corrupt
# model file, or injected fault degrades one operation instead of taking
# the whole process down. The single sanctioned abort lives in
# util/logging.h behind AV_CHECK (fatal invariant violations only).
#
# Run from the repo root (or via ctest, which sets the working dir).
set -u

root="$(dirname "$0")/.."
offenders=$(grep -rn --include='*.h' --include='*.cc' \
    -e 'std::abort[[:space:]]*(' \
    -e '[^_[:alnum:]]abort[[:space:]]*(' \
    -e '[^_[:alnum:]]exit[[:space:]]*(' \
    -e '^exit[[:space:]]*(' \
    "$root/src" | grep -v 'util/logging\.h' | grep -v '//.*abort')

if [ -n "$offenders" ]; then
  echo "naked abort()/exit() calls found in library code:" >&2
  echo "$offenders" >&2
  echo "use Status/Result (util/status.h) instead; AV_CHECK is reserved" >&2
  echo "for unrecoverable invariant violations." >&2
  exit 1
fi
echo "OK: no naked abort()/exit() in src/ (outside util/logging.h)"
exit 0
