#!/bin/sh
# Compile-time lock-discipline check: builds the library with clang's
# -Wthread-safety promoted to errors (CMake option
# AUTOVIEW_WERROR_THREAD_SAFETY), so any access to an AV_GUARDED_BY
# member without its Mutex held fails the build. See
# src/util/annotations.h for the annotation conventions.
#
# Exit: 0 pass, 1 violations/build failure, 77 no clang (ctest SKIP).
set -u

root=$(CDPATH= cd -- "$(dirname "$0")/.." && pwd)
build="${AUTOVIEW_THREAD_SAFETY_BUILD_DIR:-$root/build-threadsafety}"

clangxx="${AUTOVIEW_CLANGXX:-}"
if [ -z "$clangxx" ]; then
  for cand in clang++ clang++-19 clang++-18 clang++-17 clang++-16; do
    if command -v "$cand" >/dev/null 2>&1; then
      clangxx=$cand
      break
    fi
  done
fi
if [ -z "$clangxx" ]; then
  echo "SKIP: no clang++ on PATH (set AUTOVIEW_CLANGXX to override);" \
       "thread-safety analysis needs clang"
  exit 77
fi

mkdir -p "$build"
if ! cmake -B "$build" -S "$root" \
      -DCMAKE_CXX_COMPILER="$clangxx" \
      -DAUTOVIEW_WERROR_THREAD_SAFETY=ON \
      -DCMAKE_BUILD_TYPE=Release >"$build/configure.log" 2>&1; then
  echo "SKIP: cannot configure a clang build (see $build/configure.log)"
  exit 77
fi

# The library is enough: tests/bench hold no annotated state of their
# own, and building only src keeps the gate fast.
if ! cmake --build "$build" --target autoview_core \
      -j "$(nproc 2>/dev/null || echo 4)"; then
  echo "FAIL: clang -Wthread-safety found lock-discipline errors" >&2
  exit 1
fi
echo "OK: library builds clean under clang -Wthread-safety -Werror"
exit 0
