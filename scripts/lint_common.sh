#!/bin/sh
# Shared plumbing for the repo's grep-based repro-lints (sourced, not
# executed). Every lint is AST-free on purpose: the checks must run on
# any POSIX box with no clang available, so they can gate ctest's `lint`
# tier everywhere while the clang-only analyses (thread-safety,
# clang-tidy) skip gracefully where the toolchain is missing.
#
# Provides:
#   av_root                — absolute repo root
#   av_src_files           — the library sources the lints police
#   av_strip_comments FILE — file content with // and /* */ comments and
#                            string literals blanked (line count kept,
#                            so reported line numbers stay real)
#   av_fail / av_report    — accumulate and print violations
#
# Exit-code convention for lint scripts: 0 pass, 1 violations found,
# 77 toolchain unavailable (ctest SKIP_RETURN_CODE).

av_root=$(CDPATH= cd -- "$(dirname "$0")/.." && pwd)

av_failures=0

# All library sources. Tests/bench/examples are exempt: they are allowed
# printf-debugging, wall clocks, and ad-hoc allocation.
av_src_files() {
  find "$av_root/src" -type f \( -name '*.h' -o -name '*.cc' \) | LC_ALL=C sort
}

# Blank out // comments, /* */ comments, and the contents of string
# literals so prose like "busy wall time (ns)" cannot trip a code-only
# pattern. Line structure is preserved; multi-line /* */ bodies are
# blanked per line. Not a full lexer — good enough for lint patterns
# that target call syntax.
av_strip_comments() {
  sed -e 's/"[^"]*"/""/g' \
      -e 's|//.*||' \
      -e 's|/\*.*\*/||g' \
      "$1" |
  awk '
    /\/\*/ { print ""; inblock=1; next }
    inblock && /\*\// { inblock=0; print ""; next }
    inblock { print ""; next }
    { print }
  '
}

# av_fail <file> <lineno> <line> <rule> — records one violation.
av_fail() {
  printf '%s:%s: [%s]\n    %s\n' "$1" "$2" "$4" "$3" >&2
  av_failures=$((av_failures + 1))
}

# av_grep_rule <pattern> <rule-name> <hint> [exclude-path-regex]
# Greps the comment-stripped library sources for <pattern> and records a
# violation per hit. Paths matching the optional exclude regex are
# allowlisted.
av_grep_rule() {
  pattern=$1 rule=$2 hint=$3 exclude=${4:-'^$'}
  hits=0
  for f in $(av_src_files); do
    case "$f" in
      *" "*) echo "path with spaces unsupported: $f" >&2; exit 2 ;;
    esac
    if printf '%s' "${f#"$av_root"/}" | grep -Eq "$exclude"; then
      continue
    fi
    out=$(av_strip_comments "$f" | grep -nE "$pattern") || continue
    while IFS= read -r line; do
      av_fail "${f#"$av_root"/}" "${line%%:*}" "${line#*:}" "$rule"
      hits=$((hits + 1))
    done <<EOF
$out
EOF
  done
  if [ "$hits" -gt 0 ]; then
    echo "hint [$rule]: $hint" >&2
  fi
}

# av_report <lint-name> — prints the verdict and returns the exit code.
av_report() {
  if [ "$av_failures" -gt 0 ]; then
    echo "FAIL: $1 found $av_failures violation(s)" >&2
    return 1
  fi
  echo "OK: $1 clean"
  return 0
}
