#!/bin/sh
# Shared plumbing for the repo's lint wrappers (sourced, not executed).
#
# The grep/sed/awk rule engine that used to live here was replaced by
# the project-native analyzer `avcheck` (src/tools/): a real lexer that
# strips comments/strings with line numbers preserved, plus scope and
# signature tracking that pattern-matching cannot do. The shell scripts
# remain as thin wrappers so existing entry points (ctest `lint` label,
# scripts/run_static_analysis.sh, direct invocation) keep working.
#
# Provides:
#   av_root         — absolute repo root
#   av_find_avcheck — prints the avcheck binary path, or returns 1.
#                     Honors $AVCHECK_BIN (set by ctest), then searches
#                     the conventional build directories.
#   av_run_avcheck  — runs a named check list over src/, mapping exit
#                     codes to the lint convention below.
#
# Exit-code convention for lint scripts: 0 pass, 1 violations found,
# 77 tool unavailable (ctest SKIP_RETURN_CODE).

av_root=$(CDPATH= cd -- "$(dirname "$0")/.." && pwd)

av_find_avcheck() {
  if [ -n "${AVCHECK_BIN:-}" ] && [ -x "${AVCHECK_BIN}" ]; then
    printf '%s\n' "${AVCHECK_BIN}"
    return 0
  fi
  for candidate in "$av_root"/build*/avcheck "$av_root"/build*/src/avcheck; do
    if [ -x "$candidate" ]; then
      printf '%s\n' "$candidate"
      return 0
    fi
  done
  return 1
}

# av_run_avcheck <lint-name> <comma-separated-checks>
# Runs avcheck over src/ with the given check list, translating its
# exit codes into the lint convention above. SKIPs (77) when no binary
# has been built yet — ctest reports that as a skip, not a pass.
av_run_avcheck() {
  lint_name=$1
  checks=$2
  if ! bin=$(av_find_avcheck); then
    echo "SKIP: $lint_name — avcheck binary not built" \
         "(cmake --build <build-dir> --target avcheck)" >&2
    return 77
  fi
  if "$bin" --root="$av_root" --checks="$checks"; then
    echo "OK: $lint_name clean"
    return 0
  fi
  code=$?
  if [ "$code" -eq 1 ]; then
    echo "FAIL: $lint_name found violations (see above)" >&2
  else
    echo "FAIL: $lint_name — avcheck exited with code $code" >&2
  fi
  return 1
}
