#!/bin/sh
# Builds the failpoint + deadline suites under AddressSanitizer and runs
# them. The robustness layer exercises error paths (injected faults,
# cancelled chunks, torn files) that ordinary builds rarely walk; ASan
# catches leaks and lifetime bugs hiding on those paths.
#
# Exit codes: 0 on pass, 0 with a SKIP note when the toolchain cannot
# configure an ASan build (e.g. missing runtime), 1 on build or test
# failure.
set -u

root=$(CDPATH= cd -- "$(dirname "$0")/.." && pwd)
build="${AUTOVIEW_ASAN_BUILD_DIR:-$root/build-asan-robustness}"

mkdir -p "$build"
if ! cmake -B "$build" -S "$root" -DAUTOVIEW_SANITIZE=address \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo >"$build/configure.log" 2>&1; then
  echo "SKIP: cannot configure an AddressSanitizer build" \
       "(see $build/configure.log)"
  exit 0
fi

if ! cmake --build "$build" --target failpoint_test deadline_test \
      persistence_test -j "$(nproc 2>/dev/null || echo 4)"; then
  echo "FAIL: ASan build of the robustness suites failed" >&2
  exit 1
fi

status=0
for t in failpoint_test deadline_test persistence_test; do
  echo "== $t (ASan) =="
  if ! "$build/tests/$t"; then
    status=1
  fi
done
exit $status
