#!/bin/sh
# Runs the curated .clang-tidy profile (see that file for the check
# families and the documented suppression list) over every library
# translation unit, driven by the compilation database that the main
# build exports (CMAKE_EXPORT_COMPILE_COMMANDS is always ON).
#
# Usage: run_clang_tidy.sh [build-dir]   (default: <repo>/build,
#        configured on the fly if no compile_commands.json is present)
#
# Exit: 0 clean, 1 findings in the WarningsAsErrors set or tool error,
# 77 clang-tidy unavailable (ctest SKIP_RETURN_CODE).
set -u

root=$(CDPATH= cd -- "$(dirname "$0")/.." && pwd)
build="${1:-${AUTOVIEW_TIDY_BUILD_DIR:-$root/build}}"

tidy="${AUTOVIEW_CLANG_TIDY:-}"
if [ -z "$tidy" ]; then
  for cand in clang-tidy clang-tidy-19 clang-tidy-18 clang-tidy-17; do
    if command -v "$cand" >/dev/null 2>&1; then
      tidy=$cand
      break
    fi
  done
fi
if [ -z "$tidy" ]; then
  echo "SKIP: no clang-tidy on PATH (set AUTOVIEW_CLANG_TIDY to override)"
  exit 77
fi

if [ ! -f "$build/compile_commands.json" ]; then
  mkdir -p "$build"
  if ! cmake -B "$build" -S "$root" >"$build/configure.log" 2>&1; then
    echo "SKIP: cannot configure a build for compile_commands.json" \
         "(see $build/configure.log)"
    exit 77
  fi
fi

status=0
checked=0
for f in $(find "$root/src" -name '*.cc' | LC_ALL=C sort); do
  checked=$((checked + 1))
  if ! "$tidy" -p "$build" --quiet "$f"; then
    status=1
  fi
done

if [ "$status" -ne 0 ]; then
  echo "FAIL: clang-tidy reported errors (see above; suppression" \
       "rationale lives in .clang-tidy)" >&2
  exit 1
fi
echo "OK: clang-tidy clean over $checked translation units"
exit 0
