#!/bin/sh
# Builds and runs the targeted test suites under a sanitizer.
# Generalizes the PR-2 ASan robustness script to the full matrix:
#
#   run_sanitizer_suites.sh asan    # AddressSanitizer over the
#                                   # robustness suites (error paths:
#                                   # injected faults, torn files)
#   run_sanitizer_suites.sh ubsan   # UBSan (-fno-sanitize-recover) over
#                                   # the same suites + parser/plan
#                                   # arithmetic
#   run_sanitizer_suites.sh tsan    # ThreadSanitizer over the
#                                   # concurrency suites (pool, counters,
#                                   # failpoint registry, determinism)
#
# Each mode configures its own build tree (build-<mode>-suites) so the
# primary build stays uninstrumented.
#
# Exit: 0 pass, 1 build/test failure, 2 usage,
# 77 toolchain cannot configure the instrumented build (ctest SKIP).
set -u

mode="${1:-}"
case "$mode" in
  asan)
    sanitize=address
    # loadgen_test covers the varint/shard encode-decode path and the
    # end-to-end serving loop (parse/rewrite/execute under churn);
    # view_store_test the WAL torn-tail/rollback and eviction paths;
    # advisor_test the streaming ingest/retire/re-index mutation paths
    # (tail renumbering, column shifts) and the swap lifecycle.
    suites="failpoint_test deadline_test persistence_test loadgen_test view_store_test advisor_test rewrite_fast_path_test"
    ;;
  ubsan)
    sanitize=undefined
    suites="failpoint_test deadline_test persistence_test sql_parser_test plan_test loadgen_test view_store_test advisor_test rewrite_fast_path_test"
    ;;
  tsan)
    sanitize=thread
    # problem_index_test covers the incremental selection engine across
    # pool sizes (shared MvsProblemIndex read by concurrent trials);
    # subquery_test the chunked/streaming clusterer (parallel extraction
    # and bucketed overlap); loadgen_test the multi-client serving loop;
    # view_store_test pins/evictions/async builds racing on the store;
    # advisor_test concurrent pinned serving racing generation hot swaps.
    suites="thread_pool_test static_analysis_test parallel_determinism_test problem_index_test subquery_test loadgen_test view_store_test advisor_test rewrite_fast_path_test"
    ;;
  *)
    echo "usage: $0 asan|ubsan|tsan" >&2
    exit 2
    ;;
esac

root=$(CDPATH= cd -- "$(dirname "$0")/.." && pwd)
build="${AUTOVIEW_SANITIZER_BUILD_DIR:-$root/build-$mode-suites}"

mkdir -p "$build"
if ! cmake -B "$build" -S "$root" -DAUTOVIEW_SANITIZE=$sanitize \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo >"$build/configure.log" 2>&1; then
  echo "SKIP: cannot configure a $mode build (see $build/configure.log)"
  exit 77
fi

# shellcheck disable=SC2086  # suites is a deliberate word list
if ! cmake --build "$build" --target $suites \
      -j "$(nproc 2>/dev/null || echo 4)"; then
  echo "FAIL: $mode build of the suites failed" >&2
  exit 1
fi

status=0
for t in $suites; do
  echo "== $t ($mode) =="
  if ! "$build/tests/$t"; then
    status=1
  fi
done
exit $status
