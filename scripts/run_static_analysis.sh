#!/bin/sh
# Umbrella entry point for the static-analysis tier — the same checks
# ctest runs as `ctest -L lint`, runnable standalone from any checkout:
#
#   scripts/run_static_analysis.sh
#
# Runs, in order of increasing cost:
#   1. check_determinism.sh      repro-lints, via avcheck (SKIPs until
#                                the avcheck binary is built)
#   2. check_no_naked_abort.sh   Status-discipline lint, via avcheck
#   3. avcheck semantic checks   lock-order cycles, blocking-under-lock,
#                                discarded Status, atomic-ordering
#                                rationales (src/tools/; SKIPs until
#                                the binary is built)
#   4. check_thread_safety.sh    clang -Wthread-safety -Werror build
#                                (SKIPs without clang)
#   5. run_clang_tidy.sh         curated .clang-tidy over src/
#                                (SKIPs without clang-tidy)
#
# A SKIP (exit 77 from a sub-check) is reported but does not fail the
# umbrella; any FAIL does. Exit: 0 all pass/skip, 1 otherwise.
set -u

here=$(CDPATH= cd -- "$(dirname "$0")" && pwd)

overall=0
ran=0
skipped=0

run_check() {
  name=$1
  shift
  echo "---- $name ----"
  "$@"
  code=$?
  if [ "$code" -eq 77 ]; then
    skipped=$((skipped + 1))
  elif [ "$code" -ne 0 ]; then
    overall=1
  else
    ran=$((ran + 1))
  fi
}

avcheck_semantic() {
  . "$here/lint_common.sh"
  av_run_avcheck "avcheck semantic checks" \
    "lock-order,blocking-under-lock,discarded-status,atomic-ordering"
}

run_check "determinism repro-lints" sh "$here/check_determinism.sh"
run_check "no-naked-abort lint" sh "$here/check_no_naked_abort.sh"
run_check "avcheck semantic checks" avcheck_semantic
run_check "clang thread-safety analysis" sh "$here/check_thread_safety.sh"
run_check "clang-tidy" sh "$here/run_clang_tidy.sh"

echo "----"
if [ "$overall" -ne 0 ]; then
  echo "static analysis: FAILED ($ran passed, $skipped skipped)" >&2
else
  echo "static analysis: OK ($ran passed, $skipped skipped)"
fi
exit "$overall"
