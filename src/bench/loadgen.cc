#include "bench/loadgen.h"

#include <sys/resource.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <memory>
#include <mutex>
#include <numeric>
#include <utility>

#include "core/advisor.h"
#include "core/streaming_problem.h"
#include "engine/executor.h"
#include "engine/rewriter.h"
#include "engine/view_store.h"
#include "ilp/problem_index.h"
#include "plan/builder.h"
#include "select/iterview.h"
#include "util/logging.h"
#include "subquery/clusterer.h"
#include "util/metrics.h"
#include "util/parse.h"
#include "util/random.h"
#include "util/strings.h"
#include "util/thread_pool.h"
#include "workload/generator.h"

namespace autoview {

namespace {

/// Parses one `--key=value` (or bare `--full`) flag into `config`.
Status ParseFlag(const std::string& arg, LoadGenConfig* config) {
  if (arg.rfind("--", 0) != 0) {
    return Status::InvalidArgument("expected --key=value, got: " + arg);
  }
  const size_t eq = arg.find('=');
  const std::string key = arg.substr(2, eq == std::string::npos
                                            ? std::string::npos
                                            : eq - 2);
  const std::string value =
      eq == std::string::npos ? "" : arg.substr(eq + 1);
  // Strict whole-string parsing (util/parse.h): signs on unsigned
  // flags, trailing junk, and overflow are all errors instead of the
  // silent wrap/truncate the strtoull family allowed.
  auto parse_u64 = [&](uint64_t* out) {
    const Status status = ParseUint64(value, out);
    return status.ok() ? status
                       : Status::InvalidArgument("bad integer for --" + key +
                                                 ": " + value);
  };
  auto parse_double = [&](double* out) {
    const Status status = ParseDouble(value, out);
    return status.ok() ? status
                       : Status::InvalidArgument("bad number for --" + key +
                                                 ": " + value);
  };

  uint64_t u = 0;
  if (key == "clients") {
    AV_RETURN_NOT_OK(parse_u64(&u));
    config->clients = static_cast<int>(u);
  } else if (key == "warmup_s") {
    AV_RETURN_NOT_OK(parse_double(&config->warmup_s));
  } else if (key == "measure_s") {
    AV_RETURN_NOT_OK(parse_double(&config->measure_s));
  } else if (key == "seed") {
    AV_RETURN_NOT_OK(parse_u64(&config->seed));
  } else if (key == "workload") {
    config->workload = value;
  } else if (key == "scale") {
    AV_RETURN_NOT_OK(parse_double(&config->scale));
  } else if (key == "full") {
    config->full = value.empty() || value == "true" || value == "1";
  } else if (key == "max_requests") {
    AV_RETURN_NOT_OK(parse_u64(&u));
    config->max_requests = u;
  } else if (key == "select_iterations") {
    AV_RETURN_NOT_OK(parse_u64(&u));
    config->select_iterations = u;
  } else if (key == "select_timeout_s") {
    AV_RETURN_NOT_OK(parse_double(&config->select_timeout_s));
  } else if (key == "view_budget_bytes") {
    AV_RETURN_NOT_OK(parse_u64(&config->view_budget_bytes));
  } else if (key == "drift") {
    config->drift = value;
  } else if (key == "online") {
    config->online = value.empty() || value == "true" || value == "1";
  } else if (key == "advisor_epoch") {
    AV_RETURN_NOT_OK(parse_u64(&u));
    config->advisor_epoch = u;
  } else if (key == "fast_path") {
    config->fast_path = value.empty() || value == "true" || value == "1";
  } else if (key == "csv") {
    config->csv_file = value;
  } else if (key == "json") {
    config->json_file = value;
  } else {
    return Status::InvalidArgument("unknown loadgen flag: --" + key);
  }
  return Status::OK();
}

}  // namespace

Result<LoadGenConfig> ParseLoadGenArgs(const std::vector<std::string>& args) {
  LoadGenConfig config;
  for (const std::string& arg : args) {
    AV_RETURN_NOT_OK(ParseFlag(arg, &config));
  }
  if (config.clients <= 0) {
    return Status::InvalidArgument("--clients must be positive");
  }
  if (config.workload != "WK1" && config.workload != "WK2") {
    return Status::InvalidArgument("--workload must be WK1 or WK2, got: " +
                                   config.workload);
  }
  if (config.drift != "" && config.drift != "churn" &&
      config.drift != "shift" && config.drift != "adhoc") {
    return Status::InvalidArgument(
        "--drift must be churn, shift, or adhoc, got: " + config.drift);
  }
  if (!config.drift.empty() && config.max_requests == 0) {
    return Status::InvalidArgument(
        "--drift requires --max_requests (progress is schedule position)");
  }
  if (config.advisor_epoch == 0) {
    return Status::InvalidArgument("--advisor_epoch must be positive");
  }
  return config;
}

std::vector<std::string> ToArgs(const LoadGenConfig& config) {
  std::vector<std::string> args;
  args.push_back(StrFormat("--clients=%d", config.clients));
  args.push_back(StrFormat("--warmup_s=%.17g", config.warmup_s));
  args.push_back(StrFormat("--measure_s=%.17g", config.measure_s));
  args.push_back(StrFormat("--seed=%llu",
                           static_cast<unsigned long long>(config.seed)));
  args.push_back("--workload=" + config.workload);
  args.push_back(StrFormat("--scale=%.17g", config.scale));
  args.push_back(StrFormat("--full=%s", config.full ? "true" : "false"));
  args.push_back(StrFormat("--max_requests=%zu", config.max_requests));
  args.push_back(
      StrFormat("--select_iterations=%zu", config.select_iterations));
  args.push_back(
      StrFormat("--select_timeout_s=%.17g", config.select_timeout_s));
  args.push_back(StrFormat(
      "--view_budget_bytes=%llu",
      static_cast<unsigned long long>(config.view_budget_bytes)));
  args.push_back("--drift=" + config.drift);
  args.push_back(StrFormat("--online=%s", config.online ? "true" : "false"));
  args.push_back(StrFormat("--advisor_epoch=%zu", config.advisor_epoch));
  args.push_back(
      StrFormat("--fast_path=%s", config.fast_path ? "true" : "false"));
  args.push_back("--csv=" + config.csv_file);
  args.push_back("--json=" + config.json_file);
  return args;
}

double Percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  if (p <= 0.0) return sorted.front();
  // Nearest-rank: the smallest value with at least p% of samples <= it.
  const double rank = std::ceil(p / 100.0 * static_cast<double>(sorted.size()));
  const size_t index =
      std::min(sorted.size() - 1,
               static_cast<size_t>(std::max(1.0, rank)) - 1);
  return sorted[index];
}

std::vector<std::vector<size_t>> BuildSchedule(uint64_t seed, int clients,
                                               size_t per_client,
                                               size_t num_queries,
                                               const std::string& drift) {
  std::vector<std::vector<size_t>> schedule(
      static_cast<size_t>(std::max(clients, 0)));
  if (num_queries == 0) return schedule;
  const size_t nq = num_queries;
  for (int c = 0; c < clients; ++c) {
    Rng rng(Rng::StreamSeed(seed, static_cast<uint64_t>(c)));
    auto& reqs = schedule[static_cast<size_t>(c)];
    reqs.reserve(per_client);
    for (size_t n = 0; n < per_client; ++n) {
      size_t qi = 0;
      if (drift == "churn") {
        // Rotating quarter: phase p of 4 draws only from
        // [p*nq/4, (p+1)*nq/4) — the active set fully churns between
        // phases.
        const size_t phase = std::min<size_t>(3, 4 * n / per_client);
        const size_t lo = phase * nq / 4;
        const size_t hi = std::max(lo + 1, (phase + 1) * nq / 4);
        qi = lo + static_cast<size_t>(rng.UniformInt(
                      0, static_cast<int64_t>(hi - lo) - 1));
      } else if (drift == "shift") {
        // A Zipf(1.2) hot spot whose head slides across the whole query
        // space as the schedule progresses.
        const size_t hot = n * nq / per_client;
        qi = (hot + static_cast<size_t>(
                        rng.Zipf(static_cast<int64_t>(nq), 1.2))) %
             nq;
      } else if (drift == "adhoc") {
        // Half the traffic pins a fixed nq/8 head (stable, cacheable);
        // the other half is one-off uniform noise.
        const size_t head = std::max<size_t>(1, nq / 8);
        qi = static_cast<size_t>(
            rng.Bernoulli(0.5)
                ? rng.UniformInt(0, static_cast<int64_t>(head) - 1)
                : rng.UniformInt(0, static_cast<int64_t>(nq) - 1));
      } else {
        qi = static_cast<size_t>(
            rng.UniformInt(0, static_cast<int64_t>(nq) - 1));
      }
      reqs.push_back(qi);
    }
  }
  return schedule;
}

size_t PeakRssBytes() {
  struct rusage usage;
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
  // ru_maxrss is kilobytes on Linux.
  return static_cast<size_t>(usage.ru_maxrss) * 1024;
}

namespace {

using SteadyClock = std::chrono::steady_clock;

double SecondsBetween(SteadyClock::time_point a, SteadyClock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

/// One client's serving loop: parse -> rewrite -> execute, recording
/// per-request latency (ms) into `latencies` (owned by this client).
/// In scheduled mode it runs its exact schedule; in timed mode it draws
/// from its own Rng stream until `stop_at`, recording only requests that
/// started after `record_from` (the warmup boundary).
struct ClientTask {
  const GeneratedWorkload* workload = nullptr;
  const Rewriter* rewriter = nullptr;
  const Executor* executor = nullptr;
  const std::vector<const MaterializedView*>* views = nullptr;

  /// Online mode: every request is ingested into the advisor (which may
  /// re-select and hot-swap `store` right here), then served from a
  /// freshly pinned snapshot so committed swaps become visible.
  OnlineAdvisor* advisor = nullptr;
  MaterializedViewStore* store = nullptr;

  /// Serve via Rewriter::RewriteServing (view index + rewrite cache,
  /// pin-by-id) instead of PinLive + the sequential per-view loop.
  /// Requires `store` (set whenever the flag is on, batch or online).
  bool fast_path = false;

  std::vector<double> latencies;
  // Phase breakdown, index-aligned with `latencies` (one entry per
  // successful measured request).
  std::vector<double> parse_ms;
  std::vector<double> rewrite_ms;
  std::vector<double> execute_ms;
  size_t errors = 0;

  void Serve(size_t query_index) {
    if (advisor != nullptr) {
      // Outside the timed section: the swap happens on this (client)
      // thread, but other clients keep serving from their pins — the
      // measured latency is the request itself, which never blocks on a
      // re-selection.
      // An ingest failure is advisory-only: the request still serves
      // against the current view set, it just misses one window update.
      Status ingest = advisor->IngestSql(workload->sql[query_index]).status();
      if (!ingest.ok()) {
        AV_LOG(Warning) << "online ingest failed: " << ingest.ToString();
      }
    }
    const auto start = SteadyClock::now();
    PlanBuilder builder(&workload->db->catalog());
    Result<PlanNodePtr> plan =
        builder.BuildFromSql(workload->sql[query_index]);
    if (!plan.ok()) {
      ++errors;
      return;
    }
    const auto parsed = SteadyClock::now();
    PlanNodePtr final_plan;
    ViewSetSnapshot pin;
    if (fast_path && store != nullptr) {
      Result<ServingRewrite> serving =
          rewriter->RewriteServing(plan.value(), store);
      if (!serving.ok()) {
        ++errors;
        return;
      }
      final_plan = std::move(serving.value().plan);
      pin = std::move(serving.value().pins);
    } else {
      const std::vector<const MaterializedView*>* view_set = views;
      if (store != nullptr) {
        pin = store->PinLive();
        view_set = &pin.views();
      }
      size_t substitutions = 0;
      Result<PlanNodePtr> rewritten =
          rewriter->RewriteAll(plan.value(), *view_set, &substitutions);
      if (!rewritten.ok()) {
        ++errors;
        return;
      }
      final_plan = std::move(rewritten).value();
    }
    const auto rewritten_at = SteadyClock::now();
    Result<CostReport> cost = executor->ExecuteForCost(*final_plan);
    if (!cost.ok()) {
      ++errors;
      return;
    }
    const auto done = SteadyClock::now();
    latencies.push_back(1e3 * SecondsBetween(start, done));
    parse_ms.push_back(1e3 * SecondsBetween(start, parsed));
    rewrite_ms.push_back(1e3 * SecondsBetween(parsed, rewritten_at));
    execute_ms.push_back(1e3 * SecondsBetween(rewritten_at, done));
  }

  void RunScheduled(const std::vector<size_t>& schedule) {
    latencies.reserve(schedule.size());
    parse_ms.reserve(schedule.size());
    rewrite_ms.reserve(schedule.size());
    execute_ms.reserve(schedule.size());
    for (size_t qi : schedule) Serve(qi);
  }

  void RunTimed(uint64_t client_seed, SteadyClock::time_point record_from,
                SteadyClock::time_point stop_at) {
    Rng rng(client_seed);
    const size_t nq = workload->sql.size();
    while (SteadyClock::now() < stop_at) {
      const size_t qi = static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(nq) - 1));
      const bool record = SteadyClock::now() >= record_from;
      const size_t before = latencies.size();
      Serve(qi);
      if (!record && latencies.size() > before) {
        // Warmup request: drop it from every aligned series.
        latencies.pop_back();
        parse_ms.pop_back();
        rewrite_ms.pop_back();
        execute_ms.pop_back();
      }
    }
  }
};

/// Sorts `values` and fills the three percentile slots.
void FillPercentiles(std::vector<double> values, double* p50, double* p95,
                     double* p99) {
  std::sort(values.begin(), values.end());
  *p50 = Percentile(values, 50);
  *p95 = Percentile(values, 95);
  *p99 = Percentile(values, 99);
}

}  // namespace

Result<LoadGenResult> RunLoadGen(const LoadGenConfig& config) {
  LoadGenResult result;
  result.workload = config.workload;
  result.mode = config.full ? "full" : "scaled";
  result.clients = config.clients;
  result.seed = config.seed;

  // 1. Generate the preset workload.
  CloudWorkloadSpec spec;
  if (config.workload == "WK1") {
    spec = config.full ? Wk1FullSpec() : Wk1Spec(config.scale);
  } else if (config.workload == "WK2") {
    spec = config.full ? Wk2FullSpec() : Wk2Spec(config.scale);
  } else {
    return Status::InvalidArgument("unknown workload preset: " +
                                   config.workload);
  }
  GeneratedWorkload workload = GenerateCloudWorkload(spec);
  result.num_queries = workload.sql.size();
  result.num_tables = workload.db->catalog().num_tables();
  if (workload.sql.empty()) {
    return Status::InvalidArgument("empty workload");
  }

  // Store counters are reported as deltas so concurrent runs in one
  // process stay additive.
  const ViewStoreCounters::Snapshot store_before = GlobalViewStore().Read();
  const RobustnessCounters::Snapshot robust_before = GlobalRobustness().Read();
  const RewriteCacheCounters::Snapshot cache_before =
      GlobalRewriteCache().Read();
  Executor executor(workload.db.get());
  ViewStoreOptions store_options;
  store_options.budget_bytes = config.view_budget_bytes;
  result.view_budget_bytes = config.view_budget_bytes;
  result.drift = config.drift;
  result.online = config.online;
  result.fast_path = config.fast_path;
  MaterializedViewStore store(workload.db.get(), store_options);
  std::unique_ptr<OnlineAdvisor> advisor;
  ViewSetSnapshot snapshot;

  if (config.online) {
    // 2'. Online mode: a live advisor replaces the one-shot cluster ->
    // build -> select -> materialize pipeline. Clients stream every
    // request into it; each epoch it re-selects (warm-started, under the
    // selection deadline) and hot-swaps the store generation while the
    // other clients keep serving from their pinned snapshots.
    OnlineAdvisorOptions advisor_options;
    advisor_options.seed = config.seed;
    advisor_options.trigger = ReselectTrigger::kQueryEpoch;
    advisor_options.epoch_queries = config.advisor_epoch;
    advisor_options.window_queries = 4 * config.advisor_epoch;
    advisor_options.select_iterations = config.select_iterations;
    if (config.select_timeout_s > 0) {
      advisor_options.reselect_budget_ms = 1e3 * config.select_timeout_s;
    }
    advisor = std::make_unique<OnlineAdvisor>(workload.db.get(), &store,
                                              advisor_options);
  } else {
    // 2. Cluster (streaming: plans stay transient) and build the
    // compressed benefit matrix in bounded shards. query_fn re-parses on
    // demand — the re-invocable contract of the streaming paths.
    const auto query_fn = [&workload](size_t qi) -> PlanNodePtr {
      PlanBuilder builder(&workload.db->catalog());
      Result<PlanNodePtr> plan = builder.BuildFromSql(workload.sql[qi]);
      return plan.ok() ? std::move(plan).value() : nullptr;
    };
    SubqueryClusterer clusterer;
    WorkloadAnalysis analysis =
        clusterer.AnalyzeStreaming(workload.sql.size(), query_fn);
    result.num_candidates = analysis.candidates.size();

    StreamingProblemOptions problem_options;
    AV_ASSIGN_OR_RETURN(StreamingProblem problem,
                        BuildStreamingProblem(workload.db->catalog(), analysis,
                                              query_fn, problem_options));
    result.csr_shards = problem.compact.rows.num_shards();
    result.csr_bytes = problem.compact.rows.byte_size();

    // 3. Deadline-bounded incremental selection straight off the shards.
    const MvsProblemIndex index(problem.compact);
    IterViewSelector::Options select_options;
    select_options.iterations = config.select_iterations;
    select_options.seed = config.seed;
    if (config.select_timeout_s > 0) {
      select_options.deadline =
          Deadline::AfterMillis(1e3 * config.select_timeout_s);
    }
    IterViewSelector selector(select_options);
    AV_ASSIGN_OR_RETURN(MvsSolution solution, selector.SelectIndexed(index));
    result.select_utility = solution.utility;
    result.select_timed_out = solution.timed_out;

    // 4. Materialize the chosen views into the budgeted store, each
    // scored with its solver utility so any forced eviction keeps the
    // strongest utility-per-byte views. A view the budget rejects
    // outright is skipped — its queries serve from base tables.
    for (size_t j = 0; j < solution.z.size(); ++j) {
      if (!solution.z[j]) continue;
      MaterializeOptions mopts;
      mopts.utility = index.ViewUtility(j);
      Result<const MaterializedView*> view =
          store.Materialize(problem.candidate_plans[j], executor, mopts);
      if (!view.ok() &&
          view.status().code() != StatusCode::kResourceExhausted) {
        return view.status();
      }
    }

    // Serve from a pinned snapshot: pinned views cannot be physically
    // dropped mid-request, and views the budget evicted simply are not
    // in the set. (Online mode pins per request instead, so committed
    // hot swaps become visible mid-run.)
    snapshot = store.PinLive();
    result.num_selected = snapshot.views().size();
    result.store_views = store.size();
    result.store_bytes = store.bytes_used();
  }

  // 5. Serve: config.clients concurrent clients on the shared pool,
  // each parsing/rewriting/executing its own request stream.
  Rewriter rewriter(&workload.db->catalog());
  const int clients = config.clients;
  std::vector<ClientTask> tasks(static_cast<size_t>(clients));
  for (auto& task : tasks) {
    task.workload = &workload;
    task.rewriter = &rewriter;
    task.executor = &executor;
    task.views = &snapshot.views();
    task.advisor = advisor.get();
    // The fast path serves through the store (index + cache + pin-by-id)
    // in batch mode too; the batch snapshot stays pinned regardless, so
    // the selected views cannot be evicted mid-run either way.
    task.store = (config.online || config.fast_path) ? &store : nullptr;
    task.fast_path = config.fast_path;
  }

  ThreadPool& pool = DefaultPool();
  SteadyClock::time_point measure_start;
  SteadyClock::time_point measure_end;
  if (config.max_requests > 0) {
    const std::vector<std::vector<size_t>> schedule =
        BuildSchedule(config.seed, clients, config.max_requests,
                      workload.sql.size(), config.drift);
    measure_start = SteadyClock::now();
    pool.ParallelFor(0, static_cast<size_t>(clients), [&](size_t c) {
      tasks[c].RunScheduled(schedule[c]);
    });
    measure_end = SteadyClock::now();
  } else {
    const auto start = SteadyClock::now();
    const auto record_from =
        start + std::chrono::duration_cast<SteadyClock::duration>(
                    std::chrono::duration<double>(config.warmup_s));
    const auto stop_at =
        record_from + std::chrono::duration_cast<SteadyClock::duration>(
                          std::chrono::duration<double>(config.measure_s));
    measure_start = record_from;
    pool.ParallelFor(0, static_cast<size_t>(clients), [&](size_t c) {
      tasks[c].RunTimed(Rng::StreamSeed(config.seed, c), record_from,
                        stop_at);
    });
    measure_end = stop_at;
  }

  // 6. Aggregate.
  std::vector<double> latencies;
  for (const auto& task : tasks) {
    latencies.insert(latencies.end(), task.latencies.begin(),
                     task.latencies.end());
  }
  std::sort(latencies.begin(), latencies.end());
  result.requests = latencies.size();
  result.elapsed_s = SecondsBetween(measure_start, measure_end);
  result.qps = result.elapsed_s > 0
                   ? static_cast<double>(result.requests) / result.elapsed_s
                   : 0.0;
  result.p50_ms = Percentile(latencies, 50);
  result.p95_ms = Percentile(latencies, 95);
  result.p99_ms = Percentile(latencies, 99);
  result.mean_ms =
      latencies.empty()
          ? 0.0
          : std::accumulate(latencies.begin(), latencies.end(), 0.0) /
                static_cast<double>(latencies.size());
  result.peak_rss_mb =
      static_cast<double>(PeakRssBytes()) / (1024.0 * 1024.0);
  std::vector<double> parse_all, rewrite_all, execute_all;
  for (const auto& task : tasks) {
    parse_all.insert(parse_all.end(), task.parse_ms.begin(),
                     task.parse_ms.end());
    rewrite_all.insert(rewrite_all.end(), task.rewrite_ms.begin(),
                       task.rewrite_ms.end());
    execute_all.insert(execute_all.end(), task.execute_ms.begin(),
                       task.execute_ms.end());
  }
  FillPercentiles(std::move(parse_all), &result.parse_p50_ms,
                  &result.parse_p95_ms, &result.parse_p99_ms);
  FillPercentiles(std::move(rewrite_all), &result.rewrite_p50_ms,
                  &result.rewrite_p95_ms, &result.rewrite_p99_ms);
  FillPercentiles(std::move(execute_all), &result.execute_p50_ms,
                  &result.execute_p95_ms, &result.execute_p99_ms);
  for (const auto& task : tasks) result.failed_requests += task.errors;
  snapshot.Release();
  if (config.online) {
    const OnlineAdvisorStats advisor_stats = advisor->stats();
    result.num_candidates = advisor_stats.candidate_views;
    result.num_selected = advisor->SelectedKeys().size();
    result.select_utility = advisor_stats.incumbent_utility;
    result.select_timed_out = advisor_stats.last_reselect_timed_out;
    result.ingested = advisor_stats.ingested;
    result.reselections = advisor_stats.reselections;
    result.swaps_committed = advisor_stats.swaps_committed;
    result.store_views = store.size();
    result.store_bytes = store.bytes_used();
  }
  result.evictions =
      GlobalViewStore().Read().evictions - store_before.evictions;
  result.rewrite_fallbacks = GlobalRobustness().Read().rewrite_fallbacks -
                             robust_before.rewrite_fallbacks;
  const RewriteCacheCounters::Snapshot cache_after =
      GlobalRewriteCache().Read();
  result.rewrite_cache_hits = cache_after.hits - cache_before.hits;
  result.rewrite_cache_misses = cache_after.misses - cache_before.misses;

  if (!config.csv_file.empty()) {
    AV_RETURN_NOT_OK(WriteTextFile(config.csv_file, ThroughputCsv({result})));
  }
  if (!config.json_file.empty()) {
    AV_RETURN_NOT_OK(
        WriteTextFile(config.json_file, ThroughputJson({result})));
  }
  return result;
}

namespace {

std::string ResultJson(const LoadGenResult& r) {
  return StrFormat(
      "    {\"workload\": \"%s\", \"mode\": \"%s\", \"queries\": %zu, "
      "\"tables\": %zu, \"candidates\": %zu, \"selected\": %zu, "
      "\"clients\": %d, \"seed\": %llu, \"requests\": %zu, "
      "\"elapsed_s\": %.3f, \"qps\": %.2f, \"p50_ms\": %.3f, "
      "\"p95_ms\": %.3f, \"p99_ms\": %.3f, \"mean_ms\": %.3f, "
      "\"csr_shards\": %zu, \"csr_bytes\": %zu, \"peak_rss_mb\": %.1f, "
      "\"select_utility\": %.4f, \"select_timed_out\": %s, "
      "\"view_budget_bytes\": %llu, \"store_bytes\": %llu, "
      "\"store_views\": %zu, \"evictions\": %llu, "
      "\"rewrite_fallbacks\": %llu, \"failed_requests\": %zu, "
      "\"drift\": \"%s\", \"online\": %s, \"ingested\": %llu, "
      "\"reselections\": %llu, \"swaps_committed\": %llu, "
      "\"fast_path\": %s, "
      "\"parse_p50_ms\": %.3f, \"parse_p95_ms\": %.3f, "
      "\"parse_p99_ms\": %.3f, \"rewrite_p50_ms\": %.3f, "
      "\"rewrite_p95_ms\": %.3f, \"rewrite_p99_ms\": %.3f, "
      "\"execute_p50_ms\": %.3f, \"execute_p95_ms\": %.3f, "
      "\"execute_p99_ms\": %.3f, \"rewrite_cache_hits\": %llu, "
      "\"rewrite_cache_misses\": %llu}",
      r.workload.c_str(), r.mode.c_str(), r.num_queries, r.num_tables,
      r.num_candidates, r.num_selected, r.clients,
      static_cast<unsigned long long>(r.seed), r.requests, r.elapsed_s,
      r.qps, r.p50_ms, r.p95_ms, r.p99_ms, r.mean_ms, r.csr_shards,
      r.csr_bytes, r.peak_rss_mb, r.select_utility,
      r.select_timed_out ? "true" : "false",
      static_cast<unsigned long long>(r.view_budget_bytes),
      static_cast<unsigned long long>(r.store_bytes), r.store_views,
      static_cast<unsigned long long>(r.evictions),
      static_cast<unsigned long long>(r.rewrite_fallbacks),
      r.failed_requests, r.drift.c_str(), r.online ? "true" : "false",
      static_cast<unsigned long long>(r.ingested),
      static_cast<unsigned long long>(r.reselections),
      static_cast<unsigned long long>(r.swaps_committed),
      r.fast_path ? "true" : "false", r.parse_p50_ms, r.parse_p95_ms,
      r.parse_p99_ms, r.rewrite_p50_ms, r.rewrite_p95_ms, r.rewrite_p99_ms,
      r.execute_p50_ms, r.execute_p95_ms, r.execute_p99_ms,
      static_cast<unsigned long long>(r.rewrite_cache_hits),
      static_cast<unsigned long long>(r.rewrite_cache_misses));
}

}  // namespace

std::string ThroughputJson(const std::vector<LoadGenResult>& results) {
  std::string out = "{\n  \"benchmark\": \"autoview_throughput\",\n"
                    "  \"results\": [\n";
  for (size_t n = 0; n < results.size(); ++n) {
    out += ResultJson(results[n]);
    out += n + 1 < results.size() ? ",\n" : "\n";
  }
  out += "  ]\n}\n";
  return out;
}

std::string ThroughputCsv(const std::vector<LoadGenResult>& results) {
  std::string out =
      "workload,mode,queries,tables,candidates,selected,clients,seed,"
      "requests,elapsed_s,qps,p50_ms,p95_ms,p99_ms,mean_ms,csr_shards,"
      "csr_bytes,peak_rss_mb,select_utility,select_timed_out,"
      "view_budget_bytes,store_bytes,store_views,evictions,"
      "rewrite_fallbacks,failed_requests,drift,online,ingested,"
      "reselections,swaps_committed,fast_path,parse_p50_ms,parse_p95_ms,"
      "parse_p99_ms,rewrite_p50_ms,rewrite_p95_ms,rewrite_p99_ms,"
      "execute_p50_ms,execute_p95_ms,execute_p99_ms,rewrite_cache_hits,"
      "rewrite_cache_misses\n";
  for (const LoadGenResult& r : results) {
    out += StrFormat(
        "%s,%s,%zu,%zu,%zu,%zu,%d,%llu,%zu,%.3f,%.2f,%.3f,%.3f,%.3f,%.3f,"
        "%zu,%zu,%.1f,%.4f,%d,%llu,%llu,%zu,%llu,%llu,%zu,%s,%d,%llu,%llu,"
        "%llu,%d,%.3f,%.3f,%.3f,%.3f,%.3f,%.3f,%.3f,%.3f,%.3f,%llu,%llu\n",
        r.workload.c_str(), r.mode.c_str(), r.num_queries, r.num_tables,
        r.num_candidates, r.num_selected, r.clients,
        static_cast<unsigned long long>(r.seed), r.requests, r.elapsed_s,
        r.qps, r.p50_ms, r.p95_ms, r.p99_ms, r.mean_ms, r.csr_shards,
        r.csr_bytes, r.peak_rss_mb, r.select_utility,
        r.select_timed_out ? 1 : 0,
        static_cast<unsigned long long>(r.view_budget_bytes),
        static_cast<unsigned long long>(r.store_bytes), r.store_views,
        static_cast<unsigned long long>(r.evictions),
        static_cast<unsigned long long>(r.rewrite_fallbacks),
        r.failed_requests, r.drift.c_str(), r.online ? 1 : 0,
        static_cast<unsigned long long>(r.ingested),
        static_cast<unsigned long long>(r.reselections),
        static_cast<unsigned long long>(r.swaps_committed),
        r.fast_path ? 1 : 0, r.parse_p50_ms, r.parse_p95_ms, r.parse_p99_ms,
        r.rewrite_p50_ms, r.rewrite_p95_ms, r.rewrite_p99_ms,
        r.execute_p50_ms, r.execute_p95_ms, r.execute_p99_ms,
        static_cast<unsigned long long>(r.rewrite_cache_hits),
        static_cast<unsigned long long>(r.rewrite_cache_misses));
  }
  return out;
}

Status WriteTextFile(const std::string& path, const std::string& text) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::Internal("cannot open for writing: " + path);
  }
  const size_t written = std::fwrite(text.data(), 1, text.size(), f);
  const int close_rc = std::fclose(f);
  if (written != text.size() || close_rc != 0) {
    return Status::Internal("short write: " + path);
  }
  return Status::OK();
}

}  // namespace autoview
