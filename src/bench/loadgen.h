#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace autoview {

class ThreadPool;

/// \brief Configuration of the throughput load generator (after the
/// kv-server harness shape: clients / warmup / measure / seed / workload
/// preset / output files). All randomness in a run flows from `seed` —
/// the repro lint in scripts/check_determinism.sh enforces that the
/// loadgen never draws ambient entropy.
struct LoadGenConfig {
  int clients = 8;          ///< concurrent serving clients (pool tasks)
  double warmup_s = 1.0;    ///< untimed ramp-up window (timed mode)
  double measure_s = 5.0;   ///< measured window (timed mode)
  uint64_t seed = 12345;    ///< root seed; client c uses stream c

  std::string workload = "WK1";  ///< preset: WK1 | WK2
  double scale = 1.0;            ///< bench-scale multiplier (full=false)
  bool full = false;             ///< full paper counts (38.6k / 157.6k)

  /// When nonzero, ignore the time windows and serve exactly this many
  /// requests per client from the precomputed schedule — the
  /// deterministic mode (same request multiset for any thread count).
  size_t max_requests = 0;

  size_t select_iterations = 60;   ///< IterView iterations
  double select_timeout_s = 20.0;  ///< selection deadline (anytime)

  /// Byte budget of the serving view store (0 = unlimited). When the
  /// selection does not fit, the store keeps the best utility-per-byte
  /// views and the rest of the requests fall back to base tables — the
  /// run still completes with zero failed queries.
  uint64_t view_budget_bytes = 0;

  /// Request-mix drift across the schedule ("" = stationary uniform):
  /// "churn" draws from a rotating quarter of the query space (four
  /// phases), "shift" slides a Zipf(1.2) hot spot across it with
  /// progress, "adhoc" sends half the traffic to a fixed nq/8 head and
  /// the rest uniform. Deterministic — each client's drift stream comes
  /// from the same seeded Rng stream as the stationary schedule.
  /// Requires max_requests > 0 (progress = position in the schedule).
  std::string drift;

  /// Serve through a live OnlineAdvisor instead of the one-shot batch
  /// pipeline: every request is ingested before being served from a
  /// freshly pinned store snapshot, so epoch-triggered re-selections
  /// hot-swap the view set mid-run while serving continues.
  bool online = false;

  /// Advisor re-selection epoch in queries (online mode only).
  size_t advisor_epoch = 32;

  /// Serve through the fast path (Rewriter::RewriteServing: view-index
  /// single-walk rewrite + generation-keyed rewrite cache, pinning only
  /// the substituted views) instead of the sequential per-view oracle
  /// under a full PinLive snapshot. Both produce identical plans (see
  /// tests/rewrite_fast_path_test.cc); false exists to measure the
  /// oracle path and as a belt-and-braces escape hatch.
  bool fast_path = true;

  std::string csv_file;   ///< summary CSV path ("" = skip)
  std::string json_file;  ///< summary JSON path ("" = skip)

  bool operator==(const LoadGenConfig& other) const {
    return clients == other.clients && warmup_s == other.warmup_s &&
           measure_s == other.measure_s && seed == other.seed &&
           workload == other.workload && scale == other.scale &&
           full == other.full && max_requests == other.max_requests &&
           select_iterations == other.select_iterations &&
           select_timeout_s == other.select_timeout_s &&
           view_budget_bytes == other.view_budget_bytes &&
           drift == other.drift && online == other.online &&
           advisor_epoch == other.advisor_epoch &&
           fast_path == other.fast_path &&
           csv_file == other.csv_file && json_file == other.json_file;
  }
};

/// Parses `--key=value` flags (e.g. `--clients=16 --workload=WK2
/// --full`). Unknown flags are an error; every field of LoadGenConfig
/// round-trips through ToArgs + ParseLoadGenArgs.
Result<LoadGenConfig> ParseLoadGenArgs(const std::vector<std::string>& args);

/// Serializes `config` back into the flag form ParseLoadGenArgs accepts.
std::vector<std::string> ToArgs(const LoadGenConfig& config);

/// \brief Summary of one measured load-generation run.
struct LoadGenResult {
  std::string workload;  ///< preset name
  std::string mode;      ///< "scaled" or "full"
  size_t num_queries = 0;     ///< workload |Q| (generated)
  size_t num_tables = 0;      ///< workload table count
  size_t num_candidates = 0;  ///< |Z| after clustering
  size_t num_selected = 0;    ///< materialized views
  int clients = 0;
  uint64_t seed = 0;

  size_t requests = 0;     ///< measured requests (all clients)
  double elapsed_s = 0.0;  ///< measured wall time
  double qps = 0.0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  double mean_ms = 0.0;

  size_t csr_shards = 0;        ///< compressed benefit-matrix shards
  size_t csr_bytes = 0;         ///< compressed payload size
  double peak_rss_mb = 0.0;     ///< process peak RSS after the run
  double select_utility = 0.0;  ///< chosen solution utility
  bool select_timed_out = false;

  uint64_t view_budget_bytes = 0;  ///< configured store budget (0 = off)
  uint64_t store_bytes = 0;        ///< stored view bytes while serving
  size_t store_views = 0;          ///< resident views while serving
  uint64_t evictions = 0;          ///< budget evictions during this run
  uint64_t rewrite_fallbacks = 0;  ///< evicted-view rewrite fallbacks
  size_t failed_requests = 0;      ///< requests that returned an error

  std::string drift;             ///< drift mode ("" = stationary)
  bool online = false;           ///< served through the online advisor
  uint64_t ingested = 0;         ///< advisor-ingested queries (online)
  uint64_t reselections = 0;     ///< advisor re-selections (online)
  uint64_t swaps_committed = 0;  ///< generation hot swaps (online)

  bool fast_path = true;  ///< served via RewriteServing (index + cache)

  /// Per-phase latency breakdown over the same measured requests as
  /// p50_ms..p99_ms, so a serving regression is attributable to the
  /// phase that moved: parse (SQL -> plan), rewrite (pin + view
  /// substitution), execute (cost-mode execution of the final plan).
  double parse_p50_ms = 0.0;
  double parse_p95_ms = 0.0;
  double parse_p99_ms = 0.0;
  double rewrite_p50_ms = 0.0;
  double rewrite_p95_ms = 0.0;
  double rewrite_p99_ms = 0.0;
  double execute_p50_ms = 0.0;
  double execute_p95_ms = 0.0;
  double execute_p99_ms = 0.0;

  /// GlobalRewriteCache() deltas over this run (fast path only; both
  /// stay 0 on the oracle path).
  uint64_t rewrite_cache_hits = 0;
  uint64_t rewrite_cache_misses = 0;
};

/// Nearest-rank percentile (p in [0, 100]) over ascending `sorted`;
/// 0 for an empty vector. Exposed for the fixture tests.
double Percentile(const std::vector<double>& sorted, double p);

/// The deterministic request schedule: client c's requests are drawn
/// from Rng stream c of `seed` — uniformly over [0, num_queries) when
/// `drift` is empty, otherwise per the LoadGenConfig::drift modes
/// (churn / shift / adhoc), with progress measured by position in the
/// schedule. The multiset of scheduled requests depends only on (seed,
/// clients, per_client, num_queries, drift) — never on the thread count
/// executing it.
std::vector<std::vector<size_t>> BuildSchedule(
    uint64_t seed, int clients, size_t per_client, size_t num_queries,
    const std::string& drift = std::string());

/// Runs the full pipeline for `config`: generate the preset workload,
/// cluster it (streaming), build the compressed benefit matrix in
/// shards, select views with deadline-bounded incremental IterView,
/// materialize the selection, then drive the parse -> rewrite -> execute
/// serving path from `config.clients` concurrent clients on the shared
/// thread pool, measuring per-request latency. Writes the CSV/JSON
/// outputs when configured.
Result<LoadGenResult> RunLoadGen(const LoadGenConfig& config);

/// Writers for the summary formats (single JSON object with a
/// `results` array / CSV with a header row). Exposed for golden tests.
std::string ThroughputJson(const std::vector<LoadGenResult>& results);
std::string ThroughputCsv(const std::vector<LoadGenResult>& results);

/// Writes `text` to `path` (single blob, trailing newline preserved).
Status WriteTextFile(const std::string& path, const std::string& text);

/// Peak resident set size of this process in bytes (getrusage).
size_t PeakRssBytes();

}  // namespace autoview
