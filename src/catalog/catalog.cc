#include "catalog/catalog.h"

namespace autoview {

Status Catalog::AddTable(TableSchema schema) {
  const std::string name = schema.name();
  if (tables_.count(name)) {
    return Status::AlreadyExists("table already registered: " + name);
  }
  tables_.emplace(name, std::move(schema));
  return Status::OK();
}

Status Catalog::SetStats(const std::string& table, TableStats stats) {
  if (!tables_.count(table)) {
    return Status::NotFound("no such table: " + table);
  }
  stats_[table] = std::move(stats);
  return Status::OK();
}

Result<const TableSchema*> Catalog::GetTable(const std::string& table) const {
  auto it = tables_.find(table);
  if (it == tables_.end()) {
    return Status::NotFound("no such table: " + table);
  }
  return &it->second;
}

const TableStats& Catalog::GetStats(const std::string& table) const {
  auto it = stats_.find(table);
  return it == stats_.end() ? empty_stats_ : it->second;
}

std::vector<std::string> Catalog::TableNames() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, _] : tables_) names.push_back(name);
  return names;
}

}  // namespace autoview
