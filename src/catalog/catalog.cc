#include "catalog/catalog.h"

namespace autoview {

Status Catalog::AddTable(TableSchema schema) {
  const std::string name = schema.name();
  MutexLock lock(mu_);
  if (tables_.count(name)) {
    return Status::AlreadyExists("table already registered: " + name);
  }
  tables_.emplace(name, std::move(schema));
  return Status::OK();
}

Status Catalog::RemoveTable(const std::string& table) {
  MutexLock lock(mu_);
  if (tables_.erase(table) == 0) {
    return Status::NotFound("no such table: " + table);
  }
  stats_.erase(table);
  return Status::OK();
}

Status Catalog::SetStats(const std::string& table, TableStats stats) {
  MutexLock lock(mu_);
  if (!tables_.count(table)) {
    return Status::NotFound("no such table: " + table);
  }
  stats_[table] = std::move(stats);
  return Status::OK();
}

Result<const TableSchema*> Catalog::GetTable(const std::string& table) const {
  MutexLock lock(mu_);
  auto it = tables_.find(table);
  if (it == tables_.end()) {
    return Status::NotFound("no such table: " + table);
  }
  return &it->second;
}

const TableStats& Catalog::GetStats(const std::string& table) const {
  MutexLock lock(mu_);
  auto it = stats_.find(table);
  return it == stats_.end() ? empty_stats_ : it->second;
}

bool Catalog::HasTable(const std::string& table) const {
  MutexLock lock(mu_);
  return tables_.count(table) > 0;
}

size_t Catalog::num_tables() const {
  MutexLock lock(mu_);
  return tables_.size();
}

std::vector<std::string> Catalog::TableNames() const {
  MutexLock lock(mu_);
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, _] : tables_) names.push_back(name);
  return names;
}

}  // namespace autoview
