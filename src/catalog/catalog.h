#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "catalog/schema.h"
#include "util/status.h"

namespace autoview {

/// \brief The metadata database of Fig. 3: table schemas and statistics.
///
/// The catalog is consulted by the parser/planner (name resolution), the
/// traditional cost estimator (statistics), and the cost-model feature
/// extractor (schema keywords + numerical features).
class Catalog {
 public:
  /// Registers a table. Fails with AlreadyExists on duplicate names.
  Status AddTable(TableSchema schema);

  /// Replaces (or installs) the statistics for `table`.
  Status SetStats(const std::string& table, TableStats stats);

  /// Looks up a schema by table name.
  Result<const TableSchema*> GetTable(const std::string& table) const;

  /// Looks up statistics; returns zeroed defaults if never set.
  const TableStats& GetStats(const std::string& table) const;

  bool HasTable(const std::string& table) const {
    return tables_.count(table) > 0;
  }

  size_t num_tables() const { return tables_.size(); }

  /// Sorted list of table names.
  std::vector<std::string> TableNames() const;

 private:
  std::map<std::string, TableSchema> tables_;
  std::map<std::string, TableStats> stats_;
  TableStats empty_stats_;
};

}  // namespace autoview
