#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "catalog/schema.h"
#include "util/annotations.h"
#include "util/status.h"

namespace autoview {

/// \brief The metadata database of Fig. 3: table schemas and statistics.
///
/// The catalog is consulted by the parser/planner (name resolution), the
/// traditional cost estimator (statistics), and the cost-model feature
/// extractor (schema keywords + numerical features).
///
/// Thread safety: all methods are individually thread-safe (internally
/// locked), so the rewriter's existence probe can race view-store
/// installs and evictions. Returned pointers/references are stable map
/// nodes: a GetTable() schema stays valid until RemoveTable() of that
/// same table, and a GetStats() reference until the next SetStats() for
/// it — base tables are never removed, and the view store's pin
/// protocol keeps served view tables registered, so readers of either
/// never dangle. The object itself is neither movable nor copyable.
class Catalog {
 public:
  Catalog() = default;
  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;

  /// Registers a table. Fails with AlreadyExists on duplicate names.
  Status AddTable(TableSchema schema) AV_EXCLUDES(mu_);

  /// Unregisters a table and its statistics (view retirement; base
  /// tables are never removed). Fails with NotFound.
  Status RemoveTable(const std::string& table) AV_EXCLUDES(mu_);

  /// Replaces (or installs) the statistics for `table`.
  Status SetStats(const std::string& table, TableStats stats)
      AV_EXCLUDES(mu_);

  /// Looks up a schema by table name.
  Result<const TableSchema*> GetTable(const std::string& table) const
      AV_EXCLUDES(mu_);

  /// Looks up statistics; returns zeroed defaults if never set.
  const TableStats& GetStats(const std::string& table) const
      AV_EXCLUDES(mu_);

  bool HasTable(const std::string& table) const AV_EXCLUDES(mu_);

  size_t num_tables() const AV_EXCLUDES(mu_);

  /// Sorted list of table names.
  std::vector<std::string> TableNames() const AV_EXCLUDES(mu_);

 private:
  mutable Mutex mu_;
  std::map<std::string, TableSchema> tables_ AV_GUARDED_BY(mu_);
  std::map<std::string, TableStats> stats_ AV_GUARDED_BY(mu_);
  const TableStats empty_stats_;  // immutable: safe to hand out unlocked
};

}  // namespace autoview
