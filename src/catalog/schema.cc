#include "catalog/schema.h"

#include <cmath>

namespace autoview {

const char* ColumnTypeName(ColumnType type) {
  switch (type) {
    case ColumnType::kInt64:
      return "Int";
    case ColumnType::kDouble:
      return "Double";
    case ColumnType::kString:
      return "String";
  }
  return "?";
}

std::optional<size_t> TableSchema::FindColumn(const std::string& column) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name == column) return i;
  }
  return std::nullopt;
}

double Histogram::total_count() const {
  double total = 0.0;
  for (double c : bucket_counts) total += c;
  return total;
}

double Histogram::EqualitySelectivity(double v, double distinct_count) const {
  const double total = total_count();
  if (total <= 0.0 || bucket_counts.empty()) return 0.0;
  if (v < lo || v > hi) return 0.0;
  const double width = (hi - lo) / static_cast<double>(bucket_counts.size());
  size_t bucket = width > 0
                      ? static_cast<size_t>((v - lo) / width)
                      : 0;
  if (bucket >= bucket_counts.size()) bucket = bucket_counts.size() - 1;
  // Assume distinct values spread evenly across buckets.
  const double distinct_per_bucket =
      std::max(1.0, distinct_count / static_cast<double>(bucket_counts.size()));
  return bucket_counts[bucket] / distinct_per_bucket / total;
}

double Histogram::LessThanSelectivity(double v) const {
  const double total = total_count();
  if (total <= 0.0 || bucket_counts.empty()) return 0.0;
  if (v <= lo) return 0.0;
  if (v > hi) return 1.0;
  const double width = (hi - lo) / static_cast<double>(bucket_counts.size());
  if (width <= 0.0) return 0.5;
  double count = 0.0;
  const double pos = (v - lo) / width;
  const size_t full = static_cast<size_t>(pos);
  for (size_t i = 0; i < full && i < bucket_counts.size(); ++i) {
    count += bucket_counts[i];
  }
  if (full < bucket_counts.size()) {
    count += bucket_counts[full] * (pos - static_cast<double>(full));
  }
  return count / total;
}

}  // namespace autoview
