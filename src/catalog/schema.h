#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "util/status.h"

namespace autoview {

/// \brief Column data types supported by the engine.
enum class ColumnType { kInt64, kDouble, kString };

/// Human-readable type name ("Int", "Double", "String") — the same
/// spelling the paper's schema-encoding feature uses (Fig. 7b).
const char* ColumnTypeName(ColumnType type);

/// \brief A single column definition.
struct ColumnSchema {
  std::string name;
  ColumnType type = ColumnType::kInt64;

  bool operator==(const ColumnSchema&) const = default;
};

/// \brief A table definition: name plus ordered columns.
class TableSchema {
 public:
  TableSchema() = default;
  TableSchema(std::string name, std::vector<ColumnSchema> columns)
      : name_(std::move(name)), columns_(std::move(columns)) {}

  const std::string& name() const { return name_; }
  const std::vector<ColumnSchema>& columns() const { return columns_; }
  size_t num_columns() const { return columns_.size(); }

  /// Index of `column` or nullopt.
  std::optional<size_t> FindColumn(const std::string& column) const;

  const ColumnSchema& column(size_t i) const { return columns_[i]; }

  bool operator==(const TableSchema&) const = default;

 private:
  std::string name_;
  std::vector<ColumnSchema> columns_;
};

/// \brief Equi-width histogram over a numeric column's value range.
struct Histogram {
  double lo = 0.0;
  double hi = 0.0;
  std::vector<double> bucket_counts;

  /// Fraction of values estimated to equal `v` assuming uniformity
  /// inside the containing bucket.
  double EqualitySelectivity(double v, double distinct_count) const;

  /// Fraction of values estimated to be < `v`.
  double LessThanSelectivity(double v) const;

  double total_count() const;
};

/// \brief Per-column statistics collected from loaded data.
struct ColumnStats {
  double distinct_count = 0.0;
  double min_value = 0.0;
  double max_value = 0.0;
  double null_fraction = 0.0;
  Histogram histogram;
};

/// \brief Per-table statistics (the numerical features of §IV-A).
struct TableStats {
  uint64_t row_count = 0;
  uint64_t byte_size = 0;
  std::vector<ColumnStats> columns;  // parallel to TableSchema::columns()
};

}  // namespace autoview
