#include "catalog/value.h"

#include <cmath>
#include <functional>

namespace autoview {

int Value::Compare(const Value& other) const {
  const bool a_str = is_string();
  const bool b_str = other.is_string();
  if (a_str != b_str) return a_str ? 1 : -1;
  if (a_str) {
    const auto& a = AsString();
    const auto& b = other.AsString();
    return a < b ? -1 : (a == b ? 0 : 1);
  }
  const double a = AsDouble();
  const double b = other.AsDouble();
  if (a < b) return -1;
  if (a > b) return 1;
  return 0;
}

std::string Value::ToString() const {
  switch (v_.index()) {
    case 0:
      return std::to_string(std::get<int64_t>(v_));
    case 1: {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%g", std::get<double>(v_));
      return buf;
    }
    default:
      return "'" + std::get<std::string>(v_) + "'";
  }
}

uint64_t Value::Hash() const {
  if (is_string()) {
    return std::hash<std::string>{}(AsString()) * 0x9e3779b97f4a7c15ULL;
  }
  // Hash by numeric value so 3 and 3.0 collide (they compare equal).
  const double d = AsDouble();
  if (d == std::floor(d) && std::fabs(d) < 9e15) {
    return std::hash<int64_t>{}(static_cast<int64_t>(d)) ^
           0xabcdef1234567890ULL;
  }
  return std::hash<double>{}(d) ^ 0xabcdef1234567890ULL;
}

size_t Value::ByteSize() const {
  return is_string() ? AsString().size() + sizeof(size_t) : 8;
}

}  // namespace autoview
