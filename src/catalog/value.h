#pragma once

#include <cstdint>
#include <string>
#include <variant>

#include "catalog/schema.h"

namespace autoview {

/// \brief A dynamically-typed scalar cell value.
///
/// Used for expression literals, row materialization and aggregation
/// state. Cheap int64/double paths; strings are owned.
class Value {
 public:
  Value() : v_(int64_t{0}) {}
  Value(int64_t v) : v_(v) {}
  Value(double v) : v_(v) {}
  Value(std::string v) : v_(std::move(v)) {}
  Value(const char* v) : v_(std::string(v)) {}

  ColumnType type() const {
    switch (v_.index()) {
      case 0:
        return ColumnType::kInt64;
      case 1:
        return ColumnType::kDouble;
      default:
        return ColumnType::kString;
    }
  }

  bool is_int() const { return v_.index() == 0; }
  bool is_double() const { return v_.index() == 1; }
  bool is_string() const { return v_.index() == 2; }

  int64_t AsInt() const { return std::get<int64_t>(v_); }
  double AsDouble() const {
    return is_int() ? static_cast<double>(std::get<int64_t>(v_))
                    : std::get<double>(v_);
  }
  const std::string& AsString() const { return std::get<std::string>(v_); }

  /// Numeric coercion: ints and doubles compare by value; strings
  /// lexicographically. Cross string/number comparison orders strings last.
  int Compare(const Value& other) const;

  bool operator==(const Value& other) const { return Compare(other) == 0; }
  bool operator<(const Value& other) const { return Compare(other) < 0; }

  /// SQL-literal rendering ('abc' for strings).
  std::string ToString() const;

  /// Stable 64-bit hash consistent with operator== (int 3 and double 3.0
  /// hash identically).
  uint64_t Hash() const;

  /// Approximate in-memory byte size (for view space overhead).
  size_t ByteSize() const;

 private:
  std::variant<int64_t, double, std::string> v_;
};

}  // namespace autoview
