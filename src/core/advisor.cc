#include "core/advisor.h"

#include <algorithm>
#include <future>
#include <utility>

#include "plan/builder.h"
#include "select/iterview.h"
#include "select/rlview.h"
#include "util/random.h"

namespace autoview {

OnlineAdvisor::OnlineAdvisor(Database* db, MaterializedViewStore* store,
                             OnlineAdvisorOptions options)
    : db_(db),
      store_(store),
      options_(std::move(options)),
      clock_(options_.clock ? options_.clock : DefaultClock()),
      executor_(db),
      estimator_(&db->catalog(), options_.pricing),
      cardinality_(&db->catalog()),
      session_(options_.cluster, [this](const PlanNode& plan) {
        return estimator_.EstimatePlanCost(plan);
      }) {}

Result<uint64_t> OnlineAdvisor::IngestSql(const std::string& sql) {
  const PlanBuilder builder(&db_->catalog());
  AV_ASSIGN_OR_RETURN(PlanNodePtr plan, builder.BuildFromSql(sql));
  MutexLock lock(mu_);
  const uint64_t query_id = next_query_id_++;
  AV_RETURN_NOT_OK(IngestPlanLocked(query_id, plan));
  return query_id;
}

Status OnlineAdvisor::IngestPlan(uint64_t query_id, const PlanNodePtr& plan) {
  MutexLock lock(mu_);
  AV_RETURN_NOT_OK(IngestPlanLocked(query_id, plan));
  if (query_id >= next_query_id_) next_query_id_ = query_id + 1;
  return Status::OK();
}

Status OnlineAdvisor::RetireQuery(uint64_t query_id) {
  MutexLock lock(mu_);
  return RetireQueryLocked(query_id);
}

Status OnlineAdvisor::ForceReselect() {
  MutexLock lock(mu_);
  return ReselectLocked();
}

OnlineAdvisorStats OnlineAdvisor::stats() const {
  MutexLock lock(mu_);
  OnlineAdvisorStats s;
  s.live_queries = row_ids_.size();
  s.candidate_views = views_.size();
  s.ingested = ingested_;
  s.retired = retired_;
  s.churn_events = session_.churn_events();
  s.reselections = reselections_;
  s.swaps_committed = swaps_committed_;
  s.views_materialized = views_materialized_;
  s.materialize_rejected = materialize_rejected_;
  s.incumbent_utility = incumbent_utility_;
  s.last_reselect_timed_out = last_reselect_timed_out_;
  return s;
}

std::vector<std::string> OnlineAdvisor::SelectedKeys() const {
  MutexLock lock(mu_);
  return std::vector<std::string>(incumbent_keys_.begin(),
                                  incumbent_keys_.end());
}

MvsProblemIndex OnlineAdvisor::CopyIndex() const {
  MutexLock lock(mu_);
  return index_;
}

Result<MvsProblem> OnlineAdvisor::DenseOracleProblem() const {
  MutexLock lock(mu_);
  const size_t nq = row_ids_.size();
  const size_t nz = views_.size();
  MvsProblem problem;
  problem.overhead.resize(nz);
  problem.frequency.resize(nz);
  problem.overlap.assign(nz, std::vector<bool>(nz, false));
  problem.benefit.assign(nq, std::vector<double>(nz, 0.0));
  for (size_t j = 0; j < nz; ++j) {
    const ViewState& view = views_[j];
    problem.overhead[j] = view.estimates.overhead;
    const std::optional<ClustererSession::CandidateInfo> info =
        session_.Candidate(view.key);
    if (!info.has_value()) {
      return Status::Internal("advisor view is not a session candidate: " +
                              view.key);
    }
    problem.frequency[j] = info->query_ids.size();
    for (uint64_t qid : info->query_ids) {
      const auto row_it =
          std::lower_bound(row_ids_.begin(), row_ids_.end(), qid);
      if (row_it == row_ids_.end() || *row_it != qid) {
        return Status::Internal("candidate references a non-live query");
      }
      const auto cost_it = query_cost_.find(qid);
      if (cost_it == query_cost_.end()) {
        return Status::Internal("missing cached query cost");
      }
      problem.benefit[row_it - row_ids_.begin()][j] =
          RealOptBenefitCell(cost_it->second, view.estimates);
    }
    for (size_t k = 0; k < j; ++k) {
      if (CanonicalPlansOverlap(*views_[k].plan, *view.plan)) {
        problem.overlap[j][k] = true;
        problem.overlap[k][j] = true;
      }
    }
  }
  AV_RETURN_NOT_OK(problem.Validate());
  return problem;
}

Status OnlineAdvisor::IngestPlanLocked(uint64_t query_id,
                                       const PlanNodePtr& plan) {
  if (plan == nullptr) {
    return Status::InvalidArgument("IngestPlan: null plan");
  }
  if (!row_ids_.empty() && query_id <= row_ids_.back()) {
    return Status::InvalidArgument(
        "IngestPlan: query ids must be strictly increasing (arrival order)");
  }
  ClustererSession::MutationEffects effects;
  AV_RETURN_NOT_OK(session_.IngestQuery(query_id, plan, &effects));
  query_cost_[query_id] = estimator_.EstimatePlanCost(*plan);

  // Columns whose candidate plan changed are rebuilt wholesale (the
  // estimates — and with them every cell — may change); removing them
  // before the row insert keeps the fresh row from carrying stale-plan
  // cells. Re-added below, after the row exists, so the rebuilt column
  // can reference it.
  for (const std::string& key : effects.candidates_replanned) {
    AV_RETURN_NOT_OK(RemoveViewLocked(key));
  }
  for (const std::string& key : effects.candidates_removed) {
    AV_RETURN_NOT_OK(RemoveViewLocked(key));
  }

  // The new row's cells over the surviving columns: distinct candidate
  // keys this query contains, mapped to ascending column indices.
  std::vector<MvsProblemIndex::Entry> entries;
  const std::vector<std::string>* keys = session_.QueryKeys(query_id);
  if (keys == nullptr) {
    return Status::Internal("freshly ingested query has no key record");
  }
  std::set<size_t> applicable;
  for (const std::string& key : *keys) {
    const auto it = view_of_key_.find(key);
    if (it != view_of_key_.end()) applicable.insert(it->second);
  }
  const double query_cost = query_cost_[query_id];
  for (size_t j : applicable) {
    const double benefit = RealOptBenefitCell(query_cost, views_[j].estimates);
    if (benefit != 0.0) {
      entries.push_back(MvsProblemIndex::Entry{j, benefit});
    }
  }
  AV_RETURN_NOT_OK(index_.InsertQueryRow(entries));
  row_ids_.push_back(query_id);

  for (const std::string& key : effects.candidates_replanned) {
    AV_RETURN_NOT_OK(AddViewLocked(key));
  }
  for (const std::string& key : effects.candidates_added) {
    AV_RETURN_NOT_OK(AddViewLocked(key));
  }

  ++ingested_;
  ++ingests_since_reselect_;

  if (options_.window_queries > 0) {
    while (row_ids_.size() > options_.window_queries) {
      AV_RETURN_NOT_OK(RetireQueryLocked(row_ids_.front()));
    }
  }
  return MaybeReselectLocked();
}

Status OnlineAdvisor::RetireQueryLocked(uint64_t query_id) {
  const auto it = std::lower_bound(row_ids_.begin(), row_ids_.end(), query_id);
  if (it == row_ids_.end() || *it != query_id) {
    return Status::NotFound("RetireQuery: query is not live");
  }
  ClustererSession::MutationEffects effects;
  AV_RETURN_NOT_OK(session_.RetireQuery(query_id, &effects));
  for (const std::string& key : effects.candidates_removed) {
    AV_RETURN_NOT_OK(RemoveViewLocked(key));
  }
  for (const std::string& key : effects.candidates_replanned) {
    AV_RETURN_NOT_OK(RemoveViewLocked(key));
  }
  AV_RETURN_NOT_OK(index_.RetireQueryRow(it - row_ids_.begin()));
  row_ids_.erase(it);
  query_cost_.erase(query_id);
  // Replanned columns come back only after the row is gone: their cells
  // must reference post-retire row positions.
  for (const std::string& key : effects.candidates_replanned) {
    AV_RETURN_NOT_OK(AddViewLocked(key));
  }
  ++retired_;
  return Status::OK();
}

Status OnlineAdvisor::AddViewLocked(const std::string& key) {
  if (view_of_key_.count(key) != 0) {
    return Status::AlreadyExists("AddView: column exists for " + key);
  }
  const std::optional<ClustererSession::CandidateInfo> info =
      session_.Candidate(key);
  if (!info.has_value()) {
    return Status::NotFound("AddView: not a current candidate: " + key);
  }
  ViewState view;
  view.key = key;
  view.plan = info->plan;
  view.estimates =
      EstimateView(estimator_, cardinality_, options_.pricing, *info->plan);

  // query_ids ascend and row_ids_ ascends, so the column comes out in
  // ascending row order as AddCandidateView requires.
  std::vector<MvsProblemIndex::Entry> column;
  for (uint64_t qid : info->query_ids) {
    const auto row_it = std::lower_bound(row_ids_.begin(), row_ids_.end(), qid);
    if (row_it == row_ids_.end() || *row_it != qid) {
      return Status::Internal("AddView: candidate references non-live query");
    }
    const auto cost_it = query_cost_.find(qid);
    if (cost_it == query_cost_.end()) {
      return Status::Internal("AddView: missing cached query cost");
    }
    const double benefit = RealOptBenefitCell(cost_it->second, view.estimates);
    if (benefit != 0.0) {
      column.push_back(MvsProblemIndex::Entry{
          static_cast<size_t>(row_it - row_ids_.begin()), benefit});
    }
  }
  std::vector<size_t> overlapping;
  for (size_t k = 0; k < views_.size(); ++k) {
    if (CanonicalPlansOverlap(*views_[k].plan, *view.plan)) {
      overlapping.push_back(k);
    }
  }
  AV_RETURN_NOT_OK(
      index_.AddCandidateView(view.estimates.overhead, column, overlapping));
  view_of_key_[key] = views_.size();
  views_.push_back(std::move(view));
  return Status::OK();
}

Status OnlineAdvisor::RemoveViewLocked(const std::string& key) {
  const auto it = view_of_key_.find(key);
  if (it == view_of_key_.end()) {
    return Status::NotFound("RemoveView: no column for " + key);
  }
  const size_t j = it->second;
  AV_RETURN_NOT_OK(index_.RetireCandidateView(j));
  views_.erase(views_.begin() + j);
  view_of_key_.erase(it);
  for (auto& entry : view_of_key_) {
    if (entry.second > j) --entry.second;
  }
  return Status::OK();
}

Status OnlineAdvisor::MaybeReselectLocked() {
  if (index_.num_views() == 0) return Status::OK();
  bool fire = false;
  switch (options_.trigger) {
    case ReselectTrigger::kQueryEpoch:
      fire = ingests_since_reselect_ >= options_.epoch_queries;
      break;
    case ReselectTrigger::kDriftScore:
      fire = session_.churn_events() - churn_at_reselect_ >=
             options_.drift_churn_threshold;
      break;
    case ReselectTrigger::kUtilityRegression:
      if (reselections_ == 0) {
        fire = ingests_since_reselect_ >= options_.epoch_queries;
      } else {
        fire = IncumbentUtilityLocked() <
               (1.0 - options_.utility_regression) * incumbent_utility_;
      }
      break;
  }
  return fire ? ReselectLocked() : Status::OK();
}

Status OnlineAdvisor::ReselectLocked() {
  const std::vector<bool> warm_z = WarmZLocked();
  const Deadline deadline =
      clock_->SelectionDeadline(options_.reselect_budget_ms);
  // Stream-per-reselection seeds: the first runs on the raw seed (one
  // re-selection behaves like one batch selection), later ones on
  // disjoint streams.
  const uint64_t seed = reselections_ == 0
                            ? options_.seed
                            : Rng::StreamSeed(options_.seed, reselections_);
  MvsSolution solution;
  if (options_.use_rlview) {
    RLViewSelector::Options ropts;
    ropts.init_iterations = options_.select_iterations;
    ropts.seed = seed;
    ropts.deadline = deadline;
    RLViewSelector selector(ropts);
    AV_ASSIGN_OR_RETURN(solution, selector.ReselectDelta(index_, warm_z));
  } else {
    IterViewSelector::Options iopts;
    iopts.iterations = options_.select_iterations;
    iopts.seed = seed;
    iopts.deadline = deadline;
    IterViewSelector selector(iopts);
    AV_ASSIGN_OR_RETURN(solution, selector.ReselectDelta(index_, warm_z));
  }
  ++reselections_;
  ingests_since_reselect_ = 0;
  churn_at_reselect_ = session_.churn_events();
  incumbent_utility_ = solution.utility;
  last_reselect_timed_out_ = solution.timed_out;
  incumbent_keys_.clear();

  // Hot swap: stage the winning set under a fresh generation, then
  // commit. Surviving keys are adopted (re-tagged) by the store, not
  // rebuilt; serving threads keep reading their pinned snapshots
  // throughout, so the swap never stalls a request.
  const uint64_t generation = store_->BeginSwap();
  std::vector<std::future<Status>> builds;
  for (size_t j = 0; j < solution.z.size(); ++j) {
    if (!solution.z[j]) continue;
    incumbent_keys_.insert(views_[j].key);
    MaterializeOptions mopts;
    mopts.utility = index_.ViewUtility(j);
    mopts.generation = generation;
    builds.push_back(
        store_->MaterializeAsync(views_[j].plan, executor_, mopts));
  }
  for (std::future<Status>& build : builds) {
    const Status status = build.get();
    if (status.ok()) {
      ++views_materialized_;
    } else if (status.code() == StatusCode::kResourceExhausted) {
      // Over budget: the view stays unmaterialized and queries fall
      // back to base tables — a serving-quality loss, not an error.
      ++materialize_rejected_;
    } else if (status.code() != StatusCode::kAlreadyExists) {
      return status;
    }
  }
  AV_RETURN_NOT_OK(store_->CommitSwap(generation));
  ++swaps_committed_;
  return Status::OK();
}

std::vector<bool> OnlineAdvisor::WarmZLocked() const {
  std::vector<bool> z(views_.size(), false);
  for (const std::string& key : incumbent_keys_) {
    const auto it = view_of_key_.find(key);
    if (it != view_of_key_.end()) z[it->second] = true;
  }
  return z;
}

double OnlineAdvisor::IncumbentUtilityLocked() const {
  const YOptSolver yopt(&index_);
  return yopt.UtilityOf(WarmZLocked());
}

}  // namespace autoview
