#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "core/streaming_problem.h"
#include "costmodel/traditional.h"
#include "engine/executor.h"
#include "engine/view_store.h"
#include "ilp/problem_index.h"
#include "subquery/clusterer.h"
#include "util/annotations.h"
#include "util/clock.h"
#include "util/status.h"

namespace autoview {

/// \brief When the advisor re-runs view selection (see OnlineAdvisor).
enum class ReselectTrigger {
  /// Every `epoch_queries` ingested queries.
  kQueryEpoch,
  /// When the candidate-set churn (ClustererSession::churn_events since
  /// the last re-selection) reaches `drift_churn_threshold`. Workload
  /// drift shows up as clusters crossing the sharing threshold or
  /// changing argmin member, so churn is a direct drift score.
  kDriftScore,
  /// When the incumbent view set's utility under the *current* index
  /// falls below (1 - utility_regression) of the utility it had when it
  /// was selected. Also fires the initial selection after
  /// `epoch_queries` ingests (there is no incumbent to regress before
  /// that).
  kUtilityRegression,
};

/// \brief Configuration of the OnlineAdvisor.
struct OnlineAdvisorOptions {
  SubqueryClusterer::Options cluster;
  Pricing pricing;
  uint64_t seed = 42;

  ReselectTrigger trigger = ReselectTrigger::kQueryEpoch;
  size_t epoch_queries = 64;           ///< kQueryEpoch period
  uint64_t drift_churn_threshold = 8;  ///< kDriftScore threshold
  double utility_regression = 0.25;    ///< kUtilityRegression fraction

  /// Sliding window: ingesting beyond this many live queries retires
  /// the oldest first, so state stays O(window). 0 = unbounded.
  size_t window_queries = 512;

  /// Iterations of the warm-started delta re-selection (and of the
  /// RLView warm start when `use_rlview` is set).
  size_t select_iterations = 40;
  /// Run RLView episodes on top of the IterView delta (RLView's
  /// defaults for episodes/memory/etc.); off = IterView only.
  bool use_rlview = false;
  /// Wall-clock budget per re-selection, served through `clock` so a
  /// ManualClock keeps replays deterministic. <= 0 = no deadline.
  double reselect_budget_ms = 0.0;

  /// Time source for deadlines; null = DefaultClock(). The advisor
  /// never reads ambient time directly (check_determinism.sh bans
  /// chrono in src/core/advisor.*), so injecting a ManualClock makes
  /// the whole ingest/trigger/re-selection path replayable.
  const Clock* clock = nullptr;
};

/// \brief Monotonic counters + current gauges of one advisor.
struct OnlineAdvisorStats {
  size_t live_queries = 0;      ///< rows in the live window
  size_t candidate_views = 0;   ///< columns (current candidates)
  uint64_t ingested = 0;        ///< queries ever ingested
  uint64_t retired = 0;         ///< queries ever retired (incl. window)
  uint64_t churn_events = 0;    ///< cumulative candidate-set churn
  uint64_t reselections = 0;    ///< re-selections run
  uint64_t swaps_committed = 0; ///< CommitSwap calls that succeeded
  uint64_t views_materialized = 0;  ///< successful (re)materializations
  uint64_t materialize_rejected = 0;  ///< budget-rejected admissions
  double incumbent_utility = 0.0;  ///< utility at the last re-selection
  bool last_reselect_timed_out = false;
};

/// \brief Long-running advisor service: streaming ingest, incremental
/// re-clustering/re-indexing, and deadline-bounded continuous
/// re-selection with hot swap.
///
/// The batch pipeline (cluster -> build matrix -> select -> materialize)
/// answers "given this workload, which views?" once; the advisor keeps
/// answering it as the workload drifts, without ever rebuilding from
/// scratch:
///
///  * **Subquery layer** — a ClustererSession ingests/retires one query
///    at a time; the batch Analyze() result remains the bit-identity
///    oracle for the live window.
///  * **Index layer** — the MvsProblemIndex grows/shrinks by row and
///    column mutations, each leaving it EXPECT_EQ-identical to an index
///    rebuilt from scratch over the mutated instance (the dense oracle
///    below); benefit cells use the same RealOpt arithmetic as the
///    batch builders.
///  * **Selection layer** — ReselectDelta warm-starts IterView (or
///    RLView) from the previous incumbent under a Clock-served
///    deadline; the result's utility is never below the incumbent's
///    own utility under the new index.
///  * **Engine layer** — a fired trigger stages the new selection under
///    MaterializedViewStore::BeginSwap(), (re)materializes each chosen
///    view (surviving keys are adopted, not rebuilt), and CommitSwap()
///    retires the old generation atomically while serving continues on
///    pinned snapshots.
///
/// Thread-safe: one mutex serializes ingest/retire/re-selection.
/// Serving threads never take it — they pin the store directly, so a
/// re-selection in progress cannot stall a request.
class OnlineAdvisor {
 public:
  /// `db` and `store` must outlive the advisor; selected views are
  /// materialized into `store` against `db`.
  OnlineAdvisor(Database* db, MaterializedViewStore* store,
                OnlineAdvisorOptions options);

  /// Parses `sql` and ingests it under the next arrival id (returned).
  /// May re-select and hot-swap the store before returning.
  Result<uint64_t> IngestSql(const std::string& sql) AV_EXCLUDES(mu_);

  /// Ingests an already-planned query. Ids must be strictly increasing
  /// across calls (arrival order); IngestSql assigns them automatically.
  Status IngestPlan(uint64_t query_id, const PlanNodePtr& plan)
      AV_EXCLUDES(mu_);

  /// Retires a live query (the sliding window calls this internally for
  /// the oldest query; explicit retirement is for ad-hoc lifecycles).
  Status RetireQuery(uint64_t query_id) AV_EXCLUDES(mu_);

  /// Runs re-selection + hot swap now, regardless of the trigger.
  Status ForceReselect() AV_EXCLUDES(mu_);

  OnlineAdvisorStats stats() const AV_EXCLUDES(mu_);

  /// Canonical keys of the views chosen by the last re-selection,
  /// ascending.
  std::vector<std::string> SelectedKeys() const AV_EXCLUDES(mu_);

  /// Copy of the incrementally maintained index (the mutation tests
  /// EXPECT_EQ this against an index rebuilt from DenseOracleProblem).
  MvsProblemIndex CopyIndex() const AV_EXCLUDES(mu_);

  /// The dense MVS instance of the current state, built from scratch in
  /// the advisor's own row/column order: rows are live queries
  /// ascending id, columns are candidate views in this advisor's
  /// insertion order, cells re-derived from the cached per-query costs
  /// and per-view estimates. MvsProblemIndex(DenseOracleProblem()) must
  /// equal CopyIndex() bit for bit after any mutation sequence.
  Result<MvsProblem> DenseOracleProblem() const AV_EXCLUDES(mu_);

 private:
  /// One candidate column the index knows about.
  struct ViewState {
    std::string key;
    PlanNodePtr plan;
    ViewEstimates estimates;
  };

  Status IngestPlanLocked(uint64_t query_id, const PlanNodePtr& plan)
      AV_REQUIRES(mu_);
  Status RetireQueryLocked(uint64_t query_id) AV_REQUIRES(mu_);

  /// Appends candidate `key` as the index's next column (estimates,
  /// benefit cells over the cluster's live queries, overlap partners).
  Status AddViewLocked(const std::string& key) AV_REQUIRES(mu_);

  /// Removes candidate `key`'s column; later views shift down one.
  Status RemoveViewLocked(const std::string& key) AV_REQUIRES(mu_);

  /// Runs the configured trigger policy; re-selects when it fires.
  Status MaybeReselectLocked() AV_REQUIRES(mu_);

  /// Warm-started re-selection + staged materialization + CommitSwap.
  Status ReselectLocked() AV_REQUIRES(mu_);

  /// The incumbent selection as a z vector over the current columns
  /// (keys that no longer exist are simply absent).
  std::vector<bool> WarmZLocked() const AV_REQUIRES(mu_);

  /// Utility of the incumbent under the current index (Y-Opt per query)
  /// — the kUtilityRegression signal.
  double IncumbentUtilityLocked() const AV_REQUIRES(mu_);

  Database* db_;
  MaterializedViewStore* store_;
  const OnlineAdvisorOptions options_;
  const Clock* clock_;
  Executor executor_;
  TraditionalEstimator estimator_;
  CardinalityEstimator cardinality_;

  mutable Mutex mu_;
  ClustererSession session_ AV_GUARDED_BY(mu_);
  MvsProblemIndex index_ AV_GUARDED_BY(mu_);
  /// Row i of index_ is query row_ids_[i]; ascending (arrival order).
  std::vector<uint64_t> row_ids_ AV_GUARDED_BY(mu_);
  /// Estimated cost A(q) of each live query, cached at ingest so later
  /// column additions re-derive cells bit-identically.
  std::map<uint64_t, double> query_cost_ AV_GUARDED_BY(mu_);
  /// Column j of index_ is views_[j]; view_of_key_ inverts it.
  std::vector<ViewState> views_ AV_GUARDED_BY(mu_);
  std::map<std::string, size_t> view_of_key_ AV_GUARDED_BY(mu_);

  /// Keys selected by the last re-selection (the warm start of the
  /// next) and their utility at selection time.
  std::set<std::string> incumbent_keys_ AV_GUARDED_BY(mu_);
  double incumbent_utility_ AV_GUARDED_BY(mu_) = 0.0;
  bool last_reselect_timed_out_ AV_GUARDED_BY(mu_) = false;

  uint64_t next_query_id_ AV_GUARDED_BY(mu_) = 0;
  size_t ingests_since_reselect_ AV_GUARDED_BY(mu_) = 0;
  uint64_t churn_at_reselect_ AV_GUARDED_BY(mu_) = 0;
  uint64_t ingested_ AV_GUARDED_BY(mu_) = 0;
  uint64_t retired_ AV_GUARDED_BY(mu_) = 0;
  uint64_t reselections_ AV_GUARDED_BY(mu_) = 0;
  uint64_t swaps_committed_ AV_GUARDED_BY(mu_) = 0;
  uint64_t views_materialized_ AV_GUARDED_BY(mu_) = 0;
  uint64_t materialize_rejected_ AV_GUARDED_BY(mu_) = 0;
};

}  // namespace autoview
