#include "core/autoview.h"

#include <algorithm>
#include <map>
#include <set>

#include "plan/builder.h"
#include "plan/canonical.h"
#include "util/logging.h"
#include "util/strings.h"

namespace autoview {

AutoViewSystem::AutoViewSystem(Database* db, AutoViewOptions options)
    : db_(db), options_(options), executor_(db, options.pricing.consts) {}

Status AutoViewSystem::LoadWorkload(const std::vector<std::string>& sql) {
  sql_.clear();
  queries_.clear();
  skipped_queries_ = 0;
  PlanBuilder builder(&db_->catalog());
  for (const auto& text : sql) {
    // A malformed or unsupported query degrades that query, not the
    // whole workload (and certainly not the process): it is skipped and
    // counted. sql_ stays parallel to queries_ for ExportMetadata.
    Result<PlanNodePtr> plan = builder.BuildFromSql(text);
    if (!plan.ok()) {
      ++skipped_queries_;
      AV_LOG(Warning) << "skipping workload query (" << plan.status().ToString()
                      << "): " << text;
      continue;
    }
    sql_.push_back(text);
    queries_.push_back(std::move(plan).value());
  }
  SubqueryClusterer clusterer(options_.cluster);
  analysis_ = clusterer.Analyze(queries_);
  ground_truth_ready_ = false;
  return Status::OK();
}

Status AutoViewSystem::BuildGroundTruth() {
  // 1. Execute every raw query once (the metadata database of Fig. 3
  // holds their actual costs in production).
  query_costs_.assign(queries_.size(), 0.0);
  query_reports_.assign(queries_.size(), CostReport{});
  for (size_t i = 0; i < queries_.size(); ++i) {
    AV_ASSIGN_OR_RETURN(CostReport report,
                        executor_.ExecuteForCost(*queries_[i]));
    query_reports_[i] = report;
    query_costs_[i] = options_.pricing.QueryCost(report);
  }

  // 2. Materialize every candidate to measure size and build cost. The
  // store is explicitly unlimited (not FromEnv): this phase *measures*
  // every candidate, so an operator byte budget must not evict any of
  // them mid-measurement.
  MaterializedViewStore store(db_, ViewStoreOptions{});
  candidates_.clear();
  std::vector<const MaterializedView*> views;
  for (size_t cand = 0; cand < analysis_.candidates.size(); ++cand) {
    const size_t cluster_index = analysis_.candidates[cand];
    const auto& cluster = analysis_.clusters[cluster_index];
    AV_ASSIGN_OR_RETURN(const MaterializedView* view,
                        store.Materialize(cluster.candidate, executor_));
    views.push_back(view);
    CandidateInfo info;
    info.cluster_index = cluster_index;
    info.plan = cluster.candidate;
    info.build_cost = view->build_cost;
    info.bytes = view->byte_size;
    info.overhead = options_.pricing.StorageFee(view->byte_size) +
                    options_.pricing.QueryCost(view->build_cost);
    AV_ASSIGN_OR_RETURN(PlanNodePtr scan_plan,
                        PlanNode::MakeScan(db_->catalog(), view->table_name));
    AV_ASSIGN_OR_RETURN(CostReport scan_report,
                        executor_.ExecuteForCost(*scan_plan));
    info.scan_cost = options_.pricing.QueryCost(scan_report);
    candidates_.push_back(std::move(info));
  }

  // 3. Benefits + the cost-model dataset over applicable pairs.
  const size_t nq = analysis_.associated_queries.size();
  const size_t nz = candidates_.size();
  problem_ = MvsProblem{};
  problem_.benefit.assign(nq, std::vector<double>(nz, 0.0));
  problem_.overhead.resize(nz);
  problem_.frequency.resize(nz);
  for (size_t j = 0; j < nz; ++j) {
    problem_.overhead[j] = candidates_[j].overhead;
    problem_.frequency[j] =
        analysis_.clusters[candidates_[j].cluster_index].query_indices.size();
  }
  problem_.overlap.assign(nz, std::vector<bool>(nz, false));
  for (size_t j = 0; j < analysis_.overlapping.size(); ++j) {
    for (size_t k : analysis_.overlapping[j]) {
      problem_.overlap[j][k] = problem_.overlap[k][j] = true;
    }
  }

  dataset_.clear();
  dataset_pairs_.clear();
  Rewriter rewriter(&db_->catalog());
  for (size_t row = 0; row < nq; ++row) {
    const size_t qi = analysis_.associated_queries[row];
    for (size_t j = 0; j < nz; ++j) {
      const auto& cluster = analysis_.clusters[candidates_[j].cluster_index];
      const bool applicable =
          std::binary_search(cluster.query_indices.begin(),
                             cluster.query_indices.end(), qi);
      if (!applicable) continue;

      const double subquery_cost =
          options_.pricing.QueryCost(candidates_[j].build_cost);
      double rewritten_cost;
      if (options_.exact_benefits) {
        bool changed = false;
        AV_ASSIGN_OR_RETURN(
            PlanNodePtr rewritten,
            rewriter.Rewrite(queries_[qi], *views[j], &changed));
        if (!changed) continue;  // equivalence matched but pattern hidden
        AV_ASSIGN_OR_RETURN(CostReport report,
                            executor_.ExecuteForCost(*rewritten));
        rewritten_cost = options_.pricing.QueryCost(report);
      } else {
        // RealOpt (§VI-B1), extended with the view-scan term: the paper
        // approximates A(q|v) ~= A(q) - A(s); at our scale the scan of
        // the materialized view is not negligible, so we add its actual
        // cost. This also keeps targets bounded away from zero (MAPE
        // denominators stay sane).
        rewritten_cost = std::max(0.0, query_costs_[qi] - subquery_cost) +
                         candidates_[j].scan_cost;
      }
      problem_.benefit[row][j] = query_costs_[qi] - rewritten_cost;

      CostSample sample;
      sample.query = queries_[qi];
      sample.view = candidates_[j].plan;
      std::set<std::string> tables;
      for (const auto& t : queries_[qi]->ScannedTables()) tables.insert(t);
      for (const auto& t : candidates_[j].plan->ScannedTables()) {
        tables.insert(t);
      }
      sample.tables.assign(tables.begin(), tables.end());
      sample.target = rewritten_cost;
      sample.query_cost = query_costs_[qi];
      sample.subquery_cost = subquery_cost;
      dataset_.push_back(std::move(sample));
      dataset_pairs_.push_back({row, j});
    }
  }

  AV_RETURN_NOT_OK(store.Clear());
  AV_RETURN_NOT_OK(problem_.Validate());
  ground_truth_ready_ = true;
  return Status::OK();
}

Status AutoViewSystem::EnsureGroundTruth() const {
  return ground_truth_ready_
             ? Status::OK()
             : Status::Internal("call BuildGroundTruth() first");
}

Result<MvsProblem> AutoViewSystem::EstimateProblem(
    const CostEstimator& estimator) const {
  AV_RETURN_NOT_OK(EnsureGroundTruth());
  MvsProblem estimated = problem_;
  for (auto& row : estimated.benefit) {
    std::fill(row.begin(), row.end(), 0.0);
  }
  // Batched so parallel estimators (Wide-Deep) fill the benefit matrix
  // across the pool; each dataset entry owns one (row, j) cell.
  const std::vector<double> predicted = estimator.EstimateBatch(dataset_);
  for (size_t n = 0; n < dataset_.size(); ++n) {
    const auto& [row, j] = dataset_pairs_[n];
    estimated.benefit[row][j] = dataset_[n].query_cost - predicted[n];
  }
  return estimated;
}

Status AutoViewSystem::ExportMetadata(const MetadataStore& store) const {
  AV_RETURN_NOT_OK(EnsureGroundTruth());
  std::vector<MetadataRecord> records;
  records.reserve(dataset_.size());
  for (size_t n = 0; n < dataset_.size(); ++n) {
    const auto& sample = dataset_[n];
    const auto& [row, j] = dataset_pairs_[n];
    const size_t qi = analysis_.associated_queries[row];
    MetadataRecord record;
    record.query_sql = sql_[qi];
    record.view_sql = CanonicalKey(*candidates_[j].plan);
    record.tables = Join(sample.tables, ",");
    record.rewritten_cost = sample.target;
    record.query_cost = sample.query_cost;
    record.subquery_cost = sample.subquery_cost;
    records.push_back(std::move(record));
  }
  return store.Write(records);
}

Result<std::vector<CostSample>> AutoViewSystem::ImportCostSamples(
    const MetadataStore& store) const {
  AV_ASSIGN_OR_RETURN(std::vector<MetadataRecord> records, store.Load());
  PlanBuilder builder(&db_->catalog());
  SubqueryExtractor extractor(options_.cluster.extractor);
  std::vector<CostSample> samples;
  for (const auto& record : records) {
    auto query = builder.BuildFromSql(record.query_sql);
    if (!query.ok()) continue;  // schema drift: skip stale records
    PlanNodePtr view;
    for (const auto& sub : extractor.Extract(query.value())) {
      if (CanonicalKey(*sub) == record.view_sql) {
        view = sub;
        break;
      }
    }
    if (!view) continue;
    CostSample sample;
    sample.query = query.value();
    sample.view = std::move(view);
    sample.tables = Split(record.tables, ',');
    sample.target = record.rewritten_cost;
    sample.query_cost = record.query_cost;
    sample.subquery_cost = record.subquery_cost;
    samples.push_back(std::move(sample));
  }
  return samples;
}

Result<EndToEndReport> AutoViewSystem::ExecuteSolution(
    const MvsSolution& solution) {
  AV_RETURN_NOT_OK(EnsureGroundTruth());
  const size_t nz = candidates_.size();
  if (solution.z.size() != nz ||
      solution.y.size() != analysis_.associated_queries.size()) {
    return Status::InvalidArgument("solution shape mismatch");
  }

  EndToEndReport report;
  report.num_queries = queries_.size();
  for (size_t i = 0; i < queries_.size(); ++i) {
    report.raw_cost += query_costs_[i];
    report.raw_latency_min +=
        query_reports_[i].CpuMinutes(options_.pricing.consts);
  }
  report.rewritten_latency_min = report.raw_latency_min;

  // Materialize exactly the selected views. The store honours the
  // operator budget (AUTOVIEW_VIEW_BUDGET_BYTES via FromEnv); each view
  // carries its solver utility so eviction, if the budget forces any,
  // drops the weakest utility-per-byte views first. A view rejected by
  // the budget degrades to base-table execution for its queries instead
  // of failing the run.
  MaterializedViewStore store(db_);
  std::vector<int64_t> view_ids(nz, -1);
  for (size_t j = 0; j < nz; ++j) {
    if (!solution.z[j]) continue;
    MaterializeOptions mopts;
    mopts.utility = problem_.MaxBenefit(j) - problem_.overhead[j];
    Result<const MaterializedView*> view =
        store.Materialize(candidates_[j].plan, executor_, mopts);
    if (!view.ok()) {
      if (view.status().code() == StatusCode::kResourceExhausted) continue;
      return view.status();
    }
    view_ids[j] = view.value()->id;
    ++report.num_views;
    report.view_overhead += candidates_[j].overhead;
  }

  // Rewrite + execute each associated query against a pinned snapshot:
  // pinned views cannot be physically dropped mid-serve, and views the
  // budget evicted simply do not appear (their queries run on base
  // tables).
  ViewSetSnapshot snapshot = store.PinLive();
  std::map<int64_t, const MaterializedView*> live;
  for (const MaterializedView* view : snapshot.views()) live[view->id] = view;
  Rewriter rewriter(&db_->catalog());
  for (size_t row = 0; row < solution.y.size(); ++row) {
    std::vector<const MaterializedView*> assigned;
    for (size_t j = 0; j < nz; ++j) {
      if (!solution.y[row][j] || view_ids[j] < 0) continue;
      if (auto it = live.find(view_ids[j]); it != live.end()) {
        assigned.push_back(it->second);
      }
    }
    if (assigned.empty()) continue;
    const size_t qi = analysis_.associated_queries[row];
    size_t substitutions = 0;
    AV_ASSIGN_OR_RETURN(
        PlanNodePtr rewritten,
        rewriter.RewriteAll(queries_[qi], assigned, &substitutions));
    if (substitutions == 0) continue;
    AV_ASSIGN_OR_RETURN(CostReport cost, executor_.ExecuteForCost(*rewritten));
    ++report.num_rewritten;
    const double rewritten_cost = options_.pricing.QueryCost(cost);
    report.benefit += query_costs_[qi] - rewritten_cost;
    report.rewritten_latency_min +=
        cost.CpuMinutes(options_.pricing.consts) -
        query_reports_[qi].CpuMinutes(options_.pricing.consts);
  }

  snapshot.Release();
  AV_RETURN_NOT_OK(store.Clear());
  return report;
}

}  // namespace autoview
