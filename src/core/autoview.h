#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/metadata.h"
#include "costmodel/estimator.h"
#include "engine/executor.h"
#include "engine/rewriter.h"
#include "engine/view_store.h"
#include "ilp/problem.h"
#include "subquery/clusterer.h"
#include "util/status.h"

namespace autoview {

/// \brief Configuration of the end-to-end system (Fig. 3).
struct AutoViewOptions {
  Pricing pricing;
  SubqueryClusterer::Options cluster;
  /// true: compute exact benefits by executing every applicable
  /// rewritten (query, view) pair (the paper's JOB protocol). false:
  /// the RealOpt approximation — A(q|v) ~= A(q) - A(s) — used for the
  /// large WK workloads.
  bool exact_benefits = true;
  uint64_t seed = 42;
};

/// \brief Per-candidate ground-truth metadata gathered by the system.
struct CandidateInfo {
  size_t cluster_index = 0;  ///< into WorkloadAnalysis::clusters
  PlanNodePtr plan;
  CostReport build_cost;     ///< actual A(s) report
  uint64_t bytes = 0;        ///< u_sto of the materialized result
  double overhead = 0.0;     ///< O_v = alpha*bytes + A(s) in $
  double scan_cost = 0.0;    ///< actual A(scan v) in $
};

/// \brief Table V row: actual end-to-end outcome of one solution.
struct EndToEndReport {
  size_t num_queries = 0;        ///< #q: workload size
  double raw_cost = 0.0;         ///< c_q: total cost of raw queries ($)
  double raw_latency_min = 0.0;  ///< l_q: total CPU-minutes, raw
  size_t num_views = 0;          ///< #m: materialized views
  double view_overhead = 0.0;    ///< o_m: total overhead ($)
  size_t num_rewritten = 0;      ///< #(q|v): queries using >= 1 view
  double benefit = 0.0;          ///< b_(q|v): total actual benefit ($)
  double rewritten_latency_min = 0.0;  ///< l_q of the rewritten workload
  /// r_c = (benefit - overhead) / raw cost, the headline metric.
  double ratio() const {
    return raw_cost > 0 ? (benefit - view_overhead) / raw_cost : 0.0;
  }
};

/// \brief The end-to-end automatic view generation system of Fig. 3:
/// pre-process -> cost/utility estimation -> view selection -> rewrite
/// -> execute.
///
/// Typical flow:
///   AutoViewSystem system(&db, options);
///   system.LoadWorkload(sql);            // parse + extract + cluster
///   system.BuildGroundTruth();           // execute, measure, benefits
///   auto problem = system.problem();     // hand to a ViewSelector
///   auto report = system.ExecuteSolution(solution);
class AutoViewSystem {
 public:
  /// `db` must outlive the system; views are installed into it while
  /// measuring and during ExecuteSolution.
  AutoViewSystem(Database* db, AutoViewOptions options);

  /// Parses the workload and runs the pre-process stage (subquery
  /// extraction, equivalence clustering, candidate + overlap discovery).
  /// Queries that fail to parse or plan are skipped (and counted in
  /// skipped_queries()) rather than failing the whole workload.
  Status LoadWorkload(const std::vector<std::string>& sql);

  /// Number of workload queries dropped by the last LoadWorkload()
  /// because they failed to parse or plan.
  size_t skipped_queries() const { return skipped_queries_; }

  const std::vector<PlanNodePtr>& queries() const { return queries_; }
  const WorkloadAnalysis& analysis() const { return analysis_; }

  /// Executes all queries and candidate subqueries, materializes each
  /// candidate to measure its size, and fills the ground-truth
  /// MvsProblem (benefits use the mode from options.exact_benefits).
  Status BuildGroundTruth();

  /// The ground-truth selection instance. Rows index
  /// analysis().associated_queries.
  const MvsProblem& problem() const { return problem_; }
  const std::vector<CandidateInfo>& candidates() const { return candidates_; }
  /// Actual cost A(q) of every workload query ($), indexed like
  /// queries().
  const std::vector<double>& query_costs() const { return query_costs_; }

  /// The cost-model training/evaluation dataset: one CostSample per
  /// applicable (associated query, candidate) pair with actual targets.
  const std::vector<CostSample>& cost_dataset() const { return dataset_; }

  /// Parallel to cost_dataset(): the (associated-query row, candidate
  /// index) pair of each sample.
  const std::vector<std::pair<size_t, size_t>>& cost_dataset_pairs() const {
    return dataset_pairs_;
  }

  /// Builds an MvsProblem whose benefits come from `estimator` instead
  /// of ground truth — the online-recommendation path of Fig. 3 that
  /// Table V evaluates end to end.
  Result<MvsProblem> EstimateProblem(const CostEstimator& estimator) const;

  /// Materializes the solution's views, rewrites every associated query
  /// with its assigned views, executes the full rewritten workload, and
  /// reports actual costs. Views are dropped afterwards.
  Result<EndToEndReport> ExecuteSolution(const MvsSolution& solution);

  /// Persists the cost dataset to the metadata database of Fig. 3
  /// (query SQL + view canonical key + actual costs), so offline
  /// training can run in a separate process/session.
  Status ExportMetadata(const MetadataStore& store) const;

  /// Rebuilds CostSamples from a metadata store against this system's
  /// loaded workload: queries are re-parsed from their SQL and views
  /// matched among the query's subqueries by canonical key. Records
  /// that no longer match the workload are skipped.
  Result<std::vector<CostSample>> ImportCostSamples(
      const MetadataStore& store) const;

  const Pricing& pricing() const { return options_.pricing; }

 private:
  Status EnsureGroundTruth() const;

  Database* db_;
  AutoViewOptions options_;
  Executor executor_;
  std::vector<std::string> sql_;
  std::vector<PlanNodePtr> queries_;
  size_t skipped_queries_ = 0;
  WorkloadAnalysis analysis_;
  std::vector<CandidateInfo> candidates_;
  std::vector<double> query_costs_;
  std::vector<CostReport> query_reports_;
  MvsProblem problem_;
  std::vector<CostSample> dataset_;
  std::vector<std::pair<size_t, size_t>> dataset_pairs_;
  bool ground_truth_ready_ = false;
};

}  // namespace autoview
