#include "core/metadata.h"

#include <cstdio>
#include <memory>

#include "util/strings.h"

namespace autoview {

namespace {

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

constexpr char kSep = '\t';

}  // namespace

Status MetadataStore::WriteInternal(const std::vector<MetadataRecord>& records,
                                    const char* mode) const {
  FilePtr f(std::fopen(path_.c_str(), mode));
  if (!f) return Status::Internal("cannot open metadata store: " + path_);
  for (const auto& r : records) {
    for (const std::string* field : {&r.query_sql, &r.view_sql, &r.tables}) {
      if (field->find(kSep) != std::string::npos ||
          field->find('\n') != std::string::npos) {
        return Status::InvalidArgument(
            "metadata field contains tab/newline: " + *field);
      }
    }
    std::fprintf(f.get(), "%s\t%s\t%s\t%.17g\t%.17g\t%.17g\n",
                 r.query_sql.c_str(), r.view_sql.c_str(), r.tables.c_str(),
                 r.rewritten_cost, r.query_cost, r.subquery_cost);
  }
  return Status::OK();
}

Status MetadataStore::Append(const std::vector<MetadataRecord>& records) const {
  return WriteInternal(records, "ab");
}

Status MetadataStore::Write(const std::vector<MetadataRecord>& records) const {
  return WriteInternal(records, "wb");
}

Result<std::vector<MetadataRecord>> MetadataStore::Load() const {
  FilePtr f(std::fopen(path_.c_str(), "rb"));
  if (!f) return Status::NotFound("no metadata store at: " + path_);
  std::vector<MetadataRecord> records;
  std::string line;
  int c;
  while ((c = std::fgetc(f.get())) != EOF) {
    if (c != '\n') {
      line.push_back(static_cast<char>(c));
      continue;
    }
    if (line.empty()) continue;
    std::vector<std::string> fields = Split(line, kSep);
    line.clear();
    if (fields.size() != 6) {
      return Status::ParseError("malformed metadata record");
    }
    MetadataRecord r;
    r.query_sql = fields[0];
    r.view_sql = fields[1];
    r.tables = fields[2];
    r.rewritten_cost = std::atof(fields[3].c_str());
    r.query_cost = std::atof(fields[4].c_str());
    r.subquery_cost = std::atof(fields[5].c_str());
    records.push_back(std::move(r));
  }
  return records;
}

}  // namespace autoview
