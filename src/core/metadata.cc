#include "core/metadata.h"

#include <cstdio>
#include <cstdlib>
#include <memory>

#include "util/failpoint.h"
#include "util/strings.h"

namespace autoview {

namespace {

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

constexpr char kSep = '\t';

/// Strict double parse: the whole field must be numeric. atof() would
/// silently turn a corrupt field into 0.0 and poison training targets.
Status ParseDouble(const std::string& field, double* out) {
  char* end = nullptr;
  *out = std::strtod(field.c_str(), &end);
  if (end == field.c_str() || *end != '\0') {
    return Status::ParseError("non-numeric metadata field: " + field);
  }
  return Status::OK();
}

}  // namespace

Status MetadataStore::WriteInternal(const std::vector<MetadataRecord>& records,
                                    const char* mode,
                                    const std::string& path) const {
  // avcheck:allow(blocking-under-lock): io_mu_'s entire job is to
  // serialize this file I/O — the store is write-through with no
  // in-memory state, so the I/O *is* the critical section.
  FilePtr f(std::fopen(path.c_str(), mode));
  if (!f) return Status::Internal("cannot open metadata store: " + path);
  for (const auto& r : records) {
    for (const std::string* field : {&r.query_sql, &r.view_sql, &r.tables}) {
      if (field->find(kSep) != std::string::npos ||
          field->find('\n') != std::string::npos) {
        return Status::InvalidArgument(
            "metadata field contains tab/newline: " + *field);
      }
    }
    // avcheck:allow(blocking-under-lock): serialized write-through —
    // see the rationale on the fopen above.
    std::fprintf(f.get(), "%s\t%s\t%s\t%.17g\t%.17g\t%.17g\n",
                 r.query_sql.c_str(), r.view_sql.c_str(), r.tables.c_str(),
                 r.rewritten_cost, r.query_cost, r.subquery_cost);
  }
  if (std::ferror(f.get())) {
    return Status::Internal("write error: " + path);
  }
  return Status::OK();
}

Status MetadataStore::Append(const std::vector<MetadataRecord>& records) const {
  MutexLock lock(io_mu_);
  // avcheck:allow(blocking-under-lock): io_mu_ exists to serialize the
  // store's file I/O; there is no in-memory state to protect instead.
  return WriteInternal(records, "ab", path_);
}

Status MetadataStore::Write(const std::vector<MetadataRecord>& records) const {
  MutexLock lock(io_mu_);
  // Crash-safe replace: a full rewrite goes to a temp file and is
  // renamed into place, so readers never observe a half-written store.
  const std::string tmp = path_ + ".tmp";
  // avcheck:allow(blocking-under-lock): the write-temp / rename-into-
  // place sequence must be serialized end to end under io_mu_, or two
  // writers could interleave their temp files.
  const Status status = WriteInternal(records, "wb", tmp);
  if (!status.ok()) {
    // avcheck:allow(blocking-under-lock): cleanup of the serialized
    // replace sequence above — same critical section by design.
    std::remove(tmp.c_str());
    return status;
  }
  // avcheck:allow(blocking-under-lock): the atomic-replace rename is
  // the commit point of the serialized rewrite.
  if (std::rename(tmp.c_str(), path_.c_str()) != 0) {
    // avcheck:allow(blocking-under-lock): cleanup of the serialized
    // replace sequence above — same critical section by design.
    std::remove(tmp.c_str());
    return Status::Internal("cannot rename into place: " + path_);
  }
  return Status::OK();
}

Result<std::vector<MetadataRecord>> MetadataStore::Load() const {
  if (AV_FAILPOINT("metadata.load") == FailAction::kCorrupt) {
    return Status::ParseError("failpoint injected corruption at " + path_);
  }
  // Serialized against Append/Write so a reader can never observe the
  // torn tail of an in-progress same-process append.
  MutexLock lock(io_mu_);
  // avcheck:allow(blocking-under-lock): reads take the same I/O mutex
  // so they never observe the torn tail of an in-progress append.
  FilePtr f(std::fopen(path_.c_str(), "rb"));
  if (!f) return Status::NotFound("no metadata store at: " + path_);
  std::vector<MetadataRecord> records;
  std::string line;
  int c;
  while ((c = std::fgetc(f.get())) != EOF) {
    if (c != '\n') {
      line.push_back(static_cast<char>(c));
      continue;
    }
    if (line.empty()) continue;
    std::vector<std::string> fields = Split(line, kSep);
    line.clear();
    if (fields.size() != 6) {
      return Status::ParseError("malformed metadata record");
    }
    MetadataRecord r;
    r.query_sql = fields[0];
    r.view_sql = fields[1];
    r.tables = fields[2];
    AV_RETURN_NOT_OK(ParseDouble(fields[3], &r.rewritten_cost));
    AV_RETURN_NOT_OK(ParseDouble(fields[4], &r.query_cost));
    AV_RETURN_NOT_OK(ParseDouble(fields[5], &r.subquery_cost));
    records.push_back(std::move(r));
  }
  // A final line without trailing '\n' is a torn append: report it
  // rather than silently dropping or half-parsing it.
  if (!line.empty()) {
    return Status::ParseError("metadata store ends mid-record (torn write)");
  }
  return records;
}

}  // namespace autoview
