#pragma once

#include <string>
#include <vector>

#include "util/annotations.h"
#include "util/status.h"

namespace autoview {

/// \brief One record of the metadata database (Fig. 3): the offline
/// training data for the cost model, keyed by SQL text so plans can be
/// re-built against the live catalog on load.
struct MetadataRecord {
  std::string query_sql;
  std::string view_sql;          ///< the candidate subquery, as SQL
  std::string tables;            ///< comma-joined associated table names
  double rewritten_cost = 0.0;   ///< A(q|v) — the training target
  double query_cost = 0.0;       ///< A(q)
  double subquery_cost = 0.0;    ///< A(s)
};

/// \brief File-backed metadata store standing in for the paper's
/// metadata database. Records are stored as a tab-separated text file
/// (SQL contains no tabs/newlines in this fragment).
///
/// Thread-safe: all file I/O on one store object is serialized by an
/// internal mutex, so training loops appending from pool workers cannot
/// interleave partial records (distinct MetadataStore objects aimed at
/// the same path still race — share the object instead).
class MetadataStore {
 public:
  explicit MetadataStore(std::string path) : path_(std::move(path)) {}

  /// Appends records to the store file (creating it if needed).
  /// Appends are in-place (not atomic); a crash mid-append leaves a torn
  /// final record, which Load() reports as ParseError.
  Status Append(const std::vector<MetadataRecord>& records) const
      AV_EXCLUDES(io_mu_);

  /// Replaces the store file with `records`, atomically: the new
  /// content is written to `<path>.tmp` and renamed into place.
  Status Write(const std::vector<MetadataRecord>& records) const
      AV_EXCLUDES(io_mu_);

  /// Loads every record. Corrupt stores (wrong field count, non-numeric
  /// cost fields, torn trailing record) yield ParseError instead of
  /// silently produced zero-cost records.
  Result<std::vector<MetadataRecord>> Load() const AV_EXCLUDES(io_mu_);

  const std::string& path() const { return path_; }

 private:
  Status WriteInternal(const std::vector<MetadataRecord>& records,
                       const char* mode, const std::string& path) const
      AV_REQUIRES(io_mu_);

  // Serializes every open/write/read of the file behind path_, which is
  // the real shared state this class guards (the members are const).
  mutable Mutex io_mu_;
  std::string path_;
};

}  // namespace autoview
