#include "core/streaming_problem.h"

#include <algorithm>
#include <cstdint>

#include "costmodel/traditional.h"
#include "util/thread_pool.h"

namespace autoview {

ViewEstimates EstimateView(const TraditionalEstimator& estimator,
                           const CardinalityEstimator& cardinality,
                           const Pricing& pricing, const PlanNode& plan) {
  ViewEstimates est;
  est.subquery_cost = estimator.EstimatePlanCost(plan);
  est.scan_cost = estimator.EstimateViewScanCost(plan);
  const double bytes = cardinality.EstimateBytes(plan);
  est.overhead =
      pricing.StorageFee(static_cast<uint64_t>(bytes)) + est.subquery_cost;
  return est;
}

double RealOptBenefitCell(double query_cost, const ViewEstimates& view) {
  const double rewritten =
      std::max(0.0, query_cost - view.subquery_cost) + view.scan_cost;
  return query_cost - rewritten;
}

namespace {

struct ViewSide {
  std::vector<ViewEstimates> estimates;
  std::vector<double> overhead;
  std::vector<size_t> frequency;
  std::vector<std::vector<uint32_t>> adjacency;
  std::vector<PlanNodePtr> plans;
  /// applicable[row] = ascending candidate ids usable by that row's
  /// query (inverted from the clusters' query_indices).
  std::vector<std::vector<uint32_t>> applicable;
};

/// Shared head of both builders: per-view estimates, adjacency from the
/// analysis overlap table, and the row -> applicable-views inversion.
ViewSide BuildViewSide(const Catalog& catalog,
                       const WorkloadAnalysis& analysis,
                       const StreamingProblemOptions& options) {
  ViewSide side;
  const size_t nz = analysis.candidates.size();
  const TraditionalEstimator estimator(&catalog, options.pricing);
  const CardinalityEstimator cardinality(&catalog);

  side.estimates.resize(nz);
  side.overhead.resize(nz);
  side.frequency.resize(nz);
  side.plans.reserve(nz);
  for (size_t j = 0; j < nz; ++j) {
    const SubqueryCluster& cluster =
        analysis.clusters[analysis.candidates[j]];
    side.plans.push_back(cluster.candidate);
    side.estimates[j] = EstimateView(estimator, cardinality, options.pricing,
                                     *cluster.candidate);
    side.overhead[j] = side.estimates[j].overhead;
    side.frequency[j] = cluster.query_indices.size();
  }

  side.adjacency.resize(nz);
  for (size_t j = 0; j < analysis.overlapping.size(); ++j) {
    for (size_t k : analysis.overlapping[j]) {
      side.adjacency[j].push_back(static_cast<uint32_t>(k));
      side.adjacency[k].push_back(static_cast<uint32_t>(j));
    }
  }
  for (auto& adj : side.adjacency) std::sort(adj.begin(), adj.end());

  const auto& assoc = analysis.associated_queries;
  side.applicable.resize(assoc.size());
  // Inverted from the clusters instead of probing every (row, view)
  // pair: O(applicable pairs x log |Q|). Ascending j outer loop keeps
  // each row's view list ascending; every member query of a candidate
  // cluster is associated by definition, so the lookup always hits.
  for (size_t j = 0; j < nz; ++j) {
    const SubqueryCluster& cluster =
        analysis.clusters[analysis.candidates[j]];
    for (size_t qi : cluster.query_indices) {
      const auto it = std::lower_bound(assoc.begin(), assoc.end(), qi);
      if (it != assoc.end() && *it == qi) {
        side.applicable[it - assoc.begin()].push_back(
            static_cast<uint32_t>(j));
      }
    }
  }
  return side;
}

}  // namespace

Result<StreamingProblem> BuildStreamingProblem(
    const Catalog& catalog, const WorkloadAnalysis& analysis,
    const SubqueryClusterer::QueryFn& query_fn,
    const StreamingProblemOptions& options) {
  StreamingProblem result;
  result.associated_queries = analysis.associated_queries;

  ViewSide side = BuildViewSide(catalog, analysis, options);
  result.candidate_plans = side.plans;

  ShardedProblemBuilder builder(options.shard_budget_bytes);
  builder.SetViews(std::move(side.overhead), std::move(side.adjacency),
                   std::move(side.frequency));

  const TraditionalEstimator estimator(&catalog, options.pricing);
  ThreadPool& pool = options.pool ? *options.pool : DefaultPool();
  const size_t nq = result.associated_queries.size();
  const size_t chunk = std::max<size_t>(1, options.chunk);

  // Chunked row estimation: each task owns one row buffer (plans are
  // transient — query_fn's plan dies with the task); rows append to the
  // builder sequentially in ascending order, the layout the compact
  // index constructor requires.
  std::vector<std::vector<CompressedRowStore::Entry>> rows;
  for (size_t base = 0; base < nq; base += chunk) {
    const size_t end = std::min(nq, base + chunk);
    rows.assign(end - base, {});
    pool.ParallelFor(base, end, [&](size_t row) {
      PlanNodePtr plan = query_fn(result.associated_queries[row]);
      if (plan == nullptr) return;
      const double query_cost = estimator.EstimatePlanCost(*plan);
      for (uint32_t j : side.applicable[row]) {
        const double benefit =
            RealOptBenefitCell(query_cost, side.estimates[j]);
        if (benefit != 0.0) {
          rows[row - base].push_back(CompressedRowStore::Entry{j, benefit});
        }
      }
    });
    for (size_t row = base; row < end; ++row) {
      builder.AddRow(rows[row - base]);
    }
  }

  AV_ASSIGN_OR_RETURN(result.compact, std::move(builder).Finalize());
  return result;
}

Result<MvsProblem> BuildDenseProblem(
    const Catalog& catalog, const WorkloadAnalysis& analysis,
    const SubqueryClusterer::QueryFn& query_fn,
    const StreamingProblemOptions& options) {
  ViewSide side = BuildViewSide(catalog, analysis, options);
  const size_t nz = side.overhead.size();
  const size_t nq = analysis.associated_queries.size();

  MvsProblem problem;
  problem.overhead = std::move(side.overhead);
  problem.frequency = std::move(side.frequency);
  problem.overlap.assign(nz, std::vector<bool>(nz, false));
  for (size_t j = 0; j < nz; ++j) {
    for (uint32_t k : side.adjacency[j]) problem.overlap[j][k] = true;
  }
  problem.benefit.assign(nq, std::vector<double>(nz, 0.0));

  const TraditionalEstimator estimator(&catalog, options.pricing);
  ThreadPool& pool = options.pool ? *options.pool : DefaultPool();
  pool.ParallelFor(0, nq, [&](size_t row) {
    PlanNodePtr plan = query_fn(analysis.associated_queries[row]);
    if (plan == nullptr) return;
    const double query_cost = estimator.EstimatePlanCost(*plan);
    for (uint32_t j : side.applicable[row]) {
      problem.benefit[row][j] =
          RealOptBenefitCell(query_cost, side.estimates[j]);
    }
  });

  AV_RETURN_NOT_OK(problem.Validate());
  return problem;
}

}  // namespace autoview
