#pragma once

#include <cstddef>
#include <vector>

#include "catalog/catalog.h"
#include "engine/cost.h"
#include "ilp/compact_problem.h"
#include "ilp/problem.h"
#include "subquery/clusterer.h"
#include "util/status.h"

namespace autoview {

class CardinalityEstimator;
class ThreadPool;
class TraditionalEstimator;

/// \brief Per-view estimated cost terms (the counterpart of
/// CandidateInfo in the execution-based path), shared by the batch
/// problem builders and the OnlineAdvisor's per-view re-pricing.
struct ViewEstimates {
  double overhead = 0.0;       ///< storage fee + estimated build cost
  double subquery_cost = 0.0;  ///< A(s), the estimated candidate cost
  double scan_cost = 0.0;      ///< A(scan v)
};

/// Prices one candidate plan from catalog statistics — the per-view
/// head of the batch builders, exposed so the online advisor can price
/// candidates one at a time with the identical arithmetic (the dense
/// oracle comparisons need the doubles bit-exact).
ViewEstimates EstimateView(const TraditionalEstimator& estimator,
                           const CardinalityEstimator& cardinality,
                           const Pricing& pricing, const PlanNode& plan);

/// The RealOpt benefit cell B = A(q) - (max(0, A(q) - A(s)) + A(scan v)),
/// matching the `exact_benefits == false` branch of BuildGroundTruth
/// with estimated terms substituted for measured ones.
double RealOptBenefitCell(double query_cost, const ViewEstimates& view);

/// \brief Options for the streaming benefit-matrix construction.
struct StreamingProblemOptions {
  Pricing pricing;
  /// Queries whose plans are in flight at once while estimating benefit
  /// rows; peak transient memory is O(chunk), not O(|Q|).
  size_t chunk = 1024;
  /// Byte budget per compressed-CSR shard (see CompressedRowStore).
  size_t shard_budget_bytes = 1 << 20;
  /// Executor for the per-chunk estimation; null => DefaultPool().
  ThreadPool* pool = nullptr;
};

/// \brief A paper-scale MVS instance built without ever materializing
/// the dense |Q| x |Z| matrix, plus the plan-level context a serving
/// pipeline needs afterwards.
struct StreamingProblem {
  CompactMvsProblem compact;
  /// Row i of `compact` describes workload query
  /// `associated_queries[i]` (same row universe as the dense
  /// AutoViewSystem path: queries that can use >= 1 candidate).
  std::vector<size_t> associated_queries;
  /// View j's candidate subquery plan (for materialization / rewrite).
  std::vector<PlanNodePtr> candidate_plans;
};

/// Builds the MVS instance for `analysis` with estimated costs — the
/// paper's RealOpt approximation A(q|v) ~= max(0, A(q) - A(s)) +
/// A(scan v) with every term served by the TraditionalEstimator from
/// catalog statistics, so nothing is executed (execution-based ground
/// truth at 157.6k queries is off the table; the small-scale dense path
/// in AutoViewSystem remains the oracle for that).
///
/// Streaming shape: per-view arrays are O(|Z|); query rows are estimated
/// chunk-by-chunk (plans transient, each task owns its row slot) and
/// appended to the ShardedProblemBuilder in ascending row order, exactly
/// the layout MvsProblemIndex's compact constructor expects. The dense
/// equivalent of the same instance is what BuildDenseProblem returns —
/// the scale tests assert the two produce EXPECT_EQ-identical indexes.
///
/// `query_fn` must be re-invocable and thread-safe for distinct indices
/// (the same contract as SubqueryClusterer::AnalyzeStreaming).
Result<StreamingProblem> BuildStreamingProblem(
    const Catalog& catalog, const WorkloadAnalysis& analysis,
    const SubqueryClusterer::QueryFn& query_fn,
    const StreamingProblemOptions& options);

/// Dense oracle of BuildStreamingProblem: identical per-cell arithmetic,
/// materialized as a plain MvsProblem. Only for verification sizes.
Result<MvsProblem> BuildDenseProblem(const Catalog& catalog,
                                     const WorkloadAnalysis& analysis,
                                     const SubqueryClusterer::QueryFn& query_fn,
                                     const StreamingProblemOptions& options);

}  // namespace autoview
