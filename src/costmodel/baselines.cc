#include "costmodel/baselines.h"

#include <cmath>

#include "util/logging.h"

namespace autoview {

using nn::Tensor;

namespace {

/// Offset guarding log() against zero-cost targets.
constexpr double kLogEps = 1e-12;

/// Solves (A + l2*I) x = b by Gaussian elimination with partial
/// pivoting. A is symmetric positive semi-definite (X^T X).
std::vector<double> SolveRidge(std::vector<std::vector<double>> a,
                               std::vector<double> b, double l2) {
  const size_t n = b.size();
  for (size_t i = 0; i < n; ++i) a[i][i] += l2;
  for (size_t col = 0; col < n; ++col) {
    size_t pivot = col;
    for (size_t r = col + 1; r < n; ++r) {
      if (std::fabs(a[r][col]) > std::fabs(a[pivot][col])) pivot = r;
    }
    std::swap(a[col], a[pivot]);
    std::swap(b[col], b[pivot]);
    const double diag = a[col][col];
    if (std::fabs(diag) < 1e-12) continue;
    for (size_t r = 0; r < n; ++r) {
      if (r == col) continue;
      const double factor = a[r][col] / diag;
      if (factor == 0.0) continue;
      for (size_t c = col; c < n; ++c) a[r][c] -= factor * a[col][c];
      b[r] -= factor * b[col];
    }
  }
  std::vector<double> x(n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    x[i] = std::fabs(a[i][i]) < 1e-12 ? 0.0 : b[i] / a[i][i];
  }
  return x;
}

}  // namespace

Status LinearRegressorEstimator::Train(const std::vector<CostSample>& samples) {
  if (samples.empty()) return Status::InvalidArgument("empty training set");
  std::vector<std::vector<double>> rows;
  rows.reserve(samples.size());
  for (const auto& sample : samples) {
    rows.push_back(extractor_.Extract(sample).numeric);
  }
  normalizer_.Fit(rows);
  const size_t dim = rows[0].size() + 1;  // + intercept
  std::vector<std::vector<double>> xtx(dim, std::vector<double>(dim, 0.0));
  std::vector<double> xty(dim, 0.0);
  for (size_t i = 0; i < samples.size(); ++i) {
    std::vector<double> x = normalizer_.Apply(rows[i]);
    x.push_back(1.0);
    for (size_t r = 0; r < dim; ++r) {
      xty[r] += x[r] * samples[i].target;
      for (size_t c = 0; c < dim; ++c) xtx[r][c] += x[r] * x[c];
    }
  }
  weights_ = SolveRidge(std::move(xtx), std::move(xty), l2_);
  return Status::OK();
}

double LinearRegressorEstimator::Estimate(const CostSample& sample) const {
  if (weights_.empty()) return 0.0;
  std::vector<double> x =
      normalizer_.Apply(extractor_.Extract(sample).numeric);
  x.push_back(1.0);
  double y = 0.0;
  for (size_t j = 0; j < x.size() && j < weights_.size(); ++j) {
    y += x[j] * weights_[j];
  }
  return std::max(0.0, y);  // costs are non-negative
}

/// Plan encoder + numeric MLP regressor for single-plan costs.
struct DeepLearnEstimator::Network {
  Network(size_t vocab_size, size_t numeric_dim, const KeywordVocab* vocab,
          const Options& opts, Rng* rng)
      : keyword_embedding(vocab_size, opts.embed_dim, rng),
        string_encoder(opts.embed_dim, rng),
        plan_encoder(&keyword_embedding, &string_encoder, vocab,
                     opts.plan_hidden, rng),
        head({numeric_dim + opts.plan_hidden, opts.mlp_hidden, 1}, rng) {}

  std::vector<Tensor> Parameters() const {
    std::vector<Tensor> params = keyword_embedding.Parameters();
    auto append = [&params](const std::vector<Tensor>& more) {
      params.insert(params.end(), more.begin(), more.end());
    };
    append(string_encoder.Parameters());
    append(plan_encoder.Parameters());
    append(head.Parameters());
    return params;
  }

  nn::Embedding keyword_embedding;
  StringEncoder string_encoder;
  PlanEncoder plan_encoder;
  nn::Mlp head;
};

DeepLearnEstimator::DeepLearnEstimator(const Catalog* catalog, Pricing pricing,
                                       Options options)
    : catalog_(catalog),
      options_(options),
      extractor_(catalog),
      traditional_(catalog, pricing) {}

DeepLearnEstimator::~DeepLearnEstimator() = default;

Tensor DeepLearnEstimator::Forward(const Features& features) const {
  std::vector<double> norm = normalizer_.Apply(features.numeric);
  Tensor dc =
      Tensor::FromData(std::vector<nn::Scalar>(norm.begin(), norm.end()), 1,
                       norm.size());
  Tensor de = net_->plan_encoder.Forward(features.query_plan);
  return net_->head.Forward(nn::ConcatCols({dc, de}));
}

Status DeepLearnEstimator::Train(const std::vector<CostSample>& samples) {
  if (samples.empty()) return Status::InvalidArgument("empty training set");

  // Harvest single-plan training pairs (plan, actual cost) from the
  // metadata: each CostSample yields (q, A(q)) and (s, A(s)).
  struct PlanSample {
    Features features;
    double target;
  };
  std::vector<PlanSample> plan_samples;
  for (const auto& sample : samples) {
    CostSample q_only = sample;
    q_only.view = sample.query;  // view field unused by this model
    Features fq = extractor_.Extract(q_only);
    plan_samples.push_back({fq, sample.query_cost});
    CostSample s_only = sample;
    s_only.query = sample.view;
    s_only.view = sample.view;
    Features fs = extractor_.Extract(s_only);
    plan_samples.push_back({fs, sample.subquery_cost});
  }

  std::vector<std::vector<double>> numeric_rows;
  for (const auto& ps : plan_samples) {
    numeric_rows.push_back(ps.features.numeric);
    vocab_.AddAll(ps.features);
  }
  normalizer_.Fit(numeric_rows);

  // Log-space targets, as in the learned estimator this baseline
  // follows [36] (costs span orders of magnitude).
  auto to_log = [](double v) { return std::log(v + kLogEps); };
  double mean = 0.0;
  for (const auto& ps : plan_samples) mean += to_log(ps.target);
  mean /= static_cast<double>(plan_samples.size());
  double var = 0.0;
  for (const auto& ps : plan_samples) {
    var += (to_log(ps.target) - mean) * (to_log(ps.target) - mean);
  }
  var /= static_cast<double>(plan_samples.size());
  target_mean_ = mean;
  target_std_ = var > 1e-20 ? std::sqrt(var) : 1.0;

  Rng rng(options_.seed);
  net_ = std::make_unique<Network>(vocab_.size(),
                                   FeatureExtractor::NumNumericFeatures(),
                                   &vocab_, options_, &rng);
  nn::Adam::Options adam_opts;
  adam_opts.lr = options_.learning_rate;
  nn::Adam adam(net_->Parameters(), adam_opts);

  std::vector<size_t> order(plan_samples.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  for (size_t epoch = 0; epoch < options_.epochs; ++epoch) {
    rng.Shuffle(&order);
    for (size_t start = 0; start < order.size();
         start += options_.batch_size) {
      const size_t end = std::min(order.size(), start + options_.batch_size);
      adam.ZeroGrad();
      std::vector<Tensor> preds, targets;
      for (size_t i = start; i < end; ++i) {
        const auto& ps = plan_samples[order[i]];
        preds.push_back(Forward(ps.features));
        targets.push_back(Tensor::Full(
            1, 1, (std::log(ps.target + kLogEps) - target_mean_) /
                      target_std_));
      }
      nn::MseLoss(nn::ConcatRows(preds), nn::ConcatRows(targets)).Backward();
      adam.Step();
    }
  }
  return Status::OK();
}

double DeepLearnEstimator::PredictPlanCost(
    const PlanNode& plan, const std::vector<std::string>& tables) const {
  CostSample sample;
  sample.query = PlanNodePtr(PlanNodePtr(), &plan);  // non-owning alias
  sample.view = sample.query;
  sample.tables = tables;
  Features features = extractor_.Extract(sample);
  Tensor pred = Forward(features);
  return std::max(
      0.0, std::exp(pred.item() * target_std_ + target_mean_) - kLogEps);
}

double DeepLearnEstimator::Estimate(const CostSample& sample) const {
  if (!net_) return 0.0;
  const double q = PredictPlanCost(*sample.query, sample.tables);
  const double s = PredictPlanCost(*sample.view, sample.tables);
  const double v = traditional_.EstimateViewScanCost(*sample.view);
  return std::max(0.0, q - s + v);
}

}  // namespace autoview
