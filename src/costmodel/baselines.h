#pragma once

#include <memory>

#include "costmodel/encoders.h"
#include "costmodel/estimator.h"
#include "costmodel/traditional.h"
#include "nn/optimizer.h"

namespace autoview {

/// \brief The `LR` baseline of Table III: a linear model over the
/// numeric features, fit in closed form (ridge regression).
class LinearRegressorEstimator : public CostEstimator {
 public:
  explicit LinearRegressorEstimator(const Catalog* catalog,
                                    double l2 = 1e-6)
      : extractor_(catalog), l2_(l2) {}

  Status Train(const std::vector<CostSample>& samples) override;
  double Estimate(const CostSample& sample) const override;
  std::string name() const override { return "LR"; }

 private:
  FeatureExtractor extractor_;
  Normalizer normalizer_;
  double l2_;
  std::vector<double> weights_;  // last entry = intercept
};

/// \brief The `DeepLearn` baseline: a learned *single-plan* cost model
/// in the spirit of [36] (plan-sequence LSTM + numeric features -> MLP),
/// combined as A(q|v) = f(q) - f(s) + Est(scan v), where the view-scan
/// term uses the statistics-based estimate (scanning is cheap and
/// stats-friendly). The error accumulation across the three terms is
/// what Table III penalizes this baseline for.
class DeepLearnEstimator : public CostEstimator {
 public:
  struct Options {
    size_t embed_dim = 16;
    size_t plan_hidden = 32;
    size_t mlp_hidden = 32;
    size_t epochs = 30;
    size_t batch_size = 16;
    double learning_rate = 5e-3;
    uint64_t seed = 17;
  };

  DeepLearnEstimator(const Catalog* catalog, Pricing pricing)
      : DeepLearnEstimator(catalog, pricing, Options{}) {}
  DeepLearnEstimator(const Catalog* catalog, Pricing pricing,
                     Options options);
  ~DeepLearnEstimator() override;

  Status Train(const std::vector<CostSample>& samples) override;
  double Estimate(const CostSample& sample) const override;
  std::string name() const override { return "DeepLearn"; }

 private:
  struct Network;

  /// Predicted single-plan cost in $.
  double PredictPlanCost(const PlanNode& plan,
                         const std::vector<std::string>& tables) const;

  nn::Tensor Forward(const Features& features) const;

  const Catalog* catalog_;
  Options options_;
  FeatureExtractor extractor_;
  TraditionalEstimator traditional_;
  KeywordVocab vocab_;
  Normalizer normalizer_;
  double target_mean_ = 0.0;
  double target_std_ = 1.0;
  std::unique_ptr<Network> net_;
};

}  // namespace autoview
