#include "costmodel/encoders.h"

namespace autoview {

using nn::Tensor;

StringEncoder::StringEncoder(size_t dim, Rng* rng, bool use_cnn,
                             bool trainable_chars)
    : dim_(dim),
      use_cnn_(use_cnn),
      char_embedding_(128, dim, rng, trainable_chars),
      conv1_(rng),
      conv2_(rng) {}

Tensor StringEncoder::Forward(const std::string& text) const {
  if (text.empty()) return Tensor::Zeros(1, dim_);
  std::vector<size_t> ids;
  ids.reserve(text.size());
  for (char c : text) {
    ids.push_back(static_cast<size_t>(static_cast<unsigned char>(c)) % 128);
  }
  Tensor chars = char_embedding_.Forward(ids);  // len x dim
  if (use_cnn_) {
    chars = conv2_.Forward(conv1_.Forward(chars));
  }
  return MeanRows(chars);
}

std::vector<Tensor> StringEncoder::Parameters() const {
  std::vector<Tensor> params = char_embedding_.Parameters();
  if (use_cnn_) {
    for (const auto& p : conv1_.Parameters()) params.push_back(p);
    for (const auto& p : conv2_.Parameters()) params.push_back(p);
  }
  return params;
}

PlanEncoder::PlanEncoder(const nn::Embedding* keyword_embedding,
                         const StringEncoder* string_encoder,
                         const KeywordVocab* vocab, size_t hidden, Rng* rng,
                         bool use_sequence)
    : keyword_embedding_(keyword_embedding),
      string_encoder_(string_encoder),
      vocab_(vocab),
      use_sequence_(use_sequence),
      lstm1_(keyword_embedding->dim(), keyword_embedding->dim(), rng),
      lstm2_(keyword_embedding->dim(), hidden, rng) {}

size_t PlanEncoder::output_dim() const {
  return use_sequence_ ? lstm2_.hidden_size() : keyword_embedding_->dim();
}

Tensor PlanEncoder::EncodeToken(const std::string& token) const {
  if (KeywordVocab::IsStringLiteral(token)) {
    // Strip quotes before char encoding.
    return string_encoder_->Forward(token.substr(1, token.size() - 2));
  }
  return keyword_embedding_->Forward({vocab_->Lookup(token)});
}

Tensor PlanEncoder::Forward(
    const std::vector<std::vector<std::string>>& plan_tokens) const {
  std::vector<Tensor> op_vectors;
  op_vectors.reserve(plan_tokens.size());
  for (const auto& op_tokens : plan_tokens) {
    std::vector<Tensor> token_vectors;
    token_vectors.reserve(op_tokens.size());
    for (const auto& token : op_tokens) {
      token_vectors.push_back(EncodeToken(token));
    }
    if (token_vectors.empty()) {
      token_vectors.push_back(Tensor::Zeros(1, keyword_embedding_->dim()));
    }
    Tensor stacked = ConcatRows(token_vectors);  // n_tokens x dim
    op_vectors.push_back(use_sequence_ ? lstm1_.Forward(stacked)
                                       : MeanRows(stacked));
  }
  if (op_vectors.empty()) return Tensor::Zeros(1, output_dim());
  Tensor ops = ConcatRows(op_vectors);  // n_ops x dim
  return use_sequence_ ? lstm2_.Forward(ops) : MeanRows(ops);
}

std::vector<Tensor> PlanEncoder::Parameters() const {
  if (!use_sequence_) return {};
  std::vector<Tensor> params = lstm1_.Parameters();
  for (const auto& p : lstm2_.Parameters()) params.push_back(p);
  return params;
}

Tensor SchemaEncoder::Forward(const std::vector<std::string>& keywords) const {
  if (keywords.empty()) {
    return Tensor::Zeros(1, keyword_embedding_->dim());
  }
  std::vector<size_t> ids;
  ids.reserve(keywords.size());
  for (const auto& kw : keywords) ids.push_back(vocab_->Lookup(kw));
  return MeanRows(keyword_embedding_->Forward(ids));
}

}  // namespace autoview
