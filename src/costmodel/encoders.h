#pragma once

#include <memory>
#include <string>
#include <vector>

#include "costmodel/features.h"
#include "nn/modules.h"

namespace autoview {

/// \brief String Encoding model (Fig. 6): char embedding -> two Conv
/// blocks (Conv 3x1 -> BatchNorm -> ReLU) -> average pooling.
///
/// In the N-Str ablation the char embedding is frozen and the CNN is
/// skipped (plain average pooling of char vectors).
class StringEncoder : public nn::Module {
 public:
  StringEncoder(size_t dim, Rng* rng, bool use_cnn = true,
                bool trainable_chars = true);

  /// Encodes one string into a 1 x dim vector.
  nn::Tensor Forward(const std::string& text) const;

  std::vector<nn::Tensor> Parameters() const override;

  size_t dim() const { return dim_; }

 private:
  size_t dim_;
  bool use_cnn_;
  nn::Embedding char_embedding_;  // 128 one-byte chars
  nn::ConvBlock conv1_;
  nn::ConvBlock conv2_;
};

/// \brief Query/View Plan encoding (Fig. 7a): tokens -> keyword
/// embedding or string encoding -> LSTM1 per operator -> LSTM2 over the
/// operator sequence.
///
/// In the N-Exp ablation both LSTMs are replaced by average pooling.
class PlanEncoder : public nn::Module {
 public:
  /// `keyword_embedding` and `string_encoder` are shared with the rest
  /// of the model (the paper shares the keyword matrix).
  PlanEncoder(const nn::Embedding* keyword_embedding,
              const StringEncoder* string_encoder, const KeywordVocab* vocab,
              size_t hidden, Rng* rng, bool use_sequence = true);

  /// Encodes one plan token sequence into 1 x output_dim().
  nn::Tensor Forward(
      const std::vector<std::vector<std::string>>& plan_tokens) const;

  size_t output_dim() const;

  std::vector<nn::Tensor> Parameters() const override;

 private:
  nn::Tensor EncodeToken(const std::string& token) const;

  const nn::Embedding* keyword_embedding_;
  const StringEncoder* string_encoder_;
  const KeywordVocab* vocab_;
  bool use_sequence_;
  nn::Lstm lstm1_;
  nn::Lstm lstm2_;
};

/// \brief Table-schema encoding (Fig. 7b): keyword embeddings averaged.
class SchemaEncoder : public nn::Module {
 public:
  SchemaEncoder(const nn::Embedding* keyword_embedding,
                const KeywordVocab* vocab)
      : keyword_embedding_(keyword_embedding), vocab_(vocab) {}

  /// Encodes the keyword set into 1 x dim.
  nn::Tensor Forward(const std::vector<std::string>& keywords) const;

  std::vector<nn::Tensor> Parameters() const override { return {}; }

 private:
  const nn::Embedding* keyword_embedding_;
  const KeywordVocab* vocab_;
};

}  // namespace autoview
