#include "costmodel/estimator.h"

#include "util/metrics.h"
#include "util/thread_pool.h"

namespace autoview {

std::vector<double> CostEstimator::EstimateBatch(
    const std::vector<CostSample>& samples, ThreadPool* /*pool*/) const {
  std::vector<double> out;
  out.reserve(samples.size());
  for (const auto& sample : samples) out.push_back(Estimate(sample));
  return out;
}

EstimatorMetrics EvaluateEstimator(const CostEstimator& estimator,
                                   const std::vector<CostSample>& samples) {
  std::vector<double> y;
  y.reserve(samples.size());
  for (const auto& sample : samples) y.push_back(sample.target);
  const std::vector<double> yhat = estimator.EstimateBatch(samples);
  EstimatorMetrics metrics;
  metrics.mae = MeanAbsoluteError(y, yhat);
  metrics.mape = MeanAbsolutePercentError(y, yhat);
  return metrics;
}

}  // namespace autoview
