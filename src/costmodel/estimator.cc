#include "costmodel/estimator.h"

#include "util/metrics.h"

namespace autoview {

EstimatorMetrics EvaluateEstimator(const CostEstimator& estimator,
                                   const std::vector<CostSample>& samples) {
  std::vector<double> y, yhat;
  y.reserve(samples.size());
  yhat.reserve(samples.size());
  for (const auto& sample : samples) {
    y.push_back(sample.target);
    yhat.push_back(estimator.Estimate(sample));
  }
  EstimatorMetrics metrics;
  metrics.mae = MeanAbsoluteError(y, yhat);
  metrics.mape = MeanAbsolutePercentError(y, yhat);
  return metrics;
}

}  // namespace autoview
