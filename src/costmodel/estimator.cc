#include "costmodel/estimator.h"

#include "nn/tensor.h"
#include "util/metrics.h"
#include "util/thread_pool.h"

namespace autoview {

std::vector<double> CostEstimator::EstimateBatch(
    const std::vector<CostSample>& samples, ThreadPool* /*pool*/) const {
  // Batch estimation is pure inference for every estimator: run the
  // whole loop in no-grad mode so NN-backed Estimate() implementations
  // skip autograd bookkeeping (values are bit-identical either way).
  nn::NoGradGuard no_grad;
  std::vector<double> out;
  out.reserve(samples.size());
  for (const auto& sample : samples) out.push_back(Estimate(sample));
  return out;
}

EstimatorMetrics EvaluateEstimator(const CostEstimator& estimator,
                                   const std::vector<CostSample>& samples) {
  std::vector<double> y;
  y.reserve(samples.size());
  for (const auto& sample : samples) y.push_back(sample.target);
  const std::vector<double> yhat = estimator.EstimateBatch(samples);
  EstimatorMetrics metrics;
  metrics.mae = MeanAbsoluteError(y, yhat);
  metrics.mape = MeanAbsolutePercentError(y, yhat);
  return metrics;
}

}  // namespace autoview
