#pragma once

#include <string>
#include <vector>

#include "costmodel/features.h"
#include "util/status.h"

namespace autoview {

class ThreadPool;

/// \brief Common interface of all cost-estimation models compared in
/// Table III: given (query, view, tables), predict A(q|v).
class CostEstimator {
 public:
  virtual ~CostEstimator() = default;

  /// Fits the model on training samples (targets populated).
  virtual Status Train(const std::vector<CostSample>& samples) = 0;

  /// Predicts the cost of the rewritten query, in the same $ unit as
  /// CostSample::target.
  virtual double Estimate(const CostSample& sample) const = 0;

  /// Predicts every sample; out[i] corresponds to samples[i]. The base
  /// implementation is a sequential loop; estimators whose Estimate()
  /// is pure (notably Wide-Deep) override it to chunk samples across
  /// `pool` (DefaultPool() when null). Overrides must stay bit-identical
  /// to the sequential loop for any thread count.
  virtual std::vector<double> EstimateBatch(
      const std::vector<CostSample>& samples,
      ThreadPool* pool = nullptr) const;

  /// Display name used in benchmark tables ("W-D", "LR", ...).
  virtual std::string name() const = 0;
};

/// \brief MAE / MAPE evaluation of an estimator over a sample set.
struct EstimatorMetrics {
  double mae = 0.0;
  double mape = 0.0;
};
EstimatorMetrics EvaluateEstimator(const CostEstimator& estimator,
                                   const std::vector<CostSample>& samples);

}  // namespace autoview
