#include "costmodel/fallback.h"

#include <cmath>

#include "util/logging.h"
#include "util/metrics.h"

namespace autoview {

Status FallbackEstimator::Train(const std::vector<CostSample>& samples) {
  AV_RETURN_NOT_OK(fallback_->Train(samples));
  const Status primary = primary_->Train(samples);
  if (!primary.ok()) {
    MarkDegraded("training failed: " + primary.ToString());
  } else {
    degraded_ = false;
    degraded_reason_.clear();
  }
  return Status::OK();
}

void FallbackEstimator::MarkDegraded(const std::string& reason) {
  degraded_ = true;
  degraded_reason_ = reason;
  AV_LOG(Warning) << name() << " degraded to " << fallback_->name() << ": "
                  << reason;
}

double FallbackEstimator::FallbackFor(const CostSample& sample) const {
  fallback_calls_.fetch_add(1, std::memory_order_relaxed);
  GlobalRobustness().RecordFallback();
  return fallback_->Estimate(sample);
}

double FallbackEstimator::Estimate(const CostSample& sample) const {
  if (degraded_) return FallbackFor(sample);
  const double predicted = primary_->Estimate(sample);
  if (!std::isfinite(predicted)) return FallbackFor(sample);
  return predicted;
}

std::vector<double> FallbackEstimator::EstimateBatch(
    const std::vector<CostSample>& samples, ThreadPool* pool) const {
  if (degraded_) {
    std::vector<double> out;
    out.reserve(samples.size());
    for (const auto& sample : samples) out.push_back(FallbackFor(sample));
    return out;
  }
  std::vector<double> out = primary_->EstimateBatch(samples, pool);
  for (size_t i = 0; i < out.size(); ++i) {
    if (!std::isfinite(out[i])) out[i] = FallbackFor(samples[i]);
  }
  return out;
}

std::string FallbackEstimator::name() const {
  return primary_->name() + "+" + fallback_->name();
}

}  // namespace autoview
