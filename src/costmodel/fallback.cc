#include "costmodel/fallback.h"

#include <cmath>

#include "util/logging.h"
#include "util/metrics.h"

namespace autoview {

Status FallbackEstimator::Train(const std::vector<CostSample>& samples) {
  AV_RETURN_NOT_OK(fallback_->Train(samples));
  const Status primary = primary_->Train(samples);
  if (!primary.ok()) {
    MarkDegraded("training failed: " + primary.ToString());
  } else {
    ClearDegraded();
  }
  return Status::OK();
}

void FallbackEstimator::MarkDegraded(const std::string& reason) {
  {
    MutexLock lock(mu_);
    degraded_reason_ = reason;
  }
  // Reason published before the flag so a reader that sees the flag and
  // asks why never reads an empty string.
  degraded_.store(true, std::memory_order_release);
  AV_LOG(Warning) << name() << " degraded to " << fallback_->name() << ": "
                  << reason;
}

void FallbackEstimator::ClearDegraded() {
  degraded_.store(false, std::memory_order_relaxed);
  MutexLock lock(mu_);
  degraded_reason_.clear();
}

std::string FallbackEstimator::degraded_reason() const {
  MutexLock lock(mu_);
  return degraded_reason_;
}

double FallbackEstimator::FallbackFor(const CostSample& sample) const {
  fallback_calls_.fetch_add(1, std::memory_order_relaxed);
  GlobalRobustness().RecordFallback();
  return fallback_->Estimate(sample);
}

double FallbackEstimator::Estimate(const CostSample& sample) const {
  if (degraded()) return FallbackFor(sample);
  const double predicted = primary_->Estimate(sample);
  if (!std::isfinite(predicted)) return FallbackFor(sample);
  return predicted;
}

std::vector<double> FallbackEstimator::EstimateBatch(
    const std::vector<CostSample>& samples, ThreadPool* pool) const {
  if (degraded()) {
    std::vector<double> out;
    out.reserve(samples.size());
    for (const auto& sample : samples) out.push_back(FallbackFor(sample));
    return out;
  }
  std::vector<double> out = primary_->EstimateBatch(samples, pool);
  for (size_t i = 0; i < out.size(); ++i) {
    if (!std::isfinite(out[i])) out[i] = FallbackFor(samples[i]);
  }
  return out;
}

std::string FallbackEstimator::name() const {
  return primary_->name() + "+" + fallback_->name();
}

}  // namespace autoview
