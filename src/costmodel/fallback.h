#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "costmodel/estimator.h"

namespace autoview {

/// \brief Graceful degradation for learned cost models.
///
/// Wraps a primary estimator (typically Wide-Deep) and a fallback
/// (typically the traditional statistics-based Optimizer, which cannot
/// produce NaN and needs no trained weights). Per call, a primary
/// prediction that is NaN/Inf is replaced by the fallback's prediction;
/// when the primary is unusable altogether (training failed, model file
/// corrupt/missing), the wrapper runs permanently degraded on the
/// fallback. Every substituted call is counted locally and in
/// GlobalRobustness().estimator_fallbacks, so a degraded run is visible
/// to operators instead of silently producing garbage benefits.
class FallbackEstimator : public CostEstimator {
 public:
  /// Both estimators must outlive the wrapper.
  FallbackEstimator(CostEstimator* primary, CostEstimator* fallback)
      : primary_(primary), fallback_(fallback) {}

  /// Trains the fallback first (it must always be usable), then the
  /// primary; a primary training failure degrades the wrapper instead
  /// of propagating, a fallback failure propagates.
  Status Train(const std::vector<CostSample>& samples) override;

  double Estimate(const CostSample& sample) const override;

  /// Batched path: primary batch prediction (parallel for estimators
  /// that support it), then non-finite entries are patched one by one
  /// from the fallback. Bit-identical for any thread count.
  std::vector<double> EstimateBatch(const std::vector<CostSample>& samples,
                                    ThreadPool* pool = nullptr) const override;

  std::string name() const override;

  /// Marks the primary unusable (e.g. after a failed model load); all
  /// subsequent calls go straight to the fallback.
  void MarkDegraded(const std::string& reason);

  /// True when every call is served by the fallback.
  bool degraded() const { return degraded_; }
  /// Reason for degradation; empty when not degraded.
  const std::string& degraded_reason() const { return degraded_reason_; }

  /// Calls answered by the fallback (degraded calls included).
  uint64_t fallback_calls() const {
    return fallback_calls_.load(std::memory_order_relaxed);
  }

 private:
  double FallbackFor(const CostSample& sample) const;

  CostEstimator* primary_;
  CostEstimator* fallback_;
  bool degraded_ = false;
  std::string degraded_reason_;
  mutable std::atomic<uint64_t> fallback_calls_{0};
};

}  // namespace autoview
