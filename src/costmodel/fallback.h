#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "costmodel/estimator.h"
#include "util/annotations.h"

namespace autoview {

/// \brief Graceful degradation for learned cost models.
///
/// Wraps a primary estimator (typically Wide-Deep) and a fallback
/// (typically the traditional statistics-based Optimizer, which cannot
/// produce NaN and needs no trained weights). Per call, a primary
/// prediction that is NaN/Inf is replaced by the fallback's prediction;
/// when the primary is unusable altogether (training failed, model file
/// corrupt/missing), the wrapper runs permanently degraded on the
/// fallback. Every substituted call is counted locally and in
/// GlobalRobustness().estimator_fallbacks, so a degraded run is visible
/// to operators instead of silently producing garbage benefits.
class FallbackEstimator : public CostEstimator {
 public:
  /// Both estimators must outlive the wrapper.
  FallbackEstimator(CostEstimator* primary, CostEstimator* fallback)
      : primary_(primary), fallback_(fallback) {}

  /// Trains the fallback first (it must always be usable), then the
  /// primary; a primary training failure degrades the wrapper instead
  /// of propagating, a fallback failure propagates.
  Status Train(const std::vector<CostSample>& samples) override;

  double Estimate(const CostSample& sample) const override;

  /// Batched path: primary batch prediction (parallel for estimators
  /// that support it), then non-finite entries are patched one by one
  /// from the fallback. Bit-identical for any thread count.
  std::vector<double> EstimateBatch(const std::vector<CostSample>& samples,
                                    ThreadPool* pool = nullptr) const override;

  std::string name() const override;

  /// Marks the primary unusable (e.g. after a failed model load); all
  /// subsequent calls go straight to the fallback. Safe to call while
  /// other threads are mid-Estimate: they observe the flag on their
  /// next call at the latest.
  void MarkDegraded(const std::string& reason) AV_EXCLUDES(mu_);

  /// True when every call is served by the fallback.
  bool degraded() const { return degraded_.load(std::memory_order_relaxed); }
  /// Reason for degradation; empty when not degraded. Returned by value:
  /// a reference into the mutex-guarded string would dangle past the
  /// lock.
  std::string degraded_reason() const AV_EXCLUDES(mu_);

  /// Calls answered by the fallback (degraded calls included).
  uint64_t fallback_calls() const {
    return fallback_calls_.load(std::memory_order_relaxed);
  }

 private:
  double FallbackFor(const CostSample& sample) const;
  void ClearDegraded() AV_EXCLUDES(mu_);

  CostEstimator* primary_;
  CostEstimator* fallback_;
  // Relaxed flag (see util/annotations.h conventions): readers that
  // race a MarkDegraded take the primary path one last time and patch
  // any NaN per-call, so no ordering with degraded_reason_ is needed
  // for correctness — the reason string is for operators, not control
  // flow.
  std::atomic<bool> degraded_{false};
  mutable Mutex mu_;
  std::string degraded_reason_ AV_GUARDED_BY(mu_);
  mutable std::atomic<uint64_t> fallback_calls_{0};  // relaxed tally
};

}  // namespace autoview
