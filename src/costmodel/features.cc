#include "costmodel/features.h"

#include <cmath>
#include <set>

#include "util/random.h"

namespace autoview {

namespace {

/// Plan-shape counters appended to the numeric feature vector.
struct PlanShape {
  double ops = 0, height = 0, joins = 0, filters = 0, aggregates = 0,
         scans = 0, projects = 0;
};

PlanShape ShapeOf(const PlanNode& plan) {
  PlanShape shape;
  shape.height = static_cast<double>(plan.Height());
  for (const auto& node : plan.Subtrees()) {
    ++shape.ops;
    switch (node->op()) {
      case PlanOp::kJoin:
        ++shape.joins;
        break;
      case PlanOp::kFilter:
        ++shape.filters;
        break;
      case PlanOp::kAggregate:
        ++shape.aggregates;
        break;
      case PlanOp::kTableScan:
        ++shape.scans;
        break;
      case PlanOp::kProject:
        ++shape.projects;
        break;
      case PlanOp::kSort:
      case PlanOp::kLimit:
      case PlanOp::kDistinct:
        // Tail operators contribute to `ops`/`height` only; no dedicated
        // bucket, so the numeric feature width stays fixed. Listed
        // explicitly so -Wswitch flags the next PlanOp addition instead
        // of silently under-featurizing it.
        break;
    }
  }
  return shape;
}

void AppendShape(const PlanShape& shape, std::vector<double>* out) {
  out->push_back(shape.ops);
  out->push_back(shape.height);
  out->push_back(shape.joins);
  out->push_back(shape.filters);
  out->push_back(shape.aggregates);
  out->push_back(shape.scans);
  out->push_back(shape.projects);
}

}  // namespace

size_t FeatureExtractor::NumNumericFeatures() { return 4 + 2 * 7; }

Features FeatureExtractor::Extract(const CostSample& sample) const {
  Features features;

  // Numerical: statistics of the associated input tables.
  double total_rows = 0, total_bytes = 0, total_columns = 0;
  for (const auto& table : sample.tables) {
    const TableStats& stats = catalog_->GetStats(table);
    total_rows += static_cast<double>(stats.row_count);
    total_bytes += static_cast<double>(stats.byte_size);
    auto schema = catalog_->GetTable(table);
    if (schema.ok()) {
      total_columns += static_cast<double>(schema.value()->num_columns());
    }
  }
  features.numeric.push_back(static_cast<double>(sample.tables.size()));
  features.numeric.push_back(std::log1p(total_rows));
  features.numeric.push_back(std::log1p(total_bytes));
  features.numeric.push_back(total_columns);
  AppendShape(ShapeOf(*sample.query), &features.numeric);
  AppendShape(ShapeOf(*sample.view), &features.numeric);

  // Non-numerical (1): plan token sequences.
  features.query_plan = sample.query->FeatureSequence();
  features.view_plan = sample.view->FeatureSequence();

  // Non-numerical (2): schema keywords of the associated tables.
  std::set<std::string> keywords;
  for (const auto& table : sample.tables) {
    keywords.insert(table);
    auto schema = catalog_->GetTable(table);
    if (!schema.ok()) continue;
    for (const auto& col : schema.value()->columns()) {
      keywords.insert(col.name);
      keywords.insert(ColumnTypeName(col.type));
    }
  }
  features.schema_keywords.assign(keywords.begin(), keywords.end());
  return features;
}

void Normalizer::Fit(const std::vector<std::vector<double>>& rows) {
  if (rows.empty()) return;
  const size_t dim = rows[0].size();
  mean_.assign(dim, 0.0);
  std_.assign(dim, 0.0);
  for (const auto& row : rows) {
    for (size_t j = 0; j < dim; ++j) mean_[j] += row[j];
  }
  for (size_t j = 0; j < dim; ++j) mean_[j] /= static_cast<double>(rows.size());
  for (const auto& row : rows) {
    for (size_t j = 0; j < dim; ++j) {
      const double d = row[j] - mean_[j];
      std_[j] += d * d;
    }
  }
  for (size_t j = 0; j < dim; ++j) {
    std_[j] = std::sqrt(std_[j] / static_cast<double>(rows.size()));
    if (std_[j] < 1e-12) std_[j] = 1.0;
  }
}

std::vector<double> Normalizer::Apply(const std::vector<double>& row) const {
  if (mean_.empty()) return row;
  std::vector<double> out(row.size());
  for (size_t j = 0; j < row.size(); ++j) {
    out[j] = (row[j] - mean_[j]) / std_[j];
  }
  return out;
}

size_t KeywordVocab::Add(const std::string& token) {
  if (IsStringLiteral(token)) return 0;
  auto [it, _] = ids_.emplace(token, ids_.size());
  return it->second;
}

void KeywordVocab::AddAll(const Features& features) {
  for (const auto* plan : {&features.query_plan, &features.view_plan}) {
    for (const auto& op_tokens : *plan) {
      for (const auto& token : op_tokens) Add(token);
    }
  }
  for (const auto& kw : features.schema_keywords) Add(kw);
}

size_t KeywordVocab::Lookup(const std::string& token) const {
  auto it = ids_.find(token);
  return it == ids_.end() ? 0 : it->second;
}

DatasetSplit SplitDataset(size_t n, uint64_t seed) {
  std::vector<size_t> indices(n);
  for (size_t i = 0; i < n; ++i) indices[i] = i;
  Rng rng(seed);
  rng.Shuffle(&indices);
  DatasetSplit split;
  const size_t train_end = n * 7 / 10;
  const size_t val_end = n * 8 / 10;
  split.train.assign(indices.begin(), indices.begin() + train_end);
  split.validation.assign(indices.begin() + train_end,
                          indices.begin() + val_end);
  split.test.assign(indices.begin() + val_end, indices.end());
  return split;
}

}  // namespace autoview
