#pragma once

#include <map>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "plan/plan.h"
#include "util/status.h"

namespace autoview {

/// \brief One training/inference sample for cost estimation (§IV):
/// a query q, a candidate view v (its subquery plan), the associated
/// tables, and — for training — the ground-truth cost A(q|v).
struct CostSample {
  PlanNodePtr query;
  PlanNodePtr view;
  std::vector<std::string> tables;  ///< associated base tables of q and v
  double target = 0.0;              ///< A_{beta,gamma}(q|v) in $

  /// Ground-truth single-plan costs (populated by the dataset builder
  /// from the metadata database); the DeepLearn baseline trains its
  /// single-plan model on these.
  double query_cost = 0.0;     ///< A(q)
  double subquery_cost = 0.0;  ///< A(s)
};

/// \brief Extracted features of one sample, split per §IV-A into
/// numerical features and two kinds of non-numerical features.
struct Features {
  /// Numerical: statistics of the input tables and plan shapes.
  std::vector<double> numeric;
  /// Non-numerical (1): the query plan as a two-dimensional token
  /// sequence (per-operator prefix-notation token lists, Fig. 4).
  std::vector<std::vector<std::string>> query_plan;
  /// Non-numerical (1b): the view plan, same encoding.
  std::vector<std::vector<std::string>> view_plan;
  /// Non-numerical (2): the schema keyword set of the associated tables
  /// (table names, column names, column type names — Fig. 7b).
  std::vector<std::string> schema_keywords;
};

/// \brief Turns CostSamples into Features using catalog metadata.
class FeatureExtractor {
 public:
  explicit FeatureExtractor(const Catalog* catalog) : catalog_(catalog) {}

  Features Extract(const CostSample& sample) const;

  /// Number of numeric features produced (fixed).
  static size_t NumNumericFeatures();

 private:
  const Catalog* catalog_;
};

/// \brief Z-score normalizer for numeric feature vectors, fit on the
/// training split (Algorithm 1, line 8).
class Normalizer {
 public:
  /// Fits mean/std per dimension. Constant dimensions get std 1.
  void Fit(const std::vector<std::vector<double>>& rows);

  /// Applies (x - mu) / sigma.
  std::vector<double> Apply(const std::vector<double>& row) const;

  bool fitted() const { return !mean_.empty(); }
  const std::vector<double>& mean() const { return mean_; }
  const std::vector<double>& stddev() const { return std_; }

 private:
  std::vector<double> mean_;
  std::vector<double> std_;
};

/// \brief Keyword vocabulary shared by plan and schema encodings
/// (§IV-B2: "we share the Keyword Embedding matrix for the two kinds of
/// features as their keywords belong to the same database").
///
/// Id 0 is reserved for unknown keywords. Quoted tokens ('abc') are
/// string literals and are NOT keywords — they go through the String
/// Encoding model instead.
class KeywordVocab {
 public:
  KeywordVocab() { ids_["<unk>"] = 0; }

  /// True for tokens that should take the string-encoding path.
  static bool IsStringLiteral(const std::string& token) {
    return !token.empty() && token.front() == '\'';
  }

  /// Adds a keyword (no-op for string literals); returns its id.
  size_t Add(const std::string& token);

  /// Adds every keyword appearing in `features`.
  void AddAll(const Features& features);

  /// Lookup; unknown keywords map to 0.
  size_t Lookup(const std::string& token) const;

  size_t size() const { return ids_.size(); }

 private:
  std::map<std::string, size_t> ids_;
};

/// Splits sample indices into train/validation/test with the paper's
/// 7:1:2 ratio after a seeded shuffle.
struct DatasetSplit {
  std::vector<size_t> train;
  std::vector<size_t> validation;
  std::vector<size_t> test;
};
DatasetSplit SplitDataset(size_t n, uint64_t seed);

}  // namespace autoview
