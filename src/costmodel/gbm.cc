#include "costmodel/gbm.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace autoview {

double GbmEstimator::Tree::Predict(const std::vector<double>& x) const {
  int node = 0;
  while (nodes[static_cast<size_t>(node)].feature >= 0) {
    const TreeNode& n = nodes[static_cast<size_t>(node)];
    node = x[static_cast<size_t>(n.feature)] < n.threshold ? n.left : n.right;
  }
  return nodes[static_cast<size_t>(node)].value;
}

int GbmEstimator::GrowNode(Tree* tree,
                           const std::vector<std::vector<double>>& x,
                           const std::vector<double>& residual,
                           std::vector<size_t> indices, size_t depth) const {
  double sum = 0.0;
  for (size_t i : indices) sum += residual[i];
  const double count = static_cast<double>(indices.size());
  const double leaf_value = sum / (count + options_.l2);

  const int node_index = static_cast<int>(tree->nodes.size());
  tree->nodes.push_back({});
  tree->nodes.back().value = leaf_value;
  if (depth >= options_.max_depth ||
      indices.size() < 2 * options_.min_leaf) {
    return node_index;
  }

  // Best split by squared-loss gain: gl^2/(nl+l2) + gr^2/(nr+l2) -
  // g^2/(n+l2).
  const double parent_score = sum * sum / (count + options_.l2);
  double best_gain = 1e-9;
  int best_feature = -1;
  double best_threshold = 0.0;
  const size_t dim = x[indices[0]].size();
  std::vector<size_t> sorted = indices;
  for (size_t f = 0; f < dim; ++f) {
    std::sort(sorted.begin(), sorted.end(), [&](size_t a, size_t b) {
      return x[a][f] < x[b][f];
    });
    double left_sum = 0.0;
    for (size_t pos = 0; pos + 1 < sorted.size(); ++pos) {
      left_sum += residual[sorted[pos]];
      if (x[sorted[pos]][f] == x[sorted[pos + 1]][f]) continue;
      const size_t nl = pos + 1;
      const size_t nr = sorted.size() - nl;
      if (nl < options_.min_leaf || nr < options_.min_leaf) continue;
      const double right_sum = sum - left_sum;
      const double gain =
          left_sum * left_sum / (static_cast<double>(nl) + options_.l2) +
          right_sum * right_sum / (static_cast<double>(nr) + options_.l2) -
          parent_score;
      if (gain > best_gain) {
        best_gain = gain;
        best_feature = static_cast<int>(f);
        best_threshold = (x[sorted[pos]][f] + x[sorted[pos + 1]][f]) / 2.0;
      }
    }
  }
  if (best_feature < 0) return node_index;

  std::vector<size_t> left_idx, right_idx;
  for (size_t i : indices) {
    (x[i][static_cast<size_t>(best_feature)] < best_threshold ? left_idx
                                                              : right_idx)
        .push_back(i);
  }
  tree->nodes[static_cast<size_t>(node_index)].feature = best_feature;
  tree->nodes[static_cast<size_t>(node_index)].threshold = best_threshold;
  const int left = GrowNode(tree, x, residual, std::move(left_idx), depth + 1);
  tree->nodes[static_cast<size_t>(node_index)].left = left;
  const int right =
      GrowNode(tree, x, residual, std::move(right_idx), depth + 1);
  tree->nodes[static_cast<size_t>(node_index)].right = right;
  return node_index;
}

GbmEstimator::Tree GbmEstimator::FitTree(
    const std::vector<std::vector<double>>& x,
    const std::vector<double>& residual, std::vector<size_t> indices) const {
  Tree tree;
  GrowNode(&tree, x, residual, std::move(indices), 0);
  return tree;
}

Status GbmEstimator::Train(const std::vector<CostSample>& samples) {
  if (samples.empty()) return Status::InvalidArgument("empty training set");
  std::vector<std::vector<double>> x;
  x.reserve(samples.size());
  for (const auto& sample : samples) {
    x.push_back(extractor_.Extract(sample).numeric);
  }
  base_ = 0.0;
  for (const auto& sample : samples) base_ += sample.target;
  base_ /= static_cast<double>(samples.size());

  std::vector<double> pred(samples.size(), base_);
  std::vector<double> residual(samples.size());
  std::vector<size_t> all(samples.size());
  for (size_t i = 0; i < all.size(); ++i) all[i] = i;

  trees_.clear();
  for (size_t round = 0; round < options_.num_trees; ++round) {
    for (size_t i = 0; i < samples.size(); ++i) {
      residual[i] = samples[i].target - pred[i];
    }
    Tree tree = FitTree(x, residual, all);
    for (size_t i = 0; i < samples.size(); ++i) {
      pred[i] += options_.learning_rate * tree.Predict(x[i]);
    }
    trees_.push_back(std::move(tree));
  }
  return Status::OK();
}

double GbmEstimator::PredictFeatures(const std::vector<double>& x) const {
  double y = base_;
  for (const auto& tree : trees_) {
    y += options_.learning_rate * tree.Predict(x);
  }
  return y;
}

double GbmEstimator::Estimate(const CostSample& sample) const {
  return PredictFeatures(extractor_.Extract(sample).numeric);
}

}  // namespace autoview
