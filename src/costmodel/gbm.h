#pragma once

#include <vector>

#include "costmodel/estimator.h"

namespace autoview {

/// \brief The `GBM` baseline of Table III: gradient-boosted regression
/// trees over the numeric features (an XGBoost-style learner with
/// squared loss, depth-limited trees, shrinkage and L2 leaf
/// regularization).
class GbmEstimator : public CostEstimator {
 public:
  struct Options {
    size_t num_trees = 120;
    size_t max_depth = 3;
    size_t min_leaf = 3;       ///< minimum samples per leaf
    double learning_rate = 0.1;
    double l2 = 1.0;           ///< leaf-weight regularization
  };

  explicit GbmEstimator(const Catalog* catalog)
      : GbmEstimator(catalog, Options{}) {}
  GbmEstimator(const Catalog* catalog, Options options)
      : extractor_(catalog), options_(options) {}

  Status Train(const std::vector<CostSample>& samples) override;
  double Estimate(const CostSample& sample) const override;
  std::string name() const override { return "GBM"; }

  size_t num_trees() const { return trees_.size(); }

 private:
  struct TreeNode {
    int feature = -1;       ///< -1 for leaves
    double threshold = 0.0; ///< go left when x[feature] < threshold
    double value = 0.0;     ///< leaf prediction
    int left = -1;
    int right = -1;
  };
  struct Tree {
    std::vector<TreeNode> nodes;
    double Predict(const std::vector<double>& x) const;
  };

  Tree FitTree(const std::vector<std::vector<double>>& x,
               const std::vector<double>& residual,
               std::vector<size_t> indices) const;
  int GrowNode(Tree* tree, const std::vector<std::vector<double>>& x,
               const std::vector<double>& residual,
               std::vector<size_t> indices, size_t depth) const;

  double PredictFeatures(const std::vector<double>& x) const;

  FeatureExtractor extractor_;
  Options options_;
  double base_ = 0.0;
  std::vector<Tree> trees_;
};

}  // namespace autoview
