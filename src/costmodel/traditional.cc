#include "costmodel/traditional.h"

#include <algorithm>
#include <cmath>

namespace autoview {

const ColumnStats* CardinalityEstimator::ResolveColumn(const PlanNode& node,
                                                       size_t index) const {
  switch (node.op()) {
    case PlanOp::kTableScan: {
      const TableStats& stats = catalog_->GetStats(node.table());
      return index < stats.columns.size() ? &stats.columns[index] : nullptr;
    }
    case PlanOp::kFilter:
      return ResolveColumn(*node.child(0), index);
    case PlanOp::kProject: {
      const auto& item = node.projections()[index];
      if (item.expr->kind() != ExprKind::kColumn) return nullptr;
      return ResolveColumn(*node.child(0), item.expr->column_index());
    }
    case PlanOp::kJoin: {
      const size_t left_width = node.child(0)->num_output_columns();
      return index < left_width
                 ? ResolveColumn(*node.child(0), index)
                 : ResolveColumn(*node.child(1), index - left_width);
    }
    case PlanOp::kAggregate:
      if (index < node.group_by().size()) {
        return ResolveColumn(*node.child(0), node.group_by()[index]);
      }
      return nullptr;  // aggregate outputs have no base column
    case PlanOp::kSort:
    case PlanOp::kLimit:
    case PlanOp::kDistinct:
      return ResolveColumn(*node.child(0), index);
  }
  return nullptr;
}

double CardinalityEstimator::DistinctOf(const PlanNode& node,
                                        size_t index) const {
  const ColumnStats* stats = ResolveColumn(node, index);
  return stats && stats->distinct_count > 0 ? stats->distinct_count : 1.0;
}

double CardinalityEstimator::EstimateSelectivity(const Expr& pred,
                                                 const PlanNode& input) const {
  switch (pred.kind()) {
    case ExprKind::kAnd: {
      double s = 1.0;  // independence assumption
      for (const auto& child : pred.children()) {
        s *= EstimateSelectivity(*child, input);
      }
      return s;
    }
    case ExprKind::kOr: {
      double keep = 1.0;  // inclusion-exclusion under independence
      for (const auto& child : pred.children()) {
        keep *= 1.0 - EstimateSelectivity(*child, input);
      }
      return 1.0 - keep;
    }
    case ExprKind::kNot:
      return 1.0 - EstimateSelectivity(*pred.children()[0], input);
    case ExprKind::kCompare: {
      const Expr* lhs = pred.children()[0].get();
      const Expr* rhs = pred.children()[1].get();
      CompareOp op = pred.compare_op();
      if (lhs->kind() == ExprKind::kLiteral &&
          rhs->kind() == ExprKind::kColumn) {
        std::swap(lhs, rhs);
        switch (op) {
          case CompareOp::kLt: op = CompareOp::kGt; break;
          case CompareOp::kLe: op = CompareOp::kGe; break;
          case CompareOp::kGt: op = CompareOp::kLt; break;
          case CompareOp::kGe: op = CompareOp::kLe; break;
          default: break;
        }
      }
      if (lhs->kind() == ExprKind::kColumn &&
          rhs->kind() == ExprKind::kLiteral) {
        const ColumnStats* stats = ResolveColumn(input, lhs->column_index());
        const Value& lit = rhs->literal();
        const double distinct =
            stats && stats->distinct_count > 0 ? stats->distinct_count : 10.0;
        const bool numeric = !lit.is_string();
        const bool has_hist =
            stats && !stats->histogram.bucket_counts.empty() && numeric;
        switch (op) {
          case CompareOp::kEq:
            return has_hist ? stats->histogram.EqualitySelectivity(
                                  lit.AsDouble(), distinct)
                            : 1.0 / distinct;
          case CompareOp::kNe:
            return 1.0 - (has_hist ? stats->histogram.EqualitySelectivity(
                                         lit.AsDouble(), distinct)
                                   : 1.0 / distinct);
          case CompareOp::kLt:
            return has_hist
                       ? stats->histogram.LessThanSelectivity(lit.AsDouble())
                       : 0.33;
          case CompareOp::kLe:
            return has_hist ? std::min(
                                  1.0,
                                  stats->histogram.LessThanSelectivity(
                                      lit.AsDouble()) +
                                      stats->histogram.EqualitySelectivity(
                                          lit.AsDouble(), distinct))
                            : 0.33;
          case CompareOp::kGt:
          case CompareOp::kGe:
            return has_hist ? 1.0 - stats->histogram.LessThanSelectivity(
                                        lit.AsDouble())
                            : 0.33;
        }
      }
      if (lhs->kind() == ExprKind::kColumn &&
          rhs->kind() == ExprKind::kColumn && op == CompareOp::kEq) {
        const double d1 = DistinctOf(input, lhs->column_index());
        const double d2 = DistinctOf(input, rhs->column_index());
        return 1.0 / std::max({d1, d2, 1.0});
      }
      return 0.33;  // default selectivity for opaque predicates
    }
    default:
      return 1.0;
  }
}

double CardinalityEstimator::EstimateRows(const PlanNode& plan) const {
  switch (plan.op()) {
    case PlanOp::kTableScan:
      return static_cast<double>(catalog_->GetStats(plan.table()).row_count);
    case PlanOp::kFilter:
      return EstimateRows(*plan.child(0)) *
             EstimateSelectivity(*plan.predicate(), *plan.child(0));
    case PlanOp::kProject:
      return EstimateRows(*plan.child(0));
    case PlanOp::kJoin: {
      const double left = EstimateRows(*plan.child(0));
      const double right = EstimateRows(*plan.child(1));
      // Combined row used only for column resolution of the condition.
      double sel = EstimateSelectivity(*plan.join_condition(), plan);
      return std::max(1.0, left * right * sel);
    }
    case PlanOp::kAggregate: {
      const double input = EstimateRows(*plan.child(0));
      if (plan.group_by().empty()) return 1.0;
      double groups = 1.0;
      for (size_t g : plan.group_by()) {
        groups *= DistinctOf(*plan.child(0), g);
      }
      return std::min(input, groups);
    }
    case PlanOp::kSort:
      return EstimateRows(*plan.child(0));
    case PlanOp::kLimit:
      return std::min(EstimateRows(*plan.child(0)),
                      static_cast<double>(plan.limit()));
    case PlanOp::kDistinct: {
      const double input = EstimateRows(*plan.child(0));
      double groups = 1.0;
      for (size_t c = 0; c < plan.num_output_columns(); ++c) {
        groups *= DistinctOf(*plan.child(0), c);
      }
      return std::min(input, groups);
    }
  }
  return 1.0;
}

double CardinalityEstimator::EstimateBytes(const PlanNode& plan) const {
  // Average row width from the scanned base tables, scaled by the
  // fraction of columns this plan outputs.
  double total_bytes = 0, total_rows = 0, total_cols = 0;
  for (const auto& table : plan.ScannedTables()) {
    const TableStats& stats = catalog_->GetStats(table);
    total_bytes += static_cast<double>(stats.byte_size);
    total_rows += static_cast<double>(stats.row_count);
    auto schema = catalog_->GetTable(table);
    if (schema.ok()) {
      total_cols += static_cast<double>(schema.value()->num_columns());
    }
  }
  const double avg_cell = total_rows > 0 && total_cols > 0
                              ? total_bytes / total_rows / total_cols
                              : 8.0;
  return EstimateRows(plan) * avg_cell *
         static_cast<double>(plan.num_output_columns());
}

namespace {

/// Mirrors Executor's per-operator charging with estimated cardinalities.
double EstimatedCpuUnits(const CardinalityEstimator& card,
                         const CostConstants& consts, const PlanNode& plan) {
  double units = 0.0;
  switch (plan.op()) {
    case PlanOp::kTableScan:
      return consts.scan_row * card.EstimateRows(plan);
    case PlanOp::kFilter:
      units = consts.filter_row * card.EstimateRows(*plan.child(0));
      break;
    case PlanOp::kProject:
      units = consts.project_row * card.EstimateRows(*plan.child(0));
      break;
    case PlanOp::kJoin:
      units = consts.join_build_row * card.EstimateRows(*plan.child(1)) +
              consts.join_probe_row * card.EstimateRows(*plan.child(0)) +
              consts.join_output_row * card.EstimateRows(plan);
      break;
    case PlanOp::kAggregate:
      units = consts.agg_update_row * card.EstimateRows(*plan.child(0)) +
              consts.agg_output_row * card.EstimateRows(plan);
      break;
    case PlanOp::kSort: {
      const double n = card.EstimateRows(*plan.child(0));
      units = consts.sort_row * n * std::log2(n + 2.0);
      break;
    }
    case PlanOp::kLimit:
      units = consts.limit_row * card.EstimateRows(plan);
      break;
    case PlanOp::kDistinct:
      units = consts.distinct_row * card.EstimateRows(*plan.child(0));
      break;
  }
  for (const auto& child : plan.children()) {
    units += EstimatedCpuUnits(card, consts, *child);
  }
  return units;
}

}  // namespace

double TraditionalEstimator::EstimatePlanCost(const PlanNode& plan) const {
  CostReport report;
  report.cpu_units = EstimatedCpuUnits(cardinality_, pricing_.consts, plan);
  // Peak memory approximated by the largest estimated intermediate.
  double peak = 0.0;
  for (const auto& node : plan.Subtrees()) {
    peak = std::max(peak, cardinality_.EstimateBytes(*node));
  }
  report.peak_bytes = peak;
  // Model the engine's spill penalty with the *estimated* peak; the
  // cardinality error feeds through the nonlinearity, which is where
  // this baseline's error amplification comes from.
  report.cpu_units *= pricing_.consts.SpillMultiplier(peak);
  return pricing_.QueryCost(report);
}

double TraditionalEstimator::EstimateViewScanCost(
    const PlanNode& view_plan) const {
  CostReport report;
  report.cpu_units =
      pricing_.consts.scan_row * cardinality_.EstimateRows(view_plan);
  report.peak_bytes = cardinality_.EstimateBytes(view_plan);
  return pricing_.QueryCost(report);
}

double TraditionalEstimator::Estimate(const CostSample& sample) const {
  const double q = EstimatePlanCost(*sample.query);
  const double s = EstimatePlanCost(*sample.view);
  const double v = EstimateViewScanCost(*sample.view);
  return std::max(0.0, q - s + v);
}

}  // namespace autoview
