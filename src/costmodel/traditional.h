#pragma once

#include <optional>
#include <string>

#include "costmodel/estimator.h"
#include "engine/cost.h"
#include "plan/plan.h"

namespace autoview {

/// \brief Textbook statistics-based cardinality estimation (histograms +
/// independence + uniformity assumptions), standing in for the
/// PostgreSQL / MaxCompute optimizers used by the paper's `Optimizer`
/// baseline.
class CardinalityEstimator {
 public:
  explicit CardinalityEstimator(const Catalog* catalog) : catalog_(catalog) {}

  /// Estimated output rows of `plan`.
  double EstimateRows(const PlanNode& plan) const;

  /// Estimated output bytes of `plan` (rows x average source row width).
  double EstimateBytes(const PlanNode& plan) const;

  /// Estimated selectivity of `pred` over `input`'s output.
  double EstimateSelectivity(const Expr& pred, const PlanNode& input) const;

 private:
  /// Column-statistics lookup: traces output column `index` of `node`
  /// back to its originating base-table column, if any.
  const ColumnStats* ResolveColumn(const PlanNode& node, size_t index) const;

  /// Estimated distinct count of a column (1 when unknown).
  double DistinctOf(const PlanNode& node, size_t index) const;

  const Catalog* catalog_;
};

/// \brief The `Optimizer` baseline of Table III:
/// A(q|v) = Est(q) - Est(s) + Est(scan of v), each term derived from
/// estimated cardinalities priced with the engine's cost constants. Its
/// error accumulates across the three independent estimates, which is
/// exactly the weakness the paper reports.
class TraditionalEstimator : public CostEstimator {
 public:
  TraditionalEstimator(const Catalog* catalog, Pricing pricing)
      : cardinality_(catalog), pricing_(pricing) {}

  /// No training: the model is the catalog statistics.
  Status Train(const std::vector<CostSample>&) override {
    return Status::OK();
  }

  double Estimate(const CostSample& sample) const override;

  std::string name() const override { return "Optimizer"; }

  /// Estimated execution cost ($) of a single plan (also used by the
  /// DeepLearn baseline for the view-scan term).
  double EstimatePlanCost(const PlanNode& plan) const;

  /// Estimated cost ($) of scanning the materialization of `view_plan`.
  double EstimateViewScanCost(const PlanNode& view_plan) const;

 private:
  CardinalityEstimator cardinality_;
  Pricing pricing_;
};

}  // namespace autoview
