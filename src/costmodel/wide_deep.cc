#include "costmodel/wide_deep.h"

#include <cmath>
#include <limits>

#include "util/failpoint.h"
#include "util/logging.h"
#include "util/thread_pool.h"

namespace autoview {

namespace {
/// Offset guarding log() against zero-cost targets.
constexpr double kLogEps = 1e-12;
}  // namespace

using nn::Add;
using nn::ConcatRows;
using nn::MseLoss;
using nn::ReLU;
using nn::Tensor;

/// All trainable submodules; built once the vocabulary is known.
struct WideDeepEstimator::Network {
  Network(size_t vocab_size, size_t numeric_dim, const KeywordVocab* vocab,
          const WideDeepOptions& opts, Rng* rng)
      : keyword_embedding(vocab_size, opts.embed_dim, rng,
                          opts.learn_keyword_embedding),
        string_encoder(opts.embed_dim, rng, opts.use_string_cnn,
                       /*trainable_chars=*/opts.use_string_cnn),
        plan_encoder(&keyword_embedding, &string_encoder, vocab,
                     opts.plan_hidden, rng, opts.use_sequence_models),
        schema_encoder(&keyword_embedding, vocab),
        deep_in(numeric_dim + opts.embed_dim + 2 * plan_encoder.output_dim()),
        wide(numeric_dim, opts.wide_out, rng),
        fc1(deep_in, opts.deep_hidden, rng),
        fc2(opts.deep_hidden, deep_in, rng),
        fc3(deep_in, opts.deep_hidden, rng),
        fc4(opts.deep_hidden, deep_in, rng),
        fc5(opts.wide_out + deep_in, opts.regressor_hidden, rng),
        fc6(opts.regressor_hidden, 1, rng) {}

  std::vector<Tensor> Parameters() const {
    std::vector<Tensor> params;
    auto append = [&params](const std::vector<Tensor>& more) {
      params.insert(params.end(), more.begin(), more.end());
    };
    append(keyword_embedding.Parameters());
    append(string_encoder.Parameters());
    append(plan_encoder.Parameters());
    append(wide.Parameters());
    append(fc1.Parameters());
    append(fc2.Parameters());
    append(fc3.Parameters());
    append(fc4.Parameters());
    append(fc5.Parameters());
    append(fc6.Parameters());
    return params;
  }

  nn::Embedding keyword_embedding;
  StringEncoder string_encoder;
  PlanEncoder plan_encoder;
  SchemaEncoder schema_encoder;
  size_t deep_in;
  nn::Linear wide;
  nn::Linear fc1, fc2, fc3, fc4;  // two ResNet blocks
  nn::Linear fc5, fc6;            // regressor
};

WideDeepEstimator::WideDeepEstimator(const Catalog* catalog,
                                     WideDeepOptions options)
    : catalog_(catalog), options_(options), extractor_(catalog) {}

WideDeepEstimator::~WideDeepEstimator() = default;

std::string WideDeepEstimator::name() const {
  if (!options_.learn_keyword_embedding) return "N-Kw";
  if (!options_.use_string_cnn) return "N-Str";
  if (!options_.use_sequence_models) return "N-Exp";
  return "W-D";
}

Tensor WideDeepEstimator::Forward(const Features& features,
                                  const std::vector<double>& normalized) const {
  Tensor dc = Tensor::FromData(std::vector<nn::Scalar>(normalized.begin(),
                                                       normalized.end()),
                               1, normalized.size());
  Tensor dm = net_->schema_encoder.Forward(features.schema_keywords);
  Tensor de_query = net_->plan_encoder.Forward(features.query_plan);
  Tensor de_view = net_->plan_encoder.Forward(features.view_plan);
  Tensor dr = nn::ConcatCols({dc, dm, de_query, de_view});

  // Two ResNet blocks (element-wise residual add).
  Tensor z1 = Add(dr, nn::ReLU(net_->fc2.Forward(ReLU(net_->fc1.Forward(dr)))));
  Tensor z2 = Add(z1, ReLU(net_->fc4.Forward(ReLU(net_->fc3.Forward(z1)))));

  Tensor dw = net_->wide.Forward(dc);
  Tensor merged = nn::ConcatCols({dw, z2});
  return net_->fc6.Forward(ReLU(net_->fc5.Forward(merged)));
}

Status WideDeepEstimator::Train(const std::vector<CostSample>& samples) {
  if (samples.empty()) return Status::InvalidArgument("empty training set");

  // Extract features once; build vocabulary + numeric normalizer.
  std::vector<Features> features;
  features.reserve(samples.size());
  std::vector<std::vector<double>> numeric_rows;
  for (const auto& sample : samples) {
    features.push_back(extractor_.Extract(sample));
    numeric_rows.push_back(features.back().numeric);
    vocab_.AddAll(features.back());
  }
  normalizer_.Fit(numeric_rows);

  // Standardize log-transformed targets: costs span orders of
  // magnitude, and MAPE (the paper's metric) cares about relative
  // error, which a log-space MSE optimizes much more directly.
  auto to_log = [](double v) { return std::log(v + kLogEps); };
  double mean = 0.0;
  for (const auto& s : samples) mean += to_log(s.target);
  mean /= static_cast<double>(samples.size());
  double var = 0.0;
  for (const auto& s : samples) {
    var += (to_log(s.target) - mean) * (to_log(s.target) - mean);
  }
  var /= static_cast<double>(samples.size());
  target_mean_ = mean;
  target_std_ = var > 1e-20 ? std::sqrt(var) : 1.0;

  Rng rng(options_.seed);
  net_ = std::make_unique<Network>(vocab_.size(),
                                   FeatureExtractor::NumNumericFeatures(),
                                   &vocab_, options_, &rng);

  nn::Adam::Options adam_opts;
  adam_opts.lr = options_.learning_rate;
  nn::Adam adam(net_->Parameters(), adam_opts);

  std::vector<size_t> order(samples.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;

  losses_.clear();
  for (size_t epoch = 0; epoch < options_.epochs; ++epoch) {
    rng.Shuffle(&order);
    double epoch_loss = 0.0;
    size_t batches = 0;
    for (size_t start = 0; start < order.size();
         start += options_.batch_size) {
      const size_t end = std::min(order.size(), start + options_.batch_size);
      adam.ZeroGrad();
      std::vector<Tensor> preds, targets;
      for (size_t i = start; i < end; ++i) {
        const size_t idx = order[i];
        preds.push_back(Forward(features[idx],
                                normalizer_.Apply(features[idx].numeric)));
        targets.push_back(Tensor::Full(
            1, 1,
            (std::log(samples[idx].target + kLogEps) - target_mean_) /
                target_std_));
      }
      Tensor loss = MseLoss(ConcatRows(preds), ConcatRows(targets));
      loss.Backward();
      adam.Step();
      epoch_loss += loss.item();
      ++batches;
    }
    losses_.push_back(epoch_loss / static_cast<double>(batches));
    if (options_.verbose) {
      AV_LOG(Info) << name() << " epoch " << epoch + 1 << "/"
                   << options_.epochs << " loss " << losses_.back();
    }
  }
  return Status::OK();
}

double WideDeepEstimator::Estimate(const CostSample& sample) const {
  // Fault site standing in for a stale/broken model emitting NaN; a
  // FallbackEstimator wrapper turns this into a traditional-model call.
  if (AV_FAILPOINT("wide_deep.infer") == FailAction::kNan) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  if (!net_) return 0.0;
  Features features = extractor_.Extract(sample);
  // Inference never backpropagates: skip gradient buffers and graph
  // retention. The guard is thread-local, so concurrent EstimateBatch
  // workers and a trainer on another thread do not interfere.
  nn::NoGradGuard no_grad;
  Tensor pred = Forward(features, normalizer_.Apply(features.numeric));
  return std::max(
      0.0, std::exp(pred.item() * target_std_ + target_mean_) - kLogEps);
}

std::vector<double> WideDeepEstimator::EstimateBatch(
    const std::vector<CostSample>& samples, ThreadPool* pool) const {
  // No untrained early-out: Estimate() handles !net_ per sample, and
  // the wide_deep.infer fault site must fire on this path too.
  std::vector<double> out(samples.size(), 0.0);
  ThreadPool& executor = pool ? *pool : DefaultPool();
  executor.ParallelFor(0, samples.size(),
                       [&](size_t i) { out[i] = Estimate(samples[i]); });
  return out;
}

size_t WideDeepEstimator::NumParameters() const {
  if (!net_) return 0;
  size_t n = 0;
  for (const auto& p : net_->Parameters()) n += p.size();
  return n;
}

}  // namespace autoview
