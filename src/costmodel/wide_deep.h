#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "costmodel/encoders.h"
#include "costmodel/estimator.h"
#include "nn/optimizer.h"

namespace autoview {

/// \brief Configuration of the Wide-Deep cost model (§IV-B) and its
/// three ablations from Table III.
struct WideDeepOptions {
  size_t embed_dim = 16;        ///< n_d: keyword/char embedding width
  size_t plan_hidden = 32;      ///< LSTM2 hidden size (D_e width per plan)
  size_t deep_hidden = 64;      ///< inner width of each ResNet block FC
  size_t wide_out = 8;          ///< D_w width
  size_t regressor_hidden = 32; ///< FC5 width

  // Ablations (all true = full W-D).
  bool learn_keyword_embedding = true;  ///< false = N-Kw
  bool use_string_cnn = true;           ///< false = N-Str
  bool use_sequence_models = true;      ///< false = N-Exp

  // Training (Algorithm 1).
  size_t epochs = 30;
  size_t batch_size = 16;
  double learning_rate = 5e-3;
  uint64_t seed = 42;
  bool verbose = false;

  /// Preset builders for the Table III rows.
  static WideDeepOptions Full() { return {}; }
  static WideDeepOptions NKw() {
    WideDeepOptions o;
    o.learn_keyword_embedding = false;
    return o;
  }
  static WideDeepOptions NStr() {
    WideDeepOptions o;
    o.use_string_cnn = false;
    return o;
  }
  static WideDeepOptions NExp() {
    WideDeepOptions o;
    o.use_sequence_models = false;
    return o;
  }
};

/// \brief The paper's Wide-Deep cost estimator (Fig. 5):
///
///   wide:  D_w = M_w(D_c)                       (affine over numerics)
///   deep:  D_r = concat(D_c, D_m, D_e)
///          Z_1 = D_r (+) ReLU(FC2(ReLU(FC1(D_r))))
///          Z_2 = Z_1 (+) ReLU(FC4(ReLU(FC3(Z_1))))
///   out:   Y^  = FC6(ReLU(FC5(concat(D_w, Z_2))))
///
/// where D_m is the schema encoding and D_e the (query, view) plan
/// encodings. Targets are z-score standardized during training.
class WideDeepEstimator : public CostEstimator {
 public:
  /// `catalog` supplies table metadata for feature extraction; it must
  /// outlive the estimator.
  WideDeepEstimator(const Catalog* catalog, WideDeepOptions options);
  ~WideDeepEstimator() override;

  Status Train(const std::vector<CostSample>& samples) override;
  double Estimate(const CostSample& sample) const override;

  /// Parallel batched inference: rows are chunked across `pool`
  /// (DefaultPool() when null). Forward passes only read the trained
  /// parameters and each row writes its own output slot, so the result
  /// is bit-identical to the sequential loop for any thread count.
  std::vector<double> EstimateBatch(const std::vector<CostSample>& samples,
                                    ThreadPool* pool = nullptr) const override;

  std::string name() const override;

  /// Per-epoch mean training loss (standardized space) of the last
  /// Train() call, for convergence inspection.
  const std::vector<double>& training_losses() const { return losses_; }

  size_t NumParameters() const;

 private:
  struct Network;

  nn::Tensor Forward(const Features& features,
                     const std::vector<double>& normalized) const;

  const Catalog* catalog_;
  WideDeepOptions options_;
  FeatureExtractor extractor_;
  KeywordVocab vocab_;
  Normalizer normalizer_;
  double target_mean_ = 0.0;
  double target_std_ = 1.0;
  std::unique_ptr<Network> net_;
  std::vector<double> losses_;
};

}  // namespace autoview
