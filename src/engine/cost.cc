#include "engine/cost.h"

#include <algorithm>
#include <cmath>

namespace autoview {

double CostConstants::SpillMultiplier(double peak_bytes) const {
  if (spill_threshold_bytes <= 0 || peak_bytes <= spill_threshold_bytes) {
    return 1.0;
  }
  return 1.0 + spill_factor * std::log2(peak_bytes / spill_threshold_bytes);
}

}  // namespace autoview
