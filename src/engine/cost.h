#pragma once

#include <cstdint>
#include <string>

namespace autoview {

/// \brief Per-operator work-unit constants for the deterministic cost
/// accounting model.
///
/// The engine charges "row operations" per operator. The substitution for
/// the paper's cloud testbed (see DESIGN.md): instead of wall-clock CPU /
/// memory metering from MaxCompute, every operator reports its exact work
/// deterministically, which is then priced with the paper's alpha/beta/
/// gamma fees. The *relative* costs (join > filter > scan per row, cost
/// proportional to data sizes) mirror a real engine, which is what the
/// benefit/overhead trade-off in view selection depends on.
struct CostConstants {
  double scan_row = 1.0;
  double filter_row = 0.6;
  double project_row = 0.4;
  double join_build_row = 1.8;
  double join_probe_row = 1.2;
  double join_output_row = 0.8;
  double nested_loop_pair = 0.4;  // per (left,right) pair without equi keys
  double agg_update_row = 1.6;
  double agg_output_row = 0.8;
  double sort_row = 0.4;      ///< per row per log2(n) comparison level
  double limit_row = 0.1;
  double distinct_row = 1.2;
  /// Row-operations one CPU core performs per minute.
  double units_per_minute = 5e6;

  /// Memory-pressure penalty: when a plan's peak footprint exceeds
  /// `spill_threshold_bytes`, its total CPU work is scaled by
  /// 1 + spill_factor * log2(peak / threshold). This models spilling /
  /// cache pressure in real engines and — crucially for Table III —
  /// makes plan cost NON-decomposable: A(q|v) != A(q) - A(s) + A(scan v)
  /// whenever the rewrite changes the peak intermediate, which is what
  /// defeats decomposition-based estimators (Optimizer, DeepLearn) and
  /// rewards models trained directly on rewritten-query costs (W-D).
  double spill_threshold_bytes = 192.0 * 1024;
  double spill_factor = 0.8;

  /// The spill multiplier for a given peak footprint.
  double SpillMultiplier(double peak_bytes) const;
};

/// \brief Accumulated execution cost of one (sub)plan.
struct CostReport {
  double cpu_units = 0.0;     ///< total row-operation work
  double peak_bytes = 0.0;    ///< max concurrent memory footprint
  uint64_t output_rows = 0;   ///< cardinality of the final result
  uint64_t output_bytes = 0;  ///< byte size of the final result

  /// CPU usage in core-minutes (u_cpu of the paper).
  double CpuMinutes(const CostConstants& consts) const {
    return cpu_units / consts.units_per_minute;
  }
  /// Memory usage in GB-minutes (u_mem): peak footprint held for the
  /// duration of the computation.
  double GbMinutes(const CostConstants& consts) const {
    return peak_bytes / 1e9 * CpuMinutes(consts);
  }
};

/// \brief The paper's pricing strategy (Table II):
/// alpha in $/GB (storage), beta in $/(core*minute) (CPU), gamma in
/// $/(GB*minute) (memory).
struct Pricing {
  double alpha = 1.67e-5;
  double beta = 1e-1;
  double gamma = 1e-3;
  CostConstants consts;

  /// A_{beta,gamma}(q): computation cost of a query given its report.
  double QueryCost(const CostReport& report) const {
    return beta * report.CpuMinutes(consts) + gamma * report.GbMinutes(consts);
  }

  /// A_alpha(v): storage fee for materializing `bytes` of view output.
  double StorageFee(uint64_t bytes) const {
    return alpha * static_cast<double>(bytes) / 1e9;
  }
};

}  // namespace autoview
