#include "engine/database.h"

#include <algorithm>
#include <unordered_set>

#include "util/strings.h"

namespace autoview {

Status Database::AddTable(TableSchema schema, std::vector<Row> rows) {
  for (const auto& row : rows) {
    if (row.size() != schema.num_columns()) {
      return Status::InvalidArgument(
          StrFormat("row width %zu != schema width %zu for table %s",
                    row.size(), schema.num_columns(), schema.name().c_str()));
    }
    for (size_t c = 0; c < row.size(); ++c) {
      const ColumnType want = schema.column(c).type;
      const ColumnType got = row[c].type();
      const bool numeric_ok =
          want == ColumnType::kDouble && got == ColumnType::kInt64;
      if (got != want && !numeric_ok) {
        return Status::TypeError(
            StrFormat("cell type mismatch in %s column %s",
                      schema.name().c_str(), schema.column(c).name.c_str()));
      }
    }
  }
  Table table;
  for (const auto& col : schema.columns()) {
    table.columns.push_back({col.name, col.type});
  }
  table.rows = std::move(rows);
  const std::string name = schema.name();
  AV_RETURN_NOT_OK(catalog_.AddTable(std::move(schema)));
  MutexLock lock(mu_);
  tables_.emplace(name, std::move(table));
  return Status::OK();
}

Status Database::AddMaterialized(const std::string& name, Table table) {
  std::vector<ColumnSchema> cols;
  for (const auto& col : table.columns) cols.push_back({col.name, col.type});
  AV_RETURN_NOT_OK(catalog_.AddTable(TableSchema(name, std::move(cols))));
  {
    MutexLock lock(mu_);
    tables_.emplace(name, std::move(table));
  }
  return ComputeStats(name);
}

Status Database::DropTable(const std::string& name) {
  {
    MutexLock lock(mu_);
    if (tables_.erase(name) == 0) {
      return Status::NotFound("no such table: " + name);
    }
  }
  return catalog_.RemoveTable(name);
}

Result<const Table*> Database::GetTable(const std::string& name) const {
  MutexLock lock(mu_);
  auto it = tables_.find(name);
  if (it == tables_.end()) return Status::NotFound("no such table: " + name);
  return &it->second;
}

Status Database::ComputeStats(const std::string& name, size_t buckets) {
  MutexLock lock(mu_);
  auto it = tables_.find(name);
  if (it == tables_.end()) return Status::NotFound("no such table: " + name);
  const Table& table = it->second;
  TableStats stats;
  stats.row_count = table.rows.size();
  stats.byte_size = table.ByteSize();
  stats.columns.resize(table.columns.size());
  for (size_t c = 0; c < table.columns.size(); ++c) {
    ColumnStats& cs = stats.columns[c];
    std::unordered_set<uint64_t> distinct;
    const bool numeric = table.columns[c].type != ColumnType::kString;
    double lo = 0, hi = 0;
    bool first = true;
    for (const auto& row : table.rows) {
      distinct.insert(row[c].Hash());
      if (numeric) {
        const double v = row[c].AsDouble();
        if (first) {
          lo = hi = v;
          first = false;
        } else {
          lo = std::min(lo, v);
          hi = std::max(hi, v);
        }
      }
    }
    cs.distinct_count = static_cast<double>(distinct.size());
    cs.min_value = lo;
    cs.max_value = hi;
    if (numeric && !table.rows.empty()) {
      cs.histogram.lo = lo;
      cs.histogram.hi = hi;
      cs.histogram.bucket_counts.assign(buckets, 0.0);
      const double width = (hi - lo) / static_cast<double>(buckets);
      for (const auto& row : table.rows) {
        size_t b = width > 0
                       ? static_cast<size_t>((row[c].AsDouble() - lo) / width)
                       : 0;
        if (b >= buckets) b = buckets - 1;
        cs.histogram.bucket_counts[b] += 1.0;
      }
    }
  }
  return catalog_.SetStats(name, std::move(stats));
}

Status Database::ComputeAllStats(size_t buckets) {
  std::vector<std::string> names;
  {
    MutexLock lock(mu_);
    names.reserve(tables_.size());
    for (const auto& [name, _] : tables_) names.push_back(name);
  }
  for (const auto& name : names) {
    AV_RETURN_NOT_OK(ComputeStats(name, buckets));
  }
  return Status::OK();
}

}  // namespace autoview
