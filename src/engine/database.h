#pragma once

#include <map>
#include <string>

#include "catalog/catalog.h"
#include "engine/table.h"
#include "util/annotations.h"
#include "util/status.h"

namespace autoview {

/// \brief A catalog plus the actual table data it describes.
///
/// Thread safety: all methods are individually thread-safe, so view
/// builds can execute (scanning base tables) while another thread
/// installs or evicts a view. A GetTable() pointer is a stable map node:
/// it remains valid until DropTable() of that same table. Base tables
/// are never dropped; view tables are dropped only by the view store,
/// whose pin protocol guarantees a served table outlives its readers.
class Database {
 public:
  /// Registers schema + rows. Row cell types must match the schema.
  Status AddTable(TableSchema schema, std::vector<Row> rows)
      AV_EXCLUDES(mu_);

  /// Registers an already-materialized result under `name` (used to
  /// install materialized views so rewritten plans can scan them).
  Status AddMaterialized(const std::string& name, Table table)
      AV_EXCLUDES(mu_);

  /// Removes a table (views being dropped).
  Status DropTable(const std::string& name) AV_EXCLUDES(mu_);

  const Catalog& catalog() const { return catalog_; }

  /// True when `name` is currently registered (base table or view).
  bool HasTable(const std::string& name) const {
    return catalog_.HasTable(name);
  }

  Result<const Table*> GetTable(const std::string& name) const
      AV_EXCLUDES(mu_);

  /// Recomputes TableStats (row/byte counts, distincts, min/max,
  /// equi-width histograms with `buckets` buckets) for every table.
  Status ComputeAllStats(size_t buckets = 32) AV_EXCLUDES(mu_);

  /// Stats for a single table.
  Status ComputeStats(const std::string& name, size_t buckets = 32)
      AV_EXCLUDES(mu_);

  std::vector<std::string> TableNames() const { return catalog_.TableNames(); }

 private:
  Catalog catalog_;  // internally synchronized
  mutable Mutex mu_;
  std::map<std::string, Table> tables_ AV_GUARDED_BY(mu_);
};

}  // namespace autoview
