#pragma once

#include <map>
#include <string>

#include "catalog/catalog.h"
#include "engine/table.h"
#include "util/status.h"

namespace autoview {

/// \brief A catalog plus the actual table data it describes.
class Database {
 public:
  /// Registers schema + rows. Row cell types must match the schema.
  Status AddTable(TableSchema schema, std::vector<Row> rows);

  /// Registers an already-materialized result under `name` (used to
  /// install materialized views so rewritten plans can scan them).
  Status AddMaterialized(const std::string& name, Table table);

  /// Removes a table (views being dropped).
  Status DropTable(const std::string& name);

  const Catalog& catalog() const { return catalog_; }

  Result<const Table*> GetTable(const std::string& name) const;

  /// Recomputes TableStats (row/byte counts, distincts, min/max,
  /// equi-width histograms with `buckets` buckets) for every table.
  Status ComputeAllStats(size_t buckets = 32);

  /// Stats for a single table.
  Status ComputeStats(const std::string& name, size_t buckets = 32);

  std::vector<std::string> TableNames() const { return catalog_.TableNames(); }

 private:
  Catalog catalog_;
  std::map<std::string, Table> tables_;
};

}  // namespace autoview
