#include "engine/executor.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <optional>
#include <unordered_map>
#include <unordered_set>

#include "util/failpoint.h"
#include "util/logging.h"

namespace autoview {

namespace {

/// One equi-join key pair: column indices into the left/right children.
struct EquiKey {
  size_t left = 0;
  size_t right = 0;
};

/// Splits a join condition into equi-key pairs (left col == right col)
/// and residual conjuncts that must be evaluated on the combined row.
void SplitJoinCondition(const Expr& cond, size_t left_width,
                        std::vector<EquiKey>* keys,
                        std::vector<ExprPtr>* residual) {
  if (cond.kind() == ExprKind::kAnd) {
    for (const auto& child : cond.children()) {
      SplitJoinCondition(*child, left_width, keys, residual);
    }
    return;
  }
  if (cond.kind() == ExprKind::kCompare &&
      cond.compare_op() == CompareOp::kEq &&
      cond.children()[0]->kind() == ExprKind::kColumn &&
      cond.children()[1]->kind() == ExprKind::kColumn) {
    size_t a = cond.children()[0]->column_index();
    size_t b = cond.children()[1]->column_index();
    if (a >= left_width && b < left_width) std::swap(a, b);
    if (a < left_width && b >= left_width) {
      keys->push_back({a, b - left_width});
      return;
    }
  }
  // Any non-equi (or single-side) conjunct becomes a residual filter. We
  // re-wrap it as a shared Expr via a structural copy through shift 0.
  residual->push_back(cond.ShiftColumns(0));
}

/// Deterministic composite hash key for a set of cells.
std::string RowKey(const Row& row, const std::vector<size_t>& cols) {
  std::string key;
  for (size_t c : cols) {
    key += row[c].ToString();
    key += '\x1f';
  }
  return key;
}


/// Accumulation state for one aggregate item.
struct AggState {
  int64_t count = 0;
  int64_t sum_int = 0;
  double sum_double = 0.0;
  std::optional<Value> min_value;
  std::optional<Value> max_value;
};

}  // namespace

Result<ExecResult> Executor::Execute(const PlanNode& plan) const {
  double cpu = 0.0;
  AV_ASSIGN_OR_RETURN(NodeResult node, Exec(plan, &cpu));
  ExecResult result;
  // Plans whose peak intermediate exceeds the memory budget pay the
  // spill penalty on all their work (see CostConstants).
  result.cost.cpu_units = cpu * consts_.SpillMultiplier(node.peak_bytes);
  result.cost.peak_bytes = node.peak_bytes;
  result.cost.output_rows = node.table.rows.size();
  result.cost.output_bytes = node.table.ByteSize();
  result.table = std::move(node.table);
  return result;
}

Result<CostReport> Executor::ExecuteForCost(const PlanNode& plan) const {
  AV_ASSIGN_OR_RETURN(ExecResult result, Execute(plan));
  return result.cost;
}

Result<Executor::NodeResult> Executor::Exec(const PlanNode& node,
                                            double* cpu) const {
  switch (node.op()) {
    case PlanOp::kTableScan:
      return ExecScan(node, cpu);
    case PlanOp::kFilter:
      return ExecFilter(node, cpu);
    case PlanOp::kProject:
      return ExecProject(node, cpu);
    case PlanOp::kJoin:
      return ExecJoin(node, cpu);
    case PlanOp::kAggregate:
      return ExecAggregate(node, cpu);
    case PlanOp::kSort:
      return ExecSort(node, cpu);
    case PlanOp::kLimit:
      return ExecLimit(node, cpu);
    case PlanOp::kDistinct:
      return ExecDistinct(node, cpu);
  }
  return Status::Internal("unknown plan operator");
}

Result<Executor::NodeResult> Executor::ExecSort(const PlanNode& node,
                                                double* cpu) const {
  AV_ASSIGN_OR_RETURN(NodeResult in, Exec(*node.child(0), cpu));
  const double n = static_cast<double>(in.table.rows.size());
  *cpu += consts_.sort_row * n * std::log2(n + 2.0);
  const auto& keys = node.sort_keys();
  std::stable_sort(
      in.table.rows.begin(), in.table.rows.end(),
      [&keys](const Row& a, const Row& b) {
        for (const auto& key : keys) {
          const int c = a[key.column].Compare(b[key.column]);
          if (c != 0) return key.descending ? c > 0 : c < 0;
        }
        // Full-row tie-break keeps the order independent of the input
        // order (so LIMIT results survive plan rewrites).
        for (size_t i = 0; i < a.size(); ++i) {
          const int c = a[i].Compare(b[i]);
          if (c != 0) return c < 0;
        }
        return false;
      });
  NodeResult out;
  out.table = std::move(in.table);
  out.peak_bytes =
      std::max(in.peak_bytes, static_cast<double>(out.table.ByteSize()) * 2);
  return out;
}

Result<Executor::NodeResult> Executor::ExecLimit(const PlanNode& node,
                                                 double* cpu) const {
  AV_ASSIGN_OR_RETURN(NodeResult in, Exec(*node.child(0), cpu));
  const size_t n = static_cast<size_t>(node.limit());
  if (in.table.rows.size() > n) in.table.rows.resize(n);
  *cpu += consts_.limit_row * static_cast<double>(in.table.rows.size());
  NodeResult out;
  out.table = std::move(in.table);
  out.peak_bytes = in.peak_bytes;
  return out;
}

Result<Executor::NodeResult> Executor::ExecDistinct(const PlanNode& node,
                                                    double* cpu) const {
  AV_ASSIGN_OR_RETURN(NodeResult in, Exec(*node.child(0), cpu));
  *cpu += consts_.distinct_row * static_cast<double>(in.table.rows.size());
  NodeResult out;
  out.table.columns = node.output();
  std::unordered_set<std::string> seen;
  std::vector<size_t> all_cols(in.table.num_columns());
  for (size_t c = 0; c < all_cols.size(); ++c) all_cols[c] = c;
  for (auto& row : in.table.rows) {
    if (seen.insert(RowKey(row, all_cols)).second) {
      out.table.rows.push_back(std::move(row));
    }
  }
  const double here = static_cast<double>(out.table.ByteSize()) +
                      static_cast<double>(in.table.ByteSize());
  out.peak_bytes = std::max(in.peak_bytes, here);
  return out;
}

Result<Executor::NodeResult> Executor::ExecScan(const PlanNode& node,
                                                double* cpu) const {
  AV_FAILPOINT_STATUS("executor.scan");
  AV_ASSIGN_OR_RETURN(const Table* table, db_->GetTable(node.table()));
  *cpu += consts_.scan_row * static_cast<double>(table->rows.size());
  NodeResult out;
  out.table = *table;  // materialize a private copy
  out.peak_bytes = static_cast<double>(out.table.ByteSize());
  return out;
}

Result<Executor::NodeResult> Executor::ExecFilter(const PlanNode& node,
                                                  double* cpu) const {
  AV_ASSIGN_OR_RETURN(NodeResult in, Exec(*node.child(0), cpu));
  *cpu += consts_.filter_row * static_cast<double>(in.table.rows.size());
  NodeResult out;
  out.table.columns = node.output();
  for (auto& row : in.table.rows) {
    if (node.predicate()->EvalPredicate(row)) {
      out.table.rows.push_back(std::move(row));
    }
  }
  const double here = static_cast<double>(out.table.ByteSize());
  out.peak_bytes = std::max(in.peak_bytes, here);
  return out;
}

Result<Executor::NodeResult> Executor::ExecProject(const PlanNode& node,
                                                   double* cpu) const {
  AV_ASSIGN_OR_RETURN(NodeResult in, Exec(*node.child(0), cpu));
  *cpu += consts_.project_row * static_cast<double>(in.table.rows.size());
  NodeResult out;
  out.table.columns = node.output();
  out.table.rows.reserve(in.table.rows.size());
  for (const auto& row : in.table.rows) {
    Row projected;
    projected.reserve(node.projections().size());
    for (const auto& item : node.projections()) {
      projected.push_back(item.expr->EvalScalar(row));
    }
    out.table.rows.push_back(std::move(projected));
  }
  const double here = static_cast<double>(out.table.ByteSize());
  out.peak_bytes = std::max(in.peak_bytes, here);
  return out;
}

Result<Executor::NodeResult> Executor::ExecJoin(const PlanNode& node,
                                                double* cpu) const {
  AV_ASSIGN_OR_RETURN(NodeResult left, Exec(*node.child(0), cpu));
  AV_ASSIGN_OR_RETURN(NodeResult right, Exec(*node.child(1), cpu));
  const size_t left_width = node.child(0)->num_output_columns();

  std::vector<EquiKey> keys;
  std::vector<ExprPtr> residual;
  SplitJoinCondition(*node.join_condition(), left_width, &keys, &residual);

  NodeResult out;
  out.table.columns = node.output();

  auto emit_if_match = [&](const Row& l, const Row& r) {
    Row combined;
    combined.reserve(l.size() + r.size());
    combined.insert(combined.end(), l.begin(), l.end());
    combined.insert(combined.end(), r.begin(), r.end());
    for (const auto& pred : residual) {
      if (!pred->EvalPredicate(combined)) return;
    }
    *cpu += consts_.join_output_row;
    out.table.rows.push_back(std::move(combined));
  };

  double aux_bytes = 0.0;
  if (!keys.empty()) {
    // Hash join: build on the right child, probe with the left.
    std::vector<size_t> right_cols, left_cols;
    for (const auto& k : keys) {
      right_cols.push_back(k.right);
      left_cols.push_back(k.left);
    }
    std::unordered_map<std::string, std::vector<const Row*>> build;
    build.reserve(right.table.rows.size() * 2);
    for (const auto& row : right.table.rows) {
      build[RowKey(row, right_cols)].push_back(&row);
    }
    *cpu +=
        consts_.join_build_row * static_cast<double>(right.table.rows.size());
    aux_bytes = static_cast<double>(right.table.ByteSize());
    for (const auto& l : left.table.rows) {
      *cpu += consts_.join_probe_row;
      auto it = build.find(RowKey(l, left_cols));
      if (it == build.end()) continue;
      for (const Row* r : it->second) emit_if_match(l, *r);
    }
  } else {
    // Nested loop fallback.
    *cpu += consts_.nested_loop_pair *
            static_cast<double>(left.table.rows.size()) *
            static_cast<double>(right.table.rows.size());
    for (const auto& l : left.table.rows) {
      for (const auto& r : right.table.rows) emit_if_match(l, r);
    }
  }

  const double here = static_cast<double>(out.table.ByteSize()) + aux_bytes +
                      static_cast<double>(left.table.ByteSize());
  out.peak_bytes = std::max({left.peak_bytes, right.peak_bytes, here});
  return out;
}

Result<Executor::NodeResult> Executor::ExecAggregate(const PlanNode& node,
                                                     double* cpu) const {
  AV_ASSIGN_OR_RETURN(NodeResult in, Exec(*node.child(0), cpu));
  *cpu += consts_.agg_update_row * static_cast<double>(in.table.rows.size());

  const auto& group_by = node.group_by();
  const auto& aggs = node.aggregates();

  // std::map gives deterministic group output order.
  std::map<std::string, std::pair<Row, std::vector<AggState>>> groups;
  for (const auto& row : in.table.rows) {
    std::string key = RowKey(row, group_by);
    auto [it, inserted] = groups.try_emplace(key);
    if (inserted) {
      Row key_row;
      for (size_t g : group_by) key_row.push_back(row[g]);
      it->second.first = std::move(key_row);
      it->second.second.resize(aggs.size());
    }
    auto& states = it->second.second;
    for (size_t a = 0; a < aggs.size(); ++a) {
      AggState& st = states[a];
      st.count += 1;
      if (aggs[a].kind == AggKind::kCountStar ||
          aggs[a].kind == AggKind::kCount) {
        continue;
      }
      const Value& v = row[*aggs[a].input_column];
      switch (aggs[a].kind) {
        case AggKind::kSum:
        case AggKind::kAvg:
          if (v.is_int()) {
            st.sum_int += v.AsInt();
          }
          st.sum_double += v.AsDouble();
          break;
        case AggKind::kMin:
          if (!st.min_value || v < *st.min_value) st.min_value = v;
          break;
        case AggKind::kMax:
          if (!st.max_value || *st.max_value < v) st.max_value = v;
          break;
        default:
          break;
      }
    }
  }

  // Global aggregate over empty input still yields one row.
  if (groups.empty() && group_by.empty()) {
    groups.try_emplace("", std::make_pair(Row{}, std::vector<AggState>(
                                                     aggs.size())));
  }

  NodeResult out;
  out.table.columns = node.output();
  for (auto& [_, entry] : groups) {
    Row row = std::move(entry.first);
    for (size_t a = 0; a < aggs.size(); ++a) {
      const AggState& st = entry.second[a];
      const ColumnType out_type = node.output()[group_by.size() + a].type;
      switch (aggs[a].kind) {
        case AggKind::kCountStar:
        case AggKind::kCount:
          row.push_back(Value(st.count));
          break;
        case AggKind::kSum:
          if (out_type == ColumnType::kInt64) {
            row.push_back(Value(st.sum_int));
          } else {
            row.push_back(Value(st.sum_double));
          }
          break;
        case AggKind::kAvg:
          row.push_back(Value(
              st.count ? st.sum_double / static_cast<double>(st.count) : 0.0));
          break;
        case AggKind::kMin:
          row.push_back(st.min_value.value_or(Value(int64_t{0})));
          break;
        case AggKind::kMax:
          row.push_back(st.max_value.value_or(Value(int64_t{0})));
          break;
      }
    }
    out.table.rows.push_back(std::move(row));
  }
  *cpu += consts_.agg_output_row * static_cast<double>(out.table.rows.size());

  const double here = static_cast<double>(out.table.ByteSize()) * 2.0 +
                      static_cast<double>(in.table.ByteSize());
  out.peak_bytes = std::max(in.peak_bytes, here);
  return out;
}

}  // namespace autoview
