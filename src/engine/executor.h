#pragma once

#include "engine/cost.h"
#include "engine/database.h"
#include "engine/table.h"
#include "plan/plan.h"
#include "util/status.h"

namespace autoview {

/// \brief Result of executing a logical plan: the output table and the
/// deterministic cost report.
struct ExecResult {
  Table table;
  CostReport cost;
};

/// \brief Executes logical plans against a Database with cost metering.
///
/// Operators: table scan, filter, projection, inner hash join (with a
/// nested-loop fallback when the ON clause has no equi-key), and hash
/// aggregation. All work is charged to a CostReport using CostConstants,
/// giving bit-reproducible costs for a given plan and data.
class Executor {
 public:
  explicit Executor(const Database* db, CostConstants consts = CostConstants())
      : db_(db), consts_(consts) {}

  /// Executes `plan` and returns the result rows plus cost.
  Result<ExecResult> Execute(const PlanNode& plan) const;

  /// Executes and returns only the cost (result rows discarded).
  Result<CostReport> ExecuteForCost(const PlanNode& plan) const;

  const CostConstants& constants() const { return consts_; }

 private:
  struct NodeResult {
    Table table;
    double peak_bytes = 0.0;
  };

  Result<NodeResult> Exec(const PlanNode& node, double* cpu_units) const;
  Result<NodeResult> ExecScan(const PlanNode& node, double* cpu) const;
  Result<NodeResult> ExecFilter(const PlanNode& node, double* cpu) const;
  Result<NodeResult> ExecProject(const PlanNode& node, double* cpu) const;
  Result<NodeResult> ExecJoin(const PlanNode& node, double* cpu) const;
  Result<NodeResult> ExecAggregate(const PlanNode& node, double* cpu) const;
  Result<NodeResult> ExecSort(const PlanNode& node, double* cpu) const;
  Result<NodeResult> ExecLimit(const PlanNode& node, double* cpu) const;
  Result<NodeResult> ExecDistinct(const PlanNode& node, double* cpu) const;

  const Database* db_;
  CostConstants consts_;
};

}  // namespace autoview
