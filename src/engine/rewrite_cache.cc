#include "engine/rewrite_cache.h"

#include <functional>
#include <utility>

#include "util/logging.h"
#include "util/metrics.h"

namespace autoview {

RewriteCache::RewriteCache(size_t num_shards, size_t capacity_per_shard)
    : shards_(num_shards == 0 ? 1 : num_shards),
      capacity_per_shard_(capacity_per_shard) {}

RewriteCache::Shard& RewriteCache::ShardFor(
    const std::string& canonical_key) const {
  size_t h = std::hash<std::string>{}(canonical_key);
  return shards_[h % shards_.size()];
}

bool RewriteCache::Lookup(const std::string& canonical_key,
                          uint64_t generation, CachedRewrite* out) const {
  AV_CHECK(out != nullptr);
  Shard& shard = ShardFor(canonical_key);
  MutexLock lock(shard.mu);
  auto it = shard.entries.find(Key{canonical_key, generation});
  if (it == shard.entries.end()) return false;
  *out = it->second;
  return true;
}

void RewriteCache::Insert(const std::string& canonical_key,
                          uint64_t generation, CachedRewrite entry) {
  Shard& shard = ShardFor(canonical_key);
  MutexLock lock(shard.mu);
  Key key{canonical_key, generation};
  auto [it, inserted] = shard.entries.try_emplace(key, std::move(entry));
  if (!inserted) {
    it->second = std::move(entry);
    return;  // replacement keeps the original FIFO slot
  }
  shard.fifo.push_back(key);
  GlobalRewriteCache().RecordInsert();
  if (capacity_per_shard_ == 0) return;
  while (shard.entries.size() > capacity_per_shard_ && !shard.fifo.empty()) {
    // FIFO entries can be stale (erased by healing or invalidation);
    // popping a stale key frees no entry, so keep popping.
    Key victim = std::move(shard.fifo.front());
    shard.fifo.pop_front();
    shard.entries.erase(victim);
  }
}

void RewriteCache::Erase(const std::string& canonical_key,
                         uint64_t generation) {
  Shard& shard = ShardFor(canonical_key);
  MutexLock lock(shard.mu);
  shard.entries.erase(Key{canonical_key, generation});
  // The FIFO slot stays behind; capacity eviction skips stale keys.
}

void RewriteCache::InvalidateBefore(uint64_t generation) {
  uint64_t dropped = 0;
  for (Shard& shard : shards_) {
    MutexLock lock(shard.mu);
    for (auto it = shard.entries.begin(); it != shard.entries.end();) {
      if (it->first.generation < generation) {
        it = shard.entries.erase(it);
        ++dropped;
      } else {
        ++it;
      }
    }
    if (shard.entries.empty()) shard.fifo.clear();
  }
  GlobalRewriteCache().RecordInvalidationSweep();
  if (dropped > 0) GlobalRewriteCache().RecordInvalidatedEntries(dropped);
}

void RewriteCache::Clear() {
  for (Shard& shard : shards_) {
    MutexLock lock(shard.mu);
    shard.entries.clear();
    shard.fifo.clear();
  }
}

size_t RewriteCache::size() const {
  size_t total = 0;
  for (Shard& shard : shards_) {
    MutexLock lock(shard.mu);
    total += shard.entries.size();
  }
  return total;
}

}  // namespace autoview
