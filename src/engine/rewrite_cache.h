#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <unordered_map>
#include <vector>

#include "plan/plan.h"
#include "util/annotations.h"

namespace autoview {

/// \brief Sharded, generation-keyed cache of rewrite results, so a
/// serving loop that sees the same query shape repeatedly pays the
/// indexed plan walk once per (query, view-set generation) instead of
/// once per request.
///
/// Keying and invalidation rules:
///   * The lookup key is the *root canonical key string* of the input
///     plan plus the store generation the rewrite was computed under.
///     Exact string keys (not hashes) rule out collision aliasing —
///     two distinct queries can never serve each other's rewrite.
///   * CommitSwap bumps the store generation and calls
///     InvalidateBefore(new_gen), which drops every entry from an older
///     generation wholesale; the online advisor's hot swaps therefore
///     can never serve a stale rewrite.
///   * Within a generation, a cached plan can still reference a view
///     evicted *after* insertion. Entries carry the substituted view
///     ids; Rewriter::RewriteServing re-pins them on every hit and
///     erases the entry when pinning fails (self-healing miss).
///
/// PlanNodes are immutable and shared by shared_ptr, so handing the same
/// rewritten plan to many concurrent requests is safe.
///
/// Thread-safe; per-shard mutexes keep serving threads lock-light. No
/// lock is ever acquired under a shard mutex, and the store acquires
/// shard mutexes only while NOT holding its own (CommitSwap invalidates
/// after releasing the store mutex), keeping the lock order acyclic.
class RewriteCache {
 public:
  /// One cached rewrite: the output plan, the distinct-views-substituted
  /// count RewriteAll would report, and the ids of the views the plan
  /// scans (for re-pinning on hit; empty when no substitution applied).
  struct CachedRewrite {
    PlanNodePtr plan;
    size_t num_substitutions = 0;
    std::vector<int64_t> view_ids;
  };

  /// `capacity_per_shard` bounds each shard FIFO (oldest insert evicted
  /// first); 0 means unbounded.
  explicit RewriteCache(size_t num_shards = kDefaultShards,
                        size_t capacity_per_shard = kDefaultCapacityPerShard);

  RewriteCache(const RewriteCache&) = delete;
  RewriteCache& operator=(const RewriteCache&) = delete;

  /// Copies the entry for (`canonical_key`, `generation`) into `*out`
  /// and returns true; false when absent. Does NOT touch the global
  /// hit/miss counters — the store-level wrapper owns those, since a
  /// raw cache hit still has to survive re-pinning to count as a hit.
  bool Lookup(const std::string& canonical_key, uint64_t generation,
              CachedRewrite* out) const;

  /// Inserts (or replaces) the entry for (`canonical_key`, `generation`).
  void Insert(const std::string& canonical_key, uint64_t generation,
              CachedRewrite entry);

  /// Drops the entry for (`canonical_key`, `generation`) if present
  /// (hit healing after a failed re-pin).
  void Erase(const std::string& canonical_key, uint64_t generation);

  /// Drops every entry whose generation is < `generation`; records one
  /// invalidation sweep and the number of entries dropped in
  /// GlobalRewriteCache().
  void InvalidateBefore(uint64_t generation);

  /// Drops every entry.
  void Clear();

  /// Total cached entries across all shards (diagnostics/tests).
  size_t size() const;

  static constexpr size_t kDefaultShards = 16;
  static constexpr size_t kDefaultCapacityPerShard = 512;

 private:
  struct Key {
    std::string canonical_key;
    uint64_t generation = 0;
    bool operator==(const Key& other) const {
      return generation == other.generation &&
             canonical_key == other.canonical_key;
    }
  };
  struct KeyHash {
    size_t operator()(const Key& k) const {
      return std::hash<std::string>{}(k.canonical_key) ^
             (std::hash<uint64_t>{}(k.generation) * 0x9e3779b97f4a7c15ULL);
    }
  };

  struct Shard {
    mutable Mutex mu;
    std::unordered_map<Key, CachedRewrite, KeyHash> entries
        AV_GUARDED_BY(mu);
    // Insert order for FIFO capacity eviction; may hold keys already
    // erased from `entries` (stale pops are skipped).
    std::deque<Key> fifo AV_GUARDED_BY(mu);
  };

  Shard& ShardFor(const std::string& canonical_key) const;

  // Shard array is sized once at construction and never reallocated, so
  // the Shard objects (and their mutexes) have stable addresses.
  mutable std::vector<Shard> shards_;
  const size_t capacity_per_shard_;
};

}  // namespace autoview
