#include "engine/rewriter.h"

#include "plan/canonical.h"
#include "util/metrics.h"
#include "util/strings.h"

namespace autoview {

Result<PlanNodePtr> Rewriter::Rewrite(const PlanNodePtr& plan,
                                      const MaterializedView& view,
                                      bool* changed) const {
  *changed = false;
  return RewriteNode(plan, view, changed);
}

Result<PlanNodePtr> Rewriter::RewriteAll(
    const PlanNodePtr& plan, const std::vector<const MaterializedView*>& views,
    size_t* num_substitutions) const {
  if (num_substitutions) *num_substitutions = 0;
  PlanNodePtr current = plan;
  for (const MaterializedView* view : views) {
    bool changed = false;
    AV_ASSIGN_OR_RETURN(current, RewriteNode(current, *view, &changed));
    if (changed && num_substitutions) ++*num_substitutions;
  }
  return current;
}

Result<PlanNodePtr> Rewriter::BuildReplacement(
    const PlanNode& original, const MaterializedView& view) const {
  AV_ASSIGN_OR_RETURN(PlanNodePtr scan,
                      PlanNode::MakeScan(*catalog_, view.table_name));
  // Map the original subtree's output columns onto the view's columns by
  // name (canonical equivalence guarantees the same named column set).
  bool identity = scan->output().size() == original.output().size();
  std::vector<ProjectItem> items;
  for (size_t i = 0; i < original.output().size(); ++i) {
    const auto& want = original.output()[i];
    std::optional<size_t> found;
    for (size_t j = 0; j < scan->output().size(); ++j) {
      if (scan->output()[j].name == want.name) {
        found = j;
        break;
      }
    }
    if (!found) {
      return Status::Internal(
          StrFormat("view %s lacks column %s required by the subquery",
                    view.table_name.c_str(), want.name.c_str()));
    }
    if (*found != i) identity = false;
    items.push_back(
        {Expr::Column(*found, want.name, scan->output()[*found].type),
         want.name});
  }
  if (identity) return scan;
  return PlanNode::MakeProject(std::move(scan), std::move(items));
}

Result<PlanNodePtr> Rewriter::RewriteNode(const PlanNodePtr& node,
                                          const MaterializedView& view,
                                          bool* changed) const {
  if (CanonicalKey(*node) == view.canonical_key) {
    if (!catalog_->HasTable(view.table_name)) {
      // The view was evicted/dropped between the match decision and this
      // rewrite: keep the base-table subtree so the query still answers
      // correctly, and count the degradation (see GlobalRobustness()).
      GlobalRobustness().RecordRewriteFallback();
      return node;  // *changed stays false
    }
    *changed = true;
    return BuildReplacement(*node, view);
  }
  // Recurse into children; rebuild this node if any child changed.
  std::vector<PlanNodePtr> new_children;
  bool any = false;
  for (const auto& child : node->children()) {
    bool child_changed = false;
    AV_ASSIGN_OR_RETURN(PlanNodePtr rewritten,
                        RewriteNode(child, view, &child_changed));
    any |= child_changed;
    new_children.push_back(std::move(rewritten));
  }
  if (!any) return node;
  *changed = true;
  switch (node->op()) {
    case PlanOp::kTableScan:
      return node;  // unreachable: scans have no children
    case PlanOp::kFilter:
      return PlanNode::MakeFilter(new_children[0], node->predicate());
    case PlanOp::kProject:
      return PlanNode::MakeProject(new_children[0], node->projections());
    case PlanOp::kJoin:
      return PlanNode::MakeJoin(new_children[0], new_children[1],
                                node->join_condition());
    case PlanOp::kAggregate: {
      // MakeAggregate re-derives input names; copy the agg items fresh.
      std::vector<AggItem> aggs = node->aggregates();
      return PlanNode::MakeAggregate(new_children[0], node->group_by(),
                                     std::move(aggs));
    }
    case PlanOp::kSort:
      return PlanNode::MakeSort(new_children[0], node->sort_keys());
    case PlanOp::kLimit:
      return PlanNode::MakeLimit(new_children[0], node->limit());
    case PlanOp::kDistinct:
      return PlanNode::MakeDistinct(new_children[0]);
  }
  return Status::Internal("unknown plan operator");
}

}  // namespace autoview
