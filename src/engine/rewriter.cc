#include "engine/rewriter.h"

#include <algorithm>
#include <functional>
#include <map>
#include <unordered_map>
#include <utility>

#include "plan/canonical.h"
#include "util/metrics.h"
#include "util/strings.h"

namespace autoview {

namespace {

/// Rebuilds `node` with `children` substituted for its original
/// children (same op, same parameters). Shared by the per-view
/// recursive rewrite and the indexed single-walk rebuild so the two
/// paths cannot drift.
Result<PlanNodePtr> RebuildWithChildren(const PlanNode& node,
                                        std::vector<PlanNodePtr> children) {
  switch (node.op()) {
    case PlanOp::kTableScan:
      return Status::Internal("scan nodes have no children to rebuild");
    case PlanOp::kFilter:
      return PlanNode::MakeFilter(children[0], node.predicate());
    case PlanOp::kProject:
      return PlanNode::MakeProject(children[0], node.projections());
    case PlanOp::kJoin:
      return PlanNode::MakeJoin(children[0], children[1],
                                node.join_condition());
    case PlanOp::kAggregate: {
      // MakeAggregate re-derives input names; copy the agg items fresh.
      std::vector<AggItem> aggs = node.aggregates();
      return PlanNode::MakeAggregate(children[0], node.group_by(),
                                     std::move(aggs));
    }
    case PlanOp::kSort:
      return PlanNode::MakeSort(children[0], node.sort_keys());
    case PlanOp::kLimit:
      return PlanNode::MakeLimit(children[0], node.limit());
    case PlanOp::kDistinct:
      return PlanNode::MakeDistinct(children[0]);
  }
  return Status::Internal("unknown plan operator");
}

/// One node of the pre-order walk RewriteAllIndexed performs. Nodes are
/// addressed by pre-order position, not pointer: plan subtrees are
/// shared shared_ptrs (DAG in memory, tree semantics), so one PlanNode
/// can occupy several distinct tree positions.
struct IndexedNode {
  const PlanNode* node = nullptr;
  PlanNodePtr node_ptr;
  size_t exit = 0;  ///< one past the last pre-order position in the subtree
  std::vector<size_t> child_pos;
};

/// One (view, node) canonical-key match found by probing the index.
struct MatchEvent {
  int64_t view_id = 0;
  size_t enter = 0;
  size_t exit = 0;
  std::string table_name;
};

}  // namespace

Result<PlanNodePtr> Rewriter::Rewrite(const PlanNodePtr& plan,
                                      const MaterializedView& view,
                                      bool* changed) const {
  *changed = false;
  return RewriteNode(plan, view, changed);
}

Result<PlanNodePtr> Rewriter::RewriteAll(
    const PlanNodePtr& plan, const std::vector<const MaterializedView*>& views,
    size_t* num_substitutions) const {
  if (num_substitutions) *num_substitutions = 0;
  PlanNodePtr current = plan;
  for (const MaterializedView* view : views) {
    bool changed = false;
    AV_ASSIGN_OR_RETURN(current, RewriteNode(current, *view, &changed));
    if (changed && num_substitutions) ++*num_substitutions;
  }
  return current;
}

Result<PlanNodePtr> Rewriter::RewriteAllIndexed(
    const PlanNodePtr& plan, const ViewIndex& index, size_t* num_substitutions,
    std::vector<int64_t>* used_view_ids) const {
  if (num_substitutions) *num_substitutions = 0;
  if (used_view_ids) used_view_ids->clear();

  // Pass 1: one bottom-up walk computing every node's canonical key
  // exactly once (composed from child keys) and probing the index.
  std::vector<IndexedNode> nodes;
  std::vector<MatchEvent> events;
  std::vector<ViewIndex::Candidate> candidates;
  std::function<std::string(const PlanNodePtr&)> walk =
      [&](const PlanNodePtr& n) -> std::string {
    const size_t pos = nodes.size();
    nodes.push_back(IndexedNode{n.get(), n, 0, {}});
    std::vector<std::string> child_keys;
    child_keys.reserve(n->children().size());
    for (const auto& child : n->children()) {
      nodes[pos].child_pos.push_back(nodes.size());
      child_keys.push_back(walk(child));
    }
    const std::string key = CanonicalKeyWithChildren(*n, child_keys);
    nodes[pos].exit = nodes.size();
    if (index.Probe(key, &candidates)) {
      for (const auto& c : candidates) {
        events.push_back(MatchEvent{c.id, pos, nodes[pos].exit, c.table_name});
      }
    }
    return key;
  };
  walk(plan);

  if (events.empty()) return plan;

  // Pass 2: replay the sequential loop's decisions. The oracle applies
  // views ascending by id (snapshot order), each as a top-down walk of
  // the then-current plan that stops at the first match on a path. On
  // the original plan that is: process match events sorted by (view id,
  // pre-order position); an event "fires" unless an already-accepted
  // substitution overlaps its subtree — an ancestor-or-self acceptance
  // removed the node from the current tree, a descendant acceptance
  // changed its key — or an earlier fallback of the *same* view covers
  // it (the oracle stops recursing at a matched-but-missing view, so
  // deeper same-view matches are never visited). A fired event with the
  // backing table present is an accepted substitution; with the table
  // missing (evicted/dropped concurrently) it records a rewrite
  // fallback, exactly like the oracle, and blocks nothing globally.
  std::sort(events.begin(), events.end(),
            [](const MatchEvent& a, const MatchEvent& b) {
              if (a.view_id != b.view_id) return a.view_id < b.view_id;
              return a.enter < b.enter;
            });

  std::map<size_t, size_t> accepted;  // enter -> exit; pairwise disjoint
  std::unordered_map<size_t, std::string> accepted_table;
  const auto blocked = [&accepted](size_t enter, size_t exit) {
    auto it = accepted.upper_bound(enter);
    if (it != accepted.begin()) {
      auto prev = std::prev(it);
      if (prev->second > enter) return true;  // ancestor-or-self accepted
    }
    return it != accepted.end() && it->first < exit;  // descendant accepted
  };

  int64_t current_view = 0;
  bool have_view = false;
  bool view_counted = false;
  // Fired fallbacks of the current view are disjoint and processed in
  // ascending pre-order, so containment only ever involves the latest.
  size_t fallback_exit = 0;
  size_t fallback_enter = 0;
  bool have_fallback = false;
  for (const MatchEvent& event : events) {
    if (!have_view || event.view_id != current_view) {
      current_view = event.view_id;
      have_view = true;
      view_counted = false;
      have_fallback = false;
    }
    if (blocked(event.enter, event.exit)) continue;
    if (have_fallback && event.enter >= fallback_enter &&
        event.enter < fallback_exit) {
      continue;  // inside a subtree the oracle stopped recursing into
    }
    if (!catalog_->HasTable(event.table_name)) {
      // Matched, but the backing table is gone: count the degradation
      // (see GlobalRobustness()) and keep the base-table subtree.
      GlobalRobustness().RecordRewriteFallback();
      have_fallback = true;
      fallback_enter = event.enter;
      fallback_exit = event.exit;
      continue;
    }
    accepted.emplace(event.enter, event.exit);
    accepted_table.emplace(event.enter, event.table_name);
    if (!view_counted) {
      view_counted = true;
      if (num_substitutions) ++*num_substitutions;
      if (used_view_ids) used_view_ids->push_back(event.view_id);
    }
  }

  if (accepted.empty()) return plan;

  // Pass 3: one reconstruction applying every accepted substitution.
  // Accepted intervals are disjoint, so each replacement is built from
  // the ORIGINAL subtree — the same input BuildReplacement sees in the
  // sequential loop. Subtrees without an accepted substitution are
  // reused as-is (shared_ptr), identical to the oracle's no-change
  // short-circuit.
  std::function<Result<PlanNodePtr>(size_t)> rebuild =
      [&](size_t pos) -> Result<PlanNodePtr> {
    const IndexedNode& info = nodes[pos];
    auto acc = accepted_table.find(pos);
    if (acc != accepted_table.end()) {
      return BuildReplacement(*info.node, acc->second);
    }
    auto inside = accepted.lower_bound(pos);
    if (inside == accepted.end() || inside->first >= info.exit) {
      return info.node_ptr;  // nothing accepted in this subtree
    }
    std::vector<PlanNodePtr> new_children;
    new_children.reserve(info.child_pos.size());
    for (size_t child : info.child_pos) {
      AV_ASSIGN_OR_RETURN(PlanNodePtr rebuilt, rebuild(child));
      new_children.push_back(std::move(rebuilt));
    }
    return RebuildWithChildren(*info.node, std::move(new_children));
  };
  return rebuild(0);
}

Result<ServingRewrite> Rewriter::RewriteServing(
    const PlanNodePtr& plan, MaterializedViewStore* store) const {
  if (!plan) return Status::InvalidArgument("null plan");
  if (store == nullptr) return Status::InvalidArgument("null store");
  RewriteCache& cache = store->rewrite_cache();
  const std::string key = CanonicalKey(*plan);
  const uint64_t generation = store->current_generation();

  RewriteCache::CachedRewrite cached;
  if (cache.Lookup(key, generation, &cached)) {
    Result<ViewSetSnapshot> pins = store->PinViews(cached.view_ids);
    if (pins.ok()) {
      GlobalRewriteCache().RecordHit();
      ServingRewrite out;
      out.plan = std::move(cached.plan);
      out.num_substitutions = cached.num_substitutions;
      out.pins = std::move(pins).value();
      out.cache_hit = true;
      return out;
    }
    // A cached view was evicted within this generation: heal the entry
    // and fall through to a fresh walk.
    GlobalRewriteCache().RecordPinFailure();
    cache.Erase(key, generation);
  }
  GlobalRewriteCache().RecordMiss();

  // Indexed walk, then pin exactly the substituted views. A view can be
  // evicted between the probe and the pin; retry the walk (the index no
  // longer lists it) a few times before conceding to the oracle path.
  constexpr int kMaxIndexedAttempts = 3;
  for (int attempt = 0; attempt < kMaxIndexedAttempts; ++attempt) {
    const uint64_t walk_generation = store->current_generation();
    size_t num_substitutions = 0;
    std::vector<int64_t> used_view_ids;
    AV_ASSIGN_OR_RETURN(PlanNodePtr rewritten,
                        RewriteAllIndexed(plan, store->view_index(),
                                          &num_substitutions, &used_view_ids));
    Result<ViewSetSnapshot> pins = store->PinViews(used_view_ids);
    if (!pins.ok()) continue;
    // Cache under the generation the walk ran against; entries from a
    // generation that swapped mid-walk are unreachable by construction
    // (lookups use the current generation) and swept by CommitSwap.
    RewriteCache::CachedRewrite entry;
    entry.plan = rewritten;
    entry.num_substitutions = num_substitutions;
    entry.view_ids = used_view_ids;
    cache.Insert(key, walk_generation, std::move(entry));
    ServingRewrite out;
    out.plan = std::move(rewritten);
    out.num_substitutions = num_substitutions;
    out.pins = std::move(pins).value();
    out.cache_hit = false;
    return out;
  }

  // The store is churning faster than we can pin: degrade to the
  // sequential oracle under a full PinLive snapshot, which cannot lose
  // a pin race (views are pinned before the walk ever sees them).
  ViewSetSnapshot snapshot = store->PinLive();
  size_t num_substitutions = 0;
  AV_ASSIGN_OR_RETURN(
      PlanNodePtr rewritten,
      RewriteAll(plan, snapshot.views(), &num_substitutions));
  ServingRewrite out;
  out.plan = std::move(rewritten);
  out.num_substitutions = num_substitutions;
  out.pins = std::move(snapshot);
  out.cache_hit = false;
  return out;
}

Result<PlanNodePtr> Rewriter::BuildReplacement(
    const PlanNode& original, const std::string& view_table) const {
  AV_ASSIGN_OR_RETURN(PlanNodePtr scan,
                      PlanNode::MakeScan(*catalog_, view_table));
  // Map the original subtree's output columns onto the view's columns by
  // name (canonical equivalence guarantees the same named column set).
  // The name -> index map keeps wide schemas linear; on duplicate names
  // the first occurrence wins, matching the nested scan this replaced.
  std::unordered_map<std::string, size_t> scan_index;
  scan_index.reserve(scan->output().size());
  for (size_t j = 0; j < scan->output().size(); ++j) {
    scan_index.try_emplace(scan->output()[j].name, j);
  }
  bool identity = scan->output().size() == original.output().size();
  std::vector<ProjectItem> items;
  for (size_t i = 0; i < original.output().size(); ++i) {
    const auto& want = original.output()[i];
    auto found = scan_index.find(want.name);
    if (found == scan_index.end()) {
      return Status::Internal(
          StrFormat("view %s lacks column %s required by the subquery",
                    view_table.c_str(), want.name.c_str()));
    }
    const size_t j = found->second;
    if (j != i) identity = false;
    items.push_back(
        {Expr::Column(j, want.name, scan->output()[j].type), want.name});
  }
  if (identity) return scan;
  return PlanNode::MakeProject(std::move(scan), std::move(items));
}

Result<PlanNodePtr> Rewriter::RewriteNode(const PlanNodePtr& node,
                                          const MaterializedView& view,
                                          bool* changed) const {
  if (CanonicalKey(*node) == view.canonical_key) {
    if (!catalog_->HasTable(view.table_name)) {
      // The view was evicted/dropped between the match decision and this
      // rewrite: keep the base-table subtree so the query still answers
      // correctly, and count the degradation (see GlobalRobustness()).
      GlobalRobustness().RecordRewriteFallback();
      return node;  // *changed stays false
    }
    *changed = true;
    return BuildReplacement(*node, view.table_name);
  }
  // Recurse into children; rebuild this node if any child changed.
  std::vector<PlanNodePtr> new_children;
  bool any = false;
  for (const auto& child : node->children()) {
    bool child_changed = false;
    AV_ASSIGN_OR_RETURN(PlanNodePtr rewritten,
                        RewriteNode(child, view, &child_changed));
    any |= child_changed;
    new_children.push_back(std::move(rewritten));
  }
  if (!any) return node;
  *changed = true;
  return RebuildWithChildren(*node, std::move(new_children));
}

}  // namespace autoview
