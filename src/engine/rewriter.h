#pragma once

#include <vector>

#include "engine/view_store.h"
#include "plan/plan.h"
#include "util/status.h"

namespace autoview {

/// \brief Rewrites query plans to scan materialized views instead of
/// recomputing their subqueries.
///
/// A subtree is replaced when it is semantically equivalent (canonical
/// key match) to a view's plan. The replacement is a TableScan of the
/// view's backing table, plus a Project that restores the subtree's
/// exact output column order/names so all parent expressions stay valid.
class Rewriter {
 public:
  /// `catalog` must contain the views' backing tables.
  explicit Rewriter(const Catalog* catalog) : catalog_(catalog) {}

  /// Rewrites `plan` with a single view. `*changed` reports whether any
  /// substitution happened (it is set to false otherwise). A view whose
  /// backing table has been concurrently evicted/dropped is skipped —
  /// the matched subtree keeps its base-table form and the fallback is
  /// counted in GlobalRobustness() — so rewriting never produces a plan
  /// that scans a missing table. Callers on concurrent paths should
  /// still pin the views (MaterializedViewStore::PinLive) so matched
  /// descriptors stay readable.
  Result<PlanNodePtr> Rewrite(const PlanNodePtr& plan,
                              const MaterializedView& view,
                              bool* changed) const;

  /// Applies several views (already chosen to be non-overlapping by the
  /// selector) in order. Substitutions by an earlier view hide the
  /// subtrees an overlapping later view would have matched.
  Result<PlanNodePtr> RewriteAll(
      const PlanNodePtr& plan,
      const std::vector<const MaterializedView*>& views,
      size_t* num_substitutions) const;

 private:
  Result<PlanNodePtr> RewriteNode(const PlanNodePtr& node,
                                  const MaterializedView& view,
                                  bool* changed) const;

  /// Builds Scan(view table) [+ Project] matching `original`'s output.
  Result<PlanNodePtr> BuildReplacement(const PlanNode& original,
                                       const MaterializedView& view) const;

  const Catalog* catalog_;
};

}  // namespace autoview
