#pragma once

#include <cstdint>
#include <vector>

#include "engine/view_index.h"
#include "engine/view_store.h"
#include "plan/plan.h"
#include "util/status.h"

namespace autoview {

/// \brief One serving-path rewrite: the output plan, how many distinct
/// views it substituted, an RAII pin over exactly those views (so their
/// backing tables outlive execution), and whether the rewrite cache
/// served it.
struct ServingRewrite {
  PlanNodePtr plan;
  size_t num_substitutions = 0;
  ViewSetSnapshot pins;
  bool cache_hit = false;
};

/// \brief Rewrites query plans to scan materialized views instead of
/// recomputing their subqueries.
///
/// A subtree is replaced when it is semantically equivalent (canonical
/// key match) to a view's plan. The replacement is a TableScan of the
/// view's backing table, plus a Project that restores the subtree's
/// exact output column order/names so all parent expressions stay valid.
///
/// Two equivalent implementations coexist deliberately:
///   * RewriteAll — the original per-view sequential loop (one plan walk
///     per view, CanonicalKey recomputed at every node). O(plan × views)
///     but trivially auditable; kept as the bit-identity oracle.
///   * RewriteAllIndexed — a single bottom-up walk that computes each
///     node's canonical key exactly once (CanonicalKeyWithChildren),
///     probes a ViewIndex, and replays the oracle's match order
///     (ascending view id, pre-order within a view) with interval
///     blocking. O(plan + matches); produces the *identical* plan —
///     tests/rewrite_fast_path_test.cc EXPECT_EQs the two across
///     seeds × view counts × generations.
class Rewriter {
 public:
  /// `catalog` must contain the views' backing tables.
  explicit Rewriter(const Catalog* catalog) : catalog_(catalog) {}

  /// Rewrites `plan` with a single view. `*changed` reports whether any
  /// substitution happened (it is set to false otherwise). A view whose
  /// backing table has been concurrently evicted/dropped is skipped —
  /// the matched subtree keeps its base-table form and the fallback is
  /// counted in GlobalRobustness() — so rewriting never produces a plan
  /// that scans a missing table. Callers on concurrent paths should
  /// still pin the views (MaterializedViewStore::PinLive) so matched
  /// descriptors stay readable.
  Result<PlanNodePtr> Rewrite(const PlanNodePtr& plan,
                              const MaterializedView& view,
                              bool* changed) const;

  /// Applies several views (already chosen to be non-overlapping by the
  /// selector) in order. Substitutions by an earlier view hide the
  /// subtrees an overlapping later view would have matched.
  Result<PlanNodePtr> RewriteAll(
      const PlanNodePtr& plan,
      const std::vector<const MaterializedView*>& views,
      size_t* num_substitutions) const;

  /// Single-walk equivalent of RewriteAll over the views indexed in
  /// `index` (which must index exactly the views RewriteAll would be
  /// given, in ascending-id order — MaterializedViewStore maintains
  /// this). `*num_substitutions` (optional) gets the distinct-views-
  /// substituted count RewriteAll reports; `*used_view_ids` (optional)
  /// gets those views' ids ascending, so callers can pin exactly the
  /// views the plan scans before executing it.
  ///
  /// Contract: views indexed here are defined over base-table plans
  /// (the store only materializes workload subqueries), so a
  /// substitution can never create a new match — which is what lets
  /// one walk over the *original* plan replay the sequential loop's
  /// behavior on its partially-rewritten intermediates exactly.
  Result<PlanNodePtr> RewriteAllIndexed(
      const PlanNodePtr& plan, const ViewIndex& index,
      size_t* num_substitutions,
      std::vector<int64_t>* used_view_ids) const;

  /// The full serving fast path against `store`: rewrite-cache lookup
  /// keyed by (root canonical key, store generation) — a hit re-pins
  /// the cached views and returns immediately; a miss runs
  /// RewriteAllIndexed against the store's view index, pins the
  /// substituted views (retrying the walk when a view vanished in
  /// between), caches the result, and returns it. If pinning keeps
  /// failing (store churning faster than we can pin), falls back to the
  /// sequential oracle under a full PinLive snapshot — the fast path
  /// degrades to the slow path, never to an error. Hit/miss/pin-failure
  /// counters land in GlobalRewriteCache().
  Result<ServingRewrite> RewriteServing(const PlanNodePtr& plan,
                                        MaterializedViewStore* store) const;

 private:
  Result<PlanNodePtr> RewriteNode(const PlanNodePtr& node,
                                  const MaterializedView& view,
                                  bool* changed) const;

  /// Builds Scan(view backing table) [+ Project] matching `original`'s
  /// output.
  Result<PlanNodePtr> BuildReplacement(const PlanNode& original,
                                       const std::string& view_table) const;

  const Catalog* catalog_;
};

}  // namespace autoview
