#include "engine/table.h"

#include <algorithm>

#include "util/strings.h"

namespace autoview {

uint64_t Table::ByteSize() const {
  uint64_t total = 0;
  for (const auto& row : rows) {
    for (const auto& cell : row) total += cell.ByteSize();
  }
  return total;
}

std::string Table::ToString(size_t max_rows) const {
  std::vector<std::string> header;
  for (const auto& col : columns) {
    header.push_back(col.name + ":" + ColumnTypeName(col.type));
  }
  std::string out = Join(header, " | ") + "\n";
  for (size_t i = 0; i < rows.size() && i < max_rows; ++i) {
    std::vector<std::string> cells;
    for (const auto& cell : rows[i]) cells.push_back(cell.ToString());
    out += Join(cells, " | ") + "\n";
  }
  if (rows.size() > max_rows) {
    out += StrFormat("... (%zu rows total)\n", rows.size());
  }
  return out;
}

bool TablesEqualUnordered(const Table& a, const Table& b) {
  if (a.columns.size() != b.columns.size()) return false;
  for (size_t i = 0; i < a.columns.size(); ++i) {
    if (a.columns[i].name != b.columns[i].name) return false;
  }
  if (a.rows.size() != b.rows.size()) return false;
  auto key = [](const Row& row) {
    std::string k;
    for (const auto& cell : row) {
      k += cell.ToString();
      k += '\x1f';
    }
    return k;
  };
  std::vector<std::string> ka, kb;
  ka.reserve(a.rows.size());
  kb.reserve(b.rows.size());
  for (const auto& row : a.rows) ka.push_back(key(row));
  for (const auto& row : b.rows) kb.push_back(key(row));
  std::sort(ka.begin(), ka.end());
  std::sort(kb.begin(), kb.end());
  return ka == kb;
}

}  // namespace autoview
