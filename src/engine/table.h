#pragma once

#include <cstdint>
#include <vector>

#include "catalog/value.h"
#include "plan/plan.h"

namespace autoview {

/// \brief One materialized row.
using Row = std::vector<Value>;

/// \brief An in-memory table: a header of named/typed columns plus rows.
///
/// Used both for base relations loaded into a Database and for operator
/// results / materialized views produced by the Executor.
struct Table {
  std::vector<OutputColumn> columns;
  std::vector<Row> rows;

  size_t num_rows() const { return rows.size(); }
  size_t num_columns() const { return columns.size(); }

  /// Approximate in-memory footprint of all cell payloads.
  uint64_t ByteSize() const;

  /// Multi-line rendering (header + up to `max_rows` rows) for debugging.
  std::string ToString(size_t max_rows = 20) const;
};

/// Bag (multiset) equality ignoring row order; column names/types must
/// match positionally. Used by integration tests to verify rewrites.
bool TablesEqualUnordered(const Table& a, const Table& b);

}  // namespace autoview
