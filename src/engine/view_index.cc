#include "engine/view_index.h"

#include <algorithm>
#include <functional>

#include "engine/view_store.h"
#include "util/logging.h"

namespace autoview {

ViewIndex::ViewIndex(size_t num_shards)
    : shards_(num_shards == 0 ? 1 : num_shards) {}

ViewIndex::Shard& ViewIndex::ShardFor(const std::string& canonical_key) const {
  size_t h = std::hash<std::string>{}(canonical_key);
  return shards_[h % shards_.size()];
}

void ViewIndex::Insert(const MaterializedView& view) {
  InsertKeyed(view.canonical_key, view.id, view.table_name);
}

void ViewIndex::InsertKeyed(const std::string& canonical_key, int64_t id,
                            const std::string& table_name) {
  Shard& shard = ShardFor(canonical_key);
  MutexLock lock(shard.mu);
  std::vector<Candidate>& bucket = shard.buckets[canonical_key];
  // Keep the bucket sorted ascending by id so probes replay the exact
  // order the sequential per-view oracle visits views in (PinLive lists
  // views ascending by id).
  auto it = std::lower_bound(
      bucket.begin(), bucket.end(), id,
      [](const Candidate& c, int64_t want) { return c.id < want; });
  if (it != bucket.end() && it->id == id) {
    it->table_name = table_name;  // idempotent re-install
    return;
  }
  bucket.insert(it, Candidate{id, table_name});
}

void ViewIndex::Erase(const std::string& canonical_key, int64_t id) {
  Shard& shard = ShardFor(canonical_key);
  MutexLock lock(shard.mu);
  auto bucket_it = shard.buckets.find(canonical_key);
  if (bucket_it == shard.buckets.end()) return;
  std::vector<Candidate>& bucket = bucket_it->second;
  auto it = std::lower_bound(
      bucket.begin(), bucket.end(), id,
      [](const Candidate& c, int64_t want) { return c.id < want; });
  if (it == bucket.end() || it->id != id) return;
  bucket.erase(it);
  if (bucket.empty()) shard.buckets.erase(bucket_it);
}

void ViewIndex::Clear() {
  for (Shard& shard : shards_) {
    MutexLock lock(shard.mu);
    shard.buckets.clear();
  }
}

bool ViewIndex::Probe(const std::string& canonical_key,
                      std::vector<Candidate>* out) const {
  AV_CHECK(out != nullptr);
  out->clear();
  Shard& shard = ShardFor(canonical_key);
  MutexLock lock(shard.mu);
  auto it = shard.buckets.find(canonical_key);
  if (it == shard.buckets.end()) return false;
  *out = it->second;
  return !out->empty();
}

size_t ViewIndex::size() const {
  size_t total = 0;
  for (Shard& shard : shards_) {
    MutexLock lock(shard.mu);
    for (const auto& [key, bucket] : shard.buckets) {
      total += bucket.size();
    }
  }
  return total;
}

}  // namespace autoview
