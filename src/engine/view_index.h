#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/annotations.h"

namespace autoview {

struct MaterializedView;

/// \brief Sharded hash index from canonical plan key to the candidate
/// materialized views for that key — the serving-path replacement for
/// scanning every selected view per rewrite.
///
/// `Rewriter::RewriteAllIndexed` walks a plan once bottom-up, computes
/// each node's canonical key once, and probes this index, turning
/// RewriteAll from O(plan nodes × |views|) canonical-key recomputation
/// into O(plan nodes) probes. MaterializedViewStore maintains its index
/// across installs, evictions, drops, and generation swaps (insert on
/// install, erase on doom), so the index always reflects the live
/// (non-doomed) view set.
///
/// Probes copy value types only (id + backing table name) — no pointer
/// into store-owned memory ever escapes a shard lock, so a concurrent
/// physical drop can never dangle a probe result. Callers that go on to
/// *execute* a rewritten plan must still pin the substituted views
/// (MaterializedViewStore::PinViews) before executing, because the
/// backing table can be evicted between the probe and the scan.
///
/// Thread-safe; sharded so concurrent serving probes do not contend on
/// one lock (and never on the store mutex). Lock order: a store that
/// mutates the index does so while holding its own mutex, so the
/// acquired-before order is store mutex -> shard mutex; probes take only
/// the shard mutex and nothing is ever acquired under it.
class ViewIndex {
 public:
  /// One candidate view for a canonical key: everything a rewrite needs,
  /// by value. Candidates for a key are kept in ascending id order —
  /// the same order PinLive() lists views — which makes the indexed
  /// rewrite bit-identical to the sequential per-view oracle loop.
  struct Candidate {
    int64_t id = 0;
    std::string table_name;
  };

  explicit ViewIndex(size_t num_shards = kDefaultShards);

  ViewIndex(const ViewIndex&) = delete;
  ViewIndex& operator=(const ViewIndex&) = delete;

  /// Indexes `view` under its canonical key (idempotent per id).
  void Insert(const MaterializedView& view);

  /// As Insert, for callers that already pulled the fields apart.
  void InsertKeyed(const std::string& canonical_key, int64_t id,
                   const std::string& table_name);

  /// Removes view `id` from `canonical_key`'s candidate list (no-op when
  /// absent); drops the key's bucket when it empties.
  void Erase(const std::string& canonical_key, int64_t id);

  /// Drops every entry.
  void Clear();

  /// Copies the candidates for `canonical_key` (ascending id) into
  /// `*out`, clearing it first. Returns true when any candidate exists.
  bool Probe(const std::string& canonical_key,
             std::vector<Candidate>* out) const;

  /// Total candidate entries across all shards (diagnostics/tests).
  size_t size() const;

  static constexpr size_t kDefaultShards = 16;

 private:
  struct Shard {
    mutable Mutex mu;
    std::unordered_map<std::string, std::vector<Candidate>> buckets
        AV_GUARDED_BY(mu);
  };

  Shard& ShardFor(const std::string& canonical_key) const;

  // Shard array is sized once at construction and never reallocated, so
  // the Shard objects (and their mutexes) have stable addresses.
  mutable std::vector<Shard> shards_;
};

}  // namespace autoview
