#include "engine/view_store.h"

#include "plan/canonical.h"
#include "util/failpoint.h"

namespace autoview {

Result<const MaterializedView*> MaterializedViewStore::Materialize(
    PlanNodePtr subquery, const Executor& executor) {
  AV_FAILPOINT_STATUS("viewstore.materialize");
  if (!subquery) return Status::InvalidArgument("null subquery");
  std::string key = CanonicalKey(*subquery);
  MutexLock lock(mu_);
  if (auto it = by_key_.find(key); it != by_key_.end()) {
    return Status::AlreadyExists("view already materialized for subquery");
  }
  AV_ASSIGN_OR_RETURN(ExecResult result, executor.Execute(*subquery));
  MaterializedView view;
  view.id = next_id_++;
  view.table_name = "__mv_" + std::to_string(view.id);
  view.plan = std::move(subquery);
  view.canonical_key = std::move(key);
  view.byte_size = result.table.ByteSize();
  view.build_cost = result.cost;
  AV_RETURN_NOT_OK(
      db_->AddMaterialized(view.table_name, std::move(result.table)));
  auto [it, _] = by_id_.emplace(view.id, std::move(view));
  by_key_.emplace(it->second.canonical_key, it->first);
  return &it->second;
}

const MaterializedView* MaterializedViewStore::FindByKey(
    const std::string& canonical_key) const {
  MutexLock lock(mu_);
  auto it = by_key_.find(canonical_key);
  return it == by_key_.end() ? nullptr : &by_id_.at(it->second);
}

const MaterializedView* MaterializedViewStore::FindById(int64_t id) const {
  MutexLock lock(mu_);
  auto it = by_id_.find(id);
  return it == by_id_.end() ? nullptr : &it->second;
}

Status MaterializedViewStore::DropLocked(int64_t id) {
  auto it = by_id_.find(id);
  if (it == by_id_.end()) return Status::NotFound("no such view");
  AV_RETURN_NOT_OK(db_->DropTable(it->second.table_name));
  by_key_.erase(it->second.canonical_key);
  by_id_.erase(it);
  return Status::OK();
}

Status MaterializedViewStore::Drop(int64_t id) {
  MutexLock lock(mu_);
  return DropLocked(id);
}

Status MaterializedViewStore::Clear() {
  MutexLock lock(mu_);
  while (!by_id_.empty()) {
    AV_RETURN_NOT_OK(DropLocked(by_id_.begin()->first));
  }
  return Status::OK();
}

double MaterializedViewStore::TotalOverhead(const Pricing& pricing) const {
  MutexLock lock(mu_);
  double total = 0.0;
  for (const auto& [_, view] : by_id_) {
    total += pricing.StorageFee(view.byte_size) +
             pricing.QueryCost(view.build_cost);
  }
  return total;
}

}  // namespace autoview
