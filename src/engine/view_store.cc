#include "engine/view_store.h"

#include <algorithm>
#include <cstdlib>
#include <utility>

#include "plan/canonical.h"
#include "util/failpoint.h"
#include "util/logging.h"
#include "util/metrics.h"
#include "util/parse.h"
#include "util/strings.h"
#include "util/thread_pool.h"

namespace autoview {

Result<ViewStoreOptions> ViewStoreOptions::FromEnvStrict() {
  ViewStoreOptions options;
  if (const char* raw = std::getenv("AUTOVIEW_VIEW_BUDGET_BYTES")) {
    if (Status s = ParseUint64(raw, &options.budget_bytes); !s.ok()) {
      return Status::ParseError("AUTOVIEW_VIEW_BUDGET_BYTES: " + s.message());
    }
  }
  return options;
}

ViewStoreOptions ViewStoreOptions::FromEnv() {
  Result<ViewStoreOptions> strict = FromEnvStrict();
  if (strict.ok()) return strict.value();
  // Never silently: the old strtoull path wrapped "-1" to ULLONG_MAX
  // (effectively unbounded) without a diagnostic. Strict parsing turns
  // every malformed value into this warning + explicit unlimited.
  AV_LOG(Warning) << strict.status().ToString()
                  << " (store stays unlimited)";
  return ViewStoreOptions();
}

ViewSetSnapshot& ViewSetSnapshot::operator=(ViewSetSnapshot&& other) noexcept {
  if (this != &other) {
    Release();
    store_ = other.store_;
    generation_ = other.generation_;
    ids_ = std::move(other.ids_);
    views_ = std::move(other.views_);
    other.store_ = nullptr;
    other.ids_.clear();
    other.views_.clear();
  }
  return *this;
}

void ViewSetSnapshot::Release() {
  if (store_ != nullptr) store_->UnpinAll(ids_);
  store_ = nullptr;
  ids_.clear();
  views_.clear();
}

MaterializedViewStore::MaterializedViewStore(Database* db,
                                             ViewStoreOptions options)
    : db_(db), options_(std::move(options)) {
  if (!options_.wal_path.empty()) {
    log_ = std::make_unique<ViewStateLog>(options_.wal_path);
  }
}

ViewLogRecord MaterializedViewStore::MaterializeRecord(
    const MaterializedView& view) {
  ViewLogRecord record;
  record.kind = ViewLogRecord::Kind::kMaterialize;
  record.id = view.id;
  record.generation = view.generation;
  record.byte_size = view.byte_size;
  record.utility = view.utility;
  record.canonical_key = view.canonical_key;
  return record;
}

Result<const MaterializedView*> MaterializedViewStore::Materialize(
    PlanNodePtr subquery, const Executor& executor, MaterializeOptions mopts) {
  AV_FAILPOINT_STATUS("viewstore.materialize");
  if (!subquery) return Status::InvalidArgument("null subquery");
  std::string key = CanonicalKey(*subquery);
  {
    MutexLock lock(mu_);
    if (auto it = by_key_.find(key); it != by_key_.end()) {
      Entry& entry = by_id_.at(it->second);
      if (mopts.generation != 0 &&
          mopts.generation != entry.view.generation) {
        // A staged re-selection keeps this survivor: adopt (re-tag) it
        // under the new generation with its fresh solver score instead
        // of rebuilding — the backing table is already correct.
        MaterializedView retagged = entry.view;
        retagged.generation = mopts.generation;
        retagged.utility = mopts.utility;
        // avcheck:allow(blocking-under-lock): WAL append under mu_ is
        // the commit point — the record and the in-memory re-tag must
        // be atomic w.r.t. concurrent readers and crash recovery.
        if (log_) AV_RETURN_NOT_OK(log_->Append(MaterializeRecord(retagged)));
        entry.view.generation = retagged.generation;
        entry.view.utility = retagged.utility;
        return &entry.view;
      }
      return Status::AlreadyExists("view already materialized for subquery");
    }
    if (building_.count(key) != 0) {
      return Status::AlreadyExists("view build already in flight");
    }
    building_.insert(key);
  }
  // The build — the expensive part — runs with the registry unlocked, so
  // concurrent lookups, drops, and other builds proceed in parallel.
  // The key reservation above keeps duplicate builds out meanwhile.
  Result<ExecResult> built = executor.Execute(*subquery);
  Result<const MaterializedView*> installed =
      Status::Internal("unreachable: install result never set");
  {
    MutexLock lock(mu_);
    building_.erase(key);
    if (!built.ok()) return built.status();
    installed = InstallLocked(std::move(subquery), std::move(key),
                              std::move(built).value(), mopts);
  }
  // Outside the mutex: with background eviction on, an over-budget
  // install flagged sweep_needed_ and the sweep task itself locks mu_
  // (and may run inline when Submit is called from a pool worker).
  MaybeScheduleSweep();
  return installed;
}

Result<const MaterializedView*> MaterializedViewStore::InstallLocked(
    PlanNodePtr plan, std::string key, ExecResult result,
    const MaterializeOptions& mopts) {
  const uint64_t bytes = result.table.ByteSize();
  if (options_.background_eviction && options_.budget_bytes > 0) {
    // Admission path stays eviction-free: oversized views are still
    // rejected, everything else is admitted immediately and the sweep
    // worker brings the store back under the watermark.
    if (bytes > options_.budget_bytes) {
      GlobalViewStore().RecordAdmissionRejected();
      return Status::ResourceExhausted(
          StrFormat("view of %llu bytes exceeds the whole budget (%llu)",
                    static_cast<unsigned long long>(bytes),
                    static_cast<unsigned long long>(options_.budget_bytes)));
    }
    if (bytes_used_ + bytes > options_.budget_bytes) {
      GlobalViewStore().RecordDeferredEviction();
      sweep_needed_ = true;
    }
  } else {
    AV_RETURN_NOT_OK(EvictToFitLocked(bytes));
  }
  MaterializedView view;
  view.id = next_id_++;
  view.table_name = "__mv_" + std::to_string(view.id);
  view.plan = std::move(plan);
  view.canonical_key = std::move(key);
  view.byte_size = bytes;
  view.build_cost = result.cost;
  view.utility = mopts.utility;
  view.generation = mopts.generation != 0 ? mopts.generation : generation_;
  AV_RETURN_NOT_OK(
      db_->AddMaterialized(view.table_name, std::move(result.table)));
  if (log_) {
    // The WAL append is the commit point; a failed append rolls the
    // table back so memory and log agree on the committed set.
    // avcheck:allow(blocking-under-lock): append-under-mu_ is that
    // commit point — record and in-memory install must be atomic.
    if (Status s = log_->Append(MaterializeRecord(view)); !s.ok()) {
      Status dropped = db_->DropTable(view.table_name);
      if (!dropped.ok()) {
        AV_LOG(Warning) << "rollback drop of " << view.table_name
                        << " failed: " << dropped.ToString();
      }
      return s;
    }
  }
  bytes_used_ += view.byte_size;
  auto [it, inserted] = by_id_.emplace(view.id, Entry{std::move(view), 0, false});
  by_key_.emplace(it->second.view.canonical_key, it->first);
  (void)inserted;
  index_.Insert(it->second.view);
  return &it->second.view;
}

Status MaterializedViewStore::EvictToFitLocked(uint64_t needed) {
  if (options_.budget_bytes == 0) return Status::OK();
  if (needed > options_.budget_bytes) {
    GlobalViewStore().RecordAdmissionRejected();
    return Status::ResourceExhausted(
        StrFormat("view of %llu bytes exceeds the whole budget (%llu)",
                  static_cast<unsigned long long>(needed),
                  static_cast<unsigned long long>(options_.budget_bytes)));
  }
  while (bytes_used_ + needed > options_.budget_bytes) {
    auto victim = PickVictimLocked();
    if (victim == by_id_.end()) {
      GlobalViewStore().RecordAdmissionRejected();
      return Status::ResourceExhausted(
          "view budget full and every resident view is pinned");
    }
    const uint64_t victim_bytes = victim->second.view.byte_size;
    AV_RETURN_NOT_OK(DoomLocked(victim));
    GlobalViewStore().RecordEviction(victim_bytes);
  }
  return Status::OK();
}

MaterializedViewStore::EntryMap::iterator
MaterializedViewStore::PickVictimLocked() {
  // Victim: lowest utility-per-byte among unpinned live views; ties
  // break toward the smallest id (the map iterates ascending id and
  // only a strictly lower score displaces the incumbent), so eviction
  // order is fully deterministic.
  auto victim = by_id_.end();
  double victim_score = 0.0;
  for (auto it = by_id_.begin(); it != by_id_.end(); ++it) {
    const Entry& entry = it->second;
    if (entry.doomed || entry.pins > 0) continue;
    const double score =
        entry.view.utility /
        static_cast<double>(std::max<uint64_t>(1, entry.view.byte_size));
    if (victim == by_id_.end() || score < victim_score) {
      victim = it;
      victim_score = score;
    }
  }
  return victim;
}

size_t MaterializedViewStore::SweepToWatermarkLocked() {
  if (options_.budget_bytes == 0) return 0;
  const double watermark =
      options_.evict_watermark > 0.0 && options_.evict_watermark <= 1.0
          ? options_.evict_watermark
          : 1.0;
  const uint64_t target = static_cast<uint64_t>(
      watermark * static_cast<double>(options_.budget_bytes));
  size_t evicted = 0;
  while (bytes_used_ > target) {
    auto victim = PickVictimLocked();
    // Everything left is pinned (or doomed awaiting unpin): stop
    // without error — the next admission re-flags the sweep.
    if (victim == by_id_.end()) break;
    const uint64_t victim_bytes = victim->second.view.byte_size;
    if (Status s = DoomLocked(victim); !s.ok()) {
      AV_LOG(Warning) << "background eviction failed: " << s.ToString();
      break;
    }
    GlobalViewStore().RecordEviction(victim_bytes);
    ++evicted;
  }
  return evicted;
}

size_t MaterializedViewStore::SweepNow() {
  MutexLock lock(mu_);
  return SweepToWatermarkLocked();
}

void MaterializedViewStore::MaybeScheduleSweep() {
  {
    MutexLock lock(mu_);
    if (!sweep_needed_ || sweep_scheduled_) return;
    sweep_needed_ = false;
    sweep_scheduled_ = true;
    ++async_inflight_;  // WaitIdle() drains pending sweeps too
  }
  ThreadPool& pool = options_.pool != nullptr ? *options_.pool : DefaultPool();
  pool.Submit([this] {
    MutexLock lock(mu_);
    SweepToWatermarkLocked();
    sweep_scheduled_ = false;
    if (--async_inflight_ == 0) idle_cv_.NotifyAll();
  });
}

Status MaterializedViewStore::DoomLocked(EntryMap::iterator it) {
  Entry& entry = it->second;
  if (log_) {
    ViewLogRecord record;
    record.kind = ViewLogRecord::Kind::kDrop;
    record.id = entry.view.id;
    // avcheck:allow(blocking-under-lock): WAL append under mu_ is the
    // commit point — the drop record must land before the in-memory
    // erase becomes visible, or recovery resurrects the view.
    AV_RETURN_NOT_OK(log_->Append(record));
  }
  by_key_.erase(entry.view.canonical_key);
  index_.Erase(entry.view.canonical_key, entry.view.id);
  if (entry.pins > 0) {
    // Logically dropped now (committed above); the table and the byte
    // accounting survive until the last snapshot unpins it.
    entry.doomed = true;
    return Status::OK();
  }
  return PhysicalDropLocked(it);
}

Status MaterializedViewStore::PhysicalDropLocked(EntryMap::iterator it) {
  AV_RETURN_NOT_OK(db_->DropTable(it->second.view.table_name));
  bytes_used_ -= std::min(bytes_used_, it->second.view.byte_size);
  by_id_.erase(it);
  return Status::OK();
}

void MaterializedViewStore::UnpinAll(const std::vector<int64_t>& ids) {
  MutexLock lock(mu_);
  for (int64_t id : ids) {
    auto it = by_id_.find(id);
    if (it == by_id_.end()) continue;  // defensive; pins should pin
    Entry& entry = it->second;
    if (entry.pins > 0) --entry.pins;
    if (entry.pins == 0 && entry.doomed) {
      if (Status s = PhysicalDropLocked(it); !s.ok()) {
        AV_LOG(Warning) << "deferred view drop failed: " << s.ToString();
      }
    }
  }
}

ViewSetSnapshot MaterializedViewStore::PinLive() {
  MutexLock lock(mu_);
  ViewSetSnapshot snapshot;
  snapshot.store_ = this;
  snapshot.generation_ = generation_;
  for (auto& [id, entry] : by_id_) {
    if (entry.doomed) continue;
    ++entry.pins;
    snapshot.ids_.push_back(id);
    snapshot.views_.push_back(&entry.view);
  }
  return snapshot;
}

Result<ViewSetSnapshot> MaterializedViewStore::PinViews(
    const std::vector<int64_t>& ids) {
  MutexLock lock(mu_);
  // All-or-nothing: verify every id first so a partial failure never
  // leaks pins.
  for (int64_t id : ids) {
    auto it = by_id_.find(id);
    if (it == by_id_.end() || it->second.doomed) {
      return Status::NotFound(
          StrFormat("view %lld is no longer live",
                    static_cast<long long>(id)));
    }
  }
  ViewSetSnapshot snapshot;
  snapshot.store_ = this;
  snapshot.generation_ = generation_;
  for (int64_t id : ids) {
    Entry& entry = by_id_.find(id)->second;
    ++entry.pins;
    snapshot.ids_.push_back(id);
    snapshot.views_.push_back(&entry.view);
  }
  return snapshot;
}

std::future<Status> MaterializedViewStore::MaterializeAsync(
    PlanNodePtr subquery, const Executor& executor, MaterializeOptions mopts) {
  {
    MutexLock lock(mu_);
    ++async_inflight_;
  }
  ThreadPool& pool = options_.pool != nullptr ? *options_.pool : DefaultPool();
  const Executor* exec = &executor;
  return pool.Submit(
      [this, subquery = std::move(subquery), exec, mopts]() mutable -> Status {
        GlobalViewStore().RecordAsyncBuild();
        Result<const MaterializedView*> r =
            Materialize(std::move(subquery), *exec, mopts);
        MutexLock lock(mu_);
        if (--async_inflight_ == 0) idle_cv_.NotifyAll();
        return r.ok() ? Status::OK() : r.status();
      });
}

void MaterializedViewStore::WaitIdle() const {
  MutexLock lock(mu_);
  // avcheck:allow(blocking-under-lock): CondVar::Wait releases mu_
  // while parked; blocking until builds drain is this method's purpose.
  while (async_inflight_ > 0) idle_cv_.Wait(mu_);
}

const MaterializedView* MaterializedViewStore::FindByKey(
    const std::string& canonical_key) const {
  MutexLock lock(mu_);
  auto it = by_key_.find(canonical_key);
  return it == by_key_.end() ? nullptr : &by_id_.at(it->second).view;
}

const MaterializedView* MaterializedViewStore::FindById(int64_t id) const {
  MutexLock lock(mu_);
  auto it = by_id_.find(id);
  if (it == by_id_.end() || it->second.doomed) return nullptr;
  return &it->second.view;
}

Status MaterializedViewStore::Drop(int64_t id) {
  MutexLock lock(mu_);
  auto it = by_id_.find(id);
  if (it == by_id_.end() || it->second.doomed) {
    return Status::NotFound("no such view");
  }
  return DoomLocked(it);
}

Status MaterializedViewStore::Clear() {
  MutexLock lock(mu_);
  std::vector<int64_t> live;
  for (const auto& [id, entry] : by_id_) {
    if (!entry.doomed) live.push_back(id);
  }
  for (int64_t id : live) {
    AV_RETURN_NOT_OK(DoomLocked(by_id_.find(id)));
  }
  return Status::OK();
}

uint64_t MaterializedViewStore::BeginSwap() {
  MutexLock lock(mu_);
  staged_generation_ = std::max(staged_generation_, generation_) + 1;
  return staged_generation_;
}

Status MaterializedViewStore::CommitSwap(uint64_t generation) {
  {
    MutexLock lock(mu_);
    if (generation <= generation_) {
      return Status::InvalidArgument(
          "swap generation is not newer than current");
    }
    if (log_) {
      ViewLogRecord record;
      record.kind = ViewLogRecord::Kind::kCheckpoint;
      record.generation = generation;
      record.next_id = next_id_;
      // avcheck:allow(blocking-under-lock): WAL append under mu_ is the
      // commit point — the generation bump and its checkpoint record
      // must be atomic w.r.t. concurrent swaps and crash recovery.
      AV_RETURN_NOT_OK(log_->Append(record));
    }
    generation_ = generation;
    std::vector<int64_t> retired;
    for (const auto& [id, entry] : by_id_) {
      if (!entry.doomed && entry.view.generation < generation) {
        retired.push_back(id);
      }
    }
    for (int64_t id : retired) {
      AV_RETURN_NOT_OK(DoomLocked(by_id_.find(id)));
    }
  }
  // Outside mu_: every rewrite cached under an older generation is now
  // stale wholesale. Serving threads racing this sweep either looked up
  // the old generation (their pins keep retired views alive) or the new
  // one (a miss — the old entries are unreachable regardless of when
  // the sweep gets to them).
  rewrite_cache_.InvalidateBefore(generation);
  return Status::OK();
}

size_t MaterializedViewStore::size() const {
  MutexLock lock(mu_);
  size_t live = 0;
  for (const auto& [_, entry] : by_id_) {
    if (!entry.doomed) ++live;
  }
  return live;
}

uint64_t MaterializedViewStore::bytes_used() const {
  MutexLock lock(mu_);
  return bytes_used_;
}

uint64_t MaterializedViewStore::current_generation() const {
  MutexLock lock(mu_);
  return generation_;
}

double MaterializedViewStore::TotalOverhead(const Pricing& pricing) const {
  MutexLock lock(mu_);
  double total = 0.0;
  for (const auto& [_, entry] : by_id_) {
    if (entry.doomed) continue;
    total += pricing.StorageFee(entry.view.byte_size) +
             pricing.QueryCost(entry.view.build_cost);
  }
  return total;
}

Status MaterializedViewStore::Checkpoint() const {
  MutexLock lock(mu_);
  if (!log_) return Status::InvalidArgument("store has no WAL configured");
  std::vector<ViewLogRecord> records;
  ViewLogRecord header;
  header.kind = ViewLogRecord::Kind::kCheckpoint;
  header.generation = generation_;
  header.next_id = next_id_;
  records.push_back(header);
  for (const auto& [_, entry] : by_id_) {
    if (!entry.doomed) records.push_back(MaterializeRecord(entry.view));
  }
  // avcheck:allow(blocking-under-lock): the checkpoint must snapshot a
  // frozen entry map; writing it under mu_ is the whole point of the
  // stop-the-world compaction (builds are quiesced by the caller).
  return ViewStateLog::WriteCheckpoint(log_->path(), records);
}

Status MaterializedViewStore::RematerializeRecovered(
    const ViewLogRecord& record, PlanNodePtr plan, const Executor& executor) {
  AV_FAILPOINT_STATUS("viewstore.rematerialize");
  // Build outside the lock, like Materialize; recovery rebuilds can run
  // concurrently on the pool.
  Result<ExecResult> built = executor.Execute(*plan);
  if (!built.ok()) return built.status();
  ExecResult result = std::move(built).value();
  MutexLock lock(mu_);
  if (by_id_.count(record.id) != 0) {
    return Status::AlreadyExists("recovered view id already present");
  }
  MaterializedView view;
  view.id = record.id;
  view.table_name = "__mv_" + std::to_string(view.id);
  view.plan = std::move(plan);
  view.canonical_key = record.canonical_key;
  view.byte_size = result.table.ByteSize();
  view.build_cost = result.cost;
  view.utility = record.utility;
  view.generation = record.generation;
  // Recovered views still honour the budget; their committed scores
  // compete on the same utility-per-byte scale as fresh admissions.
  AV_RETURN_NOT_OK(EvictToFitLocked(view.byte_size));
  AV_RETURN_NOT_OK(
      db_->AddMaterialized(view.table_name, std::move(result.table)));
  bytes_used_ += view.byte_size;
  auto [it, inserted] = by_id_.emplace(view.id, Entry{std::move(view), 0, false});
  by_key_.emplace(it->second.view.canonical_key, it->first);
  (void)inserted;
  index_.Insert(it->second.view);
  GlobalViewStore().RecordRecoveredView();
  return Status::OK();
}

Result<RecoveryReport> MaterializedViewStore::Recover(
    const Executor& executor,
    const std::function<PlanNodePtr(const std::string&)>& resolve,
    bool background) {
  if (!log_) return Status::InvalidArgument("store has no WAL configured");
  RecoveryReport report;
  AV_ASSIGN_OR_RETURN(ViewStateLog::ReplayResult replay,
                      ViewStateLog::Replay(log_->path()));
  report.replayed_records = replay.records.size();
  report.torn_tail = replay.torn_tail;

  // Fold the record sequence into the committed state. MATERIALIZE
  // upserts by id (a re-tag is an upsert under a newer generation);
  // DROP removes; CHECKPOINT advances the current generation and — like
  // CommitSwap — retires every strictly older live view, completing a
  // swap the crash may have interrupted.
  uint64_t generation = 1;
  int64_t next_id = 1;
  std::map<int64_t, ViewLogRecord> committed;
  std::map<std::string, int64_t> committed_keys;
  for (const ViewLogRecord& record : replay.records) {
    switch (record.kind) {
      case ViewLogRecord::Kind::kMaterialize: {
        if (auto key_it = committed_keys.find(record.canonical_key);
            key_it != committed_keys.end() && key_it->second != record.id) {
          committed.erase(key_it->second);  // defensive: key superseded
        }
        committed[record.id] = record;
        committed_keys[record.canonical_key] = record.id;
        next_id = std::max(next_id, record.id + 1);
        break;
      }
      case ViewLogRecord::Kind::kDrop: {
        if (auto it = committed.find(record.id); it != committed.end()) {
          committed_keys.erase(it->second.canonical_key);
          committed.erase(it);
        }
        break;
      }
      case ViewLogRecord::Kind::kCheckpoint: {
        generation = std::max(generation, record.generation);
        next_id = std::max(next_id, record.next_id);
        for (auto it = committed.begin(); it != committed.end();) {
          if (it->second.generation < generation) {
            committed_keys.erase(it->second.canonical_key);
            it = committed.erase(it);
          } else {
            ++it;
          }
        }
        break;
      }
    }
  }
  report.committed_views = committed.size();

  {
    MutexLock lock(mu_);
    if (!by_id_.empty()) {
      return Status::InvalidArgument("Recover requires an empty store");
    }
    generation_ = generation;
    staged_generation_ = generation;
    next_id_ = next_id;
  }

  // Compact before rebuilding: the rewritten log holds exactly the
  // committed state (torn tails gone), so a crash during the rebuilds
  // below replays to the same set again.
  std::vector<ViewLogRecord> compacted;
  ViewLogRecord header;
  header.kind = ViewLogRecord::Kind::kCheckpoint;
  header.generation = generation;
  header.next_id = next_id;
  compacted.push_back(header);
  for (const auto& [_, record] : committed) {
    compacted.push_back(record);
  }
  AV_RETURN_NOT_OK(ViewStateLog::WriteCheckpoint(log_->path(), compacted));

  ThreadPool& pool = options_.pool != nullptr ? *options_.pool : DefaultPool();
  for (const auto& [id, record] : committed) {
    PlanNodePtr plan = resolve(record.canonical_key);
    if (!plan) {
      // Unresolvable (schema drift): drop it from the committed set so
      // it stops resurfacing on every recovery.
      ++report.failed;
      MutexLock lock(mu_);
      ViewLogRecord drop;
      drop.kind = ViewLogRecord::Kind::kDrop;
      drop.id = id;
      // avcheck:allow(blocking-under-lock): recovery-time WAL append
      // under mu_ is the commit point for pruning the dead entry.
      AV_RETURN_NOT_OK(log_->Append(drop));
      continue;
    }
    if (background) {
      {
        MutexLock lock(mu_);
        ++async_inflight_;
      }
      ViewLogRecord rec = record;
      const Executor* exec = &executor;
      pool.Submit([this, rec = std::move(rec), plan = std::move(plan),
                   exec]() mutable {
        GlobalViewStore().RecordAsyncBuild();
        Status s = RematerializeRecovered(rec, std::move(plan), *exec);
        MutexLock lock(mu_);
        if (!s.ok()) {
          AV_LOG(Warning) << "background rematerialization of view " << rec.id
                          << " failed: " << s.ToString();
          ViewLogRecord drop;
          drop.kind = ViewLogRecord::Kind::kDrop;
          drop.id = rec.id;
          // avcheck:allow(blocking-under-lock): WAL append under mu_
          // is the commit point for dropping the failed rebuild.
          if (Status ds = log_->Append(drop); !ds.ok()) {
            AV_LOG(Warning) << "drop record append failed: " << ds.ToString();
          }
        }
        if (--async_inflight_ == 0) idle_cv_.NotifyAll();
      });
      ++report.rematerialized;
    } else {
      Status s = RematerializeRecovered(record, std::move(plan), executor);
      if (s.ok()) {
        ++report.rematerialized;
      } else {
        ++report.failed;
        MutexLock lock(mu_);
        ViewLogRecord drop;
        drop.kind = ViewLogRecord::Kind::kDrop;
        drop.id = id;
        // avcheck:allow(blocking-under-lock): recovery-time WAL append
        // under mu_ is the commit point for dropping the failed build.
        AV_RETURN_NOT_OK(log_->Append(drop));
      }
    }
  }
  return report;
}

}  // namespace autoview
