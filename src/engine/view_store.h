#pragma once

#include <cstdint>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "engine/cost.h"
#include "engine/database.h"
#include "engine/executor.h"
#include "engine/rewrite_cache.h"
#include "engine/view_index.h"
#include "engine/view_store_log.h"
#include "plan/plan.h"
#include "util/annotations.h"
#include "util/status.h"

namespace autoview {

class ThreadPool;
class MaterializedViewStore;

/// \brief One materialized view: a subquery plan plus its stored result.
struct MaterializedView {
  int64_t id = 0;
  std::string table_name;     ///< backing table registered in the Database
  PlanNodePtr plan;           ///< the subquery this view materializes
  std::string canonical_key;  ///< CanonicalKey(*plan)
  uint64_t byte_size = 0;     ///< u_sto: stored result size
  CostReport build_cost;      ///< A(s): cost of computing the subquery
  double utility = 0.0;       ///< solver score (benefit minus overhead)
  uint64_t generation = 1;    ///< selection epoch that installed it
};

/// \brief Configuration of a MaterializedViewStore.
struct ViewStoreOptions {
  /// Byte budget for stored view results; 0 = unlimited. When an
  /// admission would exceed it, the lowest utility-per-byte unpinned
  /// views are evicted first (see MaterializedViewStore).
  uint64_t budget_bytes = 0;

  /// Path of the checksummed view-state log (ViewStateLog). Empty
  /// disables durability: the store is then a purely in-memory cache.
  std::string wal_path;

  /// Pool for async (re)materialization; nullptr uses DefaultPool().
  ThreadPool* pool = nullptr;

  /// When true, an over-budget admission is accepted immediately and
  /// eviction moves off the admission path: a background sweep on the
  /// pool brings the store back under `evict_watermark * budget_bytes`
  /// (`evictions_deferred` counts these hand-offs). Views larger than
  /// the whole budget are still rejected outright, and WAL recovery
  /// always evicts inline. When false (default), admission evicts
  /// inline exactly as before.
  bool background_eviction = false;

  /// Background-sweep target as a fraction of budget_bytes in (0, 1]:
  /// each sweep evicts until bytes_used <= watermark * budget, so a
  /// watermark below 1.0 leaves headroom for the next admission burst.
  double evict_watermark = 1.0;

  /// Defaults plus the AUTOVIEW_VIEW_BUDGET_BYTES environment variable
  /// (unset/invalid = unlimited). The plain store constructor uses this,
  /// so operators can bound every serving store without code changes.
  /// A malformed value is rejected loudly (warning log) — see
  /// FromEnvStrict() for the error itself.
  static ViewStoreOptions FromEnv();

  /// Like FromEnv() but a malformed AUTOVIEW_VIEW_BUDGET_BYTES is a
  /// ParseError instead of a warn-and-stay-unlimited. Strict
  /// whole-string parsing (util/parse.h): "-1", leading/trailing junk,
  /// and values past uint64 are all rejected — the strtoull family
  /// silently wrapped "-1" to "effectively unbounded".
  static Result<ViewStoreOptions> FromEnvStrict();
};

/// \brief Per-call knobs of Materialize/MaterializeAsync.
struct MaterializeOptions {
  /// Utility score from the solver (e.g. MvsProblemIndex::ViewUtility):
  /// the eviction policy ranks views by utility / byte_size.
  double utility = 0.0;

  /// 0 = the store's current generation. A re-selection stages its new
  /// view set under BeginSwap()'s generation; materializing an already
  /// resident key under a newer generation adopts (re-tags) it instead
  /// of failing, so surviving views are never rebuilt.
  uint64_t generation = 0;
};

/// \brief RAII pin over a consistent set of views (one instant of the
/// store), for the serving path: every pinned view's descriptor and
/// backing table stay valid until the snapshot is released, even if the
/// view is evicted, dropped, or retired by a generation swap meanwhile
/// (the physical drop is deferred to the last unpin).
class ViewSetSnapshot {
 public:
  ViewSetSnapshot() = default;
  ViewSetSnapshot(ViewSetSnapshot&& other) noexcept { *this = std::move(other); }
  ViewSetSnapshot& operator=(ViewSetSnapshot&& other) noexcept;
  ViewSetSnapshot(const ViewSetSnapshot&) = delete;
  ViewSetSnapshot& operator=(const ViewSetSnapshot&) = delete;
  ~ViewSetSnapshot() { Release(); }

  /// Unpins every view (idempotent; also run by the destructor).
  void Release();

  /// The pinned views, ascending id. Pointers are valid while this
  /// snapshot is alive.
  const std::vector<const MaterializedView*>& views() const { return views_; }

  /// Store generation at pin time.
  uint64_t generation() const { return generation_; }

 private:
  friend class MaterializedViewStore;

  MaterializedViewStore* store_ = nullptr;
  uint64_t generation_ = 0;
  std::vector<int64_t> ids_;
  std::vector<const MaterializedView*> views_;
};

/// \brief Outcome of a WAL recovery (MaterializedViewStore::Recover).
struct RecoveryReport {
  size_t replayed_records = 0;   ///< valid WAL records accepted
  size_t committed_views = 0;    ///< views live in the committed state
  size_t rematerialized = 0;     ///< rebuilt (sync) or scheduled (async)
  size_t failed = 0;             ///< unresolvable/failed rebuilds (sync)
  bool torn_tail = false;        ///< WAL had a torn tail (discarded)
};

/// \brief Budgeted, crash-safe cache of materialized views.
///
/// Owns materialized views: executes subqueries, installs their results
/// as scannable tables, and supports dropping them again. On top of the
/// original materialize-on-select store this adds:
///
///  * **Budget + eviction** — `ViewStoreOptions::budget_bytes` bounds
///    the bytes of stored results; an admission that would exceed it
///    first evicts unpinned views in ascending utility-per-byte order
///    (utility / byte_size, ties broken by ascending id — fully
///    deterministic). Pinned views are never evicted; when nothing
///    evictable can make room, Materialize returns ResourceExhausted
///    and the caller serves from base tables instead.
///  * **Pinning + deferred drop** — PinLive() returns an RAII
///    ViewSetSnapshot; a pinned view that is dropped/evicted/retired is
///    only *logically* removed (invisible to lookups, WAL DROP written)
///    and its table survives until the last unpin, so an in-flight
///    rewrite never sees a dangling view.
///  * **Async materialization + generation hot swap** — subquery
///    execution happens OUTSIDE the store mutex (concurrent builds
///    proceed in parallel; installation serializes), optionally on the
///    shared thread pool via MaterializeAsync. A re-selection stages
///    its set under BeginSwap()'s generation and CommitSwap() retires
///    every older view atomically; serving continues throughout on
///    pinned snapshots.
///  * **Durability** — with `wal_path` set, every commit appends a
///    checksummed record to a ViewStateLog; Recover() replays the
///    longest valid prefix (torn tails are detected and discarded),
///    compacts the log, and rematerializes the committed set — inline
///    or in the background on the pool.
///
/// Thread-safe. Returned MaterializedView pointers stay valid until the
/// view's *physical* drop; concurrent callers must hold a pin (snapshot)
/// across any use, since eviction can drop unpinned views at any time.
class MaterializedViewStore {
 public:
  /// `db` must outlive the store; views are registered into it. The
  /// single-argument form reads ViewStoreOptions::FromEnv().
  explicit MaterializedViewStore(Database* db)
      : MaterializedViewStore(db, ViewStoreOptions::FromEnv()) {}
  MaterializedViewStore(Database* db, ViewStoreOptions options);

  /// Executes `subquery` (outside the store mutex), stores the result
  /// as a new table named `__mv_<id>`, evicting lowest-score views if
  /// the budget requires, and returns the view descriptor. While a
  /// build is in flight its key is reserved, so concurrent duplicate
  /// builds fail fast with AlreadyExists instead of racing.
  Result<const MaterializedView*> Materialize(
      PlanNodePtr subquery, const Executor& executor,
      MaterializeOptions mopts = MaterializeOptions()) AV_EXCLUDES(mu_);

  /// Materialize on the pool (`options.pool` or DefaultPool()). The
  /// future resolves to the install status (AlreadyExists when a
  /// concurrent build won the key). `executor` must outlive the call;
  /// use WaitIdle() to drain all scheduled builds.
  std::future<Status> MaterializeAsync(
      PlanNodePtr subquery, const Executor& executor,
      MaterializeOptions mopts = MaterializeOptions()) AV_EXCLUDES(mu_);

  /// Looks a view up by the canonical key of its plan. Logically
  /// dropped (doomed) views are invisible. See the class comment for
  /// pointer validity; concurrent callers should prefer PinLive().
  const MaterializedView* FindByKey(const std::string& canonical_key) const
      AV_EXCLUDES(mu_);

  const MaterializedView* FindById(int64_t id) const AV_EXCLUDES(mu_);

  /// Pins every live view (all generations) at one instant.
  ViewSetSnapshot PinLive() AV_EXCLUDES(mu_);

  /// Pins exactly the views in `ids`, all-or-nothing: NotFound (and no
  /// pins taken) when any id is absent or logically dropped. The fast
  /// serving path uses this to pin only the views a rewritten plan
  /// actually scans — O(|ids|) instead of PinLive's O(store).
  Result<ViewSetSnapshot> PinViews(const std::vector<int64_t>& ids)
      AV_EXCLUDES(mu_);

  /// The canonical-key -> candidate-views index this store maintains
  /// (insert on install/recovery, erase on doom). Always probe-safe;
  /// pin before executing against a probed view (see ViewIndex).
  const ViewIndex& view_index() const { return index_; }

  /// The (plan canonical key, generation)-keyed rewrite-result cache.
  /// CommitSwap invalidates every older-generation entry. Exposed
  /// non-const: the serving path (Rewriter::RewriteServing) inserts,
  /// heals, and looks up entries directly.
  RewriteCache& rewrite_cache() { return rewrite_cache_; }

  /// Drops the view and its backing table (deferred while pinned).
  Status Drop(int64_t id) AV_EXCLUDES(mu_);

  /// Drops everything (deferred for pinned views).
  Status Clear() AV_EXCLUDES(mu_);

  /// Starts a generation swap: returns the staging generation new
  /// views should be materialized under.
  uint64_t BeginSwap() AV_EXCLUDES(mu_);

  /// Commits `generation` as current and retires (drops, deferred
  /// while pinned) every live view of an older generation. In-flight
  /// queries keep serving from their pinned snapshots.
  Status CommitSwap(uint64_t generation) AV_EXCLUDES(mu_);

  /// Replays the WAL into this (empty) store: determines the committed
  /// view set, compacts the log, and rematerializes each view through
  /// `resolve` (canonical key -> plan; views it cannot resolve are
  /// dropped). With `background` true the rebuilds run on the pool
  /// (WaitIdle() to drain); otherwise inline before returning.
  Result<RecoveryReport> Recover(
      const Executor& executor,
      const std::function<PlanNodePtr(const std::string&)>& resolve,
      bool background = false) AV_EXCLUDES(mu_);

  /// Compacts the WAL to exactly the current committed state
  /// (checkpoint record + one MATERIALIZE per live view), atomically.
  Status Checkpoint() const AV_EXCLUDES(mu_);

  /// Blocks until no async build or background sweep scheduled by this
  /// store is in flight.
  void WaitIdle() const AV_EXCLUDES(mu_);

  /// Runs one eviction sweep inline: evicts lowest utility-per-byte
  /// unpinned views until bytes_used <= evict_watermark * budget (no-op
  /// for unbudgeted stores). Returns the number of views evicted. The
  /// background eviction worker runs exactly this; tests call it
  /// directly for determinism.
  size_t SweepNow() AV_EXCLUDES(mu_);

  /// Live (non-doomed) view count.
  size_t size() const AV_EXCLUDES(mu_);

  /// Stored bytes currently accounted against the budget (includes
  /// logically dropped views whose physical drop is pin-deferred).
  uint64_t bytes_used() const AV_EXCLUDES(mu_);

  uint64_t budget_bytes() const { return options_.budget_bytes; }

  uint64_t current_generation() const AV_EXCLUDES(mu_);

  /// Total overhead O_v = A_alpha(v) + A(s) across all live views.
  double TotalOverhead(const Pricing& pricing) const AV_EXCLUDES(mu_);

 private:
  friend class ViewSetSnapshot;

  struct Entry {
    MaterializedView view;
    int pins = 0;        ///< outstanding snapshot references
    bool doomed = false; ///< logically dropped, physical drop deferred
  };
  using EntryMap = std::map<int64_t, Entry>;

  /// Installs a finished build under the lock (budget eviction, WAL
  /// commit, table registration, index insert).
  Result<const MaterializedView*> InstallLocked(PlanNodePtr plan,
                                                std::string key,
                                                ExecResult result,
                                                const MaterializeOptions& mopts)
      AV_REQUIRES(mu_);

  /// Evicts lowest utility-per-byte unpinned views until `needed` more
  /// bytes fit in the budget; ResourceExhausted when impossible.
  Status EvictToFitLocked(uint64_t needed) AV_REQUIRES(mu_);

  /// Lowest utility-per-byte unpinned live view (ties -> lowest id);
  /// end() when every resident view is pinned or doomed.
  EntryMap::iterator PickVictimLocked() AV_REQUIRES(mu_);

  /// Evicts down to watermark * budget; returns views evicted. Stops
  /// early (without error) when only pinned views remain.
  size_t SweepToWatermarkLocked() AV_REQUIRES(mu_);

  /// Schedules one background sweep on the pool if an admission flagged
  /// the store over budget and no sweep is already queued. Called
  /// outside the store mutex (a pool Submit from a worker runs inline).
  void MaybeScheduleSweep() AV_EXCLUDES(mu_);

  /// Logical drop: WAL DROP record, key unindexed; physical drop now or
  /// deferred to the last unpin.
  Status DoomLocked(EntryMap::iterator it) AV_REQUIRES(mu_);

  /// Drops the backing table and erases the entry.
  Status PhysicalDropLocked(EntryMap::iterator it) AV_REQUIRES(mu_);

  /// The WAL MATERIALIZE record for `view`.
  static ViewLogRecord MaterializeRecord(const MaterializedView& view);

  /// Unpins `ids` (snapshot release); performs deferred drops.
  void UnpinAll(const std::vector<int64_t>& ids) AV_EXCLUDES(mu_);

  /// Rebuilds one recovered view with its committed identity.
  Status RematerializeRecovered(const ViewLogRecord& record, PlanNodePtr plan,
                                const Executor& executor) AV_EXCLUDES(mu_);

  Database* db_;
  const ViewStoreOptions options_;
  std::unique_ptr<ViewStateLog> log_;  ///< null when wal_path is empty

  // Internally synchronized (per-shard mutexes); mutated while holding
  // mu_ (installs/dooms keep index and entry map in lockstep), probed
  // without it. Lock order is therefore mu_ -> shard mutex, and neither
  // structure ever acquires anything itself, so the order is acyclic.
  ViewIndex index_;
  RewriteCache rewrite_cache_;

  mutable Mutex mu_;
  int64_t next_id_ AV_GUARDED_BY(mu_) = 1;
  uint64_t generation_ AV_GUARDED_BY(mu_) = 1;
  uint64_t staged_generation_ AV_GUARDED_BY(mu_) = 1;  ///< BeginSwap high-water
  uint64_t bytes_used_ AV_GUARDED_BY(mu_) = 0;
  EntryMap by_id_ AV_GUARDED_BY(mu_);
  std::map<std::string, int64_t> by_key_ AV_GUARDED_BY(mu_);
  std::set<std::string> building_ AV_GUARDED_BY(mu_);  ///< in-flight keys
  size_t async_inflight_ AV_GUARDED_BY(mu_) = 0;
  bool sweep_needed_ AV_GUARDED_BY(mu_) = false;     ///< admission overflowed
  bool sweep_scheduled_ AV_GUARDED_BY(mu_) = false;  ///< sweep task queued
  mutable CondVar idle_cv_;  ///< signalled when async_inflight_ hits 0
};

}  // namespace autoview
