#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "engine/cost.h"
#include "engine/database.h"
#include "engine/executor.h"
#include "plan/plan.h"
#include "util/annotations.h"
#include "util/status.h"

namespace autoview {

/// \brief One materialized view: a subquery plan plus its stored result.
struct MaterializedView {
  int64_t id = 0;
  std::string table_name;     ///< backing table registered in the Database
  PlanNodePtr plan;           ///< the subquery this view materializes
  std::string canonical_key;  ///< CanonicalKey(*plan)
  uint64_t byte_size = 0;     ///< u_sto: stored result size
  CostReport build_cost;      ///< A(s): cost of computing the subquery
};

/// \brief Owns materialized views: executes subqueries, installs their
/// results as scannable tables, and supports dropping them again.
///
/// Thread-safe: the index maps are mutex-guarded so concurrent
/// materializations (future sharded/async selection) cannot corrupt
/// them. Returned MaterializedView pointers stay valid until that view
/// is dropped (std::map nodes are stable under unrelated inserts); a
/// caller must not hold one across a Drop()/Clear() of the same view.
/// Materialize executes the subquery while holding the lock, so
/// concurrent builds serialize — correctness first; a build-outside-
/// the-lock scheme can come with the sharding PR that needs it.
class MaterializedViewStore {
 public:
  /// `db` must outlive the store; views are registered into it.
  explicit MaterializedViewStore(Database* db) : db_(db) {}

  /// Executes `subquery`, stores the result as a new table named
  /// `__mv_<id>` and returns the view descriptor.
  Result<const MaterializedView*> Materialize(PlanNodePtr subquery,
                                              const Executor& executor)
      AV_EXCLUDES(mu_);

  /// Looks a view up by the canonical key of its plan.
  const MaterializedView* FindByKey(const std::string& canonical_key) const
      AV_EXCLUDES(mu_);

  const MaterializedView* FindById(int64_t id) const AV_EXCLUDES(mu_);

  /// Drops the view and its backing table.
  Status Drop(int64_t id) AV_EXCLUDES(mu_);

  /// Drops everything.
  Status Clear() AV_EXCLUDES(mu_);

  size_t size() const AV_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return by_id_.size();
  }

  /// Total overhead O_v = A_alpha(v) + A(s) across all live views.
  double TotalOverhead(const Pricing& pricing) const AV_EXCLUDES(mu_);

 private:
  /// Shared tail of Drop/Clear; assumes the registry lock is held.
  Status DropLocked(int64_t id) AV_REQUIRES(mu_);

  Database* db_;
  mutable Mutex mu_;
  int64_t next_id_ AV_GUARDED_BY(mu_) = 1;
  std::map<int64_t, MaterializedView> by_id_ AV_GUARDED_BY(mu_);
  std::map<std::string, int64_t> by_key_ AV_GUARDED_BY(mu_);
};

}  // namespace autoview
