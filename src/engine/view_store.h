#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "engine/cost.h"
#include "engine/database.h"
#include "engine/executor.h"
#include "plan/plan.h"
#include "util/status.h"

namespace autoview {

/// \brief One materialized view: a subquery plan plus its stored result.
struct MaterializedView {
  int64_t id = 0;
  std::string table_name;     ///< backing table registered in the Database
  PlanNodePtr plan;           ///< the subquery this view materializes
  std::string canonical_key;  ///< CanonicalKey(*plan)
  uint64_t byte_size = 0;     ///< u_sto: stored result size
  CostReport build_cost;      ///< A(s): cost of computing the subquery
};

/// \brief Owns materialized views: executes subqueries, installs their
/// results as scannable tables, and supports dropping them again.
class MaterializedViewStore {
 public:
  /// `db` must outlive the store; views are registered into it.
  explicit MaterializedViewStore(Database* db) : db_(db) {}

  /// Executes `subquery`, stores the result as a new table named
  /// `__mv_<id>` and returns the view descriptor.
  Result<const MaterializedView*> Materialize(PlanNodePtr subquery,
                                              const Executor& executor);

  /// Looks a view up by the canonical key of its plan.
  const MaterializedView* FindByKey(const std::string& canonical_key) const;

  const MaterializedView* FindById(int64_t id) const;

  /// Drops the view and its backing table.
  Status Drop(int64_t id);

  /// Drops everything.
  Status Clear();

  size_t size() const { return by_id_.size(); }

  /// Total overhead O_v = A_alpha(v) + A(s) across all live views.
  double TotalOverhead(const Pricing& pricing) const;

 private:
  Database* db_;
  int64_t next_id_ = 1;
  std::map<int64_t, MaterializedView> by_id_;
  std::map<std::string, int64_t> by_key_;
};

}  // namespace autoview
