#include "engine/view_store_log.h"

#include <charconv>
#include <cstdio>
#include <cstring>
#include <memory>

#include "util/checksum.h"
#include "util/failpoint.h"
#include "util/metrics.h"
#include "util/strings.h"

namespace autoview {

namespace {

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

/// Strict integer parse of a full token (locale-free, overflow-checked;
/// same discipline as the PR-3 parser helpers).
template <typename T>
bool ParseInt(std::string_view token, T* out) {
  const char* end = token.data() + token.size();
  const auto [ptr, ec] = std::from_chars(token.data(), end, *out);
  return ec == std::errc() && ptr == end;
}

bool ParseDouble(std::string_view token, double* out) {
  const char* end = token.data() + token.size();
  const auto [ptr, ec] =
      std::from_chars(token.data(), end, *out, std::chars_format::general);
  return ec == std::errc() && ptr == end;
}

/// Splits off the next space-delimited token of `s`; empty when spent.
std::string_view NextToken(std::string_view* s) {
  const size_t space = s->find(' ');
  std::string_view token = s->substr(0, space);
  *s = space == std::string_view::npos ? std::string_view()
                                       : s->substr(space + 1);
  return token;
}

std::string EncodeBody(const ViewLogRecord& record) {
  switch (record.kind) {
    case ViewLogRecord::Kind::kMaterialize:
      return StrFormat("M %lld %llu %llu %.17g ",
                       static_cast<long long>(record.id),
                       static_cast<unsigned long long>(record.generation),
                       static_cast<unsigned long long>(record.byte_size),
                       record.utility) +
             record.canonical_key;
    case ViewLogRecord::Kind::kDrop:
      return StrFormat("D %lld", static_cast<long long>(record.id));
    case ViewLogRecord::Kind::kCheckpoint:
      return StrFormat("C %llu %lld",
                       static_cast<unsigned long long>(record.generation),
                       static_cast<long long>(record.next_id));
  }
  return "";
}

}  // namespace

Result<std::string> ViewStateLog::EncodeRecord(const ViewLogRecord& record) {
  if (record.canonical_key.find('\n') != std::string::npos) {
    return Status::InvalidArgument("view key contains a newline");
  }
  const std::string body = EncodeBody(record);
  if (body.empty()) return Status::InvalidArgument("unknown record kind");
  return StrFormat("%016llx ",
                   static_cast<unsigned long long>(Fnv1a64(body))) +
         body + "\n";
}

Result<ViewLogRecord> ViewStateLog::DecodeRecord(const std::string& line) {
  std::string_view rest = line;
  const std::string_view checksum_hex = NextToken(&rest);
  uint64_t expected = 0;
  if (checksum_hex.size() != 16 ||
      std::from_chars(checksum_hex.data(), checksum_hex.data() + 16, expected,
                      16)
              .ec != std::errc()) {
    return Status::ParseError("bad WAL checksum field");
  }
  if (Fnv1a64(rest) != expected) {
    return Status::ParseError("WAL record checksum mismatch");
  }
  ViewLogRecord record;
  const std::string_view kind = NextToken(&rest);
  if (kind == "M") {
    record.kind = ViewLogRecord::Kind::kMaterialize;
    if (!ParseInt(NextToken(&rest), &record.id) ||
        !ParseInt(NextToken(&rest), &record.generation) ||
        !ParseInt(NextToken(&rest), &record.byte_size) ||
        !ParseDouble(NextToken(&rest), &record.utility)) {
      return Status::ParseError("bad MATERIALIZE record");
    }
    record.canonical_key = std::string(rest);  // key may contain spaces
  } else if (kind == "D") {
    record.kind = ViewLogRecord::Kind::kDrop;
    if (!ParseInt(NextToken(&rest), &record.id) || !rest.empty()) {
      return Status::ParseError("bad DROP record");
    }
  } else if (kind == "C") {
    record.kind = ViewLogRecord::Kind::kCheckpoint;
    if (!ParseInt(NextToken(&rest), &record.generation) ||
        !ParseInt(NextToken(&rest), &record.next_id) || !rest.empty()) {
      return Status::ParseError("bad CHECKPOINT record");
    }
  } else {
    return Status::ParseError("unknown WAL record kind");
  }
  return record;
}

Status ViewStateLog::Append(const ViewLogRecord& record) const {
  AV_FAILPOINT_STATUS("viewstore.wal_append");
  AV_ASSIGN_OR_RETURN(std::string line, EncodeRecord(record));
  FilePtr f(std::fopen(path_.c_str(), "ab"));
  if (!f) return Status::Internal("cannot open view log: " + path_);
  if (std::fwrite(line.data(), 1, line.size(), f.get()) != line.size() ||
      std::fflush(f.get()) != 0) {
    return Status::Internal("short write to view log: " + path_);
  }
  return Status::OK();
}

Result<ViewStateLog::ReplayResult> ViewStateLog::Replay(
    const std::string& path) {
  ReplayResult result;
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (!f) return result;  // no log yet: empty committed state

  std::string content;
  char chunk[1 << 16];
  size_t n;
  while ((n = std::fread(chunk, 1, sizeof(chunk), f.get())) > 0) {
    content.append(chunk, n);
  }
  if (std::ferror(f.get())) {
    return Status::Internal("read error on view log: " + path);
  }
  if (!content.empty() &&
      AV_FAILPOINT("viewstore.wal_replay") == FailAction::kCorrupt) {
    // Low bit, not 0x20: hex checksum parsing is case-insensitive, so
    // flipping the case bit of a hex letter would be a no-op.
    content[content.size() / 2] ^= 0x01;  // injected bit rot
  }

  size_t pos = 0;
  while (pos < content.size()) {
    const size_t newline = content.find('\n', pos);
    if (newline == std::string::npos) break;  // torn final record
    const std::string line = content.substr(pos, newline - pos);
    Result<ViewLogRecord> record = DecodeRecord(line);
    if (!record.ok()) break;  // first bad record ends the valid prefix
    result.records.push_back(std::move(record).value());
    pos = newline + 1;
  }
  result.valid_bytes = pos;
  result.torn_tail = pos < content.size();
  if (result.torn_tail) GlobalViewStore().RecordTornWalTail();
  return result;
}

Status ViewStateLog::WriteCheckpoint(
    const std::string& path, const std::vector<ViewLogRecord>& records) {
  const std::string tmp = path + ".tmp";
  {
    FilePtr f(std::fopen(tmp.c_str(), "wb"));
    if (!f) return Status::Internal("cannot open for writing: " + tmp);
    for (const ViewLogRecord& record : records) {
      AV_ASSIGN_OR_RETURN(std::string line, EncodeRecord(record));
      if (std::fwrite(line.data(), 1, line.size(), f.get()) != line.size()) {
        return Status::Internal("short write: " + tmp);
      }
    }
    if (std::fflush(f.get()) != 0) {
      return Status::Internal("flush failed: " + tmp);
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::Internal("rename failed: " + tmp + " -> " + path);
  }
  return Status::OK();
}

}  // namespace autoview
