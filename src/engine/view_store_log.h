#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace autoview {

/// \brief One record of the view-state log.
///
/// The log is the durable source of truth for *which* views are
/// committed (id, plan key, generation, score) — never for their rows:
/// views are derived data, so recovery rematerializes the surviving set
/// from base tables instead of persisting result bytes.
struct ViewLogRecord {
  enum class Kind {
    kMaterialize,  ///< view committed (also re-tags an existing id)
    kDrop,         ///< view logically dropped (evicted or explicit)
    kCheckpoint,   ///< compaction header: current generation + next id
  };

  Kind kind = Kind::kMaterialize;
  int64_t id = 0;             ///< kMaterialize, kDrop
  uint64_t generation = 0;    ///< kMaterialize, kCheckpoint
  uint64_t byte_size = 0;     ///< kMaterialize: stored size at commit
  double utility = 0.0;       ///< kMaterialize: solver score (exact)
  std::string canonical_key;  ///< kMaterialize: CanonicalKey of the plan
  int64_t next_id = 0;        ///< kCheckpoint: id counter floor
};

/// \brief Checksummed append-only view-state log (WAL-style).
///
/// Line-oriented text format, one record per line:
///
///   <fnv1a-hex-16> M <id> <gen> <bytes> <utility-%.17g> <canonical key>
///   <fnv1a-hex-16> D <id>
///   <fnv1a-hex-16> C <gen> <next_id>
///
/// The checksum covers the record body (everything after the first
/// space). Replay accepts the longest valid prefix: the first line that
/// is truncated (no trailing newline), fails its checksum, or does not
/// parse ends the log — everything after it is a torn tail from a crash
/// mid-append and is discarded (counted via
/// ViewStoreCounters::RecordTornWalTail). Utilities round-trip exactly
/// (%.17g + std::from_chars), so a recovered store scores evictions
/// bit-identically to the pre-crash store.
///
/// Appends reopen the file per record and flush before returning — the
/// store appends under its registry mutex, so log order always equals
/// commit order. Checkpoints rewrite the whole file through the PR-2
/// temp+rename machinery, so a crash mid-checkpoint leaves the previous
/// log intact.
///
/// Failpoint sites: `viewstore.wal_append` (action `error`: the append
/// fails before touching the file, the caller must roll back) and
/// `viewstore.wal_replay` (action `corrupt`: replay sees a bit-flipped
/// record, exercising torn-tail detection).
class ViewStateLog {
 public:
  explicit ViewStateLog(std::string path) : path_(std::move(path)) {}

  const std::string& path() const { return path_; }

  /// Appends one record and flushes. Keys containing newlines are
  /// rejected (they would corrupt the line framing).
  Status Append(const ViewLogRecord& record) const;

  struct ReplayResult {
    std::vector<ViewLogRecord> records;  ///< longest valid prefix
    bool torn_tail = false;   ///< trailing bytes were discarded
    size_t valid_bytes = 0;   ///< length of the accepted prefix
  };

  /// Replays `path`. A missing file is an empty (OK) log; unreadable
  /// files are an error. Torn tails are reported, not errors.
  static Result<ReplayResult> Replay(const std::string& path);

  /// Atomically replaces `path` with a fresh log holding exactly
  /// `records` (temp+rename; used for checkpoint compaction).
  static Status WriteCheckpoint(const std::string& path,
                                const std::vector<ViewLogRecord>& records);

  /// Encodes one record as a full log line including the checksum
  /// prefix and trailing newline. Exposed for the format tests.
  static Result<std::string> EncodeRecord(const ViewLogRecord& record);

  /// Decodes one full line (no trailing newline). Checksum or syntax
  /// failures return ParseError. Exposed for the format tests.
  static Result<ViewLogRecord> DecodeRecord(const std::string& line);

 private:
  std::string path_;
};

}  // namespace autoview
