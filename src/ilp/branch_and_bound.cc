#include "ilp/branch_and_bound.h"

#include <algorithm>

namespace autoview {

namespace {

/// Search state threaded through the recursion.
struct SearchContext {
  const MvsProblem* problem;
  const YOptSolver* yopt;
  std::vector<size_t> order;          // variable order (net value desc)
  std::vector<double> max_benefit;    // cached MaxBenefit per view
  std::vector<bool> z;
  double best_utility;
  std::vector<bool> best_z;
  size_t tight_depth = 0;             // depths using the Y-Opt bound
  uint64_t nodes = 0;
  uint64_t max_nodes = 0;
  uint64_t yopt_solves = 0;
  uint64_t max_yopt_solves = 0;
  bool exhausted = false;
};

/// Tight admissible bound: solve the exact per-query Y-Opt with every
/// undecided view optimistically materialized, charging overhead only
/// for decided-on views. Costly (|Q| independent-set solves), so it is
/// applied only at shallow depths where it prunes whole subtrees.
double TightBound(const SearchContext& ctx, size_t pos) {
  std::vector<bool> optimistic = ctx.z;
  for (size_t p = pos; p < ctx.order.size(); ++p) {
    optimistic[ctx.order[p]] = true;
  }
  double bound = 0.0;
  for (size_t i = 0; i < ctx.problem->num_queries(); ++i) {
    std::vector<bool> row = ctx.yopt->SolveQuery(i, optimistic);
    for (size_t j = 0; j < row.size(); ++j) {
      if (row[j]) bound += ctx.problem->benefit[i][j];
    }
  }
  for (size_t p = 0; p < pos; ++p) {
    const size_t j = ctx.order[p];
    if (ctx.z[j]) bound -= ctx.problem->overhead[j];
  }
  return bound;
}

/// Branches on order[pos]; `bound` is an admissible upper bound of the
/// current partial assignment. In any feasible completion, view j
/// contributes (collected benefit - z_j * O_j) <= MaxBenefit(j) - O_j
/// when selected and 0 otherwise, so an undecided view adds at most
/// max(0, MaxBenefit(j) - O_j). Overlap competition is relaxed, so the
/// bound never underestimates.
void Branch(SearchContext* ctx, size_t pos, double bound) {
  if (ctx->exhausted) return;
  if (++ctx->nodes > ctx->max_nodes ||
      ctx->yopt_solves > ctx->max_yopt_solves) {
    ctx->exhausted = true;
    return;
  }
  if (bound <= ctx->best_utility) return;
  if (pos > 0 && pos <= ctx->tight_depth) {
    ctx->yopt_solves += ctx->problem->num_queries();
    if (TightBound(*ctx, pos) <= ctx->best_utility) return;
  }
  if (pos == ctx->order.size()) {
    ctx->yopt_solves += ctx->problem->num_queries();
    const double utility = ctx->yopt->UtilityOf(ctx->z);
    if (utility > ctx->best_utility) {
      ctx->best_utility = utility;
      ctx->best_z = ctx->z;
    }
    return;
  }
  const size_t j = ctx->order[pos];
  const double net = ctx->max_benefit[j] - ctx->problem->overhead[j];
  const double optimistic = std::max(0.0, net);
  // z_j = 1 first (variables are ordered by attractiveness).
  ctx->z[j] = true;
  Branch(ctx, pos + 1, bound - optimistic + net);
  ctx->z[j] = false;
  Branch(ctx, pos + 1, bound - optimistic);
}

}  // namespace

Result<MvsSolution> BranchAndBoundSolver::Solve(
    const MvsProblem& problem) const {
  AV_RETURN_NOT_OK(problem.Validate());
  YOptSolver yopt(&problem);

  SearchContext ctx;
  ctx.problem = &problem;
  ctx.yopt = &yopt;
  ctx.z.assign(problem.num_views(), false);
  ctx.best_z = ctx.z;
  ctx.best_utility = 0.0;  // all-zero solution is always feasible
  ctx.max_nodes = options_.max_nodes;
  ctx.max_yopt_solves = options_.max_yopt_solves;
  ctx.tight_depth = options_.tight_bound_depth;
  ctx.max_benefit.resize(problem.num_views());
  double root_bound = 0.0;
  for (size_t j = 0; j < problem.num_views(); ++j) {
    ctx.max_benefit[j] = problem.MaxBenefit(j);
    root_bound += std::max(0.0, ctx.max_benefit[j] - problem.overhead[j]);
  }
  ctx.order.resize(problem.num_views());
  for (size_t j = 0; j < ctx.order.size(); ++j) ctx.order[j] = j;
  std::sort(ctx.order.begin(), ctx.order.end(), [&](size_t a, size_t b) {
    return ctx.max_benefit[a] - problem.overhead[a] >
           ctx.max_benefit[b] - problem.overhead[b];
  });

  // Seed the incumbent with the greedy "all net-positive views"
  // solution; a strong initial lower bound prunes most of the tree.
  std::vector<bool> greedy(problem.num_views(), false);
  for (size_t j = 0; j < problem.num_views(); ++j) {
    greedy[j] = ctx.max_benefit[j] > problem.overhead[j];
  }
  const double greedy_utility = yopt.UtilityOf(greedy);
  if (greedy_utility > ctx.best_utility) {
    ctx.best_utility = greedy_utility;
    ctx.best_z = greedy;
  }

  Branch(&ctx, 0, root_bound);
  nodes_ = ctx.nodes;
  if (ctx.exhausted) {
    return Status::ResourceExhausted(
        "branch-and-bound search budget exceeded (instance too large, as "
        "the paper reports for its ILP solvers on WK1/WK2)");
  }
  MvsSolution solution;
  solution.z = ctx.best_z;
  solution.y = yopt.SolveAll(solution.z);
  solution.utility = EvaluateUtility(problem, solution.z, solution.y);
  return solution;
}

}  // namespace autoview
