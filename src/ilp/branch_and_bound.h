#pragma once

#include <cstdint>
#include <optional>

#include "ilp/problem.h"

namespace autoview {

/// \brief Exact (budgeted) solver for the full MVS ILP, playing the role
/// of the paper's `OPT` column in Table IV.
///
/// Branches on the z variables in descending net-value order; at each
/// node the admissible upper bound treats every undecided view as
/// materialized for benefit purposes but free of overhead. Like the
/// paper's attempt with commercial ILP solvers, the search succeeds on
/// JOB-scale instances and gives up (returns ResourceExhausted) when the
/// node budget is exceeded on WK-scale instances.
class BranchAndBoundSolver {
 public:
  struct Options {
    uint64_t max_nodes = 2'000'000;
    /// Budget on per-query Y-Opt solves (the search's real unit of
    /// work): every leaf evaluation and every tight bound costs |Q|
    /// solves. 5M solves is tens of seconds of search.
    uint64_t max_yopt_solves = 5'000'000;
    /// Depths at which the expensive exact Y-Opt relaxation bound is
    /// evaluated in addition to the cheap per-view decomposition bound.
    size_t tight_bound_depth = 14;
  };

  explicit BranchAndBoundSolver(Options options) : options_(options) {}
  BranchAndBoundSolver() : BranchAndBoundSolver(Options{}) {}

  /// Returns the optimal solution, or ResourceExhausted if the node
  /// budget ran out before the search space was exhausted.
  Result<MvsSolution> Solve(const MvsProblem& problem) const;

  /// Nodes expanded by the last Solve call.
  uint64_t nodes_expanded() const { return nodes_; }

 private:
  Options options_;
  mutable uint64_t nodes_ = 0;
};

}  // namespace autoview
