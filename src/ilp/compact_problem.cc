#include "ilp/compact_problem.h"

#include <algorithm>
#include <cstring>

#include "util/strings.h"

namespace autoview {

void CompressedRowStore::EncodeVarint(uint64_t value,
                                      std::vector<uint8_t>* out) {
  while (value >= 0x80) {
    out->push_back(static_cast<uint8_t>(value) | 0x80);
    value >>= 7;
  }
  out->push_back(static_cast<uint8_t>(value));
}

uint64_t CompressedRowStore::DecodeVarint(const uint8_t** p) {
  uint64_t value = 0;
  int shift = 0;
  while (true) {
    const uint8_t byte = *(*p)++;
    value |= static_cast<uint64_t>(byte & 0x7f) << shift;
    if (!(byte & 0x80)) return value;
    shift += 7;
  }
}

void CompressedRowStore::AppendRow(const std::vector<Entry>& entries) {
  // Encode into a scratch buffer first so the row lands in one shard.
  std::vector<uint8_t> encoded;
  encoded.reserve(entries.size() * 10 + 4);
  EncodeVarint(entries.size(), &encoded);
  size_t prev = 0;
  bool first = true;
  for (const Entry& e : entries) {
    // Ascending ids: the delta to the previous id is >= 1 except for the
    // first entry, so store (id - prev - 1) and (first id) respectively.
    EncodeVarint(first ? e.index : e.index - prev - 1, &encoded);
    first = false;
    prev = e.index;
    uint8_t raw[sizeof(double)];
    std::memcpy(raw, &e.benefit, sizeof(raw));
    encoded.insert(encoded.end(), raw, raw + sizeof(raw));
  }

  if (shards_.empty() || shards_.back().size() + encoded.size() > shard_budget_) {
    // Seal the open shard (shrink to its payload) and start a new one.
    if (!shards_.empty()) shards_.back().shrink_to_fit();
    shards_.emplace_back();
    shards_.back().reserve(std::min(shard_budget_, encoded.size()));
  }
  std::vector<uint8_t>& shard = shards_.back();
  row_shard_.push_back(static_cast<uint32_t>(shards_.size() - 1));
  row_offset_.push_back(static_cast<uint32_t>(shard.size()));
  shard.insert(shard.end(), encoded.begin(), encoded.end());
  num_entries_ += entries.size();
}

size_t CompressedRowStore::byte_size() const {
  size_t total = 0;
  for (const auto& shard : shards_) total += shard.size();
  return total;
}

void CompressedRowStore::DecodeRow(size_t i, std::vector<Entry>* out) const {
  out->clear();
  ForEachEntry(i, [out](size_t view, double benefit) {
    out->push_back(Entry{view, benefit});
  });
}

Status CompactMvsProblem::Validate() const {
  const size_t nz = num_views();
  if (overlap_adjacency.size() != nz) {
    return Status::InvalidArgument(
        StrFormat("overlap adjacency has %zu lists for %zu views",
                  overlap_adjacency.size(), nz));
  }
  if (!frequency.empty() && frequency.size() != nz) {
    return Status::InvalidArgument(
        StrFormat("frequency has %zu entries for %zu views",
                  frequency.size(), nz));
  }
  for (size_t j = 0; j < nz; ++j) {
    const auto& adj = overlap_adjacency[j];
    if (!std::is_sorted(adj.begin(), adj.end()) ||
        std::adjacent_find(adj.begin(), adj.end()) != adj.end()) {
      return Status::InvalidArgument(
          StrFormat("adjacency of view %zu is not sorted/unique", j));
    }
    for (uint32_t k : adj) {
      if (k >= nz) {
        return Status::InvalidArgument(StrFormat(
            "adjacency of view %zu references view %u out of range", j, k));
      }
      if (k == j) {
        return Status::InvalidArgument(
            StrFormat("view %zu overlaps itself", j));
      }
      const auto& back = overlap_adjacency[k];
      if (!std::binary_search(back.begin(), back.end(),
                              static_cast<uint32_t>(j))) {
        return Status::InvalidArgument(
            StrFormat("overlap %zu-%u is not symmetric", j, k));
      }
    }
  }
  return Status::OK();
}

CompactMvsProblem CompactMvsProblem::FromDense(const MvsProblem& problem,
                                               size_t shard_budget_bytes) {
  CompactMvsProblem compact;
  compact.rows = CompressedRowStore(shard_budget_bytes);
  compact.overhead = problem.overhead;
  compact.frequency = problem.frequency;
  const size_t nz = problem.num_views();
  compact.overlap_adjacency.resize(nz);
  for (size_t j = 0; j < nz; ++j) {
    for (size_t k = 0; k < nz; ++k) {
      if (k != j && problem.overlap[j][k]) {
        compact.overlap_adjacency[j].push_back(static_cast<uint32_t>(k));
      }
    }
  }
  std::vector<CompressedRowStore::Entry> entries;
  for (const auto& row : problem.benefit) {
    entries.clear();
    for (size_t j = 0; j < row.size(); ++j) {
      if (row[j] != 0.0) {
        entries.push_back(CompressedRowStore::Entry{j, row[j]});
      }
    }
    compact.rows.AppendRow(entries);
  }
  return compact;
}

void ShardedProblemBuilder::SetViews(
    std::vector<double> overhead,
    std::vector<std::vector<uint32_t>> overlap_adjacency,
    std::vector<size_t> frequency) {
  problem_.overhead = std::move(overhead);
  problem_.overlap_adjacency = std::move(overlap_adjacency);
  problem_.frequency = std::move(frequency);
}

Result<CompactMvsProblem> ShardedProblemBuilder::Finalize() {
  AV_RETURN_NOT_OK(problem_.Validate());
  return std::move(problem_);
}

}  // namespace autoview
