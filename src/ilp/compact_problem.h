#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "ilp/problem.h"
#include "util/status.h"

namespace autoview {

/// \brief Compressed CSR storage for benefit-matrix rows, built in
/// bounded-memory shards.
///
/// At paper scale the dense |Q| x |Z| benefit matrix is the memory
/// bottleneck (WK2: 157.6k queries x thousands of candidates of
/// 8-byte doubles — gigabytes for a matrix that is ~99% zeros). This
/// store keeps only the nonzero cells, encoded per row as
///
///   varint(entry count) . varint(view-id delta)* . raw 8-byte benefit*
///
/// with view ids ascending within a row, so each id is a small delta
/// (usually 1-2 bytes instead of 8). Rows are appended in ascending
/// query order into fixed-budget byte shards; a sealed shard is never
/// touched again, so the writer's working set is one shard plus O(1)
/// per-row bookkeeping — the "streaming/sharded construction" of the
/// scale pipeline (DESIGN.md §10).
///
/// Decoding is exact: benefits round-trip bit-identically (raw IEEE-754
/// bytes, never re-parsed through text), which is what lets an
/// MvsProblemIndex built from this store compare EXPECT_EQ-equal to one
/// built from the dense matrix.
class CompressedRowStore {
 public:
  /// `shard_budget_bytes` bounds each shard's payload; a row that
  /// overflows the current shard seals it and starts the next one
  /// (a single row larger than the budget gets a shard of its own).
  explicit CompressedRowStore(size_t shard_budget_bytes = 1 << 20)
      : shard_budget_(shard_budget_bytes ? shard_budget_bytes : 1) {}

  /// One nonzero cell of a row. Mirrors MvsProblemIndex::Entry so
  /// decoded rows can be compared against index rows directly.
  struct Entry {
    size_t index;    ///< view id, ascending within a row
    double benefit;  ///< B_ij exactly as stored in the dense matrix
  };

  /// Appends the next row (entries must be ascending by view id; any
  /// benefit value including negatives is legal, zeros are the caller's
  /// job to omit). Rows are implicitly numbered 0, 1, 2, ... in append
  /// order.
  void AppendRow(const std::vector<Entry>& entries);

  size_t num_rows() const { return row_shard_.size(); }
  size_t num_shards() const { return shards_.size(); }
  /// Total nonzero entries appended.
  size_t num_entries() const { return num_entries_; }

  /// Compressed payload bytes across all shards (the memory the store
  /// actually holds for row data; bookkeeping adds 8 bytes per row).
  size_t byte_size() const;

  /// Decodes row `i` into `out` (cleared first). Bit-identical to what
  /// was appended.
  void DecodeRow(size_t i, std::vector<Entry>* out) const;

  /// Calls `fn(view, benefit)` for each entry of row `i` in ascending
  /// view order, without materializing a vector.
  template <typename Fn>
  void ForEachEntry(size_t i, Fn&& fn) const {
    const std::vector<uint8_t>& shard = shards_[row_shard_[i]];
    const uint8_t* p = shard.data() + row_offset_[i];
    const uint64_t count = DecodeVarint(&p);
    uint64_t view = 0;
    for (uint64_t n = 0; n < count; ++n) {
      view += DecodeVarint(&p);
      double benefit;
      __builtin_memcpy(&benefit, p, sizeof(benefit));
      p += sizeof(benefit);
      fn(static_cast<size_t>(view), benefit);
      ++view;  // deltas are between consecutive ids, stored minus one
    }
  }

  /// Varint primitives (LEB128, low 7 bits per byte), exposed for the
  /// decode bit-identity tests.
  static void EncodeVarint(uint64_t value, std::vector<uint8_t>* out);
  static uint64_t DecodeVarint(const uint8_t** p);

 private:
  size_t shard_budget_;
  std::vector<std::vector<uint8_t>> shards_;
  // Row i lives at shards_[row_shard_[i]] + row_offset_[i].
  std::vector<uint32_t> row_shard_;
  std::vector<uint32_t> row_offset_;
  size_t num_entries_ = 0;
};

/// \brief A complete MVS instance in sparse/compressed form: the
/// benefit rows as compressed CSR plus the (small, O(|Z|)) per-view
/// arrays. Equivalent to an MvsProblem whose dense matrix was never
/// materialized; MvsProblemIndex accepts either and builds identical
/// structures.
struct CompactMvsProblem {
  CompressedRowStore rows;           ///< nonzero benefit cells per query
  std::vector<double> overhead;      ///< O_j
  /// Symmetric overlap as sorted adjacency lists (x_jk of Definition 5);
  /// adjacency[j] never contains j.
  std::vector<std::vector<uint32_t>> overlap_adjacency;
  std::vector<size_t> frequency;     ///< optional, as in MvsProblem

  size_t num_queries() const { return rows.num_rows(); }
  size_t num_views() const { return overhead.size(); }

  /// Structural validation (adjacency sorted/symmetric/irreflexive,
  /// view ids in range).
  Status Validate() const;

  /// Compresses a dense problem (test oracle for the sharded path).
  static CompactMvsProblem FromDense(const MvsProblem& problem,
                                     size_t shard_budget_bytes = 1 << 20);
};

/// \brief Streaming builder for CompactMvsProblem: declare the views
/// once, then append benefit rows in ascending query order. Peak memory
/// is one open shard plus the O(|Z|) view arrays — never |Q| x |Z|.
class ShardedProblemBuilder {
 public:
  explicit ShardedProblemBuilder(size_t shard_budget_bytes = 1 << 20)
      : problem_{CompressedRowStore(shard_budget_bytes), {}, {}, {}} {}

  /// Declares the per-view arrays. `overlap_adjacency[j]` must be the
  /// sorted list of views overlapping j (symmetry is validated at
  /// Finalize).
  void SetViews(std::vector<double> overhead,
                std::vector<std::vector<uint32_t>> overlap_adjacency,
                std::vector<size_t> frequency = {});

  /// Appends the next query row; `entries` are the nonzero benefit
  /// cells in ascending view order.
  void AddRow(const std::vector<CompressedRowStore::Entry>& entries) {
    problem_.rows.AppendRow(entries);
  }

  size_t rows_added() const { return problem_.rows.num_rows(); }

  /// Validates and releases the finished problem; the builder is
  /// moved-from afterwards.
  Result<CompactMvsProblem> Finalize();

 private:
  CompactMvsProblem problem_;
};

}  // namespace autoview
