#include "ilp/problem.h"

#include <algorithm>
#include <numeric>

#include "ilp/problem_index.h"
#include "util/strings.h"

namespace autoview {

Status MvsProblem::Validate() const {
  const size_t z = num_views();
  if (overlap.size() != z) {
    return Status::InvalidArgument("overlap matrix has wrong row count");
  }
  for (size_t j = 0; j < z; ++j) {
    if (overlap[j].size() != z) {
      return Status::InvalidArgument("overlap matrix has wrong column count");
    }
    if (overlap[j][j]) {
      return Status::InvalidArgument("overlap diagonal must be false");
    }
    for (size_t k = 0; k < z; ++k) {
      if (overlap[j][k] != overlap[k][j]) {
        return Status::InvalidArgument("overlap matrix must be symmetric");
      }
    }
  }
  for (const auto& row : benefit) {
    if (row.size() != z) {
      return Status::InvalidArgument(
          StrFormat("benefit row width %zu != %zu", row.size(), z));
    }
  }
  if (!frequency.empty() && frequency.size() != z) {
    return Status::InvalidArgument("frequency has wrong size");
  }
  return Status::OK();
}

double MvsProblem::MaxBenefit(size_t j) const {
  double total = 0.0;
  for (const auto& row : benefit) {
    if (row[j] > 0) total += row[j];
  }
  return total;
}

double EvaluateUtility(const MvsProblem& problem, const std::vector<bool>& z,
                       const std::vector<std::vector<bool>>& y) {
  double utility = 0.0;
  for (size_t i = 0; i < problem.num_queries(); ++i) {
    for (size_t j = 0; j < problem.num_views(); ++j) {
      if (y[i][j]) utility += problem.benefit[i][j];
    }
  }
  for (size_t j = 0; j < problem.num_views(); ++j) {
    if (z[j]) utility -= problem.overhead[j];
  }
  return utility;
}

bool IsFeasible(const MvsProblem& problem, const std::vector<bool>& z,
                const std::vector<std::vector<bool>>& y) {
  const size_t nz = problem.num_views();
  if (z.size() != nz || y.size() != problem.num_queries()) return false;
  for (size_t i = 0; i < y.size(); ++i) {
    if (y[i].size() != nz) return false;
    for (size_t j = 0; j < nz; ++j) {
      if (!y[i][j]) continue;
      if (!z[j]) return false;  // y_ij <= z_j
      for (size_t k = j + 1; k < nz; ++k) {
        if (y[i][k] && problem.overlap[j][k]) return false;
      }
    }
  }
  return true;
}

bool YOptSolver::Overlaps(size_t a, size_t b) const {
  return problem_ != nullptr ? problem_->overlap[a][b]
                             : index_->OverlapTest(a, b);
}

size_t YOptSolver::NumQueries() const {
  return problem_ != nullptr ? problem_->num_queries()
                             : index_->num_queries();
}

size_t YOptSolver::NumViews() const {
  return problem_ != nullptr ? problem_->num_views() : index_->num_views();
}

void YOptSolver::Search(const std::vector<size_t>& views,
                        const std::vector<double>& weights, size_t pos,
                        double current, std::vector<bool>* taken, double* best,
                        std::vector<bool>* best_taken) const {
  if (pos == views.size()) {
    if (current > *best) {
      *best = current;
      *best_taken = *taken;
    }
    return;
  }
  // Upper bound: everything remaining is compatible.
  double bound = current;
  for (size_t p = pos; p < views.size(); ++p) bound += weights[p];
  if (bound <= *best) return;

  // Branch: take views[pos] if compatible with the current selection.
  bool compatible = true;
  for (size_t p = 0; p < pos && compatible; ++p) {
    if ((*taken)[p] && Overlaps(views[p], views[pos])) {
      compatible = false;
    }
  }
  if (compatible) {
    (*taken)[pos] = true;
    Search(views, weights, pos + 1, current + weights[pos], taken, best,
           best_taken);
    (*taken)[pos] = false;
  }
  Search(views, weights, pos + 1, current, taken, best, best_taken);
}

std::vector<bool> YOptSolver::SolveQuery(size_t query_index,
                                         const std::vector<bool>& z) const {
  std::vector<size_t> views;
  std::vector<double> weights;  // parallel to views throughout
  bool presorted = false;
  if (index_ != nullptr) {
    const auto& sparse_row = index_->Row(query_index);
    if (!index_->RowHasTies(query_index)) {
      // All benefits in the row are distinct, so the descending order is
      // unique: filtering the precomputed order by z gives exactly what
      // sorting the z-filtered subset would.
      for (size_t p : index_->RowByBenefit(query_index)) {
        if (z[sparse_row[p].index]) {
          views.push_back(sparse_row[p].index);
          weights.push_back(sparse_row[p].benefit);
        }
      }
      presorted = true;
    } else {
      for (const MvsProblemIndex::Entry& e : sparse_row) {
        if (z[e.index]) {
          views.push_back(e.index);
          weights.push_back(e.benefit);
        }
      }
    }
  } else {
    const auto& benefits = problem_->benefit[query_index];
    for (size_t j = 0; j < z.size(); ++j) {
      if (z[j] && benefits[j] > 0) {
        views.push_back(j);
        weights.push_back(benefits[j]);
      }
    }
  }
  std::vector<bool> row(z.size(), false);
  if (views.empty()) return row;

  // Descending-benefit order tightens the bound early. Sorting a
  // position permutation by weights performs the exact comparison
  // sequence the historical sort of view ids by dense benefits did
  // (same length, same outcomes at every probe), so the resulting
  // order — ties included — is identical.
  if (!presorted) {
    std::vector<size_t> order(views.size());
    for (size_t p = 0; p < order.size(); ++p) order[p] = p;
    std::sort(order.begin(), order.end(),
              [&](size_t a, size_t b) { return weights[a] > weights[b]; });
    std::vector<size_t> sorted_views(views.size());
    std::vector<double> sorted_weights(views.size());
    for (size_t p = 0; p < order.size(); ++p) {
      sorted_views[p] = views[order[p]];
      sorted_weights[p] = weights[order[p]];
    }
    views.swap(sorted_views);
    weights.swap(sorted_weights);
  }

  // Exact for small instances; greedy fallback above the cutoff keeps
  // the worst case polynomial (instances that large do not arise from
  // per-query applicable-view counts in practice).
  constexpr size_t kExactCutoff = 26;
  std::vector<bool> taken(views.size(), false);
  std::vector<bool> best_taken(views.size(), false);
  if (views.size() <= kExactCutoff) {
    double best = 0.0;
    Search(views, weights, 0, 0.0, &taken, &best, &best_taken);
  } else {
    for (size_t p = 0; p < views.size(); ++p) {
      bool compatible = true;
      for (size_t q = 0; q < p && compatible; ++q) {
        if (best_taken[q] && Overlaps(views[q], views[p])) {
          compatible = false;
        }
      }
      best_taken[p] = compatible;
    }
  }
  for (size_t p = 0; p < views.size(); ++p) {
    if (best_taken[p]) row[views[p]] = true;
  }
  return row;
}

std::vector<std::vector<bool>> YOptSolver::SolveAll(
    const std::vector<bool>& z) const {
  const size_t nq = NumQueries();
  std::vector<std::vector<bool>> y;
  y.reserve(nq);
  for (size_t i = 0; i < nq; ++i) {
    y.push_back(SolveQuery(i, z));
  }
  return y;
}

double YOptSolver::UtilityOf(const std::vector<bool>& z) const {
  // Solver-produced y has its support inside the positive cells, the
  // regime where the sparse evaluation is bit-identical to the dense one.
  std::vector<std::vector<bool>> y = SolveAll(z);
  return problem_ != nullptr ? EvaluateUtility(*problem_, z, y)
                             : index_->EvaluateUtilitySparse(z, y);
}

}  // namespace autoview
