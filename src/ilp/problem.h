#pragma once

#include <cstddef>
#include <vector>

#include "util/status.h"

namespace autoview {

/// \brief The Materialized View Selection ILP of §V-A:
///
///   argmax_{Z,Y}  sum_ij y_ij B_ij  -  sum_j z_j O_j
///   s.t.  y_ij + sum_{k != j} x_jk y_ik <= 1   (overlap)
///         y_ij <= z_j                          (view must exist)
///
/// All inputs are plain arrays so selectors are decoupled from plans.
struct MvsProblem {
  /// benefit[i][j] = B(q_i, v_j); 0 (or negative) when query i cannot
  /// profit from view j.
  std::vector<std::vector<double>> benefit;
  /// overhead[j] = O(v_j) = storage fee + build cost.
  std::vector<double> overhead;
  /// Symmetric overlap flags x[j][k] (Definition 5); x[j][j] is false.
  std::vector<std::vector<bool>> overlap;
  /// frequency[j]: number of workload queries containing subquery j
  /// (used by the TopkFreq greedy baseline).
  std::vector<size_t> frequency;

  size_t num_queries() const { return benefit.size(); }
  size_t num_views() const { return overhead.size(); }

  /// Structural validation (matching dimensions, symmetric overlap).
  Status Validate() const;

  /// Total benefit of view j across the workload (B_max[j]).
  double MaxBenefit(size_t j) const;
};

/// \brief A (Z, Y) assignment with its utility.
struct MvsSolution {
  std::vector<bool> z;               ///< |Z| materialization flags
  std::vector<std::vector<bool>> y;  ///< |Q| x |Z| usage flags
  double utility = 0.0;
  /// True when the producing selector hit its deadline (or was
  /// cancelled) and returned its best-so-far incumbent rather than a
  /// fully converged solution. The incumbent is still feasible.
  bool timed_out = false;
};

/// Utility of (z, y); does not check feasibility.
double EvaluateUtility(const MvsProblem& problem, const std::vector<bool>& z,
                       const std::vector<std::vector<bool>>& y);

/// True iff (z, y) satisfies both ILP constraint families.
bool IsFeasible(const MvsProblem& problem, const std::vector<bool>& z,
                const std::vector<std::vector<bool>>& y);

class MvsProblemIndex;

/// \brief Exact solver of the per-query local ILP (the paper's Y-Opt
/// inner problem): given fixed Z, choose the non-overlapping view subset
/// maximizing the query's benefit. This substitutes the PuLP / Gurobi
/// call with a branch-and-bound that is exact for the (small) per-query
/// instances.
///
/// With an MvsProblemIndex attached, applicable-view collection walks
/// the query's sparse CSR row instead of scanning all |Z| views, and
/// tie-free rows reuse the precomputed benefit-descending order instead
/// of re-sorting per call. Results are bit-identical either way.
class YOptSolver {
 public:
  explicit YOptSolver(const MvsProblem* problem) : problem_(problem) {}
  YOptSolver(const MvsProblem* problem, const MvsProblemIndex* index)
      : problem_(problem), index_(index) {}
  /// Index-only mode: every read (benefits, overlap, overheads) is
  /// served from the index, so no dense MvsProblem need exist. Produces
  /// bit-identical answers to the dense-backed modes for the same
  /// instance.
  explicit YOptSolver(const MvsProblemIndex* index) : index_(index) {}

  /// Optimal y row for query `query_index` under `z`.
  std::vector<bool> SolveQuery(size_t query_index,
                               const std::vector<bool>& z) const;

  /// Runs SolveQuery for every query; returns the full Y.
  std::vector<std::vector<bool>> SolveAll(const std::vector<bool>& z) const;

  /// Utility of z with Y chosen optimally per query.
  double UtilityOf(const std::vector<bool>& z) const;

 private:
  void Search(const std::vector<size_t>& views,
              const std::vector<double>& weights, size_t pos, double current,
              std::vector<bool>* taken, double* best,
              std::vector<bool>* best_taken) const;

  bool Overlaps(size_t a, size_t b) const;
  size_t NumQueries() const;
  size_t NumViews() const;

  const MvsProblem* problem_ = nullptr;
  const MvsProblemIndex* index_ = nullptr;
};

}  // namespace autoview
