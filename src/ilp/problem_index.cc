#include "ilp/problem_index.h"

#include <algorithm>

namespace autoview {

MvsProblemIndex::MvsProblemIndex(const MvsProblem& problem)
    : overhead_(problem.overhead) {
  const size_t nq = problem.num_queries();
  const size_t nz = problem.num_views();

  rows_.resize(nq);
  columns_.resize(nz);
  adjacency_.resize(nz);

  for (size_t i = 0; i < nq; ++i) {
    const auto& row = problem.benefit[i];
    for (size_t j = 0; j < nz; ++j) {
      if (row[j] == 0.0) continue;
      columns_[j].push_back({i, row[j]});
      ++num_nonzero_;
      if (row[j] > 0) {
        rows_[i].push_back({j, row[j]});
        ++num_positive_;
      }
    }
  }
  for (size_t j = 0; j < nz; ++j) {
    for (size_t k = 0; k < nz; ++k) {
      if (problem.overlap[j][k]) adjacency_[j].push_back(k);
    }
  }
  BuildOrdersAndAggregates();
}

MvsProblemIndex::MvsProblemIndex(const CompactMvsProblem& compact)
    : overhead_(compact.overhead) {
  const size_t nq = compact.num_queries();
  const size_t nz = compact.num_views();

  rows_.resize(nq);
  columns_.resize(nz);
  adjacency_.resize(nz);

  // Rows were appended in ascending query order with ascending view ids,
  // so this walk pushes columns_[j] entries in ascending query order and
  // rows_[i] entries in ascending view order — the exact structures the
  // dense constructor builds.
  for (size_t i = 0; i < nq; ++i) {
    compact.rows.ForEachEntry(i, [&](size_t j, double benefit) {
      columns_[j].push_back({i, benefit});
      ++num_nonzero_;
      if (benefit > 0) {
        rows_[i].push_back({j, benefit});
        ++num_positive_;
      }
    });
  }
  for (size_t j = 0; j < nz; ++j) {
    adjacency_[j].assign(compact.overlap_adjacency[j].begin(),
                         compact.overlap_adjacency[j].end());
  }
  BuildOrdersAndAggregates();
}

void MvsProblemIndex::BuildOrdersAndAggregates() {
  const size_t nq = rows_.size();
  const size_t nz = overhead_.size();

  rows_by_benefit_.resize(nq);
  row_has_ties_.assign(nq, false);
  max_benefit_.assign(nz, 0.0);

  for (size_t i = 0; i < nq; ++i) {
    // Benefit-descending exploration order, computed with the same
    // comparator Y-Opt's per-solve sort uses. Duplicate benefits make
    // an unstable subset sort order-ambiguous, so flag them; the solver
    // falls back to sorting the filtered subset itself on such rows.
    auto& order = rows_by_benefit_[i];
    order.resize(rows_[i].size());
    for (size_t p = 0; p < order.size(); ++p) order[p] = p;
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      return rows_[i][a].benefit > rows_[i][b].benefit;
    });
    for (size_t p = 1; p < order.size(); ++p) {
      if (rows_[i][order[p]].benefit == rows_[i][order[p - 1]].benefit) {
        row_has_ties_[i] = true;
        break;
      }
    }
  }

  for (size_t j = 0; j < nz; ++j) {
    // Same ascending-query accumulation as MvsProblem::MaxBenefit.
    double total = 0.0;
    for (const Entry& e : columns_[j]) {
      if (e.benefit > 0) total += e.benefit;
    }
    max_benefit_[j] = total;
  }
  // Same ascending-view accumulation as the naive per-iteration
  // aggregate loops (ComputeAggregates in iterview.cc).
  for (size_t j = 0; j < nz; ++j) {
    total_overhead_ += overhead_[j];
    total_max_benefit_ += max_benefit_[j];
  }
}

double MvsProblemIndex::EvaluateUtilitySparse(
    const std::vector<bool>& z, const std::vector<std::vector<bool>>& y) const {
  // Bit-identity: the dense EvaluateUtility adds benefit[i][j] for every
  // used cell in row-major order; used cells all lie in the positive
  // support, so walking the CSR rows (ascending view within ascending
  // query) performs the identical addition sequence.
  double utility = 0.0;
  for (size_t i = 0; i < rows_.size(); ++i) {
    const auto& yi = y[i];
    for (const Entry& e : rows_[i]) {
      if (yi[e.index]) utility += e.benefit;
    }
  }
  for (size_t j = 0; j < overhead_.size(); ++j) {
    if (z[j]) utility -= overhead_[j];
  }
  return utility;
}

double MvsProblemIndex::CurrentBenefit(
    size_t j, const std::vector<std::vector<bool>>& y) const {
  // Matches the dense pass `for i: if (y[i][j] && benefit[i][j] > 0)
  // b_cur[j] += benefit[i][j]` — ascending query order over the column.
  double total = 0.0;
  for (const Entry& e : columns_[j]) {
    if (e.benefit > 0 && y[e.index][j]) total += e.benefit;
  }
  return total;
}

}  // namespace autoview
