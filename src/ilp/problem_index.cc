#include "ilp/problem_index.h"

#include <algorithm>

namespace autoview {

MvsProblemIndex::MvsProblemIndex(const MvsProblem& problem)
    : overhead_(problem.overhead) {
  const size_t nq = problem.num_queries();
  const size_t nz = problem.num_views();

  rows_.resize(nq);
  columns_.resize(nz);
  adjacency_.resize(nz);

  for (size_t i = 0; i < nq; ++i) {
    const auto& row = problem.benefit[i];
    for (size_t j = 0; j < nz; ++j) {
      if (row[j] == 0.0) continue;
      columns_[j].push_back({i, row[j]});
      ++num_nonzero_;
      if (row[j] > 0) {
        rows_[i].push_back({j, row[j]});
        ++num_positive_;
      }
    }
  }
  for (size_t j = 0; j < nz; ++j) {
    for (size_t k = 0; k < nz; ++k) {
      if (problem.overlap[j][k]) adjacency_[j].push_back(k);
    }
  }
  BuildOrdersAndAggregates();
}

MvsProblemIndex::MvsProblemIndex(const CompactMvsProblem& compact)
    : overhead_(compact.overhead) {
  const size_t nq = compact.num_queries();
  const size_t nz = compact.num_views();

  rows_.resize(nq);
  columns_.resize(nz);
  adjacency_.resize(nz);

  // Rows were appended in ascending query order with ascending view ids,
  // so this walk pushes columns_[j] entries in ascending query order and
  // rows_[i] entries in ascending view order — the exact structures the
  // dense constructor builds.
  for (size_t i = 0; i < nq; ++i) {
    compact.rows.ForEachEntry(i, [&](size_t j, double benefit) {
      columns_[j].push_back({i, benefit});
      ++num_nonzero_;
      if (benefit > 0) {
        rows_[i].push_back({j, benefit});
        ++num_positive_;
      }
    });
  }
  for (size_t j = 0; j < nz; ++j) {
    adjacency_[j].assign(compact.overlap_adjacency[j].begin(),
                         compact.overlap_adjacency[j].end());
  }
  BuildOrdersAndAggregates();
}

void MvsProblemIndex::RebuildRowOrder(size_t i) {
  // Benefit-descending exploration order, computed with the same
  // comparator Y-Opt's per-solve sort uses. Duplicate benefits make
  // an unstable subset sort order-ambiguous, so flag them; the solver
  // falls back to sorting the filtered subset itself on such rows.
  auto& order = rows_by_benefit_[i];
  order.resize(rows_[i].size());
  for (size_t p = 0; p < order.size(); ++p) order[p] = p;
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return rows_[i][a].benefit > rows_[i][b].benefit;
  });
  row_has_ties_[i] = false;
  for (size_t p = 1; p < order.size(); ++p) {
    if (rows_[i][order[p]].benefit == rows_[i][order[p - 1]].benefit) {
      row_has_ties_[i] = true;
      break;
    }
  }
}

void MvsProblemIndex::RecomputeMaxBenefit(size_t j) {
  // Same ascending-query accumulation as MvsProblem::MaxBenefit.
  double total = 0.0;
  for (const Entry& e : columns_[j]) {
    if (e.benefit > 0) total += e.benefit;
  }
  max_benefit_[j] = total;
}

void MvsProblemIndex::RecomputeTotals() {
  // Same ascending-view accumulation as the naive per-iteration
  // aggregate loops (ComputeAggregates in iterview.cc). Always a fresh
  // fold: float addition is not associative, so adjusting the old total
  // by a delta would drift from what a rebuild computes.
  total_overhead_ = 0.0;
  total_max_benefit_ = 0.0;
  for (size_t j = 0; j < overhead_.size(); ++j) {
    total_overhead_ += overhead_[j];
    total_max_benefit_ += max_benefit_[j];
  }
}

void MvsProblemIndex::BuildOrdersAndAggregates() {
  const size_t nq = rows_.size();
  const size_t nz = overhead_.size();

  rows_by_benefit_.resize(nq);
  row_has_ties_.assign(nq, false);
  max_benefit_.assign(nz, 0.0);

  for (size_t i = 0; i < nq; ++i) RebuildRowOrder(i);
  for (size_t j = 0; j < nz; ++j) RecomputeMaxBenefit(j);
  RecomputeTotals();
}

double MvsProblemIndex::EvaluateUtilitySparse(
    const std::vector<bool>& z, const std::vector<std::vector<bool>>& y) const {
  // Bit-identity: the dense EvaluateUtility adds benefit[i][j] for every
  // used cell in row-major order; used cells all lie in the positive
  // support, so walking the CSR rows (ascending view within ascending
  // query) performs the identical addition sequence.
  double utility = 0.0;
  for (size_t i = 0; i < rows_.size(); ++i) {
    const auto& yi = y[i];
    for (const Entry& e : rows_[i]) {
      if (yi[e.index]) utility += e.benefit;
    }
  }
  for (size_t j = 0; j < overhead_.size(); ++j) {
    if (z[j]) utility -= overhead_[j];
  }
  return utility;
}

Status MvsProblemIndex::InsertQueryRow(const std::vector<Entry>& entries) {
  const size_t i = rows_.size();
  const size_t nz = overhead_.size();
  for (size_t p = 0; p < entries.size(); ++p) {
    if (entries[p].index >= nz) {
      return Status::InvalidArgument("row entry view index out of range");
    }
    if (entries[p].benefit == 0.0) {
      return Status::InvalidArgument("row entry benefit must be nonzero");
    }
    if (p > 0 && entries[p].index <= entries[p - 1].index) {
      return Status::InvalidArgument("row entries must ascend by view");
    }
  }

  rows_.emplace_back();
  rows_by_benefit_.emplace_back();
  row_has_ties_.push_back(false);
  for (const Entry& e : entries) {
    // i is the new maximum query index, so appending keeps every
    // column ascending — and extends its MaxBenefit left-fold exactly
    // (old_fold + b is the fold over the extended sequence).
    columns_[e.index].push_back({i, e.benefit});
    ++num_nonzero_;
    if (e.benefit > 0) {
      rows_[i].push_back(e);
      ++num_positive_;
      max_benefit_[e.index] += e.benefit;
    }
  }
  RebuildRowOrder(i);
  RecomputeTotals();
  return Status::OK();
}

Status MvsProblemIndex::RetireQueryRow(size_t i) {
  if (i >= rows_.size()) {
    return Status::InvalidArgument("query index out of range");
  }
  // Remove row i from every column and renumber queries above it. A
  // removal from the middle of a column breaks the left-fold, so those
  // columns get a fresh MaxBenefit fold (identical to a rebuild's).
  for (size_t j = 0; j < columns_.size(); ++j) {
    auto& column = columns_[j];
    bool lost_positive = false;
    size_t out = 0;
    for (size_t p = 0; p < column.size(); ++p) {
      if (column[p].index == i) {
        --num_nonzero_;
        if (column[p].benefit > 0) {
          --num_positive_;
          lost_positive = true;
        }
        continue;
      }
      column[out] = column[p];
      if (column[out].index > i) --column[out].index;
      ++out;
    }
    column.resize(out);
    if (lost_positive) RecomputeMaxBenefit(j);
  }
  rows_.erase(rows_.begin() + static_cast<ptrdiff_t>(i));
  rows_by_benefit_.erase(rows_by_benefit_.begin() + static_cast<ptrdiff_t>(i));
  row_has_ties_.erase(row_has_ties_.begin() + static_cast<ptrdiff_t>(i));
  RecomputeTotals();
  return Status::OK();
}

Status MvsProblemIndex::AddCandidateView(double overhead,
                                         const std::vector<Entry>& column,
                                         const std::vector<size_t>& overlapping) {
  const size_t j = overhead_.size();
  const size_t nq = rows_.size();
  for (size_t p = 0; p < column.size(); ++p) {
    if (column[p].index >= nq) {
      return Status::InvalidArgument("column entry query index out of range");
    }
    if (column[p].benefit == 0.0) {
      return Status::InvalidArgument("column entry benefit must be nonzero");
    }
    if (p > 0 && column[p].index <= column[p - 1].index) {
      return Status::InvalidArgument("column entries must ascend by query");
    }
  }
  for (size_t p = 0; p < overlapping.size(); ++p) {
    if (overlapping[p] >= j) {
      return Status::InvalidArgument("overlap partner out of range");
    }
    if (p > 0 && overlapping[p] <= overlapping[p - 1]) {
      return Status::InvalidArgument("overlap partners must ascend");
    }
  }

  overhead_.push_back(overhead);
  columns_.push_back(column);
  max_benefit_.push_back(0.0);
  for (const Entry& e : column) {
    ++num_nonzero_;
    if (e.benefit > 0) {
      // j is the new maximum view index, so appending keeps the row
      // ascending; the row's exploration order is then re-sorted from
      // the identity permutation, exactly as a rebuild sorts it.
      rows_[e.index].push_back({j, e.benefit});
      ++num_positive_;
      RebuildRowOrder(e.index);
    }
  }
  RecomputeMaxBenefit(j);
  adjacency_.emplace_back(overlapping);
  for (size_t k : overlapping) {
    adjacency_[k].push_back(j);  // j is max: append keeps ascending
  }
  RecomputeTotals();
  return Status::OK();
}

Status MvsProblemIndex::RetireCandidateView(size_t j) {
  if (j >= overhead_.size()) {
    return Status::InvalidArgument("view index out of range");
  }
  // Rows: drop the j entry where present (then re-sort that row's
  // exploration order from identity — the rebuild's code path) and
  // renumber views above j. Rows that only renumber keep their
  // position-based permutation: positions and benefits are unchanged.
  for (size_t i = 0; i < rows_.size(); ++i) {
    auto& row = rows_[i];
    bool lost = false;
    size_t out = 0;
    for (size_t p = 0; p < row.size(); ++p) {
      if (row[p].index == j) {
        lost = true;
        --num_positive_;
        continue;
      }
      row[out] = row[p];
      if (row[out].index > j) --row[out].index;
      ++out;
    }
    if (lost) {
      row.resize(out);
      RebuildRowOrder(i);
    }
  }
  num_nonzero_ -= columns_[j].size();

  // Adjacency: remove j's symmetric edges, then renumber. No list
  // contains j afterwards, so a uniform decrement of the > j tail keeps
  // every list strictly ascending.
  for (size_t k : adjacency_[j]) {
    auto& adj = adjacency_[k];
    adj.erase(std::remove(adj.begin(), adj.end(), j), adj.end());
  }
  adjacency_.erase(adjacency_.begin() + static_cast<ptrdiff_t>(j));
  for (auto& adj : adjacency_) {
    for (size_t& k : adj) {
      if (k > j) --k;
    }
  }

  columns_.erase(columns_.begin() + static_cast<ptrdiff_t>(j));
  overhead_.erase(overhead_.begin() + static_cast<ptrdiff_t>(j));
  max_benefit_.erase(max_benefit_.begin() + static_cast<ptrdiff_t>(j));
  RecomputeTotals();
  return Status::OK();
}

bool MvsProblemIndex::operator==(const MvsProblemIndex& other) const {
  return overhead_ == other.overhead_ && rows_ == other.rows_ &&
         rows_by_benefit_ == other.rows_by_benefit_ &&
         row_has_ties_ == other.row_has_ties_ && columns_ == other.columns_ &&
         adjacency_ == other.adjacency_ &&
         max_benefit_ == other.max_benefit_ &&
         total_overhead_ == other.total_overhead_ &&
         total_max_benefit_ == other.total_max_benefit_ &&
         num_nonzero_ == other.num_nonzero_ &&
         num_positive_ == other.num_positive_;
}

double MvsProblemIndex::CurrentBenefit(
    size_t j, const std::vector<std::vector<bool>>& y) const {
  // Matches the dense pass `for i: if (y[i][j] && benefit[i][j] > 0)
  // b_cur[j] += benefit[i][j]` — ascending query order over the column.
  double total = 0.0;
  for (const Entry& e : columns_[j]) {
    if (e.benefit > 0 && y[e.index][j]) total += e.benefit;
  }
  return total;
}

}  // namespace autoview
