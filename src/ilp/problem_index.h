#pragma once

#include <algorithm>
#include <cstddef>
#include <vector>

#include "ilp/compact_problem.h"
#include "ilp/problem.h"
#include "util/status.h"

namespace autoview {

/// \brief Read-only sparse index over one MVS instance, built once per
/// Select() call and shared by every concurrent trial (const access
/// only after construction).
///
/// The index is self-contained: it can be built either from a dense
/// MvsProblem (the oracle path) or from a CompactMvsProblem whose rows
/// arrive from the streaming/sharded builder — the dense |Q| x |Z|
/// matrix need never exist. Both constructors produce bit-identical
/// structures for the same underlying instance (asserted by the
/// problem_index tests), because every array is accumulated in the same
/// ascending order either way.
///
/// Contents: three sparse projections plus the per-view aggregates the
/// solvers used to re-derive from scratch every iteration:
///
///  * CSR benefit rows: per query, the (view, B_ij) entries with
///    B_ij > 0, stored in ascending view order. Ascending order matters:
///    it makes sparse sums bit-identical to the dense row-major scans
///    they replace (the dense loops skip non-positive / unused cells, so
///    visiting only the support in the same order performs the exact
///    same float additions — see DESIGN.md §9).
///  * An inverted view -> queries index over the *nonzero* cells
///    (negative benefits included, matching the `benefit != 0` affected
///    test in RLView's environment step), ascending query order.
///  * Overlap adjacency lists replacing O(|Z|) dense row scans.
///
/// Each CSR row also carries a benefit-descending permutation computed
/// with the same std::sort call Y-Opt uses, so rows without duplicate
/// benefits can skip the per-solve sort (for rows with ties the solver
/// re-sorts the z-filtered subset, because an unstable sort of a subset
/// is not guaranteed to equal the filtered sort of the full row).
class MvsProblemIndex {
 public:
  /// One nonzero benefit cell.
  struct Entry {
    size_t index;    ///< view (in rows) or query (in columns)
    double benefit;  ///< B_ij as stored in the dense matrix

    bool operator==(const Entry& other) const {
      return index == other.index && benefit == other.benefit;
    }
  };

  /// Empty 0 x 0 index; grown one query/view at a time by the mutation
  /// methods below (the OnlineAdvisor's starting state).
  MvsProblemIndex() = default;

  explicit MvsProblemIndex(const MvsProblem& problem);
  /// Builds the identical index from compressed-CSR shards; no dense
  /// matrix is ever touched. `compact` may be released afterwards — the
  /// index owns copies of everything it needs.
  explicit MvsProblemIndex(const CompactMvsProblem& compact);

  size_t num_queries() const { return rows_.size(); }
  size_t num_views() const { return overhead_.size(); }

  /// Positive-benefit entries of query i, ascending view index.
  const std::vector<Entry>& Row(size_t i) const { return rows_[i]; }

  /// Positions into Row(i) ordered by descending benefit (the Y-Opt
  /// exploration order), computed with the solver's own comparator.
  const std::vector<size_t>& RowByBenefit(size_t i) const {
    return rows_by_benefit_[i];
  }

  /// True when Row(i) contains duplicate benefit values, in which case
  /// RowByBenefit() must not substitute for a per-subset sort.
  bool RowHasTies(size_t i) const { return row_has_ties_[i]; }

  /// Nonzero-benefit entries of view j's column, ascending query index.
  const std::vector<Entry>& Column(size_t j) const { return columns_[j]; }

  /// Views overlapping view j (Definition 5), ascending.
  const std::vector<size_t>& Overlapping(size_t j) const {
    return adjacency_[j];
  }

  /// Overlap flag x_jk via binary search of j's adjacency — the sparse
  /// stand-in for `problem.overlap[j][k]`.
  bool OverlapTest(size_t j, size_t k) const {
    const std::vector<size_t>& adj = adjacency_[j];
    return std::binary_search(adj.begin(), adj.end(), k);
  }

  /// O_j (the index keeps its own copy so compact-built instances do not
  /// depend on a live problem object).
  const std::vector<double>& Overhead() const { return overhead_; }

  /// B_max[j], bit-identical to MvsProblem::MaxBenefit(j).
  double MaxBenefit(size_t j) const { return max_benefit_[j]; }

  /// Standalone utility of view j: best-case benefit minus overhead
  /// (B_max[j] - O_j). A per-view invariant of the problem instance —
  /// independent of the evolving assignment — which is what the
  /// budgeted view store feeds its utility-per-byte eviction score, so
  /// eviction order stays deterministic for a given workload.
  double ViewUtility(size_t j) const { return max_benefit_[j] - overhead_[j]; }

  /// sum_j O_j and sum_j B_max[j], accumulated in ascending view order
  /// (the order the naive per-iteration aggregate loops used).
  double TotalOverhead() const { return total_overhead_; }
  double TotalMaxBenefit() const { return total_max_benefit_; }

  /// Total nonzero benefit cells (sizing work estimates and tests).
  size_t NumNonzero() const { return num_nonzero_; }

  /// Total positive benefit cells — exactly the cells a sparse utility
  /// evaluation reads (the benefit-cell count charged to
  /// GlobalSelection() by the incremental engines).
  size_t NumPositive() const { return num_positive_; }

  /// Utility of (z, y), bit-identical to the dense EvaluateUtility for
  /// any y whose support is within the positive-benefit support (true
  /// for every y the solvers produce). Reads O(nnz + |Z|) cells instead
  /// of |Q| x |Z|; the cells actually read are counted into
  /// GlobalSelection() by the callers, not here.
  double EvaluateUtilitySparse(const std::vector<bool>& z,
                               const std::vector<std::vector<bool>>& y) const;

  /// Recomputes b_cur[j] = sum_i { B_ij : y_ij, B_ij > 0 } for one view,
  /// bit-identical to the dense benefit pass (ascending query order).
  double CurrentBenefit(size_t j,
                        const std::vector<std::vector<bool>>& y) const;

  // -------------------------------------------------------------------
  // Mutations (the online advisor's re-indexing path). Each call leaves
  // the index equal (operator==, every field, FP values bit-exact) to
  // an index rebuilt from scratch over the mutated instance — see
  // DESIGN.md §12 for the per-field argument. Scalar totals are
  // re-folded in the canonical ascending order after every mutation;
  // per-row orders are re-sorted from the identity permutation exactly
  // as BuildOrdersAndAggregates does, so even unstable-sort outcomes
  // match a rebuild. Cost is O(affected) except RetireQueryRow /
  // RetireCandidateView, which renumber the tail (O(nnz) walks).

  /// Appends query row num_queries(): `entries` are the new row's
  /// nonzero cells (positive and negative), ascending view index.
  Status InsertQueryRow(const std::vector<Entry>& entries);

  /// Removes query row `i`; rows above it shift down one index.
  Status RetireQueryRow(size_t i);

  /// Appends view num_views(): `column` is its nonzero cells ascending
  /// query index; `overlapping` lists the existing views it overlaps
  /// (ascending; the symmetric edges are added automatically).
  Status AddCandidateView(double overhead, const std::vector<Entry>& column,
                          const std::vector<size_t>& overlapping);

  /// Removes view `j`; views above it shift down one index.
  Status RetireCandidateView(size_t j);

  /// Field-wise equality, FP values compared bit-exactly — the mutation
  /// tests assert EXPECT_EQ against a rebuilt-from-scratch index.
  bool operator==(const MvsProblemIndex& other) const;

 private:
  /// Shared tail of both constructors: per-row benefit-descending orders
  /// and tie flags, then the per-view aggregates. Requires rows_,
  /// columns_, adjacency_, overhead_ to be fully populated.
  void BuildOrdersAndAggregates();

  /// Re-sorts row i's benefit order from the identity permutation and
  /// refreshes its tie flag — the same code path a rebuild runs.
  void RebuildRowOrder(size_t i);

  /// Fresh ascending-query fold of column j's positive entries — the
  /// rebuild's MaxBenefit accumulation.
  void RecomputeMaxBenefit(size_t j);

  /// Fresh ascending-view folds of the two scalar totals.
  void RecomputeTotals();

  std::vector<double> overhead_;
  std::vector<std::vector<Entry>> rows_;
  std::vector<std::vector<size_t>> rows_by_benefit_;
  std::vector<bool> row_has_ties_;
  std::vector<std::vector<Entry>> columns_;
  std::vector<std::vector<size_t>> adjacency_;
  std::vector<double> max_benefit_;
  double total_overhead_ = 0.0;
  double total_max_benefit_ = 0.0;
  size_t num_nonzero_ = 0;
  size_t num_positive_ = 0;
};

}  // namespace autoview
