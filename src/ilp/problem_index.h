#pragma once

#include <cstddef>
#include <vector>

#include "ilp/problem.h"

namespace autoview {

/// \brief Read-only sparse index over one MvsProblem, built once per
/// Select() call and shared by every concurrent trial (const access
/// only after construction).
///
/// The dense problem arrays stay the source of truth; the index holds
/// three sparse projections of them plus the per-view aggregates the
/// solvers re-derived from scratch every iteration:
///
///  * CSR benefit rows: per query, the (view, B_ij) entries with
///    B_ij > 0, stored in ascending view order. Ascending order matters:
///    it makes sparse sums bit-identical to the dense row-major scans
///    they replace (the dense loops skip non-positive / unused cells, so
///    visiting only the support in the same order performs the exact
///    same float additions — see DESIGN.md §9).
///  * An inverted view -> queries index over the *nonzero* cells
///    (negative benefits included, matching the `benefit != 0` affected
///    test in RLView's environment step), ascending query order.
///  * Overlap adjacency lists replacing O(|Z|) dense row scans.
///
/// Each CSR row also carries a benefit-descending permutation computed
/// with the same std::sort call Y-Opt uses, so rows without duplicate
/// benefits can skip the per-solve sort (for rows with ties the solver
/// re-sorts the z-filtered subset, because an unstable sort of a subset
/// is not guaranteed to equal the filtered sort of the full row).
class MvsProblemIndex {
 public:
  /// One nonzero benefit cell.
  struct Entry {
    size_t index;    ///< view (in rows) or query (in columns)
    double benefit;  ///< B_ij as stored in the dense matrix
  };

  explicit MvsProblemIndex(const MvsProblem& problem);

  const MvsProblem& problem() const { return *problem_; }
  size_t num_queries() const { return problem_->num_queries(); }
  size_t num_views() const { return problem_->num_views(); }

  /// Positive-benefit entries of query i, ascending view index.
  const std::vector<Entry>& Row(size_t i) const { return rows_[i]; }

  /// Positions into Row(i) ordered by descending benefit (the Y-Opt
  /// exploration order), computed with the solver's own comparator.
  const std::vector<size_t>& RowByBenefit(size_t i) const {
    return rows_by_benefit_[i];
  }

  /// True when Row(i) contains duplicate benefit values, in which case
  /// RowByBenefit() must not substitute for a per-subset sort.
  bool RowHasTies(size_t i) const { return row_has_ties_[i]; }

  /// Nonzero-benefit entries of view j's column, ascending query index.
  const std::vector<Entry>& Column(size_t j) const { return columns_[j]; }

  /// Views overlapping view j (Definition 5), ascending.
  const std::vector<size_t>& Overlapping(size_t j) const {
    return adjacency_[j];
  }

  /// B_max[j], bit-identical to MvsProblem::MaxBenefit(j).
  double MaxBenefit(size_t j) const { return max_benefit_[j]; }

  /// sum_j O_j and sum_j B_max[j], accumulated in ascending view order
  /// (the order the naive per-iteration aggregate loops used).
  double TotalOverhead() const { return total_overhead_; }
  double TotalMaxBenefit() const { return total_max_benefit_; }

  /// Total nonzero benefit cells (sizing work estimates and tests).
  size_t NumNonzero() const { return num_nonzero_; }

  /// Total positive benefit cells — exactly the cells a sparse utility
  /// evaluation reads (the benefit-cell count charged to
  /// GlobalSelection() by the incremental engines).
  size_t NumPositive() const { return num_positive_; }

  /// Utility of (z, y), bit-identical to the dense EvaluateUtility for
  /// any y whose support is within the positive-benefit support (true
  /// for every y the solvers produce). Reads O(nnz + |Z|) cells instead
  /// of |Q| x |Z|; the cells actually read are counted into
  /// GlobalSelection() by the callers, not here.
  double EvaluateUtilitySparse(const std::vector<bool>& z,
                               const std::vector<std::vector<bool>>& y) const;

  /// Recomputes b_cur[j] = sum_i { B_ij : y_ij, B_ij > 0 } for one view,
  /// bit-identical to the dense benefit pass (ascending query order).
  double CurrentBenefit(size_t j,
                        const std::vector<std::vector<bool>>& y) const;

 private:
  const MvsProblem* problem_;
  std::vector<std::vector<Entry>> rows_;
  std::vector<std::vector<size_t>> rows_by_benefit_;
  std::vector<bool> row_has_ties_;
  std::vector<std::vector<Entry>> columns_;
  std::vector<std::vector<size_t>> adjacency_;
  std::vector<double> max_benefit_;
  double total_overhead_ = 0.0;
  double total_max_benefit_ = 0.0;
  size_t num_nonzero_ = 0;
  size_t num_positive_ = 0;
};

}  // namespace autoview
