#include "nn/modules.h"

namespace autoview {
namespace nn {

Linear::Linear(size_t in_features, size_t out_features, Rng* rng)
    : w_(Tensor::Xavier(in_features, out_features, rng)),
      b_(Tensor::Zeros(1, out_features, /*requires_grad=*/true)) {}

Embedding::Embedding(size_t vocab_size, size_t dim, Rng* rng, bool trainable)
    : weight_(Tensor::Uniform(vocab_size, dim, trainable ? 0.1 : 1.0, rng)),
      trainable_(trainable) {
  if (!trainable) {
    // Drop the grad requirement so frozen lookups skip backprop work.
    weight_.node()->requires_grad = false;
  }
}

Lstm::Lstm(size_t input_size, size_t hidden_size, Rng* rng)
    : input_size_(input_size),
      hidden_size_(hidden_size),
      w_(Tensor::Xavier(input_size + hidden_size, 4 * hidden_size, rng)),
      b_(Tensor::Zeros(1, 4 * hidden_size, /*requires_grad=*/true)) {
  // Initialize the forget-gate bias to 1 (standard trick for gradient
  // flow through early training).
  for (size_t j = hidden_size; j < 2 * hidden_size; ++j) {
    b_.mutable_data()[j] = 1.0;
  }
}

Tensor Lstm::Forward(const Tensor& sequence) const {
  Tensor h = Tensor::Zeros(1, hidden_size_);
  Tensor c = Tensor::Zeros(1, hidden_size_);
  if (!sequence.defined() || sequence.rows() == 0) return h;
  AV_CHECK_EQ(sequence.cols(), input_size_);
  const size_t H = hidden_size_;
  for (size_t t = 0; t < sequence.rows(); ++t) {
    Tensor x_t = SelectRow(sequence, t);
    Tensor xh = ConcatCols({x_t, h});
    Tensor gates = Add(MatMul(xh, w_), b_);  // 1 x 4H, gate order i,f,g,o
    Tensor i_g = Sigmoid(SliceCols(gates, 0, H));
    Tensor f_g = Sigmoid(SliceCols(gates, H, H));
    Tensor g_g = Tanh(SliceCols(gates, 2 * H, H));
    Tensor o_g = Sigmoid(SliceCols(gates, 3 * H, H));
    c = Add(Mul(f_g, c), Mul(i_g, g_g));
    h = Mul(o_g, Tanh(c));
  }
  return h;
}

std::vector<Tensor> Lstm::Parameters() const { return {w_, b_}; }

ConvBlock::ConvBlock(Rng* rng, size_t kernel_size)
    : kernel_(Tensor::Xavier(1, kernel_size, rng)),
      bias_(Tensor::Zeros(1, 1, /*requires_grad=*/true)),
      gamma_(Tensor::Full(1, 1, 1.0, /*requires_grad=*/true)),
      beta_(Tensor::Zeros(1, 1, /*requires_grad=*/true)) {}

Mlp::Mlp(const std::vector<size_t>& sizes, Rng* rng, bool relu_last)
    : relu_last_(relu_last) {
  AV_CHECK_GE(sizes.size(), 2u);
  for (size_t i = 0; i + 1 < sizes.size(); ++i) {
    layers_.emplace_back(sizes[i], sizes[i + 1], rng);
  }
}

Tensor Mlp::Forward(const Tensor& x) const {
  Tensor h = x;
  for (size_t i = 0; i < layers_.size(); ++i) {
    h = layers_[i].Forward(h);
    if (i + 1 < layers_.size() || relu_last_) h = ReLU(h);
  }
  return h;
}

std::vector<Tensor> Mlp::Parameters() const {
  std::vector<Tensor> params;
  for (const auto& layer : layers_) {
    for (const auto& p : layer.Parameters()) params.push_back(p);
  }
  return params;
}

void Mlp::CopyFrom(const Mlp& other) {
  auto mine = Parameters();
  auto theirs = other.Parameters();
  AV_CHECK_EQ(mine.size(), theirs.size());
  for (size_t i = 0; i < mine.size(); ++i) {
    AV_CHECK_EQ(mine[i].size(), theirs[i].size());
    mine[i].mutable_data() = theirs[i].data();
  }
}

MlpInference::MlpInference(const Mlp* mlp) : mlp_(mlp) {
  wt_.resize(mlp_->layers().size());
  bias_.resize(mlp_->layers().size());
  Refresh();
}

void MlpInference::Refresh() {
  for (size_t l = 0; l < mlp_->layers().size(); ++l) {
    const Linear& layer = mlp_->layers()[l];
    const size_t in = layer.in_features();
    const size_t out = layer.out_features();
    const std::vector<Scalar>& w = layer.weight().data();  // in x out
    wt_[l].resize(out * in);
    for (size_t p = 0; p < in; ++p) {
      for (size_t j = 0; j < out; ++j) {
        wt_[l][j * in + p] = w[p * out + j];
      }
    }
    bias_[l] = layer.bias().data();
  }
}

const std::vector<Scalar>& MlpInference::Forward(const Scalar* x,
                                                 size_t rows) {
  const auto& layers = mlp_->layers();
  AV_CHECK(!layers.empty());
  const Scalar* in = x;
  size_t cur = 0;
  for (size_t l = 0; l < layers.size(); ++l) {
    const size_t k = layers[l].in_features();
    const size_t n = layers[l].out_features();
    std::vector<Scalar>& out = buffers_[cur];
    out.resize(rows * n);
    MatMulTB(in, rows, k, wt_[l].data(), n, out.data());
    // Bias then ReLU, in the same per-element order as Add/ReLU.
    const std::vector<Scalar>& b = bias_[l];
    const bool relu = l + 1 < layers.size() || mlp_->relu_last();
    for (size_t i = 0; i < rows; ++i) {
      Scalar* oi = out.data() + i * n;
      for (size_t j = 0; j < n; ++j) oi[j] += b[j];
    }
    if (relu) {
      for (size_t i = 0; i < rows * n; ++i) {
        if (!(out[i] > 0)) out[i] = 0.0;
      }
    }
    in = out.data();
    cur ^= 1;
  }
  return buffers_[cur ^ 1];
}

}  // namespace nn
}  // namespace autoview
