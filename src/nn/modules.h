#pragma once

#include <memory>
#include <string>
#include <vector>

#include "nn/tensor.h"

namespace autoview {
namespace nn {

/// \brief Base class for parameterized layers.
class Module {
 public:
  virtual ~Module() = default;

  /// All trainable parameter tensors of this module (recursively).
  virtual std::vector<Tensor> Parameters() const = 0;

  /// Zeroes all parameter gradients.
  void ZeroGrad() const {
    for (auto& p : Parameters()) {
      Tensor t = p;
      t.ZeroGrad();
    }
  }

  /// Total number of trainable scalars.
  size_t NumParameters() const {
    size_t n = 0;
    for (const auto& p : Parameters()) n += p.size();
    return n;
  }
};

/// \brief Fully connected layer: y = x W + b.
class Linear : public Module {
 public:
  Linear(size_t in_features, size_t out_features, Rng* rng);

  /// (m x in) -> (m x out).
  Tensor Forward(const Tensor& x) const { return Add(MatMul(x, w_), b_); }

  std::vector<Tensor> Parameters() const override { return {w_, b_}; }

  size_t in_features() const { return w_.rows(); }
  size_t out_features() const { return w_.cols(); }

  const Tensor& weight() const { return w_; }
  const Tensor& bias() const { return b_; }

 private:
  Tensor w_;
  Tensor b_;
};

/// \brief Keyword Embedding (§IV-B2): a learned dense vector per
/// vocabulary id; equivalent to one-hot times a (n_k x n_d) matrix.
class Embedding : public Module {
 public:
  /// When `trainable` is false the table is frozen at its random
  /// initialization — used by the N-Kw / N-Str ablations, which replace
  /// *learned* embeddings with fixed vectors (the paper uses one-hot; a
  /// frozen random projection preserves the "not learned" property while
  /// keeping dimensions uniform — see DESIGN.md).
  Embedding(size_t vocab_size, size_t dim, Rng* rng, bool trainable = true);

  /// Looks up one row per id -> (ids.size() x dim).
  Tensor Forward(const std::vector<size_t>& ids) const {
    return GatherRows(weight_, ids);
  }

  std::vector<Tensor> Parameters() const override {
    return trainable_ ? std::vector<Tensor>{weight_} : std::vector<Tensor>{};
  }

  size_t vocab_size() const { return weight_.rows(); }
  size_t dim() const { return weight_.cols(); }

 private:
  Tensor weight_;
  bool trainable_ = true;
};

/// \brief Single-layer LSTM encoder (§IV-B2, LSTM1/LSTM2).
///
/// Consumes a (seq_len x input) matrix one timestep at a time and
/// returns the final hidden state (1 x hidden). Gates use the standard
/// formulation i,f,g,o with sigmoid/tanh activations.
class Lstm : public Module {
 public:
  Lstm(size_t input_size, size_t hidden_size, Rng* rng);

  /// Encodes the full sequence; returns h_T (1 x hidden). An empty
  /// sequence (0 rows) returns zeros.
  Tensor Forward(const Tensor& sequence) const;

  std::vector<Tensor> Parameters() const override;

  size_t input_size() const { return input_size_; }
  size_t hidden_size() const { return hidden_size_; }

 private:
  size_t input_size_;
  size_t hidden_size_;
  // Input/recurrent weights and bias per gate, fused: (in+hidden) x 4H.
  Tensor w_;
  Tensor b_;
};

/// \brief One convolution block of the String Encoding model (Fig. 6):
/// Conv2d(3x1) -> BatchNorm2d -> ReLU.
class ConvBlock : public Module {
 public:
  explicit ConvBlock(Rng* rng, size_t kernel_size = 3);

  /// (len x dim) -> (len x dim).
  Tensor Forward(const Tensor& x) const {
    return ReLU(BatchNorm(Conv1D(x, kernel_, bias_), gamma_, beta_));
  }

  std::vector<Tensor> Parameters() const override {
    return {kernel_, bias_, gamma_, beta_};
  }

 private:
  Tensor kernel_;
  Tensor bias_;
  Tensor gamma_;
  Tensor beta_;
};

/// \brief Multi-layer perceptron of Linear+ReLU layers (ReLU after every
/// layer except optionally the last). Used for the DQN value network.
class Mlp : public Module {
 public:
  /// `sizes` = {in, h1, ..., out}; `relu_last` adds ReLU after the final
  /// layer too (the paper's DQN uses ReLU on every layer).
  Mlp(const std::vector<size_t>& sizes, Rng* rng, bool relu_last = false);

  Tensor Forward(const Tensor& x) const;

  std::vector<Tensor> Parameters() const override;

  /// Copies parameter values from another identically-shaped MLP (target
  /// network sync in DQN).
  void CopyFrom(const Mlp& other);

  const std::vector<Linear>& layers() const { return layers_; }
  bool relu_last() const { return relu_last_; }

 private:
  std::vector<Linear> layers_;
  bool relu_last_;
};

/// \brief Allocation-free forward evaluator for an Mlp (the no-grad
/// inference fast path).
///
/// Holds transposed snapshots of the layer weights (so the inner product
/// of MatMulTB streams two contiguous rows) plus two reusable activation
/// buffers; Forward() builds no tape nodes and allocates nothing after
/// the first call at a given batch size. Under the default GemmKernel
/// (kExact, see tensor.h) outputs are bit-identical to Mlp::Forward on
/// the same input: per element, MatMulTB replays the exact accumulation
/// order of MatMul, then the bias add and ReLU apply in the same
/// per-element order as Add/ReLU. Opting into GemmKernel::kBlocked
/// trades that for speed: outputs then match to a small relative
/// epsilon (sum reassociation only — see MatMulTBBlocked).
///
/// The snapshot is taken at construction; after any parameter update
/// (optimizer step, CopyFrom) call Refresh() or results go stale. Not
/// thread-safe — each thread needs its own instance.
class MlpInference {
 public:
  explicit MlpInference(const Mlp* mlp);

  /// Re-snapshots the current parameter values of the wrapped Mlp.
  void Refresh();

  /// Forward pass over `rows` inputs of in_features each (row-major).
  /// The returned buffer (rows x out_features) is owned by this object
  /// and valid until the next Forward() call.
  const std::vector<Scalar>& Forward(const Scalar* x, size_t rows);

 private:
  const Mlp* mlp_;
  std::vector<std::vector<Scalar>> wt_;    // per layer: out x in (W^T)
  std::vector<std::vector<Scalar>> bias_;  // per layer: out
  std::vector<Scalar> buffers_[2];
};

}  // namespace nn
}  // namespace autoview
