#include "nn/optimizer.h"

#include <cmath>

namespace autoview {
namespace nn {

Adam::Adam(std::vector<Tensor> params, Options options)
    : params_(std::move(params)), options_(options) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const auto& p : params_) {
    m_.emplace_back(p.size(), 0.0);
    v_.emplace_back(p.size(), 0.0);
  }
}

void Adam::Step() {
  ++t_;
  const Scalar bias1 = 1.0 - std::pow(options_.beta1, static_cast<Scalar>(t_));
  const Scalar bias2 = 1.0 - std::pow(options_.beta2, static_cast<Scalar>(t_));
  for (size_t i = 0; i < params_.size(); ++i) {
    auto& value = params_[i].mutable_data();
    const auto& grad = params_[i].grad();
    auto& m = m_[i];
    auto& v = v_[i];
    for (size_t j = 0; j < value.size(); ++j) {
      Scalar g = grad[j] + options_.weight_decay * value[j];
      m[j] = options_.beta1 * m[j] + (1.0 - options_.beta1) * g;
      v[j] = options_.beta2 * v[j] + (1.0 - options_.beta2) * g * g;
      const Scalar mhat = m[j] / bias1;
      const Scalar vhat = v[j] / bias2;
      value[j] -= options_.lr * mhat / (std::sqrt(vhat) + options_.eps);
    }
  }
}

void Adam::ZeroGrad() {
  for (auto& p : params_) p.ZeroGrad();
}

void Sgd::Step() {
  for (auto& p : params_) {
    auto& value = p.mutable_data();
    const auto& grad = p.grad();
    for (size_t j = 0; j < value.size(); ++j) value[j] -= lr_ * grad[j];
  }
}

void Sgd::ZeroGrad() {
  for (auto& p : params_) p.ZeroGrad();
}

}  // namespace nn
}  // namespace autoview
