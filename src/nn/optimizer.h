#pragma once

#include <vector>

#include "nn/tensor.h"

namespace autoview {
namespace nn {

/// \brief Adam optimizer [Kingma & Ba, 2014] — the paper's choice for
/// jointly optimizing all Wide-Deep parts (Algorithm 1, line 14).
class Adam {
 public:
  struct Options {
    Scalar lr = 1e-3;
    Scalar beta1 = 0.9;
    Scalar beta2 = 0.999;
    Scalar eps = 1e-8;
    Scalar weight_decay = 0.0;
  };

  explicit Adam(std::vector<Tensor> params) : Adam(std::move(params), Options{}) {}
  Adam(std::vector<Tensor> params, Options options);

  /// Applies one update from the accumulated gradients.
  void Step();

  /// Zeroes all parameter gradients.
  void ZeroGrad();

  Scalar learning_rate() const { return options_.lr; }
  void set_learning_rate(Scalar lr) { options_.lr = lr; }

 private:
  std::vector<Tensor> params_;
  Options options_;
  std::vector<std::vector<Scalar>> m_;
  std::vector<std::vector<Scalar>> v_;
  int64_t t_ = 0;
};

/// \brief Plain SGD (used by baselines and tests).
class Sgd {
 public:
  Sgd(std::vector<Tensor> params, Scalar lr) : params_(std::move(params)), lr_(lr) {}

  void Step();
  void ZeroGrad();

 private:
  std::vector<Tensor> params_;
  Scalar lr_;
};

}  // namespace nn
}  // namespace autoview
