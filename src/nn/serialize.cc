#include "nn/serialize.h"

#include <cstdio>
#include <cstring>
#include <memory>
#include <vector>

#include "util/checksum.h"
#include "util/failpoint.h"
#include "util/strings.h"

namespace autoview {
namespace nn {

namespace {

constexpr char kMagic[4] = {'A', 'V', 'N', 'N'};
constexpr uint32_t kVersion = 2;

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

Status WriteBytes(std::FILE* f, const void* data, size_t n) {
  if (std::fwrite(data, 1, n, f) != n) {
    return Status::Internal("short write");
  }
  return Status::OK();
}

Status ReadBytes(std::FILE* f, void* data, size_t n) {
  if (std::fread(data, 1, n, f) != n) {
    return Status::ParseError("short read / truncated model file");
  }
  return Status::OK();
}

void AppendBytes(std::vector<unsigned char>* buffer, const void* data,
                 size_t n) {
  const unsigned char* bytes = static_cast<const unsigned char*>(data);
  buffer->insert(buffer->end(), bytes, bytes + n);
}

/// Sequential reader over an in-memory payload with bounds checking.
class PayloadReader {
 public:
  PayloadReader(const unsigned char* data, size_t size)
      : data_(data), size_(size) {}

  // Overflow-safe bound checks: pos_ <= size_ always holds, so the
  // remaining byte count never underflows.
  Status Read(void* out, size_t n) {
    if (n > size_ - pos_) {
      return Status::ParseError("truncated model payload");
    }
    std::memcpy(out, data_ + pos_, n);
    pos_ += n;
    return Status::OK();
  }

  Status Skip(size_t n) {
    if (n > size_ - pos_) {
      return Status::ParseError("truncated model payload");
    }
    pos_ += n;
    return Status::OK();
  }

 private:
  const unsigned char* data_;
  size_t size_;
  size_t pos_ = 0;
};

/// Reads magic + version + checksum, then the remainder of the file into
/// `payload`, verifying the checksum. Shared by LoadParameters and
/// PeekShapes.
Status ReadVerifiedPayload(const std::string& path,
                           std::vector<unsigned char>* payload) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (!f) return Status::NotFound("cannot open: " + path);
  char magic[4];
  AV_RETURN_NOT_OK(ReadBytes(f.get(), magic, sizeof(magic)));
  if (std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::ParseError("not an AVNN model file: " + path);
  }
  uint32_t version = 0;
  AV_RETURN_NOT_OK(ReadBytes(f.get(), &version, sizeof(version)));
  if (version != kVersion) {
    return Status::Unsupported(
        StrFormat("model file version %u (expected %u)", version, kVersion));
  }
  uint64_t expected_checksum = 0;
  AV_RETURN_NOT_OK(
      ReadBytes(f.get(), &expected_checksum, sizeof(expected_checksum)));

  payload->clear();
  unsigned char chunk[1 << 16];
  size_t n;
  while ((n = std::fread(chunk, 1, sizeof(chunk), f.get())) > 0) {
    payload->insert(payload->end(), chunk, chunk + n);
  }
  if (std::ferror(f.get())) {
    return Status::Internal("read error: " + path);
  }

  // Fault site simulating on-disk corruption between save and load: a
  // bit flip in the buffered payload, caught by the checksum below.
  if (AV_FAILPOINT("serialize.load") == FailAction::kCorrupt &&
      !payload->empty()) {
    (*payload)[payload->size() / 2] ^= 0x40;
  }

  if (Fnv1a64(payload->data(), payload->size()) != expected_checksum) {
    return Status::ParseError("model file checksum mismatch (corrupt): " +
                              path);
  }
  return Status::OK();
}

}  // namespace

Status SaveParameters(const std::vector<Tensor>& params,
                      const std::string& path) {
  // Serialize the payload in memory first so the checksum lands in the
  // header and the file can be written in one pass.
  std::vector<unsigned char> payload;
  const uint64_t count = params.size();
  AppendBytes(&payload, &count, sizeof(count));
  for (const auto& p : params) {
    const uint64_t rows = p.rows(), cols = p.cols();
    AppendBytes(&payload, &rows, sizeof(rows));
    AppendBytes(&payload, &cols, sizeof(cols));
    AppendBytes(&payload, p.data().data(), p.data().size() * sizeof(Scalar));
  }
  const uint64_t checksum = Fnv1a64(payload.data(), payload.size());

  // Crash-safe: write everything to a temp file, then rename into
  // place. Readers either see the old complete file or the new one,
  // never a torn write.
  const std::string tmp = path + ".tmp";
  {
    FilePtr f(std::fopen(tmp.c_str(), "wb"));
    if (!f) return Status::Internal("cannot open for writing: " + tmp);
    Status status = WriteBytes(f.get(), kMagic, sizeof(kMagic));
    if (status.ok()) status = WriteBytes(f.get(), &kVersion, sizeof(kVersion));
    if (status.ok()) status = WriteBytes(f.get(), &checksum, sizeof(checksum));
    if (status.ok()) {
      status = WriteBytes(f.get(), payload.data(), payload.size());
    }
    // Fault site simulating a crash/IO error before the commit point.
    if (status.ok() &&
        AV_FAILPOINT("serialize.save") == FailAction::kError) {
      status = Status::Internal("failpoint injected error at serialize.save");
    }
    if (!status.ok()) {
      f.reset();
      std::remove(tmp.c_str());
      return status;
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::Internal("cannot rename into place: " + path);
  }
  return Status::OK();
}

Status LoadParameters(const std::string& path, std::vector<Tensor>* params) {
  std::vector<unsigned char> payload;
  AV_RETURN_NOT_OK(ReadVerifiedPayload(path, &payload));
  PayloadReader reader(payload.data(), payload.size());
  uint64_t count = 0;
  AV_RETURN_NOT_OK(reader.Read(&count, sizeof(count)));
  if (count != params->size()) {
    return Status::InvalidArgument(
        StrFormat("model file holds %llu tensors, module expects %zu",
                  static_cast<unsigned long long>(count), params->size()));
  }
  for (auto& p : *params) {
    uint64_t rows = 0, cols = 0;
    AV_RETURN_NOT_OK(reader.Read(&rows, sizeof(rows)));
    AV_RETURN_NOT_OK(reader.Read(&cols, sizeof(cols)));
    if (rows != p.rows() || cols != p.cols()) {
      return Status::InvalidArgument(
          StrFormat("tensor shape mismatch: file %llux%llu vs module %zux%zu",
                    static_cast<unsigned long long>(rows),
                    static_cast<unsigned long long>(cols), p.rows(),
                    p.cols()));
    }
    AV_RETURN_NOT_OK(reader.Read(p.mutable_data().data(),
                                 p.mutable_data().size() * sizeof(Scalar)));
  }
  return Status::OK();
}

Result<std::vector<std::pair<size_t, size_t>>> PeekShapes(
    const std::string& path) {
  std::vector<unsigned char> payload;
  AV_RETURN_NOT_OK(ReadVerifiedPayload(path, &payload));
  PayloadReader reader(payload.data(), payload.size());
  uint64_t count = 0;
  AV_RETURN_NOT_OK(reader.Read(&count, sizeof(count)));
  std::vector<std::pair<size_t, size_t>> shapes;
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t rows = 0, cols = 0;
    AV_RETURN_NOT_OK(reader.Read(&rows, sizeof(rows)));
    AV_RETURN_NOT_OK(reader.Read(&cols, sizeof(cols)));
    if (cols != 0 && rows > SIZE_MAX / sizeof(Scalar) / cols) {
      return Status::ParseError("tensor shape overflows");
    }
    shapes.emplace_back(rows, cols);
    AV_RETURN_NOT_OK(reader.Skip(rows * cols * sizeof(Scalar)));
  }
  return shapes;
}

}  // namespace nn
}  // namespace autoview
