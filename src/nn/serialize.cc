#include "nn/serialize.h"

#include <cstdio>
#include <cstring>
#include <memory>

#include "util/strings.h"

namespace autoview {
namespace nn {

namespace {

constexpr char kMagic[4] = {'A', 'V', 'N', 'N'};
constexpr uint32_t kVersion = 1;

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

Status WriteBytes(std::FILE* f, const void* data, size_t n) {
  if (std::fwrite(data, 1, n, f) != n) {
    return Status::Internal("short write");
  }
  return Status::OK();
}

Status ReadBytes(std::FILE* f, void* data, size_t n) {
  if (std::fread(data, 1, n, f) != n) {
    return Status::ParseError("short read / truncated model file");
  }
  return Status::OK();
}

}  // namespace

Status SaveParameters(const std::vector<Tensor>& params,
                      const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "wb"));
  if (!f) return Status::Internal("cannot open for writing: " + path);
  AV_RETURN_NOT_OK(WriteBytes(f.get(), kMagic, sizeof(kMagic)));
  AV_RETURN_NOT_OK(WriteBytes(f.get(), &kVersion, sizeof(kVersion)));
  const uint64_t count = params.size();
  AV_RETURN_NOT_OK(WriteBytes(f.get(), &count, sizeof(count)));
  for (const auto& p : params) {
    const uint64_t rows = p.rows(), cols = p.cols();
    AV_RETURN_NOT_OK(WriteBytes(f.get(), &rows, sizeof(rows)));
    AV_RETURN_NOT_OK(WriteBytes(f.get(), &cols, sizeof(cols)));
    AV_RETURN_NOT_OK(WriteBytes(f.get(), p.data().data(),
                                p.data().size() * sizeof(Scalar)));
  }
  return Status::OK();
}

Status LoadParameters(const std::string& path, std::vector<Tensor>* params) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (!f) return Status::NotFound("cannot open: " + path);
  char magic[4];
  AV_RETURN_NOT_OK(ReadBytes(f.get(), magic, sizeof(magic)));
  if (std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::ParseError("not an AVNN model file: " + path);
  }
  uint32_t version = 0;
  AV_RETURN_NOT_OK(ReadBytes(f.get(), &version, sizeof(version)));
  if (version != kVersion) {
    return Status::Unsupported(
        StrFormat("model file version %u (expected %u)", version, kVersion));
  }
  uint64_t count = 0;
  AV_RETURN_NOT_OK(ReadBytes(f.get(), &count, sizeof(count)));
  if (count != params->size()) {
    return Status::InvalidArgument(
        StrFormat("model file holds %llu tensors, module expects %zu",
                  static_cast<unsigned long long>(count), params->size()));
  }
  for (auto& p : *params) {
    uint64_t rows = 0, cols = 0;
    AV_RETURN_NOT_OK(ReadBytes(f.get(), &rows, sizeof(rows)));
    AV_RETURN_NOT_OK(ReadBytes(f.get(), &cols, sizeof(cols)));
    if (rows != p.rows() || cols != p.cols()) {
      return Status::InvalidArgument(
          StrFormat("tensor shape mismatch: file %llux%llu vs module %zux%zu",
                    static_cast<unsigned long long>(rows),
                    static_cast<unsigned long long>(cols), p.rows(),
                    p.cols()));
    }
    AV_RETURN_NOT_OK(ReadBytes(f.get(), p.mutable_data().data(),
                               p.mutable_data().size() * sizeof(Scalar)));
  }
  return Status::OK();
}

Result<std::vector<std::pair<size_t, size_t>>> PeekShapes(
    const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (!f) return Status::NotFound("cannot open: " + path);
  char magic[4];
  AV_RETURN_NOT_OK(ReadBytes(f.get(), magic, sizeof(magic)));
  if (std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::ParseError("not an AVNN model file: " + path);
  }
  uint32_t version = 0;
  AV_RETURN_NOT_OK(ReadBytes(f.get(), &version, sizeof(version)));
  uint64_t count = 0;
  AV_RETURN_NOT_OK(ReadBytes(f.get(), &count, sizeof(count)));
  std::vector<std::pair<size_t, size_t>> shapes;
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t rows = 0, cols = 0;
    AV_RETURN_NOT_OK(ReadBytes(f.get(), &rows, sizeof(rows)));
    AV_RETURN_NOT_OK(ReadBytes(f.get(), &cols, sizeof(cols)));
    shapes.emplace_back(rows, cols);
    if (std::fseek(f.get(),
                   static_cast<long>(rows * cols * sizeof(Scalar)),
                   SEEK_CUR) != 0) {
      return Status::ParseError("truncated model file");
    }
  }
  return shapes;
}

}  // namespace nn
}  // namespace autoview
