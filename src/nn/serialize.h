#pragma once

#include <string>
#include <vector>

#include "nn/tensor.h"
#include "util/status.h"

namespace autoview {
namespace nn {

/// \brief Parameter (de)serialization for trained models.
///
/// The paper's system trains models offline and ships them to the
/// online recommendation path (Fig. 3); these helpers persist a
/// module's parameter list to a simple self-describing binary file.
///
/// Format: magic "AVNN", u32 version, u64 tensor count, then per tensor
/// u64 rows, u64 cols, rows*cols doubles (little-endian host order).

/// Writes `params` (in order) to `path`.
Status SaveParameters(const std::vector<Tensor>& params,
                      const std::string& path);

/// Reads parameters from `path` into `params` (shapes must match).
Status LoadParameters(const std::string& path, std::vector<Tensor>* params);

/// Reads just the tensor shapes stored in `path`.
Result<std::vector<std::pair<size_t, size_t>>> PeekShapes(
    const std::string& path);

}  // namespace nn
}  // namespace autoview
