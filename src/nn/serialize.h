#pragma once

#include <string>
#include <vector>

#include "nn/tensor.h"
#include "util/status.h"

namespace autoview {
namespace nn {

/// \brief Parameter (de)serialization for trained models.
///
/// The paper's system trains models offline and ships them to the
/// online recommendation path (Fig. 3); these helpers persist a
/// module's parameter list to a simple self-describing binary file.
///
/// Format (version 2): magic "AVNN", u32 version, u64 FNV-1a checksum
/// of the payload, then the payload: u64 tensor count and per tensor
/// u64 rows, u64 cols, rows*cols doubles (little-endian host order).
///
/// Robustness guarantees:
///  - Saves are crash-safe: the file is written to `<path>.tmp` and
///    renamed into place, so a crash mid-save never leaves a truncated
///    model at `path` (the previous model, if any, survives).
///  - Loads verify the header checksum; a truncated or bit-flipped file
///    yields Status::ParseError instead of garbage tensors.

/// Writes `params` (in order) to `path` (atomically, via temp+rename).
Status SaveParameters(const std::vector<Tensor>& params,
                      const std::string& path);

/// Reads parameters from `path` into `params` (shapes must match).
Status LoadParameters(const std::string& path, std::vector<Tensor>* params);

/// Reads just the tensor shapes stored in `path`.
Result<std::vector<std::pair<size_t, size_t>>> PeekShapes(
    const std::string& path);

}  // namespace nn
}  // namespace autoview
