#include "nn/tensor.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <string>
#include <unordered_set>

#if defined(AUTOVIEW_SIMD) && defined(__AVX2__)
#include <immintrin.h>
#endif

namespace autoview {
namespace nn {

using internal::Node;

namespace detail_gemm {
// -1 = uninitialized: first ActiveGemmKernel() call reads the
// AUTOVIEW_GEMM_KERNEL environment variable. Relaxed: a torn choice is
// impossible (single int), and either kernel is a correct MatMulTB.
std::atomic<int> g_kernel{-1};
}  // namespace detail_gemm

namespace {

/// Depth of nested NoGradGuards on this thread.
thread_local int no_grad_depth = 0;

std::shared_ptr<Node> NewNode(size_t rows, size_t cols, bool requires_grad) {
  auto node = std::make_shared<Node>();
  node->rows = rows;
  node->cols = cols;
  node->value.assign(rows * cols, 0.0);
  if (no_grad_depth == 0) {
    node->grad.assign(rows * cols, 0.0);
    node->requires_grad = requires_grad;
  }
  return node;
}

/// Creates the result node of an op over `parents`; requires_grad is
/// inherited from any parent. Under a NoGradGuard the parents are
/// dropped (no graph retention) and the node carries no gradient; the
/// backward closures the ops still attach are then unreachable, since
/// Backward() refuses to start from a gradient-less node.
std::shared_ptr<Node> OpNode(size_t rows, size_t cols,
                             std::vector<std::shared_ptr<Node>> parents) {
  if (no_grad_depth > 0) return NewNode(rows, cols, /*requires_grad=*/false);
  bool needs_grad = false;
  for (const auto& p : parents) needs_grad |= p->requires_grad;
  auto node = NewNode(rows, cols, needs_grad);
  node->parents = std::move(parents);
  return node;
}

}  // namespace

NoGradGuard::NoGradGuard() { ++no_grad_depth; }
NoGradGuard::~NoGradGuard() { --no_grad_depth; }

bool InferenceMode() { return no_grad_depth > 0; }

Tensor Tensor::Zeros(size_t rows, size_t cols, bool requires_grad) {
  return Tensor(NewNode(rows, cols, requires_grad));
}

Tensor Tensor::Full(size_t rows, size_t cols, Scalar fill,
                    bool requires_grad) {
  auto node = NewNode(rows, cols, requires_grad);
  std::fill(node->value.begin(), node->value.end(), fill);
  return Tensor(node);
}

Tensor Tensor::FromData(std::vector<Scalar> data, size_t rows, size_t cols,
                        bool requires_grad) {
  AV_CHECK_EQ(data.size(), rows * cols);
  auto node = NewNode(rows, cols, requires_grad);
  node->value = std::move(data);
  return Tensor(node);
}

Tensor Tensor::Xavier(size_t rows, size_t cols, Rng* rng) {
  const Scalar scale =
      std::sqrt(6.0 / static_cast<Scalar>(rows + cols));
  return Uniform(rows, cols, scale, rng);
}

Tensor Tensor::Uniform(size_t rows, size_t cols, Scalar scale, Rng* rng) {
  auto node = NewNode(rows, cols, /*requires_grad=*/true);
  for (auto& v : node->value) v = rng->Uniform(-scale, scale);
  return Tensor(node);
}

void Tensor::Backward() const {
  AV_CHECK(node_ != nullptr);
  AV_CHECK_EQ(node_->size(), 1u);
  // Results produced under a NoGradGuard have no gradient storage.
  AV_CHECK(!node_->grad.empty());
  // Topological order via iterative post-order DFS.
  std::vector<Node*> order;
  std::unordered_set<Node*> visited;
  std::vector<std::pair<Node*, size_t>> stack = {{node_.get(), 0}};
  visited.insert(node_.get());
  while (!stack.empty()) {
    auto& [node, next_child] = stack.back();
    if (next_child < node->parents.size()) {
      Node* parent = node->parents[next_child].get();
      ++next_child;
      if (parent->requires_grad && !visited.count(parent)) {
        visited.insert(parent);
        stack.push_back({parent, 0});
      }
    } else {
      order.push_back(node);
      stack.pop_back();
    }
  }
  // order is post-order (parents before consumers); reverse it so the
  // output comes first.
  node_->grad[0] += 1.0;
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    if ((*it)->backward) (*it)->backward(**it);
  }
}

Tensor MatMul(const Tensor& a, const Tensor& b) {
  AV_CHECK_EQ(a.cols(), b.rows());
  const size_t m = a.rows(), k = a.cols(), n = b.cols();
  auto out = OpNode(m, n, {a.node(), b.node()});
  const auto& av = a.data();
  const auto& bv = b.data();
  for (size_t i = 0; i < m; ++i) {
    for (size_t p = 0; p < k; ++p) {
      const Scalar aip = av[i * k + p];
      if (aip == 0.0) continue;
      for (size_t j = 0; j < n; ++j) {
        out->value[i * n + j] += aip * bv[p * n + j];
      }
    }
  }
  out->backward = [m, k, n](Node& self) {
    Node& A = *self.parents[0];
    Node& B = *self.parents[1];
    if (A.requires_grad) {
      // dA = dOut * B^T
      for (size_t i = 0; i < m; ++i) {
        for (size_t j = 0; j < n; ++j) {
          const Scalar g = self.grad[i * n + j];
          if (g == 0.0) continue;
          for (size_t p = 0; p < k; ++p) {
            A.grad[i * k + p] += g * B.value[p * n + j];
          }
        }
      }
    }
    if (B.requires_grad) {
      // dB = A^T * dOut
      for (size_t p = 0; p < k; ++p) {
        for (size_t i = 0; i < m; ++i) {
          const Scalar aip = A.value[i * k + p];
          if (aip == 0.0) continue;
          for (size_t j = 0; j < n; ++j) {
            B.grad[p * n + j] += aip * self.grad[i * n + j];
          }
        }
      }
    }
  };
  return Tensor(out);
}

GemmKernel ActiveGemmKernel() {
  int v = detail_gemm::g_kernel.load(std::memory_order_relaxed);
  if (v < 0) {
    const char* env = std::getenv("AUTOVIEW_GEMM_KERNEL");
    v = (env != nullptr && std::string(env) == "blocked")
            ? static_cast<int>(GemmKernel::kBlocked)
            : static_cast<int>(GemmKernel::kExact);
    detail_gemm::g_kernel.store(v, std::memory_order_relaxed);
  }
  return static_cast<GemmKernel>(v);
}

void SetGemmKernel(GemmKernel kernel) {
  detail_gemm::g_kernel.store(static_cast<int>(kernel),
                              std::memory_order_relaxed);
}

void MatMulTB(const Scalar* a, size_t m, size_t k, const Scalar* bt, size_t n,
              Scalar* out) {
  if (ActiveGemmKernel() == GemmKernel::kBlocked) {
    MatMulTBBlocked(a, m, k, bt, n, out);
    return;
  }
  MatMulTBExact(a, m, k, bt, n, out);
}

void MatMulTBExact(const Scalar* a, size_t m, size_t k, const Scalar* bt,
                   size_t n, Scalar* out) {
  // Each output element owns an independent accumulator filled over p in
  // ascending order with the `aip == 0.0` skip, i.e. exactly the float
  // additions MatMul's forward performs for that element — only the
  // traversal (row-of-a times row-of-bt, 4 columns at a time) differs.
  constexpr size_t kTile = 4;
  for (size_t i = 0; i < m; ++i) {
    const Scalar* ai = a + i * k;
    Scalar* oi = out + i * n;
    size_t j = 0;
    for (; j + kTile <= n; j += kTile) {
      const Scalar* b0 = bt + j * k;
      const Scalar* b1 = b0 + k;
      const Scalar* b2 = b1 + k;
      const Scalar* b3 = b2 + k;
      Scalar acc0 = 0.0, acc1 = 0.0, acc2 = 0.0, acc3 = 0.0;
      for (size_t p = 0; p < k; ++p) {
        const Scalar aip = ai[p];
        if (aip == 0.0) continue;
        acc0 += aip * b0[p];
        acc1 += aip * b1[p];
        acc2 += aip * b2[p];
        acc3 += aip * b3[p];
      }
      oi[j] = acc0;
      oi[j + 1] = acc1;
      oi[j + 2] = acc2;
      oi[j + 3] = acc3;
    }
    for (; j < n; ++j) {
      const Scalar* bj = bt + j * k;
      Scalar acc = 0.0;
      for (size_t p = 0; p < k; ++p) {
        const Scalar aip = ai[p];
        if (aip == 0.0) continue;
        acc += aip * bj[p];
      }
      oi[j] = acc;
    }
  }
}

namespace {

/// One masked term of the blocked inner product: the zero-skip as a
/// select instead of a branch. `av == 0.0` skips -0.0 like +0.0 and is
/// false for NaN, so NaN/Inf rows of `a` propagate exactly like the
/// exact kernel (which also skips on `av == 0.0` only).
inline Scalar MaskedTerm(Scalar av, Scalar bv) {
  return av == 0.0 ? 0.0 : av * bv;
}

/// Fixed lane-combination order shared by the generic and intrinsic
/// paths: (l0+l1)+(l2+l3), then the scalar tail. Changing this changes
/// results; the two builds must stay bit-identical to each other.
inline Scalar CombineLanes(const Scalar lanes[4], Scalar tail) {
  return (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]) + tail;
}

}  // namespace

void MatMulTBBlocked(const Scalar* a, size_t m, size_t k, const Scalar* bt,
                     size_t n, Scalar* out) {
  constexpr size_t kColTile = 4;
  constexpr size_t kLanes = 4;
  const size_t k4 = k - k % kLanes;
  size_t j = 0;
  for (; j + kColTile <= n; j += kColTile) {
    // Tile-outer order: these four bt rows (4*k scalars) stay cache-hot
    // across every row of a — the blocking that the exact kernel's
    // row-outer order lacks once n*k spills the last-level cache.
    const Scalar* b0 = bt + j * k;
    const Scalar* b1 = b0 + k;
    const Scalar* b2 = b1 + k;
    const Scalar* b3 = b2 + k;
    for (size_t i = 0; i < m; ++i) {
      const Scalar* ai = a + i * k;
      Scalar* oi = out + i * n + j;
#if defined(AUTOVIEW_SIMD) && defined(__AVX2__)
      const __m256d vzero = _mm256_setzero_pd();
      __m256d acc0 = vzero, acc1 = vzero, acc2 = vzero, acc3 = vzero;
      for (size_t p = 0; p < k4; p += kLanes) {
        const __m256d va = _mm256_loadu_pd(ai + p);
        // NEQ_UQ (unordered-or-not-equal) keeps NaN lanes in the mask;
        // an ordered compare would silently drop them.
        const __m256d mask = _mm256_cmp_pd(va, vzero, _CMP_NEQ_UQ);
        acc0 = _mm256_add_pd(
            acc0, _mm256_and_pd(
                      mask, _mm256_mul_pd(va, _mm256_loadu_pd(b0 + p))));
        acc1 = _mm256_add_pd(
            acc1, _mm256_and_pd(
                      mask, _mm256_mul_pd(va, _mm256_loadu_pd(b1 + p))));
        acc2 = _mm256_add_pd(
            acc2, _mm256_and_pd(
                      mask, _mm256_mul_pd(va, _mm256_loadu_pd(b2 + p))));
        acc3 = _mm256_add_pd(
            acc3, _mm256_and_pd(
                      mask, _mm256_mul_pd(va, _mm256_loadu_pd(b3 + p))));
      }
      alignas(32) Scalar lanes0[4], lanes1[4], lanes2[4], lanes3[4];
      _mm256_store_pd(lanes0, acc0);
      _mm256_store_pd(lanes1, acc1);
      _mm256_store_pd(lanes2, acc2);
      _mm256_store_pd(lanes3, acc3);
#else
      Scalar lanes0[kLanes] = {0, 0, 0, 0};
      Scalar lanes1[kLanes] = {0, 0, 0, 0};
      Scalar lanes2[kLanes] = {0, 0, 0, 0};
      Scalar lanes3[kLanes] = {0, 0, 0, 0};
      for (size_t p = 0; p < k4; p += kLanes) {
        for (size_t l = 0; l < kLanes; ++l) {
          const Scalar av = ai[p + l];
          lanes0[l] += MaskedTerm(av, b0[p + l]);
          lanes1[l] += MaskedTerm(av, b1[p + l]);
          lanes2[l] += MaskedTerm(av, b2[p + l]);
          lanes3[l] += MaskedTerm(av, b3[p + l]);
        }
      }
#endif
      Scalar tail0 = 0.0, tail1 = 0.0, tail2 = 0.0, tail3 = 0.0;
      for (size_t p = k4; p < k; ++p) {
        const Scalar av = ai[p];
        tail0 += MaskedTerm(av, b0[p]);
        tail1 += MaskedTerm(av, b1[p]);
        tail2 += MaskedTerm(av, b2[p]);
        tail3 += MaskedTerm(av, b3[p]);
      }
      oi[0] = CombineLanes(lanes0, tail0);
      oi[1] = CombineLanes(lanes1, tail1);
      oi[2] = CombineLanes(lanes2, tail2);
      oi[3] = CombineLanes(lanes3, tail3);
    }
  }
  // Remaining columns (n % 4), same lane scheme one column at a time.
  for (; j < n; ++j) {
    const Scalar* bj = bt + j * k;
    for (size_t i = 0; i < m; ++i) {
      const Scalar* ai = a + i * k;
      Scalar lanes[kLanes] = {0, 0, 0, 0};
      for (size_t p = 0; p < k4; p += kLanes) {
        for (size_t l = 0; l < kLanes; ++l) {
          lanes[l] += MaskedTerm(ai[p + l], bj[p + l]);
        }
      }
      Scalar tail = 0.0;
      for (size_t p = k4; p < k; ++p) {
        tail += MaskedTerm(ai[p], bj[p]);
      }
      out[i * n + j] = CombineLanes(lanes, tail);
    }
  }
}

Tensor Add(const Tensor& a, const Tensor& b) {
  AV_CHECK_EQ(a.cols(), b.cols());
  const bool broadcast = b.rows() == 1 && a.rows() != 1;
  AV_CHECK(broadcast || a.rows() == b.rows());
  const size_t m = a.rows(), n = a.cols();
  auto out = OpNode(m, n, {a.node(), b.node()});
  for (size_t i = 0; i < m; ++i) {
    for (size_t j = 0; j < n; ++j) {
      out->value[i * n + j] =
          a.data()[i * n + j] + b.data()[(broadcast ? 0 : i) * n + j];
    }
  }
  out->backward = [m, n, broadcast](Node& self) {
    Node& A = *self.parents[0];
    Node& B = *self.parents[1];
    for (size_t i = 0; i < m; ++i) {
      for (size_t j = 0; j < n; ++j) {
        const Scalar g = self.grad[i * n + j];
        if (A.requires_grad) A.grad[i * n + j] += g;
        if (B.requires_grad) B.grad[(broadcast ? 0 : i) * n + j] += g;
      }
    }
  };
  return Tensor(out);
}

Tensor Sub(const Tensor& a, const Tensor& b) {
  AV_CHECK_EQ(a.rows(), b.rows());
  AV_CHECK_EQ(a.cols(), b.cols());
  auto out = OpNode(a.rows(), a.cols(), {a.node(), b.node()});
  for (size_t i = 0; i < out->size(); ++i) {
    out->value[i] = a.data()[i] - b.data()[i];
  }
  out->backward = [](Node& self) {
    Node& A = *self.parents[0];
    Node& B = *self.parents[1];
    for (size_t i = 0; i < self.size(); ++i) {
      if (A.requires_grad) A.grad[i] += self.grad[i];
      if (B.requires_grad) B.grad[i] -= self.grad[i];
    }
  };
  return Tensor(out);
}

Tensor Mul(const Tensor& a, const Tensor& b) {
  AV_CHECK_EQ(a.rows(), b.rows());
  AV_CHECK_EQ(a.cols(), b.cols());
  auto out = OpNode(a.rows(), a.cols(), {a.node(), b.node()});
  for (size_t i = 0; i < out->size(); ++i) {
    out->value[i] = a.data()[i] * b.data()[i];
  }
  out->backward = [](Node& self) {
    Node& A = *self.parents[0];
    Node& B = *self.parents[1];
    for (size_t i = 0; i < self.size(); ++i) {
      if (A.requires_grad) A.grad[i] += self.grad[i] * B.value[i];
      if (B.requires_grad) B.grad[i] += self.grad[i] * A.value[i];
    }
  };
  return Tensor(out);
}

Tensor Scale(const Tensor& a, Scalar s) {
  auto out = OpNode(a.rows(), a.cols(), {a.node()});
  for (size_t i = 0; i < out->size(); ++i) out->value[i] = a.data()[i] * s;
  out->backward = [s](Node& self) {
    Node& A = *self.parents[0];
    if (!A.requires_grad) return;
    for (size_t i = 0; i < self.size(); ++i) A.grad[i] += self.grad[i] * s;
  };
  return Tensor(out);
}

Tensor ReLU(const Tensor& a) {
  auto out = OpNode(a.rows(), a.cols(), {a.node()});
  for (size_t i = 0; i < out->size(); ++i) {
    out->value[i] = a.data()[i] > 0 ? a.data()[i] : 0.0;
  }
  out->backward = [](Node& self) {
    Node& A = *self.parents[0];
    if (!A.requires_grad) return;
    for (size_t i = 0; i < self.size(); ++i) {
      if (A.value[i] > 0) A.grad[i] += self.grad[i];
    }
  };
  return Tensor(out);
}

Tensor Sigmoid(const Tensor& a) {
  auto out = OpNode(a.rows(), a.cols(), {a.node()});
  for (size_t i = 0; i < out->size(); ++i) {
    out->value[i] = 1.0 / (1.0 + std::exp(-a.data()[i]));
  }
  out->backward = [](Node& self) {
    Node& A = *self.parents[0];
    if (!A.requires_grad) return;
    for (size_t i = 0; i < self.size(); ++i) {
      const Scalar y = self.value[i];
      A.grad[i] += self.grad[i] * y * (1.0 - y);
    }
  };
  return Tensor(out);
}

Tensor Tanh(const Tensor& a) {
  auto out = OpNode(a.rows(), a.cols(), {a.node()});
  for (size_t i = 0; i < out->size(); ++i) {
    out->value[i] = std::tanh(a.data()[i]);
  }
  out->backward = [](Node& self) {
    Node& A = *self.parents[0];
    if (!A.requires_grad) return;
    for (size_t i = 0; i < self.size(); ++i) {
      const Scalar y = self.value[i];
      A.grad[i] += self.grad[i] * (1.0 - y * y);
    }
  };
  return Tensor(out);
}

Tensor ConcatCols(const std::vector<Tensor>& parts) {
  AV_CHECK(!parts.empty());
  const size_t m = parts[0].rows();
  size_t total = 0;
  std::vector<std::shared_ptr<Node>> parents;
  for (const auto& part : parts) {
    AV_CHECK_EQ(part.rows(), m);
    total += part.cols();
    parents.push_back(part.node());
  }
  auto out = OpNode(m, total, std::move(parents));
  size_t offset = 0;
  for (const auto& part : parts) {
    const size_t n = part.cols();
    for (size_t i = 0; i < m; ++i) {
      for (size_t j = 0; j < n; ++j) {
        out->value[i * total + offset + j] = part.data()[i * n + j];
      }
    }
    offset += n;
  }
  out->backward = [m, total](Node& self) {
    size_t off = 0;
    for (const auto& parent : self.parents) {
      const size_t n = parent->cols;
      if (parent->requires_grad) {
        for (size_t i = 0; i < m; ++i) {
          for (size_t j = 0; j < n; ++j) {
            parent->grad[i * n + j] += self.grad[i * total + off + j];
          }
        }
      }
      off += n;
    }
  };
  return Tensor(out);
}

Tensor ConcatRows(const std::vector<Tensor>& parts) {
  AV_CHECK(!parts.empty());
  const size_t n = parts[0].cols();
  size_t total = 0;
  std::vector<std::shared_ptr<Node>> parents;
  for (const auto& part : parts) {
    AV_CHECK_EQ(part.cols(), n);
    total += part.rows();
    parents.push_back(part.node());
  }
  auto out = OpNode(total, n, std::move(parents));
  size_t row = 0;
  for (const auto& part : parts) {
    std::copy(part.data().begin(), part.data().end(),
              out->value.begin() + row * n);
    row += part.rows();
  }
  out->backward = [n](Node& self) {
    size_t row = 0;
    for (const auto& parent : self.parents) {
      if (parent->requires_grad) {
        for (size_t i = 0; i < parent->size(); ++i) {
          parent->grad[i] += self.grad[row * n + i];
        }
      }
      row += parent->rows;
    }
  };
  return Tensor(out);
}

Tensor GatherRows(const Tensor& a, const std::vector<size_t>& indices) {
  const size_t n = a.cols();
  auto out = OpNode(indices.size(), n, {a.node()});
  for (size_t i = 0; i < indices.size(); ++i) {
    AV_CHECK_LT(indices[i], a.rows());
    std::copy(a.data().begin() + indices[i] * n,
              a.data().begin() + (indices[i] + 1) * n,
              out->value.begin() + i * n);
  }
  out->backward = [indices, n](Node& self) {
    Node& A = *self.parents[0];
    if (!A.requires_grad) return;
    for (size_t i = 0; i < indices.size(); ++i) {
      for (size_t j = 0; j < n; ++j) {
        A.grad[indices[i] * n + j] += self.grad[i * n + j];
      }
    }
  };
  return Tensor(out);
}

Tensor SelectRow(const Tensor& a, size_t r) { return GatherRows(a, {r}); }

Tensor SliceCols(const Tensor& a, size_t start, size_t len) {
  AV_CHECK_LE(start + len, a.cols());
  const size_t m = a.rows(), n = a.cols();
  auto out = OpNode(m, len, {a.node()});
  for (size_t i = 0; i < m; ++i) {
    for (size_t j = 0; j < len; ++j) {
      out->value[i * len + j] = a.data()[i * n + start + j];
    }
  }
  out->backward = [m, n, start, len](Node& self) {
    Node& A = *self.parents[0];
    if (!A.requires_grad) return;
    for (size_t i = 0; i < m; ++i) {
      for (size_t j = 0; j < len; ++j) {
        A.grad[i * n + start + j] += self.grad[i * len + j];
      }
    }
  };
  return Tensor(out);
}

Tensor MeanRows(const Tensor& a) {
  const size_t m = a.rows(), n = a.cols();
  AV_CHECK_GT(m, 0u);
  auto out = OpNode(1, n, {a.node()});
  for (size_t i = 0; i < m; ++i) {
    for (size_t j = 0; j < n; ++j) {
      out->value[j] += a.data()[i * n + j];
    }
  }
  for (size_t j = 0; j < n; ++j) out->value[j] /= static_cast<Scalar>(m);
  out->backward = [m, n](Node& self) {
    Node& A = *self.parents[0];
    if (!A.requires_grad) return;
    for (size_t i = 0; i < m; ++i) {
      for (size_t j = 0; j < n; ++j) {
        A.grad[i * n + j] += self.grad[j] / static_cast<Scalar>(m);
      }
    }
  };
  return Tensor(out);
}

Tensor Sum(const Tensor& a) {
  auto out = OpNode(1, 1, {a.node()});
  for (Scalar v : a.data()) out->value[0] += v;
  out->backward = [](Node& self) {
    Node& A = *self.parents[0];
    if (!A.requires_grad) return;
    for (auto& g : A.grad) g += self.grad[0];
  };
  return Tensor(out);
}

Tensor Mean(const Tensor& a) {
  return Scale(Sum(a), 1.0 / static_cast<Scalar>(a.size()));
}

Tensor MseLoss(const Tensor& pred, const Tensor& target) {
  Tensor diff = Sub(pred, target);
  return Mean(Mul(diff, diff));
}

Tensor Conv1D(const Tensor& input, const Tensor& kernel, const Tensor& bias) {
  AV_CHECK_EQ(kernel.rows(), 1u);
  AV_CHECK_EQ(bias.size(), 1u);
  const size_t m = input.rows(), n = input.cols(), k = kernel.cols();
  const int64_t half = static_cast<int64_t>(k) / 2;
  auto out = OpNode(m, n, {input.node(), kernel.node(), bias.node()});
  for (size_t i = 0; i < m; ++i) {
    for (size_t j = 0; j < n; ++j) {
      Scalar acc = bias.data()[0];
      for (size_t t = 0; t < k; ++t) {
        const int64_t r = static_cast<int64_t>(i) + static_cast<int64_t>(t) -
                          half;
        if (r < 0 || r >= static_cast<int64_t>(m)) continue;  // zero pad
        acc += kernel.data()[t] * input.data()[static_cast<size_t>(r) * n + j];
      }
      out->value[i * n + j] = acc;
    }
  }
  out->backward = [m, n, k, half](Node& self) {
    Node& in = *self.parents[0];
    Node& ker = *self.parents[1];
    Node& b = *self.parents[2];
    for (size_t i = 0; i < m; ++i) {
      for (size_t j = 0; j < n; ++j) {
        const Scalar g = self.grad[i * n + j];
        if (g == 0.0) continue;
        if (b.requires_grad) b.grad[0] += g;
        for (size_t t = 0; t < k; ++t) {
          const int64_t r = static_cast<int64_t>(i) +
                            static_cast<int64_t>(t) - half;
          if (r < 0 || r >= static_cast<int64_t>(m)) continue;
          const size_t idx = static_cast<size_t>(r) * n + j;
          if (ker.requires_grad) ker.grad[t] += g * in.value[idx];
          if (in.requires_grad) in.grad[idx] += g * ker.value[t];
        }
      }
    }
  };
  return Tensor(out);
}

Tensor BatchNorm(const Tensor& a, const Tensor& gamma, const Tensor& beta,
                 Scalar eps) {
  AV_CHECK_EQ(gamma.size(), 1u);
  AV_CHECK_EQ(beta.size(), 1u);
  const size_t count = a.size();
  AV_CHECK_GT(count, 0u);
  Scalar mean = 0.0;
  for (Scalar v : a.data()) mean += v;
  mean /= static_cast<Scalar>(count);
  Scalar var = 0.0;
  for (Scalar v : a.data()) var += (v - mean) * (v - mean);
  var /= static_cast<Scalar>(count);
  const Scalar inv_std = 1.0 / std::sqrt(var + eps);

  auto out = OpNode(a.rows(), a.cols(), {a.node(), gamma.node(), beta.node()});
  const Scalar g0 = gamma.data()[0];
  const Scalar b0 = beta.data()[0];
  for (size_t i = 0; i < count; ++i) {
    out->value[i] = g0 * (a.data()[i] - mean) * inv_std + b0;
  }
  out->backward = [mean, inv_std, count, g0](Node& self) {
    Node& A = *self.parents[0];
    Node& G = *self.parents[1];
    Node& B = *self.parents[2];
    // Precompute sums needed by the batch-norm backward formula.
    Scalar sum_dy = 0.0, sum_dy_xhat = 0.0;
    std::vector<Scalar> xhat(count);
    for (size_t i = 0; i < count; ++i) {
      xhat[i] = (A.value[i] - mean) * inv_std;
      sum_dy += self.grad[i];
      sum_dy_xhat += self.grad[i] * xhat[i];
    }
    if (G.requires_grad) G.grad[0] += sum_dy_xhat;
    if (B.requires_grad) B.grad[0] += sum_dy;
    if (A.requires_grad) {
      const Scalar nc = static_cast<Scalar>(count);
      for (size_t i = 0; i < count; ++i) {
        A.grad[i] += g0 * inv_std / nc *
                     (nc * self.grad[i] - sum_dy - xhat[i] * sum_dy_xhat);
      }
    }
  };
  return Tensor(out);
}

}  // namespace nn
}  // namespace autoview
