#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <vector>

#include "util/logging.h"
#include "util/random.h"

namespace autoview {
namespace nn {

/// Numeric type of the autograd engine. Double keeps finite-difference
/// gradient checks tight; model sizes in this library are tiny.
using Scalar = double;

namespace internal {

/// \brief One node of the autograd tape: a dense row-major matrix, its
/// gradient, and a closure that back-propagates into its parents.
struct Node {
  size_t rows = 0;
  size_t cols = 0;
  std::vector<Scalar> value;
  std::vector<Scalar> grad;
  bool requires_grad = false;
  std::vector<std::shared_ptr<Node>> parents;
  std::function<void(Node&)> backward;

  size_t size() const { return rows * cols; }
  Scalar& at(size_t r, size_t c) { return value[r * cols + c]; }
  Scalar at(size_t r, size_t c) const { return value[r * cols + c]; }
  Scalar& gat(size_t r, size_t c) { return grad[r * cols + c]; }
};

}  // namespace internal

/// \brief RAII scope that disables autograd-tape construction on the
/// current thread (the no-grad inference mode).
///
/// Ops executed inside the scope produce bit-identical values but their
/// result nodes allocate no gradient buffer, record no parents, and
/// never require grad — so the graph is not retained and intermediate
/// nodes free as soon as their Tensor handles go out of scope. Calling
/// Backward() on a tensor produced under the guard is a programming
/// error (it has no gradient storage and AV_CHECKs).
///
/// The flag is thread-local: pool workers each control their own scope
/// (training on one thread is unaffected by inference on another).
/// Guards nest.
class NoGradGuard {
 public:
  NoGradGuard();
  ~NoGradGuard();
  NoGradGuard(const NoGradGuard&) = delete;
  NoGradGuard& operator=(const NoGradGuard&) = delete;
};

/// True while at least one NoGradGuard is alive on this thread.
bool InferenceMode();

/// \brief A handle to an autograd tape node holding a 2-D matrix.
///
/// Tensors are created by factories or produced by the free-function ops
/// below; every op records a backward closure so Backward() on a scalar
/// result fills the .grad() of every reachable tensor that
/// requires_grad. Vectors are 1xN matrices.
class Tensor {
 public:
  /// Empty (invalid) tensor.
  Tensor() = default;

  static Tensor Zeros(size_t rows, size_t cols, bool requires_grad = false);
  static Tensor Full(size_t rows, size_t cols, Scalar fill,
                     bool requires_grad = false);
  static Tensor FromData(std::vector<Scalar> data, size_t rows, size_t cols,
                         bool requires_grad = false);
  /// Xavier/Glorot-uniform initialization, for weight matrices.
  static Tensor Xavier(size_t rows, size_t cols, Rng* rng);
  /// Uniform in [-scale, scale].
  static Tensor Uniform(size_t rows, size_t cols, Scalar scale, Rng* rng);

  bool defined() const { return node_ != nullptr; }
  size_t rows() const { return node_->rows; }
  size_t cols() const { return node_->cols; }
  size_t size() const { return node_->size(); }
  bool requires_grad() const { return node_->requires_grad; }

  Scalar at(size_t r, size_t c) const { return node_->at(r, c); }
  /// Scalar value of a 1x1 tensor.
  Scalar item() const {
    AV_CHECK_EQ(size(), 1u);
    return node_->value[0];
  }

  const std::vector<Scalar>& data() const { return node_->value; }
  std::vector<Scalar>& mutable_data() { return node_->value; }
  const std::vector<Scalar>& grad() const { return node_->grad; }
  std::vector<Scalar>& mutable_grad() { return node_->grad; }

  /// Clears this tensor's gradient.
  void ZeroGrad() { std::fill(node_->grad.begin(), node_->grad.end(), 0.0); }

  /// Runs reverse-mode autodiff from this scalar (1x1) tensor.
  /// Gradients accumulate; call ZeroGrad on parameters between steps.
  void Backward() const;

  /// Internal node access for ops.
  const std::shared_ptr<internal::Node>& node() const { return node_; }

  /// Wraps an existing node.
  explicit Tensor(std::shared_ptr<internal::Node> node)
      : node_(std::move(node)) {}

 private:
  std::shared_ptr<internal::Node> node_;
};

// --- Operations (all differentiable unless noted) -----------------------

/// Matrix product: (m x k) * (k x n) -> (m x n).
Tensor MatMul(const Tensor& a, const Tensor& b);

/// Which inner kernel MatMulTB runs on the no-grad inference path.
///
/// Determinism contract: kExact is the default and is bit-identical to
/// MatMul's forward loop (deterministic tests rely on this). kBlocked is
/// an opt-in fast kernel: run-to-run deterministic (fixed lane-sum
/// order), preserves the `a[i][p] == 0.0` zero-skip and NaN/Inf
/// propagation, but reassociates the per-element sum into four p-lanes,
/// so outputs match kExact only to a small relative epsilon (see
/// MatMulTBBlocked). Select per process with the AUTOVIEW_GEMM_KERNEL
/// environment variable ("exact" | "blocked"; anything else = exact) or
/// programmatically with SetGemmKernel.
enum class GemmKernel {
  kExact,    ///< scalar oracle, bit-identical to MatMul forward
  kBlocked,  ///< cache-blocked, lane-vectorized; epsilon-equal to kExact
};

/// The kernel MatMulTB currently dispatches to. First call reads
/// AUTOVIEW_GEMM_KERNEL; SetGemmKernel overrides at any time.
GemmKernel ActiveGemmKernel();

/// Overrides the MatMulTB kernel process-wide (tests restore kExact).
void SetGemmKernel(GemmKernel kernel);

/// Raw no-autograd kernel: out = a * b with `bt` supplied transposed
/// (n x k row-major), writing into caller-owned storage — no tape node
/// is created. Dispatches to MatMulTBExact or MatMulTBBlocked per
/// ActiveGemmKernel(); the default (exact) is bit-identical to MatMul
/// (NaN/Inf propagation included). `out` must hold m x n scalars and
/// may not alias the inputs.
void MatMulTB(const Scalar* a, size_t m, size_t k, const Scalar* bt, size_t n,
              Scalar* out);

/// The exact kernel: every out[i][j] is accumulated over p in ascending
/// order with the same `a[i][p] == 0.0` skip as MatMul's forward loop,
/// so the result is bit-identical to MatMul (NaN/Inf propagation
/// included); the transposed layout turns the inner product into two
/// contiguous streams and the column tiling amortizes reloads of a's
/// row.
void MatMulTBExact(const Scalar* a, size_t m, size_t k, const Scalar* bt,
                   size_t n, Scalar* out);

/// The fast kernel: column tiles of 4 are walked with the *tile* as the
/// outer loop (the four bt rows stay cache-hot across all m rows of a)
/// and the inner product runs in four independent p-lanes — plain
/// autovectorizable C by default, explicit AVX2 intrinsics when built
/// with -DAUTOVIEW_SIMD=ON on an AVX2 target (both orderings are
/// identical: lanes combine as (l0+l1)+(l2+l3), then the scalar tail).
/// The zero-skip becomes a select (`a==0 ? 0 : a*b` — NaN lanes are
/// kept: the AVX2 mask uses an unordered NEQ compare), so NaN/Inf rows
/// propagate exactly like the exact kernel and -0.0 inputs are skipped
/// like +0.0. Relative to kExact the only change is sum association,
/// bounding the error by ~k ulps of the largest partial sum; the GEMM
/// oracle test asserts a 1e-12 relative bound on conditioned inputs.
void MatMulTBBlocked(const Scalar* a, size_t m, size_t k, const Scalar* bt,
                     size_t n, Scalar* out);

/// Element-wise sum; `b` may also be a 1xN row vector broadcast over
/// `a`'s rows (bias add).
Tensor Add(const Tensor& a, const Tensor& b);

/// Element-wise difference (same shapes).
Tensor Sub(const Tensor& a, const Tensor& b);

/// Element-wise (Hadamard) product (same shapes).
Tensor Mul(const Tensor& a, const Tensor& b);

/// Scalar scale.
Tensor Scale(const Tensor& a, Scalar s);

/// Rectified linear unit.
Tensor ReLU(const Tensor& a);

Tensor Sigmoid(const Tensor& a);
Tensor Tanh(const Tensor& a);

/// Horizontal concatenation of matrices with equal row counts.
Tensor ConcatCols(const std::vector<Tensor>& parts);

/// Vertical concatenation of matrices with equal column counts.
Tensor ConcatRows(const std::vector<Tensor>& parts);

/// Selects rows of `a` by index (with repetition); gradients scatter-add
/// back. This is the embedding-lookup primitive.
Tensor GatherRows(const Tensor& a, const std::vector<size_t>& indices);

/// Columns [start, start+len) of `a` as an (m x len) tensor.
Tensor SliceCols(const Tensor& a, size_t start, size_t len);

/// Row `r` of `a` as a 1xN tensor.
Tensor SelectRow(const Tensor& a, size_t r);

/// Mean over rows: (m x n) -> (1 x n). The paper's average pooling.
Tensor MeanRows(const Tensor& a);

/// Sum of all elements -> 1x1.
Tensor Sum(const Tensor& a);

/// Mean of all elements -> 1x1.
Tensor Mean(const Tensor& a);

/// Mean squared error between same-shaped tensors -> 1x1.
Tensor MseLoss(const Tensor& pred, const Tensor& target);

/// 1-D convolution along the row axis with a `k`-tap kernel shared by
/// all columns plus one bias per tap-position-independent column set:
/// out[r][c] = bias + sum_t kernel[t] * in[r+t-k/2][c]  (zero padding).
/// This is the paper's Conv2d with 3x1 kernels applied to the stacked
/// char-embedding matrix. `kernel` is (1 x k), `bias` is 1x1.
Tensor Conv1D(const Tensor& input, const Tensor& kernel, const Tensor& bias);

/// Batch normalization over all elements of `a` using its batch
/// statistics, then affine transform: gamma * x_hat + beta (both 1x1).
/// `eps` stabilizes the variance. Matches BatchNorm2d with one channel.
Tensor BatchNorm(const Tensor& a, const Tensor& gamma, const Tensor& beta,
                 Scalar eps = 1e-5);

}  // namespace nn
}  // namespace autoview
