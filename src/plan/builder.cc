#include "plan/builder.h"

#include <unordered_set>

#include "sql/parser.h"
#include "util/strings.h"

namespace autoview {

namespace {

/// One FROM-clause source visible during name resolution.
struct Scope {
  std::string alias;     // alias or base-table name
  size_t start = 0;      // offset of its first column in the combined row
  PlanNodePtr node;      // the subplan providing the columns
};

/// Builder state for one SELECT level.
class StmtBuilder {
 public:
  StmtBuilder(const Catalog* catalog) : catalog_(catalog) {}

  Result<PlanNodePtr> Build(const SelectStmt& stmt) {
    // 1. FROM + JOIN chain.
    AV_ASSIGN_OR_RETURN(PlanNodePtr plan, BuildTableRef(stmt.from));
    PushScope(stmt.from, plan);
    for (const auto& join : stmt.joins) {
      AV_ASSIGN_OR_RETURN(PlanNodePtr right, BuildTableRef(join.right));
      PushScope(join.right, right);
      AV_ASSIGN_OR_RETURN(ExprPtr cond, ResolveExpr(*join.condition));
      AV_ASSIGN_OR_RETURN(plan, PlanNode::MakeJoin(plan, right, cond));
    }

    // 2. WHERE.
    if (stmt.where) {
      AV_ASSIGN_OR_RETURN(ExprPtr pred, ResolveExpr(*stmt.where));
      AV_ASSIGN_OR_RETURN(plan, PlanNode::MakeFilter(plan, pred));
    }

    // 3. SELECT list (+ GROUP BY).
    bool has_agg = !stmt.group_by.empty();
    for (const auto& item : stmt.items) {
      if (item.expr->kind == AstExprKind::kAggCall) has_agg = true;
    }
    Result<PlanNodePtr> shaped =
        has_agg ? BuildAggregate(stmt, std::move(plan))
                : BuildProjection(stmt, std::move(plan));
    if (!shaped.ok()) return shaped;
    return ApplyTail(stmt, std::move(shaped).value());
  }

  /// DISTINCT / ORDER BY / LIMIT after the select list. ORDER BY keys
  /// resolve against the select-list output (aliases included), as in
  /// standard SQL.
  Result<PlanNodePtr> ApplyTail(const SelectStmt& stmt,
                                PlanNodePtr plan) const {
    if (stmt.distinct) {
      AV_ASSIGN_OR_RETURN(plan, PlanNode::MakeDistinct(std::move(plan)));
    }
    if (!stmt.order_by.empty()) {
      std::vector<SortKey> keys;
      for (const auto& key : stmt.order_by) {
        std::optional<size_t> idx;
        for (size_t c = 0; c < plan->output().size(); ++c) {
          if (plan->output()[c].name == key.column->name) {
            idx = c;
            break;
          }
        }
        if (!idx) {
          return Status::NotFound("ORDER BY column not in select list: " +
                                  key.column->name);
        }
        keys.push_back({*idx, key.descending});
      }
      AV_ASSIGN_OR_RETURN(plan,
                          PlanNode::MakeSort(std::move(plan), std::move(keys)));
    }
    if (stmt.limit >= 0) {
      AV_ASSIGN_OR_RETURN(plan, PlanNode::MakeLimit(std::move(plan),
                                                    stmt.limit));
    }
    return plan;
  }

 private:
  void PushScope(const TableRef& ref, const PlanNodePtr& node) {
    Scope scope;
    scope.alias = !ref.alias.empty() ? ref.alias : ref.table;
    scope.start = combined_.size();
    scope.node = node;
    // Mirror MakeJoin's duplicate-name disambiguation so resolved
    // expressions carry the final combined-row column names.
    for (const auto& col : node->output()) {
      std::string name = col.name;
      int suffix = 2;
      while (combined_names_.count(name)) {
        name = col.name + "_" + std::to_string(suffix++);
      }
      combined_names_.insert(name);
      combined_.push_back({name, col.type});
    }
    scopes_.push_back(std::move(scope));
  }

  Result<PlanNodePtr> BuildTableRef(const TableRef& ref) {
    if (ref.is_subquery()) {
      StmtBuilder sub(catalog_);
      return sub.Build(*ref.subquery);
    }
    return PlanNode::MakeScan(*catalog_, ref.table);
  }

  /// Resolves [qualifier.]name to an index in the combined row.
  Result<size_t> ResolveColumn(const std::string& qualifier,
                               const std::string& name) const {
    if (!qualifier.empty()) {
      for (const auto& scope : scopes_) {
        if (scope.alias != qualifier) continue;
        if (auto idx = FindInScope(scope, name)) return *idx;
        return Status::NotFound("column " + qualifier + "." + name);
      }
      return Status::NotFound("unknown table alias: " + qualifier);
    }
    std::optional<size_t> found;
    for (const auto& scope : scopes_) {
      if (auto idx = FindInScope(scope, name)) {
        if (found) {
          return Status::InvalidArgument("ambiguous column: " + name);
        }
        found = *idx;
      }
    }
    if (!found) return Status::NotFound("unknown column: " + name);
    return *found;
  }

  std::optional<size_t> FindInScope(const Scope& scope,
                                    const std::string& name) const {
    const auto& cols = scope.node->output();
    for (size_t i = 0; i < cols.size(); ++i) {
      if (cols[i].name == name) return scope.start + i;
    }
    return std::nullopt;
  }

  Result<ExprPtr> ResolveExpr(const AstExpr& ast) const {
    switch (ast.kind) {
      case AstExprKind::kColumnRef: {
        AV_ASSIGN_OR_RETURN(size_t idx, ResolveColumn(ast.qualifier, ast.name));
        return Expr::Column(idx, combined_[idx].name, combined_[idx].type);
      }
      case AstExprKind::kLiteral:
        return Expr::Literal(ast.literal);
      case AstExprKind::kCompare: {
        AV_ASSIGN_OR_RETURN(ExprPtr l, ResolveExpr(*ast.children[0]));
        AV_ASSIGN_OR_RETURN(ExprPtr r, ResolveExpr(*ast.children[1]));
        CompareOp op;
        if (ast.op == "=") {
          op = CompareOp::kEq;
        } else if (ast.op == "<>") {
          op = CompareOp::kNe;
        } else if (ast.op == "<") {
          op = CompareOp::kLt;
        } else if (ast.op == "<=") {
          op = CompareOp::kLe;
        } else if (ast.op == ">") {
          op = CompareOp::kGt;
        } else if (ast.op == ">=") {
          op = CompareOp::kGe;
        } else {
          return Status::Unsupported("comparison op: " + ast.op);
        }
        return Expr::Compare(op, l, r);
      }
      case AstExprKind::kAnd:
      case AstExprKind::kOr: {
        std::vector<ExprPtr> kids;
        for (const auto& child : ast.children) {
          AV_ASSIGN_OR_RETURN(ExprPtr k, ResolveExpr(*child));
          kids.push_back(std::move(k));
        }
        return ast.kind == AstExprKind::kAnd ? Expr::And(std::move(kids))
                                             : Expr::Or(std::move(kids));
      }
      case AstExprKind::kNot: {
        AV_ASSIGN_OR_RETURN(ExprPtr k, ResolveExpr(*ast.children[0]));
        return Expr::Not(k);
      }
      default:
        return Status::Unsupported("expression kind not valid here");
    }
  }

  /// SELECT list without aggregation: Project (or pass-through for `*`).
  Result<PlanNodePtr> BuildProjection(const SelectStmt& stmt,
                                      PlanNodePtr plan) const {
    if (stmt.items.size() == 1 &&
        stmt.items[0].expr->kind == AstExprKind::kStar) {
      return plan;
    }
    std::vector<ProjectItem> items;
    for (const auto& item : stmt.items) {
      if (item.expr->kind == AstExprKind::kStar) {
        return Status::Unsupported("* mixed with other select items");
      }
      AV_ASSIGN_OR_RETURN(ExprPtr expr, ResolveExpr(*item.expr));
      std::string name = !item.alias.empty() ? item.alias
                         : expr->kind() == ExprKind::kColumn
                             ? expr->column_name()
                             : "expr";
      items.push_back({std::move(expr), std::move(name)});
    }
    return PlanNode::MakeProject(std::move(plan), std::move(items));
  }

  /// SELECT list with aggregation: Aggregate (+ Project for renames or
  /// reordering when needed).
  Result<PlanNodePtr> BuildAggregate(const SelectStmt& stmt,
                                     PlanNodePtr plan) const {
    std::vector<size_t> group_cols;
    for (const auto& g : stmt.group_by) {
      if (g->kind != AstExprKind::kColumnRef) {
        return Status::Unsupported("GROUP BY must list columns");
      }
      AV_ASSIGN_OR_RETURN(size_t idx, ResolveColumn(g->qualifier, g->name));
      group_cols.push_back(idx);
    }

    std::vector<AggItem> aggs;
    // target[i]: the aggregate-output position select item i maps to.
    std::vector<size_t> target;
    std::vector<std::string> names;
    for (const auto& item : stmt.items) {
      if (item.expr->kind == AstExprKind::kAggCall) {
        AggItem agg;
        const std::string& fn = item.expr->op;
        if (fn == "COUNT" && item.expr->children.empty()) {
          agg.kind = AggKind::kCountStar;
        } else if (fn == "COUNT") {
          agg.kind = AggKind::kCount;
        } else if (fn == "SUM") {
          agg.kind = AggKind::kSum;
        } else if (fn == "MIN") {
          agg.kind = AggKind::kMin;
        } else if (fn == "MAX") {
          agg.kind = AggKind::kMax;
        } else if (fn == "AVG") {
          agg.kind = AggKind::kAvg;
        } else {
          return Status::Unsupported("aggregate: " + fn);
        }
        if (!item.expr->children.empty()) {
          const auto& col = *item.expr->children[0];
          AV_ASSIGN_OR_RETURN(size_t idx,
                              ResolveColumn(col.qualifier, col.name));
          agg.input_column = idx;
        }
        agg.name = item.alias;
        target.push_back(group_cols.size() + aggs.size());
        names.push_back(item.alias);
        aggs.push_back(std::move(agg));
      } else if (item.expr->kind == AstExprKind::kColumnRef) {
        AV_ASSIGN_OR_RETURN(
            size_t idx,
            ResolveColumn(item.expr->qualifier, item.expr->name));
        // Must be one of the group keys.
        size_t pos = group_cols.size();
        for (size_t g = 0; g < group_cols.size(); ++g) {
          if (group_cols[g] == idx) pos = g;
        }
        if (pos == group_cols.size()) {
          return Status::InvalidArgument(
              "selected column not in GROUP BY: " + item.expr->name);
        }
        target.push_back(pos);
        names.push_back(item.alias);
      } else {
        return Status::Unsupported("select item in aggregate query");
      }
    }

    AV_ASSIGN_OR_RETURN(
        PlanNodePtr agg_plan,
        PlanNode::MakeAggregate(std::move(plan), group_cols, std::move(aggs)));

    // Add a Project only if the select order/naming differs from the
    // aggregate's natural (groups..., aggs...) output.
    bool identity = target.size() == agg_plan->output().size();
    for (size_t i = 0; identity && i < target.size(); ++i) {
      identity = target[i] == i &&
                 (names[i].empty() || names[i] == agg_plan->output()[i].name);
    }
    if (identity) return agg_plan;

    std::vector<ProjectItem> items;
    for (size_t i = 0; i < target.size(); ++i) {
      const auto& col = agg_plan->output()[target[i]];
      items.push_back({Expr::Column(target[i], col.name, col.type),
                       names[i].empty() ? col.name : names[i]});
    }
    return PlanNode::MakeProject(std::move(agg_plan), std::move(items));
  }

  const Catalog* catalog_;
  std::vector<Scope> scopes_;
  std::vector<OutputColumn> combined_;
  std::unordered_set<std::string> combined_names_;
};

}  // namespace

Result<PlanNodePtr> PlanBuilder::Build(const SelectStmt& stmt) const {
  StmtBuilder builder(catalog_);
  return builder.Build(stmt);
}

Result<PlanNodePtr> PlanBuilder::BuildFromSql(const std::string& sql) const {
  AV_ASSIGN_OR_RETURN(auto stmt, ParseSelect(sql));
  return Build(*stmt);
}

}  // namespace autoview
