#pragma once

#include <memory>
#include <string>

#include "catalog/catalog.h"
#include "plan/plan.h"
#include "sql/ast.h"
#include "util/status.h"

namespace autoview {

/// \brief Translates parsed SELECT statements into logical plans.
///
/// Derived tables become subplans; aliases are resolved against a scope
/// stack; queries with aggregates get an Aggregate node (plus a Project
/// on top when the select-list order/names differ from the aggregate's
/// natural output).
class PlanBuilder {
 public:
  explicit PlanBuilder(const Catalog* catalog) : catalog_(catalog) {}

  /// Builds the logical plan for `stmt`.
  Result<PlanNodePtr> Build(const SelectStmt& stmt) const;

  /// Convenience: parse + build.
  Result<PlanNodePtr> BuildFromSql(const std::string& sql) const;

 private:
  const Catalog* catalog_;
};

}  // namespace autoview
