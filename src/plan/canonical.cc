#include "plan/canonical.h"

#include <algorithm>
#include <functional>

#include "util/logging.h"
#include "util/strings.h"

namespace autoview {

namespace {

CompareOp FlipOp(CompareOp op) {
  switch (op) {
    case CompareOp::kLt:
      return CompareOp::kGt;
    case CompareOp::kLe:
      return CompareOp::kGe;
    case CompareOp::kGt:
      return CompareOp::kLt;
    case CompareOp::kGe:
      return CompareOp::kLe;
    default:
      return op;
  }
}

}  // namespace

std::string CanonicalExprKey(const Expr& expr) {
  switch (expr.kind()) {
    case ExprKind::kColumn:
      return "col:" + expr.column_name();
    case ExprKind::kLiteral:
      return "lit:" + expr.literal().ToString();
    case ExprKind::kCompare: {
      std::string l = CanonicalExprKey(*expr.children()[0]);
      std::string r = CanonicalExprKey(*expr.children()[1]);
      CompareOp op = expr.compare_op();
      // Orient inequalities so the lexicographically smaller operand
      // comes first; symmetric ops just sort operands.
      if (op == CompareOp::kEq || op == CompareOp::kNe) {
        if (r < l) std::swap(l, r);
      } else if (r < l) {
        std::swap(l, r);
        op = FlipOp(op);
      }
      return std::string(CompareOpName(op)) + "(" + l + "," + r + ")";
    }
    case ExprKind::kAnd:
    case ExprKind::kOr: {
      std::vector<std::string> parts;
      for (const auto& child : expr.children()) {
        parts.push_back(CanonicalExprKey(*child));
      }
      std::sort(parts.begin(), parts.end());
      return (expr.kind() == ExprKind::kAnd ? std::string("AND[")
                                            : std::string("OR[")) +
             Join(parts, ",") + "]";
    }
    case ExprKind::kNot:
      return "NOT[" + CanonicalExprKey(*expr.children()[0]) + "]";
  }
  return "?";
}

std::string CanonicalKeyWithChildren(
    const PlanNode& node, const std::vector<std::string>& child_keys) {
  switch (node.op()) {
    case PlanOp::kTableScan:
      return "Scan{" + node.table() + "}";
    case PlanOp::kFilter:
      return "Filter{" + CanonicalExprKey(*node.predicate()) + "}(" +
             child_keys[0] + ")";
    case PlanOp::kProject: {
      std::vector<std::string> items;
      for (const auto& item : node.projections()) {
        items.push_back(item.name + "<-" + CanonicalExprKey(*item.expr));
      }
      std::sort(items.begin(), items.end());
      return "Project{" + Join(items, ",") + "}(" + child_keys[0] + ")";
    }
    case PlanOp::kJoin: {
      std::string l = child_keys[0];
      std::string r = child_keys[1];
      if (r < l) std::swap(l, r);  // inner joins commute
      return "Join{" + CanonicalExprKey(*node.join_condition()) + "}(" + l +
             "," + r + ")";
    }
    case PlanOp::kSort: {
      std::vector<std::string> keys;
      for (const auto& key : node.sort_keys()) {
        keys.push_back(node.child(0)->output()[key.column].name +
                       (key.descending ? ":desc" : ":asc"));
      }
      // Key order is semantically significant; do not sort.
      return "Sort{" + Join(keys, ",") + "}(" + child_keys[0] + ")";
    }
    case PlanOp::kLimit:
      return "Limit{" + std::to_string(node.limit()) + "}(" + child_keys[0] +
             ")";
    case PlanOp::kDistinct:
      return "Distinct(" + child_keys[0] + ")";
    case PlanOp::kAggregate: {
      std::vector<std::string> groups;
      for (size_t g : node.group_by()) {
        groups.push_back(node.child(0)->output()[g].name);
      }
      std::sort(groups.begin(), groups.end());
      std::vector<std::string> aggs;
      for (const auto& agg : node.aggregates()) {
        aggs.push_back(std::string(AggKindName(agg.kind)) + "(" +
                       agg.input_name + ")->" + agg.name);
      }
      std::sort(aggs.begin(), aggs.end());
      return "Agg{[" + Join(groups, ",") + "];[" + Join(aggs, ",") + "]}(" +
             child_keys[0] + ")";
    }
  }
  return "?";
}

std::string CanonicalKey(const PlanNode& node) {
  std::vector<std::string> child_keys;
  child_keys.reserve(node.children().size());
  for (const auto& child : node.children()) {
    child_keys.push_back(CanonicalKey(*child));
  }
  return CanonicalKeyWithChildren(node, child_keys);
}

uint64_t CanonicalHash(const PlanNode& node) {
  return std::hash<std::string>{}(CanonicalKey(node));
}

bool PlansEquivalent(const PlanNode& a, const PlanNode& b) {
  return CanonicalKey(a) == CanonicalKey(b);
}

}  // namespace autoview
