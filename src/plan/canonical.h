#pragma once

#include <string>

#include "plan/plan.h"

namespace autoview {

/// \brief Canonical-form utilities standing in for EQUITAS [45].
///
/// EQUITAS decides subquery equivalence with SMT + symbolic execution.
/// For the SPJA fragment this engine supports, semantic equivalence is
/// decided by comparing canonical keys that normalize away:
///   * conjunct/disjunct order inside AND/OR predicates,
///   * comparison orientation (EQ(5, x) == EQ(x, 5); GT(a, b) == LT(b, a)),
///   * join child order (inner joins commute),
///   * projection and aggregate item order (columns are matched by name).
///
/// Two plans with equal canonical keys produce identical multisets of
/// named output columns.
///
/// Returns a canonical string key for the plan rooted at `node`.
std::string CanonicalKey(const PlanNode& node);

/// Composes `node`'s canonical key from already-canonicalized child keys
/// (one per child, in child order) without revisiting the subtrees.
/// `CanonicalKey(n)` equals `CanonicalKeyWithChildren(n, keys-of-children)`
/// by construction — the single-walk rewrite fast path relies on this to
/// compute every node's key exactly once per plan (O(plan) keys instead
/// of the O(plan²) of calling CanonicalKey at each node).
std::string CanonicalKeyWithChildren(const PlanNode& node,
                                     const std::vector<std::string>& child_keys);

/// 64-bit hash of CanonicalKey (cheap map key).
uint64_t CanonicalHash(const PlanNode& node);

/// Canonical rendering of an expression, with the normalizations above.
/// Column references are rendered by name.
std::string CanonicalExprKey(const Expr& expr);

/// True iff the two plans are semantically equivalent under the
/// canonicalization rules above.
bool PlansEquivalent(const PlanNode& a, const PlanNode& b);

}  // namespace autoview
