#include "plan/expr.h"

#include <algorithm>
#include <set>

#include "util/logging.h"

namespace autoview {

namespace {

uint64_t HashCombine(uint64_t a, uint64_t b) {
  return a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2));
}

}  // namespace

const char* CompareOpName(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "EQ";
    case CompareOp::kNe:
      return "NE";
    case CompareOp::kLt:
      return "LT";
    case CompareOp::kLe:
      return "LE";
    case CompareOp::kGt:
      return "GT";
    case CompareOp::kGe:
      return "GE";
  }
  return "?";
}

const char* CompareOpSymbol(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "=";
    case CompareOp::kNe:
      return "<>";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
  }
  return "?";
}

ExprPtr Expr::Column(size_t index, std::string name, ColumnType type) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = ExprKind::kColumn;
  e->column_index_ = index;
  e->column_name_ = std::move(name);
  e->column_type_ = type;
  return e;
}

ExprPtr Expr::Literal(Value v) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = ExprKind::kLiteral;
  e->literal_ = std::move(v);
  return e;
}

ExprPtr Expr::Compare(CompareOp op, ExprPtr left, ExprPtr right) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = ExprKind::kCompare;
  e->compare_op_ = op;
  e->children_ = {std::move(left), std::move(right)};
  return e;
}

ExprPtr Expr::And(std::vector<ExprPtr> children) {
  AV_CHECK(!children.empty());
  if (children.size() == 1) return children[0];
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = ExprKind::kAnd;
  e->children_ = std::move(children);
  return e;
}

ExprPtr Expr::Or(std::vector<ExprPtr> children) {
  AV_CHECK(!children.empty());
  if (children.size() == 1) return children[0];
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = ExprKind::kOr;
  e->children_ = std::move(children);
  return e;
}

ExprPtr Expr::Not(ExprPtr child) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = ExprKind::kNot;
  e->children_ = {std::move(child)};
  return e;
}

Value Expr::EvalScalar(const std::vector<Value>& row) const {
  switch (kind_) {
    case ExprKind::kColumn:
      AV_CHECK_LT(column_index_, row.size());
      return row[column_index_];
    case ExprKind::kLiteral:
      return literal_;
    default:
      AV_CHECK(false);
      return Value();
  }
}

bool Expr::EvalPredicate(const std::vector<Value>& row) const {
  switch (kind_) {
    case ExprKind::kCompare: {
      const Value l = children_[0]->EvalScalar(row);
      const Value r = children_[1]->EvalScalar(row);
      const int c = l.Compare(r);
      switch (compare_op_) {
        case CompareOp::kEq:
          return c == 0;
        case CompareOp::kNe:
          return c != 0;
        case CompareOp::kLt:
          return c < 0;
        case CompareOp::kLe:
          return c <= 0;
        case CompareOp::kGt:
          return c > 0;
        case CompareOp::kGe:
          return c >= 0;
      }
      return false;
    }
    case ExprKind::kAnd:
      for (const auto& c : children_) {
        if (!c->EvalPredicate(row)) return false;
      }
      return true;
    case ExprKind::kOr:
      for (const auto& c : children_) {
        if (c->EvalPredicate(row)) return true;
      }
      return false;
    case ExprKind::kNot:
      return !children_[0]->EvalPredicate(row);
    default:
      AV_CHECK(false);
      return false;
  }
}

std::string Expr::ToPrefixString() const {
  switch (kind_) {
    case ExprKind::kColumn:
      return column_name_;
    case ExprKind::kLiteral:
      return literal_.ToString();
    case ExprKind::kCompare:
      return std::string(CompareOpName(compare_op_)) + "(" +
             children_[0]->ToPrefixString() + ", " +
             children_[1]->ToPrefixString() + ")";
    case ExprKind::kAnd:
    case ExprKind::kOr:
    case ExprKind::kNot: {
      std::string out = kind_ == ExprKind::kAnd  ? "AND("
                        : kind_ == ExprKind::kOr ? "OR("
                                                 : "NOT(";
      for (size_t i = 0; i < children_.size(); ++i) {
        if (i) out += ", ";
        out += children_[i]->ToPrefixString();
      }
      return out + ")";
    }
  }
  return "?";
}

void Expr::AppendPrefixTokens(std::vector<std::string>* out) const {
  switch (kind_) {
    case ExprKind::kColumn:
      out->push_back(column_name_);
      return;
    case ExprKind::kLiteral:
      // All literals are emitted quoted, as in the paper's Fig. 4
      // ([Filter, AND, EQ, type, '1', ...]): constants take the
      // char-level String Encoding path, which generalizes to literal
      // values never seen during training.
      if (literal_.is_string()) {
        out->push_back(literal_.ToString());
      } else {
        out->push_back("'" + literal_.ToString() + "'");
      }
      return;
    case ExprKind::kCompare:
      out->push_back(CompareOpName(compare_op_));
      break;
    case ExprKind::kAnd:
      out->push_back("AND");
      break;
    case ExprKind::kOr:
      out->push_back("OR");
      break;
    case ExprKind::kNot:
      out->push_back("NOT");
      break;
  }
  for (const auto& c : children_) c->AppendPrefixTokens(out);
}

uint64_t Expr::Hash() const {
  uint64_t h = static_cast<uint64_t>(kind_) * 0x100000001b3ULL;
  switch (kind_) {
    case ExprKind::kColumn:
      h = HashCombine(h, std::hash<std::string>{}(column_name_));
      h = HashCombine(h, column_index_);
      break;
    case ExprKind::kLiteral:
      h = HashCombine(h, literal_.Hash());
      break;
    case ExprKind::kCompare:
      h = HashCombine(h, static_cast<uint64_t>(compare_op_));
      break;
    default:
      break;
  }
  for (const auto& c : children_) h = HashCombine(h, c->Hash());
  return h;
}

bool Expr::Equals(const Expr& other) const {
  if (kind_ != other.kind_) return false;
  switch (kind_) {
    case ExprKind::kColumn:
      if (column_index_ != other.column_index_ ||
          column_name_ != other.column_name_) {
        return false;
      }
      break;
    case ExprKind::kLiteral:
      if (!(literal_ == other.literal_)) return false;
      break;
    case ExprKind::kCompare:
      if (compare_op_ != other.compare_op_) return false;
      break;
    default:
      break;
  }
  if (children_.size() != other.children_.size()) return false;
  for (size_t i = 0; i < children_.size(); ++i) {
    if (!children_[i]->Equals(*other.children_[i])) return false;
  }
  return true;
}

ExprPtr Expr::ShiftColumns(int64_t offset) const {
  if (kind_ == ExprKind::kColumn) {
    return Column(static_cast<size_t>(static_cast<int64_t>(column_index_) +
                                      offset),
                  column_name_, column_type_);
  }
  if (children_.empty()) return Literal(literal_);
  std::vector<ExprPtr> kids;
  kids.reserve(children_.size());
  for (const auto& c : children_) kids.push_back(c->ShiftColumns(offset));
  switch (kind_) {
    case ExprKind::kCompare:
      return Compare(compare_op_, kids[0], kids[1]);
    case ExprKind::kAnd:
      return And(std::move(kids));
    case ExprKind::kOr:
      return Or(std::move(kids));
    case ExprKind::kNot:
      return Not(kids[0]);
    default:
      AV_CHECK(false);
      return nullptr;
  }
}

ExprPtr Expr::RemapColumns(const std::vector<size_t>& mapping,
                           const std::vector<std::string>& names) const {
  if (kind_ == ExprKind::kColumn) {
    AV_CHECK_LT(column_index_, mapping.size());
    const size_t target = mapping[column_index_];
    return Column(target, names[target], column_type_);
  }
  if (children_.empty()) return Literal(literal_);
  std::vector<ExprPtr> kids;
  kids.reserve(children_.size());
  for (const auto& c : children_) {
    kids.push_back(c->RemapColumns(mapping, names));
  }
  switch (kind_) {
    case ExprKind::kCompare:
      return Compare(compare_op_, kids[0], kids[1]);
    case ExprKind::kAnd:
      return And(std::move(kids));
    case ExprKind::kOr:
      return Or(std::move(kids));
    case ExprKind::kNot:
      return Not(kids[0]);
    default:
      AV_CHECK(false);
      return nullptr;
  }
}

std::vector<size_t> ReferencedColumns(const Expr& expr) {
  std::set<size_t> cols;
  std::vector<const Expr*> stack = {&expr};
  while (!stack.empty()) {
    const Expr* e = stack.back();
    stack.pop_back();
    if (e->kind() == ExprKind::kColumn) cols.insert(e->column_index());
    for (const auto& c : e->children()) stack.push_back(c.get());
  }
  return {cols.begin(), cols.end()};
}

}  // namespace autoview
