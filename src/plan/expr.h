#pragma once

#include <memory>
#include <string>
#include <vector>

#include "catalog/value.h"
#include "util/status.h"

namespace autoview {

/// \brief Kinds of resolved (planned) scalar expressions.
enum class ExprKind { kColumn, kLiteral, kCompare, kAnd, kOr, kNot };

/// \brief Comparison operators.
enum class CompareOp { kEq, kNe, kLt, kLe, kGt, kGe };

/// Prefix-notation name of a comparison op ("EQ", "LT", ...), as used in
/// the paper's plan feature sequences (Fig. 4).
const char* CompareOpName(CompareOp op);

/// SQL spelling of a comparison op ("=", "<", ...).
const char* CompareOpSymbol(CompareOp op);

class Expr;
using ExprPtr = std::shared_ptr<const Expr>;

/// \brief A resolved scalar expression over a row of its input plan.
///
/// Column references carry both the positional index (used for
/// evaluation) and the column name (used for display and for the plan
/// feature sequences). Expressions are immutable and shared.
class Expr {
 public:
  static ExprPtr Column(size_t index, std::string name, ColumnType type);
  static ExprPtr Literal(Value v);
  static ExprPtr Compare(CompareOp op, ExprPtr left, ExprPtr right);
  static ExprPtr And(std::vector<ExprPtr> children);
  static ExprPtr Or(std::vector<ExprPtr> children);
  static ExprPtr Not(ExprPtr child);

  ExprKind kind() const { return kind_; }
  size_t column_index() const { return column_index_; }
  const std::string& column_name() const { return column_name_; }
  ColumnType column_type() const { return column_type_; }
  const Value& literal() const { return literal_; }
  CompareOp compare_op() const { return compare_op_; }
  const std::vector<ExprPtr>& children() const { return children_; }

  /// Evaluates a boolean expression against `row`; non-boolean kinds
  /// (column/literal) are not evaluable here.
  bool EvalPredicate(const std::vector<Value>& row) const;

  /// Evaluates a scalar (column or literal) against `row`.
  Value EvalScalar(const std::vector<Value>& row) const;

  /// Prefix rendering: `AND(EQ(dt, '1010'), EQ(memo_type, 'pen'))`.
  std::string ToPrefixString() const;

  /// Flattened prefix token list: [AND, EQ, dt, '1010', EQ, memo_type,
  /// 'pen'] — the Fig. 4 feature encoding of a condition.
  void AppendPrefixTokens(std::vector<std::string>* out) const;

  /// Structural hash (not canonicalized).
  uint64_t Hash() const;

  /// Deep structural equality.
  bool Equals(const Expr& other) const;

  /// Returns an equivalent expression with column indices shifted by
  /// `offset` (used when gluing expressions over concatenated join rows).
  ExprPtr ShiftColumns(int64_t offset) const;

  /// Returns an equivalent expression with each column index `i`
  /// remapped to `mapping[i]` and renamed to `names[mapping[i]]`.
  ExprPtr RemapColumns(const std::vector<size_t>& mapping,
                       const std::vector<std::string>& names) const;

 private:
  Expr() = default;

  ExprKind kind_ = ExprKind::kLiteral;
  size_t column_index_ = 0;
  std::string column_name_;
  ColumnType column_type_ = ColumnType::kInt64;
  Value literal_;
  CompareOp compare_op_ = CompareOp::kEq;
  std::vector<ExprPtr> children_;
};

/// Collects all column indices referenced by `expr` into `out` (deduped,
/// sorted).
std::vector<size_t> ReferencedColumns(const Expr& expr);

}  // namespace autoview
