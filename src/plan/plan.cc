#include "plan/plan.h"

#include <algorithm>
#include <set>
#include <unordered_set>

#include "util/logging.h"
#include "util/strings.h"

namespace autoview {

namespace {

uint64_t HashCombine(uint64_t a, uint64_t b) {
  return a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2));
}

/// Validates that every column referenced by `expr` is within bounds.
Status CheckColumnBounds(const Expr& expr, size_t width) {
  for (size_t col : ReferencedColumns(expr)) {
    if (col >= width) {
      return Status::InvalidArgument(
          StrFormat("expression references column %zu of a %zu-column input",
                    col, width));
    }
  }
  return Status::OK();
}

}  // namespace

const char* PlanOpName(PlanOp op) {
  switch (op) {
    case PlanOp::kTableScan:
      return "Scan";
    case PlanOp::kFilter:
      return "Filter";
    case PlanOp::kProject:
      return "Project";
    case PlanOp::kJoin:
      return "Join";
    case PlanOp::kAggregate:
      return "Aggregate";
    case PlanOp::kSort:
      return "Sort";
    case PlanOp::kLimit:
      return "Limit";
    case PlanOp::kDistinct:
      return "Distinct";
  }
  return "?";
}

const char* AggKindName(AggKind kind) {
  switch (kind) {
    case AggKind::kCountStar:
    case AggKind::kCount:
      return "COUNT";
    case AggKind::kSum:
      return "SUM";
    case AggKind::kMin:
      return "MIN";
    case AggKind::kMax:
      return "MAX";
    case AggKind::kAvg:
      return "AVG";
  }
  return "?";
}

Result<PlanNodePtr> PlanNode::MakeScan(const Catalog& catalog,
                                       const std::string& table) {
  AV_ASSIGN_OR_RETURN(const TableSchema* schema, catalog.GetTable(table));
  auto node = std::shared_ptr<PlanNode>(new PlanNode());
  node->op_ = PlanOp::kTableScan;
  node->table_ = table;
  for (const auto& col : schema->columns()) {
    node->output_.push_back({col.name, col.type});
  }
  return PlanNodePtr(node);
}

Result<PlanNodePtr> PlanNode::MakeFilter(PlanNodePtr child, ExprPtr predicate) {
  if (!child || !predicate) {
    return Status::InvalidArgument("filter requires a child and a predicate");
  }
  AV_RETURN_NOT_OK(CheckColumnBounds(*predicate, child->output_.size()));
  auto node = std::shared_ptr<PlanNode>(new PlanNode());
  node->op_ = PlanOp::kFilter;
  node->predicate_ = std::move(predicate);
  node->output_ = child->output_;
  node->children_ = {std::move(child)};
  return PlanNodePtr(node);
}

Result<PlanNodePtr> PlanNode::MakeProject(PlanNodePtr child,
                                          std::vector<ProjectItem> items) {
  if (!child || items.empty()) {
    return Status::InvalidArgument("project requires a child and items");
  }
  auto node = std::shared_ptr<PlanNode>(new PlanNode());
  node->op_ = PlanOp::kProject;
  for (const auto& item : items) {
    if (!item.expr) return Status::InvalidArgument("null projection expr");
    AV_RETURN_NOT_OK(CheckColumnBounds(*item.expr, child->output_.size()));
    ColumnType type = item.expr->kind() == ExprKind::kColumn
                          ? item.expr->column_type()
                          : item.expr->literal().type();
    node->output_.push_back({item.name, type});
  }
  node->projections_ = std::move(items);
  node->children_ = {std::move(child)};
  return PlanNodePtr(node);
}

Result<PlanNodePtr> PlanNode::MakeJoin(PlanNodePtr left, PlanNodePtr right,
                                       ExprPtr condition) {
  if (!left || !right || !condition) {
    return Status::InvalidArgument("join requires two children and an ON");
  }
  const size_t width = left->output_.size() + right->output_.size();
  AV_RETURN_NOT_OK(CheckColumnBounds(*condition, width));
  auto node = std::shared_ptr<PlanNode>(new PlanNode());
  node->op_ = PlanOp::kJoin;
  node->predicate_ = std::move(condition);
  // Concatenate output schemas; disambiguate duplicated names.
  std::unordered_set<std::string> seen;
  for (const auto* side : {&left->output_, &right->output_}) {
    for (const auto& col : *side) {
      std::string name = col.name;
      int suffix = 2;
      while (seen.count(name)) {
        name = col.name + "_" + std::to_string(suffix++);
      }
      seen.insert(name);
      node->output_.push_back({name, col.type});
    }
  }
  node->children_ = {std::move(left), std::move(right)};
  return PlanNodePtr(node);
}

Result<PlanNodePtr> PlanNode::MakeAggregate(PlanNodePtr child,
                                            std::vector<size_t> group_by,
                                            std::vector<AggItem> aggregates) {
  if (!child) return Status::InvalidArgument("aggregate requires a child");
  if (group_by.empty() && aggregates.empty()) {
    return Status::InvalidArgument("aggregate with no groups and no funcs");
  }
  const size_t width = child->output_.size();
  auto node = std::shared_ptr<PlanNode>(new PlanNode());
  node->op_ = PlanOp::kAggregate;
  for (size_t g : group_by) {
    if (g >= width) {
      return Status::InvalidArgument("group-by column out of range");
    }
    node->output_.push_back(
        {child->output_[g].name, child->output_[g].type});
  }
  for (auto& agg : aggregates) {
    ColumnType type = ColumnType::kInt64;
    if (agg.kind != AggKind::kCountStar) {
      if (!agg.input_column || *agg.input_column >= width) {
        return Status::InvalidArgument("aggregate input column out of range");
      }
      agg.input_name = child->output_[*agg.input_column].name;
      const ColumnType in = child->output_[*agg.input_column].type;
      switch (agg.kind) {
        case AggKind::kCount:
          type = ColumnType::kInt64;
          break;
        case AggKind::kAvg:
          type = ColumnType::kDouble;
          break;
        default:
          type = in;
      }
      if ((agg.kind == AggKind::kSum || agg.kind == AggKind::kAvg) &&
          in == ColumnType::kString) {
        return Status::TypeError("SUM/AVG over a string column");
      }
    }
    if (agg.name.empty()) {
      agg.name = ToLower(AggKindName(agg.kind)) +
                 (agg.input_name.empty() ? "" : "_" + agg.input_name);
    }
    node->output_.push_back({agg.name, type});
  }
  node->group_by_ = std::move(group_by);
  node->aggregates_ = std::move(aggregates);
  node->children_ = {std::move(child)};
  return PlanNodePtr(node);
}

Result<PlanNodePtr> PlanNode::MakeSort(PlanNodePtr child,
                                       std::vector<SortKey> keys) {
  if (!child || keys.empty()) {
    return Status::InvalidArgument("sort requires a child and keys");
  }
  for (const auto& key : keys) {
    if (key.column >= child->output().size()) {
      return Status::InvalidArgument("sort key column out of range");
    }
  }
  auto node = std::shared_ptr<PlanNode>(new PlanNode());
  node->op_ = PlanOp::kSort;
  node->sort_keys_ = std::move(keys);
  node->output_ = child->output();
  node->children_ = {std::move(child)};
  return PlanNodePtr(node);
}

Result<PlanNodePtr> PlanNode::MakeLimit(PlanNodePtr child, int64_t limit) {
  if (!child || limit < 0) {
    return Status::InvalidArgument("limit requires a child and n >= 0");
  }
  auto node = std::shared_ptr<PlanNode>(new PlanNode());
  node->op_ = PlanOp::kLimit;
  node->limit_ = limit;
  node->output_ = child->output();
  node->children_ = {std::move(child)};
  return PlanNodePtr(node);
}

Result<PlanNodePtr> PlanNode::MakeDistinct(PlanNodePtr child) {
  if (!child) return Status::InvalidArgument("distinct requires a child");
  auto node = std::shared_ptr<PlanNode>(new PlanNode());
  node->op_ = PlanOp::kDistinct;
  node->output_ = child->output();
  node->children_ = {std::move(child)};
  return PlanNodePtr(node);
}

std::string PlanNode::OperatorString() const {
  switch (op_) {
    case PlanOp::kTableScan:
      return "TableScan(table=[[" + table_ + "]])";
    case PlanOp::kFilter:
      return "Filter(condition=[" + predicate_->ToPrefixString() + "])";
    case PlanOp::kProject: {
      std::vector<std::string> parts;
      for (const auto& item : projections_) {
        parts.push_back(item.name + "=[" + item.expr->ToPrefixString() + "]");
      }
      return "Project(" + Join(parts, ", ") + ")";
    }
    case PlanOp::kJoin:
      return "Join(condition=[" + predicate_->ToPrefixString() +
             "], joinType=[inner])";
    case PlanOp::kAggregate: {
      std::vector<std::string> groups;
      for (size_t g : group_by_) {
        groups.push_back(children_[0]->output()[g].name);
      }
      std::string out = "Aggregate(group=[{" + Join(groups, ", ") + "}]";
      for (const auto& agg : aggregates_) {
        out += ", " + agg.name + "=[" + AggKindName(agg.kind) + "(" +
               agg.input_name + ")]";
      }
      return out + ")";
    }
    case PlanOp::kSort: {
      std::vector<std::string> keys;
      for (const auto& key : sort_keys_) {
        keys.push_back(children_[0]->output()[key.column].name +
                       (key.descending ? " DESC" : ""));
      }
      return "Sort(keys=[" + Join(keys, ", ") + "])";
    }
    case PlanOp::kLimit:
      return "Limit(n=[" + std::to_string(limit_) + "])";
    case PlanOp::kDistinct:
      return "Distinct()";
  }
  return "?";
}

namespace {
void RenderTree(const PlanNode& node, int depth, std::string* out) {
  out->append(static_cast<size_t>(depth) * 2, ' ');
  out->append(node.OperatorString());
  out->push_back('\n');
  for (const auto& child : node.children()) {
    RenderTree(*child, depth + 1, out);
  }
}
}  // namespace

std::string PlanNode::ToString() const {
  std::string out;
  RenderTree(*this, 0, &out);
  return out;
}

std::vector<std::string> PlanNode::FeatureTokens() const {
  std::vector<std::string> tokens = {PlanOpName(op_)};
  switch (op_) {
    case PlanOp::kTableScan:
      tokens.push_back(table_);
      break;
    case PlanOp::kFilter:
      predicate_->AppendPrefixTokens(&tokens);
      break;
    case PlanOp::kProject:
      for (const auto& item : projections_) tokens.push_back(item.name);
      break;
    case PlanOp::kJoin:
      predicate_->AppendPrefixTokens(&tokens);
      tokens.push_back("inner");
      break;
    case PlanOp::kAggregate:
      for (size_t g : group_by_) {
        tokens.push_back(children_[0]->output()[g].name);
      }
      for (const auto& agg : aggregates_) {
        tokens.push_back(agg.name);
        tokens.push_back(AggKindName(agg.kind));
        if (!agg.input_name.empty()) tokens.push_back(agg.input_name);
      }
      break;
    case PlanOp::kSort:
      for (const auto& key : sort_keys_) {
        tokens.push_back(children_[0]->output()[key.column].name);
        if (key.descending) tokens.push_back("DESC");
      }
      break;
    case PlanOp::kLimit:
      tokens.push_back("'" + std::to_string(limit_) + "'");
      break;
    case PlanOp::kDistinct:
      break;
  }
  return tokens;
}

std::vector<std::vector<std::string>> PlanNode::FeatureSequence() const {
  std::vector<std::vector<std::string>> seq;
  for (const auto& node : Subtrees()) {
    seq.push_back(node->FeatureTokens());
  }
  return seq;
}

void PlanNode::CollectSubtrees(const PlanNodePtr& node,
                               std::vector<PlanNodePtr>* out) {
  out->push_back(node);
  for (const auto& child : node->children_) CollectSubtrees(child, out);
}

std::vector<PlanNodePtr> PlanNode::Subtrees() const {
  std::vector<PlanNodePtr> out;
  // Root has no owning shared_ptr here; wrap with a non-owning aliasing ptr.
  PlanNodePtr self(PlanNodePtr(), this);
  CollectSubtrees(self, &out);
  return out;
}

uint64_t PlanNode::Hash() const {
  const uint64_t cached = cached_hash_.load(std::memory_order_relaxed);
  if (cached != 0) return cached;
  uint64_t h = HashCombine(0x517cc1b727220a95ULL, static_cast<uint64_t>(op_));
  switch (op_) {
    case PlanOp::kTableScan:
      h = HashCombine(h, std::hash<std::string>{}(table_));
      break;
    case PlanOp::kFilter:
    case PlanOp::kJoin:
      h = HashCombine(h, predicate_->Hash());
      break;
    case PlanOp::kProject:
      for (const auto& item : projections_) {
        h = HashCombine(h, std::hash<std::string>{}(item.name));
        h = HashCombine(h, item.expr->Hash());
      }
      break;
    case PlanOp::kAggregate:
      for (size_t g : group_by_) h = HashCombine(h, g);
      for (const auto& agg : aggregates_) {
        h = HashCombine(h, static_cast<uint64_t>(agg.kind));
        h = HashCombine(h, agg.input_column ? *agg.input_column + 1 : 0);
        h = HashCombine(h, std::hash<std::string>{}(agg.name));
      }
      break;
    case PlanOp::kSort:
      for (const auto& key : sort_keys_) {
        h = HashCombine(h, key.column * 2 + (key.descending ? 1 : 0));
      }
      break;
    case PlanOp::kLimit:
      h = HashCombine(h, static_cast<uint64_t>(limit_));
      break;
    case PlanOp::kDistinct:
      break;
  }
  for (const auto& child : children_) h = HashCombine(h, child->Hash());
  if (h == 0) h = 1;  // reserve 0 for "not yet computed"
  cached_hash_.store(h, std::memory_order_relaxed);
  return h;
}

bool PlanNode::Equals(const PlanNode& other) const {
  if (op_ != other.op_) return false;
  if (Hash() != other.Hash()) return false;
  switch (op_) {
    case PlanOp::kTableScan:
      if (table_ != other.table_) return false;
      break;
    case PlanOp::kFilter:
    case PlanOp::kJoin:
      if (!predicate_->Equals(*other.predicate_)) return false;
      break;
    case PlanOp::kProject:
      if (projections_.size() != other.projections_.size()) return false;
      for (size_t i = 0; i < projections_.size(); ++i) {
        if (projections_[i].name != other.projections_[i].name ||
            !projections_[i].expr->Equals(*other.projections_[i].expr)) {
          return false;
        }
      }
      break;
    case PlanOp::kAggregate:
      if (group_by_ != other.group_by_) return false;
      if (aggregates_.size() != other.aggregates_.size()) return false;
      for (size_t i = 0; i < aggregates_.size(); ++i) {
        const auto& a = aggregates_[i];
        const auto& b = other.aggregates_[i];
        if (a.kind != b.kind || a.input_column != b.input_column ||
            a.name != b.name) {
          return false;
        }
      }
      break;
    case PlanOp::kSort:
      if (sort_keys_ != other.sort_keys_) return false;
      break;
    case PlanOp::kLimit:
      if (limit_ != other.limit_) return false;
      break;
    case PlanOp::kDistinct:
      break;
  }
  if (children_.size() != other.children_.size()) return false;
  for (size_t i = 0; i < children_.size(); ++i) {
    if (!children_[i]->Equals(*other.children_[i])) return false;
  }
  return true;
}

std::vector<std::string> PlanNode::ScannedTables() const {
  std::set<std::string> tables;
  for (const auto& node : Subtrees()) {
    if (node->op() == PlanOp::kTableScan) tables.insert(node->table());
  }
  return {tables.begin(), tables.end()};
}

size_t PlanNode::NumOperators() const {
  size_t n = 1;
  for (const auto& child : children_) n += child->NumOperators();
  return n;
}

size_t PlanNode::Height() const {
  size_t h = 0;
  for (const auto& child : children_) h = std::max(h, child->Height());
  return h + 1;
}

bool PlansOverlap(const PlanNode& a, const PlanNode& b) {
  std::unordered_set<uint64_t> hashes_a;
  std::vector<PlanNodePtr> subtrees_a = a.Subtrees();
  for (const auto& node : subtrees_a) hashes_a.insert(node->Hash());
  for (const auto& node : b.Subtrees()) {
    if (!hashes_a.count(node->Hash())) continue;
    // Confirm with deep equality to rule out hash collisions.
    for (const auto& cand : subtrees_a) {
      if (cand->Hash() == node->Hash() && cand->Equals(*node)) return true;
    }
  }
  return false;
}

}  // namespace autoview
