#pragma once

#include <atomic>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "plan/expr.h"
#include "util/status.h"

namespace autoview {

/// \brief Logical plan operators (Fig. 2's plan vocabulary, plus the
/// Sort/Limit/Distinct tail operators of the extended SQL fragment).
enum class PlanOp {
  kTableScan,
  kFilter,
  kProject,
  kJoin,
  kAggregate,
  kSort,
  kLimit,
  kDistinct,
};

/// Display name ("Scan", "Filter", "Project", "Join", "Aggregate").
const char* PlanOpName(PlanOp op);

/// \brief Aggregate function kinds.
enum class AggKind { kCountStar, kCount, kSum, kMin, kMax, kAvg };

const char* AggKindName(AggKind kind);

/// \brief One output column of a plan node.
struct OutputColumn {
  std::string name;
  ColumnType type = ColumnType::kInt64;

  bool operator==(const OutputColumn&) const = default;
};

/// \brief One projection item: a scalar expression and its output name.
struct ProjectItem {
  ExprPtr expr;  // column or literal
  std::string name;
};

/// \brief One aggregate item.
struct AggItem {
  AggKind kind = AggKind::kCountStar;
  std::optional<size_t> input_column;  // none for COUNT(*)
  std::string input_name;              // display name of the input column
  std::string name;                    // output column name
};

/// \brief One ORDER BY key (column index into the child's output).
struct SortKey {
  size_t column = 0;
  bool descending = false;

  bool operator==(const SortKey&) const = default;
};

class PlanNode;
using PlanNodePtr = std::shared_ptr<const PlanNode>;

/// \brief An immutable logical plan node.
///
/// Nodes are constructed through the Make* factories, which validate the
/// inputs and compute the output schema. Subtrees are shared (plans form
/// DAGs in memory but are treated as trees).
class PlanNode {
 public:
  PlanOp op() const { return op_; }
  const std::vector<PlanNodePtr>& children() const { return children_; }
  const PlanNodePtr& child(size_t i) const { return children_[i]; }
  const std::vector<OutputColumn>& output() const { return output_; }
  size_t num_output_columns() const { return output_.size(); }

  // Operator-specific accessors (valid only for the matching op()).
  const std::string& table() const { return table_; }
  const ExprPtr& predicate() const { return predicate_; }
  const std::vector<ProjectItem>& projections() const { return projections_; }
  const ExprPtr& join_condition() const { return predicate_; }
  const std::vector<size_t>& group_by() const { return group_by_; }
  const std::vector<AggItem>& aggregates() const { return aggregates_; }
  const std::vector<SortKey>& sort_keys() const { return sort_keys_; }
  int64_t limit() const { return limit_; }

  // --- Factories --------------------------------------------------------

  /// Scan of a catalog table.
  static Result<PlanNodePtr> MakeScan(const Catalog& catalog,
                                      const std::string& table);

  /// Filter with a boolean predicate over the child's output.
  static Result<PlanNodePtr> MakeFilter(PlanNodePtr child, ExprPtr predicate);

  /// Projection; expressions reference the child's output columns.
  static Result<PlanNodePtr> MakeProject(PlanNodePtr child,
                                         std::vector<ProjectItem> items);

  /// Inner join; `condition` references the concatenated (left ++ right)
  /// output columns. Duplicate output names are disambiguated with
  /// positional suffixes (user_id -> user_id_2).
  static Result<PlanNodePtr> MakeJoin(PlanNodePtr left, PlanNodePtr right,
                                      ExprPtr condition);

  /// Hash aggregation over the child's output.
  static Result<PlanNodePtr> MakeAggregate(PlanNodePtr child,
                                           std::vector<size_t> group_by,
                                           std::vector<AggItem> aggregates);

  /// Total-order sort by `keys` (ties broken by the full row, so the
  /// output order is independent of input order).
  static Result<PlanNodePtr> MakeSort(PlanNodePtr child,
                                      std::vector<SortKey> keys);

  /// First `limit` rows of the child.
  static Result<PlanNodePtr> MakeLimit(PlanNodePtr child, int64_t limit);

  /// Duplicate elimination over the full row.
  static Result<PlanNodePtr> MakeDistinct(PlanNodePtr child);

  // --- Inspection -------------------------------------------------------

  /// Multi-line indented rendering in the style of Fig. 2:
  ///   Aggregate(group=[{user_id_1}],cnt=[COUNT()])
  ///     Join(condition=[EQ(user_id_1, user_id_2)], joinType=[inner])
  ///     ...
  std::string ToString() const;

  /// Single-operator header line (no children).
  std::string OperatorString() const;

  /// This operator's Fig. 4 feature token sequence, e.g.
  /// [Filter, AND, EQ, dt, '1010', EQ, memo_type, 'pen'].
  std::vector<std::string> FeatureTokens() const;

  /// The whole plan as a pre-order sequence of operator token sequences
  /// (the two-dimensional sequence of §IV-A).
  std::vector<std::vector<std::string>> FeatureSequence() const;

  /// Pre-order list of all subtree roots (this node first).
  std::vector<PlanNodePtr> Subtrees() const;

  /// Structural hash of the subtree rooted here.
  uint64_t Hash() const;

  /// Deep structural equality.
  bool Equals(const PlanNode& other) const;

  /// Names of all base tables scanned in this subtree (sorted, deduped).
  std::vector<std::string> ScannedTables() const;

  /// Number of operators in the subtree.
  size_t NumOperators() const;

  /// Height of the subtree (a single Scan has height 1).
  size_t Height() const;

 private:
  PlanNode() = default;

  static void CollectSubtrees(const PlanNodePtr& node,
                              std::vector<PlanNodePtr>* out);

  PlanOp op_ = PlanOp::kTableScan;
  std::string table_;
  ExprPtr predicate_;  // filter predicate or join condition
  std::vector<ProjectItem> projections_;
  std::vector<size_t> group_by_;
  std::vector<AggItem> aggregates_;
  std::vector<SortKey> sort_keys_;
  int64_t limit_ = -1;
  std::vector<PlanNodePtr> children_;
  std::vector<OutputColumn> output_;
  // Lazily computed hash cache; atomic because shared subtrees are
  // hashed concurrently from pool workers. Relaxed is enough (see
  // util/annotations.h conventions): every writer stores the same
  // idempotent value derived from immutable node state, so a racing
  // reader either sees 0 (recomputes) or the final hash — never a torn
  // or stale-wrong value. 0 doubles as the "unset" sentinel; a plan
  // whose true hash is 0 is recomputed each call, which is only a
  // (vanishingly unlikely) perf loss, never a correctness one.
  mutable std::atomic<uint64_t> cached_hash_{0};

  friend class PlanBuilderAccess;
};

/// Returns true iff the two plans share at least one common subtree —
/// the paper's Definition 5 of overlapping subqueries.
bool PlansOverlap(const PlanNode& a, const PlanNode& b);

}  // namespace autoview
