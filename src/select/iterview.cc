#include "select/iterview.h"

#include <algorithm>
#include <memory>
#include <utility>

#include "ilp/problem_index.h"
#include "util/metrics.h"
#include "util/thread_pool.h"

namespace autoview {

namespace internal {

namespace {

/// Workload-level aggregates used by Eq. 3, computed once per Z-Opt pass.
struct Aggregates {
  double o_max = 0.0;        ///< sum of all overheads
  double o_cur = 0.0;        ///< overhead of currently selected views
  double b_cur_total = 0.0;  ///< sum of current per-view benefits
  double b_max_total = 0.0;  ///< sum of maximum per-view benefits
  std::vector<double> max_benefit;
};

Aggregates ComputeAggregates(const MvsProblem& problem,
                             const std::vector<double>& b_cur,
                             const std::vector<bool>& z) {
  Aggregates agg;
  const size_t nz = problem.num_views();
  agg.max_benefit.resize(nz);
  for (size_t k = 0; k < nz; ++k) {
    agg.max_benefit[k] = problem.MaxBenefit(k);
    agg.o_max += problem.overhead[k];
    if (z[k]) agg.o_cur += problem.overhead[k];
    agg.b_cur_total += b_cur[k];
    agg.b_max_total += agg.max_benefit[k];
  }
  return agg;
}

double FlipProbabilityWith(const std::vector<double>& overhead,
                           const Aggregates& agg,
                           const std::vector<double>& b_cur, size_t j,
                           const std::vector<bool>& z) {
  const double o_j = std::max(overhead[j], 1e-12);
  double p_overhead, p_benefit;
  if (z[j]) {
    // Selected view: flip-prone when it is expensive relative to the
    // currently selected set and contributes little current benefit.
    p_overhead = agg.o_cur > 0 ? o_j / agg.o_cur : 1.0;
    p_benefit =
        agg.b_cur_total > 0 ? 1.0 - b_cur[j] / agg.b_cur_total : 1.0;
  } else {
    // Unselected view: flip-prone when overhead headroom remains and its
    // benefit-per-overhead beats the global average.
    p_overhead = agg.o_max > 0 ? 1.0 - agg.o_cur / agg.o_max : 0.0;
    const double global_rate =
        agg.o_max > 0 ? agg.b_max_total / agg.o_max : 0.0;
    p_benefit =
        global_rate > 0 ? (agg.max_benefit[j] / o_j) / global_rate : 0.0;
  }
  p_overhead = std::clamp(p_overhead, 0.0, 1.0);
  p_benefit = std::clamp(p_benefit, 0.0, 1.0);
  return p_overhead * p_benefit;
}

/// ComputeAggregates with the O(|Q| x |Z|) part — the per-view B_max
/// recomputation — served from the index. The remaining O(|Z|) loop
/// accumulates o_cur / b_cur_total in the same ascending order as the
/// naive pass, so every aggregate is bit-identical.
Aggregates ComputeAggregatesIndexed(const MvsProblemIndex& index,
                                    const std::vector<double>& b_cur,
                                    const std::vector<bool>& z) {
  Aggregates agg;
  const size_t nz = index.num_views();
  const auto& overhead = index.Overhead();
  agg.max_benefit.resize(nz);
  agg.o_max = index.TotalOverhead();
  agg.b_max_total = index.TotalMaxBenefit();
  for (size_t k = 0; k < nz; ++k) {
    agg.max_benefit[k] = index.MaxBenefit(k);
    if (z[k]) agg.o_cur += overhead[k];
    agg.b_cur_total += b_cur[k];
  }
  return agg;
}

/// ZOptStep driven by the index; appends each flipped view to `flipped`
/// so the caller can propagate dirtiness. Flip decisions are identical
/// to ZOptStep's.
void ZOptStepRecording(const MvsProblemIndex& index,
                       const std::vector<double>& b_cur, double tau,
                       bool frozen, std::vector<bool>* z,
                       std::vector<size_t>* flipped) {
  const Aggregates agg = ComputeAggregatesIndexed(index, b_cur, *z);
  const std::vector<double>& overhead = index.Overhead();
  for (size_t j = 0; j < z->size(); ++j) {
    if (frozen && (*z)[j]) continue;  // BigSub: selected stays selected
    if (FlipProbabilityWith(overhead, agg, b_cur, j, *z) >= tau) {
      (*z)[j] = !(*z)[j];
      flipped->push_back(j);
    }
  }
}

}  // namespace

double FlipProbability(const MvsProblem& problem,
                       const std::vector<double>& b_cur, size_t j,
                       const std::vector<bool>& z) {
  return FlipProbabilityWith(problem.overhead,
                             ComputeAggregates(problem, b_cur, z), b_cur, j,
                             z);
}

void ZOptStep(const MvsProblem& problem, const std::vector<double>& b_cur,
              double tau, bool frozen, std::vector<bool>* z) {
  const Aggregates agg = ComputeAggregates(problem, b_cur, *z);
  for (size_t j = 0; j < z->size(); ++j) {
    if (frozen && (*z)[j]) continue;  // BigSub: selected stays selected
    if (FlipProbabilityWith(problem.overhead, agg, b_cur, j, *z) >= tau) {
      (*z)[j] = !(*z)[j];
    }
  }
}

}  // namespace internal

IterViewSelector IterViewSelector::IterView(size_t iterations, uint64_t seed) {
  Options options;
  options.iterations = iterations;
  options.seed = seed;
  return IterViewSelector(options);
}

IterViewSelector IterViewSelector::BigSub(size_t iterations, uint64_t seed) {
  Options options;
  options.iterations = iterations;
  options.freeze_selected_after = iterations / 2;
  options.seed = seed;
  return IterViewSelector(options);
}

namespace {

/// Outcome of one independent seeded trial.
struct TrialResult {
  MvsSolution solution;
  std::vector<double> trace;
  bool timed_out = false;
};

/// One full IterView run (function IterView of the paper) under its own
/// Rng stream. Pure: reads only `problem`/`options`, writes only the
/// returned value, so trials can run concurrently.
TrialResult RunTrial(const MvsProblem& problem,
                     const IterViewSelector::Options& options,
                     uint64_t seed) {
  TrialResult trial;
  Rng rng(seed);
  const size_t nz = problem.num_views();
  const size_t nq = problem.num_queries();
  YOptSolver yopt(&problem);

  // Random initialization of Z and Y (function IterView, lines 3-9).
  std::vector<bool> z(nz);
  for (size_t j = 0; j < nz; ++j) z[j] = rng.Bernoulli(0.5);
  std::vector<std::vector<bool>> y(nq, std::vector<bool>(nz, false));
  for (size_t i = 0; i < nq; ++i) {
    for (size_t j = 0; j < nz; ++j) {
      if (!z[j] || problem.benefit[i][j] <= 0) continue;
      bool conflict = false;
      for (size_t k = 0; k < nz && !conflict; ++k) {
        conflict = k != j && y[i][k] && problem.overlap[j][k];
      }
      if (!conflict) y[i][j] = rng.Bernoulli(0.5);
    }
  }

  MvsSolution& best = trial.solution;
  best.z = z;
  best.y = y;
  best.utility = EvaluateUtility(problem, z, y);
  trial.trace.push_back(best.utility);
  GlobalSelection().RecordUtilityCells(static_cast<uint64_t>(nq) * nz);

  std::vector<double> b_cur(nz, 0.0);
  for (size_t iter = 0; iter < options.iterations; ++iter) {
    // Anytime behavior: bail out between iterations, keeping the best
    // incumbent found so far. On an infinite deadline this never reads
    // the clock, so deadline-free runs stay bit-identical.
    if (StopRequested(options.deadline, options.cancel)) {
      trial.timed_out = true;
      break;
    }
    // Current benefit per view under y.
    std::fill(b_cur.begin(), b_cur.end(), 0.0);
    for (size_t i = 0; i < nq; ++i) {
      for (size_t j = 0; j < nz; ++j) {
        if (y[i][j] && problem.benefit[i][j] > 0) {
          b_cur[j] += problem.benefit[i][j];
        }
      }
    }
    const double tau = rng.Uniform01();
    const bool frozen = iter >= options.freeze_selected_after;
    internal::ZOptStep(problem, b_cur, tau, frozen, &z);
    y = yopt.SolveAll(z);
    GlobalSelection().RecordQueriesSolved(nq);
    const double utility = EvaluateUtility(problem, z, y);
    GlobalSelection().RecordUtilityCells(static_cast<uint64_t>(nq) * nz);
    trial.trace.push_back(utility);
    if (utility > best.utility) {
      best.z = z;
      best.y = y;
      best.utility = utility;
    }
  }
  return trial;
}

/// The incremental engine's trial: same Rng stream and the same
/// arithmetic as RunTrial — the equivalence tests assert bit-identical
/// traces and solutions — but per-iteration work scales with what the
/// Z-Opt pass actually flipped:
///  * per-view aggregates (B_max, the totals) come precomputed from the
///    index instead of an O(|Q| x |Z|) rescan,
///  * Y-Opt re-solves only queries whose positive support meets a
///    flipped view (all queries on the first pass: the random-init rows
///    are not solver outputs, so none may be reused),
///  * b_cur is re-derived only for views whose usage column changed,
///  * utilities are sparse ordered re-sums over the CSR support.
/// Sums are *recomputed sparsely in the naive summation order*, never
/// float-delta-adjusted, which is what makes them bit-identical despite
/// FP non-associativity (DESIGN.md §9).
TrialResult RunTrialIncremental(const MvsProblemIndex& index,
                                const IterViewSelector::Options& options,
                                uint64_t seed) {
  TrialResult trial;
  Rng rng(seed);
  const size_t nz = index.num_views();
  const size_t nq = index.num_queries();
  YOptSolver yopt(&index);

  // Random initialization of Z and Y (function IterView, lines 3-9),
  // drawing the exact Bernoulli sequence of the naive loop: that loop
  // visits selected positive-benefit views in ascending order, i.e. the
  // CSR row filtered by z. Its conflict probe scanned all |Z| views per
  // cell (the latent |Q| x |Z| x |Z| quadratic); probing whichever is
  // smaller of the overlap adjacency and the row's already-used views
  // gives the same boolean at O(min(degree, support)) cost.
  std::vector<bool> z(nz);
  for (size_t j = 0; j < nz; ++j) z[j] = rng.Bernoulli(0.5);
  std::vector<std::vector<bool>> y(nq, std::vector<bool>(nz, false));
  std::vector<size_t> used;
  for (size_t i = 0; i < nq; ++i) {
    used.clear();
    for (const MvsProblemIndex::Entry& e : index.Row(i)) {
      if (!z[e.index]) continue;
      bool conflict = false;
      const std::vector<size_t>& adjacent = index.Overlapping(e.index);
      if (adjacent.size() < used.size()) {
        for (size_t k : adjacent) {
          if (y[i][k]) {
            conflict = true;
            break;
          }
        }
      } else {
        for (size_t k : used) {
          if (index.OverlapTest(e.index, k)) {
            conflict = true;
            break;
          }
        }
      }
      if (!conflict && rng.Bernoulli(0.5)) {
        y[i][e.index] = true;
        used.push_back(e.index);
      }
    }
  }

  MvsSolution& best = trial.solution;
  best.z = z;
  best.y = y;
  best.utility = index.EvaluateUtilitySparse(z, y);
  trial.trace.push_back(best.utility);
  GlobalSelection().RecordUtilityCells(index.NumPositive());

  // b_cur always equals what the naive loop would recompute from the
  // current y at the top of the next iteration (CurrentBenefit performs
  // the identical ascending-query summation).
  std::vector<double> b_cur(nz, 0.0);
  for (size_t j = 0; j < nz; ++j) b_cur[j] = index.CurrentBenefit(j, y);

  std::vector<size_t> flipped;
  std::vector<bool> query_dirty(nq, false);
  std::vector<size_t> dirty_queries;
  std::vector<bool> view_dirty(nz, false);
  std::vector<size_t> dirty_views;

  for (size_t iter = 0; iter < options.iterations; ++iter) {
    if (StopRequested(options.deadline, options.cancel)) {
      trial.timed_out = true;
      break;
    }
    const double tau = rng.Uniform01();
    const bool frozen = iter >= options.freeze_selected_after;
    flipped.clear();
    internal::ZOptStepRecording(index, b_cur, tau, frozen, &z, &flipped);

    // Queries to re-solve: positive support meets a flipped view. A
    // clean query's optimum depends only on z restricted to its support,
    // which did not change, so its cached row is already the solver's
    // bit-exact answer.
    dirty_queries.clear();
    if (iter == 0) {
      for (size_t i = 0; i < nq; ++i) dirty_queries.push_back(i);
    } else {
      for (size_t j : flipped) {
        for (const MvsProblemIndex::Entry& e : index.Column(j)) {
          if (e.benefit > 0 && !query_dirty[e.index]) {
            query_dirty[e.index] = true;
            dirty_queries.push_back(e.index);
          }
        }
      }
      std::sort(dirty_queries.begin(), dirty_queries.end());
      for (size_t i : dirty_queries) query_dirty[i] = false;
    }
    GlobalSelection().RecordQueriesSolved(dirty_queries.size());

    dirty_views.clear();
    for (size_t i : dirty_queries) {
      std::vector<bool> solved = yopt.SolveQuery(i, z);
      for (const MvsProblemIndex::Entry& e : index.Row(i)) {
        if (y[i][e.index] != solved[e.index] && !view_dirty[e.index]) {
          view_dirty[e.index] = true;
          dirty_views.push_back(e.index);
        }
      }
      y[i] = std::move(solved);
    }
    for (size_t j : dirty_views) {
      b_cur[j] = index.CurrentBenefit(j, y);
      view_dirty[j] = false;
    }

    const double utility = index.EvaluateUtilitySparse(z, y);
    GlobalSelection().RecordUtilityCells(index.NumPositive());
    trial.trace.push_back(utility);
    if (utility > best.utility) {
      best.z = z;
      best.y = y;
      best.utility = utility;
    }
  }
  return trial;
}

/// RunTrialIncremental seeded from a warm incumbent instead of a random
/// configuration: z starts at `warm_z`, y at Y-Opt(warm_z). Because the
/// warm y is itself a solver output (per-query optimal for this z over
/// this index), the first-iteration all-queries re-solve is skipped —
/// the dirty-query machinery is sound from iteration one. The best-so-
/// far incumbent starts at the warm evaluation, so the trial can only
/// improve on the warm utility.
TrialResult RunTrialWarm(const MvsProblemIndex& index,
                         const IterViewSelector::Options& options,
                         uint64_t seed, const std::vector<bool>& warm_z) {
  TrialResult trial;
  Rng rng(seed);
  const size_t nz = index.num_views();
  const size_t nq = index.num_queries();
  YOptSolver yopt(&index);

  std::vector<bool> z = warm_z;
  std::vector<std::vector<bool>> y = yopt.SolveAll(z);
  GlobalSelection().RecordQueriesSolved(nq);

  MvsSolution& best = trial.solution;
  best.z = z;
  best.y = y;
  best.utility = index.EvaluateUtilitySparse(z, y);
  trial.trace.push_back(best.utility);
  GlobalSelection().RecordUtilityCells(index.NumPositive());

  std::vector<double> b_cur(nz, 0.0);
  for (size_t j = 0; j < nz; ++j) b_cur[j] = index.CurrentBenefit(j, y);

  std::vector<size_t> flipped;
  std::vector<bool> query_dirty(nq, false);
  std::vector<size_t> dirty_queries;
  std::vector<bool> view_dirty(nz, false);
  std::vector<size_t> dirty_views;

  for (size_t iter = 0; iter < options.iterations; ++iter) {
    if (StopRequested(options.deadline, options.cancel)) {
      trial.timed_out = true;
      break;
    }
    const double tau = rng.Uniform01();
    const bool frozen = iter >= options.freeze_selected_after;
    flipped.clear();
    internal::ZOptStepRecording(index, b_cur, tau, frozen, &z, &flipped);

    dirty_queries.clear();
    for (size_t j : flipped) {
      for (const MvsProblemIndex::Entry& e : index.Column(j)) {
        if (e.benefit > 0 && !query_dirty[e.index]) {
          query_dirty[e.index] = true;
          dirty_queries.push_back(e.index);
        }
      }
    }
    std::sort(dirty_queries.begin(), dirty_queries.end());
    for (size_t i : dirty_queries) query_dirty[i] = false;
    GlobalSelection().RecordQueriesSolved(dirty_queries.size());

    dirty_views.clear();
    for (size_t i : dirty_queries) {
      std::vector<bool> solved = yopt.SolveQuery(i, z);
      for (const MvsProblemIndex::Entry& e : index.Row(i)) {
        if (y[i][e.index] != solved[e.index] && !view_dirty[e.index]) {
          view_dirty[e.index] = true;
          dirty_views.push_back(e.index);
        }
      }
      y[i] = std::move(solved);
    }
    for (size_t j : dirty_views) {
      b_cur[j] = index.CurrentBenefit(j, y);
      view_dirty[j] = false;
    }

    const double utility = index.EvaluateUtilitySparse(z, y);
    GlobalSelection().RecordUtilityCells(index.NumPositive());
    trial.trace.push_back(utility);
    if (utility > best.utility) {
      best.z = z;
      best.y = y;
      best.utility = utility;
    }
  }
  return trial;
}

/// Runs `restarts` independent seeded trials of `run_trial(seed)` on the
/// configured pool and reduces them deterministically (strict > keeps
/// the lowest restart index on ties, regardless of which worker finished
/// first). Shared by the dense and index-only entry points.
template <typename TrialFn>
MvsSolution RunRestartsAndReduce(const IterViewSelector::Options& options,
                                 size_t nq, size_t nz, TrialFn&& run_trial,
                                 std::vector<double>* trace_out) {
  const size_t restarts = std::max<size_t>(1, options.restarts);
  std::vector<TrialResult> trials(restarts);
  auto run = [&](size_t r) {
    // Restart 0 keeps the raw seed so restarts == 1 reproduces the
    // historical single-trial stream exactly.
    const uint64_t seed =
        r == 0 ? options.seed : Rng::StreamSeed(options.seed, r);
    trials[r] = run_trial(seed);
  };
  if (restarts == 1) {
    run(0);
  } else {
    ThreadPool& pool = options.pool ? *options.pool : DefaultPool();
    pool.ParallelFor(0, restarts, run);
  }

  size_t winner = 0;
  bool timed_out = trials[0].timed_out;
  for (size_t r = 1; r < restarts; ++r) {
    timed_out = timed_out || trials[r].timed_out;
    if (trials[r].solution.utility > trials[winner].solution.utility) {
      winner = r;
    }
  }
  *trace_out = std::move(trials[winner].trace);
  MvsSolution best = std::move(trials[winner].solution);
  best.timed_out = timed_out;
  if (timed_out) {
    GlobalRobustness().RecordTimeout();
    // Anytime guarantee: under a deadline so tight that only the random
    // initialization ran, the incumbent can be worse than materializing
    // nothing. The empty configuration is always feasible with utility
    // 0, so never return less than that.
    if (best.utility < 0.0) {
      best.z.assign(nz, false);
      best.y.assign(nq, std::vector<bool>(nz, false));
      best.utility = 0.0;
      trace_out->push_back(best.utility);
    }
  }
  return best;
}

}  // namespace

Result<MvsSolution> IterViewSelector::Select(const MvsProblem& problem) {
  AV_RETURN_NOT_OK(problem.Validate());
  if (options_.engine == SelectionEngine::kIncremental) {
    // One index serves every trial: it is immutable after construction,
    // so concurrent restarts share it without synchronization. Routing
    // the dense entry point through SelectIndexed makes equivalence with
    // the compact-built path structural rather than asserted.
    const MvsProblemIndex index(problem);
    return SelectIndexed(index);
  }
  trace_.clear();
  MvsSolution best = RunRestartsAndReduce(
      options_, problem.num_queries(), problem.num_views(),
      [&](uint64_t seed) { return RunTrial(problem, options_, seed); },
      &trace_);
  return best;
}

Result<MvsSolution> IterViewSelector::SelectIndexed(
    const MvsProblemIndex& index) {
  trace_.clear();
  MvsSolution best = RunRestartsAndReduce(
      options_, index.num_queries(), index.num_views(),
      [&](uint64_t seed) { return RunTrialIncremental(index, options_, seed); },
      &trace_);
  return best;
}

Result<MvsSolution> IterViewSelector::ReselectDelta(
    const MvsProblemIndex& index, const std::vector<bool>& warm_z) {
  if (warm_z.size() != index.num_views()) {
    return Status::InvalidArgument("warm_z size does not match index views");
  }
  trace_.clear();
  // Monotonicity through the anytime floor: every trial's best starts
  // at the warm evaluation u_w, so the reduced best is >= u_w. The
  // timeout floor substitutes all-zeros (utility 0) only when best < 0,
  // i.e. only when u_w < 0 — and 0 > u_w there, so the guarantee holds
  // on both branches.
  MvsSolution best = RunRestartsAndReduce(
      options_, index.num_queries(), index.num_views(),
      [&](uint64_t seed) {
        return RunTrialWarm(index, options_, seed, warm_z);
      },
      &trace_);
  return best;
}

}  // namespace autoview
