#pragma once

#include "select/selector.h"
#include "util/deadline.h"
#include "util/random.h"

namespace autoview {

class MvsProblemIndex;
class ThreadPool;

/// \brief The paper's IterView function (§V-A2): randomized iterative
/// optimization alternating Z-Opt (probabilistic flips, Eq. 3) and the
/// exact per-query Y-Opt.
///
/// With `freeze_selected_after` set, a selected view can no longer be
/// unselected once that many iterations have elapsed — this is exactly
/// the convergence hack of BigSub [20], which the paper criticizes for
/// degenerating into a greedy method. The factory functions below
/// configure the two variants.
///
/// `restarts > 1` runs that many independent seeded trials — restart 0
/// uses `seed` verbatim (so a single-restart run is unchanged from the
/// historical behavior) and restart r uses Rng::StreamSeed(seed, r) —
/// and keeps the maximum-utility solution, ties broken toward the lowest
/// restart index. Trials execute concurrently on `pool` (DefaultPool()
/// when null); because every trial owns its Rng stream and the winner is
/// reduced in restart order on the calling thread, the outcome is
/// bit-identical for any thread count, including 1.
class IterViewSelector : public ViewSelector {
 public:
  struct Options {
    size_t iterations = 100;                 ///< n (or n1 inside RLView)
    size_t freeze_selected_after = SIZE_MAX; ///< BigSub threshold
    uint64_t seed = 42;
    size_t restarts = 1;        ///< independent seeded trials, best kept
    ThreadPool* pool = nullptr; ///< trial executor; null => DefaultPool()

    /// Evaluation engine. kIncremental (default) builds a sparse
    /// MvsProblemIndex once per Select() and re-derives only what each
    /// Z-flip touched; kNaive is the original dense per-iteration
    /// recomputation, kept as the bit-identical oracle. Both produce
    /// the same flip sequence, traces, and solutions for any seed.
    SelectionEngine engine = SelectionEngine::kIncremental;

    /// Anytime budget: trials poll the deadline once per iteration and,
    /// when it expires, every trial stops and Select() returns the best
    /// incumbent seen so far with MvsSolution::timed_out set. The
    /// returned incumbent is always feasible with utility >= 0 (the
    /// all-zeros configuration is substituted if the search had only
    /// visited worse states). Infinite by default, which keeps the
    /// historical bit-identical behavior.
    Deadline deadline;
    /// Cooperative external cancellation, same semantics as an expired
    /// deadline. Copies share the flag; cancel from any thread.
    CancellationToken cancel;
  };

  explicit IterViewSelector(Options options)
      : options_(options), is_bigsub_(options.freeze_selected_after !=
                                      SIZE_MAX) {}

  /// IterView as in the paper (no freezing; oscillates, Fig. 10).
  static IterViewSelector IterView(size_t iterations, uint64_t seed = 42);

  /// BigSub [20]: freezing kicks in after half the iterations.
  static IterViewSelector BigSub(size_t iterations, uint64_t seed = 42);

  Result<MvsSolution> Select(const MvsProblem& problem) override;

  /// Index-only entry point for the sharded/streaming pipeline: runs the
  /// incremental trials directly against a prebuilt MvsProblemIndex (no
  /// dense MvsProblem required — the index may come from a
  /// CompactMvsProblem). Select() with the kIncremental engine routes
  /// through this method, so the two are bit-identical by construction.
  /// Ignores Options::engine (this path is inherently incremental).
  Result<MvsSolution> SelectIndexed(const MvsProblemIndex& index);

  /// Warm-started delta re-selection for the online advisor: seeds every
  /// trial with the incumbent selection `warm_z` over the (mutated)
  /// index, re-derives y = Y-Opt(warm_z), and runs the incremental
  /// iteration loop from there — skipping both the random initialization
  /// and the first-iteration all-queries re-solve (the warm y IS a
  /// solver output, so the dirty-query machinery applies from iteration
  /// one). Monotonicity guarantee: the result's utility is never below
  /// the warm point's own utility under the new index — Y-Opt is
  /// per-query optimal for fixed z, the best-so-far incumbent starts at
  /// the warm evaluation, and the anytime floor only ever substitutes
  /// utility 0 when the incumbent is negative.
  Result<MvsSolution> ReselectDelta(const MvsProblemIndex& index,
                                    const std::vector<bool>& warm_z);

  std::string name() const override {
    return is_bigsub_ ? "BigSub" : "IterView";
  }

  /// The best (z, y) seen across iterations — IterView oscillates, so
  /// the final state is not necessarily the best one. Select() returns
  /// this best solution; the per-iteration trace shows the raw path.
  const Options& options() const { return options_; }

 private:
  Options options_;
  bool is_bigsub_;
};

namespace internal {

/// One Z-Opt pass (Eq. 3): flips each z_j with probability
/// p_flip = p_overhead * p_benefit compared against threshold tau.
/// Exposed for unit testing. `frozen` disables 1->0 flips (BigSub).
void ZOptStep(const MvsProblem& problem, const std::vector<double>& b_cur,
              double tau, bool frozen, std::vector<bool>* z);

/// The flip probability of Eq. 3 for view j.
double FlipProbability(const MvsProblem& problem,
                       const std::vector<double>& b_cur, size_t j,
                       const std::vector<bool>& z);

}  // namespace internal

}  // namespace autoview
