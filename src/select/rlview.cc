#include "select/rlview.h"

#include <algorithm>
#include <cmath>

#include "ilp/problem_index.h"
#include "util/metrics.h"

namespace autoview {

namespace {

using nn::Tensor;

/// One replay-memory entry: the full (|Z| x dim) action-feature matrix
/// of the state, the chosen action, the reward, and the successor
/// state's feature matrix (for the max_a Q(e', a) target).
struct Transition {
  std::vector<nn::Scalar> state_actions;
  size_t action = 0;
  double reward = 0.0;
  std::vector<nn::Scalar> next_actions;
  size_t num_actions = 0;
};

/// Q network: the paper's plain 16/64/16/1 MLP, optionally with the
/// dueling decomposition Q = V(e) + A(e,a) - mean_a A(e,a).
class QNet {
 public:
  QNet(size_t feature_dim, bool dueling, Rng* rng)
      : dueling_(dueling),
        advantage_({feature_dim, 16, 64, 16, 1}, rng),
        value_({feature_dim, 16, 16, 1}, rng) {}

  /// (n x dim) action features -> (n x 1) Q values (differentiable).
  Tensor ForwardAll(const std::vector<nn::Scalar>& phis, size_t n,
                    size_t feature_dim) const {
    Tensor x = Tensor::FromData(phis, n, feature_dim);
    Tensor a = advantage_.Forward(x);  // n x 1
    if (!dueling_) return a;
    Tensor mean_a = MeanRows(a);                    // 1 x 1
    Tensor v = value_.Forward(MeanRows(x));         // 1 x 1
    return Add(Add(a, Scale(mean_a, -1.0)), v);     // broadcast over rows
  }

  std::vector<double> Values(const std::vector<nn::Scalar>& phis, size_t n,
                             size_t feature_dim) const {
    Tensor q = ForwardAll(phis, n, feature_dim);
    return std::vector<double>(q.data().begin(), q.data().end());
  }

  /// Enables ValuesFast(); call RefreshFastScoring() after every
  /// parameter update (optimizer step, CopyFrom) or scores go stale.
  void EnableFastScoring() {
    advantage_inf_ = std::make_unique<nn::MlpInference>(&advantage_);
    value_inf_ = std::make_unique<nn::MlpInference>(&value_);
  }

  void RefreshFastScoring() {
    advantage_inf_->Refresh();
    value_inf_->Refresh();
  }

  /// Values() through the no-grad inference path: no tape nodes, no
  /// gradient buffers, reused activation storage. Bit-identical to
  /// Values() — MlpInference replays MatMul/Add/ReLU's element-wise
  /// arithmetic and the dueling combination below mirrors ForwardAll's
  /// op order ((a - mean_a) + v with MeanRows' accumulation order).
  std::vector<double> ValuesFast(const std::vector<nn::Scalar>& phis, size_t n,
                                 size_t feature_dim) {
    AV_CHECK(advantage_inf_ != nullptr);
    const std::vector<nn::Scalar>& a = advantage_inf_->Forward(phis.data(), n);
    std::vector<double> q(a.begin(), a.end());
    if (!dueling_) return q;
    std::vector<nn::Scalar> mean_x(feature_dim, 0.0);
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = 0; j < feature_dim; ++j) {
        mean_x[j] += phis[i * feature_dim + j];
      }
    }
    for (size_t j = 0; j < feature_dim; ++j) {
      mean_x[j] /= static_cast<nn::Scalar>(n);
    }
    nn::Scalar mean_a = 0.0;
    for (size_t i = 0; i < n; ++i) mean_a += q[i];
    mean_a /= static_cast<nn::Scalar>(n);
    const nn::Scalar neg_mean_a = mean_a * -1.0;
    const nn::Scalar v = value_inf_->Forward(mean_x.data(), 1)[0];
    for (size_t i = 0; i < n; ++i) q[i] = (q[i] + neg_mean_a) + v;
    return q;
  }

  std::vector<Tensor> Parameters() const {
    std::vector<Tensor> params = advantage_.Parameters();
    if (dueling_) {
      for (const auto& p : value_.Parameters()) params.push_back(p);
    }
    return params;
  }

  void CopyFrom(const QNet& other) {
    advantage_.CopyFrom(other.advantage_);
    value_.CopyFrom(other.value_);
  }

 private:
  bool dueling_;
  nn::Mlp advantage_;
  nn::Mlp value_;
  std::unique_ptr<nn::MlpInference> advantage_inf_;
  std::unique_ptr<nn::MlpInference> value_inf_;
};

}  // namespace

std::vector<nn::Scalar> RLViewSelector::ActionFeatures(
    const MvsProblem& problem, const std::vector<bool>& z,
    const std::vector<double>& b_cur, double utility_norm, size_t j) const {
  // Kept for interface completeness; Select() uses the batched builder.
  double o_max = 0.0, o_cur = 0.0, b_max_total = 0.0, b_cur_total = 0.0;
  for (size_t k = 0; k < problem.num_views(); ++k) {
    o_max += problem.overhead[k];
    if (z[k]) o_cur += problem.overhead[k];
    b_cur_total += b_cur[k];
    b_max_total += problem.MaxBenefit(k);
  }
  size_t overlap_degree = 0;
  for (size_t k = 0; k < problem.num_views(); ++k) {
    if (problem.overlap[j][k]) ++overlap_degree;
  }
  const double nz = static_cast<double>(problem.num_views());
  return {
      z[j] ? 1.0 : 0.0,
      problem.overhead[j] / std::max(o_max, 1e-12),
      problem.MaxBenefit(j) / std::max(b_max_total, 1e-12),
      b_cur[j] / std::max(b_cur_total, 1e-12),
      static_cast<double>(overlap_degree) / std::max(nz, 1.0),
      utility_norm,
      o_cur / std::max(o_max, 1e-12),
      1.0,
  };
}

Result<MvsSolution> RLViewSelector::Select(const MvsProblem& problem) {
  AV_RETURN_NOT_OK(problem.Validate());
  trace_.clear();
  if (problem.num_views() == 0) {
    MvsSolution empty;
    empty.y.assign(problem.num_queries(), {});
    return empty;
  }
  return options_.engine == SelectionEngine::kIncremental
             ? SelectIncremental(problem)
             : SelectNaive(problem);
}

Result<MvsSolution> RLViewSelector::SelectNaive(const MvsProblem& problem) {
  const size_t nz = problem.num_views();
  const size_t nq = problem.num_queries();
  YOptSolver yopt(&problem);
  Rng rng(options_.seed);

  // Warm start: Z0, Y0 <- IterView (Algorithm 2, line 2). The warm
  // start inherits the deadline, so even a budget too small for any RL
  // episode still yields a feasible (possibly all-zeros) incumbent.
  IterViewSelector::Options warm_options;
  warm_options.iterations = options_.init_iterations;
  warm_options.seed = options_.seed;
  warm_options.deadline = options_.deadline;
  warm_options.cancel = options_.cancel;
  warm_options.engine = SelectionEngine::kNaive;
  IterViewSelector warm(warm_options);
  AV_ASSIGN_OR_RETURN(MvsSolution state, warm.Select(problem));
  for (double u : warm.utility_trace()) trace_.push_back(u);
  MvsSolution best = state;
  bool timed_out = state.timed_out;
  best.timed_out = false;  // set again below if the run was cut short

  // Per-problem invariants, cached once.
  std::vector<double> max_benefit(nz), overlap_degree(nz);
  double o_max = 0.0, b_max_total = 0.0;
  for (size_t j = 0; j < nz; ++j) {
    max_benefit[j] = problem.MaxBenefit(j);
    b_max_total += max_benefit[j];
    o_max += problem.overhead[j];
    size_t degree = 0;
    for (size_t k = 0; k < nz; ++k) degree += problem.overlap[j][k];
    overlap_degree[j] =
        static_cast<double>(degree) / static_cast<double>(nz);
  }
  const double utility_scale = std::max(b_max_total, 1e-12);

  // DQN mu(e|theta) (§V-B2) and the optional frozen target network.
  QNet dqn(kFeatureDim, options_.dueling, &rng);
  QNet target_net(kFeatureDim, options_.dueling, &rng);
  target_net.CopyFrom(dqn);
  const bool use_target = options_.target_sync_every > 0;
  size_t train_steps = 0;
  nn::Adam::Options adam_opts;
  adam_opts.lr = options_.learning_rate;
  nn::Adam adam(dqn.Parameters(), adam_opts);

  std::deque<Transition> memory;
  const size_t max_steps =
      options_.max_steps_per_episode ? options_.max_steps_per_episode : nz;

  auto benefits_of = [&](const std::vector<std::vector<bool>>& y) {
    std::vector<double> b_cur(nz, 0.0);
    for (size_t i = 0; i < nq; ++i) {
      for (size_t j = 0; j < nz; ++j) {
        if (y[i][j] && problem.benefit[i][j] > 0) {
          b_cur[j] += problem.benefit[i][j];
        }
      }
    }
    return b_cur;
  };
  // Row-major (nz x kFeatureDim) feature matrix for all actions.
  auto features_of = [&](const std::vector<bool>& z,
                         const std::vector<double>& b_cur, double utility) {
    const double utility_norm = utility / utility_scale;
    double o_cur = 0.0, b_cur_total = 0.0;
    for (size_t k = 0; k < nz; ++k) {
      if (z[k]) o_cur += problem.overhead[k];
      b_cur_total += b_cur[k];
    }
    std::vector<nn::Scalar> phis(nz * kFeatureDim);
    for (size_t j = 0; j < nz; ++j) {
      nn::Scalar* row = &phis[j * kFeatureDim];
      row[0] = z[j] ? 1.0 : 0.0;
      row[1] = problem.overhead[j] / std::max(o_max, 1e-12);
      row[2] = max_benefit[j] / std::max(b_max_total, 1e-12);
      row[3] = b_cur[j] / std::max(b_cur_total, 1e-12);
      row[4] = overlap_degree[j];
      row[5] = utility_norm;
      row[6] = o_cur / std::max(o_max, 1e-12);
      row[7] = 1.0;
    }
    return phis;
  };

  for (size_t episode = 0; episode < options_.episodes && !timed_out;
       ++episode) {
    // Linearly decaying exploration: explore early, exploit late.
    const double epsilon =
        options_.epsilon *
        (1.0 - static_cast<double>(episode) /
                   static_cast<double>(std::max<size_t>(1, options_.episodes)));
    // Every episode restarts from the warm-start state (line 6).
    std::vector<bool> z = state.z;
    std::vector<std::vector<bool>> y = state.y;
    double utility = EvaluateUtility(problem, z, y);
    std::vector<double> b_cur = benefits_of(y);
    std::vector<nn::Scalar> phis = features_of(z, b_cur, utility);

    size_t t = 0;
    double reward = 0.0;
    do {
      // Anytime behavior: keep the incumbent, stop the episode. The
      // infinite default never reads the clock (bit-identity).
      if (StopRequested(options_.deadline, options_.cancel)) {
        timed_out = true;
        break;
      }
      // Action selection: argmax_j Q(e_t)[j], epsilon-greedy.
      size_t action;
      if (rng.Bernoulli(epsilon)) {
        action = static_cast<size_t>(
            rng.UniformInt(0, static_cast<int64_t>(nz) - 1));
      } else {
        std::vector<double> q = dqn.Values(phis, nz, kFeatureDim);
        action = static_cast<size_t>(
            std::max_element(q.begin(), q.end()) - q.begin());
      }

      // Environment step: flip z_a, re-solve Y with the ILP solver.
      // Only queries that can use view `action` are affected, so the
      // per-query exact Y-Opt is re-run incrementally.
      z[action] = !z[action];
      size_t solved = 0;
      for (size_t i = 0; i < nq; ++i) {
        if (problem.benefit[i][action] == 0.0) continue;
        y[i] = yopt.SolveQuery(i, z);
        ++solved;
      }
      GlobalSelection().RecordQueriesSolved(solved);
      const double next_utility = EvaluateUtility(problem, z, y);
      GlobalSelection().RecordUtilityCells(static_cast<uint64_t>(nq) * nz);
      reward = next_utility - utility;

      b_cur = benefits_of(y);
      std::vector<nn::Scalar> next_phis = features_of(z, b_cur, next_utility);

      Transition transition;
      transition.state_actions = phis;
      transition.action = action;
      transition.reward = reward;
      transition.next_actions = next_phis;
      transition.num_actions = nz;
      memory.push_back(std::move(transition));
      if (memory.size() > options_.memory_capacity) memory.pop_front();

      utility = next_utility;
      phis = std::move(next_phis);
      trace_.push_back(utility);
      if (utility > best.utility) {
        best.z = z;
        best.y = y;
        best.utility = utility;
      }

      // Fine-tune the DQN once the replay memory is warm (line 16).
      if (memory.size() >= options_.min_memory) {
        adam.ZeroGrad();
        std::vector<Tensor> preds, targets;
        for (size_t b = 0; b < options_.batch_size; ++b) {
          const Transition& tr = memory[static_cast<size_t>(rng.UniformInt(
              0, static_cast<int64_t>(memory.size()) - 1))];
          const QNet& bootstrap = use_target ? target_net : dqn;
          std::vector<double> next_q =
              bootstrap.Values(tr.next_actions, tr.num_actions, kFeatureDim);
          const double target =
              tr.reward +
              options_.gamma * *std::max_element(next_q.begin(), next_q.end());
          Tensor q_all =
              dqn.ForwardAll(tr.state_actions, tr.num_actions, kFeatureDim);
          preds.push_back(SelectRow(q_all, tr.action));
          targets.push_back(Tensor::Full(1, 1, target));
        }
        MseLoss(nn::ConcatRows(preds), nn::ConcatRows(targets)).Backward();
        adam.Step();
        ++train_steps;
        if (use_target && train_steps % options_.target_sync_every == 0) {
          target_net.CopyFrom(dqn);
        }
      }
      ++t;
      // Paper termination: continue while t < |Z| or the last reward was
      // positive; a hard cap bounds pathological positive-reward chains.
    } while ((t < max_steps || reward > 0.0) && t < 4 * max_steps);
  }
  best.timed_out = timed_out;
  // The warm start already recorded its own timeout; only count the
  // episode phase here to keep one user-visible Select() == one record.
  if (timed_out && !state.timed_out) GlobalRobustness().RecordTimeout();
  return best;
}

/// SelectNaive with every dense recomputation replaced by its sparse,
/// bit-identical counterpart (tests/problem_index_test.cc asserts the
/// equivalence): the environment step re-solves exactly the inverted-
/// index column of the flipped view, the per-step reward is a sparse
/// re-sum over the CSR support — O(nnz) cells instead of |Q| x |Z| —
/// b_cur is re-derived only for views whose usage changed, and every
/// DQN action-scoring call runs through the no-grad inference path.
/// Training (ForwardAll + Adam) keeps the autograd tape; the inference
/// snapshots refresh after each parameter update.
Result<MvsSolution> RLViewSelector::SelectIncremental(
    const MvsProblem& problem) {
  const MvsProblemIndex index(problem);

  // Warm start: Z0, Y0 <- IterView (Algorithm 2, line 2); runs its own
  // incremental engine (same bit-exact result as the naive one).
  IterViewSelector::Options warm_options;
  warm_options.iterations = options_.init_iterations;
  warm_options.seed = options_.seed;
  warm_options.deadline = options_.deadline;
  warm_options.cancel = options_.cancel;
  warm_options.engine = SelectionEngine::kIncremental;
  IterViewSelector warm(warm_options);
  AV_ASSIGN_OR_RETURN(MvsSolution state, warm.Select(problem));
  for (double u : warm.utility_trace()) trace_.push_back(u);
  return EpisodesIndexed(index, state);
}

Result<MvsSolution> RLViewSelector::ReselectDelta(
    const MvsProblemIndex& index, const std::vector<bool>& warm_z) {
  if (warm_z.size() != index.num_views()) {
    return Status::InvalidArgument("warm_z size does not match index views");
  }
  trace_.clear();
  if (index.num_views() == 0) {
    MvsSolution empty;
    empty.y.assign(index.num_queries(), {});
    return empty;
  }
  // Warm start: IterView's own delta re-selection seeded at the
  // incumbent (Algorithm 2, line 2, with the random initialization
  // replaced by warm_z). Its result is never below the warm point's
  // utility under this index, and the episode incumbent below only
  // improves on its start state, so the whole re-selection is monotone
  // with respect to the incumbent.
  IterViewSelector::Options warm_options;
  warm_options.iterations = options_.init_iterations;
  warm_options.seed = options_.seed;
  warm_options.deadline = options_.deadline;
  warm_options.cancel = options_.cancel;
  IterViewSelector warm(warm_options);
  AV_ASSIGN_OR_RETURN(MvsSolution state, warm.ReselectDelta(index, warm_z));
  for (double u : warm.utility_trace()) trace_.push_back(u);
  return EpisodesIndexed(index, state);
}

Result<MvsSolution> RLViewSelector::EpisodesIndexed(
    const MvsProblemIndex& index, const MvsSolution& state) {
  const size_t nz = index.num_views();
  const std::vector<double>& overhead = index.Overhead();
  YOptSolver yopt(&index);
  Rng rng(options_.seed);

  MvsSolution best = state;
  bool timed_out = state.timed_out;
  best.timed_out = false;  // set again below if the run was cut short

  // Per-problem invariants, served by the index (ascending-view
  // accumulation, bit-identical to the dense pass).
  std::vector<double> max_benefit(nz), overlap_degree(nz);
  const double o_max = index.TotalOverhead();
  const double b_max_total = index.TotalMaxBenefit();
  for (size_t j = 0; j < nz; ++j) {
    max_benefit[j] = index.MaxBenefit(j);
    overlap_degree[j] = static_cast<double>(index.Overlapping(j).size()) /
                        static_cast<double>(nz);
  }
  const double utility_scale = std::max(b_max_total, 1e-12);

  // DQN mu(e|theta) (§V-B2) and the optional frozen target network.
  QNet dqn(kFeatureDim, options_.dueling, &rng);
  QNet target_net(kFeatureDim, options_.dueling, &rng);
  target_net.CopyFrom(dqn);
  dqn.EnableFastScoring();
  target_net.EnableFastScoring();
  const bool use_target = options_.target_sync_every > 0;
  size_t train_steps = 0;
  nn::Adam::Options adam_opts;
  adam_opts.lr = options_.learning_rate;
  nn::Adam adam(dqn.Parameters(), adam_opts);

  std::deque<Transition> memory;
  const size_t max_steps =
      options_.max_steps_per_episode ? options_.max_steps_per_episode : nz;

  // Row-major (nz x kFeatureDim) feature matrix for all actions. The
  // index's overhead copy stands in for problem.overhead — the values
  // are identical by construction, so the features stay bit-exact.
  auto features_of = [&](const std::vector<bool>& z,
                         const std::vector<double>& b_cur, double utility) {
    const double utility_norm = utility / utility_scale;
    double o_cur = 0.0, b_cur_total = 0.0;
    for (size_t k = 0; k < nz; ++k) {
      if (z[k]) o_cur += overhead[k];
      b_cur_total += b_cur[k];
    }
    std::vector<nn::Scalar> phis(nz * kFeatureDim);
    for (size_t j = 0; j < nz; ++j) {
      nn::Scalar* row = &phis[j * kFeatureDim];
      row[0] = z[j] ? 1.0 : 0.0;
      row[1] = overhead[j] / std::max(o_max, 1e-12);
      row[2] = max_benefit[j] / std::max(b_max_total, 1e-12);
      row[3] = b_cur[j] / std::max(b_cur_total, 1e-12);
      row[4] = overlap_degree[j];
      row[5] = utility_norm;
      row[6] = o_cur / std::max(o_max, 1e-12);
      row[7] = 1.0;
    }
    return phis;
  };

  // The episode start state is fixed, so its utility and per-view
  // benefits are computed once (sparse, in the naive summation order)
  // and copied at each restart.
  const double state_utility = index.EvaluateUtilitySparse(state.z, state.y);
  std::vector<double> state_b_cur(nz, 0.0);
  for (size_t j = 0; j < nz; ++j) {
    state_b_cur[j] = index.CurrentBenefit(j, state.y);
  }

  std::vector<bool> view_dirty(nz, false);
  std::vector<size_t> dirty_views;

  for (size_t episode = 0; episode < options_.episodes && !timed_out;
       ++episode) {
    // Linearly decaying exploration: explore early, exploit late.
    const double epsilon =
        options_.epsilon *
        (1.0 - static_cast<double>(episode) /
                   static_cast<double>(std::max<size_t>(1, options_.episodes)));
    // Every episode restarts from the warm-start state (line 6).
    std::vector<bool> z = state.z;
    std::vector<std::vector<bool>> y = state.y;
    double utility = state_utility;
    std::vector<double> b_cur = state_b_cur;
    std::vector<nn::Scalar> phis = features_of(z, b_cur, utility);

    size_t t = 0;
    double reward = 0.0;
    do {
      // Anytime behavior: keep the incumbent, stop the episode. The
      // infinite default never reads the clock (bit-identity).
      if (StopRequested(options_.deadline, options_.cancel)) {
        timed_out = true;
        break;
      }
      // Action selection: argmax_j Q(e_t)[j], epsilon-greedy.
      size_t action;
      if (rng.Bernoulli(epsilon)) {
        action = static_cast<size_t>(
            rng.UniformInt(0, static_cast<int64_t>(nz) - 1));
      } else {
        std::vector<double> q = dqn.ValuesFast(phis, nz, kFeatureDim);
        action = static_cast<size_t>(
            std::max_element(q.begin(), q.end()) - q.begin());
      }

      // Environment step: flip z_a; the affected queries — those with
      // benefit[i][action] != 0, i.e. the inverted-index column — are
      // re-solved; views whose usage changed get b_cur re-derived.
      z[action] = !z[action];
      dirty_views.clear();
      for (const MvsProblemIndex::Entry& e : index.Column(action)) {
        std::vector<bool> solved_row = yopt.SolveQuery(e.index, z);
        for (const MvsProblemIndex::Entry& re : index.Row(e.index)) {
          if (y[e.index][re.index] != solved_row[re.index] &&
              !view_dirty[re.index]) {
            view_dirty[re.index] = true;
            dirty_views.push_back(re.index);
          }
        }
        y[e.index] = std::move(solved_row);
      }
      GlobalSelection().RecordQueriesSolved(index.Column(action).size());
      const double next_utility = index.EvaluateUtilitySparse(z, y);
      GlobalSelection().RecordUtilityCells(index.NumPositive());
      reward = next_utility - utility;

      for (size_t j : dirty_views) {
        b_cur[j] = index.CurrentBenefit(j, y);
        view_dirty[j] = false;
      }
      std::vector<nn::Scalar> next_phis = features_of(z, b_cur, next_utility);

      Transition transition;
      transition.state_actions = phis;
      transition.action = action;
      transition.reward = reward;
      transition.next_actions = next_phis;
      transition.num_actions = nz;
      memory.push_back(std::move(transition));
      if (memory.size() > options_.memory_capacity) memory.pop_front();

      utility = next_utility;
      phis = std::move(next_phis);
      trace_.push_back(utility);
      if (utility > best.utility) {
        best.z = z;
        best.y = y;
        best.utility = utility;
      }

      // Fine-tune the DQN once the replay memory is warm (line 16).
      // Bootstrap targets need no gradients, so they use the fast
      // scorer; the prediction pass keeps the autograd tape.
      if (memory.size() >= options_.min_memory) {
        adam.ZeroGrad();
        std::vector<Tensor> preds, targets;
        for (size_t b = 0; b < options_.batch_size; ++b) {
          const Transition& tr = memory[static_cast<size_t>(rng.UniformInt(
              0, static_cast<int64_t>(memory.size()) - 1))];
          QNet& bootstrap = use_target ? target_net : dqn;
          std::vector<double> next_q = bootstrap.ValuesFast(
              tr.next_actions, tr.num_actions, kFeatureDim);
          const double target =
              tr.reward +
              options_.gamma * *std::max_element(next_q.begin(), next_q.end());
          Tensor q_all =
              dqn.ForwardAll(tr.state_actions, tr.num_actions, kFeatureDim);
          preds.push_back(SelectRow(q_all, tr.action));
          targets.push_back(Tensor::Full(1, 1, target));
        }
        MseLoss(nn::ConcatRows(preds), nn::ConcatRows(targets)).Backward();
        adam.Step();
        dqn.RefreshFastScoring();
        ++train_steps;
        if (use_target && train_steps % options_.target_sync_every == 0) {
          target_net.CopyFrom(dqn);
          target_net.RefreshFastScoring();
        }
      }
      ++t;
      // Paper termination: continue while t < |Z| or the last reward was
      // positive; a hard cap bounds pathological positive-reward chains.
    } while ((t < max_steps || reward > 0.0) && t < 4 * max_steps);
  }
  best.timed_out = timed_out;
  // The warm start already recorded its own timeout; only count the
  // episode phase here to keep one user-visible Select() == one record.
  if (timed_out && !state.timed_out) GlobalRobustness().RecordTimeout();
  return best;
}

}  // namespace autoview
