#pragma once

#include <deque>
#include <memory>

#include "nn/modules.h"
#include "nn/optimizer.h"
#include "select/iterview.h"
#include "select/selector.h"

namespace autoview {

/// \brief RLView (Algorithm 2): the ILP optimization process modeled as
/// an MDP and solved with a DQN.
///
/// State e = (Z, Y); action = flip one z_j; environment = the exact
/// Y-Opt solver; reward = utility change. The Q network is the paper's
/// four fully-connected layers with 16/64/16/1 neurons (ReLU). Each
/// candidate action is scored from an 8-dim feature vector of (state,
/// action), experience tuples go into a replay memory, and the network
/// is fine-tuned with the one-step Q-learning target
/// Q'(e_t, a_t) = r_t + gamma * max_a Q(e_{t+1}, a).
class RLViewSelector : public ViewSelector {
 public:
  struct Options {
    size_t init_iterations = 10;   ///< n1: IterView warm start
    size_t episodes = 30;          ///< n2: RL epochs
    size_t max_steps_per_episode = 0;  ///< 0 = |Z| (the paper's bound)
    size_t memory_capacity = 512;  ///< replay memory size
    size_t min_memory = 32;        ///< n_m: fine-tune once this full
    size_t batch_size = 16;
    double gamma = 0.9;            ///< reward decay rate (Table II)
    double epsilon = 0.05;         ///< exploration rate (decays linearly)
    double learning_rate = 1e-3;
    uint64_t seed = 42;

    /// Sync a frozen target network for the max_a Q(e',a) term every
    /// `target_sync_every` training steps (0 = no target network; the
    /// paper's plain DQN). Stabilizes bootstrapping.
    size_t target_sync_every = 0;

    /// Dueling architecture [42, cited by the paper]: Q(e,a) =
    /// V(e) + A(e,a) - mean_a A(e,a), with separate value/advantage
    /// heads. Off by default (the paper's network is a plain MLP).
    bool dueling = false;

    /// Evaluation engine. kIncremental (default) re-solves only the
    /// queries touched by the flipped view via the inverted index,
    /// computes each step's reward from a sparse utility re-sum, and
    /// scores DQN actions through the no-grad inference fast path.
    /// kNaive is the original dense implementation, kept as the
    /// bit-identical oracle: same action sequence, rewards, network
    /// weights, and solution for any seed.
    SelectionEngine engine = SelectionEngine::kIncremental;

    /// Anytime budget shared by the IterView warm start and the RL
    /// episodes: polled between episode steps; on expiry Select()
    /// returns the best incumbent seen with MvsSolution::timed_out set.
    /// Infinite by default (historical behavior, no clock reads).
    Deadline deadline;
    /// Cooperative external cancellation (same effect as expiry).
    CancellationToken cancel;
  };

  explicit RLViewSelector(Options options) : options_(options) {}
  RLViewSelector() : RLViewSelector(Options{}) {}

  Result<MvsSolution> Select(const MvsProblem& problem) override;

  /// Warm-started delta re-selection for the online advisor: the
  /// IterView warm start runs its own ReselectDelta seeded at the
  /// incumbent `warm_z` over the (mutated) index, then the RL episodes
  /// restart from that state exactly as in Select(). Index-only — no
  /// dense MvsProblem is ever built, so the advisor can call this
  /// directly on its incrementally maintained index. Monotonicity: the
  /// warm start never returns below the warm point's own utility under
  /// the new index, and the episode incumbent only ever improves on its
  /// start state, so neither does the result.
  Result<MvsSolution> ReselectDelta(const MvsProblemIndex& index,
                                    const std::vector<bool>& warm_z);

  std::string name() const override { return "RLView"; }

 private:
  static constexpr size_t kFeatureDim = 8;

  /// Feature vector phi(e, a_j) for flipping z_j in state (z, b_cur).
  std::vector<nn::Scalar> ActionFeatures(const MvsProblem& problem,
                                         const std::vector<bool>& z,
                                         const std::vector<double>& b_cur,
                                         double utility_norm, size_t j) const;

  /// The two engines behind Select() (see Options::engine).
  Result<MvsSolution> SelectNaive(const MvsProblem& problem);
  Result<MvsSolution> SelectIncremental(const MvsProblem& problem);

  /// The incremental RL episode loop, shared by SelectIncremental() and
  /// ReselectDelta(): restarts every episode from `state` (the warm
  /// start's best solution) and reads the instance exclusively through
  /// the index — bit-identical to the dense loop because the index
  /// stores its own overhead copy and every sparse sum re-runs the
  /// naive summation order.
  Result<MvsSolution> EpisodesIndexed(const MvsProblemIndex& index,
                                      const MvsSolution& state);

  Options options_;
};

}  // namespace autoview
