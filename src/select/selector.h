#pragma once

#include <memory>
#include <string>
#include <vector>

#include "ilp/problem.h"

namespace autoview {

/// \brief Evaluation engine of the iterative selectors.
///
/// kIncremental (the default) builds an MvsProblemIndex per Select()
/// call and re-derives only what each flip touched: Y-Opt re-solves
/// dirty queries via the inverted index, per-view benefits are
/// recomputed only for views whose usage changed, and utilities are
/// sparse ordered re-sums over the nonzero support. kNaive keeps the
/// original dense per-iteration recomputation; it is retained as the
/// bit-identical oracle (tests/problem_index_test.cc) and as the
/// baseline of bench/bench_selection_scale.cc.
enum class SelectionEngine {
  kNaive,
  kIncremental,
};

/// \brief Common interface of the view-selection methods compared in
/// Table IV / Figures 9-10.
class ViewSelector {
 public:
  virtual ~ViewSelector() = default;

  /// Solves (approximately) the MVS problem.
  virtual Result<MvsSolution> Select(const MvsProblem& problem) = 0;

  /// Display name ("RLView", "BigSub", "TopkBen", ...).
  virtual std::string name() const = 0;

  /// Utility after each iteration/step of the last Select call (used by
  /// the Fig. 10 convergence bench). Greedy methods record one entry.
  const std::vector<double>& utility_trace() const { return trace_; }

 protected:
  std::vector<double> trace_;
};

/// \brief Ranking strategies of the greedy Top-k baselines [10].
enum class TopkStrategy {
  kFrequency,  ///< TopkFreq: subquery frequency in the workload, desc
  kOverhead,   ///< TopkOver: materialization overhead, asc
  kBenefit,    ///< TopkBen: total workload benefit, desc
  kNormalized, ///< TopkNorm: utility-to-overhead ratio, desc
};

const char* TopkStrategyName(TopkStrategy strategy);

/// \brief Greedy baseline: rank candidates by `strategy`, materialize
/// the top k, and assign views per query with the exact Y-Opt.
class TopkSelector : public ViewSelector {
 public:
  TopkSelector(TopkStrategy strategy, size_t k)
      : strategy_(strategy), k_(k) {}

  Result<MvsSolution> Select(const MvsProblem& problem) override;
  std::string name() const override { return TopkStrategyName(strategy_); }

  /// The ranked candidate order for `problem` (before truncation at k).
  std::vector<size_t> Ranking(const MvsProblem& problem) const;

  void set_k(size_t k) { k_ = k; }
  size_t k() const { return k_; }

 private:
  TopkStrategy strategy_;
  size_t k_;
};

/// Sweeps k in [0, num_views] and returns the utility at each k —
/// the curves of Fig. 9. `step` subsamples the sweep for large |Z|.
std::vector<double> TopkUtilityCurve(const MvsProblem& problem,
                                     TopkStrategy strategy, size_t step = 1);

}  // namespace autoview
