#include <algorithm>
#include <numeric>

#include "select/selector.h"

namespace autoview {

const char* TopkStrategyName(TopkStrategy strategy) {
  switch (strategy) {
    case TopkStrategy::kFrequency:
      return "TopkFreq";
    case TopkStrategy::kOverhead:
      return "TopkOver";
    case TopkStrategy::kBenefit:
      return "TopkBen";
    case TopkStrategy::kNormalized:
      return "TopkNorm";
  }
  return "?";
}

std::vector<size_t> TopkSelector::Ranking(const MvsProblem& problem) const {
  std::vector<size_t> order(problem.num_views());
  std::iota(order.begin(), order.end(), size_t{0});
  auto score = [&](size_t j) -> double {
    switch (strategy_) {
      case TopkStrategy::kFrequency:
        return j < problem.frequency.size()
                   ? static_cast<double>(problem.frequency[j])
                   : 0.0;
      case TopkStrategy::kOverhead:
        return -problem.overhead[j];  // smaller overhead ranks higher
      case TopkStrategy::kBenefit:
        return problem.MaxBenefit(j);
      case TopkStrategy::kNormalized: {
        const double overhead = std::max(problem.overhead[j], 1e-12);
        return (problem.MaxBenefit(j) - overhead) / overhead;
      }
    }
    return 0.0;
  };
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return score(a) > score(b);
  });
  return order;
}

Result<MvsSolution> TopkSelector::Select(const MvsProblem& problem) {
  AV_RETURN_NOT_OK(problem.Validate());
  trace_.clear();
  std::vector<size_t> order = Ranking(problem);
  MvsSolution solution;
  solution.z.assign(problem.num_views(), false);
  for (size_t p = 0; p < k_ && p < order.size(); ++p) {
    solution.z[order[p]] = true;
  }
  YOptSolver yopt(&problem);
  solution.y = yopt.SolveAll(solution.z);
  solution.utility = EvaluateUtility(problem, solution.z, solution.y);
  trace_.push_back(solution.utility);
  return solution;
}

std::vector<double> TopkUtilityCurve(const MvsProblem& problem,
                                     TopkStrategy strategy, size_t step) {
  std::vector<double> curve;
  TopkSelector selector(strategy, 0);
  for (size_t k = 0; k <= problem.num_views(); k += std::max<size_t>(1, step)) {
    selector.set_k(k);
    auto result = selector.Select(problem);
    curve.push_back(result.ok() ? result.value().utility : 0.0);
  }
  return curve;
}

}  // namespace autoview
