#include "sql/ast.h"

namespace autoview {

std::string AstExpr::ToString() const {
  switch (kind) {
    case AstExprKind::kColumnRef:
      return qualifier.empty() ? name : qualifier + "." + name;
    case AstExprKind::kLiteral:
      return literal.ToString();
    case AstExprKind::kCompare:
      return children[0]->ToString() + " " + op + " " + children[1]->ToString();
    case AstExprKind::kAnd: {
      std::string out;
      for (size_t i = 0; i < children.size(); ++i) {
        if (i) out += " AND ";
        out += children[i]->ToString();
      }
      return out;
    }
    case AstExprKind::kOr: {
      std::string out;
      for (size_t i = 0; i < children.size(); ++i) {
        if (i) out += " OR ";
        out += "(" + children[i]->ToString() + ")";
      }
      return out;
    }
    case AstExprKind::kNot:
      return "NOT (" + children[0]->ToString() + ")";
    case AstExprKind::kAggCall:
      return op + "(" +
             (children.empty() ? std::string("*") : children[0]->ToString()) +
             ")";
    case AstExprKind::kStar:
      return "*";
  }
  return "?";
}

std::string SelectStmt::ToString() const {
  std::string out = distinct ? "SELECT DISTINCT " : "SELECT ";
  for (size_t i = 0; i < items.size(); ++i) {
    if (i) out += ", ";
    out += items[i].expr->ToString();
    if (!items[i].alias.empty()) out += " AS " + items[i].alias;
  }
  auto render_ref = [](const TableRef& ref) {
    std::string s = ref.is_subquery() ? "(" + ref.subquery->ToString() + ")"
                                      : ref.table;
    if (!ref.alias.empty()) s += " " + ref.alias;
    return s;
  };
  out += " FROM " + render_ref(from);
  for (const auto& join : joins) {
    out += " INNER JOIN " + render_ref(join.right) + " ON " +
           join.condition->ToString();
  }
  if (where) out += " WHERE " + where->ToString();
  if (!group_by.empty()) {
    out += " GROUP BY ";
    for (size_t i = 0; i < group_by.size(); ++i) {
      if (i) out += ", ";
      out += group_by[i]->ToString();
    }
  }
  if (!order_by.empty()) {
    out += " ORDER BY ";
    for (size_t i = 0; i < order_by.size(); ++i) {
      if (i) out += ", ";
      out += order_by[i].column->ToString();
      if (order_by[i].descending) out += " DESC";
    }
  }
  if (limit >= 0) out += " LIMIT " + std::to_string(limit);
  return out;
}

}  // namespace autoview
