#pragma once

#include <memory>
#include <string>
#include <vector>

#include "catalog/value.h"

namespace autoview {

struct SelectStmt;

/// \brief Kinds of AST expressions in the supported SQL fragment.
enum class AstExprKind {
  kColumnRef,  // [qualifier.]name
  kLiteral,    // 42, 3.14, 'abc'
  kCompare,    // a = b, a < b, ...
  kAnd,
  kOr,
  kNot,
  kAggCall,  // COUNT(*), SUM(col), ...
  kStar,     // bare * in a select list
};

/// \brief Untyped syntax-tree expression node.
struct AstExpr {
  AstExprKind kind = AstExprKind::kLiteral;
  std::string qualifier;  // column ref table/alias qualifier (may be empty)
  std::string name;       // column name
  Value literal;
  std::string op;  // compare operator ("=", "<", ...) or agg name ("COUNT")
  std::vector<std::shared_ptr<AstExpr>> children;

  /// Re-renders the expression as SQL text.
  std::string ToString() const;
};

using AstExprPtr = std::shared_ptr<AstExpr>;

/// \brief One SELECT-list entry.
struct SelectItem {
  AstExprPtr expr;
  std::string alias;  // empty when none given
};

/// \brief A FROM-clause source: a base table or a derived table.
struct TableRef {
  std::string table;                        // base table name, or empty
  std::shared_ptr<SelectStmt> subquery;     // derived table, or null
  std::string alias;                        // may be empty for base tables

  bool is_subquery() const { return subquery != nullptr; }
};

/// \brief One `INNER JOIN <ref> ON <cond>` clause.
struct JoinClause {
  TableRef right;
  AstExprPtr condition;
};

/// \brief One ORDER BY key.
struct OrderKey {
  AstExprPtr column;
  bool descending = false;
};

/// \brief A parsed SELECT statement (the SPJA fragment of Fig. 2, plus
/// DISTINCT / ORDER BY / LIMIT).
struct SelectStmt {
  bool distinct = false;
  std::vector<SelectItem> items;
  TableRef from;
  std::vector<JoinClause> joins;
  AstExprPtr where;                 // null when absent
  std::vector<AstExprPtr> group_by; // column refs
  std::vector<OrderKey> order_by;
  int64_t limit = -1;               // -1 when absent

  /// Re-renders the statement as SQL text.
  std::string ToString() const;
};

}  // namespace autoview
