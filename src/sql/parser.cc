#include "sql/parser.h"

#include <charconv>

#include "sql/token.h"

namespace autoview {

namespace {

/// Locale-independent strict int64 parse. std::atoll silently accepted
/// trailing garbage and has undefined behavior on overflow, so two
/// processes could plan the same SQL differently; out-of-range literals
/// now fail the parse instead.
Result<int64_t> ParseInt64Literal(const std::string& text) {
  int64_t value = 0;
  const char* end = text.data() + text.size();
  const auto [ptr, ec] = std::from_chars(text.data(), end, value);
  if (ec != std::errc() || ptr != end) {
    return Status::ParseError("integer literal out of range: " + text);
  }
  return value;
}

/// Locale-independent strict double parse. std::atof reads the process
/// locale's decimal separator, so "1.5" parsed as 1.0 under e.g. de_DE
/// — the same workload produced different plans (and different view
/// utilities) depending on the host environment.
Result<double> ParseDoubleLiteral(const std::string& text) {
  double value = 0.0;
  const char* end = text.data() + text.size();
  const auto [ptr, ec] =
      std::from_chars(text.data(), end, value, std::chars_format::general);
  if (ec != std::errc() || ptr != end) {
    return Status::ParseError("float literal out of range: " + text);
  }
  return value;
}

/// Recursive-descent parser over the token stream.
class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<std::shared_ptr<SelectStmt>> ParseStatement() {
    auto stmt = ParseSelectStmt();
    if (!stmt.ok()) return stmt;
    if (Peek().type != TokenType::kEnd) {
      return Error("unexpected trailing token '" + Peek().text + "'");
    }
    return stmt;
  }

 private:
  const Token& Peek(size_t ahead = 0) const {
    const size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  const Token& Advance() { return tokens_[pos_++]; }
  bool Accept(const char* kw) {
    if (Peek().IsKeyword(kw)) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool AcceptSymbol(const char* sym) {
    if (Peek().IsSymbol(sym)) {
      ++pos_;
      return true;
    }
    return false;
  }
  Status Error(const std::string& msg) const {
    return Status::ParseError(msg + " (at offset " +
                              std::to_string(Peek().offset) + ")");
  }

  Result<std::shared_ptr<SelectStmt>> ParseSelectStmt() {
    if (!Accept("SELECT")) return Error("expected SELECT");
    auto stmt = std::make_shared<SelectStmt>();
    stmt->distinct = Accept("DISTINCT");
    do {
      SelectItem item;
      AV_ASSIGN_OR_RETURN(item.expr, ParseSelectExpr());
      if (Accept("AS")) {
        if (Peek().type != TokenType::kIdentifier) {
          return Error("expected alias after AS");
        }
        item.alias = Advance().text;
      } else if (Peek().type == TokenType::kIdentifier) {
        item.alias = Advance().text;
      }
      stmt->items.push_back(std::move(item));
    } while (AcceptSymbol(","));

    if (!Accept("FROM")) return Error("expected FROM");
    AV_ASSIGN_OR_RETURN(stmt->from, ParseTableRef());
    while (true) {
      const bool inner = Accept("INNER");
      if (!Accept("JOIN")) {
        if (inner) return Error("expected JOIN after INNER");
        break;
      }
      JoinClause join;
      AV_ASSIGN_OR_RETURN(join.right, ParseTableRef());
      if (!Accept("ON")) return Error("expected ON in join clause");
      AV_ASSIGN_OR_RETURN(join.condition, ParseOr());
      stmt->joins.push_back(std::move(join));
    }
    if (Accept("WHERE")) {
      AV_ASSIGN_OR_RETURN(stmt->where, ParseOr());
    }
    if (Accept("GROUP")) {
      if (!Accept("BY")) return Error("expected BY after GROUP");
      do {
        AV_ASSIGN_OR_RETURN(auto col, ParseColumnRef());
        stmt->group_by.push_back(std::move(col));
      } while (AcceptSymbol(","));
    }
    if (Accept("ORDER")) {
      if (!Accept("BY")) return Error("expected BY after ORDER");
      do {
        OrderKey key;
        AV_ASSIGN_OR_RETURN(key.column, ParseColumnRef());
        if (Accept("DESC")) {
          key.descending = true;
        } else {
          Accept("ASC");
        }
        stmt->order_by.push_back(std::move(key));
      } while (AcceptSymbol(","));
    }
    if (Accept("LIMIT")) {
      if (Peek().type != TokenType::kIntLiteral) {
        return Error("expected integer after LIMIT");
      }
      AV_ASSIGN_OR_RETURN(stmt->limit, ParseInt64Literal(Advance().text));
    }
    return stmt;
  }

  Result<TableRef> ParseTableRef() {
    TableRef ref;
    if (AcceptSymbol("(")) {
      AV_ASSIGN_OR_RETURN(ref.subquery, ParseSelectStmt());
      if (!AcceptSymbol(")")) return Error("expected ) after subquery");
    } else if (Peek().type == TokenType::kIdentifier) {
      ref.table = Advance().text;
    } else {
      return Error("expected table name or subquery");
    }
    if (Accept("AS")) {
      if (Peek().type != TokenType::kIdentifier) {
        return Error("expected alias after AS");
      }
      ref.alias = Advance().text;
    } else if (Peek().type == TokenType::kIdentifier) {
      ref.alias = Advance().text;
    }
    if (ref.is_subquery() && ref.alias.empty()) {
      return Error("derived table requires an alias");
    }
    return ref;
  }

  /// Select-list entry: *, aggregate call, or column ref.
  Result<AstExprPtr> ParseSelectExpr() {
    if (Peek().IsSymbol("*")) {
      Advance();
      auto e = std::make_shared<AstExpr>();
      e->kind = AstExprKind::kStar;
      return e;
    }
    if (IsAggKeyword(Peek())) return ParseAggCall();
    return ParseColumnRef();
  }

  static bool IsAggKeyword(const Token& t) {
    return t.IsKeyword("COUNT") || t.IsKeyword("SUM") || t.IsKeyword("MIN") ||
           t.IsKeyword("MAX") || t.IsKeyword("AVG");
  }

  Result<AstExprPtr> ParseAggCall() {
    auto e = std::make_shared<AstExpr>();
    e->kind = AstExprKind::kAggCall;
    e->op = Advance().text;  // COUNT / SUM / ...
    if (!AcceptSymbol("(")) return Error("expected ( after aggregate");
    if (AcceptSymbol("*")) {
      if (e->op != "COUNT") return Error("only COUNT accepts *");
    } else {
      AV_ASSIGN_OR_RETURN(auto col, ParseColumnRef());
      e->children.push_back(std::move(col));
    }
    if (!AcceptSymbol(")")) return Error("expected ) after aggregate");
    return e;
  }

  Result<AstExprPtr> ParseColumnRef() {
    if (Peek().type != TokenType::kIdentifier) {
      return Error("expected column reference");
    }
    auto e = std::make_shared<AstExpr>();
    e->kind = AstExprKind::kColumnRef;
    e->name = Advance().text;
    if (AcceptSymbol(".")) {
      if (Peek().type != TokenType::kIdentifier) {
        return Error("expected column after '.'");
      }
      e->qualifier = e->name;
      e->name = Advance().text;
    }
    return e;
  }

  Result<AstExprPtr> ParseOr() {
    AV_ASSIGN_OR_RETURN(auto left, ParseAnd());
    if (!Peek().IsKeyword("OR")) return left;
    auto e = std::make_shared<AstExpr>();
    e->kind = AstExprKind::kOr;
    e->children.push_back(std::move(left));
    while (Accept("OR")) {
      AV_ASSIGN_OR_RETURN(auto right, ParseAnd());
      e->children.push_back(std::move(right));
    }
    return e;
  }

  Result<AstExprPtr> ParseAnd() {
    AV_ASSIGN_OR_RETURN(auto left, ParseNot());
    if (!Peek().IsKeyword("AND")) return left;
    auto e = std::make_shared<AstExpr>();
    e->kind = AstExprKind::kAnd;
    e->children.push_back(std::move(left));
    while (Accept("AND")) {
      AV_ASSIGN_OR_RETURN(auto right, ParseNot());
      e->children.push_back(std::move(right));
    }
    return e;
  }

  Result<AstExprPtr> ParseNot() {
    if (Accept("NOT")) {
      auto e = std::make_shared<AstExpr>();
      e->kind = AstExprKind::kNot;
      AV_ASSIGN_OR_RETURN(auto child, ParseNot());
      e->children.push_back(std::move(child));
      return e;
    }
    if (AcceptSymbol("(")) {
      AV_ASSIGN_OR_RETURN(auto inner, ParseOr());
      if (!AcceptSymbol(")")) return Error("expected )");
      return inner;
    }
    return ParseComparison();
  }

  Result<AstExprPtr> ParseComparison() {
    AV_ASSIGN_OR_RETURN(auto left, ParseOperand());
    const Token& t = Peek();
    if (t.type == TokenType::kSymbol &&
        (t.text == "=" || t.text == "<" || t.text == ">" || t.text == "<=" ||
         t.text == ">=" || t.text == "<>")) {
      auto e = std::make_shared<AstExpr>();
      e->kind = AstExprKind::kCompare;
      e->op = Advance().text;
      e->children.push_back(std::move(left));
      AV_ASSIGN_OR_RETURN(auto right, ParseOperand());
      e->children.push_back(std::move(right));
      return e;
    }
    return Error("expected comparison operator");
  }

  Result<AstExprPtr> ParseOperand() {
    const Token& t = Peek();
    auto e = std::make_shared<AstExpr>();
    switch (t.type) {
      case TokenType::kIntLiteral: {
        AV_ASSIGN_OR_RETURN(const int64_t v, ParseInt64Literal(t.text));
        e->kind = AstExprKind::kLiteral;
        e->literal = Value(v);
        Advance();
        return e;
      }
      case TokenType::kFloatLiteral: {
        AV_ASSIGN_OR_RETURN(const double v, ParseDoubleLiteral(t.text));
        e->kind = AstExprKind::kLiteral;
        e->literal = Value(v);
        Advance();
        return e;
      }
      case TokenType::kStringLiteral:
        e->kind = AstExprKind::kLiteral;
        e->literal = Value(t.text);
        Advance();
        return e;
      case TokenType::kIdentifier:
        return ParseColumnRef();
      default:
        return Error("expected literal or column");
    }
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<std::shared_ptr<SelectStmt>> ParseSelect(const std::string& sql) {
  AV_ASSIGN_OR_RETURN(auto tokens, Tokenize(sql));
  Parser parser(std::move(tokens));
  return parser.ParseStatement();
}

}  // namespace autoview
