#pragma once

#include <memory>
#include <string>

#include "sql/ast.h"
#include "util/status.h"

namespace autoview {

/// Parses one SELECT statement in the supported SQL fragment:
///
///   SELECT item[, item]*
///   FROM table_ref (INNER JOIN table_ref ON cond)*
///   [WHERE cond] [GROUP BY col[, col]*]
///
/// where table_ref is a base table or a parenthesized subquery with an
/// alias, item is `*`, a column, or an aggregate call with an optional
/// alias, and cond is an AND/OR/NOT tree of comparisons.
Result<std::shared_ptr<SelectStmt>> ParseSelect(const std::string& sql);

}  // namespace autoview
