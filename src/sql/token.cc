#include "sql/token.h"

#include <cctype>
#include <unordered_set>

#include "util/strings.h"

namespace autoview {

namespace {

const std::unordered_set<std::string>& Keywords() {
  static const std::unordered_set<std::string> kKeywords = {
      "SELECT", "FROM",  "WHERE", "GROUP", "BY",    "AS",    "AND",
      "OR",     "NOT",   "INNER", "JOIN",  "ON",    "COUNT", "SUM",
      "MIN",    "MAX",   "AVG",   "DISTINCT", "ORDER", "LIMIT", "HAVING",
      "DESC",   "ASC"};
  return kKeywords;
}

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

}  // namespace

Result<std::vector<Token>> Tokenize(const std::string& sql) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = sql.size();
  while (i < n) {
    const char c = sql[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    const size_t start = i;
    if (IsIdentStart(c)) {
      size_t j = i + 1;
      while (j < n && IsIdentChar(sql[j])) ++j;
      std::string word = sql.substr(i, j - i);
      std::string upper = ToUpper(word);
      if (Keywords().count(upper)) {
        tokens.push_back({TokenType::kKeyword, std::move(upper), start});
      } else {
        tokens.push_back({TokenType::kIdentifier, std::move(word), start});
      }
      i = j;
    } else if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t j = i;
      bool is_float = false;
      while (j < n && (std::isdigit(static_cast<unsigned char>(sql[j])) ||
                       sql[j] == '.')) {
        if (sql[j] == '.') {
          if (is_float) break;  // second dot ends the number
          is_float = true;
        }
        ++j;
      }
      tokens.push_back({is_float ? TokenType::kFloatLiteral
                                 : TokenType::kIntLiteral,
                        sql.substr(i, j - i), start});
      i = j;
    } else if (c == '\'') {
      size_t j = i + 1;
      std::string text;
      while (j < n && sql[j] != '\'') {
        text += sql[j];
        ++j;
      }
      if (j >= n) {
        return Status::ParseError("unterminated string literal at offset " +
                                  std::to_string(start));
      }
      tokens.push_back({TokenType::kStringLiteral, std::move(text), start});
      i = j + 1;
    } else {
      // Multi-char operators first.
      auto two = sql.substr(i, 2);
      if (two == "<=" || two == ">=" || two == "<>" || two == "!=") {
        tokens.push_back({TokenType::kSymbol, two == "!=" ? "<>" : two, start});
        i += 2;
        continue;
      }
      static const std::string kSingles = "(),.*=<>;+-/";
      if (kSingles.find(c) == std::string::npos) {
        return Status::ParseError(std::string("unexpected character '") + c +
                                  "' at offset " + std::to_string(start));
      }
      if (c == ';') {  // statement terminator: ignore
        ++i;
        continue;
      }
      tokens.push_back({TokenType::kSymbol, std::string(1, c), start});
      ++i;
    }
  }
  tokens.push_back({TokenType::kEnd, "", n});
  return tokens;
}

}  // namespace autoview
