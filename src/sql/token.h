#pragma once

#include <string>
#include <vector>

#include "util/status.h"

namespace autoview {

/// \brief Lexical token categories produced by the SQL tokenizer.
enum class TokenType {
  kIdentifier,   // table / column / alias names
  kKeyword,      // SELECT, FROM, WHERE, ... (upper-cased in `text`)
  kIntLiteral,   // 42
  kFloatLiteral, // 3.14
  kStringLiteral,// 'abc' (quotes stripped in `text`)
  kSymbol,       // ( ) , . * = < > <= >= <> !=
  kEnd,
};

/// \brief One lexical token with its source offset (for error messages).
struct Token {
  TokenType type = TokenType::kEnd;
  std::string text;
  size_t offset = 0;

  bool IsKeyword(const char* kw) const {
    return type == TokenType::kKeyword && text == kw;
  }
  bool IsSymbol(const char* sym) const {
    return type == TokenType::kSymbol && text == sym;
  }
};

/// Tokenizes a SQL string. Keywords are case-insensitive and normalized
/// to upper case; identifiers keep their original spelling.
Result<std::vector<Token>> Tokenize(const std::string& sql);

}  // namespace autoview
