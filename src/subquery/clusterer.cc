#include "subquery/clusterer.h"

#include <algorithm>
#include <set>
#include <unordered_set>

#include "plan/canonical.h"
#include "util/thread_pool.h"

namespace autoview {

bool CanonicalPlansOverlap(const PlanNode& a, const PlanNode& b) {
  // In a plan tree, two matched view regions either nest or are disjoint,
  // so two subqueries conflict exactly when one's plan occurs as a
  // subtree of the other's (s3 contains s1/s2 in Fig. 2).
  const std::string key_a = CanonicalKey(a);
  const std::string key_b = CanonicalKey(b);
  for (const auto& node : a.Subtrees()) {
    if (CanonicalKey(*node) == key_b) return true;
  }
  for (const auto& node : b.Subtrees()) {
    if (CanonicalKey(*node) == key_a) return true;
  }
  return false;
}

WorkloadAnalysis SubqueryClusterer::Analyze(
    const std::vector<PlanNodePtr>& queries) const {
  WorkloadAnalysis analysis;
  analysis.num_queries = queries.size();
  ThreadPool& pool = options_.pool ? *options_.pool : DefaultPool();

  // Parallel phase: per-query extraction + canonical-key computation
  // (the expensive part — keys render whole subtrees). Each task owns
  // its query's output slot.
  SubqueryExtractor extractor(options_.extractor);
  struct KeyedSubquery {
    PlanNodePtr plan;
    std::string key;
  };
  std::vector<std::vector<KeyedSubquery>> per_query(queries.size());
  pool.ParallelFor(0, queries.size(), [&](size_t qi) {
    for (auto& sub : extractor.Extract(queries[qi])) {
      std::string key = CanonicalKey(*sub);
      per_query[qi].push_back({std::move(sub), std::move(key)});
    }
  });

  // Sequential merge in query order, so cluster ids are identical to a
  // single-threaded pass.
  std::map<std::string, size_t> key_to_cluster;
  for (size_t qi = 0; qi < per_query.size(); ++qi) {
    for (const auto& sub : per_query[qi]) {
      ++analysis.num_subqueries;
      auto [it, inserted] =
          key_to_cluster.emplace(sub.key, analysis.clusters.size());
      if (inserted) {
        SubqueryCluster cluster;
        cluster.canonical_key = sub.key;
        analysis.clusters.push_back(std::move(cluster));
      }
      analysis.clusters[it->second].occurrences.push_back({qi, sub.plan});
    }
  }

  for (auto& cluster : analysis.clusters) {
    analysis.num_equivalent_pairs += cluster.num_equivalent_pairs();
    // Distinct queries containing this cluster.
    std::set<size_t> qset;
    for (const auto& occ : cluster.occurrences) qset.insert(occ.query_index);
    cluster.query_indices.assign(qset.begin(), qset.end());
    // Candidate member: least overhead (cost oracle) or smallest plan.
    const SubqueryOccurrence* best = &cluster.occurrences.front();
    double best_cost = cost_fn_ ? cost_fn_(*best->plan)
                                : static_cast<double>(best->plan->NumOperators());
    for (const auto& occ : cluster.occurrences) {
      const double cost = cost_fn_
                              ? cost_fn_(*occ.plan)
                              : static_cast<double>(occ.plan->NumOperators());
      if (cost < best_cost) {
        best_cost = cost;
        best = &occ;
      }
    }
    cluster.candidate = best->plan;
  }

  // Candidate clusters: shared by >= min_sharing distinct queries.
  for (size_t ci = 0; ci < analysis.clusters.size(); ++ci) {
    if (analysis.clusters[ci].query_indices.size() >= options_.min_sharing) {
      analysis.candidates.push_back(ci);
    }
  }

  // Associated queries: any query containing a candidate cluster.
  std::set<size_t> associated;
  for (size_t cand : analysis.candidates) {
    for (size_t qi : analysis.clusters[cand].query_indices) {
      associated.insert(qi);
    }
  }
  analysis.associated_queries.assign(associated.begin(), associated.end());

  // Pairwise overlap between candidates (Definition 5), parallel over
  // rows: task j scans k > j in order and owns overlapping[j], so the
  // table is independent of scheduling.
  const size_t z = analysis.candidates.size();
  analysis.overlapping.assign(z, {});
  pool.ParallelFor(0, z, [&](size_t j) {
    const auto& pj = analysis.clusters[analysis.candidates[j]].candidate;
    for (size_t k = j + 1; k < z; ++k) {
      const auto& pk = analysis.clusters[analysis.candidates[k]].candidate;
      if (CanonicalPlansOverlap(*pj, *pk)) {
        analysis.overlapping[j].push_back(k);
      }
    }
  });
  return analysis;
}

}  // namespace autoview
