#include "subquery/clusterer.h"

#include <algorithm>
#include <limits>
#include <set>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "plan/canonical.h"
#include "util/thread_pool.h"

namespace autoview {

bool CanonicalPlansOverlap(const PlanNode& a, const PlanNode& b) {
  // In a plan tree, two matched view regions either nest or are disjoint,
  // so two subqueries conflict exactly when one's plan occurs as a
  // subtree of the other's (s3 contains s1/s2 in Fig. 2).
  const std::string key_a = CanonicalKey(a);
  const std::string key_b = CanonicalKey(b);
  for (const auto& node : a.Subtrees()) {
    if (CanonicalKey(*node) == key_b) return true;
  }
  for (const auto& node : b.Subtrees()) {
    if (CanonicalKey(*node) == key_a) return true;
  }
  return false;
}

namespace {

struct KeyedSubquery {
  PlanNodePtr plan;
  std::string key;
};

/// Exhaustive pairwise scan (the oracle): task j owns overlapping[j],
/// scanning k > j in order, so the table is independent of scheduling.
std::vector<std::vector<size_t>> ComputeOverlapsAllPairs(
    const std::vector<PlanNodePtr>& plans, ThreadPool& pool) {
  const size_t z = plans.size();
  std::vector<std::vector<size_t>> overlapping(z);
  pool.ParallelFor(0, z, [&](size_t j) {
    for (size_t k = j + 1; k < z; ++k) {
      if (CanonicalPlansOverlap(*plans[j], *plans[k])) {
        overlapping[j].push_back(k);
      }
    }
  });
  return overlapping;
}

/// Signature pre-partition: a pair can overlap only if one plan's root
/// hash appears among the other's subtree hashes (equal canonical keys
/// always hash equal, so this never drops a true pair). Each row task
/// gathers its hash-level candidates from two bucket maps — root-hash ->
/// plans and subtree-hash -> plans — then confirms every hit with the
/// exact string comparison, making the result bit-identical to the
/// all-pairs scan. Peak memory is the signature index, O(total subtree
/// count), and per-pair key rendering happens only on hash hits instead
/// of all |Z|²/2 pairs.
std::vector<std::vector<size_t>> ComputeOverlapsBucketed(
    const std::vector<PlanNodePtr>& plans, ThreadPool& pool) {
  const size_t z = plans.size();
  std::vector<uint64_t> root_hash(z);
  std::vector<std::vector<uint64_t>> subtree_hashes(z);
  pool.ParallelFor(0, z, [&](size_t j) {
    root_hash[j] = CanonicalHash(*plans[j]);
    auto& hashes = subtree_hashes[j];
    for (const auto& node : plans[j]->Subtrees()) {
      hashes.push_back(CanonicalHash(*node));
    }
    std::sort(hashes.begin(), hashes.end());
    hashes.erase(std::unique(hashes.begin(), hashes.end()), hashes.end());
  });

  // Bucket maps (sequential build => ascending plan ids per bucket).
  std::unordered_map<uint64_t, std::vector<size_t>> by_root;
  std::unordered_map<uint64_t, std::vector<size_t>> by_subtree;
  for (size_t j = 0; j < z; ++j) by_root[root_hash[j]].push_back(j);
  for (size_t j = 0; j < z; ++j) {
    for (uint64_t h : subtree_hashes[j]) by_subtree[h].push_back(j);
  }

  std::vector<std::vector<size_t>> overlapping(z);
  pool.ParallelFor(0, z, [&](size_t j) {
    std::vector<size_t> maybe;
    // k's root occurs among j's subtrees...
    for (uint64_t h : subtree_hashes[j]) {
      auto it = by_root.find(h);
      if (it == by_root.end()) continue;
      for (size_t k : it->second) {
        if (k > j) maybe.push_back(k);
      }
    }
    // ...or j's root occurs among k's subtrees.
    auto it = by_subtree.find(root_hash[j]);
    if (it != by_subtree.end()) {
      for (size_t k : it->second) {
        if (k > j) maybe.push_back(k);
      }
    }
    std::sort(maybe.begin(), maybe.end());
    maybe.erase(std::unique(maybe.begin(), maybe.end()), maybe.end());
    for (size_t k : maybe) {
      if (CanonicalPlansOverlap(*plans[j], *plans[k])) {
        overlapping[j].push_back(k);
      }
    }
  });
  return overlapping;
}

std::vector<std::vector<size_t>> ComputeOverlaps(
    const std::vector<PlanNodePtr>& plans,
    SubqueryClusterer::OverlapAlgorithm algorithm, ThreadPool& pool) {
  return algorithm == SubqueryClusterer::OverlapAlgorithm::kAllPairs
             ? ComputeOverlapsAllPairs(plans, pool)
             : ComputeOverlapsBucketed(plans, pool);
}

}  // namespace

namespace internal {

void FinishAnalysis(const SubqueryClusterer::Options& options,
                    ThreadPool& pool, WorkloadAnalysis* analysis) {
  for (size_t ci = 0; ci < analysis->clusters.size(); ++ci) {
    if (analysis->clusters[ci].query_indices.size() >= options.min_sharing) {
      analysis->candidates.push_back(ci);
    }
  }

  std::set<size_t> associated;
  for (size_t cand : analysis->candidates) {
    for (size_t qi : analysis->clusters[cand].query_indices) {
      associated.insert(qi);
    }
  }
  analysis->associated_queries.assign(associated.begin(), associated.end());

  std::vector<PlanNodePtr> candidate_plans;
  candidate_plans.reserve(analysis->candidates.size());
  for (size_t cand : analysis->candidates) {
    candidate_plans.push_back(analysis->clusters[cand].candidate);
  }
  analysis->overlapping =
      ComputeOverlaps(candidate_plans, options.overlap, pool);
}

}  // namespace internal

using internal::FinishAnalysis;

WorkloadAnalysis SubqueryClusterer::Analyze(
    const std::vector<PlanNodePtr>& queries) const {
  WorkloadAnalysis analysis;
  analysis.num_queries = queries.size();
  ThreadPool& pool = options_.pool ? *options_.pool : DefaultPool();

  // Extraction + canonical-key computation (the expensive part — keys
  // render whole subtrees) runs parallel within chunks of at most
  // extract_chunk queries; each task owns its query's output slot and
  // chunks merge in query order, so the clustering is identical to a
  // sequential pass while transient memory stays O(chunk).
  SubqueryExtractor extractor(options_.extractor);
  const size_t chunk = std::max<size_t>(1, options_.extract_chunk);
  std::map<std::string, size_t> key_to_cluster;
  std::vector<std::vector<KeyedSubquery>> buffer;
  for (size_t base = 0; base < queries.size(); base += chunk) {
    const size_t end = std::min(queries.size(), base + chunk);
    buffer.assign(end - base, {});
    pool.ParallelFor(base, end, [&](size_t qi) {
      for (auto& sub : extractor.Extract(queries[qi])) {
        std::string key = CanonicalKey(*sub);
        buffer[qi - base].push_back({std::move(sub), std::move(key)});
      }
    });

    for (size_t qi = base; qi < end; ++qi) {
      for (const auto& sub : buffer[qi - base]) {
        ++analysis.num_subqueries;
        auto [it, inserted] =
            key_to_cluster.emplace(sub.key, analysis.clusters.size());
        if (inserted) {
          SubqueryCluster cluster;
          cluster.canonical_key = sub.key;
          analysis.clusters.push_back(std::move(cluster));
        }
        analysis.clusters[it->second].occurrences.push_back({qi, sub.plan});
      }
    }
  }

  for (auto& cluster : analysis.clusters) {
    cluster.occurrence_count = cluster.occurrences.size();
    analysis.num_equivalent_pairs += cluster.num_equivalent_pairs();
    // Distinct queries containing this cluster.
    std::set<size_t> qset;
    for (const auto& occ : cluster.occurrences) qset.insert(occ.query_index);
    cluster.query_indices.assign(qset.begin(), qset.end());
    // Candidate member: least overhead (cost oracle) or smallest plan.
    const SubqueryOccurrence* best = &cluster.occurrences.front();
    double best_cost = cost_fn_ ? cost_fn_(*best->plan)
                                : static_cast<double>(best->plan->NumOperators());
    for (const auto& occ : cluster.occurrences) {
      const double cost = cost_fn_
                              ? cost_fn_(*occ.plan)
                              : static_cast<double>(occ.plan->NumOperators());
      if (cost < best_cost) {
        best_cost = cost;
        best = &occ;
      }
    }
    cluster.candidate = best->plan;
  }

  FinishAnalysis(options_, pool, &analysis);
  return analysis;
}

WorkloadAnalysis SubqueryClusterer::AnalyzeStreaming(
    size_t num_queries, const QueryFn& query_fn) const {
  WorkloadAnalysis analysis;
  analysis.num_queries = num_queries;
  ThreadPool& pool = options_.pool ? *options_.pool : DefaultPool();
  SubqueryExtractor extractor(options_.extractor);
  const size_t chunk = std::max<size_t>(1, options_.extract_chunk);

  // Pass 1: per-cluster aggregates only; plans live for one chunk.
  // Clusters are numbered in first-appearance order over the same
  // query-ordered merge Analyze() uses, and the argmin runs over the
  // same occurrence sequence with the same strict-< tie-break, so for a
  // pure cost oracle the chosen member is identical.
  struct ClusterBuild {
    size_t count = 0;
    std::vector<size_t> query_indices;  // ascending by construction
    double best_cost = std::numeric_limits<double>::infinity();
    size_t best_query = 0;
    size_t best_ordinal = 0;  // position in that query's extraction
  };
  std::map<std::string, size_t> key_to_cluster;
  std::vector<ClusterBuild> builds;

  std::vector<std::vector<KeyedSubquery>> buffer;
  for (size_t base = 0; base < num_queries; base += chunk) {
    const size_t end = std::min(num_queries, base + chunk);
    buffer.assign(end - base, {});
    pool.ParallelFor(base, end, [&](size_t qi) {
      PlanNodePtr plan = query_fn(qi);
      if (plan == nullptr) return;
      for (auto& sub : extractor.Extract(plan)) {
        std::string key = CanonicalKey(*sub);
        buffer[qi - base].push_back({std::move(sub), std::move(key)});
      }
    });

    for (size_t qi = base; qi < end; ++qi) {
      const auto& subs = buffer[qi - base];
      for (size_t ordinal = 0; ordinal < subs.size(); ++ordinal) {
        const KeyedSubquery& sub = subs[ordinal];
        ++analysis.num_subqueries;
        auto [it, inserted] = key_to_cluster.emplace(sub.key, builds.size());
        if (inserted) {
          builds.emplace_back();
          SubqueryCluster cluster;
          cluster.canonical_key = sub.key;
          analysis.clusters.push_back(std::move(cluster));
        }
        ClusterBuild& build = builds[it->second];
        ++build.count;
        if (build.query_indices.empty() || build.query_indices.back() != qi) {
          build.query_indices.push_back(qi);
        }
        const double cost =
            cost_fn_ ? cost_fn_(*sub.plan)
                     : static_cast<double>(sub.plan->NumOperators());
        if (cost < build.best_cost) {
          build.best_cost = cost;
          build.best_query = qi;
          build.best_ordinal = ordinal;
        }
      }
    }
  }

  for (size_t ci = 0; ci < builds.size(); ++ci) {
    SubqueryCluster& cluster = analysis.clusters[ci];
    cluster.occurrence_count = builds[ci].count;
    cluster.query_indices = std::move(builds[ci].query_indices);
    analysis.num_equivalent_pairs += cluster.num_equivalent_pairs();
  }

  // Pass 2: re-extract only the argmin queries to materialize candidate
  // plans. Each task owns the clusters anchored at its query, so writes
  // are disjoint.
  std::unordered_map<size_t, std::vector<size_t>> clusters_of_query;
  for (size_t ci = 0; ci < builds.size(); ++ci) {
    if (builds[ci].count > 0) {
      clusters_of_query[builds[ci].best_query].push_back(ci);
    }
  }
  std::vector<size_t> anchor_queries;
  anchor_queries.reserve(clusters_of_query.size());
  for (const auto& [qi, unused] : clusters_of_query) {
    anchor_queries.push_back(qi);
  }
  std::sort(anchor_queries.begin(), anchor_queries.end());
  pool.ParallelFor(0, anchor_queries.size(), [&](size_t t) {
    const size_t qi = anchor_queries[t];
    PlanNodePtr plan = query_fn(qi);
    if (plan == nullptr) return;
    std::vector<PlanNodePtr> subs = extractor.Extract(plan);
    for (size_t ci : clusters_of_query.find(qi)->second) {
      if (builds[ci].best_ordinal < subs.size()) {
        analysis.clusters[ci].candidate = subs[builds[ci].best_ordinal];
      }
    }
  });

  FinishAnalysis(options_, pool, &analysis);
  return analysis;
}

// ---------------------------------------------------------------------
// ClustererSession

ClustererSession::ClustererSession(SubqueryClusterer::Options options,
                                   SubqueryClusterer::CostFn cost_fn)
    : options_(options), cost_fn_(std::move(cost_fn)) {}

bool ClustererSession::RecomputeCandidate(ClusterState* cluster) {
  // Members iterate in (query id, ordinal) order — the order the batch
  // pass visits occurrences — and only a strictly lower cost displaces
  // the incumbent, so the chosen member matches Analyze() bit for bit.
  const PlanNode* before = cluster->candidate.get();
  PlanNodePtr best;
  double best_cost = std::numeric_limits<double>::infinity();
  for (const auto& [key, member] : cluster->members) {
    if (member.cost < best_cost) {
      best_cost = member.cost;
      best = member.plan;
    }
  }
  cluster->candidate = best;
  return cluster->candidate.get() != before;
}

Status ClustererSession::IngestQuery(uint64_t query_id,
                                     const PlanNodePtr& plan,
                                     MutationEffects* effects) {
  if (plan == nullptr) return Status::InvalidArgument("null query plan");
  if (queries_.count(query_id) != 0) {
    return Status::AlreadyExists("query id already live");
  }
  SubqueryExtractor extractor(options_.extractor);
  std::vector<PlanNodePtr> subs = extractor.Extract(plan);

  std::vector<std::string>& keys = queries_[query_id];
  keys.reserve(subs.size());
  std::map<std::string, bool> was_candidate;  // touched clusters, key asc
  for (size_t ordinal = 0; ordinal < subs.size(); ++ordinal) {
    std::string key = CanonicalKey(*subs[ordinal]);
    auto [it, inserted] = clusters_.emplace(key, ClusterState{});
    if (inserted) was_candidate.emplace(key, false);
    else was_candidate.emplace(key, IsCandidate(it->second));
    ClusterState& cluster = it->second;
    Member member;
    member.cost = cost_fn_
                      ? cost_fn_(*subs[ordinal])
                      : static_cast<double>(subs[ordinal]->NumOperators());
    member.plan = subs[ordinal];
    cluster.members.emplace(std::make_pair(query_id, ordinal),
                            std::move(member));
    ++cluster.per_query[query_id];
    keys.push_back(std::move(key));
  }

  for (const auto& [key, was] : was_candidate) {
    ClusterState& cluster = clusters_.at(key);
    const bool replanned = RecomputeCandidate(&cluster);
    const bool is = IsCandidate(cluster);
    if (!was && is) {
      ++churn_events_;
      if (effects) effects->candidates_added.push_back(key);
    } else if (was && is && replanned) {
      ++churn_events_;
      if (effects) effects->candidates_replanned.push_back(key);
    }
    // was && !is cannot happen on ingest (sharing only grows).
  }
  return Status::OK();
}

Status ClustererSession::RetireQuery(uint64_t query_id,
                                     MutationEffects* effects) {
  auto qit = queries_.find(query_id);
  if (qit == queries_.end()) return Status::NotFound("query id not live");

  std::map<std::string, bool> was_candidate;
  const std::vector<std::string>& keys = qit->second;
  for (size_t ordinal = 0; ordinal < keys.size(); ++ordinal) {
    auto it = clusters_.find(keys[ordinal]);
    if (it == clusters_.end()) continue;  // defensive; ingest recorded it
    ClusterState& cluster = it->second;
    was_candidate.emplace(keys[ordinal], IsCandidate(cluster));
    cluster.members.erase(std::make_pair(query_id, ordinal));
    if (auto pq = cluster.per_query.find(query_id);
        pq != cluster.per_query.end() && --pq->second == 0) {
      cluster.per_query.erase(pq);
    }
  }

  for (const auto& [key, was] : was_candidate) {
    auto it = clusters_.find(key);
    ClusterState& cluster = it->second;
    if (cluster.members.empty()) {
      clusters_.erase(it);
      if (was) {
        ++churn_events_;
        if (effects) effects->candidates_removed.push_back(key);
      }
      continue;
    }
    const bool replanned = RecomputeCandidate(&cluster);
    const bool is = IsCandidate(cluster);
    if (was && !is) {
      ++churn_events_;
      if (effects) effects->candidates_removed.push_back(key);
    } else if (was && is && replanned) {
      ++churn_events_;
      if (effects) effects->candidates_replanned.push_back(key);
    }
    // !was && is cannot happen on retire (sharing only shrinks).
  }
  queries_.erase(qit);
  return Status::OK();
}

std::vector<uint64_t> ClustererSession::LiveQueryIds() const {
  std::vector<uint64_t> ids;
  ids.reserve(queries_.size());
  for (const auto& [id, unused] : queries_) ids.push_back(id);
  return ids;
}

const std::vector<std::string>* ClustererSession::QueryKeys(
    uint64_t query_id) const {
  auto it = queries_.find(query_id);
  return it == queries_.end() ? nullptr : &it->second;
}

std::vector<std::string> ClustererSession::CandidateKeys() const {
  std::vector<std::string> keys;
  for (const auto& [key, cluster] : clusters_) {
    if (IsCandidate(cluster)) keys.push_back(key);
  }
  return keys;
}

std::optional<ClustererSession::CandidateInfo> ClustererSession::Candidate(
    const std::string& key) const {
  auto it = clusters_.find(key);
  if (it == clusters_.end() || !IsCandidate(it->second)) return std::nullopt;
  CandidateInfo info;
  info.key = key;
  info.plan = it->second.candidate;
  for (const auto& [id, unused] : it->second.per_query) {
    info.query_ids.push_back(id);
  }
  return info;
}

WorkloadAnalysis ClustererSession::Snapshot() const {
  WorkloadAnalysis analysis;
  analysis.num_queries = queries_.size();
  ThreadPool& pool = options_.pool ? *options_.pool : DefaultPool();

  // Batch query indices are positions in the ascending live-id list.
  std::map<uint64_t, size_t> position;
  for (const auto& [id, unused] : queries_) {
    position.emplace(id, position.size());
  }

  // Batch cluster order is first appearance over the query-ordered
  // merge: ascending (first member's query position, ordinal). The
  // member maps are keyed (query id, ordinal) with id order = position
  // order, so each cluster's first member IS its first appearance.
  std::vector<const std::map<std::string, ClusterState>::value_type*> ordered;
  ordered.reserve(clusters_.size());
  for (const auto& entry : clusters_) ordered.push_back(&entry);
  std::sort(ordered.begin(), ordered.end(),
            [](const auto* a, const auto* b) {
              return a->second.members.begin()->first <
                     b->second.members.begin()->first;
            });

  for (const auto* entry : ordered) {
    const ClusterState& state = entry->second;
    SubqueryCluster cluster;
    cluster.canonical_key = entry->first;
    cluster.occurrence_count = state.members.size();
    cluster.candidate = state.candidate;
    for (const auto& [id, unused] : state.per_query) {
      cluster.query_indices.push_back(position.at(id));
    }
    analysis.num_subqueries += cluster.occurrence_count;
    analysis.num_equivalent_pairs += cluster.num_equivalent_pairs();
    analysis.clusters.push_back(std::move(cluster));
  }

  FinishAnalysis(options_, pool, &analysis);
  return analysis;
}

}  // namespace autoview
