#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "plan/plan.h"
#include "subquery/extractor.h"
#include "util/status.h"

namespace autoview {

/// \brief One subquery occurrence inside a workload query.
struct SubqueryOccurrence {
  size_t query_index = 0;  ///< index into the analyzed workload
  PlanNodePtr plan;        ///< the subplan
};

/// \brief A cluster of semantically equivalent subqueries (§III).
struct SubqueryCluster {
  std::string canonical_key;
  /// All members with their plans. Populated by Analyze(); the streaming
  /// path leaves it empty (it never retains per-occurrence plans) and
  /// records the count in `occurrence_count` instead.
  std::vector<SubqueryOccurrence> occurrences;
  /// Member count; authoritative when `occurrences` is empty.
  size_t occurrence_count = 0;
  /// The cluster member chosen as the candidate subquery (the one with
  /// the least overhead), per the paper's pre-process step.
  PlanNodePtr candidate;
  /// Distinct queries containing a member of this cluster, ascending.
  std::vector<size_t> query_indices;

  size_t num_occurrences() const {
    return occurrences.empty() ? occurrence_count : occurrences.size();
  }
  /// Equivalent pairs contributed by this cluster: C(n, 2).
  size_t num_equivalent_pairs() const {
    const size_t n = num_occurrences();
    return n * (n - 1) / 2;
  }
};

/// \brief Result of the full pre-process pipeline over a workload.
struct WorkloadAnalysis {
  size_t num_queries = 0;
  size_t num_subqueries = 0;        ///< total extracted occurrences
  size_t num_equivalent_pairs = 0;  ///< Table I: #equivalent pairs
  std::vector<SubqueryCluster> clusters;  ///< all equivalence clusters

  /// Indices (into `clusters`) of the candidate clusters — those shared
  /// by at least `min_sharing` distinct queries. |Z| of Table I.
  std::vector<size_t> candidates;

  /// Query indices that can use at least one candidate view. |Q|.
  std::vector<size_t> associated_queries;

  /// Candidate-pair overlap flags: overlap_pairs[j] lists k > j with
  /// overlapping candidate subqueries (Definition 5). The x_{jk} of §V.
  std::vector<std::vector<size_t>> overlapping;

  size_t num_overlapping_pairs() const {
    size_t n = 0;
    for (const auto& row : overlapping) n += row.size();
    return n;
  }
};

/// \brief Clusters equivalent subqueries and derives the candidate set.
///
/// Equivalence detection substitutes EQUITAS [45] with canonical-form
/// comparison (see plan/canonical.h).
///
/// The two expensive phases — per-query subquery extraction with
/// canonical-key computation, and candidate-overlap detection — run
/// across Options::pool. Both are deterministic under any thread count:
/// extraction results are merged on the calling thread in query order
/// (so cluster ids match a sequential run), and each overlap task owns
/// exactly one row of the overlap table.
///
/// Memory bounds (DESIGN.md §10): extraction is chunked so at most
/// `extract_chunk` queries' plans are in flight; overlap detection uses
/// a canonical-hash signature pre-partition (kBucketed) whose working
/// set is the signature index, O(total subtree count), instead of
/// rendering canonical-key strings for all |Z|²/2 pairs. The exhaustive
/// pairwise scan survives as the kAllPairs oracle; both algorithms
/// produce bit-identical overlap tables (hash hits are verified with
/// the exact string comparison, and equal keys always hash equal, so
/// the prefilter has no false negatives).
class SubqueryClusterer {
 public:
  /// Candidate-overlap detection algorithm.
  enum class OverlapAlgorithm {
    /// Canonical-hash signature buckets + exact verification (default).
    kBucketed,
    /// The historical exhaustive pairwise scan (oracle for tests).
    kAllPairs,
  };

  struct Options {
    ExtractorOptions extractor;
    /// A cluster becomes a candidate when members appear in at least
    /// this many distinct queries (sharing is what creates benefit).
    size_t min_sharing = 2;
    /// Executor for the parallel phases; null => DefaultPool().
    ThreadPool* pool = nullptr;
    /// Overlap detection algorithm; results are identical either way.
    OverlapAlgorithm overlap = OverlapAlgorithm::kBucketed;
    /// Queries whose extracted plans may be in flight at once during
    /// the extraction phase (peak transient memory is O(extract_chunk),
    /// not O(|Q|)).
    size_t extract_chunk = 1024;
  };

  /// Optional cost oracle used to pick each cluster's least-overhead
  /// member as the candidate; when absent the smallest plan wins.
  using CostFn = std::function<double(const PlanNode&)>;

  /// Re-invocable plan source for the streaming path: returns query
  /// `qi`'s plan (nullptr to skip). May be called more than once per
  /// query and concurrently for distinct indices.
  using QueryFn = std::function<PlanNodePtr(size_t)>;

  SubqueryClusterer() : options_() {}
  explicit SubqueryClusterer(Options options, CostFn cost_fn = nullptr)
      : options_(options), cost_fn_(std::move(cost_fn)) {}

  /// Runs extraction + equivalence clustering + overlap detection.
  WorkloadAnalysis Analyze(const std::vector<PlanNodePtr>& queries) const;

  /// Memory-bounded two-pass variant for paper-scale workloads: pass 1
  /// streams queries in chunks, keeping only per-cluster aggregates
  /// (key, count, query indices, running argmin cost) while plans stay
  /// transient; pass 2 re-invokes `query_fn` for just the argmin
  /// queries to materialize each cluster's candidate plan. Peak memory
  /// is O(extract_chunk + clusters), never O(all occurrence plans).
  ///
  /// Produces the same clusters (order, keys, counts, query indices,
  /// candidates, overlap table) as Analyze() for a pure cost oracle —
  /// occurrences themselves are not retained (see SubqueryCluster).
  WorkloadAnalysis AnalyzeStreaming(size_t num_queries,
                                    const QueryFn& query_fn) const;

 private:
  Options options_;
  CostFn cost_fn_;
};

/// Overlap per Definition 5 evaluated on canonical subtree keys, so two
/// equivalent-but-structurally-different subplans still register their
/// common subtrees.
bool CanonicalPlansOverlap(const PlanNode& a, const PlanNode& b);

namespace internal {
/// Derives candidates / associated queries / overlap table from fully
/// built clusters — the shared tail of Analyze, AnalyzeStreaming, and
/// ClustererSession::Snapshot.
void FinishAnalysis(const SubqueryClusterer::Options& options,
                    ThreadPool& pool, WorkloadAnalysis* analysis);
}  // namespace internal

/// \brief Incremental clustering over a live (sliding-window) workload.
///
/// The batch clusterer answers "cluster these N queries"; the session
/// answers "query q arrived / retired" while keeping exactly the state
/// the batch pass would have: per-cluster members keyed by
/// (query id, extraction ordinal), occurrence counts per query, and the
/// least-cost candidate member under the same strict-< tie-break. The
/// batch result stays the bit-identity oracle: Snapshot() over the live
/// window compares field-for-field with Analyze() over the same plans
/// in ascending-id order (clusters re-emerge in first-appearance order,
/// query indices as positions in the sorted live-id list).
///
/// Members are retained (plan + cost per occurrence), so memory is
/// O(live occurrences) — sized for a sliding window, not the unbounded
/// history AnalyzeStreaming's two-pass aggregate path covers.
///
/// Not internally synchronized: the owner (OnlineAdvisor) serializes
/// access.
class ClustererSession {
 public:
  /// Candidate-set deltas of one Ingest/Retire, in deterministic order
  /// (ascending canonical key). A key appears in at most one vector.
  struct MutationEffects {
    std::vector<std::string> candidates_added;    ///< crossed min_sharing up
    std::vector<std::string> candidates_removed;  ///< crossed min_sharing down
    std::vector<std::string> candidates_replanned;  ///< argmin member changed

    bool empty() const {
      return candidates_added.empty() && candidates_removed.empty() &&
             candidates_replanned.empty();
    }
  };

  /// A current candidate cluster as the advisor consumes it.
  struct CandidateInfo {
    std::string key;
    PlanNodePtr plan;                 ///< least-cost member
    std::vector<uint64_t> query_ids;  ///< live queries containing it, asc
  };

  explicit ClustererSession(SubqueryClusterer::Options options,
                            SubqueryClusterer::CostFn cost_fn = nullptr);

  /// Adds query `query_id` (ids must be unique among live queries; the
  /// advisor uses arrival order, so ascending ids = arrival order).
  /// Extracts and clusters its subqueries; `effects` (optional)
  /// receives the candidate-set delta.
  Status IngestQuery(uint64_t query_id, const PlanNodePtr& plan,
                     MutationEffects* effects = nullptr);

  /// Removes a live query and every occurrence it contributed (no
  /// re-extraction: the session remembers the query's keys).
  Status RetireQuery(uint64_t query_id, MutationEffects* effects = nullptr);

  /// Live query ids, ascending.
  std::vector<uint64_t> LiveQueryIds() const;
  size_t num_live_queries() const { return queries_.size(); }

  /// Canonical keys of `query_id`'s extracted subqueries, in extraction
  /// order (duplicates preserved — one entry per occurrence); nullptr
  /// when the query is not live. The advisor uses this to find which
  /// existing candidate columns a freshly ingested row intersects.
  const std::vector<std::string>* QueryKeys(uint64_t query_id) const;

  /// Current candidate clusters (>= min_sharing distinct queries),
  /// ascending canonical key.
  std::vector<std::string> CandidateKeys() const;

  /// Lookup of one current candidate; nullopt when `key` is not a
  /// candidate (unknown, or below min_sharing).
  std::optional<CandidateInfo> Candidate(const std::string& key) const;

  /// Cumulative candidate-set churn (adds + removes + replans) since
  /// construction — the drift signal for the advisor's trigger policy.
  uint64_t churn_events() const { return churn_events_; }

  /// The WorkloadAnalysis of the live window, bit-comparable to
  /// Analyze() over LiveQueryIds()'s plans in that order (occurrences
  /// vectors excepted — like AnalyzeStreaming, the session reports
  /// counts). Runs overlap detection, so it is O(batch tail), not O(1).
  WorkloadAnalysis Snapshot() const;

 private:
  struct Member {
    double cost = 0.0;
    PlanNodePtr plan;
  };
  struct ClusterState {
    /// (query id, extraction ordinal) -> member; map order is the batch
    /// traversal order, so argmin recomputes reproduce the batch
    /// tie-break exactly.
    std::map<std::pair<uint64_t, size_t>, Member> members;
    /// Live occurrence count per query; size() = distinct queries.
    std::map<uint64_t, size_t> per_query;
    PlanNodePtr candidate;  ///< least-cost member (strict-< tie-break)
  };

  bool IsCandidate(const ClusterState& cluster) const {
    return cluster.per_query.size() >= options_.min_sharing;
  }

  /// Recomputes `cluster.candidate`; true when the plan changed.
  bool RecomputeCandidate(ClusterState* cluster);

  SubqueryClusterer::Options options_;
  SubqueryClusterer::CostFn cost_fn_;
  std::map<std::string, ClusterState> clusters_;
  /// query id -> its subquery keys in extraction order (retire replays
  /// these instead of re-extracting).
  std::map<uint64_t, std::vector<std::string>> queries_;
  uint64_t churn_events_ = 0;
};

}  // namespace autoview
