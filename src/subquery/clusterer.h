#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "plan/plan.h"
#include "subquery/extractor.h"

namespace autoview {

/// \brief One subquery occurrence inside a workload query.
struct SubqueryOccurrence {
  size_t query_index = 0;  ///< index into the analyzed workload
  PlanNodePtr plan;        ///< the subplan
};

/// \brief A cluster of semantically equivalent subqueries (§III).
struct SubqueryCluster {
  std::string canonical_key;
  /// All members with their plans. Populated by Analyze(); the streaming
  /// path leaves it empty (it never retains per-occurrence plans) and
  /// records the count in `occurrence_count` instead.
  std::vector<SubqueryOccurrence> occurrences;
  /// Member count; authoritative when `occurrences` is empty.
  size_t occurrence_count = 0;
  /// The cluster member chosen as the candidate subquery (the one with
  /// the least overhead), per the paper's pre-process step.
  PlanNodePtr candidate;
  /// Distinct queries containing a member of this cluster, ascending.
  std::vector<size_t> query_indices;

  size_t num_occurrences() const {
    return occurrences.empty() ? occurrence_count : occurrences.size();
  }
  /// Equivalent pairs contributed by this cluster: C(n, 2).
  size_t num_equivalent_pairs() const {
    const size_t n = num_occurrences();
    return n * (n - 1) / 2;
  }
};

/// \brief Result of the full pre-process pipeline over a workload.
struct WorkloadAnalysis {
  size_t num_queries = 0;
  size_t num_subqueries = 0;        ///< total extracted occurrences
  size_t num_equivalent_pairs = 0;  ///< Table I: #equivalent pairs
  std::vector<SubqueryCluster> clusters;  ///< all equivalence clusters

  /// Indices (into `clusters`) of the candidate clusters — those shared
  /// by at least `min_sharing` distinct queries. |Z| of Table I.
  std::vector<size_t> candidates;

  /// Query indices that can use at least one candidate view. |Q|.
  std::vector<size_t> associated_queries;

  /// Candidate-pair overlap flags: overlap_pairs[j] lists k > j with
  /// overlapping candidate subqueries (Definition 5). The x_{jk} of §V.
  std::vector<std::vector<size_t>> overlapping;

  size_t num_overlapping_pairs() const {
    size_t n = 0;
    for (const auto& row : overlapping) n += row.size();
    return n;
  }
};

/// \brief Clusters equivalent subqueries and derives the candidate set.
///
/// Equivalence detection substitutes EQUITAS [45] with canonical-form
/// comparison (see plan/canonical.h).
///
/// The two expensive phases — per-query subquery extraction with
/// canonical-key computation, and candidate-overlap detection — run
/// across Options::pool. Both are deterministic under any thread count:
/// extraction results are merged on the calling thread in query order
/// (so cluster ids match a sequential run), and each overlap task owns
/// exactly one row of the overlap table.
///
/// Memory bounds (DESIGN.md §10): extraction is chunked so at most
/// `extract_chunk` queries' plans are in flight; overlap detection uses
/// a canonical-hash signature pre-partition (kBucketed) whose working
/// set is the signature index, O(total subtree count), instead of
/// rendering canonical-key strings for all |Z|²/2 pairs. The exhaustive
/// pairwise scan survives as the kAllPairs oracle; both algorithms
/// produce bit-identical overlap tables (hash hits are verified with
/// the exact string comparison, and equal keys always hash equal, so
/// the prefilter has no false negatives).
class SubqueryClusterer {
 public:
  /// Candidate-overlap detection algorithm.
  enum class OverlapAlgorithm {
    /// Canonical-hash signature buckets + exact verification (default).
    kBucketed,
    /// The historical exhaustive pairwise scan (oracle for tests).
    kAllPairs,
  };

  struct Options {
    ExtractorOptions extractor;
    /// A cluster becomes a candidate when members appear in at least
    /// this many distinct queries (sharing is what creates benefit).
    size_t min_sharing = 2;
    /// Executor for the parallel phases; null => DefaultPool().
    ThreadPool* pool = nullptr;
    /// Overlap detection algorithm; results are identical either way.
    OverlapAlgorithm overlap = OverlapAlgorithm::kBucketed;
    /// Queries whose extracted plans may be in flight at once during
    /// the extraction phase (peak transient memory is O(extract_chunk),
    /// not O(|Q|)).
    size_t extract_chunk = 1024;
  };

  /// Optional cost oracle used to pick each cluster's least-overhead
  /// member as the candidate; when absent the smallest plan wins.
  using CostFn = std::function<double(const PlanNode&)>;

  /// Re-invocable plan source for the streaming path: returns query
  /// `qi`'s plan (nullptr to skip). May be called more than once per
  /// query and concurrently for distinct indices.
  using QueryFn = std::function<PlanNodePtr(size_t)>;

  SubqueryClusterer() : options_() {}
  explicit SubqueryClusterer(Options options, CostFn cost_fn = nullptr)
      : options_(options), cost_fn_(std::move(cost_fn)) {}

  /// Runs extraction + equivalence clustering + overlap detection.
  WorkloadAnalysis Analyze(const std::vector<PlanNodePtr>& queries) const;

  /// Memory-bounded two-pass variant for paper-scale workloads: pass 1
  /// streams queries in chunks, keeping only per-cluster aggregates
  /// (key, count, query indices, running argmin cost) while plans stay
  /// transient; pass 2 re-invokes `query_fn` for just the argmin
  /// queries to materialize each cluster's candidate plan. Peak memory
  /// is O(extract_chunk + clusters), never O(all occurrence plans).
  ///
  /// Produces the same clusters (order, keys, counts, query indices,
  /// candidates, overlap table) as Analyze() for a pure cost oracle —
  /// occurrences themselves are not retained (see SubqueryCluster).
  WorkloadAnalysis AnalyzeStreaming(size_t num_queries,
                                    const QueryFn& query_fn) const;

 private:
  Options options_;
  CostFn cost_fn_;
};

/// Overlap per Definition 5 evaluated on canonical subtree keys, so two
/// equivalent-but-structurally-different subplans still register their
/// common subtrees.
bool CanonicalPlansOverlap(const PlanNode& a, const PlanNode& b);

}  // namespace autoview
