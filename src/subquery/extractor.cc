#include "subquery/extractor.h"

#include "util/thread_pool.h"

namespace autoview {

std::vector<PlanNodePtr> SubqueryExtractor::Extract(
    const PlanNodePtr& query) const {
  std::vector<PlanNodePtr> out;
  const std::vector<PlanNodePtr> subtrees = query->Subtrees();
  for (size_t i = 0; i < subtrees.size(); ++i) {
    if (i == 0 && !options_.include_root) continue;
    const PlanNodePtr& node = subtrees[i];
    const PlanOp op = node->op();
    if (op != PlanOp::kAggregate && op != PlanOp::kJoin &&
        op != PlanOp::kProject) {
      continue;
    }
    if (node->NumOperators() < options_.min_operators) continue;
    out.push_back(node);
  }
  return out;
}

std::vector<std::vector<PlanNodePtr>> SubqueryExtractor::ExtractAll(
    const std::vector<PlanNodePtr>& queries, ThreadPool* pool) const {
  std::vector<std::vector<PlanNodePtr>> out(queries.size());
  ThreadPool& executor = pool ? *pool : DefaultPool();
  executor.ParallelFor(0, queries.size(),
                       [&](size_t qi) { out[qi] = Extract(queries[qi]); });
  return out;
}

}  // namespace autoview
