#include "subquery/extractor.h"

namespace autoview {

std::vector<PlanNodePtr> SubqueryExtractor::Extract(
    const PlanNodePtr& query) const {
  std::vector<PlanNodePtr> out;
  const std::vector<PlanNodePtr> subtrees = query->Subtrees();
  for (size_t i = 0; i < subtrees.size(); ++i) {
    if (i == 0 && !options_.include_root) continue;
    const PlanNodePtr& node = subtrees[i];
    const PlanOp op = node->op();
    if (op != PlanOp::kAggregate && op != PlanOp::kJoin &&
        op != PlanOp::kProject) {
      continue;
    }
    if (node->NumOperators() < options_.min_operators) continue;
    out.push_back(node);
  }
  return out;
}

}  // namespace autoview
