#pragma once

#include <vector>

#include "plan/plan.h"

namespace autoview {

class ThreadPool;

/// \brief Options for subquery extraction.
struct ExtractorOptions {
  /// Count the query's own root as a subquery (off in the paper's Fig. 2:
  /// s1, s2, s3 are proper subplans).
  bool include_root = false;
  /// Minimum number of operators for a subplan to count (1 keeps bare
  /// Project-over-Scan subqueries; raise to skip trivial ones).
  size_t min_operators = 2;
};

/// \brief Extracts candidate subqueries from query plans.
///
/// Following §III (pre-process), a subquery is any subplan rooted at an
/// Aggregate, Join or Project operator.
class SubqueryExtractor {
 public:
  explicit SubqueryExtractor(ExtractorOptions options = ExtractorOptions())
      : options_(options) {}

  /// All subqueries of `query`, in pre-order.
  std::vector<PlanNodePtr> Extract(const PlanNodePtr& query) const;

  /// Extract() over every query, parallelized across `pool`
  /// (DefaultPool() when null). out[i] == Extract(queries[i]); queries
  /// are independent plan trees, so per-query extraction runs
  /// concurrently while the result keeps the sequential layout.
  std::vector<std::vector<PlanNodePtr>> ExtractAll(
      const std::vector<PlanNodePtr>& queries,
      ThreadPool* pool = nullptr) const;

  const ExtractorOptions& options() const { return options_; }

 private:
  ExtractorOptions options_;
};

}  // namespace autoview
