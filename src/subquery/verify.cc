#include "subquery/verify.h"

#include <algorithm>

namespace autoview {

Result<bool> VerifyEquivalenceByExecution(const Database& db,
                                          const PlanNode& a,
                                          const PlanNode& b) {
  Executor exec(&db);
  AV_ASSIGN_OR_RETURN(ExecResult ra, exec.Execute(a));
  AV_ASSIGN_OR_RETURN(ExecResult rb, exec.Execute(b));
  const Table& ta = ra.table;
  Table& tb = rb.table;
  if (ta.num_columns() != tb.num_columns()) {
    return Status::InvalidArgument("plans have different output widths");
  }

  // Align b's columns to a's by name.
  std::vector<size_t> mapping(ta.num_columns());
  for (size_t i = 0; i < ta.num_columns(); ++i) {
    bool found = false;
    for (size_t j = 0; j < tb.num_columns(); ++j) {
      if (tb.columns[j].name == ta.columns[i].name) {
        mapping[i] = j;
        found = true;
        break;
      }
    }
    if (!found) {
      return Status::InvalidArgument("column name sets differ: " +
                                     ta.columns[i].name);
    }
  }

  Table aligned;
  aligned.columns = ta.columns;
  aligned.rows.reserve(tb.rows.size());
  for (const auto& row : tb.rows) {
    Row reordered;
    reordered.reserve(mapping.size());
    for (size_t j : mapping) reordered.push_back(row[j]);
    aligned.rows.push_back(std::move(reordered));
  }
  return TablesEqualUnordered(ta, aligned);
}

}  // namespace autoview
