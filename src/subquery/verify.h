#pragma once

#include "engine/database.h"
#include "engine/executor.h"
#include "plan/plan.h"
#include "util/status.h"

namespace autoview {

/// \brief Execution-based equivalence verification.
///
/// The canonical-form detector (plan/canonical.h) substitutes EQUITAS
/// syntactically; this helper gives a semantic safety net: it executes
/// both plans against the live database and compares result bags with
/// columns matched BY NAME (canonically-equivalent plans may order
/// their output columns differently).
///
/// Returns true when the two plans produce the same named-column bag,
/// false when they differ, or an error when they cannot be compared
/// (mismatched column-name sets) or fail to execute. A `true` result is
/// evidence of equivalence on this data, not a proof; a `false` result
/// is a definite counterexample.
Result<bool> VerifyEquivalenceByExecution(const Database& db,
                                          const PlanNode& a,
                                          const PlanNode& b);

}  // namespace autoview
