#include "tools/avcheck.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace autoview {
namespace tools {

Result<std::vector<SourceFile>> LoadSourceTree(const std::string& root) {
  namespace fs = std::filesystem;
  const fs::path src = fs::path(root) / "src";
  std::error_code ec;
  if (!fs::is_directory(src, ec)) {
    return Status::NotFound("no src/ directory under " + root);
  }
  std::vector<SourceFile> out;
  for (fs::recursive_directory_iterator it(src, ec), end; it != end;
       it.increment(ec)) {
    if (ec) return Status::Internal("walking " + src.string() + ": " +
                                    ec.message());
    if (!it->is_regular_file()) continue;
    const fs::path& p = it->path();
    const std::string ext = p.extension().string();
    if (ext != ".h" && ext != ".cc") continue;
    std::ifstream in(p, std::ios::binary);
    if (!in) return Status::Internal("cannot open " + p.string());
    std::ostringstream buffer;
    buffer << in.rdbuf();
    SourceFile file;
    file.path = fs::relative(p, fs::path(root), ec).generic_string();
    if (ec || file.path.empty()) file.path = p.generic_string();
    file.content = buffer.str();
    out.push_back(std::move(file));
  }
  std::sort(out.begin(), out.end(),
            [](const SourceFile& a, const SourceFile& b) {
              return a.path < b.path;
            });
  return out;
}

}  // namespace tools
}  // namespace autoview
