#pragma once

#include <string>
#include <vector>

#include "util/status.h"

/// \file
/// Public surface of tools/avcheck, the project-native static analyzer.
/// It lexes and scope-parses every policed source file (no compiler
/// front end, no clang dependency) and runs two families of checks:
///
/// Semantic checks (lexer + scope tree + cross-file harvest):
///   lock-order            global acquired-before graph over nested
///                         MutexLock acquisitions and AV_EXCLUDES
///                         edges; fails on any cycle with a witness
///   blocking-under-lock   WaitIdle / ParallelFor / CondVar waits /
///                         file I/O / Materialize while a Mutex is held
///   discarded-status      expression-statement call to a function
///                         whose harvested declaration returns Status
///   atomic-ordering       every explicit memory_order_* argument must
///                         trace to an atomic declaration carrying an
///                         ordering-rationale comment (PR 3 convention)
///
/// Ported grep rules (same names and path scoping as the historical
/// shell checks, now running on the real lexer): no-naked-abort,
/// no-ambient-randomness, no-cout, no-raw-mutex, no-naked-new,
/// mutex-annotated, engine-io-confined, advisor-clock-seam,
/// loadgen-seed-flow.
///
/// Suppression: a finding is waived only by a comment on the same line
/// or up to 3 lines above it of the form
///   // avcheck:allow(<check-name>): <non-empty rationale>
/// The rationale text is mandatory — a bare marker does not suppress.

namespace autoview {
namespace tools {

/// One policed source file, given as repo-relative path plus contents
/// (tests feed synthetic fixtures through the same entry point).
struct SourceFile {
  std::string path;
  std::string content;
};

/// One reported violation.
struct Finding {
  std::string file;
  int line = 0;
  std::string check;    // check name, e.g. "lock-order"
  std::string message;  // human-readable detail (includes witnesses)
};

/// All check names, in report order.
std::vector<std::string> AllCheckNames();

/// Runs the named checks (empty = all) over `files` and returns the
/// surviving findings sorted by (file, line). Unknown check names are
/// an InvalidArgument error.
Result<std::vector<Finding>> RunChecks(const std::vector<SourceFile>& files,
                                       const std::vector<std::string>& checks);

/// Loads every *.h / *.cc under `<root>/src` (sorted, repo-relative
/// paths such as "src/util/status.h").
Result<std::vector<SourceFile>> LoadSourceTree(const std::string& root);

}  // namespace tools
}  // namespace autoview
