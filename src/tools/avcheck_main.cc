// avcheck — project-native static analyzer for the autoview codebase.
//
// Usage:
//   avcheck [--root=DIR] [--checks=a,b,c] [--list-checks] [paths...]
//
// With no paths, analyzes every *.h / *.cc under <root>/src (root
// defaults to the current directory, searching upward for a src/
// tree). With explicit paths, analyzes exactly those files — the
// cross-file harvest then only sees what was passed, which is how the
// test fixtures drive single-file probes.
//
// Exit: 0 clean, 1 findings, 2 usage/setup error.

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "tools/avcheck.h"

namespace {

using autoview::Result;
using autoview::tools::AllCheckNames;
using autoview::tools::Finding;
using autoview::tools::LoadSourceTree;
using autoview::tools::RunChecks;
using autoview::tools::SourceFile;

std::vector<std::string> SplitCommas(const std::string& s) {
  std::vector<std::string> out;
  std::string cur;
  std::istringstream in(s);
  while (std::getline(in, cur, ',')) {
    if (!cur.empty()) out.push_back(cur);
  }
  return out;
}

/// Finds the repo root: the nearest ancestor of `start` containing a
/// src/ directory.
std::string FindRoot(const std::string& start) {
  namespace fs = std::filesystem;
  std::error_code ec;
  fs::path p = fs::absolute(start, ec);
  while (!p.empty()) {
    if (fs::is_directory(p / "src", ec)) return p.string();
    if (p == p.parent_path()) break;
    p = p.parent_path();
  }
  return "";
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  bool root_set = false;
  std::vector<std::string> checks;
  std::vector<std::string> paths;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--root=", 0) == 0) {
      root = arg.substr(7);
      root_set = true;
    } else if (arg.rfind("--checks=", 0) == 0) {
      checks = SplitCommas(arg.substr(9));
    } else if (arg == "--list-checks") {
      for (const std::string& name : AllCheckNames()) {
        std::printf("%s\n", name.c_str());
      }
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: avcheck [--root=DIR] [--checks=a,b,c] [--list-checks] "
          "[paths...]\n");
      return 0;
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "avcheck: unknown flag %s\n", arg.c_str());
      return 2;
    } else {
      paths.push_back(arg);
    }
  }

  std::vector<SourceFile> files;
  if (paths.empty()) {
    if (!root_set) {
      const std::string found = FindRoot(root);
      if (found.empty()) {
        std::fprintf(stderr, "avcheck: no src/ tree found; pass --root\n");
        return 2;
      }
      root = found;
    }
    Result<std::vector<SourceFile>> loaded = LoadSourceTree(root);
    if (!loaded.ok()) {
      std::fprintf(stderr, "avcheck: %s\n",
                   loaded.status().ToString().c_str());
      return 2;
    }
    files = std::move(loaded).value();
  } else {
    for (const std::string& path : paths) {
      std::ifstream in(path, std::ios::binary);
      if (!in) {
        std::fprintf(stderr, "avcheck: cannot open %s\n", path.c_str());
        return 2;
      }
      std::ostringstream buffer;
      buffer << in.rdbuf();
      files.push_back({path, buffer.str()});
    }
  }

  Result<std::vector<Finding>> findings = RunChecks(files, checks);
  if (!findings.ok()) {
    std::fprintf(stderr, "avcheck: %s\n",
                 findings.status().ToString().c_str());
    return 2;
  }
  const std::vector<Finding>& found = findings.value();
  for (const Finding& f : found) {
    std::printf("%s:%d: [%s] %s\n", f.file.c_str(), f.line, f.check.c_str(),
                f.message.c_str());
  }
  if (!found.empty()) {
    std::fprintf(stderr, "avcheck: %zu finding(s) over %zu file(s)\n",
                 found.size(), files.size());
    return 1;
  }
  std::printf("avcheck: clean (%zu files)\n", files.size());
  return 0;
}
