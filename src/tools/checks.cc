#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <functional>
#include <map>
#include <memory>
#include <regex>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "tools/avcheck.h"
#include "tools/harvest.h"
#include "tools/lexer.h"
#include "tools/scopes.h"

/// \file
/// Check implementations for tools/avcheck. Everything runs over the
/// shared lexer and scope tree (lexer.h / scopes.h) plus the cross-file
/// harvest (harvest.h); nothing here re-reads raw source text, so no
/// rule can be tripped by a comment or string literal.

namespace autoview {
namespace tools {

namespace {

std::string Trim(const std::string& s) {
  size_t b = s.find_first_not_of(" \t");
  if (b == std::string::npos) return "";
  size_t e = s.find_last_not_of(" \t");
  return s.substr(b, e - b + 1);
}

bool IsIdent(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/// One lexed + scope-parsed file.
struct AFile {
  const SourceFile* src = nullptr;
  std::string rel;  // normalized repo-relative path (from "src/")
  LexedFile lexed;
  std::unique_ptr<Scope> root;
};

struct Analysis {
  std::vector<AFile> files;
  Harvest harvest;
};

std::string NormalizeRel(const std::string& path) {
  const size_t pos = path.rfind("src/");
  return pos == std::string::npos ? path : path.substr(pos);
}

// ---------------------------------------------------------------------------
// Suppression: `avcheck:allow(<check>): <rationale>` on the finding's
// line or up to 3 lines above. The rationale text is mandatory.

bool SuppressedAt(const LexedFile& lexed, int line, const std::string& check) {
  const int lo = std::max(1, line - 3);
  const int hi = std::min(line, static_cast<int>(lexed.lines.size()));
  const std::string marker = "avcheck:allow(";
  for (int ln = lo; ln <= hi; ++ln) {
    const std::string& c = lexed.lines[ln - 1].comment;
    size_t at = c.find(marker);
    if (at == std::string::npos) continue;
    size_t open = at + marker.size();
    size_t close = c.find(')', open);
    if (close == std::string::npos) continue;
    if (Trim(c.substr(open, close - open)) != check) continue;
    std::string rationale = c.substr(close + 1);
    size_t colon = rationale.find_first_not_of(" \t");
    if (colon != std::string::npos && rationale[colon] == ':') {
      rationale = rationale.substr(colon + 1);
    }
    int meaningful = 0;
    for (char ch : rationale) {
      if (ch != ' ' && ch != '\t') ++meaningful;
    }
    if (meaningful >= 8) return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Direct blocking operations (textual, on a single statement).

const std::regex& DirectBlockingRe() {
  static const std::regex re(
      R"((^|[^_A-Za-z0-9])(WaitIdle|ParallelFor|Materialize|fopen|fwrite|fread|fclose|fflush|fprintf|fgets|fscanf|fseek|ftell|rename|remove|getline)\s*\()"
      R"(|(\.|->)\s*Wait(Until|For)?\s*\()"
      R"(|(^|[^_A-Za-z0-9])(std::)?(i|o)?fstream[^_A-Za-z0-9])");
  return re;
}

/// Returns the matched blocking token ("" when none).
std::string DirectBlockingOp(const std::string& text) {
  for (std::sregex_iterator it(text.begin(), text.end(), DirectBlockingRe()),
       end;
       it != end; ++it) {
    std::string op = it->str();
    // Strip the boundary char / whitespace / '(' the regex dragged in.
    size_t b = 0;
    while (b < op.size() && !IsIdent(op[b]) && op[b] != '.' && op[b] != '-') {
      ++b;
    }
    size_t e = op.size();
    while (e > b && (op[e - 1] == '(' || op[e - 1] == ' ')) --e;
    op = op.substr(b, e - b);
    // `std::remove` / `std::rename` over iterators is the erase-remove
    // algorithm, not file I/O.
    if ((op == "remove" || op == "rename") &&
        (text.find("begin(") != std::string::npos ||
         text.find("end(") != std::string::npos)) {
      continue;
    }
    return op;
  }
  return "";
}

bool ScopeHasDirectBlocking(const Scope& scope) {
  for (const Scope::Item& item : scope.items) {
    if (item.statement) {
      if (!DirectBlockingOp(item.statement->text).empty()) return true;
      continue;
    }
    switch (item.scope->kind) {
      case Scope::Kind::kLambda:   // deferred: does not block the caller
      case Scope::Kind::kClass:
      case Scope::Kind::kFunction:
      case Scope::Kind::kEnum:
        break;
      default:
        // Control-flow headers execute too: `if (std::rename(...))`.
        if (!DirectBlockingOp(item.scope->header).empty()) return true;
        if (ScopeHasDirectBlocking(*item.scope)) return true;
        break;
    }
  }
  return false;
}

void MarkBlockingFunctions(const Scope& scope, Harvest* harvest) {
  for (const Scope::Item& item : scope.items) {
    if (!item.scope) continue;
    const Scope& child = *item.scope;
    if (child.kind == Scope::Kind::kFunction && !child.name.empty() &&
        ScopeHasDirectBlocking(child)) {
      harvest->MarkBlocking(child.name, child.cls);
    }
    MarkBlockingFunctions(child, harvest);
  }
}

Result<Analysis> BuildAnalysis(const std::vector<SourceFile>& files) {
  Analysis out;
  out.files.reserve(files.size());
  for (const SourceFile& src : files) {
    AFile af;
    af.src = &src;
    af.rel = NormalizeRel(src.path);
    af.lexed = LexSource(src.path, src.content);
    af.root = ParseScopes(af.lexed);
    out.harvest.AddFile(af.lexed, *af.root);
    out.files.push_back(std::move(af));
  }
  for (const AFile& af : out.files) {
    MarkBlockingFunctions(*af.root, &out.harvest);
  }
  return out;
}

// ---------------------------------------------------------------------------
// Call-site resolution.

bool IsCallKeyword(const std::string& name) {
  static const std::set<std::string> kKeywords = {
      "if",     "for",    "while",  "switch",      "return", "sizeof",
      "new",    "delete", "catch",  "static_cast", "assert", "alignof",
      "decltype"};
  return kKeywords.count(name) > 0;
}

struct CallSite {
  std::string receiver;  // "" for bare calls
  std::string sep;       // "." | "->" | "::" | ""
  std::string name;
};

std::vector<CallSite> FindCallSites(const std::string& text) {
  static const std::regex re(
      R"(([A-Za-z_][A-Za-z0-9_]*)\s*(\.|->|::)\s*([A-Za-z_][A-Za-z0-9_]*)\s*\()"
      R"(|([A-Za-z_][A-Za-z0-9_]*)\s*\()");
  std::vector<CallSite> out;
  for (std::sregex_iterator it(text.begin(), text.end(), re), end;
       it != end; ++it) {
    const std::smatch& m = *it;
    CallSite call;
    if (m[3].matched) {
      call.receiver = m[1].str();
      call.sep = m[2].str();
      call.name = m[3].str();
    } else {
      call.name = m[4].str();
      // Reject a "bare" name that is actually the tail of a chain the
      // first alternative could not consume (e.g. after `)` or `>`).
      const size_t pos = static_cast<size_t>(m.position(4));
      if (pos > 0) {
        const char prev = text[pos - 1];
        if (IsIdent(prev) || prev == '.' || prev == '>' || prev == ':') {
          continue;
        }
      }
    }
    if (IsCallKeyword(call.name)) continue;
    out.push_back(std::move(call));
  }
  return out;
}

std::vector<const FunctionSig*> ResolveCall(const Harvest& harvest,
                                            const CallSite& call,
                                            const std::string& ctx_cls) {
  auto strict = [&](const std::string& cls) {
    std::vector<const FunctionSig*> out;
    for (const FunctionSig* sig : harvest.Find(call.name, cls)) {
      if (sig->cls == cls) out.push_back(sig);
    }
    return out;
  };
  if (call.sep == "::") return strict(call.receiver);
  if (!call.receiver.empty()) {
    const std::string cls =
        harvest.ResolveReceiverClass(call.receiver, ctx_cls);
    if (cls.empty()) return {};
    return strict(cls);
  }
  if (!ctx_cls.empty()) return harvest.Find(call.name, ctx_cls);
  // Free function context: only free-function signatures apply.
  std::vector<const FunctionSig*> out;
  for (const FunctionSig* sig : harvest.Find(call.name, "")) {
    if (sig->cls.empty()) out.push_back(sig);
  }
  return out;
}

// ---------------------------------------------------------------------------
// Lock identity: `ClassName::member_` where resolvable.

std::string LockId(const Harvest& harvest, std::string expr,
                   const std::string& cls) {
  expr = Trim(expr);
  while (!expr.empty() && (expr[0] == '&' || expr[0] == '*')) {
    expr = Trim(expr.substr(1));
  }
  if (expr.rfind("this->", 0) == 0) expr = Trim(expr.substr(6));
  if (expr.rfind("this.", 0) == 0) expr = Trim(expr.substr(5));
  std::string compact;
  for (char c : expr) {
    if (c != ' ' && c != '\t') compact.push_back(c);
  }
  bool simple = !compact.empty();
  for (char c : compact) {
    if (!IsIdent(c)) simple = false;
  }
  if (simple) return cls.empty() ? compact : cls + "::" + compact;
  static const std::regex member_re(
      R"(^([A-Za-z_][A-Za-z0-9_]*)(->|\.)([A-Za-z_][A-Za-z0-9_]*)$)");
  std::smatch m;
  if (std::regex_match(compact, m, member_re)) {
    const std::string owner = harvest.ResolveReceiverClass(m[1].str(), cls);
    if (!owner.empty()) return owner + "::" + m[3].str();
  }
  return compact;
}

// ---------------------------------------------------------------------------
// Lock walk: acquisitions, acquired-before edges, blocking-under-lock.

struct HeldLock {
  std::string id;
  int line = 0;
};

struct LockGraph {
  // from -> to -> first witness "file:line".
  std::map<std::string, std::map<std::string, std::string>> edges;

  void Add(const std::string& from, const std::string& to,
           const std::string& witness) {
    edges[from].emplace(to, witness);
  }
};

struct LockWalker {
  const AFile& file;
  const Harvest& harvest;
  LockGraph* graph;
  std::vector<Finding>* findings;

  std::string Held(const std::vector<HeldLock>& held) const {
    std::string out;
    for (const HeldLock& h : held) {
      if (!out.empty()) out += ", ";
      out += h.id;
    }
    return out;
  }

  void OnStatement(const Statement& stmt, std::vector<HeldLock>* held,
                   const std::string& ctx_cls) {
    static const std::regex acquire_re(
        R"((^|[^_A-Za-z0-9])MutexLock\s+[A-Za-z_][A-Za-z0-9_]*\s*[({]([^)}]*)[)}])");
    const std::string witness = file.rel + ":" + std::to_string(stmt.line);

    for (std::sregex_iterator it(stmt.text.begin(), stmt.text.end(),
                                 acquire_re),
         end;
         it != end; ++it) {
      const std::vector<std::string> args = SplitTopLevelArgs((*it)[2].str());
      if (args.empty()) continue;
      const std::string id = LockId(harvest, args[0], ctx_cls);
      bool already = false;
      for (const HeldLock& h : *held) {
        if (h.id == id) already = true;
      }
      if (already) {
        findings->push_back(
            {file.rel, stmt.line, "lock-order",
             "acquires " + id + " while already holding it (self-deadlock)"});
        continue;
      }
      for (const HeldLock& h : *held) {
        graph->Add(h.id, id, witness);
      }
      held->push_back({id, stmt.line});
    }

    if (held->empty()) return;

    const std::string direct = DirectBlockingOp(stmt.text);
    if (!direct.empty()) {
      findings->push_back({file.rel, stmt.line, "blocking-under-lock",
                           "blocking operation '" + direct +
                               "' while holding " + Held(*held)});
    }

    for (const CallSite& call : FindCallSites(stmt.text)) {
      const std::vector<const FunctionSig*> sigs =
          ResolveCall(harvest, call, ctx_cls);
      if (!direct.empty()) {
        // Direct op already reported for this statement; still walk the
        // resolved signatures for AV_EXCLUDES edges below.
      } else {
        for (const FunctionSig* sig : sigs) {
          if (!sig->blocking) continue;
          findings->push_back(
              {file.rel, stmt.line, "blocking-under-lock",
               "call to blocking '" + call.name + "' (declared " +
                   NormalizeRel(sig->file) + ":" + std::to_string(sig->line) +
                   ") while holding " + Held(*held)});
          break;
        }
      }
      for (const FunctionSig* sig : sigs) {
        for (const std::string& ex : sig->excludes_locks) {
          const std::string exid = LockId(harvest, ex, sig->cls);
          for (const HeldLock& h : *held) {
            if (h.id == exid) {
              findings->push_back(
                  {file.rel, stmt.line, "lock-order",
                   "calls '" + call.name + "' which AV_EXCLUDES " + exid +
                       " while holding it (self-deadlock)"});
            } else {
              graph->Add(h.id, exid, witness);
            }
          }
        }
      }
    }
  }

  void Walk(const Scope& scope, std::vector<HeldLock>* held,
            const std::string& ctx_cls) {
    const size_t base = held->size();
    for (const Scope::Item& item : scope.items) {
      if (item.statement) {
        OnStatement(*item.statement, held, ctx_cls);
        continue;
      }
      const Scope& child = *item.scope;
      switch (child.kind) {
        case Scope::Kind::kFunction: {
          std::vector<HeldLock> entry;
          const std::string cls = child.cls;
          std::set<std::string> seen;
          auto seed = [&](const std::vector<std::string>& locks) {
            for (const std::string& lk : locks) {
              const std::string id = LockId(harvest, lk, cls);
              if (seen.insert(id).second) {
                entry.push_back({id, child.header_line});
              }
            }
          };
          seed(child.requires_locks);
          for (const FunctionSig* sig : harvest.Find(child.name, cls)) {
            if (sig->cls == cls) seed(sig->requires_locks);
          }
          Walk(child, &entry, cls);
          break;
        }
        case Scope::Kind::kLambda: {
          // Deferred execution: the lambda body runs with no lock from
          // this site held (ParallelFor/Submit run it on pool threads).
          std::vector<HeldLock> fresh;
          Walk(child, &fresh, ctx_cls);
          break;
        }
        case Scope::Kind::kClass: {
          std::vector<HeldLock> fresh;
          Walk(child, &fresh, child.name.empty() ? ctx_cls : child.name);
          break;
        }
        default: {
          // A control-flow header executes in the enclosing lock
          // context (`if (std::rename(...))`, `while (Materialize(...)
          // .ok())`): scan it as a synthetic statement before the body.
          if (!child.header.empty()) {
            tools::Statement header_stmt;
            header_stmt.text = child.header;
            header_stmt.line = child.header_line;
            header_stmt.end_line = child.open_line;
            OnStatement(header_stmt, held, ctx_cls);
          }
          Walk(child, held, ctx_cls);
          break;
        }
      }
    }
    held->resize(base);
  }
};

// Cycle detection over the acquired-before graph (iterative DFS; every
// back edge yields one finding with the full witness path).
void FindLockCycles(const LockGraph& graph, std::vector<Finding>* findings) {
  enum Color { kWhite, kGray, kBlack };
  std::map<std::string, Color> color;
  for (const auto& entry : graph.edges) color[entry.first] = kWhite;

  std::vector<std::string> stack;  // current DFS path
  std::set<std::string> reported;

  std::function<void(const std::string&)> dfs = [&](const std::string& u) {
    color[u] = kGray;
    stack.push_back(u);
    auto it = graph.edges.find(u);
    if (it != graph.edges.end()) {
      for (const auto& edge : it->second) {
        const std::string& v = edge.first;
        auto cit = color.find(v);
        if (cit == color.end() || cit->second == kWhite) {
          color[v] = kWhite;
          dfs(v);
        } else if (cit->second == kGray) {
          // Reconstruct the cycle v -> ... -> u -> v.
          size_t start = 0;
          while (start < stack.size() && stack[start] != v) ++start;
          std::ostringstream msg;
          msg << "lock-order cycle: ";
          std::string key;
          for (size_t i = start; i < stack.size(); ++i) {
            const std::string& from = stack[i];
            const std::string& to =
                i + 1 < stack.size() ? stack[i + 1] : v;
            const std::string& w = graph.edges.at(from).at(to);
            msg << from << " -> " << to << " (" << w << ")";
            if (i + 1 < stack.size() || to != v) msg << ", ";
            key += from + ">";
          }
          // Canonicalize so the same cycle found from two entry points
          // is reported once.
          if (reported.insert(key).second) {
            const std::string& w = graph.edges.at(stack.back()).at(v);
            const size_t colon = w.rfind(':');
            std::string wfile = w.substr(0, colon);
            int wline = colon == std::string::npos
                            ? 0
                            : std::atoi(w.c_str() + colon + 1);
            findings->push_back({wfile, wline, "lock-order", msg.str()});
          }
        }
      }
    }
    color[u] = kBlack;
    stack.pop_back();
  };

  for (const auto& entry : graph.edges) {
    if (color[entry.first] == kWhite) dfs(entry.first);
  }
}

// ---------------------------------------------------------------------------
// discarded-status: expression-statement calls whose resolved callee
// returns Status / Result.

bool TopLevelAssignment(const std::string& t) {
  int depth = 0;
  for (size_t i = 0; i < t.size(); ++i) {
    const char c = t[i];
    if (c == '(' || c == '[') ++depth;
    if (c == ')' || c == ']') --depth;
    if (c == '=' && depth == 0) {
      const char prev = i > 0 ? t[i - 1] : '\0';
      const char next = i + 1 < t.size() ? t[i + 1] : '\0';
      if (prev != '=' && prev != '<' && prev != '>' && prev != '!' &&
          next != '=') {
        return true;
      }
    }
  }
  return false;
}

bool LooksLikeDeclaration(const std::string& t) {
  static const std::regex re(
      R"(^(const\s+)?[A-Za-z_][A-Za-z0-9_:]*(\s*<[^;]*>)?(\s*[*&])*\s+[A-Za-z_][A-Za-z0-9_]*\s*[({])");
  return std::regex_search(t, re);
}

struct FinalCall {
  std::string receiver;  // "", "<expr>", or a simple identifier
  std::string sep;
  std::string name;
  bool valid = false;
};

FinalCall ExtractFinalCall(const std::string& t) {
  FinalCall out;
  if (t.empty() || t.back() != ')') return out;
  int depth = 0;
  size_t i = t.size();
  while (i > 0) {
    --i;
    if (t[i] == ')') ++depth;
    if (t[i] == '(' && --depth == 0) break;
  }
  if (t[i] != '(') return out;
  size_t e = i;
  while (e > 0 && (t[e - 1] == ' ' || t[e - 1] == '\t')) --e;
  size_t b = e;
  while (b > 0 && IsIdent(t[b - 1])) --b;
  out.name = t.substr(b, e - b);
  if (out.name.empty() || IsCallKeyword(out.name)) return out;
  size_t s = b;
  while (s > 0 && (t[s - 1] == ' ' || t[s - 1] == '\t')) --s;
  if (s >= 2 && t[s - 1] == ':' && t[s - 2] == ':') {
    out.sep = "::";
    s -= 2;
  } else if (s >= 2 && t[s - 1] == '>' && t[s - 2] == '-') {
    out.sep = "->";
    s -= 2;
  } else if (s >= 1 && t[s - 1] == '.') {
    out.sep = ".";
    s -= 1;
  }
  if (!out.sep.empty()) {
    size_t re = s;
    while (re > 0 && (t[re - 1] == ' ' || t[re - 1] == '\t')) --re;
    size_t rb = re;
    while (rb > 0 && IsIdent(t[rb - 1])) --rb;
    out.receiver = t.substr(rb, re - rb);
    if (out.receiver.empty() || rb > 0) {
      // Chained receiver (`a.b().c()`) or non-identifier prefix.
      const char prev = rb > 0 ? t[rb - 1] : '\0';
      if (out.receiver.empty() || prev == '.' || prev == '>' ||
          prev == ':' || prev == ')') {
        out.receiver = "<expr>";
      }
    }
  }
  out.valid = true;
  return out;
}

bool FirstTokenIn(const std::string& t,
                  const std::set<std::string>& words) {
  size_t i = 0;
  while (i < t.size() && !IsIdent(t[i])) {
    if (t[i] != ' ' && t[i] != '\t' && t[i] != '(') return false;
    ++i;
  }
  size_t b = i;
  while (i < t.size() && IsIdent(t[i])) ++i;
  return words.count(t.substr(b, i - b)) > 0;
}

struct DiscardWalker {
  const AFile& file;
  const Harvest& harvest;
  std::vector<Finding>* findings;

  bool CalleeReturnsStatus(const FinalCall& call,
                           const std::string& ctx_cls) const {
    auto all_status = [](const std::vector<const FunctionSig*>& sigs) {
      if (sigs.empty()) return false;
      for (const FunctionSig* sig : sigs) {
        if (!sig->returns_status && !sig->returns_result) return false;
      }
      return true;
    };
    if (call.sep == "::") {
      std::vector<const FunctionSig*> sigs;
      for (const FunctionSig* sig : harvest.Find(call.name, call.receiver)) {
        if (sig->cls == call.receiver) sigs.push_back(sig);
      }
      return all_status(sigs);
    }
    if (!call.receiver.empty() && call.receiver != "<expr>") {
      const std::string cls =
          harvest.ResolveReceiverClass(call.receiver, ctx_cls);
      if (!cls.empty()) {
        std::vector<const FunctionSig*> sigs;
        for (const FunctionSig* sig : harvest.Find(call.name, cls)) {
          if (sig->cls == cls) sigs.push_back(sig);
        }
        if (!sigs.empty()) return all_status(sigs);
      }
      return harvest.UnanimouslyReturnsStatus(call.name, "");
    }
    if (call.receiver == "<expr>") {
      return harvest.UnanimouslyReturnsStatus(call.name, "");
    }
    return all_status(harvest.Find(call.name, ctx_cls));
  }

  bool HasDiscardRationale(int line) const {
    const int lo = std::max(1, line - 2);
    for (int ln = lo;
         ln <= line && ln <= static_cast<int>(file.lexed.lines.size());
         ++ln) {
      if (Trim(file.lexed.lines[ln - 1].comment).size() >= 8) return true;
    }
    return false;
  }

  void Statement(const Statement& stmt, const std::string& ctx_cls) {
    static const std::set<std::string> kSkip = {
        "return", "co_return", "if",    "for",     "while", "switch",
        "case",   "delete",    "throw", "new",     "using", "typedef",
        "goto",   "break",     "continue", "else", "do",    "AV_CHECK",
        "AV_LOG", "static_assert"};
    std::string t = Trim(stmt.text);
    const std::string kPartial = "/*partial*/";
    if (t.size() >= kPartial.size() &&
        t.compare(t.size() - kPartial.size(), kPartial.size(), kPartial) ==
            0) {
      return;
    }
    bool void_cast = false;
    static const std::regex void_re(R"(^\(\s*void\s*\)\s*)");
    std::smatch vm;
    if (std::regex_search(t, vm, void_re)) {
      void_cast = true;
      t = t.substr(vm.length(0));
    }
    if (t.empty() || t.back() != ')') return;
    if (FirstTokenIn(t, kSkip)) return;
    if (TopLevelAssignment(t)) return;
    if (!void_cast && LooksLikeDeclaration(t)) return;
    const FinalCall call = ExtractFinalCall(t);
    if (!call.valid) return;
    if (!CalleeReturnsStatus(call, ctx_cls)) return;
    if (void_cast) {
      if (HasDiscardRationale(stmt.line)) return;
      findings->push_back(
          {file.rel, stmt.line, "discarded-status",
           "(void)-discarded Status from '" + call.name +
               "' lacks a rationale comment"});
      return;
    }
    findings->push_back(
        {file.rel, stmt.line, "discarded-status",
         "result of '" + call.name +
             "' (returns Status) is discarded; handle it or write "
             "`(void)...;  // <why ignoring is safe>`"});
  }

  void Walk(const Scope& scope, const std::string& ctx_cls) {
    for (const Scope::Item& item : scope.items) {
      if (item.statement) {
        // Only executable scopes have expression statements.
        if (scope.kind == Scope::Kind::kFunction ||
            scope.kind == Scope::Kind::kLambda ||
            scope.kind == Scope::Kind::kBlock) {
          Statement(*item.statement, ctx_cls);
        }
        continue;
      }
      const Scope& child = *item.scope;
      switch (child.kind) {
        case Scope::Kind::kClass:
          Walk(child, child.name.empty() ? ctx_cls : child.name);
          break;
        case Scope::Kind::kFunction:
          Walk(child, child.cls.empty() ? ctx_cls : child.cls);
          break;
        case Scope::Kind::kEnum:
          break;
        default:
          Walk(child, ctx_cls);
          break;
      }
    }
  }
};

// ---------------------------------------------------------------------------
// atomic-ordering: explicit memory_order_* arguments must trace to a
// rationale-carrying atomic declaration (or a local rationale comment
// for fences / unresolved objects).

void CheckAtomicOrdering(const Analysis& analysis,
                         std::vector<Finding>* findings) {
  static const std::regex order_re(R"(memory_order_[a-z_]+)");
  static const std::regex op_re(
      R"(([A-Za-z_][A-Za-z0-9_]*)\s*(\.|->)\s*(load|store|exchange|fetch_add|fetch_sub|fetch_or|fetch_and|fetch_xor|compare_exchange_weak|compare_exchange_strong|test_and_set|clear|wait|notify_one|notify_all)\s*\()");
  for (const AFile& af : analysis.files) {
    std::set<int> reported_lines;
    for (size_t li = 0; li < af.lexed.lines.size(); ++li) {
      const int ln = static_cast<int>(li) + 1;
      const std::string& code = af.lexed.lines[li].code;
      for (std::sregex_iterator it(code.begin(), code.end(), order_re), end;
           it != end; ++it) {
        if (reported_lines.count(ln)) break;
        // Context: this line plus up to 3 lines above, to find the
        // atomic object the ordering argument belongs to.
        std::string context;
        size_t token_off = 0;
        const size_t lo = li >= 3 ? li - 3 : 0;
        for (size_t j = lo; j <= li; ++j) {
          if (j == li) token_off = context.size() + it->position(0);
          context += af.lexed.lines[j].code;
          context += ' ';
        }
        std::string obj;
        for (std::sregex_iterator oit(context.begin(), context.end(), op_re),
             oend;
             oit != oend; ++oit) {
          if (static_cast<size_t>(oit->position(0)) < token_off) {
            obj = (*oit)[1].str();
          }
        }
        bool ok = false;
        std::string decl_hint;
        if (!obj.empty()) {
          auto range = analysis.harvest.atomics.equal_range(obj);
          if (range.first != range.second) {
            ok = true;
            for (auto ait = range.first; ait != range.second; ++ait) {
              if (!ait->second.has_rationale) {
                ok = false;
                decl_hint = " (declared " + NormalizeRel(ait->second.file) +
                            ":" + std::to_string(ait->second.line) +
                            " without one)";
              }
            }
          }
        }
        if (!ok && !OrderingRationaleNear(af.lexed, ln - 3, ln + 1)) {
          findings->push_back(
              {af.rel, ln, "atomic-ordering",
               "explicit " + it->str() +
                   (obj.empty() ? std::string(" use")
                                : " on '" + obj + "'") +
                   " has no ordering-rationale comment at its "
                   "declaration" +
                   decl_hint});
          reported_lines.insert(ln);
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Ported grep rules (same names / scoping as the historical shell
// checks, now on lexed code so literals and comments cannot trip them).

struct LineRule {
  std::string check;
  std::string message;
  std::regex match;
  std::regex unless;       // a match is waived if this also matches
  bool has_unless = false;
  // Path predicate over the normalized rel path.
  std::function<bool(const std::string&)> applies;
};

std::vector<LineRule> BuildLineRules() {
  auto in_src = [](const std::string& rel) { return rel.rfind("src/", 0) == 0; };
  std::vector<LineRule> rules;

  {
    LineRule r;
    r.check = "no-naked-abort";
    r.message =
        "use Status/Result (util/status.h); AV_CHECK is reserved for "
        "unrecoverable invariant violations";
    r.match = std::regex(
        R"((^|[^_A-Za-z0-9])(std::)?(abort|exit|_Exit|quick_exit|terminate)\s*\()");
    r.applies = [in_src](const std::string& rel) {
      return in_src(rel) && rel != "src/util/logging.h";
    };
    rules.push_back(std::move(r));
  }
  {
    LineRule r;
    r.check = "no-ambient-randomness";
    r.message = "draw from the seeded autoview::Rng (src/util/random.h)";
    r.match = std::regex(
        R"((^|[^_A-Za-z0-9])(rand|srand|time|clock)\s*\(|std::random_device|mt19937)");
    r.applies = [in_src](const std::string& rel) {
      return in_src(rel) && rel != "src/util/random.h" &&
             rel != "src/util/random.cc";
    };
    rules.push_back(std::move(r));
  }
  {
    LineRule r;
    r.check = "no-cout";
    r.message =
        "library code must not write to stdout; use AV_LOG or return data";
    r.match = std::regex(R"(std::cout)");
    r.applies = in_src;
    rules.push_back(std::move(r));
  }
  {
    LineRule r;
    r.check = "no-raw-mutex";
    r.message =
        "use the annotated autoview::Mutex / CondVar from util/annotations.h";
    r.match = std::regex(
        R"(std::(mutex|shared_mutex|recursive_mutex|condition_variable))");
    r.applies = [in_src](const std::string& rel) {
      return in_src(rel) && rel != "src/util/annotations.h";
    };
    rules.push_back(std::move(r));
  }
  {
    LineRule r;
    r.check = "no-naked-new";
    r.message =
        "allocation must be owned on the same line "
        "(make_unique/make_shared/unique_ptr/shared_ptr)";
    r.match = std::regex(
        R"((^|[^_A-Za-z0-9])new\s+[A-Za-z_]|(^|[^_A-Za-z0-9])delete(\s|\[))");
    r.unless = std::regex(
        R"(shared_ptr<|unique_ptr<|make_shared|make_unique|=\s*delete)");
    r.has_unless = true;
    r.applies = in_src;
    rules.push_back(std::move(r));
  }
  {
    LineRule r;
    r.check = "loadgen-seed-flow";
    r.message =
        "every Rng in src/bench/ must be constructed from a seed variable "
        "(LoadGenConfig::seed flows through the whole run)";
    r.match = std::regex(R"((^|[^_A-Za-z0-9])Rng\s+[A-Za-z_]+\()");
    r.unless = std::regex(R"(Rng\s+[A-Za-z_]+\([^)]*[Ss]eed)");
    r.has_unless = true;
    r.applies = [](const std::string& rel) {
      return rel.rfind("src/bench/", 0) == 0;
    };
    rules.push_back(std::move(r));
  }
  {
    LineRule r;
    r.check = "advisor-clock-seam";
    r.message =
        "the advisor reads time only through the injected autoview::Clock "
        "(util/clock.h)";
    r.match = std::regex(
        R"(std::chrono|steady_clock|system_clock|Deadline::(AfterMillis|AfterSeconds|Infinite))");
    r.applies = [](const std::string& rel) {
      return rel == "src/core/advisor.h" || rel == "src/core/advisor.cc";
    };
    rules.push_back(std::move(r));
  }
  {
    LineRule r;
    r.check = "engine-io-confined";
    r.message =
        "engine disk I/O is confined to view_store_log.cc (the WAL) so "
        "failpoint crash coverage stays complete";
    r.match = std::regex(
        R"((^|[^_A-Za-z0-9])(std::)?(fopen|fwrite|fread|fprintf|rename|remove)\s*\()");
    r.applies = [](const std::string& rel) {
      return rel.rfind("src/engine/", 0) == 0 &&
             rel != "src/engine/view_store_log.cc";
    };
    rules.push_back(std::move(r));
  }
  return rules;
}

void RunLineRules(const Analysis& analysis, std::vector<Finding>* findings) {
  static const std::vector<LineRule> rules = BuildLineRules();
  for (const AFile& af : analysis.files) {
    for (const LineRule& rule : rules) {
      if (!rule.applies(af.rel)) continue;
      for (size_t li = 0; li < af.lexed.lines.size(); ++li) {
        const std::string& code = af.lexed.lines[li].code;
        if (!std::regex_search(code, rule.match)) continue;
        if (rule.has_unless && std::regex_search(code, rule.unless)) continue;
        findings->push_back({af.rel, static_cast<int>(li) + 1, rule.check,
                             rule.message});
      }
    }
  }
}

// mutex-annotated: a Mutex member declaration needs an AV_GUARDED_BY /
// AV_PT_GUARDED_BY / AV_REQUIRES / AV_ACQUIRE user within +/- 8 lines.
void CheckMutexAnnotated(const Analysis& analysis,
                         std::vector<Finding>* findings) {
  static const std::regex decl_re(R"((^|\s)Mutex\s+[A-Za-z_]+_\s*;)");
  static const std::regex user_re(
      R"(AV_GUARDED_BY|AV_PT_GUARDED_BY|AV_REQUIRES|AV_ACQUIRE)");
  for (const AFile& af : analysis.files) {
    if (af.rel.rfind("src/", 0) != 0) continue;
    if (af.rel == "src/util/annotations.h") continue;
    std::vector<int> decls;
    std::set<int> users;
    for (size_t li = 0; li < af.lexed.lines.size(); ++li) {
      const std::string& code = af.lexed.lines[li].code;
      if (std::regex_search(code, decl_re)) {
        decls.push_back(static_cast<int>(li) + 1);
      }
      if (std::regex_search(code, user_re)) {
        users.insert(static_cast<int>(li) + 1);
      }
    }
    for (int decl : decls) {
      bool ok = false;
      for (int l = decl - 8; l <= decl + 8; ++l) {
        if (users.count(l)) ok = true;
      }
      if (!ok) {
        findings->push_back(
            {af.rel, decl, "mutex-annotated",
             "Mutex member has no AV_GUARDED_BY / AV_REQUIRES / AV_ACQUIRE "
             "user within 8 lines — write down what it protects"});
      }
    }
  }
}

}  // namespace

// ---------------------------------------------------------------------------

std::vector<std::string> AllCheckNames() {
  return {"lock-order",          "blocking-under-lock",
          "discarded-status",    "atomic-ordering",
          "no-naked-abort",      "no-ambient-randomness",
          "no-cout",             "no-raw-mutex",
          "no-naked-new",        "mutex-annotated",
          "engine-io-confined",  "advisor-clock-seam",
          "loadgen-seed-flow"};
}

Result<std::vector<Finding>> RunChecks(
    const std::vector<SourceFile>& files,
    const std::vector<std::string>& checks) {
  const std::vector<std::string> all = AllCheckNames();
  std::set<std::string> enabled;
  if (checks.empty()) {
    enabled.insert(all.begin(), all.end());
  } else {
    for (const std::string& c : checks) {
      if (std::find(all.begin(), all.end(), c) == all.end()) {
        return Status::InvalidArgument("unknown check: " + c);
      }
      enabled.insert(c);
    }
  }

  Result<Analysis> analysis = BuildAnalysis(files);
  if (!analysis.ok()) return analysis.status();
  const Analysis& a = analysis.value();

  std::vector<Finding> raw;

  if (enabled.count("lock-order") || enabled.count("blocking-under-lock")) {
    LockGraph graph;
    std::vector<Finding> lock_findings;
    for (const AFile& af : a.files) {
      if (af.rel.rfind("src/", 0) != 0) continue;
      LockWalker walker{af, a.harvest, &graph, &lock_findings};
      std::vector<HeldLock> held;
      walker.Walk(*af.root, &held, "");
    }
    if (enabled.count("lock-order")) {
      FindLockCycles(graph, &lock_findings);
    }
    for (Finding& f : lock_findings) {
      if (enabled.count(f.check)) raw.push_back(std::move(f));
    }
  }

  if (enabled.count("discarded-status")) {
    for (const AFile& af : a.files) {
      if (af.rel.rfind("src/", 0) != 0) continue;
      DiscardWalker walker{af, a.harvest, &raw};
      walker.Walk(*af.root, "");
    }
  }

  if (enabled.count("atomic-ordering")) {
    std::vector<Finding> atomic_findings;
    CheckAtomicOrdering(a, &atomic_findings);
    for (Finding& f : atomic_findings) {
      if (f.file.rfind("src/", 0) == 0) raw.push_back(std::move(f));
    }
  }

  {
    std::vector<Finding> grep_findings;
    RunLineRules(a, &grep_findings);
    CheckMutexAnnotated(a, &grep_findings);
    for (Finding& f : grep_findings) {
      if (enabled.count(f.check)) raw.push_back(std::move(f));
    }
  }

  // Suppression pass + sort + dedup.
  std::map<std::string, const AFile*> by_rel;
  for (const AFile& af : a.files) by_rel[af.rel] = &af;
  std::vector<Finding> out;
  for (Finding& f : raw) {
    auto it = by_rel.find(f.file);
    if (it != by_rel.end() &&
        SuppressedAt(it->second->lexed, f.line, f.check)) {
      continue;
    }
    out.push_back(std::move(f));
  }
  std::sort(out.begin(), out.end(), [](const Finding& x, const Finding& y) {
    if (x.file != y.file) return x.file < y.file;
    if (x.line != y.line) return x.line < y.line;
    if (x.check != y.check) return x.check < y.check;
    return x.message < y.message;
  });
  out.erase(std::unique(out.begin(), out.end(),
                        [](const Finding& x, const Finding& y) {
                          return x.file == y.file && x.line == y.line &&
                                 x.check == y.check && x.message == y.message;
                        }),
            out.end());
  return out;
}

}  // namespace tools
}  // namespace autoview
