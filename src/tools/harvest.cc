#include "tools/harvest.h"

#include <algorithm>
#include <cctype>

namespace autoview {
namespace tools {

namespace {

bool IsIdent(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

std::string Trim(const std::string& s) {
  size_t b = s.find_first_not_of(" \t");
  if (b == std::string::npos) return "";
  size_t e = s.find_last_not_of(" \t");
  return s.substr(b, e - b + 1);
}

std::vector<std::string> IdentTokens(const std::string& s) {
  std::vector<std::string> out;
  size_t i = 0;
  while (i < s.size()) {
    if (!IsIdent(s[i])) {
      ++i;
      continue;
    }
    size_t b = i;
    while (i < s.size() && IsIdent(s[i])) ++i;
    out.push_back(s.substr(b, i - b));
  }
  return out;
}

bool IsQualifierToken(const std::string& t) {
  return t == "static" || t == "virtual" || t == "inline" ||
         t == "explicit" || t == "constexpr" || t == "friend" ||
         t == "mutable" || t == "extern" || t == "nodiscard" ||
         t == "maybe_unused" || t.rfind("AV_", 0) == 0;
}

/// Same helper as in scopes.cc: identifier chain before the first
/// paren that is not nested in template angle brackets.
std::string NameChain(const std::string& h) {
  int angle = 0;
  size_t paren = std::string::npos;
  for (size_t i = 0; i < h.size(); ++i) {
    if (h[i] == '<') ++angle;
    if (h[i] == '>' && angle > 0) --angle;
    if (h[i] == '(' && angle == 0) {
      paren = i;
      break;
    }
  }
  if (paren == std::string::npos) return "";
  size_t e = paren;
  while (e > 0 && (h[e - 1] == ' ' || h[e - 1] == '\t')) --e;
  size_t b = e;
  while (b > 0 && (IsIdent(h[b - 1]) || h[b - 1] == ':' || h[b - 1] == '~')) {
    --b;
  }
  return h.substr(b, e - b);
}

/// Return-type classification of the text preceding the function name:
/// the first identifier token after qualifiers.
void ClassifyReturn(const std::string& prefix, bool* status, bool* result) {
  *status = false;
  *result = false;
  for (const std::string& t : IdentTokens(prefix)) {
    if (IsQualifierToken(t)) continue;
    *status = (t == "Status");
    *result = (t == "Result");
    return;
  }
}

/// Strips trailing `{...}` brace initializers, `= ...` initializers,
/// and trailing AV_* attribute macro calls from a member declaration.
std::string StripDeclTail(std::string s) {
  for (;;) {
    s = Trim(s);
    if (s.empty()) return s;
    if (s.back() == '}') {
      int depth = 0;
      size_t i = s.size();
      while (i > 0) {
        --i;
        if (s[i] == '}') ++depth;
        if (s[i] == '{' && --depth == 0) break;
      }
      s = s.substr(0, i);
      continue;
    }
    if (s.back() == ')') {
      int depth = 0;
      size_t i = s.size();
      while (i > 0) {
        --i;
        if (s[i] == ')') ++depth;
        if (s[i] == '(' && --depth == 0) break;
      }
      size_t e = i;
      while (e > 0 && (s[e - 1] == ' ' || s[e - 1] == '\t')) --e;
      size_t b = e;
      while (b > 0 && IsIdent(s[b - 1])) --b;
      const std::string macro = s.substr(b, e - b);
      if (macro.rfind("AV_", 0) == 0) {
        s = s.substr(0, b);
        continue;
      }
      return s;
    }
    // `= value` initializer.
    int depth = 0;
    for (size_t i = 0; i < s.size(); ++i) {
      if (s[i] == '(' || s[i] == '<' || s[i] == '[') ++depth;
      if (s[i] == ')' || s[i] == '>' || s[i] == ']') --depth;
      if (s[i] == '=' && depth == 0) {
        // Not part of ==, <=, >=, !=.
        const char prev = i > 0 ? s[i - 1] : '\0';
        const char next = i + 1 < s.size() ? s[i + 1] : '\0';
        if (prev != '=' && prev != '<' && prev != '>' && prev != '!' &&
            next != '=') {
          return Trim(s.substr(0, i));
        }
      }
    }
    return s;
  }
}

bool SkippedStatement(const std::string& t) {
  static const char* kPrefixes[] = {"using",  "typedef", "friend",
                                    "static_assert", "return", "throw",
                                    "goto",   "break",   "continue"};
  for (const char* p : kPrefixes) {
    const size_t n = std::char_traits<char>::length(p);
    if (t.compare(0, n, p) == 0 && (t.size() == n || !IsIdent(t[n]))) {
      return true;
    }
  }
  return false;
}

}  // namespace

// (defined after the helper namespace so helpers above stay internal)
bool OrderingRationaleNear(const LexedFile& lexed, int lo, int hi) {
  lo = std::max(1, lo);
  hi = std::min(hi, static_cast<int>(lexed.lines.size()));
  for (int ln = lo; ln <= hi; ++ln) {
    std::string c = lexed.lines[ln - 1].comment;
    std::transform(c.begin(), c.end(), c.begin(), [](unsigned char ch) {
      return static_cast<char>(std::tolower(ch));
    });
    for (const char* kw : {"relaxed", "acquire", "release", "seq_cst",
                           "ordering", "memory order", "memory_order",
                           "monoton"}) {
      if (c.find(kw) != std::string::npos) return true;
    }
  }
  return false;
}

std::string TerminalTypeName(const std::string& decl_type) {
  static const char* kGeneric[] = {
      "const",    "mutable",       "std",          "unique_ptr",
      "shared_ptr", "weak_ptr",    "vector",       "deque",
      "map",      "unordered_map", "set",          "unordered_set",
      "optional", "pair",          "atomic",       "function",
      "size_t",   "uint8_t",       "uint16_t",     "uint32_t",
      "uint64_t", "int8_t",        "int16_t",      "int32_t",
      "int64_t",  "string",        "string_view",  "bool",
      "int",      "unsigned",      "long",         "double",
      "float",    "char",          "void",         "auto"};
  std::string last;
  for (const std::string& t : IdentTokens(decl_type)) {
    bool generic = false;
    for (const char* g : kGeneric) {
      if (t == g) {
        generic = true;
        break;
      }
    }
    if (!generic && !IsQualifierToken(t)) last = t;
  }
  return last;
}

void Harvest::MarkBlocking(const std::string& name, const std::string& cls) {
  auto range = functions.equal_range(name);
  for (auto it = range.first; it != range.second; ++it) {
    if (cls.empty() || it->second.cls.empty() || it->second.cls == cls) {
      it->second.blocking = true;
    }
  }
}

std::vector<const FunctionSig*> Harvest::Find(const std::string& name,
                                              const std::string& cls) const {
  std::vector<const FunctionSig*> out;
  auto range = functions.equal_range(name);
  for (auto it = range.first; it != range.second; ++it) {
    if (!cls.empty() && !it->second.cls.empty() && it->second.cls != cls) {
      continue;
    }
    out.push_back(&it->second);
  }
  return out;
}

std::string Harvest::ResolveReceiverClass(const std::string& receiver,
                                          const std::string& ctx_cls) const {
  if (receiver.empty() || receiver == "this") return ctx_cls;
  if (!ctx_cls.empty()) {
    auto it = member_types.find({ctx_cls, receiver});
    if (it != member_types.end()) return it->second;
  }
  std::string unique;
  for (const auto& entry : member_types) {
    if (entry.first.second != receiver) continue;
    if (!unique.empty() && unique != entry.second) return "";
    unique = entry.second;
  }
  return unique;
}

bool Harvest::UnanimouslyReturnsStatus(const std::string& name,
                                       const std::string& cls) const {
  std::vector<const FunctionSig*> sigs = Find(name, cls);
  if (sigs.empty()) return false;
  for (const FunctionSig* sig : sigs) {
    if (!sig->returns_status && !sig->returns_result) return false;
  }
  return true;
}

namespace {

struct FileHarvester {
  const LexedFile& lexed;
  Harvest* out;
  std::vector<AtomicDecl*> file_atomics;

  void HarvestFunctionScope(const Scope& fn) {
    if (fn.name.empty()) return;
    FunctionSig sig;
    sig.cls = fn.cls;
    sig.name = fn.name;
    sig.file = lexed.path;
    sig.line = fn.header_line;
    const std::string chain = NameChain(fn.header);
    const size_t pos = fn.header.find(chain);
    const std::string prefix =
        (chain.empty() || pos == std::string::npos)
            ? fn.header
            : fn.header.substr(0, pos);
    ClassifyReturn(prefix, &sig.returns_status, &sig.returns_result);
    sig.requires_locks = fn.requires_locks;
    sig.excludes_locks = fn.excludes_locks;
    out->functions.emplace(sig.name, std::move(sig));
  }

  void HarvestStatement(const Statement& stmt, const std::string& cls,
                        bool class_scope) {
    std::string text = stmt.text;
    const std::string kPartial = " /*partial*/";
    if (text.size() >= kPartial.size() &&
        text.compare(text.size() - kPartial.size(), kPartial.size(),
                     kPartial) == 0) {
      return;
    }
    text = Trim(text);
    if (text.empty() || SkippedStatement(text)) return;

    const std::string chain = NameChain(text);
    if (!chain.empty() && IsIdent(chain[0])) {
      // Function declaration (or constructor / macro invocation).
      FunctionSig sig;
      const size_t sep = chain.rfind("::");
      if (sep != std::string::npos) {
        sig.cls = chain.substr(0, sep);
        sig.name = chain.substr(sep + 2);
      } else {
        sig.cls = cls;
        sig.name = chain;
      }
      sig.file = lexed.path;
      sig.line = stmt.line;
      const size_t pos = text.find(chain);
      ClassifyReturn(pos == std::string::npos ? "" : text.substr(0, pos),
                     &sig.returns_status, &sig.returns_result);
      for (const std::string& arg :
           SplitTopLevelArgs(MacroArgs(text, "AV_REQUIRES"))) {
        sig.requires_locks.push_back(arg);
      }
      for (const std::string& arg :
           SplitTopLevelArgs(MacroArgs(text, "AV_EXCLUDES"))) {
        sig.excludes_locks.push_back(arg);
      }
      out->functions.emplace(sig.name, std::move(sig));
      return;
    }

    // Member / variable declaration: `type name [init] [AV_macro]`.
    const std::string stripped = StripDeclTail(text);
    if (stripped.empty() || !IsIdent(stripped.back())) return;
    size_t b = stripped.size();
    while (b > 0 && IsIdent(stripped[b - 1])) --b;
    const std::string name = stripped.substr(b);
    const std::string type_text = Trim(stripped.substr(0, b));
    if (name.empty() || type_text.empty()) return;
    if (std::isdigit(static_cast<unsigned char>(name[0]))) return;

    const bool is_atomic = ContainsToken(type_text, "atomic") ||
                           ContainsToken(type_text, "atomic_flag");
    if (class_scope && !cls.empty()) {
      const std::string type = TerminalTypeName(type_text);
      if (!type.empty()) out->member_types[{cls, name}] = type;
    }
    if (is_atomic) {
      AtomicDecl decl;
      decl.cls = cls;
      decl.name = name;
      decl.file = lexed.path;
      decl.line = stmt.line;
      // The rationale block may be long: walk up through the
      // contiguous run of comment lines directly above the decl.
      int lo = stmt.line;
      while (lo > 1 && stmt.line - lo < 24 &&
             lo - 2 < static_cast<int>(lexed.lines.size()) &&
             !lexed.lines[lo - 2].comment.empty()) {
        --lo;
      }
      decl.has_rationale =
          OrderingRationaleNear(lexed, std::min(lo, stmt.line - 2),
                                stmt.line);
      auto it = out->atomics.emplace(decl.name, std::move(decl));
      file_atomics.push_back(&it->second);
    }
  }

  void Walk(const Scope& scope, const std::string& cls) {
    // Declarations live only in file / namespace / class scopes.  A
    // statement inside a function body (`F();`) is a *call*, and
    // indexing it as a decl would shadow the real signature of F.
    const bool decl_scope = scope.kind == Scope::Kind::kFile ||
                            scope.kind == Scope::Kind::kNamespace ||
                            scope.kind == Scope::Kind::kClass;
    for (const Scope::Item& item : scope.items) {
      if (item.statement) {
        if (decl_scope) {
          HarvestStatement(*item.statement, cls,
                           scope.kind == Scope::Kind::kClass);
        }
        continue;
      }
      const Scope& child = *item.scope;
      switch (child.kind) {
        case Scope::Kind::kClass:
          Walk(child, child.name.empty() ? cls : child.name);
          break;
        case Scope::Kind::kFunction:
          HarvestFunctionScope(child);
          Walk(child, child.cls.empty() ? cls : child.cls);
          break;
        case Scope::Kind::kEnum:
          break;  // enumerators are not declarations we index
        default:
          Walk(child, cls);
          break;
      }
    }
  }

  /// Declaration-group chaining for the rationale convention: one
  /// comment may cover a run of adjacent atomic counters (metrics.h
  /// style), so an uncommented decl inherits from a commented one at
  /// most 3 lines above it.
  void ChainAtomicRationales() {
    std::sort(file_atomics.begin(), file_atomics.end(),
              [](const AtomicDecl* a, const AtomicDecl* b) {
                return a->line < b->line;
              });
    for (size_t i = 1; i < file_atomics.size(); ++i) {
      if (!file_atomics[i]->has_rationale &&
          file_atomics[i - 1]->has_rationale &&
          file_atomics[i]->line - file_atomics[i - 1]->line <= 3) {
        file_atomics[i]->has_rationale = true;
      }
    }
  }
};

}  // namespace

void Harvest::AddFile(const LexedFile& lexed, const Scope& root) {
  FileHarvester harvester{lexed, this, {}};
  harvester.Walk(root, "");
  harvester.ChainAtomicRationales();
}

}  // namespace tools
}  // namespace autoview
