#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "tools/scopes.h"

/// \file
/// Signature harvester for tools/avcheck. Walks the scope trees of
/// every policed file and collects the project-wide facts the checks
/// need to resolve a call site without a real type system:
///
///  - function signatures (return type class, AV_REQUIRES/AV_EXCLUDES
///    sets, whether the body performs a blocking operation), indexed by
///    unqualified name;
///  - class member declarations (`member name -> declared type`), used
///    to resolve `receiver_->Call()` to a class;
///  - atomic member declarations and whether their declaration carries
///    an ordering-rationale comment (the PR 3 convention).

namespace autoview {
namespace tools {

/// One harvested function declaration or definition.
struct FunctionSig {
  std::string cls;   // owning class ("" for free functions)
  std::string name;  // unqualified name
  std::string file;
  int line = 0;
  bool returns_status = false;
  bool returns_result = false;  // Result<T> (carries .status())
  bool blocking = false;        // body performs a direct blocking op
  std::vector<std::string> requires_locks;
  std::vector<std::string> excludes_locks;
};

/// One harvested std::atomic member/global declaration.
struct AtomicDecl {
  std::string cls;
  std::string name;
  std::string file;
  int line = 0;
  bool has_rationale = false;  // ordering rationale at the declaration
};

/// Project-wide symbol index built from all scope trees.
struct Harvest {
  /// Unqualified function name -> every declaration/definition seen.
  std::multimap<std::string, FunctionSig> functions;
  /// (class, member) -> declared type (last identifier, templates
  /// unwrapped: `std::unique_ptr<ViewStateLog>` -> `ViewStateLog`).
  std::map<std::pair<std::string, std::string>, std::string> member_types;
  /// Atomic variable name -> declarations (usually one).
  std::multimap<std::string, AtomicDecl> atomics;

  /// Adds declarations from one parsed file (header or source).
  void AddFile(const LexedFile& lexed, const Scope& root);

  /// Marks every signature of `name` (narrowed to `cls` when non-empty)
  /// blocking. Called by the checks pass once a definition's body is
  /// seen to perform a blocking operation, so the fact propagates one
  /// level to the function's callers.
  void MarkBlocking(const std::string& name, const std::string& cls);

  /// Looks up functions by unqualified name; when `cls` is non-empty
  /// only signatures of that class are returned.
  std::vector<const FunctionSig*> Find(const std::string& name,
                                       const std::string& cls) const;

  /// Resolves the class of `receiver` as seen from class `ctx_cls`:
  /// first as a member of `ctx_cls`, then as a member name that maps to
  /// one unique type across all classes. Returns "" when ambiguous.
  std::string ResolveReceiverClass(const std::string& receiver,
                                   const std::string& ctx_cls) const;

  /// True if every signature found for `name` (optionally narrowed by
  /// class) agrees that it returns Status or Result. False when the
  /// name is unknown or ambiguous — the checks stay silent then.
  bool UnanimouslyReturnsStatus(const std::string& name,
                                const std::string& cls) const;
};

/// Extracts the terminal type name of a declaration text: the last
/// identifier inside trailing template args, else the last identifier
/// of the leading type tokens (`Database* db_` -> `Database`).
std::string TerminalTypeName(const std::string& decl_type);

/// True when any comment on lines [lo, hi] (1-based, clamped) contains
/// an ordering-rationale keyword (relaxed / acquire / release /
/// seq_cst / ordering / memory order / monotonic...).
bool OrderingRationaleNear(const LexedFile& lexed, int lo, int hi);

}  // namespace tools
}  // namespace autoview
