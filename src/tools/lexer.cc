#include "tools/lexer.h"

#include <fstream>
#include <sstream>

namespace autoview {
namespace tools {

namespace {

enum class Mode {
  kCode,
  kLineComment,
  kBlockComment,
  kString,
  kChar,
  kRawString,
};

bool IsIdentChar(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '_';
}

}  // namespace

LexedFile LexSource(std::string path, std::string_view text) {
  LexedFile out;
  out.path = std::move(path);

  Mode mode = Mode::kCode;
  std::string raw_delim;        // the `)delim` terminator of a raw string
  bool in_directive = false;    // inside a preprocessor directive
  bool escape = false;          // previous char was a backslash (in literal)
  LexedLine line;

  auto flush_line = [&] {
    out.lines.push_back(std::move(line));
    line = LexedLine();
  };

  const size_t n = text.size();
  for (size_t i = 0; i < n; ++i) {
    const char c = text[i];
    const char next = i + 1 < n ? text[i + 1] : '\0';

    if (c == '\n') {
      // A directive continues over a trailing backslash; a line comment
      // technically does too, but none of the policed sources rely on
      // that, so a newline always ends a `//` comment here.
      const bool continued = !line.code.empty() && line.code.back() == '\\';
      if (mode == Mode::kLineComment) mode = Mode::kCode;
      if (in_directive) {
        line.code.assign(line.code.size(), ' ');
        if (!continued) in_directive = false;
      }
      flush_line();
      continue;
    }

    switch (mode) {
      case Mode::kCode: {
        if (line.code.find_first_not_of(" \t") == std::string::npos &&
            c == '#') {
          in_directive = true;
        }
        if (c == '/' && next == '/') {
          mode = Mode::kLineComment;
          ++i;
          continue;
        }
        if (c == '/' && next == '*') {
          mode = Mode::kBlockComment;
          ++i;
          continue;
        }
        if (c == '"') {
          // R"delim( ... )delim" — the R must not be part of a longer
          // identifier (LR"..." etc. are not used in this codebase).
          const bool raw =
              !line.code.empty() && line.code.back() == 'R' &&
              (line.code.size() < 2 ||
               !IsIdentChar(line.code[line.code.size() - 2]));
          if (raw) {
            size_t j = i + 1;
            std::string delim;
            while (j < n && text[j] != '(' && text[j] != '\n' &&
                   delim.size() < 16) {
              delim.push_back(text[j++]);
            }
            if (j < n && text[j] == '(') {
              mode = Mode::kRawString;
              raw_delim = ")" + delim + "\"";
              line.code.push_back('"');
              continue;
            }
          }
          mode = Mode::kString;
          escape = false;
          line.code.push_back('"');
          continue;
        }
        if (c == '\'') {
          // Digit separators (1'000'000) are not quotes.
          if (!line.code.empty() && IsIdentChar(line.code.back()) &&
              line.code.back() >= '0' && line.code.back() <= '9') {
            line.code.push_back(c);
            continue;
          }
          mode = Mode::kChar;
          escape = false;
          line.code.push_back('\'');
          continue;
        }
        line.code.push_back(c);
        break;
      }
      case Mode::kLineComment:
        line.comment.push_back(c);
        break;
      case Mode::kBlockComment:
        if (c == '*' && next == '/') {
          mode = Mode::kCode;
          ++i;
        } else {
          line.comment.push_back(c);
        }
        break;
      case Mode::kString:
        if (escape) {
          escape = false;
        } else if (c == '\\') {
          escape = true;
        } else if (c == '"') {
          mode = Mode::kCode;
          line.code.push_back('"');
          continue;
        }
        line.code.push_back(' ');
        break;
      case Mode::kChar:
        if (escape) {
          escape = false;
        } else if (c == '\\') {
          escape = true;
        } else if (c == '\'') {
          mode = Mode::kCode;
          line.code.push_back('\'');
          continue;
        }
        line.code.push_back(' ');
        break;
      case Mode::kRawString: {
        if (c == ')' && text.compare(i, raw_delim.size(), raw_delim) == 0) {
          i += raw_delim.size() - 1;
          mode = Mode::kCode;
          line.code.push_back('"');
        } else {
          line.code.push_back(' ');
        }
        break;
      }
    }
  }
  if (!line.code.empty() || !line.comment.empty()) {
    if (in_directive) line.code.assign(line.code.size(), ' ');
    flush_line();
  }
  return out;
}

Result<LexedFile> LexFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return LexSource(path, buffer.str());
}

}  // namespace tools
}  // namespace autoview
