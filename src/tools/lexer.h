#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

/// \file
/// Shared C++ lexer for tools/avcheck: strips comments, string/char
/// literals, raw strings, and preprocessor directives from a source
/// file while preserving the line structure, so every downstream check
/// reports real line numbers and no pattern can be tripped by prose.
///
/// This replaces the sed/awk approximation of scripts/lint_common.sh
/// (which could not handle raw strings, multi-line literals, or a `//`
/// inside a string). It is still not a compiler front end: the output
/// is per-line *code text* plus per-line *comment text*, which is what
/// the scope tracker and the grep-style rules consume.

namespace autoview {
namespace tools {

/// One physical source line after lexing.
struct LexedLine {
  /// The code with comments removed and literal *contents* blanked to
  /// spaces (the quotes survive, so `""` still reads as an expression).
  /// Preprocessor directives (including their continuation lines) are
  /// blanked entirely — macro bodies would otherwise unbalance the
  /// brace tracking downstream.
  std::string code;
  /// Concatenated comment text that ended or continued on this line
  /// (both `//` and `/* */`, without the delimiters).
  std::string comment;
};

/// A lexed source file; `lines[i]` is physical line `i + 1`.
struct LexedFile {
  std::string path;
  std::vector<LexedLine> lines;
};

/// Lexes `text` (the full file contents) into per-line code/comment.
LexedFile LexSource(std::string path, std::string_view text);

/// Reads and lexes a file from disk.
Result<LexedFile> LexFile(const std::string& path);

}  // namespace tools
}  // namespace autoview
