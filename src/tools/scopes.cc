#include "tools/scopes.h"

#include <algorithm>
#include <cctype>

namespace autoview {
namespace tools {

namespace {

bool IsIdent(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

std::string Trim(const std::string& s) {
  size_t b = s.find_first_not_of(" \t");
  if (b == std::string::npos) return "";
  size_t e = s.find_last_not_of(" \t");
  return s.substr(b, e - b + 1);
}

/// First identifier token of `s` ("" when it does not start with one).
std::string FirstToken(const std::string& s) {
  size_t i = 0;
  while (i < s.size() && !IsIdent(s[i])) {
    if (s[i] != ' ' && s[i] != '\t') return "";
    ++i;
  }
  size_t b = i;
  while (i < s.size() && IsIdent(s[i])) ++i;
  return s.substr(b, i - b);
}

bool IsControlKeyword(const std::string& t) {
  return t == "if" || t == "for" || t == "while" || t == "switch" ||
         t == "do" || t == "else" || t == "try" || t == "catch" ||
         t == "return";
}

/// Strips leading `public:` / `private:` / `protected:` / `case X:` /
/// `default:` label prefixes and a leading `template <...>`.
std::string StripPrefixes(std::string h) {
  for (;;) {
    h = Trim(h);
    const std::string t = FirstToken(h);
    if (t == "public" || t == "private" || t == "protected" ||
        t == "default") {
      size_t colon = h.find(':');
      if (colon == std::string::npos) break;
      // Do not split a `::`.
      if (colon + 1 < h.size() && h[colon + 1] == ':') break;
      h = h.substr(colon + 1);
      continue;
    }
    if (t == "case") {
      // `case A::B:` — find the last colon not part of a `::`.
      size_t i = h.size();
      while (i > 0) {
        --i;
        if (h[i] == ':' && (i == 0 || h[i - 1] != ':') &&
            (i + 1 >= h.size() || h[i + 1] != ':')) {
          break;
        }
      }
      if (h[i] == ':') {
        h = h.substr(i + 1);
        continue;
      }
      break;
    }
    if (t == "template") {
      size_t lt = h.find('<');
      if (lt == std::string::npos) break;
      int depth = 0;
      size_t i = lt;
      for (; i < h.size(); ++i) {
        if (h[i] == '<') ++depth;
        if (h[i] == '>' && --depth == 0) break;
      }
      if (i >= h.size()) break;
      h = h.substr(i + 1);
      continue;
    }
    break;
  }
  return Trim(h);
}

/// True when `h` (or its tail, for mid-expression braces) ends in a
/// lambda introducer: `[caps]`, `[caps](params)`, optionally followed
/// by `mutable` and/or a trailing return type.
bool EndsWithLambdaIntro(const std::string& h) {
  std::string s = Trim(h);
  if (s.empty()) return false;
  // Peel an optional trailing return type `-> T` and `mutable`.
  size_t arrow = s.rfind("->");
  if (arrow != std::string::npos && arrow + 2 < s.size()) {
    const std::string tail = s.substr(arrow + 2);
    if (tail.find('(') == std::string::npos) s = Trim(s.substr(0, arrow));
  }
  if (s.size() >= 7 && s.compare(s.size() - 7, 7, "mutable") == 0) {
    s = Trim(s.substr(0, s.size() - 7));
  }
  if (s.empty()) return false;
  if (s.back() == ')') {
    // Match back to the '(' and require a ']' right before it.
    int depth = 0;
    size_t i = s.size();
    while (i > 0) {
      --i;
      if (s[i] == ')') ++depth;
      if (s[i] == '(' && --depth == 0) break;
    }
    if (s[i] != '(') return false;
    while (i > 0 && (s[i - 1] == ' ' || s[i - 1] == '\t')) --i;
    return i > 0 && s[i - 1] == ']';
  }
  if (s.back() == ']') {
    // Require a matching '[' so an array subscript does not qualify —
    // and an index expression would not end a statement anyway.
    return s.find('[') != std::string::npos;
  }
  return false;
}

/// True when token `kw` occurs in `h` before any '(' at nesting level 0.
bool HasTypeKeyword(const std::string& h, const std::string& kw) {
  for (size_t i = 0; i + kw.size() <= h.size(); ++i) {
    if (h[i] == '(') return false;
    if (h[i] == '=') return false;
    if (h.compare(i, kw.size(), kw) == 0 &&
        (i == 0 || !IsIdent(h[i - 1])) &&
        (i + kw.size() >= h.size() || !IsIdent(h[i + kw.size()]))) {
      return true;
    }
  }
  return false;
}

/// Class name from a class/struct header: the first plain identifier
/// after the keyword that is not an attribute or a macro invocation.
std::string ClassNameFrom(const std::string& h) {
  size_t pos = std::string::npos;
  for (const char* kw : {"class", "struct", "union"}) {
    const std::string k(kw);
    for (size_t i = 0; i + k.size() <= h.size(); ++i) {
      if (h.compare(i, k.size(), k) == 0 && (i == 0 || !IsIdent(h[i - 1])) &&
          (i + k.size() >= h.size() || !IsIdent(h[i + k.size()]))) {
        pos = i + k.size();
        break;
      }
    }
    if (pos != std::string::npos) break;
  }
  if (pos == std::string::npos) return "";
  std::string name;
  size_t i = pos;
  while (i < h.size()) {
    char c = h[i];
    if (c == ' ' || c == '\t') {
      ++i;
      continue;
    }
    if (c == '[') {  // [[attribute]]
      while (i < h.size() && h[i] != ']') ++i;
      while (i < h.size() && h[i] == ']') ++i;
      continue;
    }
    if (c == ':' || c == '{') break;
    if (IsIdent(c)) {
      size_t b = i;
      while (i < h.size() && IsIdent(h[i])) ++i;
      std::string tok = h.substr(b, i - b);
      // Macro invocation (AV_CAPABILITY(...)): skip it with its args.
      size_t j = i;
      while (j < h.size() && (h[j] == ' ' || h[j] == '\t')) ++j;
      if (j < h.size() && h[j] == '(') {
        int depth = 0;
        while (j < h.size()) {
          if (h[j] == '(') ++depth;
          if (h[j] == ')' && --depth == 0) break;
          ++j;
        }
        i = j + 1;
        continue;
      }
      if (tok == "final" || tok == "alignas") continue;
      name = tok;
      if (j < h.size() && (h[j] == ':' || h[j] == '{')) break;
      // Keep scanning: `struct Entry final` — last plain token wins
      // only if a later one appears before ':'/'{'.
      continue;
    }
    ++i;
  }
  return name;
}

/// The identifier chain (`A::B::name` or `name`) immediately before the
/// first top-level '(' of a function header. Returns "" when there is
/// no call-shaped text. Parens inside template angle brackets are
/// skipped while locating the parameter list.
std::string NameChainBeforeParams(const std::string& h) {
  int angle = 0;
  size_t paren = std::string::npos;
  for (size_t i = 0; i < h.size(); ++i) {
    const char c = h[i];
    if (c == '<') ++angle;
    if (c == '>' && angle > 0) --angle;
    if (c == '(' && angle == 0) {
      paren = i;
      break;
    }
  }
  if (paren == std::string::npos) return "";
  size_t e = paren;
  while (e > 0 && (h[e - 1] == ' ' || h[e - 1] == '\t')) --e;
  size_t b = e;
  while (b > 0 && (IsIdent(h[b - 1]) || h[b - 1] == ':' || h[b - 1] == '~')) {
    --b;
  }
  std::string chain = h.substr(b, e - b);
  // `operator==` and friends: the symbol part stops the scan above, so
  // look left for the keyword and keep the whole spelling.
  if (chain.empty() || chain == "=") {
    const std::string head = h.substr(0, b);
    size_t op = head.rfind("operator");
    if (op != std::string::npos &&
        Trim(head.substr(op + 8)).size() <= 2) {
      size_t ob = op;
      while (ob > 0 &&
             (IsIdent(head[ob - 1]) || head[ob - 1] == ':')) {
        --ob;
      }
      chain = Trim(h.substr(ob, e - ob));
    }
  }
  return chain;
}

}  // namespace

std::vector<std::string> SplitTopLevelArgs(const std::string& text) {
  std::vector<std::string> out;
  int depth = 0;
  std::string cur;
  for (char c : text) {
    if (c == '(' || c == '<' || c == '[') ++depth;
    if (c == ')' || c == '>' || c == ']') --depth;
    if (c == ',' && depth == 0) {
      if (!Trim(cur).empty()) out.push_back(Trim(cur));
      cur.clear();
      continue;
    }
    cur.push_back(c);
  }
  if (!Trim(cur).empty()) out.push_back(Trim(cur));
  return out;
}

std::string MacroArgs(const std::string& text, const std::string& macro_name) {
  for (size_t i = 0; i + macro_name.size() <= text.size(); ++i) {
    if (text.compare(i, macro_name.size(), macro_name) != 0) continue;
    if (i > 0 && IsIdent(text[i - 1])) continue;
    size_t j = i + macro_name.size();
    while (j < text.size() && (text[j] == ' ' || text[j] == '\t')) ++j;
    if (j >= text.size() || text[j] != '(') continue;
    int depth = 0;
    size_t open = j;
    for (; j < text.size(); ++j) {
      if (text[j] == '(') ++depth;
      if (text[j] == ')' && --depth == 0) {
        return text.substr(open + 1, j - open - 1);
      }
    }
  }
  return "";
}

bool ContainsToken(const std::string& text, const std::string& word) {
  for (size_t i = 0; i + word.size() <= text.size(); ++i) {
    if (text.compare(i, word.size(), word) == 0 &&
        (i == 0 || !IsIdent(text[i - 1])) &&
        (i + word.size() >= text.size() || !IsIdent(text[i + word.size()]))) {
      return true;
    }
  }
  return false;
}

std::unique_ptr<Scope> ParseScopes(const LexedFile& file) {
  auto root = std::make_unique<Scope>();
  root->kind = Scope::Kind::kFile;
  root->header_line = 1;

  std::vector<Scope*> stack{root.get()};
  // Saved paren depth for lambda scopes opened mid-expression.
  std::vector<int> lambda_saved_depth;

  std::string chunk;
  int chunk_line = 0;
  int paren_depth = 0;
  int init_brace_depth = 0;

  auto append = [&](char c, int ln) {
    if (c == ' ' || c == '\t') {
      if (!chunk.empty() && chunk.back() != ' ') chunk.push_back(' ');
      return;
    }
    if (chunk.empty() || Trim(chunk).empty()) chunk_line = ln;
    chunk.push_back(c);
  };

  auto flush_statement = [&](int ln, bool complete) {
    const std::string text = Trim(chunk);
    chunk.clear();
    if (text.empty()) return;
    auto stmt = std::make_unique<Statement>();
    stmt->text = complete ? text : text + " /*partial*/";
    stmt->line = chunk_line;
    stmt->end_line = ln;
    Scope::Item item;
    item.statement = std::move(stmt);
    stack.back()->items.push_back(std::move(item));
  };

  auto enclosing_class = [&]() -> std::string {
    for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
      if ((*it)->kind == Scope::Kind::kClass) return (*it)->name;
    }
    return "";
  };

  auto open_scope = [&](Scope::Kind kind, int ln) {
    auto scope = std::make_unique<Scope>();
    scope->kind = kind;
    scope->header = Trim(chunk);
    scope->header_line = chunk_line == 0 ? ln : chunk_line;
    scope->open_line = ln;
    chunk.clear();
    const std::string h = StripPrefixes(scope->header);
    if (kind == Scope::Kind::kClass) {
      scope->name = ClassNameFrom(h);
      scope->cls = scope->name;
    } else if (kind == Scope::Kind::kFunction) {
      std::string chain = NameChainBeforeParams(h);
      const size_t sep = chain.rfind("::");
      if (sep != std::string::npos) {
        scope->cls = chain.substr(0, sep);
        scope->name = chain.substr(sep + 2);
      } else {
        scope->cls = enclosing_class();
        scope->name = chain;
      }
      for (const std::string& arg :
           SplitTopLevelArgs(MacroArgs(h, "AV_REQUIRES"))) {
        scope->requires_locks.push_back(arg);
      }
      for (const std::string& arg :
           SplitTopLevelArgs(MacroArgs(h, "AV_EXCLUDES"))) {
        scope->excludes_locks.push_back(arg);
      }
    }
    Scope* raw = scope.get();
    Scope::Item item;
    item.scope = std::move(scope);
    stack.back()->items.push_back(std::move(item));
    stack.push_back(raw);
  };

  auto classify_and_open = [&](int ln) {
    const std::string h = StripPrefixes(Trim(chunk));
    const std::string first = FirstToken(h);
    const char last = h.empty() ? '\0' : h.back();
    if (h.empty() || (IsControlKeyword(first) && first != "return")) {
      open_scope(Scope::Kind::kBlock, ln);
      return true;
    }
    if (ContainsToken(h, "namespace")) {
      open_scope(Scope::Kind::kNamespace, ln);
      return true;
    }
    if (HasTypeKeyword(h, "enum")) {
      open_scope(Scope::Kind::kEnum, ln);
      return true;
    }
    if (HasTypeKeyword(h, "class") || HasTypeKeyword(h, "struct") ||
        HasTypeKeyword(h, "union")) {
      open_scope(Scope::Kind::kClass, ln);
      return true;
    }
    if (EndsWithLambdaIntro(h)) {
      flush_statement(ln, /*complete=*/false);
      chunk = h;  // re-seed so the lambda's own header survives
      open_scope(Scope::Kind::kLambda, ln);
      lambda_saved_depth.push_back(paren_depth);
      paren_depth = 0;
      return true;
    }
    if (last == '=' || last == ',' || first == "return") {
      return false;  // brace-init
    }
    if (h.find('(') != std::string::npos) {
      const std::string chain = NameChainBeforeParams(h);
      if (chain.empty() || IsControlKeyword(chain)) {
        open_scope(Scope::Kind::kBlock, ln);
      } else {
        open_scope(Scope::Kind::kFunction, ln);
      }
      return true;
    }
    if (last != '\0' && (IsIdent(last) || last == '>')) {
      return false;  // member / local brace-init: `std::atomic<T> x_{0}`
    }
    open_scope(Scope::Kind::kOther, ln);
    return true;
  };

  for (size_t li = 0; li < file.lines.size(); ++li) {
    const int ln = static_cast<int>(li) + 1;
    const std::string& code = file.lines[li].code;
    for (size_t ci = 0; ci < code.size(); ++ci) {
      const char c = code[ci];
      if (init_brace_depth > 0) {
        if (c == '{') ++init_brace_depth;
        if (c == '}') --init_brace_depth;
        if (c == '(' || c == '[') ++paren_depth;
        if ((c == ')' || c == ']') && paren_depth > 0) --paren_depth;
        if (c == ';' && paren_depth == 0 && init_brace_depth == 0) {
          flush_statement(ln, /*complete=*/true);
          continue;
        }
        append(c, ln);
        continue;
      }
      switch (c) {
        case '(':
        case '[':
          ++paren_depth;
          append(c, ln);
          break;
        case ')':
        case ']':
          if (paren_depth > 0) --paren_depth;
          append(c, ln);
          break;
        case ';':
          if (paren_depth == 0) {
            flush_statement(ln, /*complete=*/true);
          } else {
            append(c, ln);
          }
          break;
        case ':': {
          // Drop access-specifier and case labels so the statement that
          // follows them keeps its own start line (otherwise `private:`
          // would glue onto the next member declaration and shift every
          // reported line number). `::` and `?:` pass through.
          const char next = ci + 1 < code.size() ? code[ci + 1] : '\0';
          if (paren_depth == 0 && next != ':' &&
              (chunk.empty() || chunk.back() != ':')) {
            const std::string t = Trim(chunk);
            if (t == "public" || t == "private" || t == "protected" ||
                t == "default" || t.rfind("case ", 0) == 0 ||
                t == "case") {
              chunk.clear();
              break;
            }
          }
          append(c, ln);
          break;
        }
        case '{': {
          if (paren_depth > 0) {
            if (EndsWithLambdaIntro(Trim(chunk))) {
              flush_statement(ln, /*complete=*/false);
              open_scope(Scope::Kind::kLambda, ln);
              lambda_saved_depth.push_back(paren_depth);
              paren_depth = 0;
            } else {
              ++init_brace_depth;
              append(c, ln);
            }
            break;
          }
          if (!classify_and_open(ln)) {
            ++init_brace_depth;
            append(c, ln);
          }
          break;
        }
        case '}': {
          flush_statement(ln, /*complete=*/false);
          if (stack.size() > 1) {
            Scope* closing = stack.back();
            closing->close_line = ln;
            if (closing->kind == Scope::Kind::kLambda &&
                !lambda_saved_depth.empty()) {
              paren_depth = lambda_saved_depth.back();
              lambda_saved_depth.pop_back();
            }
            stack.pop_back();
          }
          break;
        }
        default:
          append(c, ln);
          break;
      }
    }
    append(' ', ln);
  }
  flush_statement(static_cast<int>(file.lines.size()), /*complete=*/false);
  while (stack.size() > 1) {
    stack.back()->close_line = static_cast<int>(file.lines.size());
    stack.pop_back();
  }
  root->close_line = static_cast<int>(file.lines.size());
  return root;
}

}  // namespace tools
}  // namespace autoview
