#pragma once

#include <memory>
#include <string>
#include <vector>

#include "tools/lexer.h"

/// \file
/// Brace/scope tracker for tools/avcheck. Consumes a LexedFile and
/// produces a tree of scopes (namespaces, classes, functions, lambdas,
/// blocks) with the statements of each scope in source order.
///
/// This is a heuristic parser, not a grammar: it tracks parenthesis and
/// brace depth over the lexed code, classifies each `{` by the text
/// that precedes it, and extracts function names / thread-safety
/// annotations from scope headers. DESIGN.md §13 lists the known
/// approximations. The guiding invariant is that brace balance is
/// never lost: a misclassified corner case degrades one scope's kind,
/// never the structure of everything after it.

namespace autoview {
namespace tools {

/// One `;`-terminated statement (or flushed fragment) of a scope.
struct Statement {
  std::string text;  // single-spaced code text, no trailing ';'
  int line = 0;      // physical line where the statement begins
  int end_line = 0;  // physical line where it ends
};

/// A scope in the source tree.
struct Scope {
  enum class Kind {
    kFile,       // virtual root
    kNamespace,  // namespace foo {
    kClass,      // class/struct/union body
    kEnum,       // enum { ... }
    kFunction,   // function definition body
    kLambda,     // lambda body (deferred execution: fresh lock context)
    kBlock,      // if/for/while/switch/try/plain block
    kOther,      // unclassified brace scope
  };

  /// A scope holds statements and child scopes in source order.
  struct Item {
    // Exactly one of the two is set.
    std::unique_ptr<Statement> statement;
    std::unique_ptr<Scope> scope;
  };

  Kind kind = Kind::kFile;
  std::string header;     // code text preceding the opening brace
  std::string name;       // class name / function name (unqualified)
  std::string cls;        // enclosing or explicit (A::B) class name
  int header_line = 0;    // line where the header begins
  int open_line = 0;      // line of the opening brace
  int close_line = 0;     // line of the closing brace
  std::vector<std::string> requires_locks;  // AV_REQUIRES(...) args
  std::vector<std::string> excludes_locks;  // AV_EXCLUDES(...) args
  std::vector<Item> items;
};

/// Parses a lexed file into a scope tree rooted at a kFile scope.
std::unique_ptr<Scope> ParseScopes(const LexedFile& file);

/// Splits `text` on top-level commas (ignoring nested (), <>, []).
std::vector<std::string> SplitTopLevelArgs(const std::string& text);

/// Extracts the parenthesized argument text of the first call to
/// `macro_name` inside `text`, or "" when absent.
std::string MacroArgs(const std::string& text, const std::string& macro_name);

/// True when `text` contains `word` as a whole identifier token.
bool ContainsToken(const std::string& text, const std::string& word);

}  // namespace tools
}  // namespace autoview
