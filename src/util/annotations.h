#pragma once

#include <mutex>
#include <condition_variable>

/// \file
/// Portable Clang thread-safety annotations plus the annotated locking
/// vocabulary of the library (Mutex / MutexLock / CondVar).
///
/// Conventions (see DESIGN.md §8 and README "Static analysis"):
///  * every mutex-protected member is declared with AV_GUARDED_BY(mu),
///    adjacent to the Mutex it names (the determinism lint enforces the
///    adjacency, so the invariant survives refactors even off-clang);
///  * private helpers that assume the lock is held take AV_REQUIRES(mu);
///    public entry points that take the lock themselves are implicitly
///    AV_EXCLUDES via the analysis (annotate explicitly only when a
///    deadlock with a caller-held lock is plausible);
///  * raw std::mutex never appears outside this header — the annotated
///    autoview::Mutex wrapper is required so the analysis works under
///    both libc++ and libstdc++ (whose std::mutex carries no capability
///    attributes);
///  * atomics need no annotation, but the comment on the member must say
///    which ordering is relied on and why it is enough.
///
/// Under clang the macros expand to the thread-safety attributes and the
/// whole library is expected to compile with `-Wthread-safety -Werror`
/// (CMake option AUTOVIEW_WERROR_THREAD_SAFETY). Everywhere else they
/// expand to nothing.

#if defined(__clang__) && (!defined(SWIG))
#define AV_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define AV_THREAD_ANNOTATION(x)
#endif

/// Declares a type to be a lockable capability ("mutex").
#define AV_CAPABILITY(x) AV_THREAD_ANNOTATION(capability(x))

/// Declares an RAII type that acquires in its constructor and releases
/// in its destructor.
#define AV_SCOPED_CAPABILITY AV_THREAD_ANNOTATION(scoped_lockable)

/// Member may only be read/written while holding `x`.
#define AV_GUARDED_BY(x) AV_THREAD_ANNOTATION(guarded_by(x))

/// Pointee (not the pointer itself) protected by `x`.
#define AV_PT_GUARDED_BY(x) AV_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function requires the capability held on entry (and keeps it held).
#define AV_REQUIRES(...) \
  AV_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Function must NOT be entered holding the capability (deadlock guard).
#define AV_EXCLUDES(...) AV_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Function acquires the capability (held on return).
#define AV_ACQUIRE(...) \
  AV_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function releases the capability.
#define AV_RELEASE(...) \
  AV_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function acquires the capability when returning `b`.
#define AV_TRY_ACQUIRE(b, ...) \
  AV_THREAD_ANNOTATION(try_acquire_capability(b, __VA_ARGS__))

/// Returns a reference to the named capability.
#define AV_RETURN_CAPABILITY(x) AV_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch: the function manipulates locks in a way the analysis
/// cannot follow (condition-variable handoff). Use sparingly and say why.
#define AV_NO_THREAD_SAFETY_ANALYSIS \
  AV_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace autoview {

class CondVar;

/// \brief Annotated mutex: std::mutex wrapped as a Clang capability.
///
/// libstdc++'s std::mutex carries no thread-safety attributes, so
/// AV_GUARDED_BY on raw std::mutex members silently checks nothing under
/// `clang++ -stdlib=libstdc++`. Wrapping once here makes the analysis
/// portable; the determinism lint bans raw std::mutex members outside
/// this header.
class AV_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() AV_ACQUIRE() { mu_.lock(); }
  void Unlock() AV_RELEASE() { mu_.unlock(); }
  bool TryLock() AV_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// \brief RAII lock for Mutex (the only sanctioned way to take one).
class AV_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) AV_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() AV_RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// \brief Condition variable paired with Mutex.
///
/// Wait() requires the caller to hold `mu` (annotated), so the waited-on
/// predicate can be evaluated in the caller where the analysis sees the
/// lock — prefer `while (!pred()) cv.Wait(mu);` over a predicate lambda,
/// which the analysis would check as a lockless function.
class CondVar {
 public:
  /// Atomically releases `mu`, blocks, and re-acquires before returning.
  /// The body hands the held lock to std::condition_variable and takes
  /// it back, which the analysis cannot follow — hence the escape hatch;
  /// the AV_REQUIRES contract is still enforced against callers.
  void Wait(Mutex& mu) AV_REQUIRES(mu) AV_NO_THREAD_SAFETY_ANALYSIS {
    std::unique_lock<std::mutex> handoff(mu.mu_, std::adopt_lock);
    cv_.wait(handoff);
    handoff.release();  // ownership stays with the caller's MutexLock
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace autoview
