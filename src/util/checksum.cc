#include "util/checksum.h"

namespace autoview {

uint64_t Fnv1a64(const void* data, size_t n) {
  const unsigned char* bytes = static_cast<const unsigned char*>(data);
  uint64_t hash = 1469598103934665603ull;
  for (size_t i = 0; i < n; ++i) {
    hash ^= bytes[i];
    hash *= 1099511628211ull;
  }
  return hash;
}

}  // namespace autoview
