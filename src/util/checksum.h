#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace autoview {

/// FNV-1a over `n` bytes: tiny, dependency-free, and plenty to catch
/// truncation and bit rot (this is corruption detection, not crypto).
/// Shared by the model serializer (nn/serialize) and the view-state log
/// (engine/view_store_log) so every durable artifact uses one checksum.
uint64_t Fnv1a64(const void* data, size_t n);

/// Convenience overload for string payloads (WAL record bodies).
inline uint64_t Fnv1a64(std::string_view s) {
  return Fnv1a64(s.data(), s.size());
}

}  // namespace autoview
