#include "util/clock.h"

#include <chrono>

namespace autoview {

int64_t SystemClock::NowNanos() const {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

const Clock* DefaultClock() {
  static const SystemClock kClock;
  return &kClock;
}

}  // namespace autoview
