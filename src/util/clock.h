#pragma once

#include <atomic>
#include <cstdint>

#include "util/deadline.h"

namespace autoview {

/// \brief Injected time source for components that must stay replayable.
///
/// The online advisor's trigger policies and re-selection deadlines are
/// part of its observable behavior, so they must never read ambient
/// wall-clock time directly (check_determinism.sh enforces this for
/// src/core/advisor.*). Instead the advisor takes a Clock*:
///
///  - SystemClock (the DefaultClock() singleton) backs production runs
///    with std::chrono::steady_clock and real finite deadlines.
///  - ManualClock backs tests and deterministic replay: time advances
///    only when the test says so, and SelectionDeadline() returns an
///    infinite Deadline so a replayed run is never cut short by how
///    fast the host happened to execute it.
class Clock {
 public:
  virtual ~Clock() = default;

  /// Monotonic nanoseconds since an arbitrary epoch.
  virtual int64_t NowNanos() const = 0;

  /// A deadline `budget_ms` milliseconds from now, in this clock's
  /// notion of time. budget_ms <= 0 means "no deadline" (infinite).
  virtual Deadline SelectionDeadline(double budget_ms) const = 0;
};

/// Production clock: steady_clock now, real wall-clock deadlines.
class SystemClock : public Clock {
 public:
  int64_t NowNanos() const override;
  Deadline SelectionDeadline(double budget_ms) const override {
    return budget_ms > 0 ? Deadline::AfterMillis(budget_ms)
                         : Deadline::Infinite();
  }
};

/// Test clock: time is a counter advanced explicitly by the test.
///
/// SelectionDeadline() is always infinite — a manual clock cannot make
/// a wall-clock deadline meaningful, and deterministic tests must not
/// have their iteration counts depend on host speed.
class ManualClock : public Clock {
 public:
  explicit ManualClock(int64_t start_nanos = 0) : nanos_(start_nanos) {}

  int64_t NowNanos() const override {
    return nanos_.load(std::memory_order_relaxed);
  }
  Deadline SelectionDeadline(double /*budget_ms*/) const override {
    return Deadline::Infinite();
  }

  void AdvanceNanos(int64_t delta) {
    nanos_.fetch_add(delta, std::memory_order_relaxed);
  }

 private:
  // Relaxed is enough (see util/annotations.h conventions): tests
  // advance the clock from one thread and read it from others purely as
  // a monotonic counter; no data is published through the timestamp, so
  // no acquire/release pairing is needed.
  std::atomic<int64_t> nanos_;
};

/// Process-wide SystemClock singleton (never destroyed).
const Clock* DefaultClock();

}  // namespace autoview
