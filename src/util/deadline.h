#pragma once

#include <atomic>
#include <chrono>
#include <memory>

namespace autoview {

/// \brief A wall-clock budget for cooperative anytime algorithms.
///
/// Value type: copies observe the same instant, so one Deadline can be
/// handed to every parallel trial of a selector. The default instance is
/// infinite and Expired() on it never reads the clock, keeping
/// deadline-free runs bit-identical to historical behavior (no timing
/// dependence is introduced).
class Deadline {
 public:
  /// Infinite: never expires.
  Deadline() = default;

  static Deadline Infinite() { return Deadline(); }

  /// Expires `budget` from now.
  static Deadline After(std::chrono::nanoseconds budget) {
    Deadline d;
    d.infinite_ = false;
    d.at_ = std::chrono::steady_clock::now() + budget;
    return d;
  }

  /// Expires `ms` milliseconds from now (fractional values allowed).
  static Deadline AfterMillis(double ms) {
    return After(std::chrono::nanoseconds(
        static_cast<int64_t>(ms * 1e6)));
  }

  bool IsInfinite() const { return infinite_; }

  bool Expired() const {
    return !infinite_ && std::chrono::steady_clock::now() >= at_;
  }

  /// Time left; zero when expired, a very large value when infinite.
  std::chrono::nanoseconds Remaining() const {
    if (infinite_) return std::chrono::nanoseconds::max();
    const auto now = std::chrono::steady_clock::now();
    return now >= at_ ? std::chrono::nanoseconds(0)
                      : std::chrono::duration_cast<std::chrono::nanoseconds>(
                            at_ - now);
  }

 private:
  bool infinite_ = true;
  std::chrono::steady_clock::time_point at_{};
};

/// \brief Cooperative cancellation flag shared by value.
///
/// Copies alias the same flag: hand a token to concurrent trials /
/// chunks, call RequestCancel() from anywhere, and every holder observes
/// it. Default-constructed tokens each own a fresh (uncancelled) flag.
class CancellationToken {
 public:
  CancellationToken() : flag_(std::make_shared<std::atomic<bool>>(false)) {}

  /// Const: copies share one flag, so cancelling through any copy —
  /// including one captured by value in a lambda — is well-defined.
  void RequestCancel() const { flag_->store(true, std::memory_order_relaxed); }

  bool Cancelled() const { return flag_->load(std::memory_order_relaxed); }

 private:
  // Relaxed is enough (see util/annotations.h conventions): the flag is
  // a level-triggered stop signal polled by cooperative loops; no data
  // is published through it, so no acquire/release pairing is needed.
  std::shared_ptr<std::atomic<bool>> flag_;
};

/// Shared stop predicate for cooperative loops: cancelled or past due.
inline bool StopRequested(const Deadline& deadline,
                          const CancellationToken& cancel) {
  return cancel.Cancelled() || deadline.Expired();
}

}  // namespace autoview
