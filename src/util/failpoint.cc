#include "util/failpoint.h"

#include <cstdlib>

#include "util/logging.h"
#include "util/metrics.h"
#include "util/strings.h"

namespace autoview {

namespace {

/// SplitMix64 step: deterministic, cheap, good enough for fault rolls.
uint64_t NextRoll(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

double RollUniform01(uint64_t* state) {
  return static_cast<double>(NextRoll(state) >> 11) * 0x1.0p-53;
}

Result<FailAction> ParseAction(std::string_view token) {
  if (token == "error") return FailAction::kError;
  if (token == "nan") return FailAction::kNan;
  if (token == "corrupt") return FailAction::kCorrupt;
  return Status::InvalidArgument("unknown failpoint action: " +
                                 std::string(token));
}

}  // namespace

const char* FailActionName(FailAction action) {
  switch (action) {
    case FailAction::kNone:
      return "none";
    case FailAction::kError:
      return "error";
    case FailAction::kNan:
      return "nan";
    case FailAction::kCorrupt:
      return "corrupt";
  }
  return "?";
}

Failpoints::Failpoints() {
  if (const char* env = std::getenv("AUTOVIEW_FAILPOINTS")) {
    // A malformed env spec must not take the process down; Configure
    // leaves the registry disarmed in that case.
    const Status status = Configure(env);
    if (!status.ok()) {
      AV_LOG(Warning) << "ignoring AUTOVIEW_FAILPOINTS: " << status.ToString();
    }
  }
}

Failpoints& Failpoints::Instance() {
  static Failpoints instance;
  return instance;
}

Status Failpoints::Configure(const std::string& spec) {
  MutexLock lock(mu_);
  sites_.clear();
  rng_state_ = 0x41757456ull;  // fixed: reproducible fault sequences
  enabled_.store(false, std::memory_order_relaxed);
  for (const std::string& raw : Split(spec, ';')) {
    const std::string_view entry = Trim(raw);
    if (entry.empty()) continue;
    const size_t eq = entry.find('=');
    if (eq == std::string_view::npos || eq == 0) {
      sites_.clear();
      return Status::InvalidArgument("failpoint entry missing '=': " +
                                     std::string(entry));
    }
    Site site;
    site.name = std::string(Trim(entry.substr(0, eq)));
    std::string_view rhs = Trim(entry.substr(eq + 1));
    const size_t colon = rhs.find(':');
    std::string_view action_token =
        colon == std::string_view::npos ? rhs : rhs.substr(0, colon);
    auto action = ParseAction(Trim(action_token));
    if (!action.ok()) {
      sites_.clear();
      return action.status();
    }
    site.action = action.value();
    if (colon != std::string_view::npos) {
      const std::string prob_token(Trim(rhs.substr(colon + 1)));
      char* end = nullptr;
      site.probability = std::strtod(prob_token.c_str(), &end);
      if (end == prob_token.c_str() || *end != '\0' ||
          site.probability < 0.0 || site.probability > 1.0) {
        sites_.clear();
        return Status::InvalidArgument("failpoint probability not in [0,1]: " +
                                       prob_token);
      }
    }
    sites_.push_back(std::move(site));
  }
  enabled_.store(!sites_.empty(), std::memory_order_relaxed);
  return Status::OK();
}

void Failpoints::Clear() {
  MutexLock lock(mu_);
  sites_.clear();
  enabled_.store(false, std::memory_order_relaxed);
}

FailAction Failpoints::Evaluate(std::string_view site) {
  if (!enabled()) return FailAction::kNone;
  MutexLock lock(mu_);
  for (Site& s : sites_) {
    if (s.name != site) continue;
    if (s.probability < 1.0 && RollUniform01(&rng_state_) >= s.probability) {
      return FailAction::kNone;
    }
    ++s.hits;
    GlobalRobustness().RecordFaultInjected();
    return s.action;
  }
  return FailAction::kNone;
}

uint64_t Failpoints::hits(std::string_view site) const {
  MutexLock lock(mu_);
  for (const Site& s : sites_) {
    if (s.name == site) return s.hits;
  }
  return 0;
}

uint64_t Failpoints::total_hits() const {
  MutexLock lock(mu_);
  uint64_t total = 0;
  for (const Site& s : sites_) total += s.hits;
  return total;
}

}  // namespace autoview
