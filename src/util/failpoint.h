#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/annotations.h"
#include "util/status.h"

namespace autoview {

/// \brief What an armed failpoint injects at its site.
enum class FailAction {
  kNone = 0,  ///< site not armed (or probability roll missed)
  kError,     ///< the site returns an injected error Status
  kNan,       ///< the site produces NaN (numeric sites: model inference)
  kCorrupt,   ///< the site sees corrupted bytes (persistence sites)
};

const char* FailActionName(FailAction action);

/// \brief Process-wide fault-injection registry (compiled in always,
/// zero-cost when unset).
///
/// Sites are armed via the AUTOVIEW_FAILPOINTS environment variable (read
/// once at first use) or programmatically via Configure(). The spec is a
/// ';'-separated list of `site=action[:probability]` entries, e.g.
///
///   AUTOVIEW_FAILPOINTS=
///       "viewstore.materialize=error:0.5;wide_deep.infer=nan:0.1;serialize.load=corrupt"
///
/// Probability defaults to 1.0 (always fire). Rolls draw from a
/// deterministic per-registry PRNG so fault sequences are reproducible
/// for a fixed call order.
///
/// When no site is armed, AV_FAILPOINT() costs a single relaxed atomic
/// load — safe to leave in hot paths.
///
/// Wired sites (grep AV_FAILPOINT for the authoritative list):
///   viewstore.materialize  error    MaterializedViewStore::Materialize
///   viewstore.wal_append   error    ViewStateLog::Append (the WAL
///                                   commit point; callers roll back)
///   viewstore.wal_replay   corrupt  ViewStateLog::Replay (bit-flips the
///                                   log, exercising torn-tail handling)
///   viewstore.rematerialize error   recovery rebuilds (Recover)
///   wide_deep.infer        nan      WideDeepEstimator::Estimate
///   serialize.save         error    nn::SaveParameters (before rename)
///   serialize.load         corrupt  nn::LoadParameters (bit-flips buffer)
///   metadata.load          corrupt  MetadataStore::Load
///   executor.scan          error    Executor table scans
class Failpoints {
 public:
  /// The process-wide registry. First call reads AUTOVIEW_FAILPOINTS.
  static Failpoints& Instance();

  /// Replaces the configuration with `spec` (see class comment); an
  /// empty spec disarms everything. Returns InvalidArgument on a
  /// malformed entry (the registry is left disarmed in that case).
  Status Configure(const std::string& spec) AV_EXCLUDES(mu_);

  /// Disarms every site and resets hit counters.
  void Clear() AV_EXCLUDES(mu_);

  /// Fast check: is any site armed?
  bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Rolls the dice for `site`; returns the armed action when it fires.
  /// Sites that were never configured always return kNone.
  FailAction Evaluate(std::string_view site) AV_EXCLUDES(mu_);

  /// Number of times `site` actually fired (not just evaluated).
  uint64_t hits(std::string_view site) const AV_EXCLUDES(mu_);

  /// Total fires across all sites since the last Configure()/Clear().
  uint64_t total_hits() const AV_EXCLUDES(mu_);

 private:
  Failpoints();

  struct Site {
    std::string name;
    FailAction action = FailAction::kNone;
    double probability = 1.0;
    uint64_t hits = 0;
  };

  // Relaxed fast-path flag: only gates whether Evaluate bothers taking
  // mu_; the authoritative armed set is sites_ under the lock.
  std::atomic<bool> enabled_{false};
  mutable Mutex mu_;
  std::vector<Site> sites_ AV_GUARDED_BY(mu_);  // tiny; linear scan
  uint64_t rng_state_ AV_GUARDED_BY(mu_) = 0;   // SplitMix64 fault rolls
};

/// Evaluates a failpoint site; kNone when the registry is disarmed.
#define AV_FAILPOINT(site)                               \
  (::autoview::Failpoints::Instance().enabled()          \
       ? ::autoview::Failpoints::Instance().Evaluate(site) \
       : ::autoview::FailAction::kNone)

/// Returns an injected Internal error from the enclosing function when
/// `site` is armed with `error` and fires.
#define AV_FAILPOINT_STATUS(site)                                       \
  do {                                                                  \
    if (AV_FAILPOINT(site) == ::autoview::FailAction::kError) {         \
      return ::autoview::Status::Internal(                              \
          std::string("failpoint injected error at ") + (site));        \
    }                                                                   \
  } while (0)

}  // namespace autoview
