#pragma once

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace autoview {

/// \brief Log severities in increasing order.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the global minimum severity; messages below it are dropped.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

/// Stream-style log line emitter; flushes to stderr on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal

#define AV_LOG(level)                                                     \
  ::autoview::internal::LogMessage(::autoview::LogLevel::k##level, __FILE__, \
                                   __LINE__)

/// Fatal invariant check: prints and aborts when `cond` is false.
#define AV_CHECK(cond)                                                     \
  do {                                                                     \
    if (!(cond)) {                                                         \
      std::fprintf(stderr, "CHECK failed at %s:%d: %s\n", __FILE__,        \
                   __LINE__, #cond);                                       \
      std::abort();                                                        \
    }                                                                      \
  } while (0)

#define AV_CHECK_EQ(a, b) AV_CHECK((a) == (b))
#define AV_CHECK_LT(a, b) AV_CHECK((a) < (b))
#define AV_CHECK_LE(a, b) AV_CHECK((a) <= (b))
#define AV_CHECK_GT(a, b) AV_CHECK((a) > (b))
#define AV_CHECK_GE(a, b) AV_CHECK((a) >= (b))

}  // namespace autoview
