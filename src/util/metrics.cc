#include "util/metrics.h"

#include <cmath>
#include <limits>

namespace autoview {

void PoolCounters::RecordTask(uint64_t nanos) {
  tasks_run_.fetch_add(1, std::memory_order_relaxed);
  busy_nanos_.fetch_add(nanos, std::memory_order_relaxed);
}

void PoolCounters::RecordQueueDepth(uint64_t depth) {
  uint64_t seen = max_queue_depth_.load(std::memory_order_relaxed);
  while (depth > seen && !max_queue_depth_.compare_exchange_weak(
                             seen, depth, std::memory_order_relaxed)) {
  }
}

PoolCounters::Snapshot PoolCounters::Read() const {
  Snapshot s;
  s.tasks_run = tasks_run_.load(std::memory_order_relaxed);
  s.max_queue_depth = max_queue_depth_.load(std::memory_order_relaxed);
  s.busy_nanos = busy_nanos_.load(std::memory_order_relaxed);
  return s;
}

void RobustnessCounters::RecordFallback() {
  estimator_fallbacks_.fetch_add(1, std::memory_order_relaxed);
}

void RobustnessCounters::RecordFaultInjected() {
  faults_injected_.fetch_add(1, std::memory_order_relaxed);
}

void RobustnessCounters::RecordTimeout() {
  selection_timeouts_.fetch_add(1, std::memory_order_relaxed);
}

void RobustnessCounters::RecordRewriteFallback() {
  rewrite_fallbacks_.fetch_add(1, std::memory_order_relaxed);
}

RobustnessCounters::Snapshot RobustnessCounters::Read() const {
  Snapshot s;
  s.estimator_fallbacks = estimator_fallbacks_.load(std::memory_order_relaxed);
  s.faults_injected = faults_injected_.load(std::memory_order_relaxed);
  s.selection_timeouts = selection_timeouts_.load(std::memory_order_relaxed);
  s.rewrite_fallbacks = rewrite_fallbacks_.load(std::memory_order_relaxed);
  return s;
}

void RobustnessCounters::Reset() {
  estimator_fallbacks_.store(0, std::memory_order_relaxed);
  faults_injected_.store(0, std::memory_order_relaxed);
  selection_timeouts_.store(0, std::memory_order_relaxed);
  rewrite_fallbacks_.store(0, std::memory_order_relaxed);
}

RobustnessCounters& GlobalRobustness() {
  static RobustnessCounters counters;
  return counters;
}

void SelectionCounters::RecordUtilityCells(uint64_t cells) {
  utility_cells_.fetch_add(cells, std::memory_order_relaxed);
}

void SelectionCounters::RecordQueriesSolved(uint64_t queries) {
  queries_solved_.fetch_add(queries, std::memory_order_relaxed);
}

SelectionCounters::Snapshot SelectionCounters::Read() const {
  Snapshot s;
  s.utility_cells = utility_cells_.load(std::memory_order_relaxed);
  s.queries_solved = queries_solved_.load(std::memory_order_relaxed);
  return s;
}

void SelectionCounters::Reset() {
  utility_cells_.store(0, std::memory_order_relaxed);
  queries_solved_.store(0, std::memory_order_relaxed);
}

SelectionCounters& GlobalSelection() {
  static SelectionCounters counters;
  return counters;
}

void ViewStoreCounters::RecordEviction(uint64_t bytes) {
  evictions_.fetch_add(1, std::memory_order_relaxed);
  evicted_bytes_.fetch_add(bytes, std::memory_order_relaxed);
}

void ViewStoreCounters::RecordAdmissionRejected() {
  admissions_rejected_.fetch_add(1, std::memory_order_relaxed);
}

void ViewStoreCounters::RecordAsyncBuild() {
  async_builds_.fetch_add(1, std::memory_order_relaxed);
}

void ViewStoreCounters::RecordRecoveredView() {
  recovered_views_.fetch_add(1, std::memory_order_relaxed);
}

void ViewStoreCounters::RecordTornWalTail() {
  torn_wal_tails_.fetch_add(1, std::memory_order_relaxed);
}

void ViewStoreCounters::RecordDeferredEviction() {
  evictions_deferred_.fetch_add(1, std::memory_order_relaxed);
}

ViewStoreCounters::Snapshot ViewStoreCounters::Read() const {
  Snapshot s;
  s.evictions = evictions_.load(std::memory_order_relaxed);
  s.evicted_bytes = evicted_bytes_.load(std::memory_order_relaxed);
  s.admissions_rejected = admissions_rejected_.load(std::memory_order_relaxed);
  s.async_builds = async_builds_.load(std::memory_order_relaxed);
  s.recovered_views = recovered_views_.load(std::memory_order_relaxed);
  s.torn_wal_tails = torn_wal_tails_.load(std::memory_order_relaxed);
  s.evictions_deferred = evictions_deferred_.load(std::memory_order_relaxed);
  return s;
}

void ViewStoreCounters::Reset() {
  evictions_.store(0, std::memory_order_relaxed);
  evicted_bytes_.store(0, std::memory_order_relaxed);
  admissions_rejected_.store(0, std::memory_order_relaxed);
  async_builds_.store(0, std::memory_order_relaxed);
  recovered_views_.store(0, std::memory_order_relaxed);
  torn_wal_tails_.store(0, std::memory_order_relaxed);
  evictions_deferred_.store(0, std::memory_order_relaxed);
}

ViewStoreCounters& GlobalViewStore() {
  static ViewStoreCounters counters;
  return counters;
}

void RewriteCacheCounters::RecordHit() {
  hits_.fetch_add(1, std::memory_order_relaxed);
}

void RewriteCacheCounters::RecordMiss() {
  misses_.fetch_add(1, std::memory_order_relaxed);
}

void RewriteCacheCounters::RecordInsert() {
  inserts_.fetch_add(1, std::memory_order_relaxed);
}

void RewriteCacheCounters::RecordInvalidatedEntries(uint64_t entries) {
  invalidated_entries_.fetch_add(entries, std::memory_order_relaxed);
}

void RewriteCacheCounters::RecordInvalidationSweep() {
  invalidation_sweeps_.fetch_add(1, std::memory_order_relaxed);
}

void RewriteCacheCounters::RecordPinFailure() {
  pin_failures_.fetch_add(1, std::memory_order_relaxed);
}

RewriteCacheCounters::Snapshot RewriteCacheCounters::Read() const {
  Snapshot s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.inserts = inserts_.load(std::memory_order_relaxed);
  s.invalidated_entries =
      invalidated_entries_.load(std::memory_order_relaxed);
  s.invalidation_sweeps =
      invalidation_sweeps_.load(std::memory_order_relaxed);
  s.pin_failures = pin_failures_.load(std::memory_order_relaxed);
  return s;
}

void RewriteCacheCounters::Reset() {
  hits_.store(0, std::memory_order_relaxed);
  misses_.store(0, std::memory_order_relaxed);
  inserts_.store(0, std::memory_order_relaxed);
  invalidated_entries_.store(0, std::memory_order_relaxed);
  invalidation_sweeps_.store(0, std::memory_order_relaxed);
  pin_failures_.store(0, std::memory_order_relaxed);
}

RewriteCacheCounters& GlobalRewriteCache() {
  static RewriteCacheCounters counters;
  return counters;
}

namespace {
/// Library-boundary guard: mismatched inputs poison the metric (NaN)
/// instead of aborting the process.
double SizeMismatch() { return std::numeric_limits<double>::quiet_NaN(); }
}  // namespace

void RunningStat::Add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStat::variance() const {
  return n_ > 0 ? m2_ / static_cast<double>(n_) : 0.0;
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

double MeanAbsoluteError(const std::vector<double>& y,
                         const std::vector<double>& yhat) {
  if (y.size() != yhat.size()) return SizeMismatch();
  if (y.empty()) return 0.0;
  double total = 0.0;
  for (size_t i = 0; i < y.size(); ++i) total += std::fabs(y[i] - yhat[i]);
  return total / static_cast<double>(y.size());
}

double MeanAbsolutePercentError(const std::vector<double>& y,
                                const std::vector<double>& yhat, double eps) {
  if (y.size() != yhat.size()) return SizeMismatch();
  if (y.empty()) return 0.0;
  double total = 0.0;
  for (size_t i = 0; i < y.size(); ++i) {
    const double denom = std::fabs(y[i]) < eps ? eps : std::fabs(y[i]);
    total += std::fabs(y[i] - yhat[i]) / denom;
  }
  return total / static_cast<double>(y.size());
}

double RootMeanSquaredError(const std::vector<double>& y,
                            const std::vector<double>& yhat) {
  if (y.size() != yhat.size()) return SizeMismatch();
  if (y.empty()) return 0.0;
  double total = 0.0;
  for (size_t i = 0; i < y.size(); ++i) {
    const double d = y[i] - yhat[i];
    total += d * d;
  }
  return std::sqrt(total / static_cast<double>(y.size()));
}

double PearsonCorrelation(const std::vector<double>& y,
                          const std::vector<double>& yhat) {
  if (y.size() != yhat.size()) return SizeMismatch();
  const size_t n = y.size();
  if (n == 0) return 0.0;
  double my = 0, mh = 0;
  for (size_t i = 0; i < n; ++i) {
    my += y[i];
    mh += yhat[i];
  }
  my /= static_cast<double>(n);
  mh /= static_cast<double>(n);
  double num = 0, dy = 0, dh = 0;
  for (size_t i = 0; i < n; ++i) {
    num += (y[i] - my) * (yhat[i] - mh);
    dy += (y[i] - my) * (y[i] - my);
    dh += (yhat[i] - mh) * (yhat[i] - mh);
  }
  if (dy <= 0 || dh <= 0) return 0.0;
  return num / std::sqrt(dy * dh);
}

}  // namespace autoview
