#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace autoview {

/// \brief Lock-free execution counters of one ThreadPool, so parallel
/// speedup is observable without a profiler: tasks executed, the highest
/// queue depth seen, and total busy wall time across workers.
class PoolCounters {
 public:
  /// Records one completed task that ran for `nanos` wall nanoseconds.
  void RecordTask(uint64_t nanos);

  /// Records the queue depth observed after an enqueue (keeps the max).
  void RecordQueueDepth(uint64_t depth);

  /// Consistent-enough point-in-time copy for reporting.
  struct Snapshot {
    uint64_t tasks_run = 0;        ///< tasks executed by workers
    uint64_t max_queue_depth = 0;  ///< peak backlog
    uint64_t busy_nanos = 0;       ///< summed per-task wall time
  };
  Snapshot Read() const;

 private:
  // Monotonic relaxed counters (see util/annotations.h conventions):
  // each is independently meaningful, no cross-counter invariant is
  // promised, so Snapshot tolerates torn reads between fields.
  std::atomic<uint64_t> tasks_run_{0};
  std::atomic<uint64_t> max_queue_depth_{0};  // CAS-max loop
  std::atomic<uint64_t> busy_nanos_{0};
};

/// \brief Lock-free counters of the robustness layer: estimator
/// fallbacks to the traditional cost model, injected faults (see
/// util/failpoint.h), and selector deadline timeouts. A process-wide
/// instance is reachable via GlobalRobustness() so operators can tell
/// *how degraded* a run was, not just that it completed.
class RobustnessCounters {
 public:
  /// One per-call fallback from a learned estimator to the traditional
  /// cost model (NaN/Inf output or failed model load).
  void RecordFallback();

  /// One fault actually injected by an armed failpoint.
  void RecordFaultInjected();

  /// One selector Select() call that hit its deadline and returned its
  /// best-so-far incumbent.
  void RecordTimeout();

  /// One Rewrite/RewriteAll call that matched a view whose backing table
  /// was concurrently evicted/dropped and fell back to the base-table
  /// plan instead of failing the query.
  void RecordRewriteFallback();

  struct Snapshot {
    uint64_t estimator_fallbacks = 0;
    uint64_t faults_injected = 0;
    uint64_t selection_timeouts = 0;
    uint64_t rewrite_fallbacks = 0;
  };
  Snapshot Read() const;

  /// Zeroes every counter (tests).
  void Reset();

 private:
  // Relaxed: hammered from pool workers on degraded paths; only the
  // per-counter totals matter, never ordering between them (enforced at
  // runtime by tests/static_analysis_test.cc).
  std::atomic<uint64_t> estimator_fallbacks_{0};
  std::atomic<uint64_t> faults_injected_{0};
  std::atomic<uint64_t> selection_timeouts_{0};
  std::atomic<uint64_t> rewrite_fallbacks_{0};
};

/// The process-wide robustness counters.
RobustnessCounters& GlobalRobustness();

/// \brief Lock-free work counters of the selection engines, so the
/// naive-vs-incremental cost claims are verifiable by observation (not
/// just wall time): how many benefit cells each utility/reward
/// evaluation touched and how many per-query Y-Opt re-solves ran. The
/// naive paths charge the dense |Q|x|Z| scan they perform; the
/// incremental paths charge only the sparse support they actually read.
class SelectionCounters {
 public:
  /// Benefit-matrix cells read while computing a utility (or a DQN
  /// reward, which is a utility delta).
  void RecordUtilityCells(uint64_t cells);

  /// Per-query exact Y-Opt solves executed.
  void RecordQueriesSolved(uint64_t queries);

  struct Snapshot {
    uint64_t utility_cells = 0;   ///< cells read by utility/reward evals
    uint64_t queries_solved = 0;  ///< per-query Y-Opt invocations
  };
  Snapshot Read() const;

  /// Zeroes every counter (tests, benches).
  void Reset();

 private:
  // Relaxed (see util/annotations.h conventions): hammered from pool
  // workers in parallel trials; only per-counter totals matter, no
  // cross-counter ordering is promised.
  std::atomic<uint64_t> utility_cells_{0};
  std::atomic<uint64_t> queries_solved_{0};
};

/// The process-wide selection-work counters.
SelectionCounters& GlobalSelection();

/// \brief Lock-free counters of the budgeted view store, so a run can
/// report *how* the cache behaved — not just the final contents: budget
/// evictions, admissions the budget rejected outright, background
/// builds, and WAL recovery outcomes. A process-wide instance is
/// reachable via GlobalViewStore() (the loadgen JSON reports it).
class ViewStoreCounters {
 public:
  /// One view dropped by the eviction policy to make room (`bytes` is
  /// its stored size, accumulated into evicted_bytes).
  void RecordEviction(uint64_t bytes);

  /// One Materialize the budget rejected outright (view larger than the
  /// whole budget, or every resident view pinned).
  void RecordAdmissionRejected();

  /// One (re)materialization executed on the background pool.
  void RecordAsyncBuild();

  /// One committed view restored by Recover() replay.
  void RecordRecoveredView();

  /// One torn / checksum-failed WAL tail discarded by replay.
  void RecordTornWalTail();

  /// One over-budget admission whose eviction was deferred to the
  /// background sweep worker instead of running inline.
  void RecordDeferredEviction();

  struct Snapshot {
    uint64_t evictions = 0;
    uint64_t evicted_bytes = 0;
    uint64_t admissions_rejected = 0;
    uint64_t async_builds = 0;
    uint64_t recovered_views = 0;
    uint64_t torn_wal_tails = 0;
    uint64_t evictions_deferred = 0;
  };
  Snapshot Read() const;

  /// Zeroes every counter (tests, benches).
  void Reset();

 private:
  // Relaxed (see util/annotations.h conventions): bumped under the
  // store mutex or from pool workers; only per-counter totals matter,
  // no cross-counter ordering is promised.
  std::atomic<uint64_t> evictions_{0};
  std::atomic<uint64_t> evicted_bytes_{0};
  std::atomic<uint64_t> admissions_rejected_{0};
  std::atomic<uint64_t> async_builds_{0};
  std::atomic<uint64_t> recovered_views_{0};
  std::atomic<uint64_t> torn_wal_tails_{0};
  std::atomic<uint64_t> evictions_deferred_{0};
};

/// The process-wide view-store counters.
ViewStoreCounters& GlobalViewStore();

/// \brief Lock-free counters of the serving-path rewrite cache, so a run
/// can report how much of the rewrite work was amortized away: hits
/// (plan served from cache), misses (full indexed walk ran), inserts,
/// entries invalidated by generation swaps, whole-cache invalidation
/// sweeps, and hits discarded because a cached view could no longer be
/// pinned. A process-wide instance is reachable via GlobalRewriteCache()
/// (the loadgen JSON reports hit/miss deltas per run).
class RewriteCacheCounters {
 public:
  /// One Lookup that returned a cached rewrite (and re-pinned its views).
  void RecordHit();

  /// One Lookup that found nothing for (key, generation).
  void RecordMiss();

  /// One rewrite result inserted into the cache.
  void RecordInsert();

  /// `entries` cache entries dropped by an invalidation sweep.
  void RecordInvalidatedEntries(uint64_t entries);

  /// One InvalidateBefore sweep (CommitSwap generation bump).
  void RecordInvalidationSweep();

  /// One cached entry discarded because PinViews failed on its view ids
  /// (a referenced view was evicted within the same generation).
  void RecordPinFailure();

  struct Snapshot {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t inserts = 0;
    uint64_t invalidated_entries = 0;
    uint64_t invalidation_sweeps = 0;
    uint64_t pin_failures = 0;
  };
  Snapshot Read() const;

  /// Zeroes every counter (tests, benches).
  void Reset();

 private:
  // Relaxed (see util/annotations.h conventions): hammered from serving
  // threads; only per-counter totals matter, no cross-counter ordering
  // is promised.
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> inserts_{0};
  std::atomic<uint64_t> invalidated_entries_{0};
  std::atomic<uint64_t> invalidation_sweeps_{0};
  std::atomic<uint64_t> pin_failures_{0};
};

/// The process-wide rewrite-cache counters.
RewriteCacheCounters& GlobalRewriteCache();

/// \brief Streaming mean / variance / min / max accumulator (Welford).
class RunningStat {
 public:
  void Add(double x);
  size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  /// Population variance.
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }
  double sum() const { return sum_; }

 private:
  size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Mean Absolute Error between ground truth `y` and predictions `yhat`.
/// These evaluation helpers are library boundaries: a size mismatch
/// between the two vectors yields quiet NaN instead of aborting.
double MeanAbsoluteError(const std::vector<double>& y,
                         const std::vector<double>& yhat);

/// Mean Absolute Percent Error; ground-truth entries with |y| < eps are
/// clamped to eps to avoid division blow-ups (matching common practice).
double MeanAbsolutePercentError(const std::vector<double>& y,
                                const std::vector<double>& yhat,
                                double eps = 1e-9);

/// Root mean squared error.
double RootMeanSquaredError(const std::vector<double>& y,
                            const std::vector<double>& yhat);

/// Pearson correlation coefficient; 0 when either side is constant.
double PearsonCorrelation(const std::vector<double>& y,
                          const std::vector<double>& yhat);

}  // namespace autoview
