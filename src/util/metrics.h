#pragma once

#include <cstddef>
#include <vector>

namespace autoview {

/// \brief Streaming mean / variance / min / max accumulator (Welford).
class RunningStat {
 public:
  void Add(double x);
  size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  /// Population variance.
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }
  double sum() const { return sum_; }

 private:
  size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Mean Absolute Error between ground truth `y` and predictions `yhat`.
double MeanAbsoluteError(const std::vector<double>& y,
                         const std::vector<double>& yhat);

/// Mean Absolute Percent Error; ground-truth entries with |y| < eps are
/// clamped to eps to avoid division blow-ups (matching common practice).
double MeanAbsolutePercentError(const std::vector<double>& y,
                                const std::vector<double>& yhat,
                                double eps = 1e-9);

/// Root mean squared error.
double RootMeanSquaredError(const std::vector<double>& y,
                            const std::vector<double>& yhat);

/// Pearson correlation coefficient; 0 when either side is constant.
double PearsonCorrelation(const std::vector<double>& y,
                          const std::vector<double>& yhat);

}  // namespace autoview
