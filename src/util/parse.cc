#include "util/parse.h"

#include <charconv>
#include <cmath>
#include <limits>
#include <string>

namespace autoview {
namespace {

std::string Quoted(std::string_view text) {
  std::string quoted;
  quoted.reserve(text.size() + 2);
  quoted.push_back('"');
  quoted.append(text);
  quoted.push_back('"');
  return quoted;
}

}  // namespace

Status ParseUint64(std::string_view text, uint64_t* out) {
  // from_chars with an unsigned type already rejects '-' and '+', but
  // check emptiness up front for a clearer message.
  if (text.empty()) {
    return Status::ParseError("expected unsigned integer, got empty string");
  }
  uint64_t value = 0;
  const char* const end = text.data() + text.size();
  const auto [ptr, ec] = std::from_chars(text.data(), end, value, 10);
  if (ec == std::errc::result_out_of_range) {
    return Status::ParseError("integer out of range: " + Quoted(text));
  }
  if (ec != std::errc() || ptr != end) {
    return Status::ParseError("not an unsigned integer: " + Quoted(text));
  }
  *out = value;
  return Status::OK();
}

Status ParseSize(std::string_view text, size_t* out) {
  uint64_t value = 0;
  AV_RETURN_NOT_OK(ParseUint64(text, &value));
  if constexpr (sizeof(size_t) < sizeof(uint64_t)) {
    if (value > std::numeric_limits<size_t>::max()) {
      return Status::ParseError("integer out of range: " + Quoted(text));
    }
  }
  *out = static_cast<size_t>(value);
  return Status::OK();
}

Status ParseDouble(std::string_view text, double* out) {
  if (text.empty()) {
    return Status::ParseError("expected number, got empty string");
  }
  double value = 0;
  const char* const end = text.data() + text.size();
  // chars_format::general: decimal and exponent forms only — no hex
  // floats, and from_chars is locale-independent by construction.
  const auto [ptr, ec] =
      std::from_chars(text.data(), end, value, std::chars_format::general);
  if (ec == std::errc::result_out_of_range) {
    return Status::ParseError("number out of range: " + Quoted(text));
  }
  if (ec != std::errc() || ptr != end || !std::isfinite(value)) {
    return Status::ParseError("not a number: " + Quoted(text));
  }
  *out = value;
  return Status::OK();
}

}  // namespace autoview
