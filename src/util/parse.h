#pragma once

#include <cstdint>
#include <string_view>

#include "util/status.h"

namespace autoview {

/// \brief Strict numeric parsing shared by flag and env-var handling.
///
/// These wrap std::from_chars (and a guarded strtod for doubles) with
/// whole-string semantics: the entire input must be consumed, and any
/// sign, overflow, or trailing junk is a ParseError. This matters for
/// config surfaces like AUTOVIEW_VIEW_BUDGET_BYTES where the strtoull
/// family silently wraps "-1" to ULLONG_MAX — turning an obvious typo
/// into "effectively unbounded" with no diagnostic.
///
/// On error the output parameter is left untouched, so callers keep
/// their defaults.

/// Parses a full decimal uint64. Rejects empty input, signs,
/// non-digits, trailing characters, and values that overflow uint64.
Status ParseUint64(std::string_view text, uint64_t* out);

/// Parses a full decimal size_t via ParseUint64 (range-checked when
/// size_t is narrower than uint64).
Status ParseSize(std::string_view text, size_t* out);

/// Parses a full floating-point literal (decimal or exponent form).
/// Rejects empty input, trailing characters, hex floats, inf/nan, and
/// out-of-range magnitudes.
Status ParseDouble(std::string_view text, double* out);

}  // namespace autoview
