#include "util/random.h"

#include <algorithm>
#include <cmath>
#include <numbers>

namespace autoview {

namespace {

uint64_t SplitMix64(uint64_t* x) {
  uint64_t z = (*x += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

void Rng::Seed(uint64_t seed) {
  for (auto& s : state_) s = SplitMix64(&seed);
}

uint64_t Rng::StreamSeed(uint64_t seed, uint64_t stream) {
  // Jump the SplitMix64 sequence by `stream + 1` increments, then mix
  // once more, so stream 0 differs from the raw seed as well.
  uint64_t x = seed + (stream + 1) * 0x9e3779b97f4a7c15ULL;
  return SplitMix64(&x);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  const uint64_t range = static_cast<uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<int64_t>(Next());  // full 64-bit range
  // Rejection sampling to avoid modulo bias.
  const uint64_t limit = UINT64_MAX - UINT64_MAX % range;
  uint64_t r;
  do {
    r = Next();
  } while (r >= limit);
  return lo + static_cast<int64_t>(r % range);
}

double Rng::Uniform01() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform01(); }

double Rng::Normal(double mean, double stddev) {
  // Box-Muller; discard the second variate for simplicity.
  double u1 = Uniform01();
  double u2 = Uniform01();
  while (u1 <= 1e-300) u1 = Uniform01();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * mag * std::cos(2.0 * std::numbers::pi * u2);
}

int64_t Rng::Zipf(int64_t n, double s) {
  if (n <= 1) return 0;
  if (s <= 0.0) return UniformInt(0, n - 1);
  auto [it, inserted] = zipf_cdf_.try_emplace({n, s});
  std::vector<double>& cdf = it->second;
  if (inserted) {
    cdf.resize(static_cast<size_t>(n));
    double total = 0.0;
    for (int64_t k = 0; k < n; ++k) {
      total += std::pow(static_cast<double>(k + 1), -s);
      cdf[static_cast<size_t>(k)] = total;
    }
  }
  const double r = Uniform(0.0, cdf.back());
  const auto pos = std::lower_bound(cdf.begin(), cdf.end(), r);
  return static_cast<int64_t>(pos - cdf.begin());
}

size_t Rng::WeightedIndex(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) total += w > 0 ? w : 0.0;
  if (total <= 0.0) return 0;
  double r = Uniform(0.0, total);
  for (size_t i = 0; i < weights.size(); ++i) {
    const double w = weights[i] > 0 ? weights[i] : 0.0;
    if (r < w) return i;
    r -= w;
  }
  return weights.size() - 1;
}

}  // namespace autoview
