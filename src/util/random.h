#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <utility>
#include <vector>

namespace autoview {

/// \brief Deterministic 64-bit PRNG (xoshiro256** seeded via SplitMix64).
///
/// Every stochastic component in the library (data generation, model
/// initialization, IterView flips, DQN exploration) draws from an Rng so
/// experiments are bit-reproducible under a fixed seed.
class Rng {
 public:
  explicit Rng(uint64_t seed = 42) { Seed(seed); }

  /// Re-seeds the generator; identical seeds give identical streams.
  void Seed(uint64_t seed);

  /// Derives a decorrelated sub-stream seed from (seed, stream) via the
  /// SplitMix64 finalizer. Parallel trials seed one Rng per stream so
  /// results are independent of how trials are scheduled across threads.
  static uint64_t StreamSeed(uint64_t seed, uint64_t stream);

  /// Next raw 64-bit value.
  uint64_t Next();

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double Uniform01();

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// Standard normal via Box-Muller.
  double Normal(double mean = 0.0, double stddev = 1.0);

  /// Bernoulli trial with success probability p.
  bool Bernoulli(double p) { return Uniform01() < p; }

  /// Zipf-distributed rank in [0, n) with exponent `s` (s = 0 => uniform).
  /// Samples by binary search over a cached cumulative weight table per
  /// (n, s) pair, robust for any s >= 0 including s == 1.
  int64_t Zipf(int64_t n, double s);

  /// Fisher-Yates shuffle of `v`.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      size_t j = static_cast<size_t>(UniformInt(0, static_cast<int64_t>(i) - 1));
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

  /// Samples an index in [0, weights.size()) proportionally to weights.
  size_t WeightedIndex(const std::vector<double>& weights);

 private:
  uint64_t state_[4];
  // Cumulative Zipf weights keyed by (n, s); see Zipf().
  std::map<std::pair<int64_t, double>, std::vector<double>> zipf_cdf_;
};

}  // namespace autoview
