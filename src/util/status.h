#pragma once

#include <optional>
#include <string>
#include <utility>
#include <variant>

namespace autoview {

/// \brief Error categories used across the library.
///
/// The library follows the Arrow/RocksDB convention of returning a Status
/// (or Result<T>) from any operation that can fail, instead of throwing.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kParseError,
  kTypeError,
  kUnsupported,
  kResourceExhausted,
  kInternal,
};

/// \brief Human-readable name of a StatusCode (e.g. "InvalidArgument").
const char* StatusCodeName(StatusCode code);

/// \brief A success-or-error outcome carrying a code and a message.
///
/// [[nodiscard]]: silently dropping a Status is how a failed WAL append
/// or materialization turns into a wedged server, so both the compiler
/// and tools/avcheck (`discarded-status`) flag any call site that
/// ignores one. Intentional discards must be spelled
/// `(void)Call();  // <why ignoring is safe>` — the cast plus a
/// rationale comment is the form the checker recognizes.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status TypeError(std::string msg) {
    return Status(StatusCode::kTypeError, std::move(msg));
  }
  static Status Unsupported(std::string msg) {
    return Status(StatusCode::kUnsupported, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Returns "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// \brief Either a value of type T or an error Status.
///
/// [[nodiscard]] for the same reason as Status: a dropped Result hides
/// the error half of the outcome.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : value_(std::in_place_index<0>, std::move(value)) {}
  /// Implicit construction from a non-OK Status (error).
  Result(Status status) : value_(std::in_place_index<1>, std::move(status)) {}

  bool ok() const { return value_.index() == 0; }

  const T& value() const& { return std::get<0>(value_); }
  T& value() & { return std::get<0>(value_); }
  T&& value() && { return std::get<0>(std::move(value_)); }

  /// Status of this result; OK when a value is present.
  Status status() const {
    return ok() ? Status::OK() : std::get<1>(value_);
  }

  /// Returns the value, or `fallback` when this holds an error.
  T ValueOr(T fallback) const {
    return ok() ? std::get<0>(value_) : std::move(fallback);
  }

 private:
  std::variant<T, Status> value_;
};

/// Propagates a non-OK status to the caller.
#define AV_RETURN_NOT_OK(expr)                \
  do {                                        \
    ::autoview::Status _st = (expr);          \
    if (!_st.ok()) return _st;                \
  } while (0)

#define AV_CONCAT_INNER(a, b) a##b
#define AV_CONCAT(a, b) AV_CONCAT_INNER(a, b)

#define AV_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                             \
  if (!tmp.ok()) return tmp.status();            \
  lhs = std::move(tmp).value();

/// Assigns the value of a Result expression or propagates its error.
#define AV_ASSIGN_OR_RETURN(lhs, expr) \
  AV_ASSIGN_OR_RETURN_IMPL(AV_CONCAT(_av_res_, __LINE__), lhs, expr)

}  // namespace autoview
