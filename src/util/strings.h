#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace autoview {

/// Joins `parts` with `sep` ("a", "b" -> "a,b").
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Splits `s` on the single character `sep`; keeps empty fields.
std::vector<std::string> Split(std::string_view s, char sep);

/// ASCII lower-casing.
std::string ToLower(std::string_view s);

/// ASCII upper-casing.
std::string ToUpper(std::string_view s);

/// Removes leading/trailing whitespace.
std::string_view Trim(std::string_view s);

/// True if `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Renders a double with `digits` significant decimals, trimming zeros.
std::string FormatDouble(double v, int digits = 4);

/// Human-readable count: 1234 -> "1.2K", 2500000 -> "2.5M".
std::string HumanCount(double v);

}  // namespace autoview
