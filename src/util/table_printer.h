#pragma once

#include <string>
#include <vector>

namespace autoview {

/// \brief Renders aligned plain-text tables; used by the benchmark
/// harness to print paper-style tables.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  /// Appends a row; it may have fewer cells than the header (padded).
  void AddRow(std::vector<std::string> row);

  /// Renders the table with a header separator line.
  std::string ToString() const;

  /// Renders and writes to stdout.
  void Print() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace autoview
