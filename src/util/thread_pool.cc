#include "util/thread_pool.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <exception>
#include <string>

namespace autoview {

namespace {

/// Set for the lifetime of a worker thread; lets nested Submit /
/// ParallelFor calls detect that they are already on a pool worker.
thread_local bool tls_in_worker = false;

}  // namespace

bool ThreadPool::InWorker() { return tls_in_worker; }

ThreadPool::ThreadPool(size_t num_threads) {
  const size_t n = std::max<size_t>(1, num_threads);
  threads_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mu_);
    stop_ = true;
  }
  cv_.NotifyAll();
  for (auto& t : threads_) t.join();
}

void ThreadPool::Enqueue(std::function<void()> task) {
  size_t depth;
  {
    MutexLock lock(mu_);
    queue_.push_back(std::move(task));
    depth = queue_.size();
  }
  counters_.RecordQueueDepth(depth);
  cv_.NotifyOne();
}

void ThreadPool::WorkerLoop() {
  tls_in_worker = true;
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mu_);
      // Predicate inlined (not a wait-lambda) so the thread-safety
      // analysis sees the guarded reads under the held lock.
      // avcheck:allow(blocking-under-lock): CondVar::Wait atomically
      // releases mu_ while sleeping — this is the idle-worker park, not
      // work done under the lock.
      while (!stop_ && queue_.empty()) cv_.Wait(mu_);
      if (queue_.empty()) return;  // stop_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    const auto start = std::chrono::steady_clock::now();
    task();  // packaged_task: exceptions land in the paired future
    const auto elapsed = std::chrono::steady_clock::now() - start;
    counters_.RecordTask(static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
            .count()));
  }
}

void ThreadPool::ParallelFor(size_t begin, size_t end,
                             const std::function<void(size_t)>& fn,
                             size_t grain, const CancellationToken* cancel) {
  if (begin >= end) return;
  const size_t range = end - begin;
  grain = std::max<size_t>(1, grain);

  // Inline when parallelism cannot help (single worker, tiny range) or
  // must not be used (already on a worker; see class comment).
  if (InWorker() || size() <= 1 || range <= grain) {
    for (size_t i = begin; i < end; ++i) {
      if (cancel && cancel->Cancelled()) return;
      fn(i);
    }
    return;
  }

  // Oversubscribe chunks 4x relative to workers so uneven per-index
  // costs still balance, subject to the `grain` floor.
  const size_t target_chunks = std::min(range, size() * 4);
  const size_t chunk = std::max(grain, (range + target_chunks - 1) / target_chunks);

  // Shared by all chunks of this call: tripped by the first throwing
  // chunk so queued-but-unstarted chunks skip instead of running to
  // completion behind a failure.
  CancellationToken failed;
  std::vector<std::future<void>> futures;
  futures.reserve((range + chunk - 1) / chunk);
  for (size_t lo = begin; lo < end; lo += chunk) {
    const size_t hi = std::min(end, lo + chunk);
    futures.push_back(Submit([&fn, lo, hi, failed, cancel] {
      if (failed.Cancelled() || (cancel && cancel->Cancelled())) return;
      try {
        for (size_t i = lo; i < hi; ++i) fn(i);
      } catch (...) {
        failed.RequestCancel();
        throw;  // lands in the chunk's future
      }
    }));
  }
  // Waiting in chunk order makes the rethrown exception (if any) the one
  // from the lowest-index chunk that ran and failed, independent of
  // scheduling; chunks cancelled by an earlier failure resolve cleanly.
  std::exception_ptr first_error;
  for (auto& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

size_t DefaultThreadCount() {
  if (const char* env = std::getenv("AUTOVIEW_THREADS")) {
    char* end = nullptr;
    const long parsed = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && parsed > 0) {
      return static_cast<size_t>(parsed);
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<size_t>(hw) : 1;
}

ThreadPool& DefaultPool() {
  static ThreadPool pool(DefaultThreadCount());
  return pool;
}

}  // namespace autoview
