#pragma once

#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <thread>
#include <type_traits>
#include <vector>

#include "util/annotations.h"
#include "util/deadline.h"
#include "util/metrics.h"

namespace autoview {

/// \brief Fixed-size FIFO thread pool (no work stealing).
///
/// The pool backs the embarrassingly parallel hot paths of the system:
/// multi-restart IterView trials, batched Wide-Deep inference over the
/// benefit matrix, and subquery extraction / overlap detection. Every
/// caller is required to produce results that are bit-identical to a
/// sequential run, so the pool deliberately offers only order-free
/// primitives: tasks write to disjoint output slots and all reductions
/// happen on the calling thread in index order.
///
/// Nested use is safe by construction: Submit() and ParallelFor() called
/// from inside a pool worker execute inline on that worker instead of
/// enqueueing, so a task that blocks on work it spawned can never
/// deadlock the (fixed) worker set.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (clamped to >= 1).
  explicit ThreadPool(size_t num_threads);

  /// Drains outstanding tasks, then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t size() const { return threads_.size(); }

  /// Schedules `fn` and returns a future for its result. Exceptions
  /// thrown by `fn` are captured and rethrown from future::get().
  /// Called from a pool worker, runs inline (see class comment).
  template <typename F>
  auto Submit(F&& fn) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> future = task->get_future();
    if (InWorker() || size() == 0) {
      (*task)();
    } else {
      Enqueue([task] { (*task)(); });
    }
    return future;
  }

  /// Runs `fn(i)` for every i in [begin, end), blocking until all
  /// scheduled indices completed. Indices are chunked into contiguous
  /// ranges of at least `grain` each; the order in which chunks execute
  /// is unspecified, so `fn` must only touch per-index state (e.g. slot
  /// i of a preallocated output vector).
  ///
  /// If any invocation throws, remaining *queued* chunks are cancelled
  /// (they never run) and the exception of the lowest-index chunk that
  /// actually ran and failed is rethrown; chunks already executing
  /// finish normally.
  ///
  /// `cancel`, when given, is polled before each chunk (and between
  /// indices on the inline path): once cancelled, remaining indices are
  /// skipped without error. Callers that pass a token must therefore
  /// tolerate partially-filled outputs.
  void ParallelFor(size_t begin, size_t end,
                   const std::function<void(size_t)>& fn, size_t grain = 1,
                   const CancellationToken* cancel = nullptr);

  /// Per-pool execution counters (see PoolCounters).
  const PoolCounters& counters() const { return counters_; }

  /// True when the calling thread is a worker of *any* ThreadPool.
  static bool InWorker();

 private:
  void Enqueue(std::function<void()> task) AV_EXCLUDES(mu_);
  void WorkerLoop() AV_EXCLUDES(mu_);

  std::vector<std::thread> threads_;
  Mutex mu_;
  std::deque<std::function<void()>> queue_ AV_GUARDED_BY(mu_);
  bool stop_ AV_GUARDED_BY(mu_) = false;
  CondVar cv_;
  PoolCounters counters_;  // internally atomic; see PoolCounters
};

/// Number of threads the default pool uses: the AUTOVIEW_THREADS
/// environment variable when set to a positive integer, otherwise
/// std::thread::hardware_concurrency() (at least 1).
size_t DefaultThreadCount();

/// Lazily constructed process-wide pool of DefaultThreadCount() workers.
ThreadPool& DefaultPool();

}  // namespace autoview
