#include "workload/generator.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <functional>

#include "util/logging.h"
#include "util/strings.h"

namespace autoview {

namespace {

/// Adds a table of `rows` rows whose columns are produced by callbacks.
struct ColumnGen {
  std::string name;
  ColumnType type;
  std::function<Value(size_t row, Rng*)> make;
};

void AddGeneratedTable(Database* db, const std::string& name, size_t rows,
                       const std::vector<ColumnGen>& columns, Rng* rng) {
  std::vector<ColumnSchema> schema_cols;
  for (const auto& col : columns) schema_cols.push_back({col.name, col.type});
  std::vector<Row> data;
  data.reserve(rows);
  for (size_t r = 0; r < rows; ++r) {
    Row row;
    row.reserve(columns.size());
    for (const auto& col : columns) row.push_back(col.make(r, rng));
    data.push_back(std::move(row));
  }
  AV_CHECK(db->AddTable(TableSchema(name, std::move(schema_cols)),
                        std::move(data))
               .ok());
}

Value IntVal(int64_t v) { return Value(v); }

}  // namespace

// ---------------------------------------------------------------------------
// Cloud workload (WK1 / WK2 substitution)
// ---------------------------------------------------------------------------

GeneratedWorkload GenerateCloudWorkload(const CloudWorkloadSpec& spec) {
  GeneratedWorkload workload;
  workload.name = spec.name;
  workload.db = std::make_unique<Database>();
  workload.num_projects = spec.projects;
  Rng rng(spec.seed);

  const std::vector<std::string> kDates = {"2020-01-01", "2020-01-02",
                                           "2020-01-03", "2020-01-04"};
  const std::vector<std::string> kRegions = {"north", "south", "east",
                                             "west", "center"};
  const std::vector<std::string> kCategories = {
      "food", "tech", "toys", "books", "sports", "home"};

  struct Project {
    std::string events, users, items, logs;
    int64_t n_users, n_items;
    std::vector<std::string> pool;        ///< derived-table SQL snippets
    std::vector<int> pool_kind;           ///< 0=events,1=users,2=join,3=items
  };
  std::vector<Project> projects(spec.projects);

  // Derived-table body of the given kind with fresh random literals.
  auto make_snippet = [&](const Project& proj, int kind,
                          Rng* r) -> std::string {
    switch (kind) {
      case 0: {  // filtered events
        // The wide `value` domain keeps one-off subqueries distinct, so
        // the shared_fraction knob (not literal collisions) controls the
        // redundancy rate (Fig. 1).
        const auto& dt = kDates[static_cast<size_t>(
            r->UniformInt(0, static_cast<int64_t>(kDates.size()) - 1))];
        return StrFormat(
            "select user_id, item_id, value from %s where dt = '%s' and "
            "type = %lld and value < %lld",
            proj.events.c_str(), dt.c_str(),
            static_cast<long long>(r->UniformInt(0, 5)),
            static_cast<long long>(r->UniformInt(30, 99)));
      }
      case 1:  // filtered users
        return StrFormat("select user_id, region from %s where age > %lld",
                         proj.users.c_str(),
                         static_cast<long long>(r->UniformInt(20, 64)));
      case 2: {  // join subquery: events x users (overlaps kinds 0/1)
        const auto& dt = kDates[static_cast<size_t>(
            r->UniformInt(0, static_cast<int64_t>(kDates.size()) - 1))];
        return StrFormat(
            "select e.user_id as user_id, e.value as value, u.region as "
            "region from (select user_id, item_id, value from %s where dt "
            "= '%s' and type = %lld and value < %lld) e inner join (select "
            "user_id, region from %s where age > %lld) u on e.user_id = "
            "u.user_id",
            proj.events.c_str(), dt.c_str(),
            static_cast<long long>(r->UniformInt(0, 5)),
            static_cast<long long>(r->UniformInt(30, 99)),
            proj.users.c_str(),
            static_cast<long long>(r->UniformInt(20, 64)));
      }
      default:  // filtered items
        return StrFormat("select item_id, category from %s where price < %lld",
                         proj.items.c_str(),
                         static_cast<long long>(r->UniformInt(100, 450)));
    }
  };

  for (size_t p = 0; p < spec.projects; ++p) {
    Project& proj = projects[p];
    const std::string prefix = "p" + std::to_string(p) + "_";
    proj.events = prefix + "events";
    proj.users = prefix + "users";
    proj.items = prefix + "items";
    proj.logs = prefix + "logs";

    const size_t fact_rows = static_cast<size_t>(
        rng.UniformInt(static_cast<int64_t>(spec.min_rows),
                       static_cast<int64_t>(spec.max_rows)));
    proj.n_users = std::max<int64_t>(20, static_cast<int64_t>(fact_rows) / 8);
    proj.n_items = std::max<int64_t>(10, static_cast<int64_t>(fact_rows) / 16);

    // `dt` and `type` are strongly correlated (most rows of a date carry
    // one dominant type): conjunctive predicates over them break the
    // optimizer's independence assumption, which is what makes the
    // paper's `Optimizer` baseline accumulate error (Table III).
    // Join keys are zipf-skewed for the same reason (distinct-count join
    // estimates assume uniformity).
    std::vector<int64_t> row_date(fact_rows);
    for (auto& d : row_date) {
      d = rng.Zipf(static_cast<int64_t>(kDates.size()), 0.7);
    }
    size_t date_cursor_a = 0, date_cursor_b = 0;
    AddGeneratedTable(
        workload.db.get(), proj.events, fact_rows,
        {
            {"user_id", ColumnType::kInt64,
             [&](size_t, Rng* r) { return IntVal(r->Zipf(proj.n_users, 1.1)); }},
            {"item_id", ColumnType::kInt64,
             [&](size_t, Rng* r) { return IntVal(r->Zipf(proj.n_items, 1.2)); }},
            {"type", ColumnType::kInt64,
             [&](size_t, Rng* r) {
               const int64_t d = row_date[date_cursor_a++ % fact_rows];
               return IntVal(r->Bernoulli(0.8) ? (d * 2) % 6
                                               : r->UniformInt(0, 5));
             }},
            {"dt", ColumnType::kString,
             [&](size_t, Rng*) {
               return Value(kDates[static_cast<size_t>(
                   row_date[date_cursor_b++ % fact_rows])]);
             }},
            {"value", ColumnType::kInt64,
             [&](size_t, Rng* r) { return IntVal(r->UniformInt(0, 100)); }},
        },
        &rng);
    AddGeneratedTable(
        workload.db.get(), proj.users, static_cast<size_t>(proj.n_users),
        {
            {"user_id", ColumnType::kInt64,
             [&](size_t row, Rng*) { return IntVal(static_cast<int64_t>(row)); }},
            {"region", ColumnType::kString,
             [&](size_t, Rng* r) {
               return Value(kRegions[static_cast<size_t>(r->UniformInt(
                   0, static_cast<int64_t>(kRegions.size()) - 1))]);
             }},
            {"age", ColumnType::kInt64,
             [&](size_t, Rng* r) { return IntVal(r->UniformInt(18, 70)); }},
        },
        &rng);
    AddGeneratedTable(
        workload.db.get(), proj.items, static_cast<size_t>(proj.n_items),
        {
            {"item_id", ColumnType::kInt64,
             [&](size_t row, Rng*) { return IntVal(static_cast<int64_t>(row)); }},
            {"category", ColumnType::kString,
             [&](size_t, Rng* r) {
               return Value(kCategories[static_cast<size_t>(r->UniformInt(
                   0, static_cast<int64_t>(kCategories.size()) - 1))]);
             }},
            {"price", ColumnType::kInt64,
             [&](size_t, Rng* r) { return IntVal(r->UniformInt(1, 500)); }},
        },
        &rng);
    if (spec.tables_per_project >= 4) {
      AddGeneratedTable(
          workload.db.get(), proj.logs, fact_rows / 2 + 50,
          {
              {"user_id", ColumnType::kInt64,
               [&](size_t, Rng* r) {
                 return IntVal(r->Zipf(proj.n_users, 0.6));
               }},
              {"severity", ColumnType::kInt64,
               [&](size_t, Rng* r) { return IntVal(r->UniformInt(0, 3)); }},
              {"dt", ColumnType::kString,
               [&](size_t, Rng* r) {
                 return Value(kDates[static_cast<size_t>(r->UniformInt(
                     0, static_cast<int64_t>(kDates.size()) - 1))]);
               }},
          },
          &rng);
    }

    // Build the per-project subquery pool. Members are derived-table
    // bodies; textual reuse across queries creates the equivalent
    // subqueries the pre-processing clusters.
    for (size_t s = 0; s < spec.subquery_pool; ++s) {
      const int kind = static_cast<int>(s % 4);
      proj.pool.push_back(make_snippet(proj, kind, &rng));
      proj.pool_kind.push_back(kind);
    }
  }

  // Generate queries: each picks a project and pool members via a
  // zipf-skewed draw (the skew concentrates sharing, Fig. 1).
  for (size_t q = 0; q < spec.queries; ++q) {
    const size_t p = static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(spec.projects) - 1));
    Project& proj = projects[p];
    // Pick a subquery body of the wanted kind: with probability
    // shared_fraction reuse a (zipf-skewed) pool member, otherwise
    // generate a fresh one-off subquery. The mix controls how much of
    // the workload is redundant (Fig. 1).
    auto pick = [&](int want_kind) -> std::string {
      if (rng.Bernoulli(spec.shared_fraction)) {
        for (int attempt = 0; attempt < 64; ++attempt) {
          size_t idx = static_cast<size_t>(rng.Zipf(
              static_cast<int64_t>(proj.pool.size()), spec.pool_zipf));
          if (proj.pool_kind[idx] == want_kind) return proj.pool[idx];
        }
        for (size_t idx = 0; idx < proj.pool.size(); ++idx) {
          if (proj.pool_kind[idx] == want_kind) return proj.pool[idx];
        }
      }
      return make_snippet(proj, want_kind, &rng);
    };

    const double shape = rng.Uniform01();
    std::string sql;
    if (shape < 0.3) {
      // Aggregate over one events-pool subquery.
      const std::string a = pick(0);
      const char* group = rng.Bernoulli(0.5) ? "user_id" : "item_id";
      sql = StrFormat(
          "select t.%s, count(*) as cnt, sum(t.value) as total from (%s) t "
          "group by t.%s",
          group, a.c_str(), group);
    } else if (shape < 0.55) {
      // Aggregate over a join-pool subquery.
      const std::string a = pick(2);
      sql = StrFormat(
          "select j.region, sum(j.value) as total from (%s) j group by "
          "j.region",
          a.c_str());
    } else if (shape < 0.55 + spec.deep_join_fraction) {
      // Three-way join: events x users x items.
      const std::string a = pick(0);
      const std::string b = pick(1);
      const std::string c = pick(3);
      sql = StrFormat(
          "select u.region, i.category, count(*) as cnt from (%s) e inner "
          "join (%s) u on e.user_id = u.user_id inner join (%s) i on "
          "e.item_id = i.item_id group by u.region, i.category",
          a.c_str(), b.c_str(), c.c_str());
    } else {
      // Two-way join: events x users.
      const std::string a = pick(0);
      const std::string b = pick(1);
      const char* agg =
          rng.Bernoulli(0.5) ? "count(*) as cnt" : "sum(e.value) as total";
      sql = StrFormat(
          "select u.region, %s from (%s) e inner join (%s) u on e.user_id = "
          "u.user_id group by u.region",
          agg, a.c_str(), b.c_str());
    }
    // A fraction of queries carry a top-k tail (ORDER BY ... LIMIT n),
    // exercising the Sort/Limit operators through the whole pipeline.
    if (rng.Bernoulli(0.25)) {
      const char* key = sql.find(" sum(") != std::string::npos ||
                                sql.find("total from") != std::string::npos
                            ? "total"
                            : "cnt";
      if (sql.find(std::string(" as ") + key) != std::string::npos) {
        sql += StrFormat(" order by %s desc limit %lld", key,
                         static_cast<long long>(rng.UniformInt(5, 40)));
      }
    }
    workload.sql.push_back(std::move(sql));
    workload.project_of.push_back(p);
  }

  AV_CHECK(workload.db->ComputeAllStats().ok());
  return workload;
}

CloudWorkloadSpec Wk1Spec(double scale) {
  CloudWorkloadSpec spec;
  spec.name = "WK1";
  spec.projects = 6;
  spec.tables_per_project = 4;
  spec.queries = static_cast<size_t>(240 * scale);
  spec.subquery_pool = 10;
  spec.shared_fraction = 0.35;
  spec.pool_zipf = 1.4;  // more skewed sharing (wider Fig. 10 swings)
  spec.deep_join_fraction = 0.15;
  spec.seed = 101;
  return spec;
}

CloudWorkloadSpec Wk2Spec(double scale) {
  CloudWorkloadSpec spec;
  spec.name = "WK2";
  spec.projects = 8;
  spec.tables_per_project = 4;
  spec.queries = static_cast<size_t>(360 * scale);
  spec.subquery_pool = 14;
  spec.shared_fraction = 0.30;
  spec.pool_zipf = 0.9;              // flatter sharing
  spec.deep_join_fraction = 0.45;    // more complex queries than WK1
  spec.seed = 202;
  return spec;
}

CloudWorkloadSpec Wk1FullSpec() {
  CloudWorkloadSpec spec = Wk1Spec();
  spec.projects = 97;       // 388 tables ~ the paper's 389
  spec.queries = 38600;
  spec.subquery_pool = 10;  // per project, as at bench scale
  spec.min_rows = 300;      // modest base tables: scale lives in |Q|/|T|
  spec.max_rows = 1200;
  return spec;
}

CloudWorkloadSpec Wk2FullSpec() {
  CloudWorkloadSpec spec = Wk2Spec();
  spec.projects = 109;      // 436 tables ~ the paper's 435
  spec.queries = 157600;
  spec.min_rows = 300;
  spec.max_rows = 1200;
  return spec;
}

// ---------------------------------------------------------------------------
// JOB-like workload (IMDB substitution)
// ---------------------------------------------------------------------------

GeneratedWorkload GenerateJobWorkload(const JobWorkloadSpec& spec) {
  GeneratedWorkload workload;
  workload.name = "JOB";
  workload.db = std::make_unique<Database>();
  workload.num_projects = 1;
  Rng rng(spec.seed);

  auto rows_for = [&](double weight) {
    return static_cast<size_t>(static_cast<double>(rng.UniformInt(
               static_cast<int64_t>(spec.min_rows),
               static_cast<int64_t>(spec.max_rows))) * weight) + 64;
  };

  const size_t n_title = rows_for(1.0);
  const int64_t title_ids = static_cast<int64_t>(n_title);
  Database* db = workload.db.get();

  auto movie_fk = [&](size_t, Rng* r) {
    return IntVal(r->Zipf(title_ids, 0.7));
  };

  // kind_id and production_year are correlated (each kind clusters in
  // one era): "production_year > Y AND kind_id = K" violates the
  // optimizer's independence assumption, as in real IMDB data.
  std::vector<int64_t> title_kind(n_title);
  for (auto& k : title_kind) k = rng.Zipf(7, 0.8) + 1;
  size_t kind_cursor_a = 0, kind_cursor_b = 0;
  AddGeneratedTable(
      db, "title", n_title,
      {{"id", ColumnType::kInt64,
        [](size_t row, Rng*) { return IntVal(static_cast<int64_t>(row)); }},
       {"kind_id", ColumnType::kInt64,
        [&](size_t, Rng*) { return IntVal(title_kind[kind_cursor_a++ % n_title]); }},
       {"production_year", ColumnType::kInt64,
        [&](size_t, Rng* r) {
          const int64_t kind = title_kind[kind_cursor_b++ % n_title];
          return IntVal(1948 + kind * 9 + r->UniformInt(0, 8));
        }},
       {"episode_nr", ColumnType::kInt64,
        [](size_t, Rng* r) { return IntVal(r->UniformInt(0, 50)); }}},
      &rng);
  AddGeneratedTable(
      db, "movie_companies", rows_for(2.0),
      {{"movie_id", ColumnType::kInt64, movie_fk},
       {"company_id", ColumnType::kInt64,
        [](size_t, Rng* r) { return IntVal(r->Zipf(200, 1.0)); }},
       {"company_type_id", ColumnType::kInt64,
        [](size_t, Rng* r) { return IntVal(r->UniformInt(1, 4)); }},
       {"country_code", ColumnType::kString,
        [](size_t, Rng* r) {
          static const char* kCodes[] = {"us", "de", "fr", "jp", "cn", "uk"};
          return Value(kCodes[r->Zipf(6, 0.9)]);
        }}},
      &rng);
  AddGeneratedTable(db, "movie_info", rows_for(2.5),
                    {{"movie_id", ColumnType::kInt64, movie_fk},
                     {"info_type_id", ColumnType::kInt64,
                      [](size_t, Rng* r) { return IntVal(r->UniformInt(1, 20)); }},
                     {"info_val", ColumnType::kInt64,
                      [](size_t, Rng* r) { return IntVal(r->UniformInt(0, 1000)); }}},
                    &rng);
  AddGeneratedTable(db, "movie_info_idx", rows_for(1.5),
                    {{"movie_id", ColumnType::kInt64, movie_fk},
                     {"info_type_id", ColumnType::kInt64,
                      [](size_t, Rng* r) { return IntVal(r->UniformInt(1, 20)); }},
                     {"rating", ColumnType::kInt64,
                      [](size_t, Rng* r) { return IntVal(r->UniformInt(0, 100)); }}},
                    &rng);
  AddGeneratedTable(db, "movie_keyword", rows_for(2.0),
                    {{"movie_id", ColumnType::kInt64, movie_fk},
                     {"keyword_id", ColumnType::kInt64,
                      [](size_t, Rng* r) { return IntVal(r->Zipf(400, 1.1)); }}},
                    &rng);
  AddGeneratedTable(db, "cast_info", rows_for(3.0),
                    {{"movie_id", ColumnType::kInt64, movie_fk},
                     {"person_id", ColumnType::kInt64,
                      [](size_t, Rng* r) { return IntVal(r->Zipf(800, 0.9)); }},
                     {"role_id", ColumnType::kInt64,
                      [](size_t, Rng* r) { return IntVal(r->UniformInt(1, 11)); }}},
                    &rng);
  AddGeneratedTable(db, "movie_link", rows_for(0.5),
                    {{"movie_id", ColumnType::kInt64, movie_fk},
                     {"linked_movie_id", ColumnType::kInt64, movie_fk},
                     {"link_type_id", ColumnType::kInt64,
                      [](size_t, Rng* r) { return IntVal(r->UniformInt(1, 17)); }}},
                    &rng);
  AddGeneratedTable(db, "complete_cast", rows_for(0.6),
                    {{"movie_id", ColumnType::kInt64, movie_fk},
                     {"subject_id", ColumnType::kInt64,
                      [](size_t, Rng* r) { return IntVal(r->UniformInt(1, 4)); }},
                     {"status_id", ColumnType::kInt64,
                      [](size_t, Rng* r) { return IntVal(r->UniformInt(1, 4)); }}},
                    &rng);

  // Small dimension tables complete the 21-table schema.
  auto add_dim = [&](const std::string& name, size_t n,
                     const std::string& label_col) {
    AddGeneratedTable(
        db, name, n,
        {{"id", ColumnType::kInt64,
          [](size_t row, Rng*) { return IntVal(static_cast<int64_t>(row) + 1); }},
         {label_col, ColumnType::kString,
          [&name](size_t row, Rng*) {
            return Value(name + "_" + std::to_string(row));
          }}},
        &rng);
  };
  add_dim("company_name", 200, "name");
  add_dim("company_type", 4, "kind");
  add_dim("info_type", 20, "info");
  add_dim("keyword", 400, "keyword");
  add_dim("kind_type", 7, "kind");
  add_dim("name", 800, "name");
  add_dim("aka_name", 300, "name");
  add_dim("aka_title", 300, "title");
  add_dim("char_name", 500, "name");
  add_dim("comp_cast_type", 4, "kind");
  add_dim("link_type", 17, "link");
  add_dim("person_info", 600, "info");
  add_dim("role_type", 11, "role");

  // Shared subquery pool over the fact tables (the redundancy source).
  struct PoolEntry {
    std::string sql;
    int kind;  // 0 = title, 1..5 = satellites
  };
  std::vector<PoolEntry> pool;
  for (int k = 0; k < 4; ++k) {
    pool.push_back({StrFormat("select id, kind_id from title where "
                              "production_year > %lld and kind_id = %lld",
                              static_cast<long long>(rng.UniformInt(1960, 2005)),
                              static_cast<long long>(rng.UniformInt(1, 7))),
                    0});
  }
  for (int k = 0; k < 3; ++k) {
    static const char* kCodes[] = {"us", "de", "fr", "jp", "cn", "uk"};
    pool.push_back(
        {StrFormat("select movie_id, company_id from movie_companies where "
                   "company_type_id = %lld and country_code = '%s'",
                   static_cast<long long>(rng.UniformInt(1, 4)),
                   kCodes[rng.Zipf(6, 0.9)]),
         1});
  }
  for (int k = 0; k < 3; ++k) {
    pool.push_back(
        {StrFormat("select movie_id, info_type_id from movie_info where "
                   "info_type_id = %lld",
                   static_cast<long long>(rng.UniformInt(1, 20))),
         2});
  }
  for (int k = 0; k < 3; ++k) {
    pool.push_back({StrFormat("select movie_id, keyword_id from "
                              "movie_keyword where keyword_id < %lld",
                              static_cast<long long>(rng.UniformInt(40, 300))),
                    3});
  }
  for (int k = 0; k < 3; ++k) {
    pool.push_back(
        {StrFormat("select movie_id, person_id from cast_info where role_id "
                   "= %lld",
                   static_cast<long long>(rng.UniformInt(1, 11))),
         4});
  }
  for (int k = 0; k < 2; ++k) {
    pool.push_back(
        {StrFormat("select movie_id, rating from movie_info_idx where rating "
                   "> %lld",
                   static_cast<long long>(rng.UniformInt(20, 80))),
         5});
  }

  // Fresh (unshared) satellite subquery: same shape as the pool members
  // but with a wide-domain movie_id pruning predicate, so it never
  // collides with another query's. This is the non-reusable part of a
  // query — in real JOB most of a query's joins are NOT covered by any
  // shared view, which keeps view coverage (and the saving ratio)
  // fractional rather than total.
  auto make_fresh_satellite = [&]() -> std::string {
    const long long cut = static_cast<long long>(
        rng.UniformInt(title_ids / 4, title_ids - 1));
    switch (rng.UniformInt(0, 3)) {
      case 0:
        return StrFormat(
            "select movie_id, company_id from movie_companies where "
            "company_type_id = %lld and movie_id < %lld",
            static_cast<long long>(rng.UniformInt(1, 4)), cut);
      case 1:
        return StrFormat(
            "select movie_id, info_type_id from movie_info where "
            "info_type_id = %lld and movie_id < %lld",
            static_cast<long long>(rng.UniformInt(1, 20)), cut);
      case 2:
        return StrFormat(
            "select movie_id, person_id from cast_info where role_id = "
            "%lld and movie_id < %lld",
            static_cast<long long>(rng.UniformInt(1, 11)), cut);
      default:
        return StrFormat(
            "select movie_id, keyword_id from movie_keyword where "
            "keyword_id < %lld and movie_id < %lld",
            static_cast<long long>(rng.UniformInt(40, 300)), cut);
    }
  };

  auto pick_pool = [&](int kind) -> const PoolEntry& {
    for (int attempt = 0; attempt < 128; ++attempt) {
      const size_t idx = static_cast<size_t>(
          rng.Zipf(static_cast<int64_t>(pool.size()), 1.0));
      if (pool[idx].kind == kind) return pool[idx];
    }
    for (const auto& entry : pool) {  // deterministic fallback, same kind
      if (entry.kind == kind) return entry;
    }
    return pool[0];
  };

  // "Hot" (title, satellite) combos whose whole join is reused across
  // different base queries; these shared joins become candidates that
  // overlap their component subqueries (the paper's 74 overlap pairs).
  struct HotCombo {
    const PoolEntry* title;
    const PoolEntry* satellite;
  };
  std::vector<HotCombo> hot_combos;
  for (int c = 0; c < 8; ++c) {
    hot_combos.push_back(
        {&pick_pool(0), &pick_pool(static_cast<int>(rng.UniformInt(1, 5)))});
  }

  for (size_t q = 0; q < spec.base_queries; ++q) {
    const bool use_hot = rng.Bernoulli(0.35);
    const HotCombo combo =
        use_hot ? hot_combos[static_cast<size_t>(rng.Zipf(
                      static_cast<int64_t>(hot_combos.size()), 1.0))]
                : HotCombo{&pick_pool(0),
                           &pick_pool(static_cast<int>(rng.UniformInt(1, 5)))};
    const PoolEntry& t = *combo.title;
    const PoolEntry& s1 = *combo.satellite;
    // Every query carries an unshared tail join (fresh satellite), so
    // shared views cover only a fragment of the query.
    const std::string fresh = make_fresh_satellite();
    std::string sql = StrFormat(
        "select t.kind_id, count(*) as cnt from (%s) t inner join (%s) a "
        "on t.id = a.movie_id inner join (%s) b on t.id = b.movie_id group "
        "by t.kind_id",
        t.sql.c_str(), s1.sql.c_str(), fresh.c_str());
    workload.sql.push_back(sql);
    workload.project_of.push_back(0);

    // Twin query with one mutated predicate (§VI-A: "we generate a new
    // query for each raw query by manually modifying the predicates"):
    // the title subquery's year changes, so the twin's join subtree is
    // new, while the satellite subqueries stay shared.
    std::string twin = sql;
    const std::string marker = "production_year > ";
    const size_t pos = twin.find(marker);
    if (pos == std::string::npos) {
      // Template drift: skip the twin rather than aborting; the raw
      // query above is already in the workload.
      AV_LOG(Warning) << "JOB twin template marker missing, skipping twin";
      continue;
    }
    const size_t year_at = pos + marker.size();
    const int64_t year = std::atoll(twin.c_str() + year_at);
    twin.replace(year_at, 4, std::to_string(year + 1));
    // Also perturb the fresh tail's pruning predicate so the unshared
    // part of the twin stays unshared.
    const std::string cut_marker = "movie_id < ";
    const size_t cut_pos = twin.rfind(cut_marker);
    if (cut_pos == std::string::npos) {
      AV_LOG(Warning) << "JOB twin cut marker missing, skipping twin";
      continue;
    }
    const size_t cut_at = cut_pos + cut_marker.size();
    size_t cut_end = cut_at;
    while (cut_end < twin.size() && std::isdigit(twin[cut_end])) ++cut_end;
    const int64_t cut = std::atoll(twin.c_str() + cut_at);
    twin.replace(cut_at, cut_end - cut_at,
                 std::to_string(std::max<int64_t>(1, cut - 1)));
    workload.sql.push_back(std::move(twin));
    workload.project_of.push_back(0);
  }

  AV_CHECK(workload.db->ComputeAllStats().ok());
  return workload;
}

}  // namespace autoview
