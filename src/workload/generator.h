#pragma once

#include <memory>
#include <string>
#include <vector>

#include "engine/database.h"
#include "util/random.h"
#include "util/status.h"

namespace autoview {

/// \brief A generated workload: a populated database plus SQL queries.
///
/// Substitution for the paper's proprietary datasets (see DESIGN.md):
/// the selection algorithms only consume (benefit, overhead, overlap)
/// arrays and the estimator consumes plans/schemas/statistics; both are
/// derived from this workload by the same pipeline the paper uses, so
/// only the raw scale differs.
struct GeneratedWorkload {
  std::string name;
  std::unique_ptr<Database> db;
  std::vector<std::string> sql;     ///< one SELECT statement per query
  std::vector<size_t> project_of;   ///< project index per query
  size_t num_projects = 0;
};

/// \brief Knobs of the cloud-workload generator (WK1/WK2 presets).
struct CloudWorkloadSpec {
  std::string name = "WK";
  size_t projects = 8;
  size_t tables_per_project = 4;   ///< 1 fact + dims
  size_t queries = 200;
  size_t min_rows = 800;           ///< per-table row count range
  size_t max_rows = 4000;
  size_t subquery_pool = 12;       ///< shared derived tables per project
  /// Probability that a subquery slot draws from the shared pool rather
  /// than generating a fresh one-off subquery. Controls the redundancy
  /// rate of Fig. 1 (production workloads sit around 20-25%).
  double shared_fraction = 0.6;
  double pool_zipf = 1.2;          ///< sharing skew (WK1 > WK2)
  double deep_join_fraction = 0.25;///< 3-way joins (WK2 > WK1)
  uint64_t seed = 42;
};

/// Generates a synthetic cloud analytics workload: per-project star
/// schemas and aggregate/join queries drawing derived-table subqueries
/// from a shared per-project pool (this sharing creates the redundant
/// computation of Fig. 1).
GeneratedWorkload GenerateCloudWorkload(const CloudWorkloadSpec& spec);

/// \brief Scale knob for the JOB-like workload.
struct JobWorkloadSpec {
  size_t base_queries = 113;  ///< raw JOB query count; doubled by twins
  size_t min_rows = 500;
  size_t max_rows = 6000;
  uint64_t seed = 7;
};

/// Generates the JOB-like workload: an IMDB-like schema (21 tables) with
/// 113 multi-join query templates, each duplicated with mutated
/// predicates (226 queries total), mirroring the paper's §VI-A setup.
GeneratedWorkload GenerateJobWorkload(const JobWorkloadSpec& spec);

/// Preset specs matching the paper's three workloads at bench scale.
CloudWorkloadSpec Wk1Spec(double scale = 1.0);
CloudWorkloadSpec Wk2Spec(double scale = 1.0);

/// Full paper-scale presets (Table I): WK1 = 38.6k queries over 389
/// tables, WK2 = 157.6k queries over 435 tables. Query and table counts
/// match the paper (tables to within the 4-per-project rounding:
/// 97 x 4 = 388 and 109 x 4 = 436); per-table row counts are kept small
/// — the paper's raw data is proprietary, and the scale claims under
/// test are the query/table counts flowing through clustering, matrix
/// construction, and selection, not base-table volume.
CloudWorkloadSpec Wk1FullSpec();
CloudWorkloadSpec Wk2FullSpec();

}  // namespace autoview
