// Tests for the online advisor (src/core/advisor.*) — every layer's
// incremental path is checked against its batch oracle, per DESIGN.md
// §12:
//
//  1. Subquery layer: ClustererSession ingest/retire vs a batch
//     Analyze() over the live window (bit-comparable Snapshot()).
//  2. Index layer: after arbitrary ingest/retire/window-churn mutation
//     sequences, the incrementally maintained MvsProblemIndex is
//     EXPECT_EQ-identical to an index rebuilt from scratch over the
//     advisor's dense oracle instance — across seeds and workload
//     shapes.
//  3. Selection layer: warm-started ReselectDelta never returns below
//     the warm point's own utility under the mutated index, and the
//     whole advisor loop is deterministic under a ManualClock.
//  4. Engine layer: re-selection hot-swaps the store atomically while
//     concurrent readers serve from pinned snapshots (run under tsan by
//     scripts/run_sanitizer_suites.sh).
//  5. End to end: a drifting query stream drives trigger policies,
//     re-selections, and generation swaps with zero failures.

#include "core/advisor.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "engine/view_store.h"
#include "ilp/problem.h"
#include "ilp/problem_index.h"
#include "plan/builder.h"
#include "plan/canonical.h"
#include "select/iterview.h"
#include "subquery/clusterer.h"
#include "util/clock.h"
#include "workload/generator.h"

namespace autoview {
namespace {

std::vector<PlanNodePtr> BuildWorkloadPlans(const GeneratedWorkload& w) {
  std::vector<PlanNodePtr> plans;
  plans.reserve(w.sql.size());
  PlanBuilder builder(&w.db->catalog());
  for (const auto& sql : w.sql) {
    auto r = builder.BuildFromSql(sql);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    plans.push_back(r.ok() ? r.value() : nullptr);
  }
  return plans;
}

/// Snapshot() documents bit-comparability to Analyze() over the live
/// plans in ascending-id order, occurrences vectors excepted (the
/// session keeps counts, not member plans).
void ExpectAnalysesEquivalent(const WorkloadAnalysis& a,
                              const WorkloadAnalysis& b) {
  EXPECT_EQ(a.num_queries, b.num_queries);
  EXPECT_EQ(a.num_subqueries, b.num_subqueries);
  EXPECT_EQ(a.num_equivalent_pairs, b.num_equivalent_pairs);
  ASSERT_EQ(a.clusters.size(), b.clusters.size());
  for (size_t c = 0; c < a.clusters.size(); ++c) {
    EXPECT_EQ(a.clusters[c].canonical_key, b.clusters[c].canonical_key);
    EXPECT_EQ(a.clusters[c].num_occurrences(),
              b.clusters[c].num_occurrences());
    EXPECT_EQ(a.clusters[c].query_indices, b.clusters[c].query_indices);
    ASSERT_NE(a.clusters[c].candidate, nullptr);
    ASSERT_NE(b.clusters[c].candidate, nullptr);
    EXPECT_EQ(CanonicalKey(*a.clusters[c].candidate),
              CanonicalKey(*b.clusters[c].candidate));
  }
  EXPECT_EQ(a.candidates, b.candidates);
  EXPECT_EQ(a.associated_queries, b.associated_queries);
  EXPECT_EQ(a.overlapping, b.overlapping);
}

// ---------------------------------------------------------------------
// 1. Subquery layer: session mutations vs the batch oracle.

TEST(ClustererSessionTest, IngestRetireMatchesBatchAnalyze) {
  for (const uint64_t seed : {11u, 12u}) {
    CloudWorkloadSpec spec = Wk1Spec(0.3);
    spec.seed = seed;
    const GeneratedWorkload workload = GenerateCloudWorkload(spec);
    const auto plans = BuildWorkloadPlans(workload);

    SubqueryClusterer::Options opts;
    ClustererSession session(opts, [](const PlanNode&) { return 1.0; });

    // Ingest everything, then retire a third (every third query) — the
    // surviving window must match a batch Analyze over exactly the
    // surviving plans in id order.
    for (size_t qi = 0; qi < plans.size(); ++qi) {
      ASSERT_TRUE(session.IngestQuery(qi, plans[qi]).ok());
    }
    std::vector<PlanNodePtr> live;
    for (size_t qi = 0; qi < plans.size(); ++qi) {
      if (qi % 3 == 0) {
        ASSERT_TRUE(session.RetireQuery(qi).ok());
      } else {
        live.push_back(plans[qi]);
      }
    }
    ASSERT_EQ(session.LiveQueryIds().size(), live.size());

    const WorkloadAnalysis batch =
        SubqueryClusterer(opts, [](const PlanNode&) { return 1.0; })
            .Analyze(live);
    ExpectAnalysesEquivalent(batch, session.Snapshot());
    EXPECT_GT(session.churn_events(), 0u);
  }
}

TEST(ClustererSessionTest, RetireEverythingLeavesEmptySession) {
  const GeneratedWorkload workload = GenerateCloudWorkload(Wk1Spec(0.2));
  const auto plans = BuildWorkloadPlans(workload);
  ClustererSession session({}, [](const PlanNode&) { return 1.0; });
  for (size_t qi = 0; qi < plans.size(); ++qi) {
    ASSERT_TRUE(session.IngestQuery(qi, plans[qi]).ok());
  }
  for (size_t qi = 0; qi < plans.size(); ++qi) {
    ASSERT_TRUE(session.RetireQuery(qi).ok());
  }
  EXPECT_EQ(session.num_live_queries(), 0u);
  EXPECT_TRUE(session.CandidateKeys().empty());
  // Unknown ids are rejected, not ignored.
  EXPECT_FALSE(session.RetireQuery(0).ok());
  EXPECT_FALSE(session.RetireQuery(99999).ok());
}

// ---------------------------------------------------------------------
// Shared fixture plumbing: an advisor over a generated workload.

struct AdvisorRig {
  GeneratedWorkload workload;
  std::unique_ptr<MaterializedViewStore> store;
  std::unique_ptr<OnlineAdvisor> advisor;

  AdvisorRig(CloudWorkloadSpec spec, OnlineAdvisorOptions options) {
    workload = GenerateCloudWorkload(spec);
    store = std::make_unique<MaterializedViewStore>(workload.db.get(),
                                                    ViewStoreOptions{});
    advisor = std::make_unique<OnlineAdvisor>(workload.db.get(), store.get(),
                                              options);
  }
};

/// The index-layer bit-identity oracle: the incrementally mutated index
/// must equal an index rebuilt from scratch over the dense instance.
void ExpectIndexMatchesOracle(const OnlineAdvisor& advisor) {
  const Result<MvsProblem> dense = advisor.DenseOracleProblem();
  ASSERT_TRUE(dense.ok()) << dense.status().ToString();
  EXPECT_TRUE(MvsProblemIndex(dense.value()) == advisor.CopyIndex());
}

// ---------------------------------------------------------------------
// 2. Index layer: mutation sequences vs rebuilt-from-scratch.

TEST(AdvisorIndexTest, IngestMutationsMatchRebuiltIndex) {
  for (const uint64_t seed : {21u, 22u}) {
    for (const bool wk2 : {false, true}) {
      CloudWorkloadSpec spec = wk2 ? Wk2Spec(0.2) : Wk1Spec(0.25);
      spec.seed = seed;
      OnlineAdvisorOptions options;
      options.epoch_queries = 1u << 30;  // never auto-reselect
      options.window_queries = 0;        // no window retires either
      AdvisorRig rig(spec, options);

      for (size_t qi = 0; qi < rig.workload.sql.size(); ++qi) {
        ASSERT_TRUE(rig.advisor->IngestSql(rig.workload.sql[qi]).ok());
        // Checking every prefix is O(n) rebuilds; every 7th keeps the
        // test fast while still covering add/replan column churn.
        if (qi % 7 == 0) ExpectIndexMatchesOracle(*rig.advisor);
      }
      ExpectIndexMatchesOracle(*rig.advisor);
      const OnlineAdvisorStats stats = rig.advisor->stats();
      EXPECT_EQ(stats.ingested, rig.workload.sql.size());
      EXPECT_EQ(stats.live_queries, rig.workload.sql.size());
      EXPECT_GT(stats.candidate_views, 0u);
    }
  }
}

TEST(AdvisorIndexTest, RetireMutationsMatchRebuiltIndex) {
  OnlineAdvisorOptions options;
  options.epoch_queries = 1u << 30;
  options.window_queries = 0;
  AdvisorRig rig(Wk1Spec(0.25), options);

  std::vector<uint64_t> ids;
  for (const std::string& sql : rig.workload.sql) {
    const auto id = rig.advisor->IngestSql(sql);
    ASSERT_TRUE(id.ok());
    ids.push_back(id.value());
  }
  // Retire in a scrambled-but-deterministic order: evens descending,
  // then odds ascending — exercises middle-row removals and column
  // drop/replan on both ends of the id space.
  std::vector<uint64_t> order;
  for (size_t n = ids.size(); n-- > 0;) {
    if (n % 2 == 0) order.push_back(ids[n]);
  }
  for (size_t n = 0; n < ids.size(); ++n) {
    if (n % 2 == 1) order.push_back(ids[n]);
  }
  size_t retired = 0;
  for (const uint64_t id : order) {
    ASSERT_TRUE(rig.advisor->RetireQuery(id).ok());
    if (++retired % 7 == 0) ExpectIndexMatchesOracle(*rig.advisor);
  }
  ExpectIndexMatchesOracle(*rig.advisor);
  const OnlineAdvisorStats stats = rig.advisor->stats();
  EXPECT_EQ(stats.live_queries, 0u);
  EXPECT_EQ(stats.candidate_views, 0u);
  EXPECT_EQ(stats.retired, ids.size());
  EXPECT_FALSE(rig.advisor->RetireQuery(ids[0]).ok());  // already gone
}

TEST(AdvisorIndexTest, SlidingWindowChurnMatchesRebuiltIndex) {
  OnlineAdvisorOptions options;
  options.epoch_queries = 1u << 30;
  options.window_queries = 12;  // well below the workload size
  AdvisorRig rig(Wk1Spec(0.25), options);

  for (size_t qi = 0; qi < rig.workload.sql.size(); ++qi) {
    ASSERT_TRUE(rig.advisor->IngestSql(rig.workload.sql[qi]).ok());
    EXPECT_LE(rig.advisor->stats().live_queries, options.window_queries);
    if (qi % 5 == 0) ExpectIndexMatchesOracle(*rig.advisor);
  }
  ExpectIndexMatchesOracle(*rig.advisor);
  const OnlineAdvisorStats stats = rig.advisor->stats();
  EXPECT_EQ(stats.live_queries, options.window_queries);
  EXPECT_EQ(stats.retired, stats.ingested - options.window_queries);
}

// ---------------------------------------------------------------------
// 3. Selection layer.

TEST(AdvisorSelectTest, ReselectDeltaNeverBelowWarmPointUtility) {
  OnlineAdvisorOptions options;
  options.epoch_queries = 1u << 30;
  options.window_queries = 0;
  AdvisorRig rig(Wk1Spec(0.3), options);

  // Phase 1: ingest half the workload and cold-select on its index.
  const size_t half = rig.workload.sql.size() / 2;
  for (size_t qi = 0; qi < half; ++qi) {
    ASSERT_TRUE(rig.advisor->IngestSql(rig.workload.sql[qi]).ok());
  }
  const auto dense0 = rig.advisor->DenseOracleProblem();
  ASSERT_TRUE(dense0.ok());
  const MvsProblemIndex index0(dense0.value());

  IterViewSelector::Options sopts;
  sopts.iterations = 25;
  sopts.seed = 5;
  const auto cold = IterViewSelector(sopts).ReselectDelta(
      index0, std::vector<bool>(index0.num_views(), false));
  ASSERT_TRUE(cold.ok()) << cold.status().ToString();
  EXPECT_GE(cold.value().utility, 0.0);

  // Phase 2: ingest the rest (the index mutates under the incumbent),
  // then warm-start from the phase-1 incumbent. Documented guarantee:
  // the result is never below the warm point's own utility under the
  // *new* index — for any incumbent z, aligned or not.
  for (size_t qi = half; qi < rig.workload.sql.size(); ++qi) {
    ASSERT_TRUE(rig.advisor->IngestSql(rig.workload.sql[qi]).ok());
  }
  const MvsProblemIndex index1 = rig.advisor->CopyIndex();
  ASSERT_GE(index1.num_views(), index0.num_views());
  std::vector<bool> warm_z = cold.value().z;
  warm_z.resize(index1.num_views(), false);

  const double warm_utility = YOptSolver(&index1).UtilityOf(warm_z);
  const auto warm = IterViewSelector(sopts).ReselectDelta(index1, warm_z);
  ASSERT_TRUE(warm.ok()) << warm.status().ToString();
  EXPECT_GE(warm.value().utility, warm_utility);
  EXPECT_GE(warm.value().utility, 0.0);
}

TEST(AdvisorSelectTest, ManualClockRunIsDeterministic) {
  // Two advisors fed the identical stream under ManualClocks (infinite
  // deadlines regardless of host speed) must agree on everything the
  // re-selection produced — the replayability contract of the clock
  // seam, with a nonzero budget that would race wall time otherwise.
  const ManualClock clock_a;
  const ManualClock clock_b;
  auto make_options = [](const Clock* clock) {
    OnlineAdvisorOptions options;
    options.epoch_queries = 8;
    options.window_queries = 24;
    options.select_iterations = 15;
    options.reselect_budget_ms = 5.0;
    options.clock = clock;
    return options;
  };
  AdvisorRig a(Wk1Spec(0.25), make_options(&clock_a));
  AdvisorRig b(Wk1Spec(0.25), make_options(&clock_b));

  for (const std::string& sql : a.workload.sql) {
    ASSERT_TRUE(a.advisor->IngestSql(sql).ok());
    ASSERT_TRUE(b.advisor->IngestSql(sql).ok());
  }
  const OnlineAdvisorStats sa = a.advisor->stats();
  const OnlineAdvisorStats sb = b.advisor->stats();
  EXPECT_GT(sa.reselections, 0u);
  EXPECT_EQ(sa.reselections, sb.reselections);
  EXPECT_EQ(sa.swaps_committed, sb.swaps_committed);
  EXPECT_EQ(sa.incumbent_utility, sb.incumbent_utility);
  EXPECT_FALSE(sa.last_reselect_timed_out);
  EXPECT_EQ(a.advisor->SelectedKeys(), b.advisor->SelectedKeys());
  EXPECT_TRUE(a.advisor->CopyIndex() == b.advisor->CopyIndex());
}

// ---------------------------------------------------------------------
// 4. Engine layer: hot swap under concurrent pinned serving.

TEST(AdvisorSwapTest, HotSwapIsAtomicUnderConcurrentPins) {
  OnlineAdvisorOptions options;
  options.epoch_queries = 1u << 30;  // swaps only via ForceReselect
  options.window_queries = 0;
  options.select_iterations = 10;
  AdvisorRig rig(Wk1Spec(0.25), options);

  const size_t half = rig.workload.sql.size() / 2;
  for (size_t qi = 0; qi < half; ++qi) {
    ASSERT_TRUE(rig.advisor->IngestSql(rig.workload.sql[qi]).ok());
  }
  ASSERT_TRUE(rig.advisor->ForceReselect().ok());
  ASSERT_GT(rig.store->size(), 0u);

  // Readers continuously pin the live set and touch every pinned view's
  // descriptor and key; a swap that dropped a pinned view's backing
  // state early, or published a half-committed generation, shows up
  // here (and under tsan) as a dangling read or a torn set.
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> pins{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        ViewSetSnapshot pin = rig.store->PinLive();
        uint64_t bytes = 0;
        for (const MaterializedView* view : pin.views()) {
          ASSERT_NE(view, nullptr);
          ASSERT_NE(view->plan, nullptr);
          ASSERT_FALSE(view->canonical_key.empty());
          bytes += view->byte_size;
        }
        EXPECT_EQ(bytes > 0, !pin.views().empty());
        pins.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  // Writer: keep mutating the instance and swapping generations.
  for (size_t qi = half; qi < rig.workload.sql.size(); ++qi) {
    ASSERT_TRUE(rig.advisor->IngestSql(rig.workload.sql[qi]).ok());
    if (qi % 8 == 0) {
      ASSERT_TRUE(rig.advisor->ForceReselect().ok());
    }
  }
  ASSERT_TRUE(rig.advisor->ForceReselect().ok());
  stop.store(true, std::memory_order_relaxed);
  for (auto& t : readers) t.join();

  const OnlineAdvisorStats stats = rig.advisor->stats();
  EXPECT_GT(pins.load(), 0u);
  EXPECT_EQ(stats.swaps_committed, stats.reselections);
  // After the last commit the store holds exactly the selected set.
  rig.store->WaitIdle();
  EXPECT_EQ(rig.store->size(), rig.advisor->SelectedKeys().size());
  for (const std::string& key : rig.advisor->SelectedKeys()) {
    ASSERT_NE(rig.store->FindByKey(key), nullptr) << key;
  }
}

// ---------------------------------------------------------------------
// 5. End to end: drift -> triggers -> re-selection -> swap.

TEST(AdvisorEndToEndTest, DriftingStreamReselectsAndSwaps) {
  OnlineAdvisorOptions options;
  options.epoch_queries = 10;
  options.window_queries = 30;
  options.select_iterations = 15;
  AdvisorRig rig(Wk1Spec(0.3), options);

  // A churn-style drift: sweep the query space front to back, then
  // replay the back half — the sliding window makes the live mix
  // rotate, so candidates appear and disappear across epochs.
  std::vector<size_t> stream;
  for (size_t qi = 0; qi < rig.workload.sql.size(); ++qi) {
    stream.push_back(qi);
  }
  for (size_t qi = rig.workload.sql.size() / 2;
       qi < rig.workload.sql.size(); ++qi) {
    stream.push_back(qi);
  }
  for (const size_t qi : stream) {
    ASSERT_TRUE(rig.advisor->IngestSql(rig.workload.sql[qi]).ok());
  }

  const OnlineAdvisorStats stats = rig.advisor->stats();
  EXPECT_EQ(stats.ingested, stream.size());
  EXPECT_EQ(stats.reselections, stream.size() / options.epoch_queries);
  EXPECT_EQ(stats.swaps_committed, stats.reselections);
  EXPECT_GT(stats.views_materialized, 0u);
  EXPECT_GT(stats.churn_events, 0u);
  EXPECT_GT(stats.incumbent_utility, 0.0);
  ExpectIndexMatchesOracle(*rig.advisor);
  rig.store->WaitIdle();
  EXPECT_EQ(rig.store->size(), rig.advisor->SelectedKeys().size());
}

TEST(AdvisorEndToEndTest, DriftScoreTriggerFiresOnChurn) {
  OnlineAdvisorOptions options;
  options.trigger = ReselectTrigger::kDriftScore;
  options.drift_churn_threshold = 6;
  options.window_queries = 20;
  options.select_iterations = 10;
  AdvisorRig rig(Wk1Spec(0.25), options);

  for (const std::string& sql : rig.workload.sql) {
    ASSERT_TRUE(rig.advisor->IngestSql(sql).ok());
  }
  const OnlineAdvisorStats stats = rig.advisor->stats();
  // The rotating window keeps generating candidate churn, so the drift
  // trigger fires repeatedly — and every firing commits its swap.
  EXPECT_GT(stats.reselections, 1u);
  EXPECT_EQ(stats.swaps_committed, stats.reselections);
  EXPECT_GE(stats.churn_events, options.drift_churn_threshold);
}

TEST(AdvisorEndToEndTest, UtilityRegressionTriggerReselects) {
  OnlineAdvisorOptions options;
  options.trigger = ReselectTrigger::kUtilityRegression;
  options.epoch_queries = 8;  // fires the initial selection
  options.utility_regression = 0.05;
  options.window_queries = 16;
  options.select_iterations = 10;
  AdvisorRig rig(Wk1Spec(0.25), options);

  for (const std::string& sql : rig.workload.sql) {
    ASSERT_TRUE(rig.advisor->IngestSql(sql).ok());
  }
  const OnlineAdvisorStats stats = rig.advisor->stats();
  // The initial selection fired; the rotating window then erodes the
  // incumbent's utility (its views' queries leave the window), so the
  // regression trigger re-selects at least once more.
  EXPECT_GT(stats.reselections, 1u);
  EXPECT_EQ(stats.swaps_committed, stats.reselections);
}

}  // namespace
}  // namespace autoview
