// Tests for tools/avcheck, the project-native static analyzer. Each
// rule gets a passing and a violating synthetic fixture fed through the
// same RunChecks() entry point the CLI uses, so the checks themselves —
// not just the plumbing — are pinned. The final test runs the analyzer
// over this repository's real src/ tree and requires it to be clean,
// which is the invariant the ctest `lint` tier enforces.

#include "tools/avcheck.h"

#include <algorithm>
#include <string>
#include <vector>

#include "gtest/gtest.h"

namespace autoview {
namespace tools {
namespace {

std::vector<Finding> RunOn(const std::vector<SourceFile>& files,
                         const std::vector<std::string>& checks = {}) {
  Result<std::vector<Finding>> r = RunChecks(files, checks);
  EXPECT_TRUE(r.ok()) << r.status().message();
  if (!r.ok()) return {};
  return std::move(r).value();
}

int Count(const std::vector<Finding>& findings, const std::string& check) {
  return static_cast<int>(
      std::count_if(findings.begin(), findings.end(),
                    [&](const Finding& f) { return f.check == check; }));
}

TEST(AvcheckApi, AllCheckNamesNonEmptyAndUnique) {
  std::vector<std::string> names = AllCheckNames();
  ASSERT_FALSE(names.empty());
  std::vector<std::string> sorted = names;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_TRUE(std::adjacent_find(sorted.begin(), sorted.end()) ==
              sorted.end());
}

TEST(AvcheckApi, UnknownCheckNameIsInvalidArgument) {
  Result<std::vector<Finding>> r =
      RunChecks({{"src/x.cc", "int x;\n"}}, {"not-a-check"});
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------------------
// lock-order

constexpr char kThreeMutexCycle[] = R"(
namespace autoview {

class PB;
class PC;

class PA {
 public:
  void Left();
  mutable Mutex a_mu_;
  int guarded_ AV_GUARDED_BY(a_mu_) = 0;
  PB* b_ = nullptr;
};

class PB {
 public:
  void Mid();
  mutable Mutex b_mu_;
  int guarded_ AV_GUARDED_BY(b_mu_) = 0;
  PC* c_ = nullptr;
};

class PC {
 public:
  void Back();
  mutable Mutex c_mu_;
  int guarded_ AV_GUARDED_BY(c_mu_) = 0;
  PA* a_ = nullptr;
};

void PA::Left() {
  MutexLock lock(a_mu_);
  MutexLock lock2(b_->b_mu_);
}

void PB::Mid() {
  MutexLock lock(b_mu_);
  MutexLock lock2(c_->c_mu_);
}

void PC::Back() {
  MutexLock lock(c_mu_);
  MutexLock lock2(a_->a_mu_);
}

}  // namespace autoview
)";

TEST(LockOrder, ThreeMutexCycleReportedWithWitnessPath) {
  std::vector<Finding> f =
      RunOn({{"src/core/cycle.cc", kThreeMutexCycle}}, {"lock-order"});
  ASSERT_EQ(Count(f, "lock-order"), 1);
  const std::string& msg = f[0].message;
  // The witness path names every edge of the cycle with its site.
  EXPECT_NE(msg.find("cycle"), std::string::npos) << msg;
  EXPECT_NE(msg.find("PA::a_mu_ -> PB::b_mu_"), std::string::npos) << msg;
  EXPECT_NE(msg.find("PB::b_mu_ -> PC::c_mu_"), std::string::npos) << msg;
  EXPECT_NE(msg.find("PC::c_mu_ -> PA::a_mu_"), std::string::npos) << msg;
  EXPECT_NE(msg.find("src/core/cycle.cc:"), std::string::npos) << msg;
}

TEST(LockOrder, ConsistentHierarchyIsClean) {
  // Same shape, but PC::Back respects the A -> B -> C order.
  std::string fixed = kThreeMutexCycle;
  const std::string bad = "MutexLock lock2(a_->a_mu_);";
  fixed.replace(fixed.find(bad), bad.size(), "int x = 0; (void)x;");
  std::vector<Finding> f = RunOn({{"src/core/ok.cc", fixed}}, {"lock-order"});
  EXPECT_EQ(Count(f, "lock-order"), 0);
}

TEST(LockOrder, SelfDeadlockReported) {
  const char* src = R"(
namespace autoview {
class P {
 public:
  void F();
  mutable Mutex mu_;
  int guarded_ AV_GUARDED_BY(mu_) = 0;
};
void P::F() {
  MutexLock lock(mu_);
  MutexLock again(mu_);
}
}
)";
  std::vector<Finding> f = RunOn({{"src/core/self.cc", src}}, {"lock-order"});
  EXPECT_GE(Count(f, "lock-order"), 1);
}

TEST(LockOrder, StoreToShardMutexHierarchyIsClean) {
  // The serving fast path's locking shape: the store mutates its
  // ViewIndex/RewriteCache under mu_ (store mutex -> shard mutex), and
  // probes take only the shard mutex. One-directional, so no cycle.
  const char* src = R"(
namespace autoview {
class Idx {
 public:
  void Insert();
  void Probe() const;
  struct Shard {
    mutable Mutex mu;
    int buckets AV_GUARDED_BY(mu) = 0;
  };
  Shard shard_;
};
void Idx::Insert() {
  MutexLock lock(shard_.mu);
  shard_.buckets = 1;
}
void Idx::Probe() const {
  MutexLock lock(shard_.mu);
}
class Store {
 public:
  void Install();
  mutable Mutex mu_;
  int by_id_ AV_GUARDED_BY(mu_) = 0;
  Idx index_;
};
void Store::Install() {
  MutexLock lock(mu_);
  by_id_ = 1;
  index_.Insert();
}
}
)";
  std::vector<Finding> f = RunOn({{"src/core/shard.cc", src}},
                                 {"lock-order", "blocking-under-lock"});
  EXPECT_EQ(Count(f, "lock-order"), 0);
  EXPECT_EQ(Count(f, "blocking-under-lock"), 0);
}

// ---------------------------------------------------------------------------
// blocking-under-lock

TEST(BlockingUnderLock, WaitUnderHeldMutexReported) {
  const char* src = R"(
namespace autoview {
void F() {
  Mutex mu;
  MutexLock lock(mu);
  WaitIdle();
}
}
)";
  std::vector<Finding> f =
      RunOn({{"src/core/wait.cc", src}}, {"blocking-under-lock"});
  ASSERT_EQ(Count(f, "blocking-under-lock"), 1);
  EXPECT_NE(f[0].message.find("WaitIdle"), std::string::npos);
}

TEST(BlockingUnderLock, ShardMutexMemberIsTracked) {
  // A sharded structure (view index / rewrite cache shape): the walker
  // must resolve `shard_.mu` to the nested Shard::mu and flag blocking
  // work under it just like a top-level class mutex.
  const char* src = R"(
namespace autoview {
struct Cache {
  void Sweep();
  struct Shard {
    mutable Mutex mu;
    int entries AV_GUARDED_BY(mu) = 0;
  };
  Shard shard_;
};
void Cache::Sweep() {
  MutexLock lock(shard_.mu);
  WaitIdle();
}
}
)";
  std::vector<Finding> f =
      RunOn({{"src/core/shard_block.cc", src}}, {"blocking-under-lock"});
  ASSERT_EQ(Count(f, "blocking-under-lock"), 1);
  EXPECT_NE(f[0].message.find("Shard::mu"), std::string::npos);
}

TEST(BlockingUnderLock, WaitOutsideLockIsClean) {
  const char* src = R"(
namespace autoview {
void F() {
  Mutex mu;
  {
    MutexLock lock(mu);
  }
  WaitIdle();
}
}
)";
  std::vector<Finding> f =
      RunOn({{"src/core/ok.cc", src}}, {"blocking-under-lock"});
  EXPECT_EQ(Count(f, "blocking-under-lock"), 0);
}

TEST(BlockingUnderLock, RationaleCommentSuppresses) {
  const char* src = R"(
namespace autoview {
void F() {
  Mutex mu;
  MutexLock lock(mu);
  // avcheck:allow(blocking-under-lock): fixture rationale — the wait
  // is the whole point of this critical section.
  WaitIdle();
}
}
)";
  std::vector<Finding> f =
      RunOn({{"src/core/ok.cc", src}}, {"blocking-under-lock"});
  EXPECT_EQ(Count(f, "blocking-under-lock"), 0);
}

TEST(BlockingUnderLock, BareMarkerWithoutRationaleDoesNotSuppress) {
  const char* src = R"(
namespace autoview {
void F() {
  Mutex mu;
  MutexLock lock(mu);
  // avcheck:allow(blocking-under-lock):
  WaitIdle();
}
}
)";
  std::vector<Finding> f =
      RunOn({{"src/core/bad.cc", src}}, {"blocking-under-lock"});
  EXPECT_EQ(Count(f, "blocking-under-lock"), 1);
}

// ---------------------------------------------------------------------------
// discarded-status

TEST(DiscardedStatus, BareCallToStatusFunctionReported) {
  const char* src = R"(
namespace autoview {
Status F();
void G() {
  F();
}
}
)";
  std::vector<Finding> f =
      RunOn({{"src/core/disc.cc", src}}, {"discarded-status"});
  ASSERT_EQ(Count(f, "discarded-status"), 1);
  EXPECT_EQ(f[0].line, 5);
}

TEST(DiscardedStatus, HandledAndNonStatusCallsAreClean) {
  const char* src = R"(
namespace autoview {
Status F();
void H();
void G() {
  Status s = F();
  if (!s.ok()) return;
  H();
}
}
)";
  std::vector<Finding> f = RunOn({{"src/core/ok.cc", src}}, {"discarded-status"});
  EXPECT_EQ(Count(f, "discarded-status"), 0);
}

TEST(DiscardedStatus, VoidCastNeedsRationaleComment) {
  const char* bad = R"(
namespace autoview {
Status F();
void G() {
  (void)F();
}
}
)";
  const char* good = R"(
namespace autoview {
Status F();
void G() {
  (void)F();  // best-effort cleanup: failure already logged upstream
}
}
)";
  EXPECT_EQ(Count(RunOn({{"src/core/bad.cc", bad}}, {"discarded-status"}),
                  "discarded-status"),
            1);
  EXPECT_EQ(Count(RunOn({{"src/core/good.cc", good}}, {"discarded-status"}),
                  "discarded-status"),
            0);
}

TEST(DiscardedStatus, MemberCallOnOwnClassReported) {
  const char* src = R"(
namespace autoview {
class K {
 public:
  Status M();
  void N();
};
void K::N() {
  M();
}
}
)";
  std::vector<Finding> f =
      RunOn({{"src/core/member.cc", src}}, {"discarded-status"});
  EXPECT_EQ(Count(f, "discarded-status"), 1);
}

// ---------------------------------------------------------------------------
// atomic-ordering

TEST(AtomicOrdering, ExplicitOrderWithoutDeclRationaleReported) {
  const char* src = R"(
namespace autoview {
std::atomic<int> g_counter{0};
void F() {
  g_counter.store(1, std::memory_order_relaxed);
}
}
)";
  std::vector<Finding> f =
      RunOn({{"src/core/atom.cc", src}}, {"atomic-ordering"});
  ASSERT_EQ(Count(f, "atomic-ordering"), 1);
  EXPECT_NE(f[0].message.find("g_counter"), std::string::npos);
}

TEST(AtomicOrdering, DeclRationaleCommentMakesItClean) {
  const char* src = R"(
namespace autoview {
// Relaxed ordering is enough: the counter is monotonic and no data is
// published through it.
std::atomic<int> g_counter{0};
void F() {
  g_counter.store(1, std::memory_order_relaxed);
}
}
)";
  std::vector<Finding> f = RunOn({{"src/core/ok.cc", src}}, {"atomic-ordering"});
  EXPECT_EQ(Count(f, "atomic-ordering"), 0);
}

// ---------------------------------------------------------------------------
// Ported grep rules. One violating and one passing fixture each; the
// passing side doubles as the path-scoping / lexer-immunity proof.

TEST(PortedRules, NoNakedAbortScopedAwayFromLoggingHeader) {
  const char* src = "void F() {\n  abort();\n}\n";
  EXPECT_EQ(Count(RunOn({{"src/core/x.cc", src}}, {"no-naked-abort"}),
                  "no-naked-abort"),
            1);
  // The one sanctioned abort site is exempt.
  EXPECT_EQ(Count(RunOn({{"src/util/logging.h", src}}, {"no-naked-abort"}),
                  "no-naked-abort"),
            0);
}

TEST(PortedRules, NoAmbientRandomnessExemptsSeededRngImpl) {
  const char* src = "void F() {\n  std::mt19937 gen;\n}\n";
  EXPECT_EQ(Count(RunOn({{"src/core/x.cc", src}}, {"no-ambient-randomness"}),
                  "no-ambient-randomness"),
            1);
  EXPECT_EQ(Count(RunOn({{"src/util/random.h", src}}, {"no-ambient-randomness"}),
                  "no-ambient-randomness"),
            0);
}

TEST(PortedRules, NoCoutIgnoresCommentsAndStrings) {
  // The real lexer must not trip on std::cout inside a comment or a
  // string literal — exactly what the old sed pipeline got wrong in
  // corner cases.
  const char* clean =
      "// std::cout is banned here\n"
      "const char* kMsg = \"std::cout\";\n";
  EXPECT_EQ(Count(RunOn({{"src/core/ok.cc", clean}}, {"no-cout"}), "no-cout"),
            0);
  const char* bad = "void F() {\n  std::cout << 1;\n}\n";
  std::vector<Finding> f = RunOn({{"src/core/bad.cc", bad}}, {"no-cout"});
  ASSERT_EQ(Count(f, "no-cout"), 1);
  EXPECT_EQ(f[0].line, 2);
}

TEST(PortedRules, NoRawMutexExemptsAnnotationsHeader) {
  const char* src = "std::mutex g_mu;\n";
  EXPECT_EQ(Count(RunOn({{"src/core/x.cc", src}}, {"no-raw-mutex"}),
                  "no-raw-mutex"),
            1);
  EXPECT_EQ(Count(RunOn({{"src/util/annotations.h", src}}, {"no-raw-mutex"}),
                  "no-raw-mutex"),
            0);
}

TEST(PortedRules, NoNakedNewAllowsSameLineOwnership) {
  EXPECT_EQ(Count(RunOn({{"src/core/x.cc", "int* p = new int[4];\n"}},
                      {"no-naked-new"}),
                  "no-naked-new"),
            1);
  EXPECT_EQ(
      Count(RunOn({{"src/core/ok.cc",
                  "std::unique_ptr<int> p(new int(3));\n"
                  "auto q = std::make_unique<int>(4);\n"}},
                {"no-naked-new"}),
            "no-naked-new"),
      0);
}

TEST(PortedRules, MutexAnnotatedWindow) {
  const char* bad =
      "class K {\n"
      "  Mutex mu_;\n"
      "  int x = 0;\n"
      "};\n";
  EXPECT_EQ(Count(RunOn({{"src/core/bad.cc", bad}}, {"mutex-annotated"}),
                  "mutex-annotated"),
            1);
  const char* good =
      "class K {\n"
      "  Mutex mu_;\n"
      "  int x AV_GUARDED_BY(mu_) = 0;\n"
      "};\n";
  EXPECT_EQ(Count(RunOn({{"src/core/good.cc", good}}, {"mutex-annotated"}),
                  "mutex-annotated"),
            0);
}

TEST(PortedRules, EngineIoConfinedToWal) {
  const char* src = "void F() {\n  std::fopen(\"x\", \"rb\");\n}\n";
  EXPECT_EQ(Count(RunOn({{"src/engine/other.cc", src}}, {"engine-io-confined"}),
                  "engine-io-confined"),
            1);
  EXPECT_EQ(Count(RunOn({{"src/engine/view_store_log.cc", src}},
                      {"engine-io-confined"}),
                  "engine-io-confined"),
            0);
  // Outside the engine the rule does not apply at all.
  EXPECT_EQ(Count(RunOn({{"src/core/other.cc", src}}, {"engine-io-confined"}),
                  "engine-io-confined"),
            0);
}

TEST(PortedRules, AdvisorClockSeam) {
  const char* src = "void F() {\n  auto t = std::chrono::seconds(1);\n}\n";
  EXPECT_EQ(Count(RunOn({{"src/core/advisor.cc", src}}, {"advisor-clock-seam"}),
                  "advisor-clock-seam"),
            1);
  EXPECT_EQ(Count(RunOn({{"src/core/database.cc", src}}, {"advisor-clock-seam"}),
                  "advisor-clock-seam"),
            0);
}

TEST(PortedRules, LoadgenSeedFlow) {
  EXPECT_EQ(Count(RunOn({{"src/bench/x.cc", "Rng rng(42);\n"}},
                      {"loadgen-seed-flow"}),
                  "loadgen-seed-flow"),
            1);
  EXPECT_EQ(Count(RunOn({{"src/bench/ok.cc", "Rng rng(config.seed);\n"}},
                      {"loadgen-seed-flow"}),
                  "loadgen-seed-flow"),
            0);
  // Library code outside src/bench/ is out of scope for this rule.
  EXPECT_EQ(Count(RunOn({{"src/core/x.cc", "Rng rng(42);\n"}},
                      {"loadgen-seed-flow"}),
                  "loadgen-seed-flow"),
            0);
}

// ---------------------------------------------------------------------------
// Whole-tree gate: the analyzer over this repository's real sources
// must be clean. This is the exact invariant `ctest -L lint` enforces;
// pinning it here means a finding introduced by a future change fails
// the unit suite too, with the full finding text in the assert message.

TEST(WholeTree, RepositorySourcesAreClean) {
#ifndef AVCHECK_SOURCE_ROOT
  GTEST_SKIP() << "AVCHECK_SOURCE_ROOT not defined by the build";
#else
  Result<std::vector<SourceFile>> tree = LoadSourceTree(AVCHECK_SOURCE_ROOT);
  ASSERT_TRUE(tree.ok()) << tree.status().message();
  ASSERT_GT(tree.value().size(), 50u)
      << "suspiciously small tree — wrong AVCHECK_SOURCE_ROOT?";
  std::vector<Finding> findings = RunOn(tree.value());
  std::string all;
  for (const Finding& f : findings) {
    all += f.file + ":" + std::to_string(f.line) + ": [" + f.check + "] " +
           f.message + "\n";
  }
  EXPECT_TRUE(findings.empty()) << all;
#endif
}

}  // namespace
}  // namespace tools
}  // namespace autoview
