#include <gtest/gtest.h>

#include "catalog/catalog.h"
#include "catalog/value.h"

namespace autoview {
namespace {

TEST(ValueTest, TypesAndAccessors) {
  Value i(int64_t{42});
  Value d(3.5);
  Value s("abc");
  EXPECT_TRUE(i.is_int());
  EXPECT_TRUE(d.is_double());
  EXPECT_TRUE(s.is_string());
  EXPECT_EQ(i.type(), ColumnType::kInt64);
  EXPECT_EQ(d.type(), ColumnType::kDouble);
  EXPECT_EQ(s.type(), ColumnType::kString);
  EXPECT_EQ(i.AsInt(), 42);
  EXPECT_EQ(i.AsDouble(), 42.0);
  EXPECT_EQ(s.AsString(), "abc");
}

TEST(ValueTest, DefaultIsIntZero) {
  Value v;
  EXPECT_TRUE(v.is_int());
  EXPECT_EQ(v.AsInt(), 0);
}

TEST(ValueTest, NumericCrossTypeComparison) {
  EXPECT_EQ(Value(int64_t{3}).Compare(Value(3.0)), 0);
  EXPECT_LT(Value(int64_t{2}).Compare(Value(2.5)), 0);
  EXPECT_GT(Value(4.5).Compare(Value(int64_t{4})), 0);
}

TEST(ValueTest, StringsOrderAfterNumbers) {
  EXPECT_LT(Value(int64_t{99}).Compare(Value("a")), 0);
  EXPECT_GT(Value("a").Compare(Value(1.0)), 0);
  EXPECT_LT(Value("apple").Compare(Value("banana")), 0);
}

TEST(ValueTest, HashConsistentWithEquality) {
  EXPECT_EQ(Value(int64_t{3}).Hash(), Value(3.0).Hash());
  EXPECT_EQ(Value("x").Hash(), Value("x").Hash());
  EXPECT_NE(Value("x").Hash(), Value("y").Hash());
}

TEST(ValueTest, ToStringFormats) {
  EXPECT_EQ(Value(int64_t{7}).ToString(), "7");
  EXPECT_EQ(Value("hi").ToString(), "'hi'");
  EXPECT_EQ(Value(2.5).ToString(), "2.5");
}

TEST(ValueTest, ByteSize) {
  EXPECT_EQ(Value(int64_t{1}).ByteSize(), 8u);
  EXPECT_EQ(Value(1.0).ByteSize(), 8u);
  EXPECT_GT(Value("hello").ByteSize(), 5u);
}

TEST(CatalogTest, AddAndLookup) {
  Catalog catalog;
  ASSERT_TRUE(catalog
                  .AddTable(TableSchema("t", {{"a", ColumnType::kInt64},
                                              {"b", ColumnType::kString}}))
                  .ok());
  EXPECT_TRUE(catalog.HasTable("t"));
  EXPECT_FALSE(catalog.HasTable("u"));
  auto schema = catalog.GetTable("t");
  ASSERT_TRUE(schema.ok());
  EXPECT_EQ(schema.value()->num_columns(), 2u);
  EXPECT_EQ(schema.value()->FindColumn("b"), 1u);
  EXPECT_FALSE(schema.value()->FindColumn("zzz").has_value());
  EXPECT_EQ(catalog.num_tables(), 1u);
}

TEST(CatalogTest, DuplicateRejected) {
  Catalog catalog;
  ASSERT_TRUE(catalog.AddTable(TableSchema("t", {})).ok());
  EXPECT_EQ(catalog.AddTable(TableSchema("t", {})).code(),
            StatusCode::kAlreadyExists);
}

TEST(CatalogTest, StatsLifecycle) {
  Catalog catalog;
  ASSERT_TRUE(
      catalog.AddTable(TableSchema("t", {{"a", ColumnType::kInt64}})).ok());
  // Default stats are zeroed.
  EXPECT_EQ(catalog.GetStats("t").row_count, 0u);
  TableStats stats;
  stats.row_count = 10;
  stats.byte_size = 80;
  ASSERT_TRUE(catalog.SetStats("t", stats).ok());
  EXPECT_EQ(catalog.GetStats("t").row_count, 10u);
  // Stats for unknown table rejected.
  EXPECT_EQ(catalog.SetStats("nope", stats).code(), StatusCode::kNotFound);
}

TEST(CatalogTest, TableNamesSorted) {
  Catalog catalog;
  ASSERT_TRUE(catalog.AddTable(TableSchema("zebra", {})).ok());
  ASSERT_TRUE(catalog.AddTable(TableSchema("apple", {})).ok());
  std::vector<std::string> expected = {"apple", "zebra"};
  EXPECT_EQ(catalog.TableNames(), expected);
}

TEST(HistogramTest, SelectivityEdgeCases) {
  Histogram hist;
  hist.lo = 0;
  hist.hi = 100;
  hist.bucket_counts = {25, 25, 25, 25};
  // Out-of-range equality is zero.
  EXPECT_EQ(hist.EqualitySelectivity(-5, 10), 0.0);
  EXPECT_EQ(hist.EqualitySelectivity(200, 10), 0.0);
  // Range selectivity clamps.
  EXPECT_EQ(hist.LessThanSelectivity(-1), 0.0);
  EXPECT_EQ(hist.LessThanSelectivity(1000), 1.0);
  EXPECT_NEAR(hist.LessThanSelectivity(50), 0.5, 1e-9);
  EXPECT_NEAR(hist.LessThanSelectivity(25), 0.25, 1e-9);
  // Uniform equality with 10 distinct values spread over 4 buckets.
  EXPECT_NEAR(hist.EqualitySelectivity(10, 10), 0.25 / 2.5, 1e-9);
  // Empty histogram.
  Histogram empty;
  EXPECT_EQ(empty.EqualitySelectivity(1, 1), 0.0);
  EXPECT_EQ(empty.LessThanSelectivity(1), 0.0);
}

TEST(ColumnTypeTest, NamesMatchPaperSpelling) {
  // The schema-encoding feature uses these exact spellings (Fig. 7b).
  EXPECT_STREQ(ColumnTypeName(ColumnType::kInt64), "Int");
  EXPECT_STREQ(ColumnTypeName(ColumnType::kString), "String");
  EXPECT_STREQ(ColumnTypeName(ColumnType::kDouble), "Double");
}

}  // namespace
}  // namespace autoview
