#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "core/autoview.h"
#include "util/metrics.h"
#include "costmodel/baselines.h"
#include "costmodel/gbm.h"
#include "costmodel/traditional.h"
#include "costmodel/wide_deep.h"
#include "workload/generator.h"

namespace autoview {
namespace {

/// Shared fixture: one small workload, ground truth built once.
class CostModelTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    CloudWorkloadSpec spec;
    spec.name = "mini";
    spec.projects = 3;
    spec.queries = 50;
    spec.min_rows = 300;
    spec.max_rows = 900;
    spec.subquery_pool = 8;
    spec.seed = 21;
    workload_ = new GeneratedWorkload(GenerateCloudWorkload(spec));
    system_ = new AutoViewSystem(workload_->db.get(), AutoViewOptions{});
    ASSERT_TRUE(system_->LoadWorkload(workload_->sql).ok());
    ASSERT_TRUE(system_->BuildGroundTruth().ok());
    const auto& dataset = system_->cost_dataset();
    ASSERT_GE(dataset.size(), 20u);
    DatasetSplit split = SplitDataset(dataset.size(), 9);
    for (size_t i : split.train) train_.push_back(dataset[i]);
    for (size_t i : split.test) test_.push_back(dataset[i]);
  }
  static void TearDownTestSuite() {
    delete system_;
    system_ = nullptr;
    delete workload_;
    workload_ = nullptr;
  }

  static GeneratedWorkload* workload_;
  static AutoViewSystem* system_;
  static std::vector<CostSample> train_;
  static std::vector<CostSample> test_;
};

GeneratedWorkload* CostModelTest::workload_ = nullptr;
AutoViewSystem* CostModelTest::system_ = nullptr;
std::vector<CostSample> CostModelTest::train_;
std::vector<CostSample> CostModelTest::test_;

TEST_F(CostModelTest, FeatureExtractionShape) {
  FeatureExtractor extractor(&workload_->db->catalog());
  Features f = extractor.Extract(train_.front());
  EXPECT_EQ(f.numeric.size(), FeatureExtractor::NumNumericFeatures());
  EXPECT_FALSE(f.query_plan.empty());
  EXPECT_FALSE(f.view_plan.empty());
  EXPECT_FALSE(f.schema_keywords.empty());
  // Plan tokens start with an operator name.
  EXPECT_TRUE(f.query_plan[0][0] == "Aggregate" ||
              f.query_plan[0][0] == "Project" || f.query_plan[0][0] == "Join");
}

TEST_F(CostModelTest, NormalizerStandardizes) {
  Normalizer norm;
  norm.Fit({{1.0, 10.0}, {3.0, 10.0}});
  auto out = norm.Apply({3.0, 10.0});
  EXPECT_NEAR(out[0], 1.0, 1e-9);
  EXPECT_NEAR(out[1], 0.0, 1e-9);  // constant dim maps to 0
  // Unfitted normalizer passes through.
  Normalizer empty;
  EXPECT_EQ(empty.Apply({5.0})[0], 5.0);
}

TEST_F(CostModelTest, VocabSharedAndUnknownSafe) {
  KeywordVocab vocab;
  const size_t id = vocab.Add("user_id");
  EXPECT_EQ(vocab.Add("user_id"), id);
  EXPECT_EQ(vocab.Lookup("never_seen"), 0u);
  EXPECT_EQ(vocab.Add("'a string'"), 0u);  // literals are not keywords
  EXPECT_TRUE(KeywordVocab::IsStringLiteral("'x'"));
  EXPECT_FALSE(KeywordVocab::IsStringLiteral("x"));
}

TEST_F(CostModelTest, SplitRespectsRatio) {
  DatasetSplit split = SplitDataset(100, 3);
  EXPECT_EQ(split.train.size(), 70u);
  EXPECT_EQ(split.validation.size(), 10u);
  EXPECT_EQ(split.test.size(), 20u);
  // Disjoint cover.
  std::set<size_t> all(split.train.begin(), split.train.end());
  all.insert(split.validation.begin(), split.validation.end());
  all.insert(split.test.begin(), split.test.end());
  EXPECT_EQ(all.size(), 100u);
}

TEST_F(CostModelTest, TraditionalEstimatorIsFiniteAndPositive) {
  TraditionalEstimator optimizer(&workload_->db->catalog(), Pricing{});
  for (const auto& sample : test_) {
    const double est = optimizer.Estimate(sample);
    EXPECT_GE(est, 0.0);
    EXPECT_TRUE(std::isfinite(est));
  }
}

TEST_F(CostModelTest, CardinalityEstimatorSanity) {
  CardinalityEstimator card(&workload_->db->catalog());
  // Scan cardinality equals the stats row count.
  const auto& q = train_.front().query;
  for (const auto& node : q->Subtrees()) {
    if (node->op() == PlanOp::kTableScan) {
      EXPECT_EQ(card.EstimateRows(*node),
                static_cast<double>(workload_->db->catalog()
                                        .GetStats(node->table())
                                        .row_count));
    } else {
      EXPECT_GE(card.EstimateRows(*node), 0.0);
    }
  }
}

TEST_F(CostModelTest, LinearRegressorLearnsSomething) {
  LinearRegressorEstimator lr(&workload_->db->catalog());
  ASSERT_TRUE(lr.Train(train_).ok());
  EstimatorMetrics train_metrics = EvaluateEstimator(lr, train_);
  // Should beat the trivial predict-zero baseline on training data.
  double mean_abs = 0;
  for (const auto& s : train_) mean_abs += std::fabs(s.target);
  mean_abs /= static_cast<double>(train_.size());
  EXPECT_LT(train_metrics.mae, mean_abs);
}

TEST_F(CostModelTest, GbmFitsTrainingData) {
  GbmEstimator gbm(&workload_->db->catalog());
  ASSERT_TRUE(gbm.Train(train_).ok());
  EXPECT_GT(gbm.num_trees(), 0u);
  // Boosting must improve substantially on the constant mean predictor.
  double mean = 0;
  for (const auto& s : train_) mean += s.target;
  mean /= static_cast<double>(train_.size());
  double base_mae = 0;
  for (const auto& s : train_) base_mae += std::fabs(s.target - mean);
  base_mae /= static_cast<double>(train_.size());
  // Numeric features alone cannot separate same-shaped plans that
  // differ only in literals (the paper's motivation for plan content
  // encodings), so require improvement rather than a tight fit.
  EXPECT_LT(EvaluateEstimator(gbm, train_).mae, 0.9 * base_mae);
}

TEST_F(CostModelTest, WideDeepTrainsAndBeatsOptimizer) {
  WideDeepOptions opts = WideDeepOptions::Full();
  opts.epochs = 15;
  opts.batch_size = 8;
  WideDeepEstimator wd(&workload_->db->catalog(), opts);
  ASSERT_TRUE(wd.Train(train_).ok());
  EXPECT_GT(wd.NumParameters(), 1000u);
  // Loss decreased over training.
  const auto& losses = wd.training_losses();
  ASSERT_GE(losses.size(), 2u);
  EXPECT_LT(losses.back(), losses.front());

  TraditionalEstimator optimizer(&workload_->db->catalog(), Pricing{});
  const double wd_mape = EvaluateEstimator(wd, test_).mape;
  const double opt_mape = EvaluateEstimator(optimizer, test_).mape;
  EXPECT_LT(wd_mape, opt_mape);
}

TEST_F(CostModelTest, AblationsConstructAndTrain) {
  for (WideDeepOptions opts : {WideDeepOptions::NKw(), WideDeepOptions::NStr(),
                               WideDeepOptions::NExp()}) {
    opts.epochs = 3;
    opts.batch_size = 8;
    WideDeepEstimator model(&workload_->db->catalog(), opts);
    ASSERT_TRUE(model.Train(train_).ok()) << model.name();
    const double est = model.Estimate(test_.front());
    EXPECT_TRUE(std::isfinite(est)) << model.name();
  }
  EXPECT_EQ(WideDeepEstimator(&workload_->db->catalog(),
                              WideDeepOptions::NKw())
                .name(),
            "N-Kw");
  EXPECT_EQ(WideDeepEstimator(&workload_->db->catalog(),
                              WideDeepOptions::NStr())
                .name(),
            "N-Str");
  EXPECT_EQ(WideDeepEstimator(&workload_->db->catalog(),
                              WideDeepOptions::NExp())
                .name(),
            "N-Exp");
}

TEST_F(CostModelTest, DeepLearnTrainsOnSinglePlans) {
  DeepLearnEstimator::Options opts;
  opts.epochs = 8;
  DeepLearnEstimator dl(&workload_->db->catalog(), Pricing{}, opts);
  ASSERT_TRUE(dl.Train(train_).ok());
  for (size_t i = 0; i < 5 && i < test_.size(); ++i) {
    EXPECT_TRUE(std::isfinite(dl.Estimate(test_[i])));
    EXPECT_GE(dl.Estimate(test_[i]), 0.0);
  }
}

TEST_F(CostModelTest, EstimatedProblemTracksGroundTruth) {
  // An accurate estimator should produce an MvsProblem whose benefits
  // correlate with the ground truth.
  WideDeepOptions opts = WideDeepOptions::Full();
  opts.epochs = 15;
  opts.batch_size = 8;
  WideDeepEstimator wd(&workload_->db->catalog(), opts);
  ASSERT_TRUE(wd.Train(system_->cost_dataset()).ok());
  auto estimated = system_->EstimateProblem(wd);
  ASSERT_TRUE(estimated.ok());
  std::vector<double> truth, est;
  for (size_t i = 0; i < system_->problem().num_queries(); ++i) {
    for (size_t j = 0; j < system_->problem().num_views(); ++j) {
      if (system_->problem().benefit[i][j] == 0.0) continue;
      truth.push_back(system_->problem().benefit[i][j]);
      est.push_back(estimated.value().benefit[i][j]);
    }
  }
  ASSERT_GT(truth.size(), 10u);
  EXPECT_GT(PearsonCorrelation(truth, est), 0.5);
}

TEST_F(CostModelTest, EmptyTrainingRejected) {
  WideDeepEstimator wd(&workload_->db->catalog(), WideDeepOptions::Full());
  EXPECT_FALSE(wd.Train({}).ok());
  LinearRegressorEstimator lr(&workload_->db->catalog());
  EXPECT_FALSE(lr.Train({}).ok());
  GbmEstimator gbm(&workload_->db->catalog());
  EXPECT_FALSE(gbm.Train({}).ok());
}

}  // namespace
}  // namespace autoview
