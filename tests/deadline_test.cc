#include "util/deadline.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>

#include "generators.h"
#include "ilp/problem.h"
#include "select/iterview.h"
#include "select/rlview.h"
#include "util/metrics.h"
#include "util/thread_pool.h"

namespace autoview {
namespace {

TEST(DeadlineTest, DefaultIsInfinite) {
  Deadline d;
  EXPECT_TRUE(d.IsInfinite());
  EXPECT_FALSE(d.Expired());
  EXPECT_EQ(d.Remaining(), std::chrono::nanoseconds::max());
}

TEST(DeadlineTest, ZeroBudgetExpiresImmediately) {
  EXPECT_TRUE(Deadline::After(std::chrono::nanoseconds(0)).Expired());
  EXPECT_TRUE(Deadline::AfterMillis(0.0).Expired());
  EXPECT_EQ(Deadline::AfterMillis(0.0).Remaining(),
            std::chrono::nanoseconds(0));
}

TEST(DeadlineTest, FutureBudgetNotYetExpired) {
  Deadline d = Deadline::AfterMillis(60'000.0);
  EXPECT_FALSE(d.IsInfinite());
  EXPECT_FALSE(d.Expired());
  EXPECT_GT(d.Remaining(), std::chrono::nanoseconds(0));
}

TEST(CancellationTokenTest, CopiesShareTheFlag) {
  CancellationToken a;
  CancellationToken b = a;
  EXPECT_FALSE(b.Cancelled());
  a.RequestCancel();
  EXPECT_TRUE(a.Cancelled());
  EXPECT_TRUE(b.Cancelled());
  // A fresh token owns a fresh flag.
  CancellationToken c;
  EXPECT_FALSE(c.Cancelled());
  EXPECT_TRUE(StopRequested(Deadline(), a));
  EXPECT_FALSE(StopRequested(Deadline(), c));
}

TEST(ParallelForCancelTest, ThrownChunkCancelsQueuedChunks) {
  ThreadPool pool(2);
  constexpr size_t kIndices = 1000;
  std::atomic<bool> poisoned{false};
  std::atomic<size_t> executed{0};
  EXPECT_THROW(
      pool.ParallelFor(0, kIndices, [&](size_t i) {
        if (i == 0) {
          poisoned.store(true);
          throw std::runtime_error("chunk failure");
        }
        // Park until the poison chunk has thrown, so chunks queued
        // behind the two workers observe the internal cancel token.
        while (!poisoned.load()) std::this_thread::yield();
        executed.fetch_add(1);
      }),
      std::runtime_error);
  // The two in-flight chunks may finish, but the rest must be skipped.
  EXPECT_LT(executed.load(), kIndices - 1);
}

TEST(ParallelForCancelTest, PreCancelledTokenSkipsAllWork) {
  ThreadPool pool(2);
  CancellationToken cancel;
  cancel.RequestCancel();
  std::atomic<size_t> executed{0};
  pool.ParallelFor(0, 64, [&](size_t) { executed.fetch_add(1); }, 1, &cancel);
  EXPECT_EQ(executed.load(), 0u);
}

TEST(ParallelForCancelTest, TokenCancelsMidFlight) {
  ThreadPool pool(2);
  CancellationToken cancel;
  std::atomic<size_t> executed{0};
  pool.ParallelFor(
      0, 1000,
      [&](size_t) {
        executed.fetch_add(1);
        cancel.RequestCancel();
      },
      1, &cancel);
  EXPECT_LT(executed.load(), 1000u);
}

TEST(AnytimeSelectionTest, IterViewUnderTightDeadlineStaysFeasible) {
  const MvsProblem problem = testing::RandomProblem(40, 30, 11);
  GlobalRobustness().Reset();

  IterViewSelector::Options options;
  options.iterations = 200'000;  // far more than 1ms allows
  options.seed = 7;
  options.deadline = Deadline::AfterMillis(1.0);
  IterViewSelector selector(options);
  auto r = selector.Select(problem);
  ASSERT_TRUE(r.ok());
  const MvsSolution& s = r.value();
  EXPECT_TRUE(s.timed_out);
  EXPECT_TRUE(IsFeasible(problem, s.z, s.y));
  // Anytime guarantee: never worse than materializing nothing.
  EXPECT_GE(s.utility, 0.0);
  EXPECT_GE(GlobalRobustness().Read().selection_timeouts, 1u);
}

TEST(AnytimeSelectionTest, TightDeadlineStaysFeasibleOnBothEngines) {
  // The engine dispatch must not weaken any anytime guarantee: under a
  // wall-clock budget both the naive oracle and the incremental fast
  // path poll at the same per-iteration point and return a feasible,
  // non-negative incumbent. (The runs are not comparable to each other
  // here — wall-clock expiry is nondeterministic; bit-equivalence under
  // *deterministic* expiry is covered in problem_index_test.cc.)
  const MvsProblem problem = testing::RandomSparseProblem(50, 200, 13, 0.05);
  for (SelectionEngine engine :
       {SelectionEngine::kNaive, SelectionEngine::kIncremental}) {
    IterViewSelector::Options options;
    options.iterations = 200'000;  // far more than 1ms allows
    options.seed = 7;
    options.engine = engine;
    options.deadline = Deadline::AfterMillis(1.0);
    IterViewSelector selector(options);
    auto r = selector.Select(problem);
    ASSERT_TRUE(r.ok());
    const MvsSolution& s = r.value();
    EXPECT_TRUE(s.timed_out);
    EXPECT_TRUE(IsFeasible(problem, s.z, s.y));
    EXPECT_GE(s.utility, 0.0);
  }
}

TEST(AnytimeSelectionTest, NoDeadlineRunDominatesDeadlineRun) {
  const MvsProblem problem = testing::RandomProblem(30, 24, 13);

  IterViewSelector::Options limited;
  limited.iterations = 200'000;
  limited.seed = 5;
  limited.deadline = Deadline::AfterMillis(1.0);
  auto budget_run = IterViewSelector(limited).Select(problem);
  ASSERT_TRUE(budget_run.ok());

  IterViewSelector::Options full;
  full.iterations = 5000;  // more than 1ms of search on any machine
  full.seed = 5;
  auto full_run = IterViewSelector(full).Select(problem);
  ASSERT_TRUE(full_run.ok());
  EXPECT_FALSE(full_run.value().timed_out);
  // The search keeps a best-so-far incumbent, so more budget with the
  // same seed can only improve (or match) the utility.
  EXPECT_GE(full_run.value().utility, budget_run.value().utility);
}

TEST(AnytimeSelectionTest, CancelledSelectorReturnsImmediately) {
  const MvsProblem problem = testing::RandomProblem(30, 24, 17);
  IterViewSelector::Options options;
  options.iterations = 1'000'000;
  options.cancel.RequestCancel();
  auto r = IterViewSelector(options).Select(problem);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.value().timed_out);
  EXPECT_TRUE(IsFeasible(problem, r.value().z, r.value().y));
  EXPECT_GE(r.value().utility, 0.0);
}

TEST(AnytimeSelectionTest, RLViewUnderDeadlineStaysFeasible) {
  const MvsProblem problem = testing::RandomProblem(20, 16, 19);
  RLViewSelector::Options options;
  options.init_iterations = 5;
  options.episodes = 100'000;
  options.seed = 3;
  options.deadline = Deadline::AfterMillis(5.0);
  auto r = RLViewSelector(options).Select(problem);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.value().timed_out);
  EXPECT_TRUE(IsFeasible(problem, r.value().z, r.value().y));
  EXPECT_GE(r.value().utility, 0.0);
}

TEST(AnytimeSelectionTest, InfiniteDeadlineMatchesDefaultBitForBit) {
  const MvsProblem problem = testing::RandomProblem(25, 20, 23);
  IterViewSelector::Options plain;
  plain.iterations = 150;
  plain.seed = 29;
  auto a = IterViewSelector(plain).Select(problem);

  IterViewSelector::Options with_infinite = plain;
  with_infinite.deadline = Deadline::Infinite();
  auto b = IterViewSelector(with_infinite).Select(problem);

  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a.value().utility, b.value().utility);
  EXPECT_EQ(a.value().z, b.value().z);
  EXPECT_EQ(a.value().y, b.value().y);
  EXPECT_FALSE(a.value().timed_out);
  EXPECT_FALSE(b.value().timed_out);
}

}  // namespace
}  // namespace autoview
